module greencloud

go 1.24
