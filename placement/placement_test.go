package placement

import (
	"testing"
)

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	cat, err := NewCatalog(CatalogOptions{Locations: 60, Seed: 5, RepresentativeDays: 2})
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	return cat
}

func TestNewCatalog(t *testing.T) {
	cat := testCatalog(t)
	if cat.Locations() != 60 {
		t.Errorf("Locations = %d, want 60", cat.Locations())
	}
	if cat.Internal() == nil {
		t.Error("Internal() should expose the catalog")
	}
	if _, err := NewCatalog(CatalogOptions{Locations: -2}); err == nil {
		t.Error("invalid options should error")
	}
}

func TestPlaceSmallGreenNetwork(t *testing.T) {
	cat := testCatalog(t)
	sol, err := cat.Place(Request{
		CapacityMW:    10,
		GreenFraction: 0.5,
		Storage:       NetMetering,
		Sources:       SolarAndWind,
	}, SearchBudget{Iterations: 30, Chains: 2, FilterKeep: 10, Seed: 1})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if len(sol.Sites) < 2 {
		t.Errorf("expected at least two datacenters, got %d", len(sol.Sites))
	}
	if sol.GreenFraction < 0.5-1e-3 {
		t.Errorf("green fraction %v below request", sol.GreenFraction)
	}
	if sol.MonthlyCostUSD <= 0 {
		t.Error("cost should be positive")
	}
	if sol.CapacityMW < 10 {
		t.Errorf("capacity %v below request", sol.CapacityMW)
	}
	if sol.Summary() == "" {
		t.Error("summary should not be empty")
	}
	for _, site := range sol.Sites {
		if site.Name == "" || site.Climate == "" {
			t.Error("site results missing identity fields")
		}
		if site.CapacityMW <= 0 {
			t.Error("site capacity should be positive")
		}
	}
}

func TestPlaceValidation(t *testing.T) {
	cat := testCatalog(t)
	if _, err := cat.Place(Request{CapacityMW: 10, Storage: StorageMode(99)}, SearchBudget{}); err == nil {
		t.Error("bad storage mode should error")
	}
	if _, err := cat.Place(Request{CapacityMW: 10, Sources: SourceMix(99)}, SearchBudget{}); err == nil {
		t.Error("bad source mix should error")
	}
	if _, err := cat.Place(Request{CapacityMW: -1}, SearchBudget{Iterations: 5, Chains: 1, FilterKeep: 5}); err == nil {
		t.Error("negative capacity should error")
	}
}

func TestPriceSingleSite(t *testing.T) {
	cat := testCatalog(t)
	sol, err := cat.PriceSingleSite(0, 25, Request{CapacityMW: 25, GreenFraction: 0.5, Storage: NetMetering, Sources: WindOnly})
	if err != nil {
		t.Fatalf("PriceSingleSite: %v", err)
	}
	if len(sol.Sites) != 1 {
		t.Fatalf("expected exactly one site, got %d", len(sol.Sites))
	}
	if sol.MonthlyCostUSD <= 0 {
		t.Error("single-site cost should be positive")
	}
	if _, err := cat.PriceSingleSite(9999, 25, Request{CapacityMW: 25}); err == nil {
		t.Error("unknown site index should error")
	}
}
