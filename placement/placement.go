// Package placement is the public API for siting and provisioning green
// datacenter networks, the paper's first contribution.  It wraps the
// internal framework (candidate-location catalog, cost model, optimization
// problem, heuristic and exact solvers) behind a small, stable surface:
// build a Catalog, describe what you need in a Request, call Place.
package placement

import (
	"errors"
	"fmt"

	"greencloud/internal/core"
	"greencloud/internal/energy"
	"greencloud/internal/location"
)

// StorageMode selects how surplus green energy is stored.
type StorageMode int

// Storage modes.
const (
	// NetMetering banks surplus energy in the electrical grid.
	NetMetering StorageMode = iota + 1
	// Batteries stores surplus energy in on-site batteries.
	Batteries
	// NoStorage discards surplus green energy.
	NoStorage
)

// SourceMix selects which renewable technologies may be built on-site.
type SourceMix int

// Source mixes.
const (
	// SolarAndWind allows either technology (the solver chooses per site).
	SolarAndWind SourceMix = iota + 1
	// SolarOnly restricts plants to photovoltaics.
	SolarOnly
	// WindOnly restricts plants to wind turbines.
	WindOnly
)

// CatalogOptions configures the synthetic candidate-location catalog.
type CatalogOptions struct {
	// Locations is the number of candidate sites (default: the paper's 1373).
	Locations int
	// Seed makes the catalog reproducible.
	Seed int64
	// RepresentativeDays controls the time resolution used by the
	// provisioning model (default 4: one representative day per season).
	RepresentativeDays int
}

// Catalog is a set of candidate datacenter locations.
type Catalog struct {
	cat *location.Catalog
}

// NewCatalog generates a synthetic world-wide catalog of candidate sites.
func NewCatalog(opts CatalogOptions) (*Catalog, error) {
	cat, err := location.Generate(location.Options{
		Count:              opts.Locations,
		Seed:               opts.Seed,
		RepresentativeDays: opts.RepresentativeDays,
	})
	if err != nil {
		return nil, err
	}
	return &Catalog{cat: cat}, nil
}

// DefaultCatalog generates the paper-scale catalog (1373 locations).
func DefaultCatalog(seed int64) (*Catalog, error) {
	return NewCatalog(CatalogOptions{Seed: seed})
}

// Locations returns the number of candidate sites.
func (c *Catalog) Locations() int { return c.cat.Len() }

// Internal exposes the underlying internal catalog for advanced users inside
// this module (examples, experiments).
func (c *Catalog) Internal() *location.Catalog { return c.cat }

// Request describes the cloud service to build.
type Request struct {
	// CapacityMW is the compute capacity the network must provide at all
	// times.
	CapacityMW float64
	// GreenFraction is the minimum fraction of yearly energy that must come
	// from on-site renewables (0..1).
	GreenFraction float64
	// Storage selects the energy storage technology.
	Storage StorageMode
	// Sources selects the allowed renewable technologies.
	Sources SourceMix
	// Availability is the minimum network availability (default 99.999 %).
	Availability float64
	// MigrationOverhead is the fraction of an epoch during which migrated
	// load is billed at both datacenters (default 1, the paper's
	// conservative setting).
	MigrationOverhead float64
}

// SearchBudget bounds the heuristic solver's effort.
type SearchBudget struct {
	// Iterations per annealing chain (default 150).
	Iterations int
	// Chains of parallel annealing (default 4).
	Chains int
	// FilterKeep is the number of locations surviving the filter stage
	// (default 60).
	FilterKeep int
	// Seed makes the search reproducible.
	Seed int64
}

// SiteResult describes one selected location.
type SiteResult struct {
	Name          string
	Climate       string
	CapacityMW    float64
	SolarMW       float64
	WindMW        float64
	BatteryMWh    float64
	GreenFraction float64
	MonthlyUSD    float64
}

// Solution is a provisioned datacenter network.
type Solution struct {
	Sites          []SiteResult
	MonthlyCostUSD float64
	GreenFraction  float64
	CapacityMW     float64

	inner *core.Solution
}

// Summary returns a human-readable description of the solution.
func (s *Solution) Summary() string {
	if s.inner == nil {
		return "empty solution"
	}
	return s.inner.Summary()
}

// ErrNoSolution is returned when the solver cannot satisfy the request.
var ErrNoSolution = errors.New("placement: no feasible network found")

func (r Request) toSpec() (core.Spec, error) {
	spec := core.DefaultSpec()
	spec.TotalCapacityKW = r.CapacityMW * 1000
	spec.MinGreenFraction = r.GreenFraction
	if r.Availability > 0 {
		spec.MinAvailability = r.Availability
	}
	if r.MigrationOverhead > 0 {
		spec.MigrationFraction = r.MigrationOverhead
	}
	switch r.Storage {
	case NetMetering, 0:
		spec.Storage = energy.NetMetering
	case Batteries:
		spec.Storage = energy.Batteries
	case NoStorage:
		spec.Storage = energy.NoStorage
	default:
		return spec, fmt.Errorf("placement: unknown storage mode %d", r.Storage)
	}
	switch r.Sources {
	case SolarAndWind, 0:
		spec.Sources = core.SolarAndWind
	case SolarOnly:
		spec.Sources = core.SolarOnly
	case WindOnly:
		spec.Sources = core.WindOnly
	default:
		return spec, fmt.Errorf("placement: unknown source mix %d", r.Sources)
	}
	return spec, nil
}

// Place sites and provisions a network satisfying the request at minimum
// monthly cost.
func (c *Catalog) Place(req Request, budget SearchBudget) (*Solution, error) {
	spec, err := req.toSpec()
	if err != nil {
		return nil, err
	}
	sol, err := core.Solve(c.cat, spec, core.SolveOptions{
		FilterKeep:    budget.FilterKeep,
		Chains:        budget.Chains,
		MaxIterations: budget.Iterations,
		Seed:          budget.Seed,
	})
	if err != nil {
		if errors.Is(err, core.ErrInfeasible) {
			return nil, ErrNoSolution
		}
		return nil, err
	}
	return wrapSolution(sol), nil
}

// PriceSingleSite prices a single datacenter of the given capacity at the
// location with the given index under the request's green settings — the
// per-location exploration behind Fig. 6 of the paper.
func (c *Catalog) PriceSingleSite(siteIndex int, capacityMW float64, req Request) (*Solution, error) {
	spec, err := req.toSpec()
	if err != nil {
		return nil, err
	}
	sol, err := core.EvaluateSingleSite(c.cat, siteIndex, capacityMW*1000, spec)
	if err != nil {
		return nil, err
	}
	return wrapSolution(sol), nil
}

func wrapSolution(sol *core.Solution) *Solution {
	out := &Solution{
		MonthlyCostUSD: sol.TotalMonthlyUSD,
		GreenFraction:  sol.GreenFraction,
		CapacityMW:     sol.ProvisionedCapacityKW / 1000,
		inner:          sol,
	}
	for _, site := range sol.Sites {
		out.Sites = append(out.Sites, SiteResult{
			Name:          site.Site.Name,
			Climate:       site.Site.Archetype.String(),
			CapacityMW:    site.Provision.CapacityKW / 1000,
			SolarMW:       site.Provision.SolarKW / 1000,
			WindMW:        site.Provision.WindKW / 1000,
			BatteryMWh:    site.Provision.BatteryKWh / 1000,
			GreenFraction: site.GreenFraction,
			MonthlyUSD:    site.Breakdown.Total(),
		})
	}
	return out
}
