// Command plannerd is the continuous-planning daemon: it keeps a live
// follow-the-renewables plan for an emulated datacenter network, re-planning
// warm on every streamed hour and serving the result over HTTP/JSON.
//
// Usage:
//
//	plannerd [-addr 127.0.0.1:0] [-snapshot plan.snap] [trace flags]
//
// The daemon prints "plannerd: listening on ADDR" on standard output once
// the API is up (with -addr port 0 this is how callers learn the bound
// port), then serves:
//
//	GET  /plan    — the current plan and cumulative statistics
//	POST /tick    — feed the next trace hour (optionally with streamed
//	                weather updates), returns the re-planned state
//	POST /whatif  — price a hypothetical siting in an interactive session
//	GET  /healthz — liveness
//
// With -snapshot, the daemon persists a checksummed snapshot after every
// tick and, on startup, resumes from an existing one: the plan stream
// continues bit-identically to an uninterrupted daemon and the first
// post-restart solve starts warm from the persisted basis.  A corrupt or
// foreign snapshot is logged and ignored.  SIGINT/SIGTERM shut down
// cleanly: in-flight requests finish, new work is refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"greencloud/internal/plan"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "plannerd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
		snapshot = flag.String("snapshot", "", "snapshot file: written after every tick, resumed from on start")
		spec     plan.TraceSpec
	)
	flag.IntVar(&spec.Sites, "sites", 0, "location catalog size (0 = default)")
	flag.Int64Var(&spec.Seed, "seed", 0, "catalog seed (0 = default)")
	flag.IntVar(&spec.Datacenters, "datacenters", 0, "datacenter count (0 = default)")
	flag.IntVar(&spec.VMs, "vms", 0, "HPC fleet size (0 = default)")
	flag.IntVar(&spec.StartHour, "start-hour", 0, "trace start hour (0 = default)")
	flag.IntVar(&spec.HorizonHours, "horizon", 0, "prediction horizon hours (0 = default)")
	flag.Int64Var(&spec.LPTimeoutMS, "lp-timeout-ms", 0, "per-tick LP budget in ms (0 = default)")
	flag.Parse()
	if flag.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	d, err := plan.New(plan.Config{
		Trace:        spec,
		SnapshotPath: *snapshot,
		Ctx:          ctx,
		Logf:         logger.Printf,
	})
	if err != nil {
		return err
	}
	if resumed, warm := d.Resumed(); resumed {
		logger.Printf("resumed from snapshot %s at tick %d (warm=%v)", *snapshot, d.PlanView().Tick, warm)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The sentinel line the smoke harness (and any supervisor) parses to
	// learn the bound address; keep it stable.
	fmt.Printf("plannerd: listening on %s\n", ln.Addr())
	os.Stdout.Sync()

	srv := &http.Server{Handler: d.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		logger.Printf("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
