// The daemon smoke suite: builds the real plannerd binary, drives it over
// HTTP, kills it without warning and restarts it from its snapshot — the
// serving analogue of the emulation determinism tests.  Run via
// `make test-daemon`; daemon output lands in testlogs/ so CI can attach it
// to failures.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"greencloud/internal/emul"
	"greencloud/internal/plan"
)

// buildPlannerd compiles the binary once per test run.
func buildPlannerd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "plannerd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// logFile opens testlogs/<name> at the repository root (the directory the
// CI workflow uploads on failure).
func logFile(t *testing.T, name string) *os.File {
	t.Helper()
	dir := filepath.Join("..", "..", "testlogs")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// daemonProc is one running plannerd incarnation.
type daemonProc struct {
	cmd  *exec.Cmd
	addr string
	log  *os.File
}

// startDaemon launches the binary and waits for its listening sentinel.
func startDaemon(t *testing.T, bin, snapshot, logName string) *daemonProc {
	t.Helper()
	lf := logFile(t, logName)
	cmd := exec.Command(bin, "-snapshot", snapshot)
	cmd.Stderr = lf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	addrc := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(lf, line)
			if rest, ok := strings.CutPrefix(line, "plannerd: listening on "); ok {
				addrc <- rest
			}
		}
	}()
	select {
	case addr := <-addrc:
		return &daemonProc{cmd: cmd, addr: addr, log: lf}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("plannerd never announced its address")
		return nil
	}
}

func (p *daemonProc) url(path string) string { return "http://" + p.addr + path }

// kill sends SIGKILL — an unclean crash, the hardest restart case.
func (p *daemonProc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
	p.log.Close()
}

// stop shuts the daemon down cleanly via SIGTERM.
func (p *daemonProc) stop(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		p.cmd.Process.Kill()
		t.Error("plannerd ignored SIGTERM")
	}
	p.log.Close()
}

func (p *daemonProc) tick(t *testing.T) plan.PlanView {
	t.Helper()
	resp, err := http.Post(p.url("/tick"), "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /tick: status %d", resp.StatusCode)
	}
	var view plan.PlanView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

func (p *daemonProc) plan(t *testing.T) plan.PlanView {
	t.Helper()
	resp, err := http.Get(p.url("/plan"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view plan.PlanView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

func stripRecords(recs []emul.HourRecord) []emul.HourRecord {
	out := append([]emul.HourRecord(nil), recs...)
	for i := range out {
		out[i].SchedulerNanos = 0
	}
	return out
}

// TestDaemonSmoke is the CI daemon-smoke suite: 6 ticks over HTTP must be
// bit-identical to a batch emul.Runner over the same trace; a SIGKILL halfway
// must lose nothing — the restarted daemon resumes from its snapshot, warm,
// and finishes the stream with the exact same answers.
func TestDaemonSmoke(t *testing.T) {
	const hours, split = 6, 3

	// Batch reference: the same default trace, stepped in-process.
	cfg, _, err := plan.TraceSpec{}.Build()
	if err != nil {
		t.Fatal(err)
	}
	runner, err := emul.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := runner.Start(); err != nil {
		t.Fatal(err)
	}
	batch := make([][]emul.HourRecord, 0, hours)
	for i := 0; i < hours; i++ {
		tick, err := runner.Step()
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, stripRecords(tick.Records))
	}

	bin := buildPlannerd(t)
	snapshot := filepath.Join(t.TempDir(), "plan.snap")

	// First incarnation: 3 ticks, then SIGKILL.
	p1 := startDaemon(t, bin, snapshot, "plannerd-1.log")
	var lastView plan.PlanView
	for i := 0; i < split; i++ {
		lastView = p1.tick(t)
		got := stripRecords(lastView.LastRecords)
		for j := range got {
			if got[j] != batch[i][j] {
				t.Fatalf("tick %d record %d: daemon %+v, batch %+v", i, j, got[j], batch[i][j])
			}
		}
		if lastView.CumLPStats.ColdFallbacks != 0 {
			t.Fatalf("tick %d: %d cold fallbacks", i, lastView.CumLPStats.ColdFallbacks)
		}
	}
	p1.kill(t)

	// Second incarnation: resumes from the snapshot the crash left behind.
	p2 := startDaemon(t, bin, snapshot, "plannerd-2.log")
	defer p2.stop(t)
	resumed := p2.plan(t)
	if !resumed.Resumed || !resumed.WarmResume {
		t.Fatalf("restart: resumed=%v warm=%v, want true/true", resumed.Resumed, resumed.WarmResume)
	}
	if resumed.Tick != split {
		t.Fatalf("restart resumed at tick %d, want %d", resumed.Tick, split)
	}
	if resumed.Totals != lastView.Totals {
		t.Fatalf("restart totals %+v, want %+v", resumed.Totals, lastView.Totals)
	}
	for i := split; i < hours; i++ {
		view := p2.tick(t)
		// The first post-restart solve (and all later ones) must be warm.
		if view.LastLPStats.ColdFallbacks != 0 {
			t.Fatalf("post-restart tick %d fell back cold", i)
		}
		got := stripRecords(view.LastRecords)
		for j := range got {
			if got[j] != batch[i][j] {
				t.Fatalf("post-restart tick %d record %d: daemon %+v, batch %+v", i, j, got[j], batch[i][j])
			}
		}
	}

	// The serving side stays responsive throughout.
	resp, err := http.Get(p2.url("/healthz"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
}
