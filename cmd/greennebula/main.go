// Command greennebula runs the follow-the-renewables emulation of Section V:
// three green datacenters in different time zones, a fleet of HPC VMs, the
// GreenNebula scheduler re-partitioning the load every hour, live migrations
// over an emulated WAN, and GDFS shipping the dirty disk blocks.  It prints
// the per-hour trace behind Fig. 15.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"greencloud/internal/emul"
	"greencloud/internal/location"
	"greencloud/internal/vm"
	"greencloud/internal/wan"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "greennebula:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		vms       = flag.Int("vms", 9, "number of HPC VMs in the workload")
		hours     = flag.Int("hours", 24, "hours to emulate")
		startDay  = flag.Int("start-day", 172, "day of the typical meteorological year to start at")
		seed      = flag.Int64("seed", 21, "random seed for the synthetic catalog")
		locations = flag.Int("locations", 120, "number of candidate locations to pick the 3 sites from")
		predictor = flag.String("predictor", "perfect", "green energy predictor: perfect, persistence or diurnal")
		bandwidth = flag.Float64("bandwidth-mbps", 100, "WAN bandwidth between datacenters")
		overbuild = flag.Float64("overbuild", 6, "green plant size as a multiple of the fleet's demand")
	)
	flag.Parse()

	cat, err := location.Generate(location.Options{Count: *locations, Seed: *seed, RepresentativeDays: 1})
	if err != nil {
		return err
	}
	fleet := vm.NewHPCFleet("hpc", *vms)
	fleetKW := fleet.TotalPowerW() / 1000

	// Pick three good solar sites spread across time zones, like the
	// Mexico/Guam/Kenya network of Table III.
	sites := pickSpreadSolarSites(cat, 3)
	dcs := make([]emul.DatacenterConfig, 0, len(sites))
	for _, s := range sites {
		dcs = append(dcs, emul.DatacenterConfig{
			Name:       s.Name,
			Site:       s,
			CapacityKW: fleetKW,
			SolarKW:    fleetKW * *overbuild / s.SolarCapacityFactor * 0.25,
			WindKW:     fleetKW * 0.02,
		})
	}

	fmt.Printf("Emulating %d VMs (%.2f kW) across %d datacenters for %d hours...\n",
		len(fleet), fleetKW, len(dcs), *hours)
	res, err := emul.Run(emul.Config{
		Datacenters:       dcs,
		VMs:               fleet,
		StartHour:         *startDay * 24,
		Hours:             *hours,
		HorizonHours:      24,
		MigrationFraction: 1,
		Link:              wan.Link{BandwidthMbps: *bandwidth, LatencyMs: 90},
		Predictor:         *predictor,
	})
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "hour\tdatacenter\tgreen kW\tload kW\tPUE kW\tmigration kW\tbrown kW\tVMs")
	for _, rec := range res.Trace {
		fmt.Fprintf(w, "%d\t%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%d\n",
			rec.Hour, rec.Datacenter, rec.GreenKW, rec.LoadKW, rec.PUEOverheadKW,
			rec.MigrationKW, rec.BrownKW, rec.VMCount)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\n%d migrations, %.2f kWh migration overhead, %.1f%% of demand served green, avg schedule time %.0f ms\n",
		res.Migrations, res.TotalMigrationKWh, 100*res.GreenFraction,
		float64(res.AvgScheduleNanos)/1e6)
	return nil
}

// pickSpreadSolarSites picks n good solar sites whose time zones are far
// apart so that the sun is always shining on one of them.
func pickSpreadSolarSites(cat *location.Catalog, n int) []*location.Site {
	candidates := cat.TopBySolarCF(20)
	picked := []*location.Site{candidates[0]}
	for len(picked) < n {
		best := candidates[0]
		bestDist := -1.0
		for _, cand := range candidates {
			minDist := 24.0
			for _, p := range picked {
				d := float64(cand.UTCOffsetHours - p.UTCOffsetHours)
				if d < 0 {
					d = -d
				}
				if d > 12 {
					d = 24 - d
				}
				if d < minDist {
					minDist = d
				}
			}
			if minDist > bestDist {
				bestDist = minDist
				best = cand
			}
		}
		picked = append(picked, best)
	}
	return picked
}
