// Command benchjson converts `go test -bench` output on stdin into a JSON
// snapshot, echoing the raw output through so it remains visible.  The
// Makefile's bench target pipes the full benchmark suite into it to produce
// the per-PR BENCH_<date>.json performance-trajectory snapshots.
//
// Two guard rails keep the trajectory honest:
//
//   - the snapshot never overwrites an existing file: when the -out target
//     already exists (a second bench run on the same day), the snapshot is
//     written to a -2/-3/… suffixed sibling instead;
//   - with -baseline, the fresh snapshot is diffed against a previous one
//     (the literal name "latest" resolves to the newest existing
//     BENCH_*.json next to -out) and the process exits non-zero when any
//     benchmark regressed by more than 10% in ns/op, bytes/op or
//     allocs/op.  Benchmarks that ran fewer than 10 iterations in either
//     snapshot are reported but not time-gated — a one-shot measurement
//     swings past 10% on machine and code layout noise alone.  Allocation
//     metrics get one extension: even on a low-iteration benchmark, more
//     than 10x growth in bytes/op or allocs/op fails the run, because an
//     allocation footprint is near-deterministic and order-of-magnitude
//     growth is exactly the regression that gate exists to stop (Fig. 15's
//     one-shot run once allocated 59 GB/op; the gate keeps it from coming
//     back).  A failed benchmark run is never snapshotted at all, so a
//     crash cannot poison the baseline chain.
//
// With -calibrate the ns/op diff is normalized by the ratio of the two
// snapshots' BenchmarkCalibration results (a fixed-work, allocation-free
// machine-speed probe): a runner that is uniformly 20% slower than the
// baseline's machine does not read as twenty percent of regressions, and a
// uniformly faster one cannot mask a real slowdown.  The probe itself is
// never gated, and a snapshot missing it simply disables the normalization.
//
// With -check-only the snapshot is parsed and diffed but never written:
// the mode CI runs on the smoke benchmarks (`make bench-check`), where the
// deltas are wanted but a throwaway runner's numbers must not enter the
// committed BENCH_*.json trajectory.  -out is then only used (and
// optional) to locate the snapshot directory for -baseline latest.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	N           int64    `json:"n"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Snapshot is the whole file.
type Snapshot struct {
	Date       string            `json:"date"`
	GOOS       string            `json:"goos,omitempty"`
	GOARCH     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// regressionThreshold is the ns/op slowdown above which the baseline diff
// fails the run.
const regressionThreshold = 0.10

// minGateIterations is the smallest benchmark iteration count (in both
// snapshots) the regression gate trusts: a one-shot or handful-of-runs
// measurement of a hundreds-of-ms benchmark swings well beyond 10% from
// code layout and machine noise alone, so those deltas are printed but
// never fail the run.
const minGateIterations = 10

func main() {
	out := flag.String("out", "", "path of the JSON snapshot to write (required unless -check-only)")
	baseline := flag.String("baseline", "",
		"previous snapshot to diff against, or \"latest\" for the newest BENCH_*.json next to -out; exits non-zero on >10% ns/op regressions")
	checkOnly := flag.Bool("check-only", false,
		"diff against -baseline without writing a snapshot; -out only locates the snapshot directory")
	calibrate := flag.Bool("calibrate", false,
		"normalize the ns/op diff by the BenchmarkCalibration ratio of the two snapshots, so a uniformly slower/faster machine does not read as a code regression")
	flag.Parse()
	if *out == "" && !*checkOnly {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	snap := Snapshot{
		Date:       time.Now().Format("2006-01-02"),
		Benchmarks: map[string]Result{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	failed := false
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "--- FAIL"), strings.HasPrefix(line, "FAIL"),
			strings.HasPrefix(line, "panic:"):
			failed = true
		case strings.HasPrefix(line, "Benchmark"):
			name, res, ok := parseBenchLine(line)
			if ok {
				snap.Benchmarks[name] = res
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if failed {
		// A failed or partial run must never become a snapshot: it would be
		// picked up as the "latest" baseline and silently shrink the set of
		// gated benchmarks to whatever completed before the failure.
		fmt.Fprintln(os.Stderr, "benchjson: benchmark run failed; snapshot not written")
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines seen; snapshot not written")
		os.Exit(1)
	}

	// Resolve the baseline before writing, so "latest" can never pick up
	// the snapshot this very run produces.
	basePath := ""
	if *baseline != "" {
		basePath = resolveBaseline(*baseline, *out)
	}

	if *checkOnly {
		fmt.Fprintf(os.Stderr, "benchjson: check-only: %d benchmarks parsed, no snapshot written\n",
			len(snap.Benchmarks))
	} else {
		target, err := unusedSnapshotPath(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if target != *out {
			fmt.Fprintf(os.Stderr, "benchjson: %s already exists; writing %s instead\n", *out, target)
		}
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(target, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", target, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), target)
	}

	regressed := false
	if basePath != "" {
		var err error
		regressed, err = diffAgainst(basePath, snap, *calibrate)
		if err != nil {
			if *baseline == "latest" {
				// An auto-resolved baseline that turns out unreadable (e.g.
				// git-tracked but deleted from the working tree) must not
				// fail a sweep that succeeded and is already snapshotted;
				// like a missing first-run baseline, it only skips the diff.
				fmt.Fprintf(os.Stderr, "benchjson: baseline: %v; skipping diff\n", err)
				regressed = false
			} else {
				// An explicitly named baseline the user pinned is different:
				// silently skipping would green-light a run whose regression
				// gate never ran.  Any snapshot is already written, so only
				// the gate fails.
				fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if regressed {
		os.Exit(3)
	}
}

// unusedSnapshotPath returns path if nothing sits there, or the first free
// -2/-3/… suffixed sibling otherwise, so a same-day re-run never silently
// overwrites a committed snapshot.
func unusedSnapshotPath(path string) (string, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return path, nil
	}
	ext := filepath.Ext(path)
	stem := strings.TrimSuffix(path, ext)
	for i := 2; i < 100; i++ {
		cand := fmt.Sprintf("%s-%d%s", stem, i, ext)
		if _, err := os.Stat(cand); os.IsNotExist(err) {
			return cand, nil
		}
	}
	return "", fmt.Errorf("no free suffix for %s after 99 attempts", path)
}

// snapshotName matches BENCH_<date>.json and BENCH_<date>-<k>.json,
// capturing the date and the optional same-day run suffix.
var snapshotName = regexp.MustCompile(`^BENCH_(\d{4}-\d{2}-\d{2})(?:-(\d+))?\.json$`)

// resolveBaseline turns the -baseline argument into a concrete path.  The
// literal "latest" picks the newest snapshot by (date, same-day suffix)
// among the git-committed BENCH_*.json files next to -out — committed, not
// merely on disk, so inside a git checkout a regressed snapshot a failing
// `make bench` left behind can never quietly become the next run's
// baseline and absorb its own regression.  Outside a git checkout (or
// without git on PATH) it falls back, best-effort, to every snapshot on
// disk — that fallback does not carry the committed-only guarantee.  An
// empty string comes back when there is nothing to diff against (first
// ever run), which disables the diff rather than failing it.
func resolveBaseline(arg, out string) string {
	if arg != "latest" {
		return arg
	}
	dir := filepath.Dir(out)
	names, committed := committedSnapshots(dir)
	if !committed {
		entries, err := os.ReadDir(dir)
		if err != nil {
			// Never fail the run here: the expensive sweep succeeded and its
			// snapshot must still be written; only the diff is skipped.
			fmt.Fprintf(os.Stderr, "benchjson: baseline: %v; skipping diff\n", err)
			return ""
		}
		for _, e := range entries {
			names = append(names, e.Name())
		}
		fmt.Fprintln(os.Stderr, "benchjson: baseline: not a git checkout; considering every snapshot on disk")
	}
	type cand struct {
		path string
		date string
		run  int
	}
	var best *cand
	for _, name := range names {
		m := snapshotName.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		c := cand{path: filepath.Join(dir, name), date: m[1], run: 1}
		if m[2] != "" {
			c.run, _ = strconv.Atoi(m[2])
		}
		if best == nil || c.date > best.date || (c.date == best.date && c.run > best.run) {
			best = &c
		}
	}
	if best == nil {
		fmt.Fprintln(os.Stderr, "benchjson: baseline: no existing BENCH_*.json; skipping diff")
		return ""
	}
	return best.path
}

// committedSnapshots lists the BENCH_*.json files git tracks in dir.  The
// second return is false when dir is not inside a git checkout (or git is
// unavailable), in which case the caller falls back to a directory scan.
func committedSnapshots(dir string) ([]string, bool) {
	out, err := exec.Command("git", "-C", dir, "ls-files", "--", "BENCH_*.json").Output()
	if err != nil {
		return nil, false
	}
	var names []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line != "" {
			names = append(names, filepath.Base(line))
		}
	}
	return names, true
}

// lowNAllocFactor is the growth factor above which a bytes/op or allocs/op
// regression is gated even on a benchmark below minGateIterations: unlike
// wall time, an allocation footprint is near-deterministic (only sync.Pool
// and map-growth timing jitter it), so order-of-magnitude growth on a
// one-shot benchmark is a real regression, not noise.
const lowNAllocFactor = 10.0

// calibrationBenchmark is the machine-speed probe diffAgainst uses to
// normalize deltas under -calibrate (see BenchmarkCalibration in the
// repository root).  Snapshot keys carry the Benchmark prefix already
// stripped (parseBenchLine), so the probe is looked up by its bare name.
const calibrationBenchmark = "Calibration"

// calibrationScale returns the factor by which the current machine is
// slower (>1) or faster (<1) than the baseline's, measured by the
// calibration probe present in both snapshots, or 1 with ok=false when
// either side lacks a usable probe.
func calibrationScale(base, snap Snapshot) (float64, bool) {
	b, okB := base.Benchmarks[calibrationBenchmark]
	n, okN := snap.Benchmarks[calibrationBenchmark]
	if !okB || !okN || b.NsPerOp <= 0 || n.NsPerOp <= 0 {
		return 1, false
	}
	return n.NsPerOp / b.NsPerOp, true
}

// diffAgainst prints the per-benchmark deltas of snap versus the baseline
// file and reports whether any shared benchmark regressed by more than the
// threshold in ns/op, bytes/op or allocs/op.  With calibrate, ns/op deltas
// are first normalized by the BenchmarkCalibration ratio of the two
// snapshots, so a uniformly slower machine does not read as a regression
// (and a uniformly faster one does not mask a real regression).
func diffAgainst(path string, snap Snapshot, calibrate bool) (regressed bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var base Snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return false, fmt.Errorf("parse %s: %w", path, err)
	}

	scale := 1.0
	if calibrate {
		var ok bool
		scale, ok = calibrationScale(base, snap)
		if ok {
			fmt.Fprintf(os.Stderr, "benchjson: calibration: this machine runs %.3fx the baseline's ns/op; normalizing\n", scale)
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: calibration: %s missing from a snapshot; diff not normalized\n", calibrationBenchmark)
		}
	}

	names := make([]string, 0, len(snap.Benchmarks))
	for name := range snap.Benchmarks {
		if _, ok := base.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	fmt.Fprintf(os.Stderr, "benchjson: vs %s (%s):\n", path, base.Date)
	var regressions []string
	for _, name := range names {
		oldRes, newRes := base.Benchmarks[name], snap.Benchmarks[name]
		if calibrate && name == calibrationBenchmark {
			continue // the yardstick itself is never gated
		}
		lowN := oldRes.N < minGateIterations || newRes.N < minGateIterations
		old, now := oldRes.NsPerOp, newRes.NsPerOp
		if old <= 0 {
			continue
		}
		delta := (now - old*scale) / (old * scale)
		marker := ""
		if delta > regressionThreshold {
			if lowN {
				marker = fmt.Sprintf("  (not gated: n=%d/%d < %d, too noisy)",
					oldRes.N, newRes.N, minGateIterations)
			} else {
				marker = "  <-- REGRESSION"
				regressions = append(regressions, name)
			}
		}
		fmt.Fprintf(os.Stderr, "  %-32s %14.0f -> %14.0f ns/op  %+6.1f%%%s\n",
			name, old*scale, now, 100*delta, marker)

		// Allocation metrics, printed only when they move past the
		// threshold so the diff stays readable.  Same iteration guard as
		// ns/op, except that >lowNAllocFactor growth is gated even on a
		// low-n benchmark (allocation footprints are near-deterministic).
		for _, m := range []struct {
			unit     string
			old, now *float64
		}{
			{"B/op", oldRes.BytesPerOp, newRes.BytesPerOp},
			{"allocs/op", oldRes.AllocsPerOp, newRes.AllocsPerOp},
		} {
			if m.old == nil || m.now == nil {
				continue
			}
			old, now := *m.old, *m.now
			if old <= 0 {
				// A zero-allocation contract breaking (0 -> anything) has no
				// finite relative delta; gate it under the usual noise guard.
				if now > 0 {
					marker := "  <-- REGRESSION"
					if lowN {
						marker = fmt.Sprintf("  (not gated: n=%d/%d < %d)",
							oldRes.N, newRes.N, minGateIterations)
					} else {
						regressions = append(regressions, name+" "+m.unit)
					}
					fmt.Fprintf(os.Stderr, "  %-32s %14.0f -> %14.0f %s  (was zero)%s\n",
						name, old, now, m.unit, marker)
				}
				continue
			}
			delta := (now - old) / old
			if delta <= regressionThreshold {
				continue
			}
			marker := "  <-- REGRESSION"
			if lowN && now <= lowNAllocFactor*old {
				marker = fmt.Sprintf("  (not gated: n=%d/%d < %d and growth <=%.0fx)",
					oldRes.N, newRes.N, minGateIterations, lowNAllocFactor)
			} else {
				regressions = append(regressions, name+" "+m.unit)
			}
			fmt.Fprintf(os.Stderr, "  %-32s %14.0f -> %14.0f %s  %+6.1f%%%s\n",
				name, old, now, m.unit, 100*delta, marker)
		}
	}
	var added, gone []string
	for name := range snap.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			added = append(added, name)
		}
	}
	for name := range base.Benchmarks {
		if _, ok := snap.Benchmarks[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(added)
	sort.Strings(gone)
	for _, name := range added {
		fmt.Fprintf(os.Stderr, "  %-32s (new)\n", name)
	}
	for _, name := range gone {
		fmt.Fprintf(os.Stderr, "  %-32s (gone)\n", name)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d metric(s) regressed >%0.f%%: %s\n",
			len(regressions), 100*regressionThreshold, strings.Join(regressions, ", "))
		return true, nil
	}
	fmt.Fprintf(os.Stderr, "benchjson: no ns/op, B/op or allocs/op regressions >%0.f%%\n",
		100*regressionThreshold)
	return false, nil
}

// parseBenchLine parses a line like
//
//	BenchmarkSolveSmallNetwork-8   10   1978998 ns/op   135934 B/op   574 allocs/op
//
// returning the name with the Benchmark prefix and -cpus suffix stripped.
func parseBenchLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return "", Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{N: n}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		val := v
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = val
			seen = true
		case "B/op":
			res.BytesPerOp = &val
		case "allocs/op":
			res.AllocsPerOp = &val
		}
	}
	return name, res, seen
}
