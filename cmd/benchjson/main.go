// Command benchjson converts `go test -bench` output on stdin into a JSON
// snapshot, echoing the raw output through so it remains visible.  The
// Makefile's bench target pipes the full benchmark suite into it to produce
// the per-PR BENCH_<date>.json performance-trajectory snapshots.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	N           int64    `json:"n"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Snapshot is the whole file.
type Snapshot struct {
	Date       string            `json:"date"`
	GOOS       string            `json:"goos,omitempty"`
	GOARCH     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "path of the JSON snapshot to write (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	snap := Snapshot{
		Date:       time.Now().Format("2006-01-02"),
		Benchmarks: map[string]Result{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	failed := false
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "--- FAIL"), strings.HasPrefix(line, "FAIL"):
			failed = true
		case strings.HasPrefix(line, "Benchmark"):
			name, res, ok := parseBenchLine(line)
			if ok {
				snap.Benchmarks[name] = res
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines seen; snapshot not written")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
	if failed {
		os.Exit(1)
	}
}

// parseBenchLine parses a line like
//
//	BenchmarkSolveSmallNetwork-8   10   1978998 ns/op   135934 B/op   574 allocs/op
//
// returning the name with the Benchmark prefix and -cpus suffix stripped.
func parseBenchLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return "", Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{N: n}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		val := v
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = val
			seen = true
		case "B/op":
			res.BytesPerOp = &val
		case "allocs/op":
			res.AllocsPerOp = &val
		}
	}
	return name, res, seen
}
