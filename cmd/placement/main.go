// Command placement is the paper's siting and provisioning tool (Section
// III): given a desired compute capacity, a minimum fraction of on-site
// green energy, a storage technology and an availability target, it selects
// datacenter locations from the synthetic world-wide catalog, sizes the
// datacenters, solar/wind plants and batteries, and prints the solution and
// its monthly cost breakdown.
package main

import (
	"flag"
	"fmt"
	"os"

	"greencloud/internal/core"
	"greencloud/internal/energy"
	"greencloud/internal/location"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "placement:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		capacityMW = flag.Float64("capacity-mw", 50, "required compute capacity in MW")
		green      = flag.Float64("green", 0.5, "minimum fraction of yearly energy from on-site renewables (0..1)")
		storage    = flag.String("storage", "netmeter", "green energy storage: netmeter, batteries or none")
		sources    = flag.String("sources", "both", "allowed green sources: solar, wind or both")
		avail      = flag.Float64("availability", 0.99999, "minimum network availability")
		locations  = flag.Int("locations", 300, "number of candidate locations in the synthetic catalog")
		seed       = flag.Int64("seed", 1, "random seed for the synthetic catalog and the search")
		iterations = flag.Int("iterations", 80, "simulated annealing iterations per chain")
		chains     = flag.Int("chains", 4, "parallel annealing chains")
		filterKeep = flag.Int("filter", 30, "locations kept after the filtering stage")
		migration  = flag.Float64("migration", 1.0, "fraction of an epoch migrated load is billed at both ends")
	)
	flag.Parse()

	spec := core.DefaultSpec()
	spec.TotalCapacityKW = *capacityMW * 1000
	spec.MinGreenFraction = *green
	spec.MinAvailability = *avail
	spec.MigrationFraction = *migration
	switch *storage {
	case "netmeter":
		spec.Storage = energy.NetMetering
	case "batteries":
		spec.Storage = energy.Batteries
	case "none":
		spec.Storage = energy.NoStorage
	default:
		return fmt.Errorf("unknown storage %q", *storage)
	}
	switch *sources {
	case "solar":
		spec.Sources = core.SolarOnly
	case "wind":
		spec.Sources = core.WindOnly
	case "both":
		spec.Sources = core.SolarAndWind
	default:
		return fmt.Errorf("unknown sources %q", *sources)
	}

	fmt.Printf("Generating %d candidate locations (seed %d)...\n", *locations, *seed)
	cat, err := location.Generate(location.Options{Count: *locations, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("Siting a %.0f MW network with ≥%.0f%% green energy (%s storage, %s)...\n",
		*capacityMW, *green*100, spec.Storage, spec.Sources)

	sol, err := core.Solve(cat, spec, core.SolveOptions{
		FilterKeep:    *filterKeep,
		Chains:        *chains,
		MaxIterations: *iterations,
		Seed:          *seed,
	})
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Println(sol.Summary())
	fmt.Println()
	fmt.Printf("cost breakdown: %s\n", sol.Breakdown.String())
	return nil
}
