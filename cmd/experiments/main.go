// Command experiments regenerates the paper's tables and figures.  Each
// experiment prints the rows/series the paper plots; pass -exp all to run
// the full evaluation, or a single ID such as -exp fig8.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"greencloud/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp     = flag.String("exp", "all", "experiment to run: all, or one of "+strings.Join(experiments.IDs(), ", "))
		full    = flag.Bool("full", false, "use the paper-scale catalog and search budgets (slow)")
		seed    = flag.Int64("seed", 1, "random seed for the synthetic catalog")
		timeout = flag.Duration("timeout", 0, "overall wall-clock budget (e.g. 5m); 0 means no limit. Experiments finished before the deadline are still printed.")
		verbose = flag.Bool("v", false, "add solver-internals columns (LP pivots, presolve reductions, warm-start fallbacks) to the LP-backed tables")
	)
	flag.Parse()

	budget := experiments.Quick
	if *full {
		budget = experiments.Full
	}
	cfg := experiments.Config{Budget: budget, Seed: *seed, Verbose: *verbose}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		cfg.Ctx = ctx
	}
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}

	if *exp == "all" {
		tables, err := suite.All()
		for _, t := range tables {
			fmt.Println(t.String())
		}
		return err
	}
	table, err := suite.Run(*exp)
	if err != nil {
		return err
	}
	fmt.Println(table.String())
	return nil
}
