// Command lpsolve solves a linear program in MPS format with the repo's
// revised simplex, printing the status, objective and solve statistics.
// It is the interchange endpoint of internal/lp: models exported with
// WriteMPS (or produced by other solvers) run here standalone, and -write
// re-emits the parsed model so external instances can be normalized into
// the dialect the reader pins down.
//
// Usage:
//
//	lpsolve [-presolve=off] [-pricing devex|dantzig|bland] [-write out.mps] [-v] model.mps
//
// With no file argument the model is read from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"greencloud/internal/lp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lpsolve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		presolve = flag.String("presolve", "on", "presolve mode: on or off")
		pricing  = flag.String("pricing", "devex", "pricing rule: devex, dantzig or bland")
		write    = flag.String("write", "", "re-emit the parsed model as MPS to this file ('-' for stdout) instead of solving")
		timeout  = flag.Duration("timeout", 0, "solve deadline (e.g. 30s); 0 means none")
		verbose  = flag.Bool("v", false, "print variable values and solve statistics")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	switch flag.NArg() {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("at most one model file, got %d", flag.NArg())
	}

	p, err := lp.ReadMPS(in)
	if err != nil {
		return err
	}

	if *write != "" {
		out := os.Stdout
		if *write != "-" {
			f, err := os.Create(*write)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		return p.WriteMPS(out)
	}

	opts := lp.SolveOptions{}
	switch *presolve {
	case "on":
	case "off":
		opts.Presolve = lp.PresolveOff
	default:
		return fmt.Errorf("unknown -presolve %q", *presolve)
	}
	switch *pricing {
	case "devex":
		opts.Pricing = lp.PricingDevex
	case "dantzig":
		opts.Pricing = lp.PricingDantzig
	case "bland":
		opts.Pricing = lp.PricingBland
	default:
		return fmt.Errorf("unknown -pricing %q", *pricing)
	}
	if *timeout > 0 {
		opts.Deadline = time.Now().Add(*timeout)
	}

	start := time.Now()
	sol, err := p.SolveWithOptions(opts)
	elapsed := time.Since(start)
	if sol != nil {
		fmt.Printf("status: %s\n", sol.Status)
	}
	if err != nil {
		if sol == nil || (sol.Status != lp.Infeasible && sol.Status != lp.Unbounded) {
			return err
		}
	}
	if sol.Status == lp.Optimal {
		fmt.Printf("objective: %.12g\n", sol.Objective)
	}
	if *verbose {
		st := sol.Stats
		fmt.Printf("rows: %d  cols: %d  presolve removed: %d rows, %d cols (%.2fms)\n",
			p.NumConstraints(), p.NumVariables(), st.RowsRemoved, st.ColsRemoved,
			float64(st.PresolveNanos)/1e6)
		fmt.Printf("pivots: %d  bound flips: %d  refactorizations: %d  solve: %s\n",
			st.Pivots, st.BoundFlips, st.Refactorizations, elapsed.Round(time.Microsecond))
		if sol.Status == lp.Optimal {
			for j, v := range sol.Values() {
				fmt.Printf("X%d = %.12g\n", j, v)
			}
		}
	}
	return nil
}
