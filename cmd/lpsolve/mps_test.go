package main

import (
	"bufio"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// readReferences parses testdata/mps/objectives.tsv.
func readReferences(t *testing.T, dir string) map[string]float64 {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, "objectives.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	refs := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, "\t")
		if !ok {
			t.Fatalf("malformed reference line %q", line)
		}
		obj, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			t.Fatalf("reference %q: %v", line, err)
		}
		refs[strings.TrimSpace(name)] = obj
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return refs
}

// solveFile runs the built lpsolve binary on one instance and returns the
// reported objective.
func solveFile(t *testing.T, bin string, args ...string) float64 {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("lpsolve %v: %v\n%s", args, err, out)
	}
	for _, line := range strings.Split(string(out), "\n") {
		if rest, ok := strings.CutPrefix(line, "objective: "); ok {
			obj, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("bad objective line %q: %v", line, err)
			}
			return obj
		}
	}
	t.Fatalf("no objective in output:\n%s", out)
	return math.NaN()
}

// TestVendoredMPS pins the solver against the vendored public-domain
// instances: every committed reference objective must be reproduced through
// the real binary (the `make test-mps` gate), under both pricing rules, and
// must survive a WriteMPS round trip.  The set exercises G/L/E rows,
// OBJSENSE MAX, BOUNDS, RANGES and Beale's degenerate cycling example.
func TestVendoredMPS(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "mps")
	refs := readReferences(t, dir)
	if len(refs) == 0 {
		t.Fatal("no reference objectives")
	}

	bin := filepath.Join(t.TempDir(), "lpsolve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	for name, want := range refs {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name+".mps")
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("reference names %s but %s is missing", name, path)
			}
			check := func(label string, got float64) {
				tol := 1e-9 * math.Max(1, math.Abs(want))
				if math.Abs(got-want) > tol {
					t.Errorf("%s: objective %.12g, want %.12g", label, got, want)
				}
			}
			check("devex", solveFile(t, bin, path))
			check("dantzig", solveFile(t, bin, "-pricing", "dantzig", path))
			check("presolve off", solveFile(t, bin, "-presolve=off", path))

			// Normalization round trip: re-emit with -write, solve the copy.
			copyPath := filepath.Join(t.TempDir(), name+".mps")
			if out, err := exec.Command(bin, "-write", copyPath, path).CombinedOutput(); err != nil {
				t.Fatalf("lpsolve -write: %v\n%s", err, out)
			}
			check("rewritten", solveFile(t, bin, copyPath))
		})
	}
}
