package milp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"greencloud/internal/lp"
)

// budget_test pins the branch-and-bound budget contract: a budget that runs
// out after an incumbent exists returns that incumbent with a nil error,
// Proven false and the residual Gap; a budget that runs out before any
// incumbent surfaces the matching budget error.  The knapsack below needs
// 139 nodes to close with seed 1; the first incumbent appears between nodes
// 41 and 80, which is what makes the budgets chosen here deterministic.

func budgetKnapsackFull(t *testing.T) (*Problem, []lp.Var, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	p := NewProblem(lp.Maximize)
	vars := make([]lp.Var, 0, 25)
	weights := make([]float64, 0, 25)
	terms := make([]lp.Term, 0, 25)
	for i := 0; i < 25; i++ {
		v, err := p.AddBinaryVariable("item", 1+rng.Float64()*10)
		if err != nil {
			t.Fatal(err)
		}
		w := 1 + rng.Float64()*10
		vars = append(vars, v)
		weights = append(weights, w)
		terms = append(terms, lp.Term{Var: v, Coeff: w})
	}
	if err := p.AddConstraint("capacity", lp.LE, 40, terms...); err != nil {
		t.Fatal(err)
	}
	return p, vars, weights
}

func budgetKnapsack(t *testing.T) *Problem {
	t.Helper()
	p, _, _ := budgetKnapsackFull(t)
	return p
}

func TestFullSolveIsProven(t *testing.T) {
	sol, err := budgetKnapsack(t).Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !sol.Proven {
		t.Error("Proven = false on a closed search")
	}
	if sol.Gap != 0 {
		t.Errorf("Gap = %v, want 0 on a closed search", sol.Gap)
	}
}

func TestNodeBudgetBeforeIncumbent(t *testing.T) {
	_, err := budgetKnapsack(t).SolveWithOptions(Options{MaxNodes: 40})
	if !errors.Is(err, ErrNodeLimit) {
		t.Fatalf("err = %v, want ErrNodeLimit (no incumbent exists by node 40)", err)
	}
}

func TestNodeBudgetReturnsIncumbent(t *testing.T) {
	p, vars, weights := budgetKnapsackFull(t)
	full, err := budgetKnapsack(t).Solve()
	if err != nil {
		t.Fatalf("full solve: %v", err)
	}
	sol, err := p.SolveWithOptions(Options{MaxNodes: 80})
	if err != nil {
		t.Fatalf("budgeted solve: %v (an incumbent exists by node 80, so the solve must not error)", err)
	}
	if sol.Proven {
		t.Error("Proven = true, want false on a budget-stopped search")
	}
	if sol.Gap < 0 {
		t.Errorf("Gap = %v, want >= 0", sol.Gap)
	}
	if sol.Nodes != 80 {
		t.Errorf("Nodes = %d, want exactly the budget 80", sol.Nodes)
	}
	if sol.Objective > full.Objective+1e-6 {
		t.Errorf("incumbent %v beats the proven optimum %v", sol.Objective, full.Objective)
	}
	// The incumbent must be genuinely feasible: integral and within capacity.
	weight := 0.0
	for i, v := range vars {
		val := sol.Value(v)
		if math.Abs(val-math.Round(val)) > 1e-6 {
			t.Errorf("item %d value %v is not integral", i, val)
		}
		weight += weights[i] * math.Round(val)
	}
	if weight > 40+1e-6 {
		t.Errorf("incumbent weight %v exceeds capacity 40", weight)
	}
}

// TestDeadlineBeforeIncumbent trips the LP deadline fault in the root
// relaxation: no incumbent can exist yet, so the solve must surface
// ErrDeadline (wrapping context.DeadlineExceeded).
func TestDeadlineBeforeIncumbent(t *testing.T) {
	t.Cleanup(lp.DisarmFaults)
	lp.ArmFault(lp.FaultExpireDeadline, 0, 1)
	_, err := budgetKnapsack(t).SolveWithOptions(Options{Deadline: time.Now().Add(time.Hour)})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("ErrDeadline should wrap context.DeadlineExceeded; got %v", err)
	}
}

// TestDeadlineAfterIncumbent lets the search run long enough to find an
// incumbent, then trips the LP deadline fault in a later relaxation: the
// solve must return the incumbent with a nil error instead of the budget
// error.
func TestDeadlineAfterIncumbent(t *testing.T) {
	t.Cleanup(lp.DisarmFaults)
	// The fault's skip counts pivot iterations across all of the tree's LP
	// solves; 400 lands after the first incumbent (found near node 60) but
	// before the search closes at node 139.
	lp.ArmFault(lp.FaultExpireDeadline, 400, 1)
	sol, err := budgetKnapsack(t).SolveWithOptions(Options{Deadline: time.Now().Add(time.Hour)})
	if err != nil {
		t.Fatalf("err = %v, want the incumbent with a nil error", err)
	}
	if sol.Proven {
		t.Error("Proven = true, want false on a deadline-stopped search")
	}
	if sol.Gap < 0 {
		t.Errorf("Gap = %v, want >= 0", sol.Gap)
	}
}

func TestContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := budgetKnapsack(t).SolveWithOptions(Options{Ctx: ctx})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("ErrCancelled should wrap context.Canceled; got %v", err)
	}
}

func TestPastDeadlineBeforeStart(t *testing.T) {
	_, err := budgetKnapsack(t).SolveWithOptions(Options{Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}
