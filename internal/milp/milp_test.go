package milp

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"greencloud/internal/lp"
)

func TestPureLPPassThrough(t *testing.T) {
	p := NewProblem(lp.Maximize)
	x, err := p.AddVariable("x", 0, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	y, err := p.AddVariable("y", 0, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("c", lp.LE, 18, lp.Term{Var: x, Coeff: 3}, lp.Term{Var: y, Coeff: 2}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(sol.Objective-36) > 1e-6 {
		t.Errorf("objective = %v, want 36", sol.Objective)
	}
	if sol.Nodes != 1 {
		t.Errorf("nodes = %d, want 1 for a pure LP", sol.Nodes)
	}
}

func TestKnapsack(t *testing.T) {
	// 0/1 knapsack: values 10, 13, 7, 8; weights 5, 6, 3, 4; capacity 10.
	// Optimum: items 2 and 4 (13+8=21, weight 10).
	values := []float64{10, 13, 7, 8}
	weights := []float64{5, 6, 3, 4}
	p := NewProblem(lp.Maximize)
	vars := make([]lp.Var, 4)
	terms := make([]lp.Term, 4)
	for i := range values {
		v, err := p.AddBinaryVariable("item", values[i])
		if err != nil {
			t.Fatal(err)
		}
		vars[i] = v
		terms[i] = lp.Term{Var: v, Coeff: weights[i]}
	}
	if err := p.AddConstraint("capacity", lp.LE, 10, terms...); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(sol.Objective-21) > 1e-6 {
		t.Errorf("objective = %v, want 21", sol.Objective)
	}
	for i, v := range vars {
		val := sol.Value(v)
		if math.Abs(val-math.Round(val)) > 1e-6 {
			t.Errorf("item %d value %v is not integral", i, val)
		}
	}
	if sol.Value(vars[1]) != 1 || sol.Value(vars[3]) != 1 {
		t.Errorf("wrong items selected: %v", sol)
	}
}

func TestIntegerRounding(t *testing.T) {
	// maximize x s.t. 2x ≤ 7, x integer → x=3 (LP relaxation gives 3.5).
	p := NewProblem(lp.Maximize)
	x, err := p.AddIntegerVariable("x", 0, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("c", lp.LE, 7, lp.Term{Var: x, Coeff: 2}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Value(x) != 3 {
		t.Errorf("x = %v, want 3", sol.Value(x))
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// Facility-style model: open ∈ {0,1} with fixed cost 10, capacity 8;
	// serve demand 5 with per-unit cost 1 from the facility or 4 from a
	// fallback.  Optimum: open the facility, total 10 + 5 = 15.
	p := NewProblem(lp.Minimize)
	open, err := p.AddBinaryVariable("open", 10)
	if err != nil {
		t.Fatal(err)
	}
	serve, err := p.AddVariable("serve", 0, lp.Infinity, 1)
	if err != nil {
		t.Fatal(err)
	}
	fallback, err := p.AddVariable("fallback", 0, lp.Infinity, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("demand", lp.GE, 5,
		lp.Term{Var: serve, Coeff: 1}, lp.Term{Var: fallback, Coeff: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("capacity", lp.LE, 0,
		lp.Term{Var: serve, Coeff: 1}, lp.Term{Var: open, Coeff: -8}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(sol.Objective-15) > 1e-6 {
		t.Errorf("objective = %v, want 15", sol.Objective)
	}
	if sol.Value(open) != 1 {
		t.Errorf("facility should be open")
	}
}

func TestInfeasibleMILP(t *testing.T) {
	p := NewProblem(lp.Minimize)
	x, err := p.AddIntegerVariable("x", 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("impossible", lp.GE, 5, lp.Term{Var: x, Coeff: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestIntegerInfeasibleButLPFeasible(t *testing.T) {
	// 2x = 1 with x integer in [0,1]: the relaxation is feasible (x=0.5)
	// but no integer solution exists.
	p := NewProblem(lp.Minimize)
	x, err := p.AddIntegerVariable("x", 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("eq", lp.EQ, 1, lp.Term{Var: x, Coeff: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestUnboundedMILP(t *testing.T) {
	p := NewProblem(lp.Maximize)
	if _, err := p.AddIntegerVariable("x", 0, lp.Infinity, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Errorf("want ErrUnbounded, got %v", err)
	}
}

func TestNodeLimit(t *testing.T) {
	// A knapsack with many items and a tiny node budget must hit the limit
	// (or finish, in which case the limit error must not fire spuriously).
	rng := rand.New(rand.NewSource(1))
	p := NewProblem(lp.Maximize)
	terms := make([]lp.Term, 0, 25)
	for i := 0; i < 25; i++ {
		v, err := p.AddBinaryVariable("item", 1+rng.Float64()*10)
		if err != nil {
			t.Fatal(err)
		}
		terms = append(terms, lp.Term{Var: v, Coeff: 1 + rng.Float64()*10})
	}
	if err := p.AddConstraint("capacity", lp.LE, 40, terms...); err != nil {
		t.Fatal(err)
	}
	_, err := p.SolveWithOptions(Options{MaxNodes: 3})
	if err != nil && !errors.Is(err, ErrNodeLimit) {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestValidation(t *testing.T) {
	p := NewProblem(lp.Minimize)
	if _, err := p.AddVariable("bad", 2, 1, 0); err == nil {
		t.Error("ub < lb should error")
	}
	if _, err := p.AddVariable("nan", math.NaN(), 1, 0); err == nil {
		t.Error("NaN bound should error")
	}
	if err := p.AddConstraint("bad", lp.LE, 1, lp.Term{Var: 99, Coeff: 1}); err == nil {
		t.Error("unknown variable should error")
	}
	x, err := p.AddBinaryVariable("x", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumVariables() != 1 || p.NumIntegers() != 1 {
		t.Errorf("counts = %d/%d, want 1/1", p.NumVariables(), p.NumIntegers())
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value(x) != 0 {
		t.Errorf("minimizing cost-1 binary should pick 0, got %v", sol.Value(x))
	}
	if !math.IsNaN(sol.Value(lp.Var(9))) {
		t.Error("out-of-range Value should be NaN")
	}
}

// TestBranchingDeterministic pins run-to-run reproducibility now that nodes
// share one mutable relaxation and warm-start from their parents' bases:
// solving the same model twice must explore the same number of nodes and
// return bit-identical values.
func TestBranchingDeterministic(t *testing.T) {
	build := func() *Problem {
		rng := rand.New(rand.NewSource(5))
		p := NewProblem(lp.Maximize)
		terms := make([]lp.Term, 0, 14)
		for i := 0; i < 14; i++ {
			v, err := p.AddBinaryVariable("item", 1+rng.Float64()*10)
			if err != nil {
				t.Fatal(err)
			}
			terms = append(terms, lp.Term{Var: v, Coeff: 1 + rng.Float64()*10})
		}
		if err := p.AddConstraint("capacity", lp.LE, 35, terms...); err != nil {
			t.Fatal(err)
		}
		return p
	}
	first, err := build().Solve()
	if err != nil {
		t.Fatalf("first solve: %v", err)
	}
	// Same model solved twice — fresh Problem and re-Solve on the same
	// Problem (which reuses the shared relaxation) must both agree.
	reused := build()
	second, err := reused.Solve()
	if err != nil {
		t.Fatalf("second solve: %v", err)
	}
	third, err := reused.Solve()
	if err != nil {
		t.Fatalf("re-solve on the same Problem: %v", err)
	}
	for _, other := range []*Solution{second, third} {
		if other.Nodes != first.Nodes {
			t.Errorf("node count %d, want %d", other.Nodes, first.Nodes)
		}
		if other.Objective != first.Objective {
			t.Errorf("objective %v, want bit-identical %v", other.Objective, first.Objective)
		}
		for v := 0; v < 14; v++ {
			if other.Value(lp.Var(v)) != first.Value(lp.Var(v)) {
				t.Errorf("value[%d] = %v, want %v", v, other.Value(lp.Var(v)), first.Value(lp.Var(v)))
			}
		}
	}
}

func TestSchedulerShapedMILP(t *testing.T) {
	// A miniature of GreenNebula's partitioning problem: 3 datacenters ×
	// 8 hours, place 100 kW of load each hour to minimize brown energy given
	// per-DC green supply, with per-DC capacity 100.  The optimum follows
	// the green supply exactly, so the brown energy has a known value.
	const (
		nDC    = 3
		nHours = 8
		load   = 100.0
	)
	green := [nDC][nHours]float64{
		{80, 80, 0, 0, 0, 0, 0, 0},
		{0, 0, 90, 90, 90, 0, 0, 0},
		{0, 0, 0, 0, 0, 70, 70, 70},
	}
	p := NewProblem(lp.Minimize)
	vars := [nDC][nHours]lp.Var{}
	for d := 0; d < nDC; d++ {
		for h := 0; h < nHours; h++ {
			v, err := p.AddVariable("load", 0, load, 0)
			if err != nil {
				t.Fatal(err)
			}
			vars[d][h] = v
			// brown_{d,h} ≥ load_{d,h} − green_{d,h}
			brown, err := p.AddVariable("brown", 0, lp.Infinity, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.AddConstraint("brown-def", lp.GE, -green[d][h],
				lp.Term{Var: brown, Coeff: 1}, lp.Term{Var: v, Coeff: -1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for h := 0; h < nHours; h++ {
		terms := make([]lp.Term, nDC)
		for d := 0; d < nDC; d++ {
			terms[d] = lp.Term{Var: vars[d][h], Coeff: 1}
		}
		if err := p.AddConstraint("demand", lp.EQ, load, terms...); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Best achievable brown energy: hours 0-1 have only 80 green at DC0
	// (20 brown each), hours 2-4 have 90 (10 brown each), hours 5-7 have 70
	// (30 brown each) → 2·20 + 3·10 + 3·30 = 160.
	if math.Abs(sol.Objective-160) > 1e-5 {
		t.Errorf("objective = %v, want 160", sol.Objective)
	}
}

// TestBranchingAddsNoRows pins the bounded-simplex contract branch and
// bound relies on: every node re-solves the one shared relaxation with its
// branch bounds edited in place (lp.SetBounds), so the relaxation's
// constraint count — and with it the simplex basis dimension, now that
// internal/lp keeps variable bounds implicit — never grows, no matter how
// many nodes the search explores.
func TestBranchingAddsNoRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := NewProblem(lp.Maximize)
	terms := make([]lp.Term, 0, 12)
	for i := 0; i < 12; i++ {
		v, err := p.AddIntegerVariable("item", 0, 3, 1+rng.Float64()*9)
		if err != nil {
			t.Fatal(err)
		}
		terms = append(terms, lp.Term{Var: v, Coeff: 1 + rng.Float64()*5})
	}
	if err := p.AddConstraint("capacity", lp.LE, 23, terms...); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Nodes < 3 {
		t.Fatalf("only %d nodes explored; the instance should branch", sol.Nodes)
	}
	if p.relax == nil {
		t.Fatal("no shared relaxation was built")
	}
	if got, want := p.relax.NumConstraints(), len(p.lpProto.cons); got != want {
		t.Errorf("relaxation has %d constraints after %d nodes, want %d: branching must edit bounds, not add rows",
			got, sol.Nodes, want)
	}
	if got, want := p.relax.NumVariables(), len(p.lpProto.vars); got != want {
		t.Errorf("relaxation has %d variables, want %d", got, want)
	}
}

// TestPresolveKeepsNodeChainWarm pins the presolve/warm-start contract at
// the milp layer: with LP presolve on (the default), a branching search
// must reach the same optimum as with presolve off, and no node's
// warm-started relaxation may fall back to a cold solve — branch-bound
// re-tightening under a warm basis has to preserve the parent's basis.
func TestPresolveKeepsNodeChainWarm(t *testing.T) {
	build := func() *Problem {
		rng := rand.New(rand.NewSource(17))
		p := NewProblem(lp.Maximize)
		terms := make([]lp.Term, 0, 16)
		for i := 0; i < 16; i++ {
			v, err := p.AddBinaryVariable("item", 1+rng.Float64()*9)
			if err != nil {
				t.Fatal(err)
			}
			terms = append(terms, lp.Term{Var: v, Coeff: 1 + rng.Float64()*9})
		}
		if err := p.AddConstraint("capacity", lp.LE, 40, terms...); err != nil {
			t.Fatal(err)
		}
		// A redundant cap and a fixed variable give the root presolve
		// something to remove.
		fixed, err := p.AddVariable("fixed", 2, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.AddConstraint("loose", lp.LE, 1000, append(terms, lp.Term{Var: fixed, Coeff: 1})...); err != nil {
			t.Fatal(err)
		}
		return p
	}
	on, err := build().SolveWithOptions(Options{})
	if err != nil {
		t.Fatalf("presolve-on solve: %v", err)
	}
	off, err := build().SolveWithOptions(Options{Presolve: lp.PresolveOff})
	if err != nil {
		t.Fatalf("presolve-off solve: %v", err)
	}
	if on.Objective != off.Objective {
		t.Errorf("objective %v presolve-on vs %v presolve-off", on.Objective, off.Objective)
	}
	if !on.Proven || !off.Proven {
		t.Errorf("searches did not close: on=%v off=%v", on.Proven, off.Proven)
	}
	if on.Nodes <= 1 {
		t.Fatalf("instance solved at the root (%d nodes); the warm-chain assertion needs branching", on.Nodes)
	}
	if on.LPStats.ColdFallbacks != 0 {
		t.Errorf("%d cold fallbacks across %d nodes; branch re-tightening must keep parent bases installable (%+v)",
			on.LPStats.ColdFallbacks, on.Nodes, on.LPStats)
	}
	if on.LPStats.RowsRemoved == 0 && on.LPStats.ColsRemoved == 0 {
		t.Errorf("presolve removed nothing at the root (%+v); the instance was built with removable structure", on.LPStats)
	}
	if on.LPStats.Pivots == 0 {
		t.Errorf("LPStats recorded no simplex work over %d nodes", on.Nodes)
	}
}
