// Package milp adds mixed-integer support on top of the internal/lp simplex
// solver via best-first branch and bound.
//
// The paper formulates datacenter siting as a MILP (binary "is a datacenter
// placed at location d" variables on top of the continuous provisioning
// variables) and GreenNebula's workload partitioning as a small MILP.  This
// package solves such problems exactly for moderate sizes: it relaxes the
// integrality constraints, solves the LP relaxation, and branches on the most
// fractional integer variable until the gap closes.
package milp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"greencloud/internal/lp"
)

// Problem is a mixed-integer linear program: an lp.Problem plus a set of
// variables constrained to take integer values.
type Problem struct {
	sense    lp.Sense
	lpProto  *builderProto
	integers map[lp.Var]bool

	// relax is the shared LP relaxation: built once, then re-solved at
	// every branch-and-bound node with only the branch bounds mutated
	// (lp.SetBounds) and the parent node's basis as a warm start.  Bound
	// tightening keeps the parent's optimal basis dual-feasible, so child
	// relaxations restart with a few dual-simplex pivots instead of a
	// from-scratch phase 1.
	relax     *lp.Problem
	relaxVars int
	relaxCons int
}

// builderProto records the model so the shared relaxation can be rebuilt
// (and per-node bounds reset) at every branch-and-bound node.
type builderProto struct {
	vars []protoVar
	cons []protoCon
}

type protoVar struct {
	name string
	lb   float64
	ub   float64
	cost float64
}

type protoCon struct {
	name  string
	op    lp.Op
	rhs   float64
	terms []lp.Term
}

// NewProblem returns an empty mixed-integer problem.
func NewProblem(sense lp.Sense) *Problem {
	return &Problem{
		sense:    sense,
		lpProto:  &builderProto{},
		integers: make(map[lp.Var]bool),
	}
}

// AddVariable adds a continuous variable.
func (p *Problem) AddVariable(name string, lb, ub, cost float64) (lp.Var, error) {
	if math.IsNaN(lb) || math.IsNaN(ub) || math.IsNaN(cost) {
		return -1, fmt.Errorf("milp: variable %q has NaN bounds or cost", name)
	}
	if ub < lb {
		return -1, fmt.Errorf("milp: variable %q has upper bound below lower bound", name)
	}
	p.lpProto.vars = append(p.lpProto.vars, protoVar{name: name, lb: lb, ub: ub, cost: cost})
	return lp.Var(len(p.lpProto.vars) - 1), nil
}

// AddIntegerVariable adds a variable constrained to integer values.
func (p *Problem) AddIntegerVariable(name string, lb, ub, cost float64) (lp.Var, error) {
	v, err := p.AddVariable(name, lb, ub, cost)
	if err != nil {
		return v, err
	}
	p.integers[v] = true
	return v, nil
}

// AddBinaryVariable adds a 0/1 variable.
func (p *Problem) AddBinaryVariable(name string, cost float64) (lp.Var, error) {
	return p.AddIntegerVariable(name, 0, 1, cost)
}

// AddConstraint adds a linear constraint.
func (p *Problem) AddConstraint(name string, op lp.Op, rhs float64, terms ...lp.Term) error {
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(p.lpProto.vars) {
			return fmt.Errorf("milp: constraint %q references unknown variable %d", name, t.Var)
		}
	}
	copied := make([]lp.Term, len(terms))
	copy(copied, terms)
	p.lpProto.cons = append(p.lpProto.cons, protoCon{name: name, op: op, rhs: rhs, terms: copied})
	return nil
}

// NumVariables returns the number of variables (continuous and integer).
func (p *Problem) NumVariables() int { return len(p.lpProto.vars) }

// NumIntegers returns the number of integer-constrained variables.
func (p *Problem) NumIntegers() int { return len(p.integers) }

// Solution is the result of a MILP solve.
type Solution struct {
	Status    lp.Status
	Objective float64
	values    []float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Proven is true when the search closed: the solution is optimal.  A
	// solve stopped by a node, deadline or cancellation budget returns its
	// best incumbent with Proven false and the residual Gap instead.
	Proven bool
	// Gap is the relative gap |incumbent − bound| / max(1, |incumbent|)
	// between the incumbent and the best open-node relaxation bound at the
	// moment the search stopped (0 when Proven).
	Gap float64
	// LPStats aggregates the simplex and presolve work of every node
	// relaxation solved during the search — including pruned and infeasible
	// nodes, whose simplex work is real even though they produced no
	// incumbent.  LPStats.ColdFallbacks counts warm starts that had to be
	// abandoned; a healthy branch-and-bound run keeps it at zero beyond the
	// (intentionally cold) root node.
	LPStats lp.Stats
}

// Value returns the value of a variable in the best solution found.
func (s *Solution) Value(v lp.Var) float64 {
	if s == nil || int(v) < 0 || int(v) >= len(s.values) {
		return math.NaN()
	}
	return s.values[v]
}

// Errors returned by Solve.  The budget errors (ErrNodeLimit, ErrDeadline,
// ErrCancelled) are only returned when the budget ran out before ANY feasible
// integer solution was found; with an incumbent in hand the solve returns it
// with a nil error, Proven false and the residual Gap instead.
var (
	ErrInfeasible = errors.New("milp: problem is infeasible")
	ErrUnbounded  = errors.New("milp: relaxation is unbounded")
	ErrNodeLimit  = errors.New("milp: node limit reached without finding a feasible solution")
	ErrDeadline   = fmt.Errorf("milp: deadline exceeded before finding a feasible solution: %w", context.DeadlineExceeded)
	ErrCancelled  = fmt.Errorf("milp: solve cancelled: %w", context.Canceled)
)

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes caps the number of explored nodes (0 means a generous
	// default).
	MaxNodes int
	// IntegralityTol is the tolerance for treating a value as integral.
	IntegralityTol float64
	// Gap is the relative optimality gap at which the search stops early.
	Gap float64
	// Deadline, when nonzero, bounds the wall-clock time of the search and
	// of every node relaxation.  At the deadline the best incumbent is
	// returned with its bound gap.
	Deadline time.Time
	// Ctx, when non-nil, cancels the search cooperatively between nodes and
	// between simplex iterations inside a node.
	Ctx context.Context
	// Pricing selects the simplex pricing rule for every node relaxation
	// (the zero value is lp.PricingDevex).
	Pricing lp.PricingRule
	// Presolve toggles LP presolve on the node relaxations.  The zero value
	// runs it: the root node solves cold and gets the full reduction, while
	// warm-started child nodes re-tighten from their branch bounds without
	// disturbing the parent basis, so the dual-simplex restart chain stays
	// warm (lp.SolveOptions.Presolve).
	Presolve lp.PresolveMode
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 20000
	}
	if o.IntegralityTol == 0 {
		o.IntegralityTol = 1e-6
	}
	return o
}

// bound is an extra variable bound imposed along a branch.
type bound struct {
	v  lp.Var
	lo float64
	hi float64
}

// node is one branch-and-bound node.
type node struct {
	bounds []bound
	// relaxation objective of the parent, used for best-first ordering.
	parentObj float64
	// basis is the parent relaxation's optimal basis; the node's own
	// relaxation warm-starts from it (dual-feasible restart).
	basis *lp.Basis
}

// Solve runs branch and bound with default options.
func (p *Problem) Solve() (*Solution, error) { return p.SolveWithOptions(Options{}) }

// SolveWithOptions runs branch and bound.
func (p *Problem) SolveWithOptions(opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	lpOpts := lp.SolveOptions{Deadline: opts.Deadline, Ctx: opts.Ctx, Pricing: opts.Pricing, Presolve: opts.Presolve}

	if len(p.integers) == 0 {
		sol, err := p.solveRelaxation(nil, nil, lpOpts)
		if err != nil {
			return convertLPFailure(sol, err)
		}
		return &Solution{Status: lp.Optimal, Objective: sol.Objective, values: sol.Values(),
			Nodes: 1, Proven: true, LPStats: sol.Stats}, nil
	}

	better := func(a, b float64) bool {
		if p.sense == lp.Minimize {
			return a < b
		}
		return a > b
	}

	var (
		best      *Solution
		nodesDone int
		incumbent = math.Inf(1)
		queue     []node
		lpStats   lp.Stats // aggregate simplex/presolve work across every node
	)
	if p.sense == lp.Maximize {
		incumbent = math.Inf(-1)
	}
	queue = append(queue, node{})

	for len(queue) > 0 {
		if stopErr := budgetStop(opts, nodesDone); stopErr != nil {
			if best != nil {
				best.LPStats = lpStats
				return finishPartial(best, nodesDone, queue, incumbent, better), nil
			}
			return nil, stopErr
		}
		// Best-first: pick the node with the most promising parent bound.
		sort.Slice(queue, func(i, j int) bool {
			return better(queue[i].parentObj, queue[j].parentObj)
		})
		current := queue[0]
		queue = queue[1:]
		nodesDone++

		relax, err := p.solveRelaxation(current.bounds, current.basis, lpOpts)
		if relax != nil {
			lpStats.Add(relax.Stats) // pruned nodes did simplex work too
		}
		if err != nil {
			if errors.Is(err, lp.ErrInfeasible) {
				continue // prune
			}
			if errors.Is(err, lp.ErrUnbounded) {
				// An unbounded relaxation at the root means the MILP is
				// unbounded (or needs bounds we don't have); deeper nodes
				// only make the problem more constrained.
				if nodesDone == 1 {
					return nil, ErrUnbounded
				}
				continue
			}
			if errors.Is(err, lp.ErrDeadline) || errors.Is(err, lp.ErrCancelled) {
				// The budget expired inside a node relaxation.  The current
				// node goes back on the queue so its bound still counts
				// toward the reported gap.
				if best != nil {
					best.LPStats = lpStats
					queue = append(queue, current)
					return finishPartial(best, nodesDone, queue, incumbent, better), nil
				}
				if errors.Is(err, lp.ErrDeadline) {
					return nil, ErrDeadline
				}
				return nil, ErrCancelled
			}
			return nil, err
		}

		// Bound: prune if the relaxation cannot beat the incumbent.
		if best != nil && !better(relax.Objective, incumbent) {
			continue
		}

		// Find the most fractional integer variable.  Iterate in variable
		// order (not map order) so ties break deterministically and node
		// counts are reproducible run to run.
		branchVar := lp.Var(-1)
		worstFrac := opts.IntegralityTol
		for v := 0; v < len(p.lpProto.vars); v++ {
			if !p.integers[lp.Var(v)] {
				continue
			}
			val := relax.Value(lp.Var(v))
			frac := math.Abs(val - math.Round(val))
			if frac > worstFrac {
				worstFrac = frac
				branchVar = lp.Var(v)
			}
		}

		if branchVar == -1 {
			// Integral solution.
			if best == nil || better(relax.Objective, incumbent) {
				vals := relax.Values()
				// Snap integer values exactly.
				for v := range p.integers {
					vals[v] = math.Round(vals[v])
				}
				best = &Solution{Status: lp.Optimal, Objective: relax.Objective, values: vals}
				incumbent = relax.Objective
			}
			continue
		}

		// Branch.  Children inherit this node's optimal basis: tightening
		// one variable bound keeps it dual-feasible, so each child
		// re-solves with a dual-simplex restart instead of phase 1.
		val := relax.Value(branchVar)
		floor := math.Floor(val)
		ceil := math.Ceil(val)
		down := append(append([]bound{}, current.bounds...), bound{v: branchVar, lo: math.Inf(-1), hi: floor})
		up := append(append([]bound{}, current.bounds...), bound{v: branchVar, lo: ceil, hi: math.Inf(1)})
		queue = append(queue,
			node{bounds: down, parentObj: relax.Objective, basis: relax.Basis()},
			node{bounds: up, parentObj: relax.Objective, basis: relax.Basis()},
		)
	}

	if best == nil {
		return nil, ErrInfeasible
	}
	best.Nodes = nodesDone
	best.Proven = true
	best.LPStats = lpStats
	return best, nil
}

// budgetStop reports the applicable budget error when the search must stop
// before exploring another node, or nil to continue.
func budgetStop(opts Options, nodesDone int) error {
	if nodesDone >= opts.MaxNodes {
		return ErrNodeLimit
	}
	if opts.Ctx != nil {
		select {
		case <-opts.Ctx.Done():
			if errors.Is(opts.Ctx.Err(), context.DeadlineExceeded) {
				return ErrDeadline
			}
			return ErrCancelled
		default:
		}
	}
	if !opts.Deadline.IsZero() && !time.Now().Before(opts.Deadline) {
		return ErrDeadline
	}
	return nil
}

// finishPartial stamps a budget-stopped incumbent with its node count and the
// residual bound gap computed from the open queue (the root node carries no
// bound of its own and is skipped).
func finishPartial(best *Solution, nodesDone int, queue []node, incumbent float64, better func(a, b float64) bool) *Solution {
	best.Nodes = nodesDone
	best.Proven = false
	bound := incumbent
	for _, nd := range queue {
		if nd.basis != nil && better(nd.parentObj, bound) {
			bound = nd.parentObj
		}
	}
	best.Gap = math.Abs(incumbent-bound) / math.Max(1, math.Abs(incumbent))
	return best
}

// solveRelaxation solves the LP relaxation with extra branch bounds applied,
// warm-started from the parent node's basis.  The relaxation Problem is
// shared across all nodes: only variable bounds change between solves, so
// each node resets every integer variable's bounds from the prototype and
// re-applies its own branch bounds (branch bounds never touch continuous
// variables).
func (p *Problem) solveRelaxation(extra []bound, warm *lp.Basis, lpOpts lp.SolveOptions) (*lp.Solution, error) {
	prob, err := p.relaxation()
	if err != nil {
		return nil, err
	}
	for v := range p.integers {
		pv := p.lpProto.vars[v]
		lo, hi := pv.lb, pv.ub
		for _, b := range extra {
			if b.v != v {
				continue
			}
			if b.lo > lo {
				lo = b.lo
			}
			if b.hi < hi {
				hi = b.hi
			}
		}
		if hi < lo {
			// This branch is empty.
			return nil, lp.ErrInfeasible
		}
		if err := prob.SetBounds(v, lo, hi); err != nil {
			return nil, err
		}
	}
	return prob.SolveFromWithOptions(warm, lpOpts)
}

// relaxation returns the shared relaxation Problem, (re)building it when the
// model grew since it was last built.
func (p *Problem) relaxation() (*lp.Problem, error) {
	if p.relax != nil && p.relaxVars == len(p.lpProto.vars) && p.relaxCons == len(p.lpProto.cons) {
		return p.relax, nil
	}
	prob := lp.NewProblem(p.sense)
	for _, pv := range p.lpProto.vars {
		if _, err := prob.AddVariable(pv.name, pv.lb, pv.ub, pv.cost); err != nil {
			return nil, err
		}
	}
	for _, pc := range p.lpProto.cons {
		if err := prob.AddConstraint(pc.name, pc.op, pc.rhs, pc.terms...); err != nil {
			return nil, err
		}
	}
	p.relax = prob
	p.relaxVars = len(p.lpProto.vars)
	p.relaxCons = len(p.lpProto.cons)
	return prob, nil
}

func convertLPFailure(sol *lp.Solution, err error) (*Solution, error) {
	switch {
	case errors.Is(err, lp.ErrInfeasible):
		return &Solution{Status: lp.Infeasible}, ErrInfeasible
	case errors.Is(err, lp.ErrUnbounded):
		return &Solution{Status: lp.Unbounded}, ErrUnbounded
	default:
		return nil, err
	}
}
