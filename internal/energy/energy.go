// Package energy models how a datacenter's power demand is met from on-site
// green production, energy storage (batteries or grid net metering) and
// brown grid power over a chronological sequence of epochs.
//
// It implements the storage-related constraints of the paper's optimization
// problem (battery level evolution with charging efficiency, net-metering
// account that can never go negative, brown power capped by the nearest
// plant) as a greedy chronological simulation: surplus green energy is
// stored, deficits are covered first from storage and then from the grid.
// The placement optimizer's fast evaluator and the GreenNebula emulation
// both build on this package.
package energy

import (
	"errors"
	"fmt"

	"greencloud/internal/series"
)

// StorageMode selects how surplus green energy can be carried across epochs.
type StorageMode int

const (
	// NoStorage discards any surplus green energy.
	NoStorage StorageMode = iota + 1
	// NetMetering banks surplus energy in the grid and draws it back
	// later (the paper's netLevel account, always ≥ 0).
	NetMetering
	// Batteries stores surplus energy in on-site batteries with a
	// round-trip charging efficiency and a capacity limit.
	Batteries
)

var storageNames = map[StorageMode]string{
	NoStorage:   "none",
	NetMetering: "net-metering",
	Batteries:   "batteries",
}

// String returns the storage mode name.
func (m StorageMode) String() string {
	if s, ok := storageNames[m]; ok {
		return s
	}
	return fmt.Sprintf("storage(%d)", int(m))
}

// BalanceInput describes one site-year (or any chronological horizon) to
// balance.  All slices must have the same length; epoch i represents
// Weights[i] hours.
type BalanceInput struct {
	// GreenKW is the on-site green production per epoch (kW).
	GreenKW []float64
	// DemandKW is the total power demand per epoch (kW), already
	// including PUE overhead and migration overhead.
	DemandKW []float64
	// Weights is the number of hours each epoch represents.
	Weights []float64
	// Mode selects the storage technology.
	Mode StorageMode
	// BatteryCapacityKWh is the battery bank size (Batteries mode only).
	BatteryCapacityKWh float64
	// BatteryEfficiency is the charging efficiency in (0,1].
	BatteryEfficiency float64
	// MaxBrownKW caps the power that can be drawn from the grid
	// (the nearest-plant constraint); zero means unlimited.
	MaxBrownKW float64
	// InitialBatteryKWh is the battery charge at the start of the horizon.
	InitialBatteryKWh float64
}

// BalanceResult reports how demand was met in each epoch and the yearly
// totals the cost model and the green-fraction constraint need.
type BalanceResult struct {
	// Per-epoch series (kW, except levels in kWh at the end of the epoch).
	BrownKW         []float64
	GreenUsedKW     []float64
	BattChargeKW    []float64
	BattDischargeKW []float64
	NetChargeKW     []float64
	NetDischargeKW  []float64
	BatteryLevelKWh []float64
	NetLevelKWh     []float64
	// UnmetKW is demand that could not be covered (only possible when
	// MaxBrownKW caps grid power); a feasible provisioning has all zeros.
	UnmetKW []float64

	// Yearly totals in kWh.
	DemandKWh         float64
	GreenProducedKWh  float64
	GreenUsedKWh      float64
	BrownKWh          float64
	NetChargedKWh     float64
	NetDischargedKWh  float64
	BattDischargedKWh float64
	UnmetKWh          float64
}

// Errors returned by Balance.
var (
	ErrLengthMismatch = errors.New("energy: green, demand and weight series must have equal length")
	ErrBadEfficiency  = errors.New("energy: battery efficiency must be in (0,1]")
	ErrBadMode        = errors.New("energy: unknown storage mode")
)

// GreenFraction returns the fraction of the demand that was covered by green
// sources (direct use, battery discharge, or net-metered credit), the metric
// the paper's minGreen constraint is written against.
func (r *BalanceResult) GreenFraction() float64 {
	if r.DemandKWh <= 0 {
		return 1
	}
	green := r.GreenUsedKWh + r.BattDischargedKWh + r.NetDischargedKWh
	f := green / r.DemandKWh
	if f > 1 {
		return 1
	}
	return f
}

// Feasible reports whether every epoch's demand was fully met.
func (r *BalanceResult) Feasible() bool { return r.UnmetKWh < 1e-6 }

// Balance runs the chronological greedy storage simulation.  Each call
// allocates a fresh BalanceResult; hot loops that balance the same horizon
// length many times should reuse a Balancer instead.
func Balance(in BalanceInput) (*BalanceResult, error) {
	return new(Balancer).Balance(in)
}

// Balancer runs Balance without allocating in steady state: the per-epoch
// result series are owned by the Balancer and reused across calls (they are
// only reallocated when the horizon length grows).  The returned
// *BalanceResult aliases the Balancer's buffers and is invalidated by the
// next Balance call.  A Balancer must not be used concurrently.
type Balancer struct {
	res BalanceResult
}

// Balance is the zero-allocation equivalent of the package-level Balance.
func (bl *Balancer) Balance(in BalanceInput) (*BalanceResult, error) {
	n := len(in.GreenKW)
	// Resize only — no zeroing: simulate writes every element of every
	// series on each epoch, so a clearing pass would be dead work.
	r := &bl.res
	*r = BalanceResult{
		BrownKW:         series.Grow(r.BrownKW, n),
		GreenUsedKW:     series.Grow(r.GreenUsedKW, n),
		BattChargeKW:    series.Grow(r.BattChargeKW, n),
		BattDischargeKW: series.Grow(r.BattDischargeKW, n),
		NetChargeKW:     series.Grow(r.NetChargeKW, n),
		NetDischargeKW:  series.Grow(r.NetDischargeKW, n),
		BatteryLevelKWh: series.Grow(r.BatteryLevelKWh, n),
		NetLevelKWh:     series.Grow(r.NetLevelKWh, n),
		UnmetKW:         series.Grow(r.UnmetKW, n),
	}
	tot, err := simulate(in, r)
	if err != nil {
		return nil, err
	}
	r.DemandKWh = tot.DemandKWh
	r.GreenProducedKWh = tot.GreenProducedKWh
	r.GreenUsedKWh = tot.GreenUsedKWh
	r.BrownKWh = tot.BrownKWh
	r.NetChargedKWh = tot.NetChargedKWh
	r.NetDischargedKWh = tot.NetDischargedKWh
	r.BattDischargedKWh = tot.BattDischargedKWh
	r.UnmetKWh = tot.UnmetKWh
	return r, nil
}

// simulate is the single chronological storage simulation behind both
// Balance and Totals: one statement sequence, so the two can never drift
// apart arithmetically.  When res is non-nil the per-epoch series are
// recorded into it (res's series must already be sized to len(in.GreenKW));
// when res is nil only the totals are accumulated and the function performs
// no heap allocations and no series writes.
func simulate(in BalanceInput, res *BalanceResult) (BalanceTotals, error) {
	n := len(in.GreenKW)
	var r BalanceTotals
	if len(in.DemandKW) != n || len(in.Weights) != n {
		return r, ErrLengthMismatch
	}
	switch in.Mode {
	case NoStorage, NetMetering, Batteries:
	default:
		return r, ErrBadMode
	}
	eff := in.BatteryEfficiency
	if in.Mode == Batteries {
		if eff <= 0 || eff > 1 {
			return r, ErrBadEfficiency
		}
	} else {
		eff = 1
	}

	battLevel := in.InitialBatteryKWh
	if battLevel > in.BatteryCapacityKWh {
		battLevel = in.BatteryCapacityKWh
	}
	netLevel := 0.0

	for i := 0; i < n; i++ {
		hours := in.Weights[i]
		if hours <= 0 {
			return BalanceTotals{}, fmt.Errorf("energy: epoch %d has non-positive weight %v", i, hours)
		}
		green := nonNegative(in.GreenKW[i])
		demand := nonNegative(in.DemandKW[i])
		r.DemandKWh += demand * hours
		r.GreenProducedKWh += green * hours

		// 1. Use green production directly.
		direct := green
		if direct > demand {
			direct = demand
		}
		r.GreenUsedKWh += direct * hours
		surplus := green - direct
		deficit := demand - direct

		// 2. Store surplus.
		battChargePow, netChargePow := 0.0, 0.0
		switch in.Mode {
		case Batteries:
			if surplus > 0 && battLevel < in.BatteryCapacityKWh {
				// Power we can absorb this epoch limited by remaining capacity.
				room := in.BatteryCapacityKWh - battLevel
				chargePow := surplus
				if chargePow*eff*hours > room {
					chargePow = room / (eff * hours)
				}
				battLevel += chargePow * eff * hours
				battChargePow = chargePow
			}
		case NetMetering:
			if surplus > 0 {
				netLevel += surplus * hours
				netChargePow = surplus
				r.NetChargedKWh += surplus * hours
			}
		case NoStorage:
			// Surplus is curtailed.
		}

		// 3. Cover the deficit: storage first, then brown power.
		battDischargePow, netDischargePow := 0.0, 0.0
		if deficit > 0 {
			switch in.Mode {
			case Batteries:
				dischargePow := deficit
				if dischargePow*hours > battLevel {
					dischargePow = battLevel / hours
				}
				battLevel -= dischargePow * hours
				battDischargePow = dischargePow
				r.BattDischargedKWh += dischargePow * hours
				deficit -= dischargePow
			case NetMetering:
				dischargePow := deficit
				if dischargePow*hours > netLevel {
					dischargePow = netLevel / hours
				}
				netLevel -= dischargePow * hours
				netDischargePow = dischargePow
				r.NetDischargedKWh += dischargePow * hours
				deficit -= dischargePow
			}
		}
		brown := 0.0
		if deficit > 0 {
			brown = deficit
			if in.MaxBrownKW > 0 && brown > in.MaxBrownKW {
				brown = in.MaxBrownKW
			}
			if brown > r.MaxBrownKW {
				r.MaxBrownKW = brown
			}
			r.BrownKWh += brown * hours
			deficit -= brown
		}
		unmet := 0.0
		if deficit > 1e-12 {
			unmet = deficit
			r.UnmetKWh += deficit * hours
		}

		if res != nil {
			res.GreenUsedKW[i] = direct
			res.BattChargeKW[i] = battChargePow
			res.NetChargeKW[i] = netChargePow
			res.BattDischargeKW[i] = battDischargePow
			res.NetDischargeKW[i] = netDischargePow
			res.BrownKW[i] = brown
			res.UnmetKW[i] = unmet
			res.BatteryLevelKWh[i] = battLevel
			res.NetLevelKWh[i] = netLevel
		}
	}
	return r, nil
}

// BalanceTotals is the scalar outcome of a balance: the yearly totals the
// cost model, the green-fraction constraint and the nearest-plant check need,
// without any per-epoch series.
type BalanceTotals struct {
	DemandKWh         float64
	GreenProducedKWh  float64
	GreenUsedKWh      float64
	BrownKWh          float64
	NetChargedKWh     float64
	NetDischargedKWh  float64
	BattDischargedKWh float64
	UnmetKWh          float64
	// MaxBrownKW is the largest brown power draw of any epoch (the
	// nearest-plant constraint is written against it).
	MaxBrownKW float64
}

// GreenFraction mirrors BalanceResult.GreenFraction.
func (t *BalanceTotals) GreenFraction() float64 {
	if t.DemandKWh <= 0 {
		return 1
	}
	green := t.GreenUsedKWh + t.BattDischargedKWh + t.NetDischargedKWh
	f := green / t.DemandKWh
	if f > 1 {
		return 1
	}
	return f
}

// Feasible mirrors BalanceResult.Feasible.
func (t *BalanceTotals) Feasible() bool { return t.UnmetKWh < 1e-6 }

// Totals runs the chronological greedy storage simulation exactly like
// Balance but accumulates only the yearly totals, performing no heap
// allocations and no per-epoch series writes.  Balance and Totals share the
// single simulate core — one statement sequence — so the returned totals
// are bit-identical to the ones a full Balance would report; hot loops that
// only need totals (the plant-sizing bisection, cost-only evaluation)
// should call this instead.
func Totals(in BalanceInput) (BalanceTotals, error) {
	return simulate(in, nil)
}

// RequiredPlantScale returns the multiplicative factor by which a green
// plant's capacity must be scaled so that the balance reaches the target
// green fraction, using bisection over scale.  greenPerKW is the per-epoch
// production of one kW of installed plant; the other inputs are as in
// Balance.  It returns the smallest scale in [0, maxScale] that reaches the
// target, or maxScale if even that is insufficient (the caller then knows
// the target is unreachable with this source mix).
func RequiredPlantScale(greenPerKW, demandKW, weights []float64, mode StorageMode,
	battCapKWhPerKW float64, battEff float64, target float64, maxScale float64) (float64, error) {
	if target <= 0 {
		return 0, nil
	}
	if maxScale <= 0 {
		return 0, errors.New("energy: maxScale must be positive")
	}
	green := make([]float64, len(greenPerKW))
	eval := func(scale float64) (float64, error) {
		series.Scale(green, scale, greenPerKW)
		res, err := Balance(BalanceInput{
			GreenKW:            green,
			DemandKW:           demandKW,
			Weights:            weights,
			Mode:               mode,
			BatteryCapacityKWh: battCapKWhPerKW * scale,
			BatteryEfficiency:  battEff,
		})
		if err != nil {
			return 0, err
		}
		return res.GreenFraction(), nil
	}
	hiFrac, err := eval(maxScale)
	if err != nil {
		return 0, err
	}
	if hiFrac < target {
		return maxScale, nil
	}
	lo, hi := 0.0, maxScale
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		frac, err := eval(mid)
		if err != nil {
			return 0, err
		}
		if frac >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

func nonNegative(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
