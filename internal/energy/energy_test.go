package energy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func constSeries(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func TestBalanceValidation(t *testing.T) {
	if _, err := Balance(BalanceInput{GreenKW: []float64{1}, DemandKW: []float64{1, 2}, Weights: []float64{1}}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Balance(BalanceInput{GreenKW: []float64{1}, DemandKW: []float64{1}, Weights: []float64{1}, Mode: 0}); err == nil {
		t.Error("unknown mode should error")
	}
	if _, err := Balance(BalanceInput{
		GreenKW: []float64{1}, DemandKW: []float64{1}, Weights: []float64{1},
		Mode: Batteries, BatteryEfficiency: 0,
	}); err == nil {
		t.Error("zero efficiency with batteries should error")
	}
	if _, err := Balance(BalanceInput{
		GreenKW: []float64{1}, DemandKW: []float64{1}, Weights: []float64{0}, Mode: NoStorage,
	}); err == nil {
		t.Error("zero weight should error")
	}
}

func TestBalanceAllBrown(t *testing.T) {
	res, err := Balance(BalanceInput{
		GreenKW:  constSeries(24, 0),
		DemandKW: constSeries(24, 100),
		Weights:  constSeries(24, 1),
		Mode:     NoStorage,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.BrownKWh, 2400.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("BrownKWh = %v, want %v", got, want)
	}
	if res.GreenFraction() != 0 {
		t.Errorf("green fraction = %v, want 0", res.GreenFraction())
	}
	if !res.Feasible() {
		t.Error("unlimited brown power should always be feasible")
	}
}

func TestBalanceAllGreen(t *testing.T) {
	res, err := Balance(BalanceInput{
		GreenKW:  constSeries(24, 150),
		DemandKW: constSeries(24, 100),
		Weights:  constSeries(24, 1),
		Mode:     NoStorage,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BrownKWh != 0 {
		t.Errorf("BrownKWh = %v, want 0", res.BrownKWh)
	}
	if got := res.GreenFraction(); got != 1 {
		t.Errorf("green fraction = %v, want 1", got)
	}
	// Surplus is curtailed under NoStorage.
	if res.GreenUsedKWh != 2400 {
		t.Errorf("GreenUsedKWh = %v, want 2400", res.GreenUsedKWh)
	}
}

func TestNetMeteringShiftsSurplusAcrossEpochs(t *testing.T) {
	// Green only in the first half of the day, demand constant: with net
	// metering the surplus from the morning covers the evening.
	green := make([]float64, 24)
	for h := 0; h < 12; h++ {
		green[h] = 200
	}
	in := BalanceInput{
		GreenKW:  green,
		DemandKW: constSeries(24, 100),
		Weights:  constSeries(24, 1),
		Mode:     NetMetering,
	}
	res, err := Balance(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.BrownKWh > 1e-9 {
		t.Errorf("net metering should cover the whole day, brown = %v", res.BrownKWh)
	}
	if got := res.GreenFraction(); math.Abs(got-1) > 1e-9 {
		t.Errorf("green fraction = %v, want 1", got)
	}
	if res.NetChargedKWh <= 0 || res.NetDischargedKWh <= 0 {
		t.Error("net metering account should have been used")
	}
	// Same setup without storage covers only half the demand.
	in.Mode = NoStorage
	resNo, err := Balance(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := resNo.GreenFraction(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("no-storage green fraction = %v, want 0.5", got)
	}
}

func TestNetLevelNeverNegative(t *testing.T) {
	green := []float64{0, 300, 0, 0}
	res, err := Balance(BalanceInput{
		GreenKW:  green,
		DemandKW: constSeries(4, 100),
		Weights:  constSeries(4, 1),
		Mode:     NetMetering,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, lvl := range res.NetLevelKWh {
		if lvl < -1e-9 {
			t.Errorf("net level at epoch %d is negative: %v", i, lvl)
		}
	}
	// The first epoch has no banked energy yet, so it must draw brown power.
	if res.BrownKW[0] != 100 {
		t.Errorf("epoch 0 brown = %v, want 100 (nothing banked yet)", res.BrownKW[0])
	}
}

func TestBatteriesRespectCapacityAndEfficiency(t *testing.T) {
	green := []float64{500, 0, 0, 0}
	res, err := Balance(BalanceInput{
		GreenKW:            green,
		DemandKW:           constSeries(4, 100),
		Weights:            constSeries(4, 1),
		Mode:               Batteries,
		BatteryCapacityKWh: 150,
		BatteryEfficiency:  0.75,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Battery can hold at most 150 kWh, so epochs 1..3 get at most 150 kWh
	// of discharge in total.
	if res.BattDischargedKWh > 150+1e-9 {
		t.Errorf("discharged %v exceeds capacity 150", res.BattDischargedKWh)
	}
	for i, lvl := range res.BatteryLevelKWh {
		if lvl < -1e-9 || lvl > 150+1e-9 {
			t.Errorf("battery level at epoch %d out of bounds: %v", i, lvl)
		}
	}
	// Charging loses 25 %: storing 150 kWh needs 200 kWh of surplus, which
	// is available (400 kWh surplus in epoch 0).
	if res.BattChargeKW[0] <= 0 {
		t.Error("battery should charge during the surplus epoch")
	}
	if res.BrownKWh <= 0 {
		t.Error("a 150 kWh battery cannot cover 300 kWh of night demand")
	}
}

func TestBatteryEfficiencyLoss(t *testing.T) {
	// With 100 kWh of surplus and 75 % efficiency, only 75 kWh is available later.
	res, err := Balance(BalanceInput{
		GreenKW:            []float64{200, 0},
		DemandKW:           []float64{100, 100},
		Weights:            []float64{1, 1},
		Mode:               Batteries,
		BatteryCapacityKWh: 1000,
		BatteryEfficiency:  0.75,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BattDischargedKWh-75) > 1e-9 {
		t.Errorf("discharged %v, want 75 after efficiency loss", res.BattDischargedKWh)
	}
	if math.Abs(res.BrownKWh-25) > 1e-9 {
		t.Errorf("brown %v, want 25", res.BrownKWh)
	}
}

func TestMaxBrownCapCausesUnmet(t *testing.T) {
	res, err := Balance(BalanceInput{
		GreenKW:    constSeries(3, 0),
		DemandKW:   constSeries(3, 100),
		Weights:    constSeries(3, 1),
		Mode:       NoStorage,
		MaxBrownKW: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible() {
		t.Error("capped brown power should make this infeasible")
	}
	if math.Abs(res.UnmetKWh-120) > 1e-9 {
		t.Errorf("unmet = %v, want 120", res.UnmetKWh)
	}
	for i, b := range res.BrownKW {
		if b > 60+1e-12 {
			t.Errorf("epoch %d brown %v exceeds the cap", i, b)
		}
	}
}

func TestInitialBatteryCharge(t *testing.T) {
	res, err := Balance(BalanceInput{
		GreenKW:            []float64{0},
		DemandKW:           []float64{50},
		Weights:            []float64{1},
		Mode:               Batteries,
		BatteryCapacityKWh: 100,
		BatteryEfficiency:  1,
		InitialBatteryKWh:  80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BrownKWh != 0 {
		t.Errorf("initial charge should cover demand, brown = %v", res.BrownKWh)
	}
	if math.Abs(res.BatteryLevelKWh[0]-30) > 1e-9 {
		t.Errorf("battery level = %v, want 30", res.BatteryLevelKWh[0])
	}
	// Initial charge above capacity is clamped.
	res2, err := Balance(BalanceInput{
		GreenKW:            []float64{0},
		DemandKW:           []float64{0},
		Weights:            []float64{1},
		Mode:               Batteries,
		BatteryCapacityKWh: 10,
		BatteryEfficiency:  1,
		InitialBatteryKWh:  50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.BatteryLevelKWh[0] > 10+1e-9 {
		t.Errorf("initial charge not clamped to capacity: %v", res2.BatteryLevelKWh[0])
	}
}

func TestEnergyConservationProperty(t *testing.T) {
	// In every epoch: demand = greenUsed + battDischarge + netDischarge +
	// brown + unmet (within tolerance), for arbitrary green/demand shapes.
	f := func(seed int64) bool {
		n := 24
		green := make([]float64, n)
		demand := make([]float64, n)
		x := uint64(seed)
		next := func() float64 {
			x = x*6364136223846793005 + 1442695040888963407
			return float64(x%1000) / 10
		}
		for i := 0; i < n; i++ {
			green[i] = next()
			demand[i] = next()
		}
		for _, mode := range []StorageMode{NoStorage, NetMetering, Batteries} {
			res, err := Balance(BalanceInput{
				GreenKW: green, DemandKW: demand, Weights: constSeries(n, 1),
				Mode: mode, BatteryCapacityKWh: 50, BatteryEfficiency: 0.75,
			})
			if err != nil {
				return false
			}
			for i := 0; i < n; i++ {
				got := res.GreenUsedKW[i] + res.BattDischargeKW[i] + res.NetDischargeKW[i] +
					res.BrownKW[i] + res.UnmetKW[i]
				if math.Abs(got-demand[i]) > 1e-6 {
					return false
				}
			}
			if res.GreenFraction() < 0 || res.GreenFraction() > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRequiredPlantScale(t *testing.T) {
	// One kW of plant produces 0.25 kW around the clock; demand is 100 kW.
	// Reaching 50 % green with no storage needs 200 kW of plant if
	// production were flat — and it is flat here, so the answer is ~200.
	greenPerKW := constSeries(24, 0.25)
	demand := constSeries(24, 100)
	weights := constSeries(24, 1)
	scale, err := RequiredPlantScale(greenPerKW, demand, weights, NoStorage, 0, 1, 0.5, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scale-200) > 1 {
		t.Errorf("scale = %v, want ~200", scale)
	}
	// Unreachable target returns maxScale.
	scale, err = RequiredPlantScale(constSeries(24, 0), demand, weights, NoStorage, 0, 1, 0.5, 123)
	if err != nil {
		t.Fatal(err)
	}
	if scale != 123 {
		t.Errorf("unreachable target should return maxScale, got %v", scale)
	}
	// Zero target needs no plant.
	scale, err = RequiredPlantScale(greenPerKW, demand, weights, NoStorage, 0, 1, 0, 100)
	if err != nil || scale != 0 {
		t.Errorf("zero target: scale=%v err=%v", scale, err)
	}
	if _, err := RequiredPlantScale(greenPerKW, demand, weights, NoStorage, 0, 1, 0.5, 0); err == nil {
		t.Error("non-positive maxScale should error")
	}
}

func TestRequiredPlantScaleStorageHelps(t *testing.T) {
	// Production only during the day: with net metering the plant needed to
	// reach 60 % green is smaller than without storage (which cannot get
	// past the 8/24 hours of production no matter the plant size).
	greenPerKW := make([]float64, 24)
	for h := 8; h < 16; h++ {
		greenPerKW[h] = 0.8
	}
	demand := constSeries(24, 100)
	weights := constSeries(24, 1)
	withNM, err := RequiredPlantScale(greenPerKW, demand, weights, NetMetering, 0, 1, 0.6, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	without, err := RequiredPlantScale(greenPerKW, demand, weights, NoStorage, 0, 1, 0.6, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if withNM >= without {
		t.Errorf("net metering should need a smaller plant: %v vs %v", withNM, without)
	}
}

func TestStorageModeString(t *testing.T) {
	if NoStorage.String() != "none" || NetMetering.String() != "net-metering" || Batteries.String() != "batteries" {
		t.Error("unexpected storage mode names")
	}
	if StorageMode(42).String() == "" {
		t.Error("unknown mode should still have a name")
	}
}

// TestTotalsMatchesBalanceBitwise pins the contract Totals documents: its
// scalar accumulation must stay statement-for-statement identical to the
// series-producing Balance, so every total (and the max brown draw) agrees
// bit-for-bit across randomized horizons, storage modes and battery
// parameters.  A future edit to one loop that is not mirrored in the other
// fails here immediately.
func TestTotalsMatchesBalanceBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var bl Balancer
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(96)
		in := BalanceInput{
			GreenKW:  make([]float64, n),
			DemandKW: make([]float64, n),
			Weights:  make([]float64, n),
			Mode:     StorageMode(1 + rng.Intn(3)),
		}
		scale := math.Pow(10, float64(rng.Intn(5)-1))
		for i := 0; i < n; i++ {
			in.GreenKW[i] = rng.Float64() * scale
			in.DemandKW[i] = rng.Float64() * scale
			in.Weights[i] = 1 + float64(rng.Intn(24))
			if rng.Intn(12) == 0 {
				in.GreenKW[i] = -in.GreenKW[i] // exercise the nonNegative clamp
			}
		}
		if in.Mode == Batteries {
			in.BatteryCapacityKWh = rng.Float64() * scale * 10
			in.BatteryEfficiency = 0.5 + rng.Float64()*0.5
			in.InitialBatteryKWh = rng.Float64() * scale * 20
		}
		if rng.Intn(2) == 0 {
			in.MaxBrownKW = rng.Float64() * scale
		}

		res, err := bl.Balance(in)
		if err != nil {
			t.Fatalf("trial %d: Balance: %v", trial, err)
		}
		tot, err := Totals(in)
		if err != nil {
			t.Fatalf("trial %d: Totals: %v", trial, err)
		}
		maxBrown := 0.0
		for _, b := range res.BrownKW {
			if b > maxBrown {
				maxBrown = b
			}
		}
		want := BalanceTotals{
			DemandKWh:         res.DemandKWh,
			GreenProducedKWh:  res.GreenProducedKWh,
			GreenUsedKWh:      res.GreenUsedKWh,
			BrownKWh:          res.BrownKWh,
			NetChargedKWh:     res.NetChargedKWh,
			NetDischargedKWh:  res.NetDischargedKWh,
			BattDischargedKWh: res.BattDischargedKWh,
			UnmetKWh:          res.UnmetKWh,
			MaxBrownKW:        maxBrown,
		}
		if tot != want {
			t.Fatalf("trial %d (mode %v, n=%d): Totals %+v != Balance totals %+v", trial, in.Mode, n, tot, want)
		}
		if tot.GreenFraction() != res.GreenFraction() {
			t.Fatalf("trial %d: green fractions differ: %v vs %v", trial, tot.GreenFraction(), res.GreenFraction())
		}
		if tot.Feasible() != res.Feasible() {
			t.Fatalf("trial %d: feasibility differs", trial)
		}
	}

	// Error paths must match too.
	if _, err := Totals(BalanceInput{GreenKW: []float64{1}, DemandKW: []float64{1}, Weights: []float64{1, 2}}); err != ErrLengthMismatch {
		t.Errorf("length mismatch: got %v", err)
	}
	if _, err := Totals(BalanceInput{GreenKW: []float64{1}, DemandKW: []float64{1}, Weights: []float64{1}}); err != ErrBadMode {
		t.Errorf("bad mode: got %v", err)
	}
	if _, err := Totals(BalanceInput{GreenKW: []float64{1}, DemandKW: []float64{1}, Weights: []float64{1},
		Mode: Batteries, BatteryEfficiency: 2}); err != ErrBadEfficiency {
		t.Errorf("bad efficiency: got %v", err)
	}
	if _, err := Totals(BalanceInput{GreenKW: []float64{1}, DemandKW: []float64{1}, Weights: []float64{0},
		Mode: NoStorage}); err == nil {
		t.Error("non-positive weight should error")
	}
}
