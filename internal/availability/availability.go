// Package availability implements the paper's datacenter-network
// availability model: each datacenter has a per-site availability determined
// by its redundancy tier, and the network is considered available when at
// least one datacenter is up, giving
//
//	A(n) = Σ_{i=0}^{n-1} C(n,i) · a^(n−i) · (1−a)^i
//
// for n datacenters of availability a.  The package also provides the
// paper's additional sizing rule that the failure of n−1 datacenters must
// still leave S/n servers available.
package availability

import (
	"errors"
	"fmt"
	"math"
)

// Tier identifies an Uptime-Institute style redundancy tier.
type Tier int

// Datacenter tiers and their availabilities, as cited in the paper.
const (
	TierI Tier = iota + 1
	TierII
	TierIII
	TierIV
)

// PaperDefault is the per-datacenter availability the paper assumes for its
// "close to Tier III" datacenters (99.827 %).
const PaperDefault = 0.99827

// value returns the availability of a tier.
func (t Tier) value() (float64, error) {
	switch t {
	case TierI:
		return 0.9967, nil
	case TierII:
		return 0.9974, nil
	case TierIII:
		return 0.9998, nil
	case TierIV:
		return 0.99995, nil
	default:
		return 0, fmt.Errorf("availability: unknown tier %d", int(t))
	}
}

// Of returns the availability of a datacenter of the given tier.
func Of(t Tier) (float64, error) { return t.value() }

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case TierI:
		return "Tier I"
	case TierII:
		return "Tier II"
	case TierIII:
		return "Tier III"
	case TierIV:
		return "Tier IV"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// ErrUnreachable reports that no feasible datacenter count reaches the
// requested availability.
var ErrUnreachable = errors.New("availability: target not reachable")

// Network returns the availability of a network of n datacenters each with
// availability a: the probability that at least one is up.
func Network(n int, a float64) (float64, error) {
	if n < 1 {
		return 0, errors.New("availability: need at least one datacenter")
	}
	if a <= 0 || a > 1 {
		return 0, fmt.Errorf("availability: per-site availability %v out of (0,1]", a)
	}
	// P(at least one up) = 1 − (1−a)^n, numerically safer than summing the
	// binomial series the paper writes out (they are identical).
	return 1 - math.Pow(1-a, float64(n)), nil
}

// MinDatacenters returns the smallest number of datacenters (≥ 1) whose
// network availability reaches minAvailability, capped at maxN.
func MinDatacenters(perSite, minAvailability float64, maxN int) (int, error) {
	if maxN < 1 {
		maxN = 64
	}
	for n := 1; n <= maxN; n++ {
		av, err := Network(n, perSite)
		if err != nil {
			return 0, err
		}
		if av >= minAvailability {
			return n, nil
		}
	}
	return 0, ErrUnreachable
}

// SurvivableShare returns the minimum fraction of the total server count
// that each datacenter must host so that the failure of n−1 datacenters
// leaves at least 1/n of the servers available (the paper's extra
// constraint).  For n = 1 the answer is 1.
func SurvivableShare(n int) (float64, error) {
	if n < 1 {
		return 0, errors.New("availability: need at least one datacenter")
	}
	return 1 / float64(n), nil
}
