package availability

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTierValues(t *testing.T) {
	cases := []struct {
		tier Tier
		want float64
	}{
		{TierI, 0.9967},
		{TierII, 0.9974},
		{TierIII, 0.9998},
		{TierIV, 0.99995},
	}
	for _, tc := range cases {
		got, err := Of(tc.tier)
		if err != nil {
			t.Fatalf("Of(%v): %v", tc.tier, err)
		}
		if got != tc.want {
			t.Errorf("Of(%v) = %v, want %v", tc.tier, got, tc.want)
		}
	}
	if _, err := Of(Tier(9)); err == nil {
		t.Error("unknown tier should error")
	}
	if TierIII.String() != "Tier III" {
		t.Errorf("String() = %q", TierIII.String())
	}
	if Tier(9).String() == "" {
		t.Error("unknown tier String() should not be empty")
	}
}

func TestNetworkAvailability(t *testing.T) {
	// One datacenter: network availability equals its own.
	got, err := Network(1, PaperDefault)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-PaperDefault) > 1e-12 {
		t.Errorf("Network(1) = %v, want %v", got, PaperDefault)
	}
	// Two paper-default datacenters exceed five nines.
	got, err = Network(2, PaperDefault)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.99999 {
		t.Errorf("Network(2, paper default) = %v, want ≥ 0.99999", got)
	}
	// Matches the binomial form the paper writes out, for a few cases.
	for _, n := range []int{1, 2, 3, 5} {
		a := 0.99
		direct, _ := Network(n, a)
		binomial := 0.0
		for i := 0; i < n; i++ {
			binomial += float64(choose(n, i)) * math.Pow(a, float64(n-i)) * math.Pow(1-a, float64(i))
		}
		if math.Abs(direct-binomial) > 1e-9 {
			t.Errorf("n=%d: closed form %v != binomial sum %v", n, direct, binomial)
		}
	}
	if _, err := Network(0, 0.99); err == nil {
		t.Error("zero datacenters should error")
	}
	if _, err := Network(2, 0); err == nil {
		t.Error("zero per-site availability should error")
	}
	if _, err := Network(2, 1.5); err == nil {
		t.Error("per-site availability above 1 should error")
	}
}

func choose(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	out := 1
	for i := 1; i <= k; i++ {
		out = out * (n - k + i) / i
	}
	return out
}

func TestNetworkMonotoneInN(t *testing.T) {
	f := func(nRaw int, aRaw float64) bool {
		n := 1 + abs(nRaw)%10
		a := 0.5 + math.Mod(math.Abs(aRaw), 0.49)
		small, err1 := Network(n, a)
		large, err2 := Network(n+1, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return large >= small && large <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestMinDatacenters(t *testing.T) {
	// The paper's five-nines requirement with ~Tier III datacenters needs 2.
	n, err := MinDatacenters(PaperDefault, 0.99999, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("MinDatacenters(paper default, 5 nines) = %d, want 2", n)
	}
	// A very low per-site availability needs more.
	n, err = MinDatacenters(0.9, 0.99999, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n < 5 {
		t.Errorf("MinDatacenters(0.9, 5 nines) = %d, want ≥ 5", n)
	}
	// Unreachable within maxN.
	if _, err := MinDatacenters(0.5, 0.9999999999, 3); err == nil {
		t.Error("unreachable target should error")
	}
}

func TestSurvivableShare(t *testing.T) {
	got, err := SurvivableShare(4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.25 {
		t.Errorf("SurvivableShare(4) = %v, want 0.25", got)
	}
	if _, err := SurvivableShare(0); err == nil {
		t.Error("zero datacenters should error")
	}
	one, _ := SurvivableShare(1)
	if one != 1 {
		t.Errorf("SurvivableShare(1) = %v, want 1", one)
	}
}
