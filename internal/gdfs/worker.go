package gdfs

import (
	"fmt"
	"sync"
)

// BlockStore is the interface a worker exposes to clients and to other
// workers (for re-replication).  The in-memory Worker implements it
// directly; the rpc package wraps it for networked deployments; MetaWorker
// implements the metadata plane (see meta.go).
type BlockStore interface {
	// ID returns the worker's identity.
	ID() WorkerID
	// WriteBlock stores (or overwrites) a block replica.
	WriteBlock(id BlockID, data []byte) error
	// ReadBlock returns a copy of a block replica.
	ReadBlock(id BlockID) ([]byte, error)
	// HasBlock reports whether the worker holds a replica (valid or stale).
	HasBlock(id BlockID) bool
	// DeleteBlock removes a replica.
	DeleteBlock(id BlockID) error
	// BytesStored returns the total bytes held.
	BytesStored() int64
}

// Optional BlockStore capabilities.  The cluster and client type-switch on
// these to pick the cheapest path that preserves the externally visible
// counters (BytesStored, staleness, pending-migration bytes); every store
// still works through the plain BlockStore interface.
type (
	// blockCreator registers a freshly created all-zero block without the
	// caller materializing payload bytes, making Client.Create O(blocks).
	blockCreator interface {
		CreateBlock(id BlockID, size int64) error
	}
	// blockDirtier records a whole-block overwrite as a version bump —
	// the metadata-plane write.  Payload stores deliberately do not
	// implement it, so the payload plane keeps storing real bytes.
	blockDirtier interface {
		DirtyBlock(id BlockID, size int64) error
	}
	// metaSource / metaSink replicate a block as {version, length,
	// digest} scalars, accounting the bytes arithmetically.
	metaSource interface {
		BlockMeta(id BlockID) (BlockMeta, bool)
	}
	metaSink interface {
		PutBlockMeta(id BlockID, m BlockMeta) error
	}
	// borrowReader lends the replica's bytes to f without copying them —
	// the intra-process replication fast path.  f must not retain or
	// mutate the slice and must not call back into the same store.
	borrowReader interface {
		borrowBlock(id BlockID, f func(data []byte) error) error
	}
)

// blockPool recycles DefaultBlockSize payload buffers across WriteBlock /
// DeleteBlock cycles so the payload plane's steady state stops allocating
// 4 MiB per write.  Stored as *[]byte (sync.Pool boxes its values; a bare
// slice would allocate a fresh header on every Put).
var blockPool = sync.Pool{New: func() any {
	b := make([]byte, DefaultBlockSize)
	return &b
}}

// getBuf returns a length-n buffer with unspecified contents, pooled when
// n fits the standard block size.
func getBuf(n int) []byte {
	if n > DefaultBlockSize {
		return make([]byte, n)
	}
	return (*(blockPool.Get().(*[]byte)))[:n]
}

// putBuf returns a buffer to the pool.  Oversized one-off buffers are left
// to the garbage collector so the pool holds only standard blocks.
func putBuf(buf []byte) {
	if cap(buf) < DefaultBlockSize {
		return
	}
	buf = buf[:DefaultBlockSize]
	blockPool.Put(&buf)
}

// zeroPayload is the shared all-zero block lent out by borrowBlock for
// lazily created zero blocks.  Read-only by contract.
var zeroPayload = make([]byte, DefaultBlockSize)

// payloadBlock is one replica held by a payload Worker.  A nil buf with
// size > 0 is an all-zero block registered by CreateBlock that has never
// been written; ReadBlock materializes it lazily.
type payloadBlock struct {
	buf  []byte
	size int64
}

// Worker is an in-memory payload block store, one per datacenter in a
// payload-plane emulation and the store behind the rpc/TCP path.
type Worker struct {
	id     WorkerID
	mu     sync.RWMutex
	blocks map[BlockID]payloadBlock
	bytes  int64
}

var (
	_ BlockStore   = (*Worker)(nil)
	_ blockCreator = (*Worker)(nil)
	_ borrowReader = (*Worker)(nil)
)

// NewWorker returns an empty worker.
func NewWorker(id WorkerID) *Worker {
	return &Worker{id: id, blocks: make(map[BlockID]payloadBlock)}
}

// ID returns the worker's identity.
func (w *Worker) ID() WorkerID { return w.id }

// WriteBlock stores a copy of data as the block's replica, reusing the
// existing buffer (or a pooled one) instead of allocating.
func (w *Worker) WriteBlock(id BlockID, data []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	old, ok := w.blocks[id]
	buf := old.buf
	if cap(buf) < len(data) {
		if buf != nil {
			putBuf(buf)
		}
		buf = getBuf(len(data))
	} else {
		buf = buf[:len(data)]
	}
	copy(buf, data)
	if ok {
		w.bytes -= old.size
	}
	w.bytes += int64(len(data))
	w.blocks[id] = payloadBlock{buf: buf, size: int64(len(data))}
	return nil
}

// CreateBlock registers an all-zero block of the given size without
// materializing its bytes.
func (w *Worker) CreateBlock(id BlockID, size int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if old, ok := w.blocks[id]; ok {
		if old.buf != nil {
			putBuf(old.buf)
		}
		w.bytes -= old.size
	}
	w.bytes += size
	w.blocks[id] = payloadBlock{size: size}
	return nil
}

// ReadBlock returns a copy of the block's replica.
func (w *Worker) ReadBlock(id BlockID) ([]byte, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	b, ok := w.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: block %d on worker %s", ErrBlockNotFound, id, w.id)
	}
	out := make([]byte, b.size)
	copy(out, b.buf) // nil buf: the block is all zeros, out already is
	return out, nil
}

// borrowBlock lends the replica's bytes to f without copying.  The slice is
// only valid during the call; for never-written zero blocks it is the
// shared zeroPayload, so f must treat it as read-only.
func (w *Worker) borrowBlock(id BlockID, f func(data []byte) error) error {
	w.mu.RLock()
	defer w.mu.RUnlock()
	b, ok := w.blocks[id]
	if !ok {
		return fmt.Errorf("%w: block %d on worker %s", ErrBlockNotFound, id, w.id)
	}
	if b.buf != nil {
		return f(b.buf)
	}
	if b.size <= int64(len(zeroPayload)) {
		return f(zeroPayload[:b.size])
	}
	return f(make([]byte, b.size))
}

// HasBlock reports whether the worker holds the block.
func (w *Worker) HasBlock(id BlockID) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	_, ok := w.blocks[id]
	return ok
}

// DeleteBlock removes the block's replica if present, returning its buffer
// to the pool.
func (w *Worker) DeleteBlock(id BlockID) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if b, ok := w.blocks[id]; ok {
		if b.buf != nil {
			putBuf(b.buf)
		}
		w.bytes -= b.size
		delete(w.blocks, id)
	}
	return nil
}

// BytesStored returns the total bytes held by the worker (maintained
// arithmetically, O(1)).
func (w *Worker) BytesStored() int64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.bytes
}
