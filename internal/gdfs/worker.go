package gdfs

import (
	"fmt"
	"sync"
)

// BlockStore is the interface a worker exposes to clients and to other
// workers (for re-replication).  The in-memory Worker implements it
// directly; the rpc package wraps it for networked deployments.
type BlockStore interface {
	// ID returns the worker's identity.
	ID() WorkerID
	// WriteBlock stores (or overwrites) a block replica.
	WriteBlock(id BlockID, data []byte) error
	// ReadBlock returns a copy of a block replica.
	ReadBlock(id BlockID) ([]byte, error)
	// HasBlock reports whether the worker holds a replica (valid or stale).
	HasBlock(id BlockID) bool
	// DeleteBlock removes a replica.
	DeleteBlock(id BlockID) error
	// BytesStored returns the total bytes held.
	BytesStored() int64
}

// Worker is an in-memory block store, one per datacenter in the emulation.
type Worker struct {
	id   WorkerID
	mu   sync.RWMutex
	data map[BlockID][]byte
}

var _ BlockStore = (*Worker)(nil)

// NewWorker returns an empty worker.
func NewWorker(id WorkerID) *Worker {
	return &Worker{id: id, data: make(map[BlockID][]byte)}
}

// ID returns the worker's identity.
func (w *Worker) ID() WorkerID { return w.id }

// WriteBlock stores a copy of data as the block's replica.
func (w *Worker) WriteBlock(id BlockID, data []byte) error {
	buf := make([]byte, len(data))
	copy(buf, data)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.data[id] = buf
	return nil
}

// ReadBlock returns a copy of the block's replica.
func (w *Worker) ReadBlock(id BlockID) ([]byte, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	data, ok := w.data[id]
	if !ok {
		return nil, fmt.Errorf("%w: block %d on worker %s", ErrBlockNotFound, id, w.id)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// HasBlock reports whether the worker holds the block.
func (w *Worker) HasBlock(id BlockID) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	_, ok := w.data[id]
	return ok
}

// DeleteBlock removes the block's replica if present.
func (w *Worker) DeleteBlock(id BlockID) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.data, id)
	return nil
}

// BytesStored returns the total bytes held by the worker.
func (w *Worker) BytesStored() int64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var total int64
	for _, d := range w.data {
		total += int64(len(d))
	}
	return total
}
