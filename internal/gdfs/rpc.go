package gdfs

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
)

// The rpc layer lets a GDFS worker run in a different process (or machine)
// than the cluster coordinator: WorkerServer exposes a Worker's BlockStore
// over net/rpc, and RemoteStore is the client-side BlockStore that forwards
// calls to it.  The emulation in this repository runs everything in-process,
// but the networked path is exercised by the tests to show the design works
// across real sockets.

// WorkerServer serves a BlockStore over net/rpc.
type WorkerServer struct {
	store    BlockStore
	listener net.Listener
	server   *rpc.Server

	mu      sync.Mutex
	stopped bool
	done    chan struct{}
}

// rpcService is the exported RPC receiver (its methods follow the net/rpc
// convention: Method(args, reply) error).
type rpcService struct {
	store BlockStore
}

// WriteBlockArgs are the arguments of the WriteBlock RPC.
type WriteBlockArgs struct {
	ID   BlockID
	Data []byte
}

// ReadBlockReply is the reply of the ReadBlock RPC.
type ReadBlockReply struct {
	Data []byte
}

// HasBlockReply is the reply of the HasBlock RPC.
type HasBlockReply struct {
	Has bool
}

// IDReply is the reply of the ID RPC.
type IDReply struct {
	ID WorkerID
}

// BytesReply is the reply of the BytesStored RPC.
type BytesReply struct {
	Bytes int64
}

// WriteBlock forwards to the underlying store.
func (s *rpcService) WriteBlock(args WriteBlockArgs, _ *struct{}) error {
	return s.store.WriteBlock(args.ID, args.Data)
}

// ReadBlock forwards to the underlying store.
func (s *rpcService) ReadBlock(id BlockID, reply *ReadBlockReply) error {
	data, err := s.store.ReadBlock(id)
	if err != nil {
		return err
	}
	reply.Data = data
	return nil
}

// HasBlock forwards to the underlying store.
func (s *rpcService) HasBlock(id BlockID, reply *HasBlockReply) error {
	reply.Has = s.store.HasBlock(id)
	return nil
}

// DeleteBlock forwards to the underlying store.
func (s *rpcService) DeleteBlock(id BlockID, _ *struct{}) error {
	return s.store.DeleteBlock(id)
}

// ID forwards to the underlying store.
func (s *rpcService) ID(_ struct{}, reply *IDReply) error {
	reply.ID = s.store.ID()
	return nil
}

// BytesStored forwards to the underlying store.
func (s *rpcService) BytesStored(_ struct{}, reply *BytesReply) error {
	reply.Bytes = s.store.BytesStored()
	return nil
}

// ServeWorker starts serving the store on the given address ("host:port",
// use "127.0.0.1:0" for an ephemeral port) and returns the running server.
func ServeWorker(store BlockStore, addr string) (*WorkerServer, error) {
	listener, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gdfs: listen: %w", err)
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("GDFSWorker", &rpcService{store: store}); err != nil {
		listener.Close()
		return nil, fmt.Errorf("gdfs: register rpc: %w", err)
	}
	ws := &WorkerServer{store: store, listener: listener, server: srv, done: make(chan struct{})}
	go ws.acceptLoop()
	return ws, nil
}

func (ws *WorkerServer) acceptLoop() {
	defer close(ws.done)
	for {
		conn, err := ws.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go ws.server.ServeConn(conn)
	}
}

// Addr returns the address the server is listening on.
func (ws *WorkerServer) Addr() string { return ws.listener.Addr().String() }

// Close stops accepting connections and waits for the accept loop to exit.
func (ws *WorkerServer) Close() error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.stopped {
		return nil
	}
	ws.stopped = true
	err := ws.listener.Close()
	<-ws.done
	return err
}

// RemoteStore is a BlockStore backed by a WorkerServer across the network.
type RemoteStore struct {
	id     WorkerID
	client *rpc.Client
}

var _ BlockStore = (*RemoteStore)(nil)

// DialWorker connects to a remote worker and verifies its identity.
func DialWorker(addr string) (*RemoteStore, error) {
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gdfs: dial %s: %w", addr, err)
	}
	var reply IDReply
	if err := client.Call("GDFSWorker.ID", struct{}{}, &reply); err != nil {
		client.Close()
		return nil, fmt.Errorf("gdfs: identify %s: %w", addr, err)
	}
	return &RemoteStore{id: reply.ID, client: client}, nil
}

// ID returns the remote worker's identity.
func (r *RemoteStore) ID() WorkerID { return r.id }

// WriteBlock forwards over RPC.
func (r *RemoteStore) WriteBlock(id BlockID, data []byte) error {
	return r.client.Call("GDFSWorker.WriteBlock", WriteBlockArgs{ID: id, Data: data}, &struct{}{})
}

// ReadBlock forwards over RPC.
func (r *RemoteStore) ReadBlock(id BlockID) ([]byte, error) {
	var reply ReadBlockReply
	if err := r.client.Call("GDFSWorker.ReadBlock", id, &reply); err != nil {
		return nil, err
	}
	return reply.Data, nil
}

// HasBlock forwards over RPC.
func (r *RemoteStore) HasBlock(id BlockID) bool {
	var reply HasBlockReply
	if err := r.client.Call("GDFSWorker.HasBlock", id, &reply); err != nil {
		return false
	}
	return reply.Has
}

// DeleteBlock forwards over RPC.
func (r *RemoteStore) DeleteBlock(id BlockID) error {
	return r.client.Call("GDFSWorker.DeleteBlock", id, &struct{}{})
}

// BytesStored forwards over RPC.
func (r *RemoteStore) BytesStored() int64 {
	var reply BytesReply
	if err := r.client.Call("GDFSWorker.BytesStored", struct{}{}, &reply); err != nil {
		return 0
	}
	return reply.Bytes
}

// Close closes the RPC connection.
func (r *RemoteStore) Close() error { return r.client.Close() }
