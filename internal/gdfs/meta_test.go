package gdfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// planePair is one cluster per data plane, driven through identical op
// sequences so every externally visible counter can be compared.
type planePair struct {
	payload, meta               *Cluster
	payloadClients, metaClients []*Client
	workers                     []WorkerID
}

func newPlanePair(t *testing.T, nWorkers, replication int) *planePair {
	t.Helper()
	p := &planePair{
		payload: NewCluster(NewMaster(replication)),
		meta:    NewCluster(NewMaster(replication)),
	}
	for i := 0; i < nWorkers; i++ {
		id := WorkerID(fmt.Sprintf("dc-%d", i))
		p.workers = append(p.workers, id)
		if err := p.payload.AddWorker(NewWorker(id), string(id)); err != nil {
			t.Fatal(err)
		}
		if err := p.meta.AddWorker(NewMetaWorker(id), string(id)); err != nil {
			t.Fatal(err)
		}
		pc, err := p.payload.NewClient(id)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := p.meta.NewClient(id)
		if err != nil {
			t.Fatal(err)
		}
		p.payloadClients = append(p.payloadClients, pc)
		p.metaClients = append(p.metaClients, mc)
	}
	return p
}

// check asserts the two planes agree on every externally visible counter:
// per-worker BytesStored, per-block replica sets, the re-replication plan,
// and pending-migration bytes for every (file, worker) pair.
func (p *planePair) check(t *testing.T, label string) {
	t.Helper()
	for _, w := range p.workers {
		ps, _ := p.payload.store(w)
		ms, _ := p.meta.store(w)
		if pb, mb := ps.BytesStored(), ms.BytesStored(); pb != mb {
			t.Fatalf("%s: worker %s BytesStored payload=%d meta=%d", label, w, pb, mb)
		}
	}
	pTasks := p.payload.Master().UnderReplicated()
	mTasks := p.meta.Master().UnderReplicated()
	if len(pTasks) != len(mTasks) {
		t.Fatalf("%s: UnderReplicated payload=%d tasks meta=%d tasks", label, len(pTasks), len(mTasks))
	}
	for i := range pTasks {
		if pTasks[i] != mTasks[i] {
			t.Fatalf("%s: task %d payload=%+v meta=%+v", label, i, pTasks[i], mTasks[i])
		}
	}
	for _, path := range p.payload.Master().Files() {
		fi, err := p.payload.Master().Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range fi.Blocks {
			pl, err := p.payload.Master().BlockLocations(id)
			if err != nil {
				t.Fatal(err)
			}
			ml, err := p.meta.Master().BlockLocations(id)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(pl) != fmt.Sprint(ml) {
				t.Fatalf("%s: block %d locations payload=%v meta=%v", label, id, pl, ml)
			}
		}
		for wi, w := range p.workers {
			pb, err := p.payloadClients[wi].PendingMigrationBytes(path, w)
			if err != nil {
				t.Fatal(err)
			}
			mb, err := p.metaClients[wi].PendingMigrationBytes(path, w)
			if err != nil {
				t.Fatal(err)
			}
			if pb != mb {
				t.Fatalf("%s: pending bytes to %s for %s payload=%d meta=%d", label, w, path, pb, mb)
			}
		}
	}
}

// TestMetaPayloadEquivalence drives both planes through the emulation's op
// mix — create, whole-block dirty writes, re-replication, pending-bytes
// queries — with a seeded random schedule and asserts byte-for-byte equal
// counters after every step.
func TestMetaPayloadEquivalence(t *testing.T) {
	p := newPlanePair(t, 3, 3)
	rng := rand.New(rand.NewSource(7))

	type file struct {
		home     int
		pfi, mfi *FileInfo
	}
	var files []file
	sizes := []int64{DefaultBlockSize * 4, DefaultBlockSize*2 + 12345, 777, DefaultBlockSize * 16}
	for i, size := range sizes {
		home := i % len(p.workers)
		path := fmt.Sprintf("/vm/%d/disk", i)
		pfi, err := p.payloadClients[home].Create(path, size)
		if err != nil {
			t.Fatal(err)
		}
		mfi, err := p.metaClients[home].Create(path, size)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, file{home: home, pfi: pfi, mfi: mfi})
	}
	p.check(t, "after create")

	for round := 0; round < 30; round++ {
		switch rng.Intn(3) {
		case 0: // dirty a random block of a random file at its home
			f := &files[rng.Intn(len(files))]
			b := rng.Intn(len(f.pfi.Blocks))
			if err := p.payloadClients[f.home].DirtyBlock(f.pfi, b); err != nil {
				t.Fatal(err)
			}
			if err := p.metaClients[f.home].DirtyBlock(f.mfi, b); err != nil {
				t.Fatal(err)
			}
		case 1: // the file "migrates": dirty writes start at a new home
			f := &files[rng.Intn(len(files))]
			f.home = rng.Intn(len(p.workers))
		case 2: // background re-replication round
			pc := p.payload.ReplicateOnce()
			mc := p.meta.ReplicateOnce()
			if pc != mc {
				t.Fatalf("round %d: ReplicateOnce payload=%d meta=%d", round, pc, mc)
			}
		}
		p.check(t, fmt.Sprintf("round %d", round))
	}
}

// TestMetaPayloadEquivalenceConcurrent dirties disjoint files from
// concurrent goroutines on both planes (run under -race by make test).
// Per-file writers keep the final state deterministic, so the planes must
// still agree counter-for-counter.
func TestMetaPayloadEquivalenceConcurrent(t *testing.T) {
	p := newPlanePair(t, 3, 3)
	const nFiles = 8
	type file struct {
		home     int
		pfi, mfi *FileInfo
	}
	files := make([]file, nFiles)
	for i := range files {
		home := i % len(p.workers)
		path := fmt.Sprintf("/vm/%d/disk", i)
		pfi, err := p.payloadClients[home].Create(path, DefaultBlockSize*4)
		if err != nil {
			t.Fatal(err)
		}
		mfi, err := p.metaClients[home].Create(path, DefaultBlockSize*4)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = file{home: home, pfi: pfi, mfi: mfi}
	}
	p.payload.ReplicateOnce()
	p.meta.ReplicateOnce()

	var wg sync.WaitGroup
	errs := make([]error, nFiles)
	for i := range files {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := files[i]
			// One writer per file with its own clients (DirtyBlock's zero
			// buffer makes a Client single-goroutine); different files
			// race only on the master's lock, not on any block.
			pc, err := p.payload.NewClient(p.workers[f.home])
			if err != nil {
				errs[i] = err
				return
			}
			mc, err := p.meta.NewClient(p.workers[f.home])
			if err != nil {
				errs[i] = err
				return
			}
			for round := 0; round < 20; round++ {
				b := (i + round) % len(f.pfi.Blocks)
				if err := pc.DirtyBlock(f.pfi, b); err != nil {
					errs[i] = err
					return
				}
				if err := mc.DirtyBlock(f.mfi, b); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if pc, mc := p.payload.ReplicateOnce(), p.meta.ReplicateOnce(); pc != mc {
		t.Fatalf("ReplicateOnce payload=%d meta=%d", pc, mc)
	}
	p.check(t, "after concurrent dirtying")
}

// TestMetaWorkerReadIsMetadataOnly pins the one deliberate contract gap of
// the metadata plane.
func TestMetaWorkerReadIsMetadataOnly(t *testing.T) {
	w := NewMetaWorker("dc-0")
	if err := w.CreateBlock(1, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := w.ReadBlock(1); !errors.Is(err, ErrMetadataOnly) {
		t.Fatalf("want ErrMetadataOnly, got %v", err)
	}
}

// TestWorkerCreateBlockLazyZero pins the payload worker's lazy zero blocks:
// CreateBlock accounts the bytes without materializing them, and the first
// ReadBlock returns real zeroes.
func TestWorkerCreateBlockLazyZero(t *testing.T) {
	w := NewWorker("dc-0")
	if err := w.CreateBlock(1, 100); err != nil {
		t.Fatal(err)
	}
	if got := w.BytesStored(); got != 100 {
		t.Fatalf("BytesStored = %d, want 100", got)
	}
	data, err := w.ReadBlock(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 100 {
		t.Fatalf("len = %d, want 100", len(data))
	}
	for i, b := range data {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
	// borrowBlock must lend the shared zero payload without copying.
	var borrowed int
	if err := w.borrowBlock(1, func(data []byte) error {
		borrowed = len(data)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if borrowed != 100 {
		t.Fatalf("borrowed %d bytes, want 100", borrowed)
	}
}
