package gdfs

import (
	"errors"
	"fmt"
	"sync"
)

// ErrMetadataOnly is returned by MetaWorker.ReadBlock: the metadata plane
// tracks what the paper measures (versions, lengths, staleness, transferred
// bytes) and never holds payload bytes to serve.
var ErrMetadataOnly = errors.New("gdfs: metadata-plane store holds no payload")

// BlockMeta is a block replica reduced to scalars.  Two replicas hold the
// same content iff their BlockMeta are equal: every mutation bumps Version,
// and Digest is a deterministic function of the content (or, for synthetic
// dirty writes, of the block identity and version).
type BlockMeta struct {
	Version uint64
	Length  int64
	Digest  uint64
}

// MetaWorker is the metadata-plane BlockStore: a replica is a BlockMeta
// record instead of a byte slice, and BytesStored is maintained
// arithmetically.  It moves through the same master protocol (CommitWrite,
// CommitReplica, UnderReplicated, StaleBlocksOn) as the payload Worker, so
// every externally visible counter matches the payload plane byte for byte
// — pinned by TestMetaPayloadEquivalence.  ReadBlock is the one deliberate
// gap (ErrMetadataOnly): a metadata cluster must be homogeneous, since a
// payload store cannot re-replicate from a metadata source.
type MetaWorker struct {
	id    WorkerID
	mu    sync.RWMutex
	meta  map[BlockID]BlockMeta
	bytes int64
}

var (
	_ BlockStore   = (*MetaWorker)(nil)
	_ blockCreator = (*MetaWorker)(nil)
	_ blockDirtier = (*MetaWorker)(nil)
	_ metaSource   = (*MetaWorker)(nil)
	_ metaSink     = (*MetaWorker)(nil)
)

// NewMetaWorker returns an empty metadata-plane worker.
func NewMetaWorker(id WorkerID) *MetaWorker {
	return &MetaWorker{id: id, meta: make(map[BlockID]BlockMeta)}
}

// ID returns the worker's identity.
func (w *MetaWorker) ID() WorkerID { return w.id }

// digestBytes fingerprints payload content (FNV-1a) so a payload write
// through the generic interface still lands with a content-derived digest.
func digestBytes(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}

// dirtyDigest synthesizes the digest of a metadata-only whole-block
// overwrite.  Replicas produced by copying this version carry the same
// digest, so "same digest ⇔ same content" is preserved without bytes.
func dirtyDigest(id BlockID, version uint64) uint64 {
	h := uint64(id)*0x9e3779b97f4a7c15 + 0x165667b19e3779f9
	h ^= version * 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// zeroDigest is the digest of a never-written all-zero block of the given
// size; it matches across planes only in being deterministic, which is all
// the equivalence contract needs (digests are never compared across planes).
func zeroDigest(size int64) uint64 { return uint64(size) * 0xc2b2ae3d27d4eb4f }

// WriteBlock records a payload write as metadata: version bump, new length,
// content digest.
func (w *MetaWorker) WriteBlock(id BlockID, data []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	old := w.meta[id]
	w.bytes += int64(len(data)) - old.Length
	w.meta[id] = BlockMeta{Version: old.Version + 1, Length: int64(len(data)), Digest: digestBytes(data)}
	return nil
}

// CreateBlock registers a fresh all-zero block of the given size.
func (w *MetaWorker) CreateBlock(id BlockID, size int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	old := w.meta[id]
	w.bytes += size - old.Length
	w.meta[id] = BlockMeta{Version: old.Version + 1, Length: size, Digest: zeroDigest(size)}
	return nil
}

// DirtyBlock records a whole-block overwrite of the given size without any
// payload: version bump plus a synthetic content digest.
func (w *MetaWorker) DirtyBlock(id BlockID, size int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	old := w.meta[id]
	v := old.Version + 1
	w.bytes += size - old.Length
	w.meta[id] = BlockMeta{Version: v, Length: size, Digest: dirtyDigest(id, v)}
	return nil
}

// ReadBlock always fails: see ErrMetadataOnly.
func (w *MetaWorker) ReadBlock(id BlockID) ([]byte, error) {
	return nil, fmt.Errorf("%w (block %d on worker %s)", ErrMetadataOnly, id, w.id)
}

// BlockMeta returns the replica's metadata record.
func (w *MetaWorker) BlockMeta(id BlockID) (BlockMeta, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	m, ok := w.meta[id]
	return m, ok
}

// PutBlockMeta installs a replica copied from another metadata store,
// accounting the bytes arithmetically.
func (w *MetaWorker) PutBlockMeta(id BlockID, m BlockMeta) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	old := w.meta[id]
	w.bytes += m.Length - old.Length
	w.meta[id] = m
	return nil
}

// HasBlock reports whether the worker holds the block.
func (w *MetaWorker) HasBlock(id BlockID) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	_, ok := w.meta[id]
	return ok
}

// DeleteBlock removes the block's replica if present.
func (w *MetaWorker) DeleteBlock(id BlockID) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if m, ok := w.meta[id]; ok {
		w.bytes -= m.Length
		delete(w.meta, id)
	}
	return nil
}

// BytesStored returns the total bytes the worker accounts for.
func (w *MetaWorker) BytesStored() int64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.bytes
}
