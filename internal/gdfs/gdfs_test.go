package gdfs

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// newTestCluster builds a 3-datacenter in-memory cluster.
func newTestCluster(t *testing.T) (*Cluster, []*Worker) {
	t.Helper()
	master := NewMaster(2)
	cluster := NewCluster(master)
	workers := []*Worker{NewWorker("dc-a"), NewWorker("dc-b"), NewWorker("dc-c")}
	for _, w := range workers {
		if err := cluster.AddWorker(w, string(w.ID())); err != nil {
			t.Fatalf("AddWorker(%s): %v", w.ID(), err)
		}
	}
	return cluster, workers
}

func TestMasterCreateStatDelete(t *testing.T) {
	cluster, _ := newTestCluster(t)
	m := cluster.Master()

	fi, err := m.Create("/vm/disk0", 10<<20, "dc-a")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if fi.Size != 10<<20 {
		t.Errorf("size = %d", fi.Size)
	}
	if len(fi.Blocks) != 3 { // 10 MiB over 4 MiB blocks → 3 blocks
		t.Errorf("blocks = %d, want 3", len(fi.Blocks))
	}
	if _, err := m.Create("/vm/disk0", 1, "dc-a"); !errors.Is(err, ErrFileExists) {
		t.Errorf("duplicate create: want ErrFileExists, got %v", err)
	}
	if _, err := m.Create("/x", 1, "nope"); !errors.Is(err, ErrWorkerNotFound) {
		t.Errorf("unknown worker: want ErrWorkerNotFound, got %v", err)
	}
	if _, err := m.Create("/neg", -1, "dc-a"); err == nil {
		t.Error("negative size should error")
	}

	got, err := m.Stat("/vm/disk0")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if got.Size != fi.Size || len(got.Blocks) != len(fi.Blocks) {
		t.Error("Stat mismatch")
	}
	if _, err := m.Stat("/missing"); !errors.Is(err, ErrFileNotFound) {
		t.Errorf("want ErrFileNotFound, got %v", err)
	}
	if files := m.Files(); len(files) != 1 || files[0] != "/vm/disk0" {
		t.Errorf("Files() = %v", files)
	}
	if err := m.Delete("/vm/disk0"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := m.Delete("/vm/disk0"); !errors.Is(err, ErrFileNotFound) {
		t.Errorf("double delete: want ErrFileNotFound, got %v", err)
	}
	if len(m.Workers()) != 3 {
		t.Errorf("Workers() = %v", m.Workers())
	}
}

func TestMasterClosed(t *testing.T) {
	m := NewMaster(0)
	m.Close()
	if err := m.RegisterWorker("w", "dc"); !errors.Is(err, ErrClosed) {
		t.Errorf("want ErrClosed, got %v", err)
	}
	if _, err := m.Create("/f", 1, "w"); !errors.Is(err, ErrClosed) {
		t.Errorf("want ErrClosed, got %v", err)
	}
}

func TestWriteInvalidatesRemoteReplicas(t *testing.T) {
	cluster, _ := newTestCluster(t)
	clientA, err := cluster.NewClient("dc-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.NewClient("dc-zzz"); err == nil {
		t.Error("client for unknown worker should error")
	}

	fi, err := clientA.Create("/vm/disk", 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Replicate everything so dc-b holds valid copies too.
	if copied := cluster.ReplicateOnce(); copied != len(fi.Blocks) {
		t.Fatalf("ReplicateOnce copied %d blocks, want %d", copied, len(fi.Blocks))
	}
	loc, err := cluster.Master().BlockLocations(fi.Blocks[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(loc.Valid) != 2 {
		t.Fatalf("after replication: %d valid replicas, want 2", len(loc.Valid))
	}

	// A write from dc-a invalidates the copy on the other datacenter.
	payload := bytes.Repeat([]byte{0xAB}, int(fi.BlockSize))
	if err := clientA.WriteBlock("/vm/disk", 0, payload); err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}
	loc, err = cluster.Master().BlockLocations(fi.Blocks[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(loc.Valid) != 1 || loc.Valid[0] != "dc-a" {
		t.Errorf("after write: valid replicas = %v, want only dc-a", loc.Valid)
	}
	if len(loc.Stale) != 1 {
		t.Errorf("after write: stale replicas = %v, want the old copy", loc.Stale)
	}

	// Reads from a remote datacenter still see the new data via the valid
	// replica.
	clientB, err := cluster.NewClient("dc-b")
	if err != nil {
		t.Fatal(err)
	}
	data, err := clientB.ReadBlock("/vm/disk", 0)
	if err != nil {
		t.Fatalf("remote ReadBlock: %v", err)
	}
	if !bytes.Equal(data, payload) {
		t.Error("remote read returned stale data")
	}

	// Background re-replication repairs the stale copy.
	if copied := cluster.ReplicateOnce(); copied == 0 {
		t.Error("expected re-replication work after the write")
	}
	loc, _ = cluster.Master().BlockLocations(fi.Blocks[0])
	if len(loc.Valid) != 2 {
		t.Errorf("after re-replication: %d valid replicas, want 2", len(loc.Valid))
	}
}

func TestPartialWriteFetchesBlockFirst(t *testing.T) {
	cluster, workers := newTestCluster(t)
	clientA, _ := cluster.NewClient("dc-a")
	fi, err := clientA.Create("/vm/mem", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the block with a known pattern from dc-a.
	full := bytes.Repeat([]byte{0x11}, int(fi.BlockSize))
	if err := clientA.WriteBlock("/vm/mem", 0, full); err != nil {
		t.Fatal(err)
	}
	// A partial write from dc-b must first fetch the valid copy, then merge.
	clientB, _ := cluster.NewClient("dc-b")
	patch := bytes.Repeat([]byte{0x22}, 1024)
	if err := clientB.WriteBlock("/vm/mem", 0, patch); err != nil {
		t.Fatalf("partial remote write: %v", err)
	}
	if !workers[1].HasBlock(fi.Blocks[0]) {
		t.Fatal("dc-b should hold the block after its write")
	}
	data, err := clientB.ReadBlock("/vm/mem", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data[:1024], patch) {
		t.Error("patched bytes missing")
	}
	if data[2048] != 0x11 {
		t.Error("partial write clobbered the rest of the block")
	}
	// dc-a's copy is now stale; only dc-b is valid.
	loc, _ := cluster.Master().BlockLocations(fi.Blocks[0])
	if len(loc.Valid) != 1 || loc.Valid[0] != "dc-b" {
		t.Errorf("valid replicas = %v, want only dc-b", loc.Valid)
	}
}

func TestStaleBlocksDriveMigrationCost(t *testing.T) {
	cluster, _ := newTestCluster(t)
	clientA, _ := cluster.NewClient("dc-a")
	fi, err := clientA.Create("/vm/disk", 12<<20)
	if err != nil {
		t.Fatal(err)
	}
	cluster.ReplicateOnce() // dc-b has copies now
	// Initially nothing needs to move to dc-b.
	pending, err := clientA.PendingMigrationBytes("/vm/disk", "dc-b")
	if err != nil {
		t.Fatal(err)
	}
	if pending != 0 {
		t.Errorf("pending bytes = %d, want 0 right after replication", pending)
	}
	// Everything must move to dc-c (no replicas there).
	pending, _ = clientA.PendingMigrationBytes("/vm/disk", "dc-c")
	if pending != fi.Size {
		t.Errorf("pending to dc-c = %d, want full size %d", pending, fi.Size)
	}
	// Dirty one block; only that block is pending for dc-b.
	if err := clientA.WriteBlock("/vm/disk", 1, bytes.Repeat([]byte{1}, int(fi.BlockSize))); err != nil {
		t.Fatal(err)
	}
	pending, _ = clientA.PendingMigrationBytes("/vm/disk", "dc-b")
	if pending != fi.BlockSize {
		t.Errorf("pending after one dirty block = %d, want %d", pending, fi.BlockSize)
	}
	if _, _, err := cluster.Master().StaleBlocksOn("/missing", "dc-a"); !errors.Is(err, ErrFileNotFound) {
		t.Errorf("want ErrFileNotFound, got %v", err)
	}
}

func TestBackgroundReplicatorLoop(t *testing.T) {
	cluster, _ := newTestCluster(t)
	clientA, _ := cluster.NewClient("dc-a")
	fi, err := clientA.Create("/vm/img", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	cluster.StartReplicator(5 * time.Millisecond)
	defer cluster.StopReplicator()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		loc, err := cluster.Master().BlockLocations(fi.Blocks[0])
		if err != nil {
			t.Fatal(err)
		}
		if len(loc.Valid) >= 2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background replicator did not reach the target replication factor in time")
}

func TestWorkerStore(t *testing.T) {
	w := NewWorker("w1")
	if w.ID() != "w1" {
		t.Errorf("ID = %s", w.ID())
	}
	if _, err := w.ReadBlock(7); !errors.Is(err, ErrBlockNotFound) {
		t.Errorf("want ErrBlockNotFound, got %v", err)
	}
	data := []byte{1, 2, 3}
	if err := w.WriteBlock(7, data); err != nil {
		t.Fatal(err)
	}
	data[0] = 99 // the store must have copied
	got, err := w.ReadBlock(7)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Error("WriteBlock did not copy its input")
	}
	got[1] = 88
	again, _ := w.ReadBlock(7)
	if again[1] != 2 {
		t.Error("ReadBlock did not copy its output")
	}
	if !w.HasBlock(7) || w.HasBlock(8) {
		t.Error("HasBlock wrong")
	}
	if w.BytesStored() != 3 {
		t.Errorf("BytesStored = %d", w.BytesStored())
	}
	if err := w.DeleteBlock(7); err != nil {
		t.Fatal(err)
	}
	if w.HasBlock(7) {
		t.Error("block still present after delete")
	}
}

func TestRPCWorkerOverTCP(t *testing.T) {
	// A cluster where one of the workers is reached over a real TCP socket.
	master := NewMaster(2)
	cluster := NewCluster(master)
	local := NewWorker("dc-local")
	if err := cluster.AddWorker(local, "local"); err != nil {
		t.Fatal(err)
	}

	backend := NewWorker("dc-remote")
	server, err := ServeWorker(backend, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeWorker: %v", err)
	}
	defer server.Close()

	remote, err := DialWorker(server.Addr())
	if err != nil {
		t.Fatalf("DialWorker: %v", err)
	}
	defer remote.Close()
	if remote.ID() != "dc-remote" {
		t.Fatalf("remote ID = %s", remote.ID())
	}
	if err := cluster.AddWorker(remote, "remote"); err != nil {
		t.Fatal(err)
	}

	client, err := cluster.NewClient("dc-local")
	if err != nil {
		t.Fatal(err)
	}
	fi, err := client.Create("/over/tcp", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x42}, int(fi.BlockSize))
	if err := client.WriteBlock("/over/tcp", 0, payload); err != nil {
		t.Fatal(err)
	}
	// Replication copies the block across the socket to the remote worker.
	if copied := cluster.ReplicateOnce(); copied == 0 {
		t.Fatal("expected replication to the remote worker")
	}
	if !remote.HasBlock(fi.Blocks[0]) {
		t.Fatal("remote worker does not hold the replica")
	}
	if remote.BytesStored() != fi.BlockSize {
		t.Errorf("remote BytesStored = %d, want %d", remote.BytesStored(), fi.BlockSize)
	}
	// Reading from the remote side through a client local to it works too.
	remoteClient, err := cluster.NewClient("dc-remote")
	if err != nil {
		t.Fatal(err)
	}
	data, err := remoteClient.ReadBlock("/over/tcp", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Error("data read over TCP does not match")
	}
	if err := remote.DeleteBlock(fi.Blocks[0]); err != nil {
		t.Errorf("DeleteBlock over RPC: %v", err)
	}
	if remote.HasBlock(fi.Blocks[0]) {
		t.Error("block still present after remote delete")
	}
	if err := server.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestUnderReplicatedPlanPrefersStaleHolders(t *testing.T) {
	cluster, _ := newTestCluster(t)
	clientA, _ := cluster.NewClient("dc-a")
	fi, err := clientA.Create("/f", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	cluster.ReplicateOnce()
	// Invalidate dc-b's copy by writing from dc-a.
	if err := clientA.WriteBlock("/f", 0, bytes.Repeat([]byte{9}, int(fi.BlockSize))); err != nil {
		t.Fatal(err)
	}
	tasks := cluster.Master().UnderReplicated()
	if len(tasks) == 0 {
		t.Fatal("expected replication tasks")
	}
	// The stale holder (dc-b) should be chosen as the destination before an
	// absent worker (dc-c).
	if tasks[0].Dest != "dc-b" {
		t.Errorf("first destination = %s, want dc-b (stale holder)", tasks[0].Dest)
	}
	if tasks[0].Source != "dc-a" {
		t.Errorf("source = %s, want dc-a (only valid holder)", tasks[0].Source)
	}
}
