package gdfs

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Cluster bundles a master with the set of workers so clients and the
// background re-replicator can reach every block store.  The stores may be
// local (in-memory) or remote (rpc wrappers); the cluster does not care.
type Cluster struct {
	master *Master

	mu     sync.RWMutex
	stores map[WorkerID]BlockStore

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewCluster returns a cluster around the given master.
func NewCluster(master *Master) *Cluster {
	return &Cluster{
		master: master,
		stores: make(map[WorkerID]BlockStore),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Master exposes the cluster's master.
func (c *Cluster) Master() *Master { return c.master }

// AddWorker registers a block store with the master and the cluster.
func (c *Cluster) AddWorker(store BlockStore, datacenter string) error {
	if err := c.master.RegisterWorker(store.ID(), datacenter); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stores[store.ID()] = store
	return nil
}

// store returns the block store for a worker.
func (c *Cluster) store(id WorkerID) (BlockStore, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.stores[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrWorkerNotFound, id)
	}
	return s, nil
}

// StartReplicator launches the background re-replication loop, which
// periodically asks the master for under-replicated blocks and copies them.
// Stop it with StopReplicator.
func (c *Cluster) StartReplicator(interval time.Duration) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	go func() {
		defer close(c.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				c.ReplicateOnce()
			case <-c.stop:
				return
			}
		}
	}()
}

// StopReplicator stops the background loop and waits for it to exit.  It is
// safe to call even if StartReplicator was never called.
func (c *Cluster) StopReplicator() {
	c.stopOnce.Do(func() { close(c.stop) })
	select {
	case <-c.done:
	case <-time.After(2 * time.Second):
	}
}

// ReplicateOnce performs one round of re-replication synchronously and
// returns the number of blocks copied.
func (c *Cluster) ReplicateOnce() int {
	tasks := c.master.UnderReplicated()
	copied := 0
	for _, task := range tasks {
		if err := c.copyBlock(task.Block, task.Source, task.Dest); err != nil {
			continue
		}
		copied++
	}
	return copied
}

// copyBlock copies one block between workers and commits the new replica.
// It takes the cheapest path the two stores support: metadata-to-metadata
// replication moves a BlockMeta record and no bytes; a borrowable source
// lends its buffer to the destination's WriteBlock (one copy instead of
// two); otherwise it falls back to ReadBlock+WriteBlock.
func (c *Cluster) copyBlock(id BlockID, from, to WorkerID) error {
	src, err := c.store(from)
	if err != nil {
		return err
	}
	dst, err := c.store(to)
	if err != nil {
		return err
	}
	if msrc, ok := src.(metaSource); ok {
		if msink, ok := dst.(metaSink); ok {
			m, ok := msrc.BlockMeta(id)
			if !ok {
				return fmt.Errorf("%w: block %d on worker %s", ErrBlockNotFound, id, from)
			}
			if err := msink.PutBlockMeta(id, m); err != nil {
				return err
			}
			return c.master.CommitReplica(id, to)
		}
	}
	if bsrc, ok := src.(borrowReader); ok {
		if err := bsrc.borrowBlock(id, func(data []byte) error {
			return dst.WriteBlock(id, data)
		}); err != nil {
			return err
		}
		return c.master.CommitReplica(id, to)
	}
	data, err := src.ReadBlock(id)
	if err != nil {
		return err
	}
	if err := dst.WriteBlock(id, data); err != nil {
		return err
	}
	return c.master.CommitReplica(id, to)
}

// Client is a GDFS client bound to one datacenter: writes go to the local
// worker first, reads prefer the local replica.
//
// A Client is safe for concurrent use except DirtyBlock, whose reusable
// zero buffer makes it single-goroutine (one client per emulation
// datacenter, dirty writes issued from the hour loop).
type Client struct {
	cluster *Cluster
	local   WorkerID
	// zero is the reusable all-zero buffer DirtyBlock writes through
	// payload stores, allocated once per client instead of per block.
	zero []byte
}

// NewClient returns a client whose local worker is the given one.
func (c *Cluster) NewClient(local WorkerID) (*Client, error) {
	if _, err := c.store(local); err != nil {
		return nil, err
	}
	return &Client{cluster: c, local: local}, nil
}

// Create adds a file of the given size filled with zeroes, with its primary
// replicas on the client's local worker.  Stores that support metadata
// registration (all in-process stores) make this O(blocks), not O(bytes);
// remote stores fall back to writing pooled zero buffers.
func (cl *Client) Create(path string, size int64) (*FileInfo, error) {
	fi, err := cl.cluster.master.Create(path, size, cl.local)
	if err != nil {
		return nil, err
	}
	store, err := cl.cluster.store(cl.local)
	if err != nil {
		return nil, err
	}
	if bc, ok := store.(blockCreator); ok {
		for i, id := range fi.Blocks {
			if err := bc.CreateBlock(id, fi.BlockSizeAt(i)); err != nil {
				return nil, err
			}
		}
		return fi, nil
	}
	for i, id := range fi.Blocks {
		if err := store.WriteBlock(id, cl.zeroBuf(fi.BlockSizeAt(i))); err != nil {
			return nil, err
		}
	}
	return fi, nil
}

// zeroBuf returns an all-zero buffer of length n, reused across calls.
func (cl *Client) zeroBuf(n int64) []byte {
	if int64(len(cl.zero)) < n {
		cl.zero = make([]byte, n)
	}
	return cl.zero[:n]
}

// DirtyBlock overwrites one whole block of a file at the local datacenter
// through the write-invalidate protocol without the caller materializing
// payload bytes: metadata-plane stores record a version bump, payload
// stores receive the client's reusable zero buffer.  fi must come from
// Create or Stat; the write always covers the whole block, so no remote
// fetch is ever needed.  This is the emulation's dirty-write hot path.
func (cl *Client) DirtyBlock(fi *FileInfo, index int) error {
	if index < 0 || index >= len(fi.Blocks) {
		return fmt.Errorf("gdfs: block index %d out of range for %s", index, fi.Path)
	}
	id := fi.Blocks[index]
	store, err := cl.cluster.store(cl.local)
	if err != nil {
		return err
	}
	size := fi.BlockSizeAt(index)
	if bd, ok := store.(blockDirtier); ok {
		if err := bd.DirtyBlock(id, size); err != nil {
			return err
		}
	} else if err := store.WriteBlock(id, cl.zeroBuf(size)); err != nil {
		return err
	}
	return cl.cluster.master.CommitWrite(id, cl.local)
}

// WriteBlock overwrites one block of a file through the write-invalidate
// protocol: write locally, then invalidate remote replicas at the master.
// If the local worker has no valid replica and the write does not cover the
// whole block, the client first fetches a copy from another datacenter, as
// described in the paper.
func (cl *Client) WriteBlock(path string, index int, data []byte) error {
	fi, err := cl.cluster.master.Stat(path)
	if err != nil {
		return err
	}
	if index < 0 || index >= len(fi.Blocks) {
		return fmt.Errorf("gdfs: block index %d out of range for %s", index, path)
	}
	id := fi.Blocks[index]
	store, err := cl.cluster.store(cl.local)
	if err != nil {
		return err
	}

	loc, err := cl.cluster.master.BlockLocations(id)
	if err != nil {
		return err
	}
	localValid := containsWorker(loc.Valid, cl.local)
	partial := int64(len(data)) < loc.Size
	if !localValid && partial {
		if err := cl.fetchBlock(id, loc); err != nil {
			return err
		}
	}

	// Merge a partial write over the existing local content.
	var buf []byte
	if partial && store.HasBlock(id) {
		existing, err := store.ReadBlock(id)
		if err != nil {
			return err
		}
		buf = existing
		copy(buf, data)
	} else {
		buf = data
	}
	if err := store.WriteBlock(id, buf); err != nil {
		return err
	}
	return cl.cluster.master.CommitWrite(id, cl.local)
}

// ReadBlock reads one block of a file, preferring the local replica and
// falling back to any valid remote replica.
func (cl *Client) ReadBlock(path string, index int) ([]byte, error) {
	fi, err := cl.cluster.master.Stat(path)
	if err != nil {
		return nil, err
	}
	if index < 0 || index >= len(fi.Blocks) {
		return nil, fmt.Errorf("gdfs: block index %d out of range for %s", index, path)
	}
	id := fi.Blocks[index]
	loc, err := cl.cluster.master.BlockLocations(id)
	if err != nil {
		return nil, err
	}
	if containsWorker(loc.Valid, cl.local) {
		store, err := cl.cluster.store(cl.local)
		if err != nil {
			return nil, err
		}
		return store.ReadBlock(id)
	}
	for _, w := range loc.Valid {
		store, err := cl.cluster.store(w)
		if err != nil {
			continue
		}
		data, err := store.ReadBlock(id)
		if err == nil {
			return data, nil
		}
	}
	return nil, fmt.Errorf("%w: block %d of %s", ErrNoValidReplica, id, path)
}

// fetchBlock pulls a valid replica of a block to the local worker and
// registers it with the master.
func (cl *Client) fetchBlock(id BlockID, loc *BlockInfo) error {
	if len(loc.Valid) == 0 {
		return fmt.Errorf("%w: block %d", ErrNoValidReplica, id)
	}
	var lastErr error
	for _, w := range loc.Valid {
		if err := cl.cluster.copyBlock(id, w, cl.local); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("gdfs: fetch failed")
	}
	return lastErr
}

// PendingMigrationBytes returns how many bytes of the file would have to be
// shipped to move its workload to the given datacenter right now (the blocks
// whose replica there is stale or missing).
func (cl *Client) PendingMigrationBytes(path string, dest WorkerID) (int64, error) {
	return cl.cluster.master.StaleBytesOn(path, dest)
}

func containsWorker(list []WorkerID, id WorkerID) bool {
	for _, w := range list {
		if w == id {
			return true
		}
	}
	return false
}
