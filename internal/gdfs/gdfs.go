// Package gdfs implements GreenNebula's multi-datacenter distributed file
// system (GDFS), described in Section V-A of the paper.
//
// The design follows HDFS — a single master holds the namespace and block
// metadata, workers (one or more per datacenter) store replicas of data
// blocks — but, unlike HDFS, files are mutable.  Writes go to the local
// replica and invalidate the remote replicas by updating the metadata at the
// master; invalidated blocks are re-replicated in the background.  This keeps
// write latency low while still allowing a virtual machine to migrate
// between datacenters: only the recently modified blocks that have not been
// re-replicated yet need to move with it.
package gdfs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultBlockSize is the block size used when a file is created without an
// explicit size (4 MiB keeps the emulation fast while remaining realistic).
const DefaultBlockSize = 4 << 20

// DefaultReplication is the target number of valid replicas per block.
const DefaultReplication = 2

// BlockID identifies a block globally.
type BlockID int64

// WorkerID identifies a worker (one per datacenter in the emulation).
type WorkerID string

// Errors returned by the master and clients.
var (
	ErrFileExists     = errors.New("gdfs: file already exists")
	ErrFileNotFound   = errors.New("gdfs: file not found")
	ErrBlockNotFound  = errors.New("gdfs: block not found")
	ErrWorkerNotFound = errors.New("gdfs: worker not registered")
	ErrNoValidReplica = errors.New("gdfs: no valid replica available")
	ErrClosed         = errors.New("gdfs: master is closed")
)

// BlockInfo is the master's metadata for one block.
type BlockInfo struct {
	ID   BlockID
	Size int64
	// Valid lists workers holding an up-to-date replica.
	Valid []WorkerID
	// Stale lists workers holding an invalidated replica.
	Stale []WorkerID
}

// FileInfo is the namespace entry for one file.
type FileInfo struct {
	Path      string
	Size      int64
	BlockSize int64
	Blocks    []BlockID
	Modified  time.Time
}

// BlockSizeAt returns the size of block index i (the last block of a file
// whose size is not a multiple of BlockSize is shorter).
func (fi *FileInfo) BlockSizeAt(i int) int64 {
	if i == len(fi.Blocks)-1 && fi.Size%fi.BlockSize != 0 {
		return fi.Size % fi.BlockSize
	}
	return fi.BlockSize
}

// Master holds the namespace and block metadata and plans re-replication.
type Master struct {
	mu          sync.RWMutex
	files       map[string]*FileInfo
	blocks      map[BlockID]*blockMeta
	workers     map[WorkerID]*workerMeta
	nextBlockID BlockID
	replication int
	now         func() time.Time
	closed      bool

	// under indexes the blocks with at least one but fewer than
	// `replication` valid replicas, so UnderReplicated plans over just
	// those instead of scanning every block in the namespace.
	under map[BlockID]struct{}
	// workerList caches the sorted worker IDs (registration is rare,
	// planning is hot).
	workerList []WorkerID

	// Planner scratch, reused across UnderReplicated calls (guarded by mu).
	idScratch   []BlockID
	destScratch []WorkerID
	taskScratch []ReplicationTask
}

type blockMeta struct {
	id       BlockID
	size     int64
	replicas map[WorkerID]bool // true = valid, false = stale
}

type workerMeta struct {
	id WorkerID
	// datacenter groups workers for placement decisions.
	datacenter string
}

// NewMaster returns a master with the given target replication factor
// (DefaultReplication if zero or negative).
func NewMaster(replication int) *Master {
	if replication <= 0 {
		replication = DefaultReplication
	}
	return &Master{
		files:       make(map[string]*FileInfo),
		blocks:      make(map[BlockID]*blockMeta),
		workers:     make(map[WorkerID]*workerMeta),
		under:       make(map[BlockID]struct{}),
		replication: replication,
		now:         time.Now,
	}
}

// updateUnder reconciles the under-replication index for one block: a block
// is under-replicated when it has at least one valid replica (someone to
// copy from) but fewer than the target.
func (m *Master) updateUnder(b *blockMeta) {
	valid := 0
	for _, v := range b.replicas {
		if v {
			valid++
		}
	}
	if valid >= 1 && valid < m.replication {
		m.under[b.id] = struct{}{}
	} else {
		delete(m.under, b.id)
	}
}

// RegisterWorker adds a worker to the cluster.
func (m *Master) RegisterWorker(id WorkerID, datacenter string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if _, ok := m.workers[id]; !ok {
		m.workerList = append(m.workerList, id)
		sort.Slice(m.workerList, func(i, j int) bool { return m.workerList[i] < m.workerList[j] })
	}
	m.workers[id] = &workerMeta{id: id, datacenter: datacenter}
	return nil
}

// Workers returns the registered worker IDs sorted for determinism.
func (m *Master) Workers() []WorkerID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]WorkerID, len(m.workerList))
	copy(out, m.workerList)
	return out
}

// Create adds a file of the given size to the namespace, allocating blocks
// whose primary replica lives on the given worker.
func (m *Master) Create(path string, size int64, primary WorkerID) (*FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if _, ok := m.files[path]; ok {
		return nil, fmt.Errorf("%w: %s", ErrFileExists, path)
	}
	if _, ok := m.workers[primary]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrWorkerNotFound, primary)
	}
	if size < 0 {
		return nil, fmt.Errorf("gdfs: negative file size %d", size)
	}
	blockSize := int64(DefaultBlockSize)
	nBlocks := int((size + blockSize - 1) / blockSize)
	fi := &FileInfo{Path: path, Size: size, BlockSize: blockSize, Modified: m.now()}
	for i := 0; i < nBlocks; i++ {
		bSize := blockSize
		if i == nBlocks-1 && size%blockSize != 0 {
			bSize = size % blockSize
		}
		m.nextBlockID++
		id := m.nextBlockID
		b := &blockMeta{id: id, size: bSize, replicas: map[WorkerID]bool{primary: true}}
		m.blocks[id] = b
		m.updateUnder(b)
		fi.Blocks = append(fi.Blocks, id)
	}
	m.files[path] = fi
	return cloneFileInfo(fi), nil
}

// Stat returns the file's metadata.
func (m *Master) Stat(path string) (*FileInfo, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	fi, ok := m.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrFileNotFound, path)
	}
	return cloneFileInfo(fi), nil
}

// Delete removes a file and its block metadata.
func (m *Master) Delete(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	fi, ok := m.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrFileNotFound, path)
	}
	for _, b := range fi.Blocks {
		delete(m.blocks, b)
		delete(m.under, b)
	}
	delete(m.files, path)
	return nil
}

// Files lists all paths in the namespace, sorted.
func (m *Master) Files() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.files))
	for p := range m.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// BlockLocations reports the block's replica state.
func (m *Master) BlockLocations(id BlockID) (*BlockInfo, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.blockLocationsLocked(id)
}

func (m *Master) blockLocationsLocked(id BlockID) (*BlockInfo, error) {
	b, ok := m.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBlockNotFound, id)
	}
	info := &BlockInfo{ID: id, Size: b.size}
	for w, valid := range b.replicas {
		if valid {
			info.Valid = append(info.Valid, w)
		} else {
			info.Stale = append(info.Stale, w)
		}
	}
	sort.Slice(info.Valid, func(i, j int) bool { return info.Valid[i] < info.Valid[j] })
	sort.Slice(info.Stale, func(i, j int) bool { return info.Stale[i] < info.Stale[j] })
	return info, nil
}

// CommitWrite records that a block was written on the given worker: that
// replica becomes the only valid one and every other replica is invalidated
// (the write-invalidate protocol of the paper).
func (m *Master) CommitWrite(id BlockID, writer WorkerID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blocks[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrBlockNotFound, id)
	}
	if _, ok := m.workers[writer]; !ok {
		return fmt.Errorf("%w: %s", ErrWorkerNotFound, writer)
	}
	for w := range b.replicas {
		b.replicas[w] = false
	}
	b.replicas[writer] = true
	m.updateUnder(b)
	return nil
}

// CommitReplica records that a worker now holds a valid copy of a block
// (used after re-replication or a migration prefetch).
func (m *Master) CommitReplica(id BlockID, holder WorkerID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blocks[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrBlockNotFound, id)
	}
	if _, ok := m.workers[holder]; !ok {
		return fmt.Errorf("%w: %s", ErrWorkerNotFound, holder)
	}
	b.replicas[holder] = true
	m.updateUnder(b)
	return nil
}

// ReplicationTask asks a destination worker to copy a block from a source.
type ReplicationTask struct {
	Block  BlockID
	Source WorkerID
	Dest   WorkerID
}

// UnderReplicated returns the blocks with fewer valid replicas than the
// target, together with a plan of copies that would fix them.  The planner
// prefers destinations that already hold a stale replica (they are the
// cheapest to refresh) and otherwise picks workers that hold no replica.
// It iterates only the under-replication index, not the whole namespace.
// The returned slice is scratch owned by the master, valid until the next
// UnderReplicated call.
func (m *Master) UnderReplicated() []ReplicationTask {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := m.idScratch[:0]
	for id := range m.under {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	m.idScratch = ids

	tasks := m.taskScratch[:0]
	for _, id := range ids {
		b := m.blocks[id]
		// The index guarantees 1 <= valid < replication.
		valid := 0
		var source WorkerID
		dests := m.destScratch[:0]
		for _, w := range m.workerList { // stale holders first (cheapest refresh)
			v, ok := b.replicas[w]
			switch {
			case ok && v:
				if valid == 0 {
					source = w
				}
				valid++
			case ok:
				dests = append(dests, w)
			}
		}
		for _, w := range m.workerList { // then workers holding no replica
			if _, ok := b.replicas[w]; !ok {
				dests = append(dests, w)
			}
		}
		m.destScratch = dests
		need := m.replication - valid
		for i := 0; i < need && i < len(dests); i++ {
			tasks = append(tasks, ReplicationTask{Block: id, Source: source, Dest: dests[i]})
		}
	}
	m.taskScratch = tasks
	return tasks
}

// StaleBlocksOn returns the blocks of a file whose replica on the given
// worker is stale or missing — exactly the data a VM migration must ship.
func (m *Master) StaleBlocksOn(path string, worker WorkerID) ([]BlockID, int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	fi, ok := m.files[path]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrFileNotFound, path)
	}
	var out []BlockID
	var bytes int64
	for _, id := range fi.Blocks {
		b := m.blocks[id]
		if valid, ok := b.replicas[worker]; !ok || !valid {
			out = append(out, id)
			bytes += b.size
		}
	}
	return out, bytes, nil
}

// StaleBytesOn is StaleBlocksOn without materializing the block list — the
// allocation-free path behind Client.PendingMigrationBytes, safe to call
// concurrently from the migration pipeline's shards.
func (m *Master) StaleBytesOn(path string, worker WorkerID) (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	fi, ok := m.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrFileNotFound, path)
	}
	var bytes int64
	for _, id := range fi.Blocks {
		b := m.blocks[id]
		if valid, ok := b.replicas[worker]; !ok || !valid {
			bytes += b.size
		}
	}
	return bytes, nil
}

// Close marks the master closed; subsequent mutations fail.
func (m *Master) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
}

func cloneFileInfo(fi *FileInfo) *FileInfo {
	out := *fi
	out.Blocks = make([]BlockID, len(fi.Blocks))
	copy(out.Blocks, fi.Blocks)
	return &out
}
