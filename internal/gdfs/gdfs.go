// Package gdfs implements GreenNebula's multi-datacenter distributed file
// system (GDFS), described in Section V-A of the paper.
//
// The design follows HDFS — a single master holds the namespace and block
// metadata, workers (one or more per datacenter) store replicas of data
// blocks — but, unlike HDFS, files are mutable.  Writes go to the local
// replica and invalidate the remote replicas by updating the metadata at the
// master; invalidated blocks are re-replicated in the background.  This keeps
// write latency low while still allowing a virtual machine to migrate
// between datacenters: only the recently modified blocks that have not been
// re-replicated yet need to move with it.
package gdfs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultBlockSize is the block size used when a file is created without an
// explicit size (4 MiB keeps the emulation fast while remaining realistic).
const DefaultBlockSize = 4 << 20

// DefaultReplication is the target number of valid replicas per block.
const DefaultReplication = 2

// BlockID identifies a block globally.
type BlockID int64

// WorkerID identifies a worker (one per datacenter in the emulation).
type WorkerID string

// Errors returned by the master and clients.
var (
	ErrFileExists     = errors.New("gdfs: file already exists")
	ErrFileNotFound   = errors.New("gdfs: file not found")
	ErrBlockNotFound  = errors.New("gdfs: block not found")
	ErrWorkerNotFound = errors.New("gdfs: worker not registered")
	ErrNoValidReplica = errors.New("gdfs: no valid replica available")
	ErrClosed         = errors.New("gdfs: master is closed")
)

// BlockInfo is the master's metadata for one block.
type BlockInfo struct {
	ID   BlockID
	Size int64
	// Valid lists workers holding an up-to-date replica.
	Valid []WorkerID
	// Stale lists workers holding an invalidated replica.
	Stale []WorkerID
}

// FileInfo is the namespace entry for one file.
type FileInfo struct {
	Path      string
	Size      int64
	BlockSize int64
	Blocks    []BlockID
	Modified  time.Time
}

// Master holds the namespace and block metadata and plans re-replication.
type Master struct {
	mu          sync.Mutex
	files       map[string]*FileInfo
	blocks      map[BlockID]*blockMeta
	workers     map[WorkerID]*workerMeta
	nextBlockID BlockID
	replication int
	now         func() time.Time
	closed      bool
}

type blockMeta struct {
	id       BlockID
	size     int64
	replicas map[WorkerID]bool // true = valid, false = stale
}

type workerMeta struct {
	id WorkerID
	// datacenter groups workers for placement decisions.
	datacenter string
}

// NewMaster returns a master with the given target replication factor
// (DefaultReplication if zero or negative).
func NewMaster(replication int) *Master {
	if replication <= 0 {
		replication = DefaultReplication
	}
	return &Master{
		files:       make(map[string]*FileInfo),
		blocks:      make(map[BlockID]*blockMeta),
		workers:     make(map[WorkerID]*workerMeta),
		replication: replication,
		now:         time.Now,
	}
}

// RegisterWorker adds a worker to the cluster.
func (m *Master) RegisterWorker(id WorkerID, datacenter string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.workers[id] = &workerMeta{id: id, datacenter: datacenter}
	return nil
}

// Workers returns the registered worker IDs sorted for determinism.
func (m *Master) Workers() []WorkerID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WorkerID, 0, len(m.workers))
	for id := range m.workers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Create adds a file of the given size to the namespace, allocating blocks
// whose primary replica lives on the given worker.
func (m *Master) Create(path string, size int64, primary WorkerID) (*FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if _, ok := m.files[path]; ok {
		return nil, fmt.Errorf("%w: %s", ErrFileExists, path)
	}
	if _, ok := m.workers[primary]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrWorkerNotFound, primary)
	}
	if size < 0 {
		return nil, fmt.Errorf("gdfs: negative file size %d", size)
	}
	blockSize := int64(DefaultBlockSize)
	nBlocks := int((size + blockSize - 1) / blockSize)
	fi := &FileInfo{Path: path, Size: size, BlockSize: blockSize, Modified: m.now()}
	for i := 0; i < nBlocks; i++ {
		bSize := blockSize
		if i == nBlocks-1 && size%blockSize != 0 {
			bSize = size % blockSize
		}
		m.nextBlockID++
		id := m.nextBlockID
		m.blocks[id] = &blockMeta{id: id, size: bSize, replicas: map[WorkerID]bool{primary: true}}
		fi.Blocks = append(fi.Blocks, id)
	}
	m.files[path] = fi
	return cloneFileInfo(fi), nil
}

// Stat returns the file's metadata.
func (m *Master) Stat(path string) (*FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fi, ok := m.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrFileNotFound, path)
	}
	return cloneFileInfo(fi), nil
}

// Delete removes a file and its block metadata.
func (m *Master) Delete(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	fi, ok := m.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrFileNotFound, path)
	}
	for _, b := range fi.Blocks {
		delete(m.blocks, b)
	}
	delete(m.files, path)
	return nil
}

// Files lists all paths in the namespace, sorted.
func (m *Master) Files() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for p := range m.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// BlockLocations reports the block's replica state.
func (m *Master) BlockLocations(id BlockID) (*BlockInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.blockLocationsLocked(id)
}

func (m *Master) blockLocationsLocked(id BlockID) (*BlockInfo, error) {
	b, ok := m.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBlockNotFound, id)
	}
	info := &BlockInfo{ID: id, Size: b.size}
	for w, valid := range b.replicas {
		if valid {
			info.Valid = append(info.Valid, w)
		} else {
			info.Stale = append(info.Stale, w)
		}
	}
	sort.Slice(info.Valid, func(i, j int) bool { return info.Valid[i] < info.Valid[j] })
	sort.Slice(info.Stale, func(i, j int) bool { return info.Stale[i] < info.Stale[j] })
	return info, nil
}

// CommitWrite records that a block was written on the given worker: that
// replica becomes the only valid one and every other replica is invalidated
// (the write-invalidate protocol of the paper).
func (m *Master) CommitWrite(id BlockID, writer WorkerID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blocks[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrBlockNotFound, id)
	}
	if _, ok := m.workers[writer]; !ok {
		return fmt.Errorf("%w: %s", ErrWorkerNotFound, writer)
	}
	for w := range b.replicas {
		b.replicas[w] = false
	}
	b.replicas[writer] = true
	return nil
}

// CommitReplica records that a worker now holds a valid copy of a block
// (used after re-replication or a migration prefetch).
func (m *Master) CommitReplica(id BlockID, holder WorkerID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blocks[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrBlockNotFound, id)
	}
	if _, ok := m.workers[holder]; !ok {
		return fmt.Errorf("%w: %s", ErrWorkerNotFound, holder)
	}
	b.replicas[holder] = true
	return nil
}

// ReplicationTask asks a destination worker to copy a block from a source.
type ReplicationTask struct {
	Block  BlockID
	Source WorkerID
	Dest   WorkerID
}

// UnderReplicated returns the blocks with fewer valid replicas than the
// target, together with a plan of copies that would fix them.  The planner
// prefers destinations that already hold a stale replica (they are the
// cheapest to refresh) and otherwise picks workers that hold no replica.
func (m *Master) UnderReplicated() []ReplicationTask {
	m.mu.Lock()
	defer m.mu.Unlock()
	var tasks []ReplicationTask
	ids := make([]BlockID, 0, len(m.blocks))
	for id := range m.blocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	workerIDs := make([]WorkerID, 0, len(m.workers))
	for id := range m.workers {
		workerIDs = append(workerIDs, id)
	}
	sort.Slice(workerIDs, func(i, j int) bool { return workerIDs[i] < workerIDs[j] })

	for _, id := range ids {
		b := m.blocks[id]
		var valid, stale, absent []WorkerID
		for _, w := range workerIDs {
			v, ok := b.replicas[w]
			switch {
			case ok && v:
				valid = append(valid, w)
			case ok:
				stale = append(stale, w)
			default:
				absent = append(absent, w)
			}
		}
		if len(valid) == 0 || len(valid) >= m.replication {
			continue
		}
		need := m.replication - len(valid)
		dests := append(append([]WorkerID{}, stale...), absent...)
		for i := 0; i < need && i < len(dests); i++ {
			tasks = append(tasks, ReplicationTask{Block: id, Source: valid[0], Dest: dests[i]})
		}
	}
	return tasks
}

// StaleBlocksOn returns the blocks of a file whose replica on the given
// worker is stale or missing — exactly the data a VM migration must ship.
func (m *Master) StaleBlocksOn(path string, worker WorkerID) ([]BlockID, int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fi, ok := m.files[path]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrFileNotFound, path)
	}
	var out []BlockID
	var bytes int64
	for _, id := range fi.Blocks {
		b := m.blocks[id]
		if valid, ok := b.replicas[worker]; !ok || !valid {
			out = append(out, id)
			bytes += b.size
		}
	}
	return out, bytes, nil
}

// Close marks the master closed; subsequent mutations fail.
func (m *Master) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
}

func cloneFileInfo(fi *FileInfo) *FileInfo {
	out := *fi
	out.Blocks = make([]BlockID, len(fi.Blocks))
	copy(out.Blocks, fi.Blocks)
	return &out
}
