package core

import "fmt"

// MoveKind names the neighbourhood move an annealing chain applied to reach
// the siting it is about to evaluate.
type MoveKind uint8

// Move kinds.  MoveNone means "no move metadata": the evaluator treats every
// site as potentially dirty and validates each one against its cache.
const (
	MoveNone MoveKind = iota
	// MoveSwap replaced one selected site with an unselected one.
	MoveSwap
	// MoveAdd appended a new site (capacities rebalanced).
	MoveAdd
	// MoveRemove dropped a site (capacities rebalanced).
	MoveRemove
	// MoveGrow increased one site's capacity by the capacity quantum.
	MoveGrow
	// MoveShrink decreased one site's capacity by the capacity quantum.
	MoveShrink
)

// String returns the move kind name.
func (k MoveKind) String() string {
	switch k {
	case MoveNone:
		return "none"
	case MoveSwap:
		return "swap"
	case MoveAdd:
		return "add"
	case MoveRemove:
		return "remove"
	case MoveGrow:
		return "grow"
	case MoveShrink:
		return "shrink"
	default:
		return fmt.Sprintf("move(%d)", uint8(k))
	}
}

// Move is the structured metadata describing a single-site annealing move,
// threaded from the heuristic's neighbourhood function through
// internal/anneal into the evaluator's delta path.  Site is the site ID whose
// per-site state the move touched (the new site for a swap or add, the
// removed site for a remove, the resized site for grow/shrink); OldCap and
// NewCap are that site's capacity before and after the move (OldCap is zero
// for an add, NewCap zero for a remove).
//
// The evaluator uses the metadata as its invalidation hint: a site whose
// capacity the move changed is re-run without further checks, while every
// other site — including the capacity-preserving swap target — is validated
// by content (capacity and schedule row) against the evaluator's per-site
// cache, so a stale hint can cost time but never correctness.
type Move struct {
	Kind   MoveKind
	Site   int
	OldCap float64
	NewCap float64
}
