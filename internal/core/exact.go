package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"greencloud/internal/cost"
	"greencloud/internal/energy"
	"greencloud/internal/location"
	"greencloud/internal/lp"
	"greencloud/internal/milp"
)

// ExactOptions tunes the MILP solve.
type ExactOptions struct {
	// MaxNodes caps the branch-and-bound nodes (0 = solver default).
	MaxNodes int
	// Deadline, when nonzero, bounds the wall-clock time of the search; at
	// the deadline the best incumbent found so far is returned (Solution.Gap
	// reports how far its bound was still open).
	Deadline time.Time
	// Ctx, when non-nil, cancels the search cooperatively.
	Ctx context.Context
}

// SolveExact builds the optimization problem of Fig. 1 as a MILP (binary
// siting variables plus continuous provisioning and per-epoch operation
// variables) over the given candidate site IDs and solves it with branch and
// bound.  It is only tractable for small instances — a handful of candidate
// sites on a coarse representative grid — and exists to validate the
// heuristic solver, mirroring how the paper compares its heuristic against
// the exact MILP at 0 % and 100 % green energy.
//
// The returned Solution re-prices the MILP's siting and provisioning with
// the fast evaluator so its cost breakdown is directly comparable with
// Solve's output.
//
// Basis reuse across candidate sitings: every branch-and-bound node pins a
// subset of the at[d] siting binaries, so each node's LP relaxation is the
// provisioning problem of one partial candidate siting.  The milp layer
// solves all of them against a single shared lp.Problem and warm-starts
// each child from its parent's optimal basis (a dual-feasible restart after
// the branch bound), so the exact evaluator never re-solves a sibling
// siting from scratch — the dominant cost of the exact path at the 0% and
// 100% green extremes the paper validates against.
func SolveExact(cat *location.Catalog, candidateIDs []int, spec Spec, opts ExactOptions) (*Solution, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(candidateIDs) == 0 {
		return nil, ErrNoSites
	}
	sites := make([]*location.Site, len(candidateIDs))
	for i, id := range candidateIDs {
		s, err := cat.Site(id)
		if err != nil {
			return nil, err
		}
		sites[i] = s
	}
	grid := cat.Grid()
	epochs := grid.Epochs()
	nSites := len(sites)
	nEpochs := len(epochs)
	minDCs, err := spec.MinDatacenters()
	if err != nil {
		return nil, err
	}
	if minDCs > nSites {
		return nil, fmt.Errorf("%w: %d candidates for %d required datacenters", ErrInfeasible, nSites, minDCs)
	}

	p := spec.Cost
	prob := milp.NewProblem(lp.Minimize)

	// Monthly cost coefficients (all CAPEX already financed/amortized).
	bigDC := spec.TotalCapacityKW/float64(minDCs) >= p.LargeDCThresholdKW
	dcPricePerW := p.PriceBuildDCSmallPerW
	if bigDC {
		dcPricePerW = p.PriceBuildDCLargePerW
	}
	monthlyPerKWofDC := func(s *location.Site) float64 {
		build := cost.MonthlyFinanced(s.MaxPUE*1000*dcPricePerW, p.AnnualInterestRate, p.FinancingYears, p.DCAmortYears)
		land := cost.MonthlyInterestOnly(s.LandPriceUSDPerM2*p.AreaDCM2PerKW, p.AnnualInterestRate, p.FinancingYears, p.LandAmortYears)
		servers := p.NumServers(1)
		it := cost.MonthlyFinanced(servers*p.PriceServerUSD+(servers/p.ServersPerSwitch)*p.PriceSwitchUSD,
			p.AnnualInterestRate, p.ITAmortYears, p.ITAmortYears)
		bandwidth := servers * p.PriceBWPerServerMonth
		return build + land + it + bandwidth
	}
	monthlyPerKWSolar := func(s *location.Site) float64 {
		return cost.MonthlyFinanced(1000*p.PriceBuildSolarPerW, p.AnnualInterestRate, p.FinancingYears, p.PlantAmortYears) +
			cost.MonthlyInterestOnly(s.LandPriceUSDPerM2*p.AreaSolarM2PerKW, p.AnnualInterestRate, p.FinancingYears, p.LandAmortYears)
	}
	monthlyPerKWWind := func(s *location.Site) float64 {
		return cost.MonthlyFinanced(1000*p.PriceBuildWindPerW, p.AnnualInterestRate, p.FinancingYears, p.PlantAmortYears) +
			cost.MonthlyInterestOnly(s.LandPriceUSDPerM2*p.AreaWindM2PerKW, p.AnnualInterestRate, p.FinancingYears, p.LandAmortYears)
	}
	monthlyPerKWhBattery := cost.MonthlyFinanced(p.PriceBattPerKWh, p.AnnualInterestRate, p.BattAmortYears, p.BattAmortYears)

	// Per-site variables.
	at := make([]lp.Var, nSites)
	capacity := make([]lp.Var, nSites)
	solarCap := make([]lp.Var, nSites)
	windCap := make([]lp.Var, nSites)
	battCap := make([]lp.Var, nSites)
	// Per-site, per-epoch variables.
	comp := make([][]lp.Var, nSites)
	migrate := make([][]lp.Var, nSites)
	brown := make([][]lp.Var, nSites)
	battChg := make([][]lp.Var, nSites)
	battDis := make([][]lp.Var, nSites)
	battLevel := make([][]lp.Var, nSites)
	netChg := make([][]lp.Var, nSites)
	netDis := make([][]lp.Var, nSites)
	netLevel := make([][]lp.Var, nSites)

	addVar := func(name string, lb, ub, c float64) (lp.Var, error) {
		return prob.AddVariable(name, lb, ub, c)
	}

	// A loose big-M for capacity: the whole network's capacity plus slack.
	bigM := spec.TotalCapacityKW * 4

	solarAllowed := spec.Sources == SolarOnly || spec.Sources == SolarAndWind
	windAllowed := spec.Sources == WindOnly || spec.Sources == SolarAndWind
	useBatteries := spec.Storage == energy.Batteries
	useNetMeter := spec.Storage == energy.NetMetering

	for d, s := range sites {
		var err error
		capIndMonthly := cost.MonthlyFinanced(p.CapIndependentUSD(s), p.AnnualInterestRate, p.FinancingYears, p.DCAmortYears)
		if at[d], err = prob.AddBinaryVariable(fmt.Sprintf("at[%d]", d), capIndMonthly); err != nil {
			return nil, err
		}
		if capacity[d], err = addVar(fmt.Sprintf("cap[%d]", d), 0, lp.Infinity, monthlyPerKWofDC(s)); err != nil {
			return nil, err
		}
		if solarAllowed {
			solarCap[d], err = addVar(fmt.Sprintf("solar[%d]", d), 0, lp.Infinity, monthlyPerKWSolar(s))
		} else {
			solarCap[d], err = addVar(fmt.Sprintf("solar[%d]", d), 0, 0, 0)
		}
		if err != nil {
			return nil, err
		}
		if windAllowed {
			windCap[d], err = addVar(fmt.Sprintf("wind[%d]", d), 0, lp.Infinity, monthlyPerKWWind(s))
		} else {
			windCap[d], err = addVar(fmt.Sprintf("wind[%d]", d), 0, 0, 0)
		}
		if err != nil {
			return nil, err
		}
		if useBatteries {
			battCap[d], err = addVar(fmt.Sprintf("batt[%d]", d), 0, lp.Infinity, monthlyPerKWhBattery)
			if err != nil {
				return nil, err
			}
		}

		comp[d] = make([]lp.Var, nEpochs)
		migrate[d] = make([]lp.Var, nEpochs)
		brown[d] = make([]lp.Var, nEpochs)
		if useBatteries {
			battChg[d] = make([]lp.Var, nEpochs)
			battDis[d] = make([]lp.Var, nEpochs)
			battLevel[d] = make([]lp.Var, nEpochs)
		}
		if useNetMeter {
			netChg[d] = make([]lp.Var, nEpochs)
			netDis[d] = make([]lp.Var, nEpochs)
			netLevel[d] = make([]lp.Var, nEpochs)
		}

		for t := 0; t < nEpochs; t++ {
			w := epochs[t].Weight
			// Monthly brown energy cost coefficient: price × hours / 12.
			brownCost := s.GridPriceUSDPerKWh * w / cost.MonthsPerYear
			netDisCost := s.GridPriceUSDPerKWh * w / cost.MonthsPerYear
			netChgCredit := -p.CreditNetMeter * s.GridPriceUSDPerKWh * w / cost.MonthsPerYear

			if comp[d][t], err = addVar("comp", 0, lp.Infinity, 0); err != nil {
				return nil, err
			}
			if migrate[d][t], err = addVar("mig", 0, lp.Infinity, 0); err != nil {
				return nil, err
			}
			maxBrown := s.NearestPlantKW * maxBrownShareOfPlant
			if brown[d][t], err = addVar("brown", 0, maxBrown, brownCost); err != nil {
				return nil, err
			}
			if useBatteries {
				if battChg[d][t], err = addVar("battChg", 0, lp.Infinity, 0); err != nil {
					return nil, err
				}
				if battDis[d][t], err = addVar("battDis", 0, lp.Infinity, 0); err != nil {
					return nil, err
				}
				if battLevel[d][t], err = addVar("battLevel", 0, lp.Infinity, 0); err != nil {
					return nil, err
				}
			}
			if useNetMeter {
				if netChg[d][t], err = addVar("netChg", 0, lp.Infinity, netChgCredit); err != nil {
					return nil, err
				}
				if netDis[d][t], err = addVar("netDis", 0, lp.Infinity, netDisCost); err != nil {
					return nil, err
				}
				if netLevel[d][t], err = addVar("netLevel", 0, lp.Infinity, 0); err != nil {
					return nil, err
				}
			}
		}
	}

	// Constraints.
	for d, s := range sites {
		// 4. capacity ≤ M·at(d): nothing is built at unselected sites.
		if err := prob.AddConstraint("cap-at", lp.LE, 0,
			lp.Term{Var: capacity[d], Coeff: 1}, lp.Term{Var: at[d], Coeff: -bigM}); err != nil {
			return nil, err
		}
		plantBigM := bigM * 60
		if err := prob.AddConstraint("solar-at", lp.LE, 0,
			lp.Term{Var: solarCap[d], Coeff: 1}, lp.Term{Var: at[d], Coeff: -plantBigM}); err != nil {
			return nil, err
		}
		if err := prob.AddConstraint("wind-at", lp.LE, 0,
			lp.Term{Var: windCap[d], Coeff: 1}, lp.Term{Var: at[d], Coeff: -plantBigM}); err != nil {
			return nil, err
		}
		// Survivability: a selected site hosts at least a 1/minDCs share.
		if err := prob.AddConstraint("surv", lp.GE, 0,
			lp.Term{Var: capacity[d], Coeff: 1},
			lp.Term{Var: at[d], Coeff: -spec.TotalCapacityKW / float64(minDCs)}); err != nil {
			return nil, err
		}

		for t := 0; t < nEpochs; t++ {
			// 1. capacity ≥ comp + migrate.
			if err := prob.AddConstraint("capacity", lp.GE, 0,
				lp.Term{Var: capacity[d], Coeff: 1},
				lp.Term{Var: comp[d][t], Coeff: -1},
				lp.Term{Var: migrate[d][t], Coeff: -1}); err != nil {
				return nil, err
			}
			// Migration definition: migrate ≥ f·(comp(t−1) − comp(t)).
			if t > 0 && spec.MigrationFraction > 0 {
				if err := prob.AddConstraint("migrate", lp.GE, 0,
					lp.Term{Var: migrate[d][t], Coeff: 1},
					lp.Term{Var: comp[d][t-1], Coeff: -spec.MigrationFraction},
					lp.Term{Var: comp[d][t], Coeff: spec.MigrationFraction}); err != nil {
					return nil, err
				}
			}
			// 5. powDemand ≤ powAvail:
			// (comp+mig)·PUE ≤ α·solar + β·wind + battDis + netDis + brown − battChg − netChg.
			pueT := s.PUE[t]
			powerTerms := []lp.Term{
				{Var: comp[d][t], Coeff: pueT},
				{Var: migrate[d][t], Coeff: pueT},
				{Var: solarCap[d], Coeff: -s.Alpha[t]},
				{Var: windCap[d], Coeff: -s.Beta[t]},
				{Var: brown[d][t], Coeff: -1},
			}
			if useBatteries {
				powerTerms = append(powerTerms,
					lp.Term{Var: battDis[d][t], Coeff: -1},
					lp.Term{Var: battChg[d][t], Coeff: 1})
			}
			if useNetMeter {
				powerTerms = append(powerTerms,
					lp.Term{Var: netDis[d][t], Coeff: -1},
					lp.Term{Var: netChg[d][t], Coeff: 1})
			}
			if err := prob.AddConstraint("power", lp.LE, 0, powerTerms...); err != nil {
				return nil, err
			}
			// 6–7. Battery level chaining and capacity.
			if useBatteries {
				terms := []lp.Term{
					{Var: battLevel[d][t], Coeff: 1},
					{Var: battChg[d][t], Coeff: -p.BatteryEfficiency},
					{Var: battDis[d][t], Coeff: 1},
				}
				if t > 0 {
					terms = append(terms, lp.Term{Var: battLevel[d][t-1], Coeff: -1})
				}
				if err := prob.AddConstraint("battLevel", lp.EQ, 0, terms...); err != nil {
					return nil, err
				}
				if err := prob.AddConstraint("battCap", lp.LE, 0,
					lp.Term{Var: battLevel[d][t], Coeff: 1},
					lp.Term{Var: battCap[d], Coeff: -1}); err != nil {
					return nil, err
				}
				// Charging cannot exceed what the green plant produces.
				if err := prob.AddConstraint("chgSource", lp.LE, 0,
					lp.Term{Var: battChg[d][t], Coeff: 1},
					lp.Term{Var: solarCap[d], Coeff: -s.Alpha[t]},
					lp.Term{Var: windCap[d], Coeff: -s.Beta[t]}); err != nil {
					return nil, err
				}
			}
			// 8–9. Net metering account chaining (never negative via lb 0).
			if useNetMeter {
				terms := []lp.Term{
					{Var: netLevel[d][t], Coeff: 1},
					{Var: netChg[d][t], Coeff: -1},
					{Var: netDis[d][t], Coeff: 1},
				}
				if t > 0 {
					terms = append(terms, lp.Term{Var: netLevel[d][t-1], Coeff: -1})
				}
				if err := prob.AddConstraint("netLevel", lp.EQ, 0, terms...); err != nil {
					return nil, err
				}
				if err := prob.AddConstraint("netChgSource", lp.LE, 0,
					lp.Term{Var: netChg[d][t], Coeff: 1},
					lp.Term{Var: solarCap[d], Coeff: -s.Alpha[t]},
					lp.Term{Var: windCap[d], Coeff: -s.Beta[t]}); err != nil {
					return nil, err
				}
			}
		}
	}

	// 2. Total compute capacity per epoch.
	for t := 0; t < nEpochs; t++ {
		terms := make([]lp.Term, nSites)
		for d := range sites {
			terms[d] = lp.Term{Var: comp[d][t], Coeff: 1}
		}
		if err := prob.AddConstraint("totalCap", lp.GE, spec.TotalCapacityKW, terms...); err != nil {
			return nil, err
		}
	}

	// 3. Minimum green fraction over the year:
	// Σ w·(α·solar + β·wind + battDis + netDis) ≥ minGreen · Σ w·(comp+mig)·PUE.
	if spec.MinGreenFraction > 0 {
		var terms []lp.Term
		for d, s := range sites {
			for t := 0; t < nEpochs; t++ {
				w := epochs[t].Weight
				terms = append(terms,
					lp.Term{Var: solarCap[d], Coeff: w * s.Alpha[t]},
					lp.Term{Var: windCap[d], Coeff: w * s.Beta[t]},
					lp.Term{Var: comp[d][t], Coeff: -spec.MinGreenFraction * w * s.PUE[t]},
					lp.Term{Var: migrate[d][t], Coeff: -spec.MinGreenFraction * w * s.PUE[t]},
				)
				if useBatteries {
					terms = append(terms, lp.Term{Var: battDis[d][t], Coeff: w})
				}
				if useNetMeter {
					terms = append(terms, lp.Term{Var: netDis[d][t], Coeff: w})
				}
			}
		}
		if err := prob.AddConstraint("minGreen", lp.GE, 0, terms...); err != nil {
			return nil, err
		}
	}

	// 11. Availability: at least minDCs datacenters.
	atTerms := make([]lp.Term, nSites)
	for d := range sites {
		atTerms[d] = lp.Term{Var: at[d], Coeff: 1}
	}
	if err := prob.AddConstraint("availability", lp.GE, float64(minDCs), atTerms...); err != nil {
		return nil, err
	}
	if spec.MaxDatacenters > 0 {
		if err := prob.AddConstraint("maxDCs", lp.LE, float64(spec.MaxDatacenters), atTerms...); err != nil {
			return nil, err
		}
	}

	milpSol, err := prob.SolveWithOptions(milp.Options{
		MaxNodes: opts.MaxNodes,
		Deadline: opts.Deadline,
		Ctx:      opts.Ctx,
	})
	if err != nil {
		// A budget stop with an incumbent in hand comes back as a nil error
		// with Proven false; an error here means there is nothing usable.
		return nil, fmt.Errorf("core: exact solve: %w", err)
	}

	// Re-price the selected siting with the evaluator so the output format
	// matches the heuristic solver's.
	var candidates []Candidate
	for d := range sites {
		if milpSol.Value(at[d]) > 0.5 {
			capKW := milpSol.Value(capacity[d])
			if capKW < spec.TotalCapacityKW/float64(minDCs) {
				capKW = spec.TotalCapacityKW / float64(minDCs)
			}
			candidates = append(candidates, Candidate{SiteID: candidateIDs[d], CapacityKW: capKW})
		}
	}
	if len(candidates) == 0 {
		return nil, ErrInfeasible
	}
	sol, err := Evaluate(cat, candidates, spec)
	if err != nil {
		return nil, err
	}
	// Keep the MILP objective available for comparisons even though the
	// evaluator re-prices operation; the two should be close.
	if math.IsInf(sol.TotalMonthlyUSD, 0) || sol.TotalMonthlyUSD == 0 {
		sol.TotalMonthlyUSD = milpSol.Objective
	}
	sol.ExactNodes = milpSol.Nodes
	sol.ExactLPStats = milpSol.LPStats
	return sol, nil
}
