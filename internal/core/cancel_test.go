package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// cancel_test pins context/deadline behavior of both solvers: an uncancelled
// Ctx never changes the heuristic's answer, cancellation surfaces the context
// error (with the partial best when one exists), and the exact solver's
// Deadline/Ctx budgets flow through to the branch-and-bound tree.

func TestSolveUncancelledCtxIsIdentical(t *testing.T) {
	cat := testCatalog(t, 60)
	spec := smallSpec()
	spec.MinGreenFraction = 0.5
	opts := SolveOptions{FilterKeep: 15, Chains: 2, MaxIterations: 40, Seed: 1}

	bare, err := Solve(cat, spec, opts)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	opts.Ctx = context.Background()
	withCtx, err := Solve(cat, spec, opts)
	if err != nil {
		t.Fatalf("Solve with ctx: %v", err)
	}
	if bare.TotalMonthlyUSD != withCtx.TotalMonthlyUSD {
		t.Errorf("uncancelled ctx changed the solution: %v vs %v", bare.TotalMonthlyUSD, withCtx.TotalMonthlyUSD)
	}
	if len(bare.Sites) != len(withCtx.Sites) {
		t.Fatalf("site counts differ: %d vs %d", len(bare.Sites), len(withCtx.Sites))
	}
	for i := range bare.Sites {
		if bare.Sites[i].Site.ID != withCtx.Sites[i].Site.ID {
			t.Errorf("site %d differs: %d vs %d", i, bare.Sites[i].Site.ID, withCtx.Sites[i].Site.ID)
		}
	}
}

func TestSolveCancelledSurfacesContextError(t *testing.T) {
	cat := testCatalog(t, 60)
	spec := smallSpec()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	best, err := Solve(cat, spec, SolveOptions{FilterKeep: 15, Chains: 2, MaxIterations: 40, Seed: 1, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want a context.Canceled chain", err)
	}
	// If a partial best came back it must be a coherent solution.
	if best != nil && best.TotalMonthlyUSD <= 0 {
		t.Errorf("partial best has non-positive cost %v", best.TotalMonthlyUSD)
	}
}

func TestSolveExactDeadlineAndCtx(t *testing.T) {
	cat := testCatalog(t, 20)
	spec := smallSpec()
	ids := []int{0, 1, 2, 3}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveExact(cat, ids, spec, ExactOptions{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled exact solve: err = %v, want a context.Canceled chain", err)
	}

	if _, err := SolveExact(cat, ids, spec, ExactOptions{Deadline: time.Now().Add(-time.Second)}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired exact solve: err = %v, want a context.DeadlineExceeded chain", err)
	}
}
