package core

import (
	"errors"
	"math"
	"testing"

	"greencloud/internal/energy"
	"greencloud/internal/location"
)

// testCatalog returns a small, reproducible catalog shared by the tests.
func testCatalog(t testing.TB, count int) *location.Catalog {
	t.Helper()
	cat, err := location.Generate(location.Options{Count: count, Seed: 11, RepresentativeDays: 2})
	if err != nil {
		t.Fatalf("generate catalog: %v", err)
	}
	return cat
}

// smallSpec is a 10 MW network spec that keeps tests fast.
func smallSpec() Spec {
	s := DefaultSpec()
	s.TotalCapacityKW = 10_000
	return s
}

func TestSpecValidate(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"zero capacity", func(s *Spec) { s.TotalCapacityKW = 0 }},
		{"negative green", func(s *Spec) { s.MinGreenFraction = -0.1 }},
		{"green above one", func(s *Spec) { s.MinGreenFraction = 1.5 }},
		{"migration above one", func(s *Spec) { s.MigrationFraction = 2 }},
		{"availability one", func(s *Spec) { s.MinAvailability = 1 }},
		{"bad site availability", func(s *Spec) { s.SiteAvailability = 0 }},
		{"bad sources", func(s *Spec) { s.Sources = SourceMix(99) }},
		{"bad storage", func(s *Spec) { s.Storage = energy.StorageMode(99) }},
		{"bad cost params", func(s *Spec) { s.Cost.BatteryEfficiency = 7 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := DefaultSpec()
			tc.mutate(&s)
			if err := s.Validate(); !errors.Is(err, ErrBadSpec) {
				t.Errorf("want ErrBadSpec, got %v", err)
			}
		})
	}
}

func TestSpecDefaultsAndMinDatacenters(t *testing.T) {
	var s Spec
	s = s.withDefaults()
	if s.TotalCapacityKW != 50_000 || s.Storage != energy.NetMetering || s.Sources != SolarAndWind {
		t.Errorf("withDefaults produced %+v", s)
	}
	n, err := s.MinDatacenters()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("MinDatacenters = %d, want 2 for five nines with paper-tier sites", n)
	}
	if SolarOnly.String() != "solar" || WindOnly.String() != "wind" || SolarAndWind.String() != "solar+wind" {
		t.Error("unexpected SourceMix names")
	}
	if SourceMix(9).String() == "" {
		t.Error("unknown source mix should still print")
	}
}

func TestEvaluateValidation(t *testing.T) {
	cat := testCatalog(t, 20)
	if _, err := Evaluate(cat, nil, smallSpec()); !errors.Is(err, ErrNoSites) {
		t.Errorf("want ErrNoSites, got %v", err)
	}
	if _, err := Evaluate(cat, []Candidate{{SiteID: 999}}, smallSpec()); err == nil {
		t.Error("unknown site should error")
	}
	bad := smallSpec()
	bad.MinGreenFraction = 2
	if _, err := Evaluate(cat, []Candidate{{SiteID: 0}}, bad); !errors.Is(err, ErrBadSpec) {
		t.Errorf("want ErrBadSpec, got %v", err)
	}
}

func TestEvaluateBrownNetwork(t *testing.T) {
	cat := testCatalog(t, 30)
	spec := smallSpec()
	spec.MinGreenFraction = 0
	sol, err := Evaluate(cat, []Candidate{{SiteID: 0}, {SiteID: 1}}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("brown network should be feasible: %v", sol.Violations)
	}
	if sol.SolarKW != 0 || sol.WindKW != 0 || sol.BatteryKWh != 0 {
		t.Errorf("brown network should build no plants, got solar=%v wind=%v batt=%v",
			sol.SolarKW, sol.WindKW, sol.BatteryKWh)
	}
	if sol.ProvisionedCapacityKW < spec.TotalCapacityKW-1 {
		t.Errorf("provisioned capacity %v below requirement", sol.ProvisionedCapacityKW)
	}
	if sol.TotalMonthlyUSD <= 0 {
		t.Error("brown network must still cost something")
	}
	if sol.Breakdown.BrownEnergy <= 0 {
		t.Error("brown network should pay for grid energy")
	}
	if sol.Summary() == "" {
		t.Error("Summary should not be empty")
	}
}

func TestEvaluateGreenCostsMoreThanBrown(t *testing.T) {
	cat := testCatalog(t, 40)
	brownSpec := smallSpec()
	brownSpec.MinGreenFraction = 0
	greenSpec := smallSpec()
	greenSpec.MinGreenFraction = 0.5

	cands := []Candidate{{SiteID: 2}, {SiteID: 5}}
	brown, err := Evaluate(cat, cands, brownSpec)
	if err != nil {
		t.Fatal(err)
	}
	green, err := Evaluate(cat, cands, greenSpec)
	if err != nil {
		t.Fatal(err)
	}
	if green.SolarKW+green.WindKW <= 0 {
		t.Fatal("green solution built no plants")
	}
	if green.GreenFraction < 0.5-1e-3 {
		t.Errorf("green fraction %v below target", green.GreenFraction)
	}
	// Plants cost money, but the grid bill shrinks; the net cost should be
	// moderately higher, not wildly different.
	if green.TotalMonthlyUSD <= brown.TotalMonthlyUSD*0.95 {
		t.Errorf("50%% green (%v) should not be cheaper than brown (%v)",
			green.TotalMonthlyUSD, brown.TotalMonthlyUSD)
	}
	if green.TotalMonthlyUSD > brown.TotalMonthlyUSD*2.5 {
		t.Errorf("50%% green (%v) looks implausibly expensive vs brown (%v)",
			green.TotalMonthlyUSD, brown.TotalMonthlyUSD)
	}
	if brown.Breakdown.BrownEnergy <= green.Breakdown.BrownEnergy {
		t.Error("the green network should buy less brown energy")
	}
}

func TestEvaluateRespectsSourceMix(t *testing.T) {
	cat := testCatalog(t, 40)
	cands := []Candidate{{SiteID: 3}, {SiteID: 9}}

	solarSpec := smallSpec()
	solarSpec.Sources = SolarOnly
	solarSpec.MinGreenFraction = 0.4
	sol, err := Evaluate(cat, cands, solarSpec)
	if err != nil {
		t.Fatal(err)
	}
	if sol.WindKW != 0 {
		t.Errorf("solar-only solution built %v kW of wind", sol.WindKW)
	}
	if sol.SolarKW <= 0 {
		t.Error("solar-only solution built no solar")
	}

	windSpec := smallSpec()
	windSpec.Sources = WindOnly
	windSpec.MinGreenFraction = 0.4
	sol, err = Evaluate(cat, cands, windSpec)
	if err != nil {
		t.Fatal(err)
	}
	if sol.SolarKW != 0 {
		t.Errorf("wind-only solution built %v kW of solar", sol.SolarKW)
	}
	if sol.WindKW <= 0 {
		t.Error("wind-only solution built no wind")
	}
}

func TestEvaluateStorageModes(t *testing.T) {
	// The same siting at 80% green: net metering should be the cheapest,
	// batteries in between, and no storage the most expensive (Figs. 8–10).
	cat := testCatalog(t, 60)
	// Use good renewable sites so the comparison is about storage.
	wind := cat.TopByWindCF(2)
	cands := []Candidate{{SiteID: wind[0].ID}, {SiteID: wind[1].ID}}

	costs := map[energy.StorageMode]float64{}
	for _, mode := range []energy.StorageMode{energy.NetMetering, energy.Batteries, energy.NoStorage} {
		spec := smallSpec()
		spec.MinGreenFraction = 0.8
		spec.Storage = mode
		sol, err := Evaluate(cat, cands, spec)
		if err != nil {
			t.Fatal(err)
		}
		costs[mode] = sol.TotalMonthlyUSD
		if mode == energy.Batteries && sol.BatteryKWh <= 0 {
			t.Error("battery mode should install batteries")
		}
		if mode != energy.Batteries && sol.BatteryKWh != 0 {
			t.Errorf("%v mode should not install batteries", mode)
		}
	}
	if costs[energy.NetMetering] > costs[energy.NoStorage] {
		t.Errorf("net metering (%v) should not cost more than no storage (%v)",
			costs[energy.NetMetering], costs[energy.NoStorage])
	}
	if costs[energy.NetMetering] > costs[energy.Batteries] {
		t.Errorf("net metering (%v) should not cost more than batteries (%v)",
			costs[energy.NetMetering], costs[energy.Batteries])
	}
}

func TestEvaluateMigrationFractionReducesCost(t *testing.T) {
	// With no storage and a high green fraction, cheaper migrations reduce
	// the total cost (Fig. 13 direction).
	cat := testCatalog(t, 60)
	wind := cat.TopByWindCF(2)
	solar := cat.TopBySolarCF(1)
	cands := []Candidate{
		{SiteID: wind[0].ID, CapacityKW: 10_000},
		{SiteID: wind[1].ID, CapacityKW: 10_000},
		{SiteID: solar[0].ID, CapacityKW: 10_000},
	}
	run := func(frac float64) float64 {
		spec := smallSpec()
		spec.Storage = energy.NoStorage
		spec.MinGreenFraction = 0.9
		spec.MigrationFraction = frac
		sol, err := Evaluate(cat, cands, spec)
		if err != nil {
			t.Fatal(err)
		}
		return sol.TotalMonthlyUSD
	}
	full := run(1.0)
	none := run(0.0)
	if none > full+1e-6 {
		t.Errorf("zero-cost migration (%v) should not cost more than full-epoch migration (%v)", none, full)
	}
}

func TestEvaluateInfeasibleCases(t *testing.T) {
	cat := testCatalog(t, 30)

	// One datacenter cannot reach five nines.
	spec := smallSpec()
	sol, err := Evaluate(cat, []Candidate{{SiteID: 0}}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible {
		t.Error("a single datacenter should violate the availability constraint")
	}

	// Capacity below the requirement.
	sol, err = Evaluate(cat, []Candidate{{SiteID: 0, CapacityKW: 1000}, {SiteID: 1, CapacityKW: 1000}}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible {
		t.Error("under-provisioned capacity should be infeasible")
	}

	// Datacenter cap.
	spec = smallSpec()
	spec.MaxDatacenters = 2
	sol, err = Evaluate(cat, []Candidate{{SiteID: 0}, {SiteID: 1}, {SiteID: 2}}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible {
		t.Error("exceeding MaxDatacenters should be infeasible")
	}
}

func TestEvaluateSingleSiteBrownVsWind(t *testing.T) {
	// Fig. 6's qualitative fact: at a good wind location, a 50%-green wind
	// datacenter costs only moderately more than a brown one.
	cat := testCatalog(t, 80)
	windSite := cat.TopByWindCF(1)[0]

	brownSpec := smallSpec()
	brownSpec.MinGreenFraction = 0
	brown, err := EvaluateSingleSite(cat, windSite.ID, 25_000, brownSpec)
	if err != nil {
		t.Fatal(err)
	}
	windSpec := smallSpec()
	windSpec.MinGreenFraction = 0.5
	windSpec.Sources = WindOnly
	wind, err := EvaluateSingleSite(cat, windSite.ID, 25_000, windSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !brown.Feasible {
		t.Fatalf("brown single site should be feasible: %v", brown.Violations)
	}
	// At an exceptional wind site the 50%-green build can even be slightly
	// cheaper than brown (net metering sells the surplus at retail price);
	// anywhere in the 0.9–2.0 band is consistent with Fig. 6.
	ratio := wind.TotalMonthlyUSD / brown.TotalMonthlyUSD
	if ratio < 0.9 || ratio > 2.0 {
		t.Errorf("wind/brown cost ratio %v at the best wind site out of the expected band", ratio)
	}
}

func TestScheduleFollowsRenewables(t *testing.T) {
	// With two sites in different time zones and plants installed, the
	// schedule must shift load toward the site with green production.
	cat := testCatalog(t, 80)
	solarSites := cat.TopBySolarCF(6)
	// Find two with very different UTC offsets.
	var a, b *location.Site
	for _, s1 := range solarSites {
		for _, s2 := range solarSites {
			if circularHourDistance(s1.UTCOffsetHours, s2.UTCOffsetHours) >= 8 {
				a, b = s1, s2
				break
			}
		}
		if a != nil {
			break
		}
	}
	if a == nil {
		t.Skip("no pair of solar sites far apart in time zones in this catalog")
	}
	spec := smallSpec()
	spec.Storage = energy.NoStorage
	spec.Sources = SolarOnly
	spec.MinGreenFraction = 0.5
	sol, err := Evaluate(cat, []Candidate{
		{SiteID: a.ID, CapacityKW: 10_000},
		{SiteID: b.ID, CapacityKW: 10_000},
	}, spec)
	if err != nil {
		t.Fatal(err)
	}
	// The two sites' compute assignments must not be identical across all
	// epochs: load follows the sun.
	identical := true
	for t2 := range sol.Sites[0].ComputeKW {
		if math.Abs(sol.Sites[0].ComputeKW[t2]-sol.Sites[1].ComputeKW[t2]) > 1 {
			identical = false
			break
		}
	}
	if identical {
		t.Error("load schedule does not follow the renewables across time zones")
	}
	// Migration overhead must be accounted somewhere.
	totalMigration := 0.0
	for _, site := range sol.Sites {
		for _, m := range site.MigrationKW {
			totalMigration += m
		}
	}
	if totalMigration <= 0 {
		t.Error("expected some migration overhead in a follow-the-renewables schedule")
	}
}

func TestFilterSites(t *testing.T) {
	cat := testCatalog(t, 80)
	spec := smallSpec()
	ids, err := FilterSites(cat, spec, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) < 20 {
		t.Fatalf("filter kept %d sites, want at least 20", len(ids))
	}
	if len(ids) > 45 {
		t.Fatalf("filter kept %d sites, want roughly 20 plus the renewable anchors", len(ids))
	}
	seen := map[int]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("filter returned duplicate site %d", id)
		}
		seen[id] = true
		if _, err := cat.Site(id); err != nil {
			t.Fatalf("filter returned invalid site %d", id)
		}
	}
	// The single best wind site must survive filtering (it anchors green
	// solutions).
	best := cat.TopByWindCF(1)[0]
	if !seen[best.ID] {
		t.Errorf("best wind site %s was filtered out", best.Name)
	}
	if _, err := FilterSites(cat, Spec{TotalCapacityKW: -5}, 10); err == nil {
		t.Error("invalid spec should error")
	}
}

func TestSolveSmallNetwork(t *testing.T) {
	cat := testCatalog(t, 60)
	spec := smallSpec()
	spec.MinGreenFraction = 0.5
	sol, err := Solve(cat, spec, SolveOptions{
		FilterKeep:    15,
		Chains:        2,
		MaxIterations: 40,
		Seed:          1,
	})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !sol.Feasible {
		t.Fatalf("heuristic returned an infeasible solution: %v", sol.Violations)
	}
	if len(sol.Sites) < 2 {
		t.Errorf("expected at least 2 datacenters for five nines, got %d", len(sol.Sites))
	}
	if sol.GreenFraction < 0.5-1e-3 {
		t.Errorf("green fraction %v below target", sol.GreenFraction)
	}
	if sol.ProvisionedCapacityKW < spec.TotalCapacityKW-1 {
		t.Errorf("capacity %v below requirement", sol.ProvisionedCapacityKW)
	}
	if sol.TotalMonthlyUSD <= 0 {
		t.Error("cost must be positive")
	}
}

func TestSolveBrownCheaperThanGreen(t *testing.T) {
	cat := testCatalog(t, 60)
	opts := SolveOptions{FilterKeep: 12, Chains: 2, MaxIterations: 30, Seed: 3}

	brownSpec := smallSpec()
	brownSpec.MinGreenFraction = 0
	brown, err := Solve(cat, brownSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	greenSpec := smallSpec()
	greenSpec.MinGreenFraction = 0.5
	green, err := Solve(cat, greenSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if green.TotalMonthlyUSD < brown.TotalMonthlyUSD*0.98 {
		t.Errorf("50%% green network (%v) should not beat the brown network (%v)",
			green.TotalMonthlyUSD, brown.TotalMonthlyUSD)
	}
	// The paper's headline: the premium is modest (13% there).  Allow a
	// generous band for the synthetic catalog.
	premium := green.TotalMonthlyUSD/brown.TotalMonthlyUSD - 1
	if premium > 0.8 {
		t.Errorf("green premium %.0f%% looks too large", premium*100)
	}
}

func TestSolveExactTinyInstance(t *testing.T) {
	// A coarse one-representative-day grid keeps the MILP small enough for
	// the dense simplex to solve in seconds.
	cat, err := location.Generate(location.Options{Count: 20, Seed: 11, RepresentativeDays: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec()
	spec.MinGreenFraction = 0.3
	spec.Storage = energy.NoStorage

	// Hand the exact solver a handful of candidates including a good wind
	// site.
	ids := []int{0, 1}
	ids = append(ids, cat.TopByWindCF(1)[0].ID)
	exact, err := SolveExact(cat, ids, spec, ExactOptions{})
	if err != nil {
		t.Fatalf("SolveExact: %v", err)
	}
	if len(exact.Sites) < 2 {
		t.Errorf("exact solution has %d sites, want ≥ 2 (availability)", len(exact.Sites))
	}
	if exact.TotalMonthlyUSD <= 0 {
		t.Error("exact solution cost must be positive")
	}
	// The heuristic restricted to the same candidates should land in the
	// same ballpark (the paper found its heuristic matches the MILP at the
	// extremes).  The MILP objective is a linearization and its siting is
	// re-priced by the evaluator, so the band is generous; what matters is
	// that neither path collapses or explodes.
	sub, err := cat.Subset(ids)
	if err != nil {
		t.Fatal(err)
	}
	heur, err := Solve(sub, spec, SolveOptions{FilterKeep: len(ids), Chains: 2, MaxIterations: 40, Seed: 2})
	if err != nil {
		t.Fatalf("heuristic on subset: %v", err)
	}
	ratio := heur.TotalMonthlyUSD / exact.TotalMonthlyUSD
	if ratio < 0.45 || ratio > 2.0 {
		t.Errorf("heuristic/exact cost ratio %v is out of band", ratio)
	}
}

func TestSolveExactValidation(t *testing.T) {
	cat := testCatalog(t, 10)
	if _, err := SolveExact(cat, nil, smallSpec(), ExactOptions{}); !errors.Is(err, ErrNoSites) {
		t.Errorf("want ErrNoSites, got %v", err)
	}
	if _, err := SolveExact(cat, []int{0}, smallSpec(), ExactOptions{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("one candidate for two required DCs: want ErrInfeasible, got %v", err)
	}
	bad := smallSpec()
	bad.TotalCapacityKW = -1
	if _, err := SolveExact(cat, []int{0, 1}, bad, ExactOptions{}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("want ErrBadSpec, got %v", err)
	}
}
