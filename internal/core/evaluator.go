package core

import (
	"fmt"
	"math"

	"greencloud/internal/cost"
	"greencloud/internal/energy"
	"greencloud/internal/location"
	"greencloud/internal/timeseries"
)

// CostSummary is the compact result of a cost-only evaluation: everything
// the annealing search needs to rank a candidate siting, with none of the
// per-site series a full Solution carries.
type CostSummary struct {
	// MonthlyUSD is the total monthly cost of the provisioned network.
	MonthlyUSD float64
	// GreenFraction is the achieved network-wide green fraction.
	GreenFraction float64
	// Feasible reports whether every constraint is met.
	Feasible bool
}

// Evaluator is the reusable fast evaluator: it owns preallocated scratch
// state for one (catalog, spec) pair so that repeated evaluations of
// candidate sitings perform no heap allocations in steady state.
//
// Reuse contract: an Evaluator is bound to the catalog and spec it was
// created with; scratch buffers grow to the largest candidate set seen and
// are then reused, so a steady-state EvaluateCost call (same or smaller
// candidate count, same epoch grid) is allocation-free.  The full Evaluate
// method allocates only the returned *Solution and its per-site series.
// An Evaluator is NOT safe for concurrent use — create one per goroutine
// (the parallel annealing chains in Solve share a sync.Pool of them).
type Evaluator struct {
	cat    *location.Catalog
	spec   Spec
	grid   *timeseries.Grid
	prof   *location.Profiles
	epochs int
	minDCs int

	// Per-catalog static caches, indexed by profile row.
	weights  []float64 // epoch weights (hours represented)
	brownKey []float64 // grid price × average PUE: the brown-rank key
	ucSolar  []float64 // unit green cost of solar ($ per monthly kWh)
	ucWind   []float64 // unit green cost of wind
	solarTW  []float64 // tech-weight split between solar and wind
	windTW   []float64

	// Per-call candidate state.
	n          int
	sites      []*location.Site
	alphaRow   [][]float64 // aliases into prof's dense matrices
	betaRow    [][]float64
	pueRow     [][]float64
	rows       []int
	capacities []float64

	// Per-call scratch, n×epochs flattened matrices.
	compute   []float64
	migration []float64
	demand    []float64
	green     []float64

	// Per-call scratch, length n.
	brownRank  []int
	availIdx   []int
	availVal   []float64
	solarKW    []float64
	windKW     []float64
	baseSolar  []float64
	baseWind   []float64
	batteryKWh []float64
	demandKWh  []float64
	order      []int
	blended    []float64

	// scratchSeries holds one epoch-length series for plant-sizing trials.
	scratchSeries []float64

	balancer energy.Balancer
}

// NewEvaluator builds an evaluator for the catalog and spec, precomputing
// the per-site static quantities the hot path needs: epoch weights, the
// brown-cost rank key, unit green production costs and the solar/wind
// technology split of every site.
func NewEvaluator(cat *location.Catalog, spec Spec) (*Evaluator, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	minDCs, err := spec.MinDatacenters()
	if err != nil {
		return nil, err
	}
	grid := cat.Grid()
	prof := cat.Profiles()
	e := &Evaluator{
		cat:    cat,
		spec:   spec,
		grid:   grid,
		prof:   prof,
		epochs: grid.Len(),
		minDCs: minDCs,
	}
	e.weights = epochWeights(grid)
	nSites := cat.Len()
	e.brownKey = make([]float64, nSites)
	e.ucSolar = make([]float64, nSites)
	e.ucWind = make([]float64, nSites)
	e.solarTW = make([]float64, nSites)
	e.windTW = make([]float64, nSites)
	for _, s := range cat.Sites() {
		row, ok := prof.Row(s.ID)
		if !ok {
			return nil, fmt.Errorf("core: site %d missing from catalog profiles", s.ID)
		}
		e.brownKey[row] = s.GridPriceUSDPerKWh * s.AvgPUE
		e.ucSolar[row] = unitGreenCost(s, true, spec.Cost)
		e.ucWind[row] = unitGreenCost(s, false, spec.Cost)
		e.solarTW[row], e.windTW[row] = techWeights(e.ucSolar[row], e.ucWind[row], spec)
	}
	return e, nil
}

// Spec returns the spec the evaluator was built with (defaults applied).
func (e *Evaluator) Spec() Spec { return e.spec }

// Evaluate provisions and prices the candidate siting, returning a full
// Solution with per-site series.  Only the returned Solution is allocated;
// all intermediate state comes from the evaluator's scratch buffers.
func (e *Evaluator) Evaluate(candidates []Candidate) (*Solution, error) {
	sol := &Solution{Spec: e.spec, Feasible: true}
	if _, err := e.run(candidates, sol); err != nil {
		return nil, err
	}
	return sol, nil
}

// EvaluateCost is the annealing inner loop: it provisions and prices the
// candidate siting exactly like Evaluate but returns only the cost summary,
// performing zero heap allocations in steady state.
func (e *Evaluator) EvaluateCost(candidates []Candidate) (CostSummary, error) {
	return e.run(candidates, nil)
}

// run executes the full evaluation pipeline.  When sol is non-nil the
// per-site series and violation messages are materialized into it; when nil
// the same arithmetic runs entirely on scratch state.
func (e *Evaluator) run(candidates []Candidate, sol *Solution) (CostSummary, error) {
	if err := e.prepare(candidates); err != nil {
		return CostSummary{}, err
	}
	spec := &e.spec
	n := e.n
	feasible := true

	totalCap := 0.0
	for _, c := range e.capacities[:n] {
		totalCap += c
	}
	if totalCap+1e-6 < spec.TotalCapacityKW {
		feasible = false
		if sol != nil {
			sol.addViolation("provisioned capacity %.1f kW below required %.1f kW", totalCap, spec.TotalCapacityKW)
		}
	}
	if n < e.minDCs {
		feasible = false
		if sol != nil {
			sol.addViolation("%d datacenters cannot reach availability %.5f (need ≥ %d)",
				n, spec.MinAvailability, e.minDCs)
		}
	}
	if spec.MaxDatacenters > 0 && n > spec.MaxDatacenters {
		feasible = false
		if sol != nil {
			sol.addViolation("%d datacenters exceed the cap of %d", n, spec.MaxDatacenters)
		}
	}
	// Survivability: each datacenter must hold at least a 1/n share.
	minShare := spec.TotalCapacityKW / float64(n)
	for i, c := range e.capacities[:n] {
		if c+1e-6 < minShare {
			feasible = false
			if sol != nil {
				sol.addViolation("site %s capacity %.1f kW below survivable share %.1f kW",
					e.sites[i].Name, c, minShare)
			}
			break
		}
	}

	// Iterate schedule → plant sizing → schedule: the load schedule depends
	// on where green energy is produced and vice versa.
	e.scheduleLoad(false)
	for iter := 0; iter < 3; iter++ {
		e.sizePlants()
		e.scheduleLoad(true)
	}
	e.sizeBatteries()

	// Final accounting per site.
	e.migrationSeries()
	e.demandSeriesAll()
	aggregate := cost.Breakdown{}
	totalDemandKWh, totalGreenKWh := 0.0, 0.0
	E := e.epochs
	for i := 0; i < n; i++ {
		site := e.sites[i]
		green := e.green[i*E : (i+1)*E]
		alpha, beta := e.alphaRow[i], e.betaRow[i]
		for t := 0; t < E; t++ {
			green[t] = alpha[t]*e.solarKW[i] + beta[t]*e.windKW[i]
		}
		res, err := e.balancer.Balance(energy.BalanceInput{
			GreenKW:            green,
			DemandKW:           e.demand[i*E : (i+1)*E],
			Weights:            e.weights,
			Mode:               spec.Storage,
			BatteryCapacityKWh: e.batteryKWh[i],
			BatteryEfficiency:  spec.Cost.BatteryEfficiency,
		})
		if err != nil {
			return CostSummary{}, fmt.Errorf("core: balance for %s: %w", site.Name, err)
		}

		maxBrown := 0.0
		for _, b := range res.BrownKW {
			if b > maxBrown {
				maxBrown = b
			}
		}
		if maxBrown > site.NearestPlantKW*maxBrownShareOfPlant {
			feasible = false
			if sol != nil {
				sol.addViolation("site %s draws %.0f kW of brown power, above %.0f%% of the nearest plant (%.0f kW)",
					site.Name, maxBrown, 100*maxBrownShareOfPlant, site.NearestPlantKW)
			}
		}

		prov := cost.Provision{
			CapacityKW: e.capacities[i],
			MaxPUE:     site.MaxPUE,
			SolarKW:    e.solarKW[i],
			WindKW:     e.windKW[i],
			BatteryKWh: e.batteryKWh[i],
		}
		use := cost.EnergyUse{
			BrownKWh:         res.BrownKWh,
			NetChargedKWh:    res.NetChargedKWh,
			NetDischargedKWh: res.NetDischargedKWh,
		}
		breakdown := spec.Cost.MonthlySite(site, prov, use)
		aggregate = aggregate.Add(breakdown)
		totalDemandKWh += res.DemandKWh
		totalGreenKWh += res.GreenUsedKWh + res.BattDischargedKWh + res.NetDischargedKWh

		if sol != nil {
			sol.Sites = append(sol.Sites, SiteSolution{
				Site:          site,
				Provision:     prov,
				Energy:        use,
				Breakdown:     breakdown,
				GreenFraction: res.GreenFraction(),
				ComputeKW:     copyFloats(e.compute[i*E : (i+1)*E]),
				MigrationKW:   copyFloats(e.migration[i*E : (i+1)*E]),
				BrownKW:       copyFloats(res.BrownKW),
				GreenKW:       copyFloats(green),
			})
			sol.ProvisionedCapacityKW += e.capacities[i]
			sol.SolarKW += e.solarKW[i]
			sol.WindKW += e.windKW[i]
			sol.BatteryKWh += e.batteryKWh[i]
		}
	}

	greenFraction := 1.0
	if totalDemandKWh > 0 {
		greenFraction = math.Min(1, totalGreenKWh/totalDemandKWh)
	}
	if greenFraction+1e-3 < spec.MinGreenFraction {
		feasible = false
		if sol != nil {
			sol.addViolation("green fraction %.3f below required %.3f", greenFraction, spec.MinGreenFraction)
		}
	}
	if sol != nil {
		sol.Breakdown = aggregate
		sol.TotalMonthlyUSD = aggregate.Total()
		sol.GreenFraction = greenFraction
	}
	return CostSummary{
		MonthlyUSD:    aggregate.Total(),
		GreenFraction: greenFraction,
		Feasible:      feasible,
	}, nil
}

// prepare resolves the candidate list into per-call site state and sizes the
// scratch buffers (growing them only when the candidate count exceeds every
// previous call's).
func (e *Evaluator) prepare(candidates []Candidate) error {
	n := len(candidates)
	if n == 0 {
		return ErrNoSites
	}
	e.n = n
	E := e.epochs

	e.sites = growSlice(e.sites, n)
	e.alphaRow = growSlice(e.alphaRow, n)
	e.betaRow = growSlice(e.betaRow, n)
	e.pueRow = growSlice(e.pueRow, n)
	e.rows = growSlice(e.rows, n)
	e.capacities = growSlice(e.capacities, n)
	e.brownRank = growSlice(e.brownRank, n)
	e.availIdx = growSlice(e.availIdx, n)
	e.availVal = growSlice(e.availVal, n)
	e.solarKW = growSlice(e.solarKW, n)
	e.windKW = growSlice(e.windKW, n)
	e.baseSolar = growSlice(e.baseSolar, n)
	e.baseWind = growSlice(e.baseWind, n)
	e.batteryKWh = growSlice(e.batteryKWh, n)
	e.demandKWh = growSlice(e.demandKWh, n)
	e.order = growSlice(e.order, n)
	e.blended = growSlice(e.blended, n)
	e.compute = growSlice(e.compute, n*E)
	e.migration = growSlice(e.migration, n*E)
	e.demand = growSlice(e.demand, n*E)
	e.green = growSlice(e.green, n*E)
	e.scratchSeries = growSlice(e.scratchSeries, E)

	for i, c := range candidates {
		s, err := e.cat.Site(c.SiteID)
		if err != nil {
			return fmt.Errorf("core: candidate %d: %w", i, err)
		}
		row, ok := e.prof.Row(c.SiteID)
		if !ok {
			return fmt.Errorf("core: candidate %d: site %d missing from profiles", i, c.SiteID)
		}
		e.sites[i] = s
		e.rows[i] = row
		e.alphaRow[i] = e.prof.Alpha(row)
		e.betaRow[i] = e.prof.Beta(row)
		e.pueRow[i] = e.prof.PUE(row)
	}

	// Resolve capacities: unspecified ones get an equal share of what is
	// left, floored at the survivable share.
	unspecified := 0
	specified := 0.0
	for i, c := range candidates {
		if c.CapacityKW > 0 {
			e.capacities[i] = c.CapacityKW
			specified += c.CapacityKW
		} else {
			e.capacities[i] = 0
			unspecified++
		}
	}
	if unspecified > 0 {
		remaining := e.spec.TotalCapacityKW - specified
		share := remaining / float64(unspecified)
		minShare := e.spec.TotalCapacityKW / float64(n)
		if share < minShare {
			share = minShare
		}
		for i := 0; i < n; i++ {
			if e.capacities[i] == 0 {
				e.capacities[i] = share
			}
		}
	}
	return nil
}

// scheduleLoad assigns the required total compute power to sites in every
// epoch, following the renewables: sites with more green energy available in
// an epoch receive load first; any remainder goes to the sites with the
// cheapest brown energy.  Assignments never exceed a site's capacity.  When
// withPlants is false (the first pass, before any plant is sized) the load
// is spread proportionally to capacity so the first plant-sizing pass sees a
// stable demand.
func (e *Evaluator) scheduleLoad(withPlants bool) {
	n, E := e.n, e.epochs
	compute := e.compute[:n*E]
	for i := range compute {
		compute[i] = 0
	}
	total := e.spec.TotalCapacityKW

	if !withPlants {
		totalCap := 0.0
		for _, c := range e.capacities[:n] {
			totalCap += c
		}
		for i := 0; i < n; i++ {
			share := total * e.capacities[i] / totalCap
			row := compute[i*E : (i+1)*E]
			for t := range row {
				row[t] = share
			}
		}
		return
	}

	// Brown cost rank: cheaper grid energy × PUE first (static per site, so
	// the key is precomputed per catalog; only the tiny index sort runs here).
	rank := e.brownRank[:n]
	for i := range rank {
		rank[i] = i
	}
	for i := 1; i < n; i++ {
		ri := rank[i]
		key := e.brownKey[e.rows[ri]]
		j := i - 1
		for j >= 0 && e.brownKey[e.rows[rank[j]]] > key {
			rank[j+1] = rank[j]
			j--
		}
		rank[j+1] = ri
	}

	idx, val := e.availIdx[:n], e.availVal[:n]
	for t := 0; t < E; t++ {
		remaining := total

		// Green availability per site this epoch, sorted descending with a
		// stable insertion sort on the preallocated index buffer (n is the
		// candidate count — single digits to low tens — so this beats any
		// allocation-free generic sort).
		for i := 0; i < n; i++ {
			idx[i] = i
			val[i] = e.alphaRow[i][t]*e.solarKW[i] + e.betaRow[i][t]*e.windKW[i]
		}
		for i := 1; i < n; i++ {
			vi, ii := val[i], idx[i]
			j := i - 1
			for j >= 0 && val[j] < vi {
				val[j+1], idx[j+1] = val[j], idx[j]
				j--
			}
			val[j+1], idx[j+1] = vi, ii
		}

		// First pass: load goes where green power is, up to the power the
		// green plant can actually feed (divided by PUE to convert facility
		// power back to IT power) and up to the site's capacity.
		for k := 0; k < n; k++ {
			if remaining <= 0 {
				break
			}
			i := idx[k]
			greenSupportedIT := val[k] / e.pueRow[i][t]
			take := math.Min(remaining, math.Min(e.capacities[i], greenSupportedIT))
			if take > 0 {
				compute[i*E+t] = take
				remaining -= take
			}
		}
		// Second pass: leftover load goes to the cheapest brown sites.
		for _, i := range rank {
			if remaining <= 0 {
				break
			}
			room := e.capacities[i] - compute[i*E+t]
			if room <= 0 {
				continue
			}
			take := math.Min(remaining, room)
			compute[i*E+t] += take
			remaining -= take
		}
		// Any unplaceable remainder is left unassigned; the capacity
		// violation is recorded by run through the capacity check.
	}
}

// migrationSeries derives the per-epoch migration overhead power at each
// site from the current compute schedule: when a site's compute assignment
// drops between consecutive epochs, the migrated load consumes power at the
// donor for MigrationFraction of the next epoch (the paper's migratePow).
func (e *Evaluator) migrationSeries() {
	n, E := e.n, e.epochs
	frac := e.spec.MigrationFraction
	for i := 0; i < n; i++ {
		c := e.compute[i*E : (i+1)*E]
		m := e.migration[i*E : (i+1)*E]
		m[0] = 0
		for t := 1; t < E; t++ {
			if drop := c[t-1] - c[t]; drop > 0 {
				m[t] = frac * drop
			} else {
				m[t] = 0
			}
		}
	}
}

// demandSeriesAll converts IT power plus migration overhead into facility
// power using each site's per-epoch PUE (the paper's powDemand).  It assumes
// migrationSeries has been called for the current schedule.
func (e *Evaluator) demandSeriesAll() {
	n, E := e.n, e.epochs
	for i := 0; i < n; i++ {
		c := e.compute[i*E : (i+1)*E]
		m := e.migration[i*E : (i+1)*E]
		d := e.demand[i*E : (i+1)*E]
		pue := e.pueRow[i]
		for t := 0; t < E; t++ {
			d[t] = (c[t] + m[t]) * pue[t]
		}
	}
}

// sizePlants chooses solar and wind capacities per site so the network
// reaches the spec's green fraction for the current load schedule: base
// sizes are allocated greedily to the sites with the cheapest green energy,
// and a global bisection then scales them to hit the target exactly.
func (e *Evaluator) sizePlants() {
	n := e.n
	spec := &e.spec
	solar, wind := e.solarKW[:n], e.windKW[:n]
	for i := range solar {
		solar[i], wind[i] = 0, 0
	}
	if spec.MinGreenFraction <= 0 {
		return
	}
	e.migrationSeries()
	e.demandSeriesAll()

	// Yearly demand per site for the current schedule.
	E := e.epochs
	totalDemandKWh := 0.0
	for i := 0; i < n; i++ {
		d := e.demand[i*E : (i+1)*E]
		sum := 0.0
		for t, v := range d {
			sum += v * e.weights[t]
		}
		e.demandKWh[i] = sum
		totalDemandKWh += sum
	}

	// A site's green plant can only serve that site's own demand (plus what
	// storage lets it shift in time), so the greedy allocation caps what a
	// single site is asked to cover at a fraction of its yearly demand and
	// spills the rest to the next-cheapest site.  The global bisection below
	// then scales everything to hit the target exactly.
	const usableFactor = 0.85

	// Viable sites ordered by blended unit cost of green energy (cached per
	// catalog; the insertion sort only touches the candidate indices).
	order, blended := e.order[:0], e.blended[:0]
	for i := 0; i < n; i++ {
		row := e.rows[i]
		sw, ww := e.solarTW[row], e.windTW[row]
		if sw == 0 && ww == 0 {
			continue
		}
		b := 0.0
		if sw > 0 {
			b += sw * e.ucSolar[row]
		}
		if ww > 0 {
			b += ww * e.ucWind[row]
		}
		order = append(order, i)
		blended = append(blended, b)
	}
	for i := 1; i < len(order); i++ {
		oi, bi := order[i], blended[i]
		j := i - 1
		for j >= 0 && blended[j] > bi {
			order[j+1], blended[j+1] = order[j], blended[j]
			j--
		}
		order[j+1], blended[j+1] = oi, bi
	}

	requiredKWh := spec.MinGreenFraction * totalDemandKWh
	remaining := requiredKWh
	baseSolar, baseWind := e.baseSolar[:n], e.baseWind[:n]
	for i := range baseSolar {
		baseSolar[i], baseWind[i] = 0, 0
	}
	for _, i := range order {
		if remaining <= 0 {
			break
		}
		allocKWh := math.Min(remaining, usableFactor*e.demandKWh[i])
		e.allocatePlant(i, allocKWh)
		remaining -= allocKWh
	}
	// Whatever is left cannot be served by any single site within its usable
	// share; spread it across all viable sites proportionally to demand so
	// the bisection still has plants to scale (the green-fraction violation,
	// if any, is reported by the caller).
	if remaining > 1e-9 && len(order) > 0 {
		viableDemand := 0.0
		for _, i := range order {
			viableDemand += e.demandKWh[i]
		}
		if viableDemand > 0 {
			for _, i := range order {
				e.allocatePlant(i, remaining*e.demandKWh[i]/viableDemand)
			}
		}
	}

	// Global scale bisection to hit the target green fraction under the
	// real storage dynamics.
	if e.plantFraction(1) >= spec.MinGreenFraction {
		// Shrink: find the smallest sufficient scale.
		e.applyScale(e.bisectScale(0, 1))
		return
	}
	// Grow: find a sufficient ceiling, then bisect down.
	hi := 1.0
	for hi < plantScaleCeiling && e.plantFraction(hi) < spec.MinGreenFraction {
		hi *= 2
	}
	if hi > plantScaleCeiling {
		hi = plantScaleCeiling
	}
	if e.plantFraction(hi) < spec.MinGreenFraction {
		// Unreachable with this siting; return the ceiling so run records
		// the green-fraction violation.
		e.applyScale(hi)
		return
	}
	e.applyScale(e.bisectScale(hi/2, hi))
}

// bisectScale narrows [lo, hi] — where hi is known to reach the green
// target and lo is not — and returns the hi side of the final bracket, so
// the result always satisfies the target.  The stop is a relative width of
// 1e-4: the feasibility check tolerates 1e-3 on the green fraction, so
// chasing more precision only burns plantFraction calls (each one balances
// every site's storage over the whole grid).
func (e *Evaluator) bisectScale(lo, hi float64) float64 {
	target := e.spec.MinGreenFraction
	for iter := 0; iter < 40 && hi-lo > 1e-4*hi; iter++ {
		mid := (lo + hi) / 2
		if e.plantFraction(mid) >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// allocatePlant converts allocKWh of yearly green energy into base plant
// capacity at site i using the site's cached technology split.
func (e *Evaluator) allocatePlant(i int, allocKWh float64) {
	if allocKWh <= 0 {
		return
	}
	site := e.sites[i]
	row := e.rows[i]
	if sw := e.solarTW[row]; sw > 0 && site.SolarCapacityFactor > 0.02 {
		e.baseSolar[i] += allocKWh * sw / (site.SolarCapacityFactor * float64(timeseries.HoursPerYear))
	}
	if ww := e.windTW[row]; ww > 0 && site.WindCapacityFactor > 0.02 {
		e.baseWind[i] += allocKWh * ww / (site.WindCapacityFactor * float64(timeseries.HoursPerYear))
	}
}

// plantFraction returns the network green fraction achieved when the base
// plant allocation is scaled by the given factor, under the spec's real
// storage dynamics.
func (e *Evaluator) plantFraction(scale float64) float64 {
	n, E := e.n, e.epochs
	spec := &e.spec
	greenTotal, demandTotal := 0.0, 0.0
	green := e.scratchSeries[:E]
	for i := 0; i < n; i++ {
		solar := e.baseSolar[i] * scale
		wind := e.baseWind[i] * scale
		alpha, beta := e.alphaRow[i], e.betaRow[i]
		for t := 0; t < E; t++ {
			green[t] = alpha[t]*solar + beta[t]*wind
		}
		res, err := e.balancer.Balance(energy.BalanceInput{
			GreenKW:            green,
			DemandKW:           e.demand[i*E : (i+1)*E],
			Weights:            e.weights,
			Mode:               spec.Storage,
			BatteryCapacityKWh: batteryCapacityFor(solar, wind, e.sites[i], *spec),
			BatteryEfficiency:  spec.Cost.BatteryEfficiency,
		})
		if err != nil {
			return 0
		}
		greenTotal += res.GreenUsedKWh + res.BattDischargedKWh + res.NetDischargedKWh
		demandTotal += res.DemandKWh
	}
	if demandTotal <= 0 {
		return 1
	}
	return greenTotal / demandTotal
}

// applyScale writes the scaled base allocation into the final plant sizes.
func (e *Evaluator) applyScale(scale float64) {
	for i := 0; i < e.n; i++ {
		e.solarKW[i] = e.baseSolar[i] * scale
		e.windKW[i] = e.baseWind[i] * scale
	}
}

// sizeBatteries fills the battery capacity per site for the final plant
// sizes (zero unless battery storage is selected).
func (e *Evaluator) sizeBatteries() {
	for i := 0; i < e.n; i++ {
		e.batteryKWh[i] = batteryCapacityFor(e.solarKW[i], e.windKW[i], e.sites[i], e.spec)
	}
}

// growSlice returns s resized to n, reusing the backing array when it is
// large enough.  Contents are unspecified; callers overwrite every element.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

func copyFloats(s []float64) []float64 {
	out := make([]float64, len(s))
	copy(out, s)
	return out
}
