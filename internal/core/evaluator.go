package core

import (
	"fmt"
	"math"

	"greencloud/internal/cost"
	"greencloud/internal/energy"
	"greencloud/internal/location"
	"greencloud/internal/series"
	"greencloud/internal/timeseries"
)

// CostSummary is the compact result of a cost-only evaluation: everything
// the annealing search needs to rank a candidate siting, with none of the
// per-site series a full Solution carries.
type CostSummary struct {
	// MonthlyUSD is the total monthly cost of the provisioned network.
	MonthlyUSD float64
	// GreenFraction is the achieved network-wide green fraction.
	GreenFraction float64
	// Feasible reports whether every constraint is met.
	Feasible bool
}

// Evaluator is the reusable fast evaluator: it owns preallocated scratch
// state for one (catalog, spec) pair so that repeated evaluations of
// candidate sitings perform no heap allocations in steady state.
//
// The evaluation pipeline is split into a cheap shared schedule merge and an
// expensive per-site stage, and the per-site stage is memoized:
//
//   - The schedule merge assigns the network load across the candidate sites
//     per epoch (follow-the-renewables first, cheapest brown power second),
//     driven by per-site reference plants that depend only on each site's own
//     static profile and capacity.  It always runs: any move can shift load
//     between sites.
//   - The per-site stage (migration overhead, facility demand, plant sizing
//     by per-site bisection, battery sizing, energy balance, monthly cost) is
//     a pure function of (site, capacity, schedule row, spec).  Its outputs
//     are cached per site; a site is re-run only when it is dirty.
//
// Invalidation protocol: a site whose capacity the Move metadata says
// changed is dirty by definition and re-runs without further checks; every
// other site is validated by content — its cache entry is reused iff the
// entry's capacity matches and its schedule-row digest (series.Digest,
// computed once per merge) matches the row's current digest.  Content
// validation makes the cache self-correcting: a wrong or missing Move hint
// can waste a recomputation but can never change a result, so a delta
// evaluation is bit-identical to evaluating from scratch up to a digest
// collision on two distinct rows (≈2⁻⁶⁴ per comparison).
//
// Reuse contract: an Evaluator is bound to the catalog and spec it was
// created with; scratch buffers grow to the largest candidate set seen and
// cache entries are allocated once per distinct site, so a steady-state
// EvaluateCost / EvaluateCostMove call is allocation-free.  The full
// Evaluate method allocates only the returned *Solution and its per-site
// series.  An Evaluator is NOT safe for concurrent use — create one per
// goroutine (the annealing chains in Solve each own one).
type Evaluator struct {
	cat    *location.Catalog
	spec   Spec
	grid   *timeseries.Grid
	prof   *location.Profiles
	epochs int
	minDCs int

	// Per-catalog static caches, indexed by profile row.
	weights  []float64 // epoch weights (hours represented)
	brownKey []float64 // grid price × average PUE: the brown-rank key
	ucSolar  []float64 // unit green cost of solar ($ per monthly kWh)
	ucWind   []float64 // unit green cost of wind
	solarTW  []float64 // tech-weight split between solar and wind
	windTW   []float64
	pueKWh   []float64 // Σ_t PUE[t]·w[t]: yearly facility kWh of 1 kW IT load

	// Per-call candidate state.
	n          int
	sites      []*location.Site
	alphaRow   [][]float64 // aliases into prof's dense Blocks
	betaRow    [][]float64
	pueRow     [][]float64
	rows       []int
	capacities []float64

	// Per-call scratch, n×epochs epoch-major matrices (one row per
	// candidate site).  All four are single-owner scratch Blocks under the
	// series mutability contract: reshaped per call, every row fully
	// overwritten before it is read.
	compute   series.Block // IT load assigned by the schedule merge
	migration series.Block // migration overhead power
	demand    series.Block // facility power demand
	avail     series.Block // per-epoch green availability of the reference plants

	// rowDigest[i] is the series.Digest of site i's current schedule row,
	// computed once per merge; the per-site cache revalidates clean sites
	// against it in O(1) instead of re-comparing full rows.
	rowDigest []uint64

	// Per-call scratch, length n.
	brownRank []int
	availIdx  []int
	availVal  []float64
	refSolar  []float64
	refWind   []float64
	solarKW   []float64
	windKW    []float64
	outs      []siteOutputs

	// scratchSeries holds one epoch-length series for plant-sizing trials.
	scratchSeries []float64

	// cache holds the memoized per-site stage results, keyed by site ID.
	// noCache disables memoization for evaluators whose call pattern never
	// revisits a site (the location-filter and per-location figure probes),
	// where cache entries would be allocated but never hit.
	cache   map[int]*siteEntry
	noCache bool

	balancer energy.Balancer
}

// siteOutputs is everything the per-site stage produces for one site: the
// provisioning, the yearly energy totals and the monthly cost.  It contains
// only scalars, so cached results copy by assignment.
type siteOutputs struct {
	SolarKW          float64
	WindKW           float64
	BatteryKWh       float64
	DemandKWh        float64
	GreenKWh         float64
	BrownKWh         float64
	NetChargedKWh    float64
	NetDischargedKWh float64
	MaxBrownKW       float64
	Breakdown        cost.Breakdown
}

// siteEntry is one memoized per-site stage result together with the inputs
// it was computed for (the validation key).  The schedule row itself is not
// stored: its series.Digest stands in for it, which shrinks the entry to a
// few scalars and makes clean-site revalidation O(1) instead of O(epochs).
type siteEntry struct {
	capacityKW float64
	digest     uint64 // series.Digest of the schedule row the outputs correspond to
	out        siteOutputs
}

// NewEvaluator builds an evaluator for the catalog and spec, precomputing
// the per-site static quantities the hot path needs: epoch weights, the
// brown-cost rank key, unit green production costs, the solar/wind
// technology split and the weighted PUE sum of every site.
func NewEvaluator(cat *location.Catalog, spec Spec) (*Evaluator, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	minDCs, err := spec.MinDatacenters()
	if err != nil {
		return nil, err
	}
	grid := cat.Grid()
	prof := cat.Profiles()
	e := &Evaluator{
		cat:    cat,
		spec:   spec,
		grid:   grid,
		prof:   prof,
		epochs: grid.Len(),
		minDCs: minDCs,
		cache:  make(map[int]*siteEntry),
	}
	e.weights = epochWeights(grid)
	nSites := cat.Len()
	e.brownKey = make([]float64, nSites)
	e.ucSolar = make([]float64, nSites)
	e.ucWind = make([]float64, nSites)
	e.solarTW = make([]float64, nSites)
	e.windTW = make([]float64, nSites)
	e.pueKWh = make([]float64, nSites)
	for _, s := range cat.Sites() {
		row, ok := prof.Row(s.ID)
		if !ok {
			return nil, fmt.Errorf("core: site %d missing from catalog profiles", s.ID)
		}
		e.brownKey[row] = s.GridPriceUSDPerKWh * s.AvgPUE
		e.ucSolar[row] = unitGreenCost(s, true, spec.Cost)
		e.ucWind[row] = unitGreenCost(s, false, spec.Cost)
		e.solarTW[row], e.windTW[row] = techWeights(e.ucSolar[row], e.ucWind[row], spec)
		e.pueKWh[row] = series.DotWeighted(prof.PUE(row), e.weights)
	}
	return e, nil
}

// Spec returns the spec the evaluator was built with (defaults applied).
func (e *Evaluator) Spec() Spec { return e.spec }

// Evaluate provisions and prices the candidate siting, returning a full
// Solution with per-site series.  Only the returned Solution is allocated;
// all intermediate state comes from the evaluator's scratch buffers.  The
// per-site cache is bypassed (and left untouched), but the arithmetic is the
// same, so the Solution agrees bit-for-bit with EvaluateCost.
func (e *Evaluator) Evaluate(candidates []Candidate) (*Solution, error) {
	sol := &Solution{Spec: e.spec, Feasible: true}
	if _, err := e.run(candidates, Move{}, sol); err != nil {
		return nil, err
	}
	return sol, nil
}

// EvaluateCost is the annealing inner loop: it provisions and prices the
// candidate siting exactly like Evaluate but returns only the cost summary,
// performing zero heap allocations in steady state.  Without move metadata
// every site is validated against the per-site cache by content.
func (e *Evaluator) EvaluateCost(candidates []Candidate) (CostSummary, error) {
	return e.run(candidates, Move{}, nil)
}

// EvaluateCostMove is EvaluateCost with move metadata: the annealing chains
// call it with the single-site move that produced the candidate siting, so
// the evaluator re-runs the dirty site's pipeline and revalidates (rather
// than recomputes) every clean site.  The result is bit-identical to a full
// evaluation of the same candidates.
func (e *Evaluator) EvaluateCostMove(candidates []Candidate, mv Move) (CostSummary, error) {
	return e.run(candidates, mv, nil)
}

// InvalidateCache drops every memoized per-site result.  Steady-state calls
// after an invalidation re-fill existing entries without allocating.
func (e *Evaluator) InvalidateCache() {
	for _, ent := range e.cache {
		ent.capacityKW = math.Inf(-1)
	}
}

// DisableCache turns off per-site memoization for this evaluator.  Probe
// loops that price every site exactly once (location filtering, the
// per-location cost figures) disable it so they do not allocate cache
// entries that can never be hit; the arithmetic is unchanged either way.
func (e *Evaluator) DisableCache() { e.noCache = true }

// run executes the evaluation pipeline: shared schedule merge, per-site
// stages (memoized unless sol is requested), the network-level green top-up
// when per-site sizing cannot reach the target alone, and the final
// aggregation.  When sol is non-nil the per-site series and violation
// messages are materialized into it.
func (e *Evaluator) run(candidates []Candidate, mv Move, sol *Solution) (CostSummary, error) {
	if err := e.prepare(candidates); err != nil {
		return CostSummary{}, err
	}
	spec := &e.spec
	n := e.n
	useCache := sol == nil && !e.noCache
	feasible := true

	totalCap := series.Sum(e.capacities[:n])
	if totalCap+1e-6 < spec.TotalCapacityKW {
		feasible = false
		if sol != nil {
			sol.addViolation("provisioned capacity %.1f kW below required %.1f kW", totalCap, spec.TotalCapacityKW)
		}
	}
	if n < e.minDCs {
		feasible = false
		if sol != nil {
			sol.addViolation("%d datacenters cannot reach availability %.5f (need ≥ %d)",
				n, spec.MinAvailability, e.minDCs)
		}
	}
	if spec.MaxDatacenters > 0 && n > spec.MaxDatacenters {
		feasible = false
		if sol != nil {
			sol.addViolation("%d datacenters exceed the cap of %d", n, spec.MaxDatacenters)
		}
	}
	// Survivability: each datacenter must hold at least a 1/n share.
	minShare := spec.TotalCapacityKW / float64(n)
	for i, c := range e.capacities[:n] {
		if c+1e-6 < minShare {
			feasible = false
			if sol != nil {
				sol.addViolation("site %s capacity %.1f kW below survivable share %.1f kW",
					e.sites[i].Name, c, minShare)
			}
			break
		}
	}

	// Shared schedule merge: reference plants (site-local) drive the
	// follow-the-renewables assignment.
	e.referencePlants()
	e.scheduleLoad()
	if useCache {
		// One digest per schedule row; clean sites revalidate against it in
		// O(1) below instead of re-comparing the full row.
		for i := 0; i < n; i++ {
			e.rowDigest[i] = series.Digest(e.compute.Row(i))
		}
	}

	// Per-site stages.
	outs := e.outs[:n]
	totalDemandKWh, totalGreenKWh := 0.0, 0.0
	plantKW := 0.0
	for i := 0; i < n; i++ {
		if err := e.siteOutputsInto(i, mv, useCache, &outs[i]); err != nil {
			return CostSummary{}, err
		}
		totalDemandKWh += outs[i].DemandKWh
		totalGreenKWh += outs[i].GreenKWh
		plantKW += outs[i].SolarKW + outs[i].WindKW
	}
	greenFraction := 1.0
	if totalDemandKWh > 0 {
		greenFraction = math.Min(1, totalGreenKWh/totalDemandKWh)
	}

	// Network top-up: when some site cannot reach the green target from its
	// own demand (capped plant scale, unviable technology), scale every
	// site's plants by a common factor until the network-wide fraction
	// reaches the target.  This stage is global, runs fresh every time, and
	// consumes only the (cached or recomputed) per-site base sizings, so it
	// preserves the bit-identity of delta and full evaluation.
	if spec.MinGreenFraction > 0 && greenFraction+1e-3 < spec.MinGreenFraction && plantKW > 0 {
		e.refreshDemandRows()
		lambda, err := e.topUpScale(outs)
		if err != nil {
			return CostSummary{}, err
		}
		totalDemandKWh, totalGreenKWh = 0, 0
		for i := 0; i < n; i++ {
			if err := e.reaccount(i, lambda, &outs[i]); err != nil {
				return CostSummary{}, err
			}
			totalDemandKWh += outs[i].DemandKWh
			totalGreenKWh += outs[i].GreenKWh
		}
		greenFraction = 1.0
		if totalDemandKWh > 0 {
			greenFraction = math.Min(1, totalGreenKWh/totalDemandKWh)
		}
	}

	// Final accounting and, for the full path, materialization.
	aggregate := cost.Breakdown{}
	for i := 0; i < n; i++ {
		out := &outs[i]
		site := e.sites[i]
		if out.MaxBrownKW > site.NearestPlantKW*maxBrownShareOfPlant {
			feasible = false
			if sol != nil {
				sol.addViolation("site %s draws %.0f kW of brown power, above %.0f%% of the nearest plant (%.0f kW)",
					site.Name, out.MaxBrownKW, 100*maxBrownShareOfPlant, site.NearestPlantKW)
			}
		}
		aggregate = aggregate.Add(out.Breakdown)
		if sol != nil {
			if err := e.materializeSite(i, out, sol); err != nil {
				return CostSummary{}, err
			}
		}
	}
	if greenFraction+1e-3 < spec.MinGreenFraction {
		feasible = false
		if sol != nil {
			sol.addViolation("green fraction %.3f below required %.3f", greenFraction, spec.MinGreenFraction)
		}
	}
	if sol != nil {
		sol.Breakdown = aggregate
		sol.TotalMonthlyUSD = aggregate.Total()
		sol.GreenFraction = greenFraction
	}
	return CostSummary{
		MonthlyUSD:    aggregate.Total(),
		GreenFraction: greenFraction,
		Feasible:      feasible,
	}, nil
}

// prepare resolves the candidate list into per-call site state and sizes the
// scratch buffers (growing them only when the candidate count exceeds every
// previous call's).
func (e *Evaluator) prepare(candidates []Candidate) error {
	n := len(candidates)
	if n == 0 {
		return ErrNoSites
	}
	e.n = n
	E := e.epochs

	e.sites = growSlice(e.sites, n)
	e.alphaRow = growSlice(e.alphaRow, n)
	e.betaRow = growSlice(e.betaRow, n)
	e.pueRow = growSlice(e.pueRow, n)
	e.rows = growSlice(e.rows, n)
	e.capacities = growSlice(e.capacities, n)
	e.brownRank = growSlice(e.brownRank, n)
	e.availIdx = growSlice(e.availIdx, n)
	e.availVal = growSlice(e.availVal, n)
	e.refSolar = growSlice(e.refSolar, n)
	e.refWind = growSlice(e.refWind, n)
	e.solarKW = growSlice(e.solarKW, n)
	e.windKW = growSlice(e.windKW, n)
	e.outs = growSlice(e.outs, n)
	e.rowDigest = growSlice(e.rowDigest, n)
	e.compute.Reshape(n, E)
	e.migration.Reshape(n, E)
	e.demand.Reshape(n, E)
	e.scratchSeries = growSlice(e.scratchSeries, E)

	for i, c := range candidates {
		s, err := e.cat.Site(c.SiteID)
		if err != nil {
			return fmt.Errorf("core: candidate %d: %w", i, err)
		}
		row, ok := e.prof.Row(c.SiteID)
		if !ok {
			return fmt.Errorf("core: candidate %d: site %d missing from profiles", i, c.SiteID)
		}
		e.sites[i] = s
		e.rows[i] = row
		e.alphaRow[i] = e.prof.Alpha(row)
		e.betaRow[i] = e.prof.Beta(row)
		e.pueRow[i] = e.prof.PUE(row)
	}

	// Resolve capacities: unspecified ones get an equal share of what is
	// left, floored at the survivable share.
	unspecified := 0
	specified := 0.0
	for i, c := range candidates {
		if c.CapacityKW > 0 {
			e.capacities[i] = c.CapacityKW
			specified += c.CapacityKW
		} else {
			e.capacities[i] = 0
			unspecified++
		}
	}
	if unspecified > 0 {
		remaining := e.spec.TotalCapacityKW - specified
		share := remaining / float64(unspecified)
		minShare := e.spec.TotalCapacityKW / float64(n)
		if share < minShare {
			share = minShare
		}
		for i := 0; i < n; i++ {
			if e.capacities[i] == 0 {
				e.capacities[i] = share
			}
		}
	}
	return nil
}

// referencePlants sizes the per-site reference plants that drive the load
// schedule: the plant that would nominally cover the green-fraction share of
// the site running flat out at its capacity.  Each reference plant depends
// only on the site's own static profile and capacity, which is what makes
// the schedule merge's inputs site-local.
func (e *Evaluator) referencePlants() {
	target := e.spec.MinGreenFraction
	for i := 0; i < e.n; i++ {
		e.refSolar[i], e.refWind[i] = 0, 0
		if target <= 0 {
			continue
		}
		refDemandKWh := e.capacities[i] * e.pueKWh[e.rows[i]]
		e.refSolar[i], e.refWind[i] = e.basePlant(i, target*refDemandKWh)
	}
}

// scheduleLoad assigns the required total compute power to sites in every
// epoch, following the renewables: sites whose reference plants produce more
// green energy in an epoch receive load first (up to the IT power that green
// production can feed through the site's PUE); any remainder goes to the
// sites with the cheapest brown energy.  Assignments never exceed a site's
// capacity.
func (e *Evaluator) scheduleLoad() {
	n, E := e.n, e.epochs
	compute := e.compute.Data()
	series.Zero(compute)
	total := e.spec.TotalCapacityKW

	// Brown cost rank: cheaper grid energy × PUE first (static per site, so
	// the key is precomputed per catalog; only the tiny index sort runs here).
	rank := e.brownRank[:n]
	for i := range rank {
		rank[i] = i
	}
	for i := 1; i < n; i++ {
		ri := rank[i]
		key := e.brownKey[e.rows[ri]]
		j := i - 1
		for j >= 0 && e.brownKey[e.rows[rank[j]]] > key {
			rank[j+1] = rank[j]
			j--
		}
		rank[j+1] = ri
	}

	anyGreen := false
	for i := 0; i < n; i++ {
		if e.refSolar[i] > 0 || e.refWind[i] > 0 {
			anyGreen = true
			break
		}
	}
	// Green availability of every site's reference plant, one row-major
	// kernel pass per site (α·refSolar + β·refWind); the epoch loop below
	// then only gathers one value per site instead of re-deriving it from
	// two profile rows.  The matrix is sized lazily: a brown-only spec
	// (no reference plants) never pays its n×epochs footprint.
	var avail []float64
	if anyGreen {
		e.avail.Reshape(n, E)
		for i := 0; i < n; i++ {
			series.WeightedSum(e.avail.Row(i), e.refSolar[i], e.alphaRow[i], e.refWind[i], e.betaRow[i])
		}
		avail = e.avail.Data()
	}

	idx, val := e.availIdx[:n], e.availVal[:n]
	for t := 0; t < E; t++ {
		remaining := total

		if anyGreen {
			// Sort sites by green availability this epoch, descending, with
			// a stable insertion sort on the preallocated index buffer (n is
			// the candidate count — single digits to low tens — so this beats
			// any allocation-free generic sort).
			for i := 0; i < n; i++ {
				idx[i] = i
				val[i] = avail[i*E+t]
			}
			for i := 1; i < n; i++ {
				vi, ii := val[i], idx[i]
				j := i - 1
				for j >= 0 && val[j] < vi {
					val[j+1], idx[j+1] = val[j], idx[j]
					j--
				}
				val[j+1], idx[j+1] = vi, ii
			}

			// First pass: load goes where green power is, up to the power the
			// reference plant can actually feed (divided by PUE to convert
			// facility power back to IT power) and up to the site's capacity.
			for k := 0; k < n; k++ {
				if remaining <= 0 {
					break
				}
				i := idx[k]
				greenSupportedIT := val[k] / e.pueRow[i][t]
				take := math.Min(remaining, math.Min(e.capacities[i], greenSupportedIT))
				if take > 0 {
					compute[i*E+t] = take
					remaining -= take
				}
			}
		}
		// Second pass: leftover load goes to the cheapest brown sites.
		for _, i := range rank {
			if remaining <= 0 {
				break
			}
			room := e.capacities[i] - compute[i*E+t]
			if room <= 0 {
				continue
			}
			take := math.Min(remaining, room)
			compute[i*E+t] += take
			remaining -= take
		}
		// Any unplaceable remainder is left unassigned; the capacity
		// violation is recorded by run through the capacity check.
	}
}

// siteOutputsInto produces site i's per-site stage outputs, reusing the
// memoized result when the site is clean: its capacity is identical and its
// schedule-row digest matches the cache entry's (the O(1) stand-in for the
// old full-row compare; run computed the digests right after the merge).  A
// site whose capacity the move metadata says changed (OldCap ≠ NewCap:
// grow, shrink, add) is dirty by definition, so even the digest check is
// skipped; capacity-preserving moves (swap) fall through to content
// validation, which lets a swap back to a recently-priced site reuse its
// entry.
func (e *Evaluator) siteOutputsInto(i int, mv Move, useCache bool, out *siteOutputs) error {
	if !useCache {
		return e.siteStage(i, out)
	}
	id := e.sites[i].ID
	cap := e.capacities[i]
	ent := e.cache[id]
	dirty := mv.Kind != MoveNone && mv.Site == id && mv.NewCap != mv.OldCap
	if ent != nil && !dirty && ent.capacityKW == cap && ent.digest == e.rowDigest[i] {
		*out = ent.out
		return nil
	}
	if err := e.siteStage(i, out); err != nil {
		return err
	}
	if ent == nil {
		ent = &siteEntry{}
		e.cache[id] = ent
	}
	ent.capacityKW = cap
	ent.digest = e.rowDigest[i]
	ent.out = *out
	return nil
}

// siteStage runs the full per-site pipeline for site i: migration overhead
// and facility demand from the schedule row, plant sizing by per-site
// bisection against the site's own demand, battery sizing, and the final
// energy/cost accounting.  Everything it reads is either static per site or
// derived from (capacity, schedule row), which is the cache's validation key.
func (e *Evaluator) siteStage(i int, out *siteOutputs) error {
	spec := &e.spec
	e.migrationRow(i)
	e.demandRow(i)

	demandKWh := series.DotWeighted(e.demand.Row(i), e.weights)

	baseSolar, baseWind := 0.0, 0.0
	if spec.MinGreenFraction > 0 && demandKWh > 0 {
		baseSolar, baseWind = e.basePlant(i, spec.MinGreenFraction*demandKWh)
	}
	scale := 0.0
	if baseSolar > 0 || baseWind > 0 {
		var err error
		scale, err = e.siteScale(i, baseSolar, baseWind)
		if err != nil {
			return err
		}
	}
	out.SolarKW = baseSolar * scale
	out.WindKW = baseWind * scale
	out.BatteryKWh = batteryCapacityFor(out.SolarKW, out.WindKW, e.sites[i], *spec)
	return e.accountSite(i, out)
}

// migrationRow derives site i's per-epoch migration overhead power from its
// compute schedule row: when the site's assignment drops between consecutive
// epochs, the migrated load consumes power at the donor for
// MigrationFraction of the next epoch (the paper's migratePow, the
// series.ScaledDrop kernel).
func (e *Evaluator) migrationRow(i int) {
	series.ScaledDrop(e.migration.Row(i), e.spec.MigrationFraction, e.compute.Row(i))
}

// demandRow converts site i's IT power plus migration overhead into facility
// power using its per-epoch PUE (the paper's powDemand, the series.AddMul
// kernel).  It assumes migrationRow has run for the current schedule.
func (e *Evaluator) demandRow(i int) {
	series.AddMul(e.demand.Row(i), e.compute.Row(i), e.migration.Row(i), e.pueRow[i])
}

// refreshDemandRows recomputes every site's migration and demand rows from
// the current schedule.  The top-up stage needs them for all sites, including
// ones whose per-site stage was served from cache.
func (e *Evaluator) refreshDemandRows() {
	for i := 0; i < e.n; i++ {
		e.migrationRow(i)
		e.demandRow(i)
	}
}

// basePlant converts allocKWh of yearly green energy into plant capacity at
// site i using the site's cached technology split.
func (e *Evaluator) basePlant(i int, allocKWh float64) (solarKW, windKW float64) {
	if allocKWh <= 0 {
		return 0, 0
	}
	site := e.sites[i]
	row := e.rows[i]
	if sw := e.solarTW[row]; sw > 0 && site.SolarCapacityFactor > 0.02 {
		solarKW = allocKWh * sw / (site.SolarCapacityFactor * float64(timeseries.HoursPerYear))
	}
	if ww := e.windTW[row]; ww > 0 && site.WindCapacityFactor > 0.02 {
		windKW = allocKWh * ww / (site.WindCapacityFactor * float64(timeseries.HoursPerYear))
	}
	return solarKW, windKW
}

// siteScale finds the factor by which site i's base plant must be scaled so
// the site reaches the spec's green fraction on its own demand, under the
// real storage dynamics.  It mirrors the bisection the paper's provisioning
// loop uses: shrink within [0,1] when the base plant overshoots, otherwise
// double up to the ceiling and bisect down.  The stop is a relative width of
// 1e-4: the feasibility check tolerates 1e-3 on the green fraction, so
// chasing more precision only burns balance calls.
func (e *Evaluator) siteScale(i int, baseSolar, baseWind float64) (float64, error) {
	target := e.spec.MinGreenFraction
	f, err := e.siteFraction(i, baseSolar, baseWind, 1)
	if err != nil {
		return 0, err
	}
	if f >= target {
		return e.siteBisect(i, baseSolar, baseWind, 0, 1)
	}
	hi := 1.0
	for hi < plantScaleCeiling {
		hi *= 2
		if hi > plantScaleCeiling {
			hi = plantScaleCeiling
		}
		if f, err = e.siteFraction(i, baseSolar, baseWind, hi); err != nil {
			return 0, err
		}
		if f >= target {
			return e.siteBisect(i, baseSolar, baseWind, hi/2, hi)
		}
	}
	// Unreachable from this site's own demand even at the ceiling; return
	// the ceiling so the network top-up (and, failing that, the
	// green-fraction violation) takes over.
	return hi, nil
}

// siteBisect narrows [lo, hi] — where hi is known to reach the green target
// and lo is not — and returns the hi side of the final bracket, so the
// result always satisfies the target.
func (e *Evaluator) siteBisect(i int, baseSolar, baseWind, lo, hi float64) (float64, error) {
	target := e.spec.MinGreenFraction
	for iter := 0; iter < 40 && hi-lo > 1e-4*hi; iter++ {
		mid := (lo + hi) / 2
		f, err := e.siteFraction(i, baseSolar, baseWind, mid)
		if err != nil {
			return 0, err
		}
		if f >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// siteFraction returns site i's green fraction when its base plant is scaled
// by the given factor, under the spec's real storage dynamics.
func (e *Evaluator) siteFraction(i int, baseSolar, baseWind, scale float64) (float64, error) {
	E := e.epochs
	spec := &e.spec
	solar := baseSolar * scale
	wind := baseWind * scale
	green := e.scratchSeries[:E]
	series.WeightedSum(green, solar, e.alphaRow[i], wind, e.betaRow[i])
	tot, err := energy.Totals(energy.BalanceInput{
		GreenKW:            green,
		DemandKW:           e.demand.Row(i),
		Weights:            e.weights,
		Mode:               spec.Storage,
		BatteryCapacityKWh: batteryCapacityFor(solar, wind, e.sites[i], *spec),
		BatteryEfficiency:  spec.Cost.BatteryEfficiency,
	})
	if err != nil {
		return 0, fmt.Errorf("core: sizing balance for %s: %w", e.sites[i].Name, err)
	}
	return tot.GreenFraction(), nil
}

// accountSite runs the final energy balance and cost model for site i with
// the provisioning already stored in out, filling the energy totals and the
// monthly cost breakdown.
func (e *Evaluator) accountSite(i int, out *siteOutputs) error {
	E := e.epochs
	spec := &e.spec
	site := e.sites[i]
	green := e.scratchSeries[:E]
	series.WeightedSum(green, out.SolarKW, e.alphaRow[i], out.WindKW, e.betaRow[i])
	tot, err := energy.Totals(energy.BalanceInput{
		GreenKW:            green,
		DemandKW:           e.demand.Row(i),
		Weights:            e.weights,
		Mode:               spec.Storage,
		BatteryCapacityKWh: out.BatteryKWh,
		BatteryEfficiency:  spec.Cost.BatteryEfficiency,
	})
	if err != nil {
		return fmt.Errorf("core: balance for %s: %w", site.Name, err)
	}
	out.DemandKWh = tot.DemandKWh
	out.GreenKWh = tot.GreenUsedKWh + tot.BattDischargedKWh + tot.NetDischargedKWh
	out.BrownKWh = tot.BrownKWh
	out.NetChargedKWh = tot.NetChargedKWh
	out.NetDischargedKWh = tot.NetDischargedKWh
	out.MaxBrownKW = tot.MaxBrownKW
	out.Breakdown = spec.Cost.MonthlySite(site, cost.Provision{
		CapacityKW: e.capacities[i],
		MaxPUE:     site.MaxPUE,
		SolarKW:    out.SolarKW,
		WindKW:     out.WindKW,
		BatteryKWh: out.BatteryKWh,
	}, cost.EnergyUse{
		BrownKWh:         tot.BrownKWh,
		NetChargedKWh:    tot.NetChargedKWh,
		NetDischargedKWh: tot.NetDischargedKWh,
	})
	return nil
}

// topUpScale finds the common factor λ ≥ 1 by which every site's plants must
// be scaled so the network-wide green fraction reaches the target, mirroring
// the per-site search: double up to the ceiling, then bisect down.  It
// assumes refreshDemandRows has run.
func (e *Evaluator) topUpScale(outs []siteOutputs) (float64, error) {
	target := e.spec.MinGreenFraction
	f, err := e.networkFraction(outs, 1)
	if err != nil {
		return 0, err
	}
	if f >= target {
		return 1, nil
	}
	hi := 1.0
	reached := false
	for hi < plantScaleCeiling {
		hi *= 2
		if hi > plantScaleCeiling {
			hi = plantScaleCeiling
		}
		if f, err = e.networkFraction(outs, hi); err != nil {
			return 0, err
		}
		if f >= target {
			reached = true
			break
		}
	}
	if !reached {
		// Unreachable with this siting even at the ceiling; run records the
		// green-fraction violation.
		return hi, nil
	}
	lo := hi / 2
	if lo < 1 {
		lo = 1
	}
	for iter := 0; iter < 40 && hi-lo > 1e-4*hi; iter++ {
		mid := (lo + hi) / 2
		if f, err = e.networkFraction(outs, mid); err != nil {
			return 0, err
		}
		if f >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// networkFraction returns the network green fraction achieved when every
// site's plants are scaled by λ, under the spec's real storage dynamics.
func (e *Evaluator) networkFraction(outs []siteOutputs, lambda float64) (float64, error) {
	E := e.epochs
	spec := &e.spec
	greenTotal, demandTotal := 0.0, 0.0
	green := e.scratchSeries[:E]
	for i := 0; i < e.n; i++ {
		solar := outs[i].SolarKW * lambda
		wind := outs[i].WindKW * lambda
		series.WeightedSum(green, solar, e.alphaRow[i], wind, e.betaRow[i])
		tot, err := energy.Totals(energy.BalanceInput{
			GreenKW:            green,
			DemandKW:           e.demand.Row(i),
			Weights:            e.weights,
			Mode:               spec.Storage,
			BatteryCapacityKWh: batteryCapacityFor(solar, wind, e.sites[i], *spec),
			BatteryEfficiency:  spec.Cost.BatteryEfficiency,
		})
		if err != nil {
			return 0, fmt.Errorf("core: top-up balance for %s: %w", e.sites[i].Name, err)
		}
		greenTotal += tot.GreenUsedKWh + tot.BattDischargedKWh + tot.NetDischargedKWh
		demandTotal += tot.DemandKWh
	}
	if demandTotal <= 0 {
		return 1, nil
	}
	return greenTotal / demandTotal, nil
}

// reaccount scales site i's plants by λ, resizes its battery and redoes the
// final accounting; used after the network top-up changed the plant sizes.
func (e *Evaluator) reaccount(i int, lambda float64, out *siteOutputs) error {
	out.SolarKW *= lambda
	out.WindKW *= lambda
	out.BatteryKWh = batteryCapacityFor(out.SolarKW, out.WindKW, e.sites[i], e.spec)
	return e.accountSite(i, out)
}

// materializeSite fills sol with site i's full solution: the provisioning
// and cost from the per-site outputs, plus the per-epoch series from one
// final balance (whose totals are bit-identical to the scalar accounting).
func (e *Evaluator) materializeSite(i int, out *siteOutputs, sol *Solution) error {
	E := e.epochs
	spec := &e.spec
	site := e.sites[i]
	green := make([]float64, E)
	series.WeightedSum(green, out.SolarKW, e.alphaRow[i], out.WindKW, e.betaRow[i])
	res, err := e.balancer.Balance(energy.BalanceInput{
		GreenKW:            green,
		DemandKW:           e.demand.Row(i),
		Weights:            e.weights,
		Mode:               spec.Storage,
		BatteryCapacityKWh: out.BatteryKWh,
		BatteryEfficiency:  spec.Cost.BatteryEfficiency,
	})
	if err != nil {
		return fmt.Errorf("core: balance for %s: %w", site.Name, err)
	}
	sol.Sites = append(sol.Sites, SiteSolution{
		Site: site,
		Provision: cost.Provision{
			CapacityKW: e.capacities[i],
			MaxPUE:     site.MaxPUE,
			SolarKW:    out.SolarKW,
			WindKW:     out.WindKW,
			BatteryKWh: out.BatteryKWh,
		},
		Energy: cost.EnergyUse{
			BrownKWh:         out.BrownKWh,
			NetChargedKWh:    out.NetChargedKWh,
			NetDischargedKWh: out.NetDischargedKWh,
		},
		Breakdown:     out.Breakdown,
		GreenFraction: res.GreenFraction(),
		ComputeKW:     copyFloats(e.compute.Row(i)),
		MigrationKW:   copyFloats(e.migration.Row(i)),
		BrownKW:       copyFloats(res.BrownKW),
		GreenKW:       green,
	})
	sol.ProvisionedCapacityKW += e.capacities[i]
	sol.SolarKW += out.SolarKW
	sol.WindKW += out.WindKW
	sol.BatteryKWh += out.BatteryKWh
	return nil
}

// growSlice returns s resized to n, reusing the backing array when it is
// large enough.  Contents are unspecified; callers overwrite every element.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

func copyFloats(s []float64) []float64 {
	out := make([]float64, len(s))
	copy(out, s)
	return out
}
