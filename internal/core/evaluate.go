package core

import (
	"math"

	"greencloud/internal/cost"
	"greencloud/internal/energy"
	"greencloud/internal/location"
	"greencloud/internal/timeseries"
)

// Candidate names one site of a candidate siting and, optionally, the IT
// capacity to build there.  A zero capacity lets the evaluator assign an
// equal share of the required total.
type Candidate struct {
	SiteID     int
	CapacityKW float64
}

// maxBrownShareOfPlant is the paper's F parameter: the fraction of the
// nearest brown plant's capacity a datacenter may draw.
const maxBrownShareOfPlant = 0.8

// plantScaleCeiling bounds the plant-sizing search, expressed as a multiple
// of the size that would nominally cover the whole network demand.
const plantScaleCeiling = 50.0

// Evaluate provisions a fixed siting and prices it: it assigns IT capacity,
// schedules the follow-the-renewables load across the sites, sizes solar and
// wind plants (and batteries) so the network meets the requested green
// fraction, balances every site's energy, and computes the monthly cost.
//
// Evaluate is the fast inner-loop evaluator of the heuristic solver; it is
// deterministic and never returns an error for merely infeasible inputs —
// those come back as a Solution with Feasible == false so the search can
// treat them as very expensive states.
//
// Evaluate constructs a fresh Evaluator per call.  Hot loops that evaluate
// many sitings against the same catalog and spec (the annealing chains, the
// sweep experiments, location filtering) should create one Evaluator and
// reuse it — its EvaluateCost method is allocation-free in steady state.
func Evaluate(cat *location.Catalog, candidates []Candidate, spec Spec) (*Solution, error) {
	e, err := NewEvaluator(cat, spec)
	if err != nil {
		return nil, err
	}
	return e.Evaluate(candidates)
}

// EvaluateSingleSite prices a single datacenter of the given capacity at one
// site under the spec's green-fraction and storage settings.  It is used for
// the per-location cost exploration of Fig. 6 and for location filtering.
func EvaluateSingleSite(cat *location.Catalog, siteID int, capacityKW float64, spec Spec) (*Solution, error) {
	e, err := NewSingleSiteEvaluator(cat, capacityKW, spec)
	if err != nil {
		return nil, err
	}
	return e.Evaluate([]Candidate{{SiteID: siteID, CapacityKW: capacityKW}})
}

// NewSingleSiteEvaluator returns a reusable evaluator carrying the
// EvaluateSingleSite spec transform, for hot loops that price one
// datacenter of the given capacity at many locations (Fig. 6, Table II,
// location filtering).
func NewSingleSiteEvaluator(cat *location.Catalog, capacityKW float64, spec Spec) (*Evaluator, error) {
	return NewEvaluator(cat, singleSiteSpec(spec.withDefaults(), capacityKW))
}

// singleSiteSpec adapts a network spec to pricing one datacenter of the
// given capacity.  A single site is exempt from the network availability
// rule: one paper-tier datacenter always satisfies this relaxed target, so
// the per-location cost of Fig. 6 is not polluted by the network constraint.
func singleSiteSpec(spec Spec, capacityKW float64) Spec {
	spec.TotalCapacityKW = capacityKW
	spec.MinAvailability = 0.5
	return spec
}

func epochWeights(grid *timeseries.Grid) []float64 {
	epochs := grid.Epochs()
	out := make([]float64, len(epochs))
	for i, e := range epochs {
		out[i] = e.Weight
	}
	return out
}

// unitGreenCost returns the monthly cost of one kW of installed plant of the
// given technology at the site, divided by the kWh it produces per month —
// i.e. dollars per monthly kWh of green energy.  Infinite when the
// technology is not viable at the site.
func unitGreenCost(site *location.Site, solar bool, p cost.Params) float64 {
	var cf, buildPerW, areaPerKW float64
	if solar {
		cf = site.SolarCapacityFactor
		buildPerW = p.PriceBuildSolarPerW
		areaPerKW = p.AreaSolarM2PerKW
	} else {
		cf = site.WindCapacityFactor
		buildPerW = p.PriceBuildWindPerW
		areaPerKW = p.AreaWindM2PerKW
	}
	if cf < 0.02 {
		return math.Inf(1)
	}
	monthly := cost.MonthlyFinanced(1000*buildPerW, p.AnnualInterestRate, p.FinancingYears, p.PlantAmortYears) +
		cost.MonthlyInterestOnly(site.LandPriceUSDPerM2*areaPerKW, p.AnnualInterestRate, p.FinancingYears, p.LandAmortYears)
	kwhPerMonth := cf * float64(timeseries.HoursPerYear) / 12
	return monthly / kwhPerMonth
}

// techWeights decides how a site splits its green plant between solar and
// wind, based on which technology delivers cheaper usable energy there and
// on which technologies the spec allows.  ucSolar and ucWind are the site's
// unit green costs (from unitGreenCost); the caller passes them in so that
// per-catalog caches need to price each technology only once per site.
func techWeights(ucSolar, ucWind float64, spec Spec) (solarW, windW float64) {
	if spec.Sources == WindOnly {
		ucSolar = math.Inf(1)
	}
	if spec.Sources == SolarOnly {
		ucWind = math.Inf(1)
	}
	switch {
	case math.IsInf(ucSolar, 1) && math.IsInf(ucWind, 1):
		return 0, 0
	case math.IsInf(ucWind, 1):
		return 1, 0
	case math.IsInf(ucSolar, 1):
		return 0, 1
	}
	// Both viable: the cheaper one dominates; the other gets a minority
	// share when it is close in cost (mixing reduces variability, which is
	// why the paper's solar+wind solutions beat single-technology ones
	// when storage is scarce).
	if ucWind <= ucSolar {
		if ucSolar <= 1.4*ucWind && spec.Storage != energy.NetMetering {
			return 0.25, 0.75
		}
		return 0, 1
	}
	if ucWind <= 1.4*ucSolar && spec.Storage != energy.NetMetering {
		return 0.75, 0.25
	}
	return 1, 0
}

// batteryCapacityFor sizes a site's battery bank as BatteryHours hours of the
// plant's average production (zero unless battery storage is selected).
func batteryCapacityFor(solarKW, windKW float64, site *location.Site, spec Spec) float64 {
	if spec.Storage != energy.Batteries {
		return 0
	}
	avgProduction := solarKW*site.SolarCapacityFactor + windKW*site.WindCapacityFactor
	return spec.BatteryHours * avgProduction
}
