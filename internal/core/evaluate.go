package core

import (
	"fmt"
	"math"
	"sort"

	"greencloud/internal/cost"
	"greencloud/internal/energy"
	"greencloud/internal/location"
	"greencloud/internal/timeseries"
)

// Candidate names one site of a candidate siting and, optionally, the IT
// capacity to build there.  A zero capacity lets the evaluator assign an
// equal share of the required total.
type Candidate struct {
	SiteID     int
	CapacityKW float64
}

// maxBrownShareOfPlant is the paper's F parameter: the fraction of the
// nearest brown plant's capacity a datacenter may draw.
const maxBrownShareOfPlant = 0.8

// plantScaleCeiling bounds the plant-sizing search, expressed as a multiple
// of the size that would nominally cover the whole network demand.
const plantScaleCeiling = 50.0

// Evaluate provisions a fixed siting and prices it: it assigns IT capacity,
// schedules the follow-the-renewables load across the sites, sizes solar and
// wind plants (and batteries) so the network meets the requested green
// fraction, balances every site's energy, and computes the monthly cost.
//
// Evaluate is the fast inner-loop evaluator of the heuristic solver; it is
// deterministic and never returns an error for merely infeasible inputs —
// those come back as a Solution with Feasible == false so the search can
// treat them as very expensive states.
func Evaluate(cat *location.Catalog, candidates []Candidate, spec Spec) (*Solution, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(candidates) == 0 {
		return nil, ErrNoSites
	}
	sites := make([]*location.Site, len(candidates))
	for i, c := range candidates {
		s, err := cat.Site(c.SiteID)
		if err != nil {
			return nil, fmt.Errorf("core: candidate %d: %w", i, err)
		}
		sites[i] = s
	}
	grid := cat.Grid()

	sol := &Solution{Spec: spec, Feasible: true}

	capacities := resolveCapacities(candidates, spec)
	totalCap := 0.0
	for _, c := range capacities {
		totalCap += c
	}
	if totalCap+1e-6 < spec.TotalCapacityKW {
		sol.addViolation("provisioned capacity %.1f kW below required %.1f kW", totalCap, spec.TotalCapacityKW)
	}

	// Availability constraints.
	minDCs, err := spec.MinDatacenters()
	if err != nil {
		return nil, err
	}
	if len(sites) < minDCs {
		sol.addViolation("%d datacenters cannot reach availability %.5f (need ≥ %d)",
			len(sites), spec.MinAvailability, minDCs)
	}
	if spec.MaxDatacenters > 0 && len(sites) > spec.MaxDatacenters {
		sol.addViolation("%d datacenters exceed the cap of %d", len(sites), spec.MaxDatacenters)
	}
	// Survivability: each datacenter must hold at least a 1/n share.
	minShare := spec.TotalCapacityKW / float64(len(sites))
	for i, c := range capacities {
		if c+1e-6 < minShare {
			sol.addViolation("site %s capacity %.1f kW below survivable share %.1f kW",
				sites[i].Name, c, minShare)
			break
		}
	}

	// Iterate schedule → plant sizing → schedule: the load schedule depends
	// on where green energy is produced and vice versa.
	weights := epochWeights(grid)
	compute := scheduleLoad(sites, capacities, nil, nil, spec, grid)
	var solarKW, windKW []float64
	for iter := 0; iter < 3; iter++ {
		solarKW, windKW = sizePlants(sites, capacities, compute, spec, grid)
		compute = scheduleLoad(sites, capacities, solarKW, windKW, spec, grid)
	}
	batteryKWh := sizeBatteries(sites, solarKW, windKW, spec)

	// Final accounting per site.
	migration := migrationSeries(compute, spec.MigrationFraction)
	aggregate := cost.Breakdown{}
	totalDemandKWh, totalGreenKWh := 0.0, 0.0
	for i, site := range sites {
		demand := demandSeries(site, compute[i], migration[i])
		green := greenSeries(site, solarKW[i], windKW[i])
		res, err := energy.Balance(energy.BalanceInput{
			GreenKW:            green,
			DemandKW:           demand,
			Weights:            weights,
			Mode:               spec.Storage,
			BatteryCapacityKWh: batteryKWh[i],
			BatteryEfficiency:  spec.Cost.BatteryEfficiency,
		})
		if err != nil {
			return nil, fmt.Errorf("core: balance for %s: %w", site.Name, err)
		}

		maxBrown := 0.0
		for _, b := range res.BrownKW {
			if b > maxBrown {
				maxBrown = b
			}
		}
		if maxBrown > site.NearestPlantKW*maxBrownShareOfPlant {
			sol.addViolation("site %s draws %.0f kW of brown power, above %.0f%% of the nearest plant (%.0f kW)",
				site.Name, maxBrown, 100*maxBrownShareOfPlant, site.NearestPlantKW)
		}

		prov := cost.Provision{
			CapacityKW: capacities[i],
			MaxPUE:     site.MaxPUE,
			SolarKW:    solarKW[i],
			WindKW:     windKW[i],
			BatteryKWh: batteryKWh[i],
		}
		use := cost.EnergyUse{
			BrownKWh:         res.BrownKWh,
			NetChargedKWh:    res.NetChargedKWh,
			NetDischargedKWh: res.NetDischargedKWh,
		}
		breakdown := spec.Cost.MonthlySite(site, prov, use)
		aggregate = aggregate.Add(breakdown)
		totalDemandKWh += res.DemandKWh
		totalGreenKWh += res.GreenUsedKWh + res.BattDischargedKWh + res.NetDischargedKWh

		sol.Sites = append(sol.Sites, SiteSolution{
			Site:          site,
			Provision:     prov,
			Energy:        use,
			Breakdown:     breakdown,
			GreenFraction: res.GreenFraction(),
			ComputeKW:     compute[i],
			MigrationKW:   migration[i],
			BrownKW:       res.BrownKW,
			GreenKW:       green,
		})
		sol.ProvisionedCapacityKW += capacities[i]
		sol.SolarKW += solarKW[i]
		sol.WindKW += windKW[i]
		sol.BatteryKWh += batteryKWh[i]
	}

	sol.Breakdown = aggregate
	sol.TotalMonthlyUSD = aggregate.Total()
	if totalDemandKWh > 0 {
		sol.GreenFraction = math.Min(1, totalGreenKWh/totalDemandKWh)
	} else {
		sol.GreenFraction = 1
	}
	if sol.GreenFraction+1e-3 < spec.MinGreenFraction {
		sol.addViolation("green fraction %.3f below required %.3f", sol.GreenFraction, spec.MinGreenFraction)
	}
	return sol, nil
}

// EvaluateSingleSite prices a single datacenter of the given capacity at one
// site under the spec's green-fraction and storage settings.  It is used for
// the per-location cost exploration of Fig. 6 and for location filtering.
func EvaluateSingleSite(cat *location.Catalog, siteID int, capacityKW float64, spec Spec) (*Solution, error) {
	spec = spec.withDefaults()
	spec.TotalCapacityKW = capacityKW
	// A single site is exempt from the network availability rule here: one
	// paper-tier datacenter always satisfies this relaxed target, so the
	// per-location cost of Fig. 6 is not polluted by the network constraint.
	spec.MinAvailability = 0.5
	return Evaluate(cat, []Candidate{{SiteID: siteID, CapacityKW: capacityKW}}, spec)
}

// resolveCapacities fills in unspecified capacities with equal shares of the
// required total.
func resolveCapacities(candidates []Candidate, spec Spec) []float64 {
	out := make([]float64, len(candidates))
	unspecified := 0
	specified := 0.0
	for i, c := range candidates {
		if c.CapacityKW > 0 {
			out[i] = c.CapacityKW
			specified += c.CapacityKW
		} else {
			unspecified++
		}
	}
	if unspecified > 0 {
		remaining := spec.TotalCapacityKW - specified
		share := remaining / float64(unspecified)
		minShare := spec.TotalCapacityKW / float64(len(candidates))
		if share < minShare {
			share = minShare
		}
		for i := range out {
			if out[i] == 0 {
				out[i] = share
			}
		}
	}
	return out
}

func epochWeights(grid *timeseries.Grid) []float64 {
	epochs := grid.Epochs()
	out := make([]float64, len(epochs))
	for i, e := range epochs {
		out[i] = e.Weight
	}
	return out
}

// scheduleLoad assigns the required total compute power to sites in every
// epoch, following the renewables: sites with more green energy available in
// an epoch receive load first; any remainder goes to the sites with the
// cheapest brown energy.  Assignments never exceed a site's capacity.
func scheduleLoad(sites []*location.Site, capacities []float64, solarKW, windKW []float64,
	spec Spec, grid *timeseries.Grid) [][]float64 {

	n := len(sites)
	nEpochs := grid.Len()
	compute := make([][]float64, n)
	for i := range compute {
		compute[i] = make([]float64, nEpochs)
	}

	// Brown cost rank: cheaper grid energy × PUE first.
	brownRank := make([]int, n)
	for i := range brownRank {
		brownRank[i] = i
	}
	sort.Slice(brownRank, func(a, b int) bool {
		ia, ib := brownRank[a], brownRank[b]
		return sites[ia].GridPriceUSDPerKWh*sites[ia].AvgPUE < sites[ib].GridPriceUSDPerKWh*sites[ib].AvgPUE
	})

	type greenAvail struct {
		idx   int
		green float64
	}
	for t := 0; t < nEpochs; t++ {
		remaining := spec.TotalCapacityKW

		if solarKW == nil && windKW == nil {
			// No plants yet: spread the load proportionally to capacity so
			// the first plant-sizing pass sees a stable demand.
			totalCap := 0.0
			for _, c := range capacities {
				totalCap += c
			}
			for i := range sites {
				compute[i][t] = spec.TotalCapacityKW * capacities[i] / totalCap
			}
			continue
		}

		avails := make([]greenAvail, n)
		for i, s := range sites {
			g := 0.0
			if solarKW != nil {
				g += s.Alpha[t] * solarKW[i]
			}
			if windKW != nil {
				g += s.Beta[t] * windKW[i]
			}
			avails[i] = greenAvail{idx: i, green: g}
		}
		sort.Slice(avails, func(a, b int) bool { return avails[a].green > avails[b].green })

		// First pass: load goes where green power is, up to the power the
		// green plant can actually feed (divided by PUE to convert facility
		// power back to IT power) and up to the site's capacity.
		for _, av := range avails {
			if remaining <= 0 {
				break
			}
			i := av.idx
			pueT := sites[i].PUE[t]
			greenSupportedIT := av.green / pueT
			take := math.Min(remaining, math.Min(capacities[i], greenSupportedIT))
			if take > 0 {
				compute[i][t] = take
				remaining -= take
			}
		}
		// Second pass: leftover load goes to the cheapest brown sites.
		for _, i := range brownRank {
			if remaining <= 0 {
				break
			}
			room := capacities[i] - compute[i][t]
			if room <= 0 {
				continue
			}
			take := math.Min(remaining, room)
			compute[i][t] += take
			remaining -= take
		}
		// Any unplaceable remainder is left unassigned; the capacity
		// violation is recorded by Evaluate through the capacity check.
	}
	return compute
}

// migrationSeries derives the per-epoch migration overhead power at each
// site: when a site's compute assignment drops between consecutive epochs,
// the migrated load consumes power at the donor for migrationFraction of the
// next epoch (the paper's migratePow).
func migrationSeries(compute [][]float64, migrationFraction float64) [][]float64 {
	out := make([][]float64, len(compute))
	for i := range compute {
		out[i] = make([]float64, len(compute[i]))
		for t := 1; t < len(compute[i]); t++ {
			drop := compute[i][t-1] - compute[i][t]
			if drop > 0 {
				out[i][t] = migrationFraction * drop
			}
		}
	}
	return out
}

// demandSeries converts IT power plus migration overhead into facility power
// using the site's per-epoch PUE (the paper's powDemand).
func demandSeries(site *location.Site, compute, migration []float64) []float64 {
	out := make([]float64, len(compute))
	for t := range compute {
		out[t] = (compute[t] + migration[t]) * site.PUE[t]
	}
	return out
}

// greenSeries is the site's on-site green production per epoch for the given
// plant sizes.
func greenSeries(site *location.Site, solarKW, windKW float64) []float64 {
	out := make([]float64, len(site.Alpha))
	for t := range out {
		out[t] = site.Alpha[t]*solarKW + site.Beta[t]*windKW
	}
	return out
}

// unitGreenCost returns the monthly cost of one kW of installed plant of the
// given technology at the site, divided by the kWh it produces per month —
// i.e. dollars per monthly kWh of green energy.  Infinite when the
// technology is not viable at the site.
func unitGreenCost(site *location.Site, solar bool, p cost.Params) float64 {
	var cf, buildPerW, areaPerKW float64
	if solar {
		cf = site.SolarCapacityFactor
		buildPerW = p.PriceBuildSolarPerW
		areaPerKW = p.AreaSolarM2PerKW
	} else {
		cf = site.WindCapacityFactor
		buildPerW = p.PriceBuildWindPerW
		areaPerKW = p.AreaWindM2PerKW
	}
	if cf < 0.02 {
		return math.Inf(1)
	}
	monthly := cost.MonthlyFinanced(1000*buildPerW, p.AnnualInterestRate, p.FinancingYears, p.PlantAmortYears) +
		cost.MonthlyInterestOnly(site.LandPriceUSDPerM2*areaPerKW, p.AnnualInterestRate, p.FinancingYears, p.LandAmortYears)
	kwhPerMonth := cf * float64(timeseries.HoursPerYear) / 12
	return monthly / kwhPerMonth
}

// techWeights decides how a site splits its green plant between solar and
// wind, based on which technology delivers cheaper usable energy there and
// on which technologies the spec allows.
func techWeights(site *location.Site, spec Spec) (solarW, windW float64) {
	ucSolar := math.Inf(1)
	ucWind := math.Inf(1)
	if spec.Sources == SolarOnly || spec.Sources == SolarAndWind {
		ucSolar = unitGreenCost(site, true, spec.Cost)
	}
	if spec.Sources == WindOnly || spec.Sources == SolarAndWind {
		ucWind = unitGreenCost(site, false, spec.Cost)
	}
	switch {
	case math.IsInf(ucSolar, 1) && math.IsInf(ucWind, 1):
		return 0, 0
	case math.IsInf(ucWind, 1):
		return 1, 0
	case math.IsInf(ucSolar, 1):
		return 0, 1
	}
	// Both viable: the cheaper one dominates; the other gets a minority
	// share when it is close in cost (mixing reduces variability, which is
	// why the paper's solar+wind solutions beat single-technology ones
	// when storage is scarce).
	if ucWind <= ucSolar {
		if ucSolar <= 1.4*ucWind && spec.Storage != energy.NetMetering {
			return 0.25, 0.75
		}
		return 0, 1
	}
	if ucWind <= 1.4*ucSolar && spec.Storage != energy.NetMetering {
		return 0.75, 0.25
	}
	return 1, 0
}

// sizePlants chooses solar and wind capacities per site so the network
// reaches the spec's green fraction for the given load schedule: base sizes
// are allocated greedily to the sites with the cheapest green energy, and a
// global bisection then scales them to hit the target exactly.
func sizePlants(sites []*location.Site, capacities []float64, compute [][]float64,
	spec Spec, grid *timeseries.Grid) (solarKW, windKW []float64) {

	n := len(sites)
	solarKW = make([]float64, n)
	windKW = make([]float64, n)
	if spec.MinGreenFraction <= 0 {
		return solarKW, windKW
	}
	weights := epochWeights(grid)
	migration := migrationSeries(compute, spec.MigrationFraction)

	// Yearly demand per site for the current schedule.
	demand := make([][]float64, n)
	demandKWh := make([]float64, n)
	totalDemandKWh := 0.0
	for i, s := range sites {
		demand[i] = demandSeries(s, compute[i], migration[i])
		for t, d := range demand[i] {
			demandKWh[i] += d * weights[t]
		}
		totalDemandKWh += demandKWh[i]
	}

	// A site's green plant can only serve that site's own demand (plus what
	// storage lets it shift in time), so the greedy allocation caps what a
	// single site is asked to cover at a fraction of its yearly demand and
	// spills the rest to the next-cheapest site.  The global bisection below
	// then scales everything to hit the target exactly.
	const usableFactor = 0.85

	// Blended unit cost per site and greedy base allocation.
	type siteCost struct {
		idx           int
		unit          float64
		solarW, windW float64
		solarU, windU float64
	}
	costs := make([]siteCost, 0, n)
	for i, s := range sites {
		sw, ww := techWeights(s, spec)
		if sw == 0 && ww == 0 {
			continue
		}
		ucS := unitGreenCost(s, true, spec.Cost)
		ucW := unitGreenCost(s, false, spec.Cost)
		blended := 0.0
		if sw > 0 {
			blended += sw * ucS
		}
		if ww > 0 {
			blended += ww * ucW
		}
		costs = append(costs, siteCost{idx: i, unit: blended, solarW: sw, windW: ww, solarU: ucS, windU: ucW})
	}
	sort.Slice(costs, func(a, b int) bool { return costs[a].unit < costs[b].unit })

	requiredKWh := spec.MinGreenFraction * totalDemandKWh
	remaining := requiredKWh
	baseSolar := make([]float64, n)
	baseWind := make([]float64, n)
	allocate := func(i int, allocKWh, solarW, windW float64) {
		if allocKWh <= 0 {
			return
		}
		if solarW > 0 && sites[i].SolarCapacityFactor > 0.02 {
			baseSolar[i] += allocKWh * solarW / (sites[i].SolarCapacityFactor * float64(timeseries.HoursPerYear))
		}
		if windW > 0 && sites[i].WindCapacityFactor > 0.02 {
			baseWind[i] += allocKWh * windW / (sites[i].WindCapacityFactor * float64(timeseries.HoursPerYear))
		}
	}
	for _, c := range costs {
		if remaining <= 0 {
			break
		}
		i := c.idx
		allocKWh := math.Min(remaining, usableFactor*demandKWh[i])
		allocate(i, allocKWh, c.solarW, c.windW)
		remaining -= allocKWh
	}
	// Whatever is left cannot be served by any single site within its usable
	// share; spread it across all viable sites proportionally to demand so
	// the bisection still has plants to scale (the green-fraction violation,
	// if any, is reported by the caller).
	if remaining > 1e-9 && len(costs) > 0 {
		viableDemand := 0.0
		for _, c := range costs {
			viableDemand += demandKWh[c.idx]
		}
		if viableDemand > 0 {
			for _, c := range costs {
				allocate(c.idx, remaining*demandKWh[c.idx]/viableDemand, c.solarW, c.windW)
			}
		}
	}

	// Global scale bisection to hit the target green fraction under the
	// real storage dynamics.
	evalFraction := func(scale float64) float64 {
		greenTotal, demandTotal := 0.0, 0.0
		for i, s := range sites {
			green := make([]float64, grid.Len())
			for t := range green {
				green[t] = s.Alpha[t]*baseSolar[i]*scale + s.Beta[t]*baseWind[i]*scale
			}
			battCap := batteryCapacityFor(baseSolar[i]*scale, baseWind[i]*scale, s, spec)
			res, err := energy.Balance(energy.BalanceInput{
				GreenKW:            green,
				DemandKW:           demand[i],
				Weights:            weights,
				Mode:               spec.Storage,
				BatteryCapacityKWh: battCap,
				BatteryEfficiency:  spec.Cost.BatteryEfficiency,
			})
			if err != nil {
				return 0
			}
			greenTotal += res.GreenUsedKWh + res.BattDischargedKWh + res.NetDischargedKWh
			demandTotal += res.DemandKWh
		}
		if demandTotal <= 0 {
			return 1
		}
		return greenTotal / demandTotal
	}

	if evalFraction(1) >= spec.MinGreenFraction {
		// Shrink: find the smallest sufficient scale.
		lo, hi := 0.0, 1.0
		for iter := 0; iter < 40; iter++ {
			mid := (lo + hi) / 2
			if evalFraction(mid) >= spec.MinGreenFraction {
				hi = mid
			} else {
				lo = mid
			}
		}
		applyScale(baseSolar, baseWind, hi, solarKW, windKW)
		return solarKW, windKW
	}
	// Grow: find a sufficient ceiling, then bisect down.
	hi := 1.0
	for hi < plantScaleCeiling && evalFraction(hi) < spec.MinGreenFraction {
		hi *= 2
	}
	if hi > plantScaleCeiling {
		hi = plantScaleCeiling
	}
	if evalFraction(hi) < spec.MinGreenFraction {
		// Unreachable with this siting; return the ceiling so the caller
		// records the green-fraction violation.
		applyScale(baseSolar, baseWind, hi, solarKW, windKW)
		return solarKW, windKW
	}
	lo := hi / 2
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		if evalFraction(mid) >= spec.MinGreenFraction {
			hi = mid
		} else {
			lo = mid
		}
	}
	applyScale(baseSolar, baseWind, hi, solarKW, windKW)
	return solarKW, windKW
}

func applyScale(baseSolar, baseWind []float64, scale float64, solarKW, windKW []float64) {
	for i := range baseSolar {
		solarKW[i] = baseSolar[i] * scale
		windKW[i] = baseWind[i] * scale
	}
}

// batteryCapacityFor sizes a site's battery bank as BatteryHours hours of the
// plant's average production (zero unless battery storage is selected).
func batteryCapacityFor(solarKW, windKW float64, site *location.Site, spec Spec) float64 {
	if spec.Storage != energy.Batteries {
		return 0
	}
	avgProduction := solarKW*site.SolarCapacityFactor + windKW*site.WindCapacityFactor
	return spec.BatteryHours * avgProduction
}

// sizeBatteries returns the battery capacity per site for the final plant
// sizes.
func sizeBatteries(sites []*location.Site, solarKW, windKW []float64, spec Spec) []float64 {
	out := make([]float64, len(sites))
	for i, s := range sites {
		out[i] = batteryCapacityFor(solarKW[i], windKW[i], s, spec)
	}
	return out
}
