package core

import (
	"math"
	"testing"
)

// newTestEvaluator builds an evaluator over the shared test catalog.
func newTestEvaluator(t *testing.T, count int, spec Spec) *Evaluator {
	t.Helper()
	cat := testCatalog(t, count)
	ev, err := NewEvaluator(cat, spec)
	if err != nil {
		t.Fatalf("NewEvaluator: %v", err)
	}
	return ev
}

func TestEvaluatorMatchesEvaluate(t *testing.T) {
	// The cached evaluator and the one-shot Evaluate wrapper must price a
	// siting identically, and EvaluateCost must agree with the full path.
	cat := testCatalog(t, 40)
	spec := smallSpec()
	spec.MinGreenFraction = 0.5
	cands := []Candidate{{SiteID: 2}, {SiteID: 5}}

	direct, err := Evaluate(cat, cands, spec)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(cat, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Two rounds: the second exercises the fully warmed scratch state.
	for round := 0; round < 2; round++ {
		full, err := ev.Evaluate(cands)
		if err != nil {
			t.Fatal(err)
		}
		if full.TotalMonthlyUSD != direct.TotalMonthlyUSD || full.Feasible != direct.Feasible ||
			full.GreenFraction != direct.GreenFraction {
			t.Fatalf("round %d: evaluator (%v, %v, %v) != Evaluate (%v, %v, %v)", round,
				full.TotalMonthlyUSD, full.GreenFraction, full.Feasible,
				direct.TotalMonthlyUSD, direct.GreenFraction, direct.Feasible)
		}
		cost, err := ev.EvaluateCost(cands)
		if err != nil {
			t.Fatal(err)
		}
		if cost.MonthlyUSD != full.TotalMonthlyUSD || cost.Feasible != full.Feasible ||
			cost.GreenFraction != full.GreenFraction {
			t.Fatalf("round %d: EvaluateCost %+v disagrees with Evaluate", round, cost)
		}
	}
}

func TestEvaluateCostZeroAllocSteadyState(t *testing.T) {
	// The zero-allocation contract of the annealing inner loop, enforced in
	// the regular test run (the benchmark enforces it by numbers).
	spec := smallSpec()
	ev := newTestEvaluator(t, 40, spec)
	cands := []Candidate{{SiteID: 2}, {SiteID: 5}, {SiteID: 9}}
	if _, err := ev.EvaluateCost(cands); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ev.EvaluateCost(cands); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state EvaluateCost allocates %v times per call, want 0", allocs)
	}

	// An infeasible siting must also stay allocation-free: the annealing
	// chains spend much of their time probing infeasible neighbours.
	infeasible := []Candidate{{SiteID: 2, CapacityKW: 100}, {SiteID: 5, CapacityKW: 100}}
	if res, err := ev.EvaluateCost(infeasible); err != nil || res.Feasible {
		t.Fatalf("expected a feasible=false summary, got %+v, %v", res, err)
	}
	allocs = testing.AllocsPerRun(20, func() {
		if _, err := ev.EvaluateCost(infeasible); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("infeasible EvaluateCost allocates %v times per call, want 0", allocs)
	}
}

func TestScheduleLoadSaturatesTightCapacity(t *testing.T) {
	// When the aggregate capacity exactly matches the requirement, every
	// site must run at its capacity in every epoch, whatever the green
	// availability ordering says.
	spec := smallSpec()
	ev := newTestEvaluator(t, 30, spec)
	cands := []Candidate{
		{SiteID: 0, CapacityKW: 7_500},
		{SiteID: 1, CapacityKW: 2_500},
	}
	if err := ev.prepare(cands); err != nil {
		t.Fatal(err)
	}
	ev.referencePlants()
	ev.scheduleLoad()
	E := ev.epochs
	for t2 := 0; t2 < E; t2++ {
		got0, got1 := ev.compute.Data()[t2], ev.compute.Data()[E+t2]
		if math.Abs(got0-7_500) > 1e-6 || math.Abs(got1-2_500) > 1e-6 {
			t.Fatalf("epoch %d: split (%v, %v), want (7500, 2500)", t2, got0, got1)
		}
	}
}

func TestScheduleLoadZeroCapacitySite(t *testing.T) {
	// A site with zero capacity must never receive load, in either the
	// green-following pass or the brown fallback pass.
	spec := smallSpec()
	ev := newTestEvaluator(t, 30, spec)
	cands := []Candidate{
		{SiteID: 0, CapacityKW: 10_000},
		{SiteID: 1, CapacityKW: 5_000},
	}
	if err := ev.prepare(cands); err != nil {
		t.Fatal(err)
	}
	// Zero out site 1's capacity after prepare (a Candidate with zero
	// capacity means "unspecified", so the zero-capacity case can only be
	// reached through the scheduler's own input).
	ev.capacities[1] = 0
	// Give the dead site reference plants so the green pass is tempted by it.
	ev.refSolar[0], ev.refSolar[1] = 0, 5_000
	ev.refWind[0], ev.refWind[1] = 0, 5_000
	ev.scheduleLoad()
	E := ev.epochs
	for t2 := 0; t2 < E; t2++ {
		if ev.compute.Data()[E+t2] != 0 {
			t.Fatalf("epoch %d: zero-capacity site was assigned %v kW", t2, ev.compute.Data()[E+t2])
		}
		if math.Abs(ev.compute.Data()[t2]-10_000) > 1e-6 {
			t.Fatalf("epoch %d: surviving site got %v kW, want the full 10000", t2, ev.compute.Data()[t2])
		}
	}
}

func TestScheduleLoadUnplaceableRemainder(t *testing.T) {
	// When total demand exceeds aggregate capacity, the remainder stays
	// unassigned (every site saturates at its capacity) and Evaluate
	// reports the capacity violation.
	spec := smallSpec() // 10 MW required
	ev := newTestEvaluator(t, 30, spec)
	cands := []Candidate{
		{SiteID: 0, CapacityKW: 3_000},
		{SiteID: 1, CapacityKW: 2_000},
	}
	if err := ev.prepare(cands); err != nil {
		t.Fatal(err)
	}
	ev.referencePlants()
	ev.scheduleLoad()
	E := ev.epochs
	for t2 := 0; t2 < E; t2++ {
		if ev.compute.Data()[t2] > 3_000+1e-6 || ev.compute.Data()[E+t2] > 2_000+1e-6 {
			t.Fatalf("epoch %d: a site exceeded its capacity (%v, %v)", t2, ev.compute.Data()[t2], ev.compute.Data()[E+t2])
		}
		assigned := ev.compute.Data()[t2] + ev.compute.Data()[E+t2]
		if math.Abs(assigned-5_000) > 1e-6 {
			t.Fatalf("epoch %d: assigned %v kW, want all 5000 kW of capacity saturated", t2, assigned)
		}
	}

	sol, err := ev.Evaluate(cands)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible {
		t.Error("a 5 MW network for a 10 MW requirement should be infeasible")
	}
	cost, err := ev.EvaluateCost(cands)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Feasible {
		t.Error("EvaluateCost must flag the unplaceable remainder as infeasible")
	}
}

func TestSolveDeterministicAcrossParallelChains(t *testing.T) {
	// The determinism regression for chain parallelization: a fixed seed
	// must produce an identical Solution whether the chains run on one
	// goroutine or several (run under -race in CI).
	cat := testCatalog(t, 60)
	spec := smallSpec()
	spec.MinGreenFraction = 0.5
	filtered, err := FilterSites(cat, spec, 12)
	if err != nil {
		t.Fatal(err)
	}
	run := func(sequential bool) *Solution {
		sol, err := Solve(cat, spec, SolveOptions{
			Candidates:    filtered,
			Chains:        4,
			MaxIterations: 30,
			Seed:          7,
			Sequential:    sequential,
		})
		if err != nil {
			t.Fatalf("Solve(sequential=%v): %v", sequential, err)
		}
		return sol
	}
	parallel := run(false)
	parallelAgain := run(false)
	sequential := run(true)

	same := func(a, b *Solution) bool {
		if a.TotalMonthlyUSD != b.TotalMonthlyUSD || a.Feasible != b.Feasible || len(a.Sites) != len(b.Sites) {
			return false
		}
		for i := range a.Sites {
			if a.Sites[i].Site.ID != b.Sites[i].Site.ID ||
				a.Sites[i].Provision.CapacityKW != b.Sites[i].Provision.CapacityKW {
				return false
			}
		}
		return true
	}
	if !same(parallel, parallelAgain) {
		t.Errorf("two parallel runs with the same seed differ: $%v vs $%v",
			parallel.TotalMonthlyUSD, parallelAgain.TotalMonthlyUSD)
	}
	if !same(parallel, sequential) {
		t.Errorf("parallel ($%v, %d sites) and sequential ($%v, %d sites) solutions differ",
			parallel.TotalMonthlyUSD, len(parallel.Sites),
			sequential.TotalMonthlyUSD, len(sequential.Sites))
	}
}
