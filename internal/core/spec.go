// Package core implements the paper's placement framework: given a catalog
// of candidate sites, a desired total compute capacity, a minimum fraction of
// on-site green energy, a storage technology and an availability target, it
// sites datacenters, sizes their solar/wind plants and batteries, schedules
// the follow-the-renewables load across them, and minimizes the total
// monthly cost (financed CAPEX plus OPEX).
//
// Three solution paths are provided, mirroring Section II of the paper:
//
//   - Evaluator (and the one-shot Evaluate wrapper): the fast evaluator
//     that provisions a fixed siting (greedy follow-the-renewables load
//     schedule, plant sizing by bisection, storage balance) — the inner
//     loop of the heuristic solver.  An Evaluator preallocates all scratch
//     state for one (catalog, spec) pair; its EvaluateCost method is
//     allocation-free in steady state.
//   - Solve: the heuristic solver (location filtering + parallel simulated
//     annealing over sitings and sizes, using a pool of fast evaluators).
//     Chains are independent and merged deterministically, so results are
//     reproducible for a fixed seed regardless of parallelism.
//   - SolveExact: the MILP formulation of Fig. 1 solved with branch and
//     bound, tractable for small instances and used to validate the
//     heuristic.
package core

import (
	"errors"
	"fmt"

	"greencloud/internal/availability"
	"greencloud/internal/cost"
	"greencloud/internal/energy"
)

// SourceMix selects which on-site green technologies may be built.
type SourceMix int

// Source mixes.
const (
	// SolarOnly allows only photovoltaic plants.
	SolarOnly SourceMix = iota + 1
	// WindOnly allows only wind plants.
	WindOnly
	// SolarAndWind allows either or both at every site.
	SolarAndWind
)

// String returns the source mix name.
func (s SourceMix) String() string {
	switch s {
	case SolarOnly:
		return "solar"
	case WindOnly:
		return "wind"
	case SolarAndWind:
		return "solar+wind"
	default:
		return fmt.Sprintf("sources(%d)", int(s))
	}
}

// Spec is the service provider's input to the placement tool: what must be
// built and under which constraints.
type Spec struct {
	// TotalCapacityKW is the minimum compute power the datacenter network
	// must offer at every point in time (the paper's totalCapacity).
	TotalCapacityKW float64
	// MinGreenFraction is the minimum fraction of yearly energy that must
	// come from on-site green sources (0 = brown network, 1 = 100% green).
	MinGreenFraction float64
	// Storage selects how surplus green energy may be stored.
	Storage energy.StorageMode
	// Sources selects which green technologies may be built.
	Sources SourceMix
	// MinAvailability is the minimum availability of the network
	// (e.g. 0.99999 for five nines).
	MinAvailability float64
	// SiteAvailability is the availability of one datacenter (depends on
	// its tier); defaults to the paper's 99.827 %.
	SiteAvailability float64
	// MigrationFraction is the fraction of an epoch during which migrated
	// load consumes energy at both the donor and the receiver datacenter.
	// The paper's default (pessimistic) value is 1.0; Fig. 13 sweeps it.
	MigrationFraction float64
	// BatteryHours sizes battery banks as this many hours of the site's
	// average green production (Batteries storage only).
	BatteryHours float64
	// MaxDatacenters caps the number of sites in a solution (0 = no cap).
	MaxDatacenters int
	// Cost holds the economic parameters (Table I defaults if zero).
	Cost cost.Params
}

// DefaultSpec returns the paper's base case: a 50 MW network with 50 % green
// energy, net metering, either source, five-nines availability.
func DefaultSpec() Spec {
	return Spec{
		TotalCapacityKW:   50_000,
		MinGreenFraction:  0.5,
		Storage:           energy.NetMetering,
		Sources:           SolarAndWind,
		MinAvailability:   0.99999,
		SiteAvailability:  availability.PaperDefault,
		MigrationFraction: 1.0,
		BatteryHours:      5,
		Cost:              cost.DefaultParams(),
	}
}

// Errors returned by spec validation and the solvers.
var (
	ErrBadSpec     = errors.New("core: invalid specification")
	ErrNoSites     = errors.New("core: no candidate sites")
	ErrInfeasible  = errors.New("core: no feasible solution found")
	ErrUnreachable = errors.New("core: green fraction target unreachable with the given sources")
)

// withDefaults fills zero-valued fields with the paper defaults.
func (s Spec) withDefaults() Spec {
	d := DefaultSpec()
	if s.TotalCapacityKW == 0 {
		s.TotalCapacityKW = d.TotalCapacityKW
	}
	if s.Storage == 0 {
		s.Storage = d.Storage
	}
	if s.Sources == 0 {
		s.Sources = d.Sources
	}
	if s.MinAvailability == 0 {
		s.MinAvailability = d.MinAvailability
	}
	if s.SiteAvailability == 0 {
		s.SiteAvailability = d.SiteAvailability
	}
	if s.MigrationFraction == 0 {
		s.MigrationFraction = d.MigrationFraction
	}
	if s.BatteryHours == 0 {
		s.BatteryHours = d.BatteryHours
	}
	if s.Cost.ServerPowerW == 0 {
		s.Cost = d.Cost
	}
	return s
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.TotalCapacityKW <= 0 {
		return fmt.Errorf("%w: total capacity must be positive", ErrBadSpec)
	}
	if s.MinGreenFraction < 0 || s.MinGreenFraction > 1 {
		return fmt.Errorf("%w: green fraction must be in [0,1]", ErrBadSpec)
	}
	if s.MigrationFraction < 0 || s.MigrationFraction > 1 {
		return fmt.Errorf("%w: migration fraction must be in [0,1]", ErrBadSpec)
	}
	if s.MinAvailability < 0 || s.MinAvailability >= 1 {
		return fmt.Errorf("%w: availability must be in [0,1)", ErrBadSpec)
	}
	if s.SiteAvailability <= 0 || s.SiteAvailability > 1 {
		return fmt.Errorf("%w: site availability must be in (0,1]", ErrBadSpec)
	}
	switch s.Sources {
	case SolarOnly, WindOnly, SolarAndWind:
	default:
		return fmt.Errorf("%w: unknown source mix", ErrBadSpec)
	}
	switch s.Storage {
	case energy.NoStorage, energy.NetMetering, energy.Batteries:
	default:
		return fmt.Errorf("%w: unknown storage mode", ErrBadSpec)
	}
	if err := s.Cost.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return nil
}

// MinDatacenters returns the minimum number of datacenters required by the
// availability constraint.
func (s Spec) MinDatacenters() (int, error) {
	if s.MinAvailability <= 0 {
		return 1, nil
	}
	return availability.MinDatacenters(s.SiteAvailability, s.MinAvailability, 0)
}
