package core

import (
	"math/rand"
	"testing"

	"greencloud/internal/energy"
	"greencloud/internal/series"
)

// deltaSpecs are the spec variants the differential tests sweep: every
// storage mode, green targets from brown to fully green, and both the fast
// per-site path and the network top-up path get exercised.
func deltaSpecs() map[string]Spec {
	mk := func(green float64, storage energy.StorageMode, sources SourceMix) Spec {
		s := smallSpec()
		s.MinGreenFraction = green
		s.Storage = storage
		s.Sources = sources
		return s
	}
	return map[string]Spec{
		"brown":           mk(0, energy.NetMetering, SolarAndWind),
		"half-netmeter":   mk(0.5, energy.NetMetering, SolarAndWind),
		"half-nostorage":  mk(0.5, energy.NoStorage, SolarAndWind),
		"high-batteries":  mk(0.8, energy.Batteries, SolarAndWind),
		"full-netmeter":   mk(1.0, energy.NetMetering, WindOnly),
		"high-solar-only": mk(0.9, energy.NoStorage, SolarOnly),
	}
}

// TestDeltaEvaluationMatchesFull is the differential regression pinning the
// delta engine's correctness: over randomized single-site move sequences,
// the incremental evaluation (warm per-site cache, move metadata) must be
// bit-identical to evaluating the same candidates from scratch.  Run under
// -race in CI, it also proves the evaluator's cache is free of shared state
// across the chains that own separate evaluators.
func TestDeltaEvaluationMatchesFull(t *testing.T) {
	cat := testCatalog(t, 40)
	var filtered []int
	for _, s := range cat.Sites() {
		filtered = append(filtered, s.ID)
	}

	const movesPerSpec = 250 // × len(deltaSpecs()) ≥ 1k moves in total
	for name, spec := range deltaSpecs() {
		t.Run(name, func(t *testing.T) {
			spec := spec.withDefaults()
			delta, err := NewEvaluator(cat, spec)
			if err != nil {
				t.Fatal(err)
			}
			full, err := NewEvaluator(cat, spec)
			if err != nil {
				t.Fatal(err)
			}
			minDCs, err := spec.MinDatacenters()
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			current := siting{candidates: []Candidate{
				{SiteID: filtered[0], CapacityKW: spec.TotalCapacityKW},
				{SiteID: filtered[1], CapacityKW: spec.TotalCapacityKW / 2},
				{SiteID: filtered[2], CapacityKW: spec.TotalCapacityKW / 2},
			}}
			if _, err := delta.EvaluateCost(current.candidates); err != nil {
				t.Fatal(err)
			}

			for step := 0; step < movesPerSpec; step++ {
				next, mv := proposeMove(current, rng, filtered, spec, minDCs, minDCs+6, spec.TotalCapacityKW/8)
				got, err := delta.EvaluateCostMove(next.candidates, mv)
				if err != nil {
					t.Fatalf("step %d (%v): delta: %v", step, mv.Kind, err)
				}
				// The O(1) clean-site revalidation rides on the schedule-row
				// digests run computes after the merge.  Pin the digest
				// invariants the cache depends on: each rowDigest is coherent
				// with the row it summarizes, and after an evaluation every
				// current site's entry (reused or freshly stored) carries
				// exactly the current (capacity, digest) validation key.
				for i := 0; i < delta.n; i++ {
					if d := series.Digest(delta.compute.Row(i)); delta.rowDigest[i] != d {
						t.Fatalf("step %d: site slot %d digest %#x out of sync with schedule row (%#x)",
							step, i, delta.rowDigest[i], d)
					}
					ent := delta.cache[delta.sites[i].ID]
					if ent == nil {
						t.Fatalf("step %d: site %d has no cache entry after a delta evaluation", step, delta.sites[i].ID)
					}
					if ent.capacityKW != delta.capacities[i] || ent.digest != delta.rowDigest[i] {
						t.Fatalf("step %d: site %d cache key (cap %v, digest %#x) != current (cap %v, digest %#x)",
							step, delta.sites[i].ID, ent.capacityKW, ent.digest, delta.capacities[i], delta.rowDigest[i])
					}
				}
				// Reference: the same evaluator pipeline with every memoized
				// result invalidated, i.e. a full from-scratch evaluation.
				full.InvalidateCache()
				want, err := full.EvaluateCost(next.candidates)
				if err != nil {
					t.Fatalf("step %d (%v): full: %v", step, mv.Kind, err)
				}
				if got != want {
					t.Fatalf("step %d (%v, site %d): delta %+v != full %+v",
						step, mv.Kind, mv.Site, got, want)
				}
				// Every 50th step, cross-check against a cold evaluator and
				// the full Solution path (series-producing Balance vs the
				// scalar Totals twin).
				if step%50 == 0 {
					cold, err := NewEvaluator(cat, spec)
					if err != nil {
						t.Fatal(err)
					}
					coldCost, err := cold.EvaluateCost(next.candidates)
					if err != nil {
						t.Fatal(err)
					}
					if coldCost != want {
						t.Fatalf("step %d: cold evaluator %+v != invalidated-cache full %+v",
							step, coldCost, want)
					}
					sol, err := cold.Evaluate(next.candidates)
					if err != nil {
						t.Fatal(err)
					}
					if sol.TotalMonthlyUSD != want.MonthlyUSD || sol.GreenFraction != want.GreenFraction ||
						sol.Feasible != want.Feasible {
						t.Fatalf("step %d: Evaluate (%v, %v, %v) disagrees with EvaluateCost %+v",
							step, sol.TotalMonthlyUSD, sol.GreenFraction, sol.Feasible, want)
					}
				}
				// Accept about half the moves so the walk explores both
				// accepted and rejected-trajectory cache states.
				if rng.Intn(2) == 0 {
					current = next
				}
			}
		})
	}
}

// TestDeltaMoveZeroAllocSteadyState pins the allocation contract of the
// delta path: once an evaluator has seen the sites a chain moves between,
// further delta evaluations (cache hits and dirty-site recomputations alike)
// must not allocate.
func TestDeltaMoveZeroAllocSteadyState(t *testing.T) {
	spec := smallSpec()
	ev := newTestEvaluator(t, 40, spec)
	base := []Candidate{{SiteID: 2, CapacityKW: 5_000}, {SiteID: 5, CapacityKW: 5_000}}
	grown := []Candidate{{SiteID: 2, CapacityKW: 6_250}, {SiteID: 5, CapacityKW: 5_000}}
	swapped := []Candidate{{SiteID: 2, CapacityKW: 5_000}, {SiteID: 9, CapacityKW: 5_000}}
	growMv := Move{Kind: MoveGrow, Site: 2, OldCap: 5_000, NewCap: 6_250}
	swapMv := Move{Kind: MoveSwap, Site: 9, OldCap: 5_000, NewCap: 5_000}

	// Warm up every site the moves touch.
	for _, cands := range [][]Candidate{base, grown, swapped} {
		if _, err := ev.EvaluateCost(cands); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ev.EvaluateCostMove(grown, growMv); err != nil {
			t.Fatal(err)
		}
		if _, err := ev.EvaluateCostMove(base, growMv); err != nil {
			t.Fatal(err)
		}
		if _, err := ev.EvaluateCostMove(swapped, swapMv); err != nil {
			t.Fatal(err)
		}
		if _, err := ev.EvaluateCostMove(base, swapMv); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state delta moves allocate %v times per cycle, want 0", allocs)
	}
}

// TestProposeMoveNeverSilentlyNoOps regresses the fixed swap move: as long
// as the filtered list offers unselected sites, every proposed move must
// change the siting (the old swap silently kept the state when it sampled an
// already-selected replacement, wasting annealing iterations on
// re-evaluating an unchanged state).
func TestProposeMoveNeverSilentlyNoOps(t *testing.T) {
	spec := smallSpec().withDefaults()
	filtered := []int{0, 1, 2, 3, 4, 5, 6, 7}
	base := siting{candidates: []Candidate{
		{SiteID: 0, CapacityKW: 5_000},
		{SiteID: 1, CapacityKW: 5_000},
	}}
	rng := rand.New(rand.NewSource(9))
	for step := 0; step < 1000; step++ {
		next, mv := proposeMove(base, rng, filtered, spec, 2, 6, 1_250)
		if mv.Kind == MoveNone {
			t.Fatalf("step %d: move has no metadata", step)
		}
		if sitingsEqual(base, next) {
			t.Fatalf("step %d: %v move returned an unchanged siting", step, mv.Kind)
		}
		if len(next.candidates) < 2 {
			t.Fatalf("step %d: %v move dropped below the availability floor", step, mv.Kind)
		}
	}

	// Degenerate case: every filtered site already selected — swap and add
	// must fall through to a capacity move rather than no-op.
	tight := siting{candidates: []Candidate{
		{SiteID: 0, CapacityKW: 5_000},
		{SiteID: 1, CapacityKW: 5_000},
	}}
	for step := 0; step < 200; step++ {
		next, mv := proposeMove(tight, rng, []int{0, 1}, spec, 2, 6, 1_250)
		if mv.Kind == MoveNone || sitingsEqual(tight, next) {
			t.Fatalf("step %d: degenerate filtered list produced a no-op (%v)", step, mv.Kind)
		}
	}
}

func sitingsEqual(a, b siting) bool {
	if len(a.candidates) != len(b.candidates) {
		return false
	}
	for i := range a.candidates {
		if a.candidates[i] != b.candidates[i] {
			return false
		}
	}
	return true
}

// TestSolveWarmStartDeterministic verifies that a warm-started Solve is
// reproducible and no worse than the same search without the warm start when
// the warm start is the cold search's own solution (it then seeds the chains
// with a known-good siting).
func TestSolveWarmStartDeterministic(t *testing.T) {
	cat := testCatalog(t, 60)
	spec := smallSpec()
	spec.MinGreenFraction = 0.5
	filtered, err := FilterSites(cat, spec, 12)
	if err != nil {
		t.Fatal(err)
	}
	opts := SolveOptions{Candidates: filtered, Chains: 2, MaxIterations: 25, Seed: 5}
	cold, err := Solve(cat, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	warmStart := make([]Candidate, 0, len(cold.Sites))
	for _, site := range cold.Sites {
		warmStart = append(warmStart, Candidate{SiteID: site.Site.ID, CapacityKW: site.Provision.CapacityKW})
	}
	opts.InitialCandidates = warmStart
	warm1, err := Solve(cat, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm2, err := Solve(cat, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm1.TotalMonthlyUSD != warm2.TotalMonthlyUSD {
		t.Errorf("warm-started runs with the same seed differ: $%v vs $%v",
			warm1.TotalMonthlyUSD, warm2.TotalMonthlyUSD)
	}
	if warm1.TotalMonthlyUSD > cold.TotalMonthlyUSD+1e-6 {
		t.Errorf("warm start from the cold optimum (%v) should not end worse than the cold run (%v)",
			warm1.TotalMonthlyUSD, cold.TotalMonthlyUSD)
	}
}
