package core

import (
	"fmt"
	"strings"

	"greencloud/internal/cost"
	"greencloud/internal/location"
	"greencloud/internal/lp"
)

// SiteSolution is the provisioning and yearly operation of one selected site.
type SiteSolution struct {
	// Site is the selected location.
	Site *location.Site
	// Provision is what gets built there.
	Provision cost.Provision
	// Energy is the site's yearly brown/net-metered energy use.
	Energy cost.EnergyUse
	// Breakdown is the site's monthly cost.
	Breakdown cost.Breakdown
	// GreenFraction is the fraction of the site's yearly demand covered by
	// green sources.
	GreenFraction float64
	// ComputeKW is the compute power assigned to the site in each epoch of
	// the catalog grid (the follow-the-renewables schedule).
	ComputeKW []float64
	// MigrationKW is the migration overhead power in each epoch.
	MigrationKW []float64
	// BrownKW is the brown power drawn in each epoch.
	BrownKW []float64
	// GreenKW is the on-site green production in each epoch.
	GreenKW []float64
}

// Solution is a fully provisioned datacenter network.
type Solution struct {
	// Spec echoes the input specification (with defaults applied).
	Spec Spec
	// Sites are the selected sites with their provisioning.
	Sites []SiteSolution
	// TotalMonthlyUSD is the total monthly cost of the network.
	TotalMonthlyUSD float64
	// Breakdown is the aggregate monthly cost breakdown.
	Breakdown cost.Breakdown
	// GreenFraction is the network-wide fraction of demand covered by
	// green energy over the year.
	GreenFraction float64
	// ProvisionedCapacityKW is the total IT capacity built.
	ProvisionedCapacityKW float64
	// SolarKW and WindKW are the total installed plant capacities.
	SolarKW float64
	WindKW  float64
	// BatteryKWh is the total installed battery capacity.
	BatteryKWh float64
	// Feasible reports whether every constraint is met.
	Feasible bool
	// Violations lists the constraints that are not met (empty when
	// Feasible).
	Violations []string
	// ExactNodes and ExactLPStats are only set by SolveExact: the
	// branch-and-bound node count and the aggregate simplex/presolve work
	// of its node relaxations.  The heuristic path leaves them zero.
	ExactNodes   int
	ExactLPStats lp.Stats
}

// addViolation records a constraint violation.
func (s *Solution) addViolation(format string, args ...any) {
	s.Feasible = false
	s.Violations = append(s.Violations, fmt.Sprintf(format, args...))
}

// Summary returns a short human-readable description of the solution.
func (s *Solution) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d datacenters, %.1f MW IT, %.1f MW solar, %.1f MW wind, %.0f MWh battery\n",
		len(s.Sites), s.ProvisionedCapacityKW/1000, s.SolarKW/1000, s.WindKW/1000, s.BatteryKWh/1000)
	fmt.Fprintf(&b, "green fraction %.1f%%, monthly cost $%.2fM", 100*s.GreenFraction, s.TotalMonthlyUSD/1e6)
	if !s.Feasible {
		fmt.Fprintf(&b, " [INFEASIBLE: %s]", strings.Join(s.Violations, "; "))
	}
	for _, site := range s.Sites {
		fmt.Fprintf(&b, "\n  %-18s IT %6.1f MW  solar %7.1f MW  wind %7.1f MW  batt %8.0f kWh  green %5.1f%%  $%.2fM/mo",
			site.Site.Name, site.Provision.CapacityKW/1000, site.Provision.SolarKW/1000,
			site.Provision.WindKW/1000, site.Provision.BatteryKWh,
			100*site.GreenFraction, site.Breakdown.Total()/1e6)
	}
	return b.String()
}
