package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"greencloud/internal/anneal"
	"greencloud/internal/location"
)

// SolveOptions tunes the heuristic solver.
type SolveOptions struct {
	// Candidates, when non-empty, is a pre-filtered list of site IDs to
	// search over; the filtering stage is skipped.  Sweeps that call Solve
	// many times on the same catalog filter once and reuse the list.
	Candidates []int
	// FilterKeep is how many candidate locations survive the filtering
	// stage (the paper keeps 50–100 of its 1373); default 60.
	FilterKeep int
	// Chains is the number of parallel annealing instances; default 4.
	Chains int
	// MaxIterations caps the iterations per chain; default 250.
	MaxIterations int
	// Seed makes the search reproducible.
	Seed int64
	// CapacityQuantumKW is the step used by capacity-changing moves;
	// default TotalCapacityKW/8.
	CapacityQuantumKW float64
	// Sequential runs the annealing chains one after another instead of
	// in parallel.  The solution is identical either way (chains are
	// independent and merged deterministically); the switch exists so the
	// determinism regression tests can verify exactly that.
	Sequential bool
}

func (o SolveOptions) withDefaults(spec Spec) SolveOptions {
	if o.FilterKeep <= 0 {
		o.FilterKeep = 60
	}
	if o.Chains <= 0 {
		o.Chains = 4
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 250
	}
	if o.CapacityQuantumKW <= 0 {
		o.CapacityQuantumKW = spec.TotalCapacityKW / 8
	}
	return o
}

// FilterSites implements the first stage of the heuristic solver: it prices a
// representative single datacenter at every location (for the spec's source
// and storage settings, and for a plain brown datacenter) and keeps the
// `keep` cheapest locations, always including the very best wind and solar
// sites so the annealing stage can exploit them.
func FilterSites(cat *location.Catalog, spec Spec, keep int) ([]int, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if cat.Len() == 0 {
		return nil, ErrNoSites
	}
	if keep <= 0 {
		keep = 60
	}
	if keep > cat.Len() {
		keep = cat.Len()
	}
	minDCs, err := spec.MinDatacenters()
	if err != nil {
		return nil, err
	}
	refCapacity := spec.TotalCapacityKW / float64(minDCs)

	// One reusable evaluator per single-site spec: pricing every location in
	// the catalog is the filter's hot loop, and the cached evaluators make
	// each probe allocation-free.
	brownSpec := spec
	brownSpec.MinGreenFraction = 0
	brownEval, err := NewEvaluator(cat, singleSiteSpec(brownSpec, refCapacity))
	if err != nil {
		return nil, fmt.Errorf("core: filter: %w", err)
	}
	var greenEval *Evaluator
	if spec.MinGreenFraction > 0 {
		greenEval, err = NewEvaluator(cat, singleSiteSpec(spec, refCapacity))
		if err != nil {
			return nil, fmt.Errorf("core: filter: %w", err)
		}
	}

	type scored struct {
		id    int
		score float64
	}
	scores := make([]scored, 0, cat.Len())
	probe := make([]Candidate, 1)
	for _, site := range cat.Sites() {
		probe[0] = Candidate{SiteID: site.ID, CapacityKW: refCapacity}
		// Brown reference cost.
		brown, err := brownEval.EvaluateCost(probe)
		if err != nil {
			return nil, fmt.Errorf("core: filter: %w", err)
		}
		score := brown.MonthlyUSD
		if greenEval != nil {
			green, err := greenEval.EvaluateCost(probe)
			if err != nil {
				return nil, fmt.Errorf("core: filter: %w", err)
			}
			// A site that cannot reach the green target alone is still
			// useful in a network, so only use its cost as the score.
			score = math.Min(score, green.MonthlyUSD)
			if green.Feasible {
				score = green.MonthlyUSD
			}
		}
		scores = append(scores, scored{id: site.ID, score: score})
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].score < scores[j].score })

	selected := make([]int, 0, keep+20)
	seen := make(map[int]bool, keep+20)
	for _, s := range scores {
		if len(selected) >= keep {
			break
		}
		selected = append(selected, s.id)
		seen[s.id] = true
	}
	// Always keep the very best renewable sites: they anchor the green
	// solutions even if their brown cost is mediocre.
	for _, s := range cat.TopByWindCF(10) {
		if !seen[s.ID] {
			selected = append(selected, s.ID)
			seen[s.ID] = true
		}
	}
	for _, s := range cat.TopBySolarCF(10) {
		if !seen[s.ID] {
			selected = append(selected, s.ID)
			seen[s.ID] = true
		}
	}
	return selected, nil
}

// siting is the annealing state: a set of candidate sites with capacities.
type siting struct {
	candidates []Candidate
}

func (s siting) clone() siting {
	out := make([]Candidate, len(s.candidates))
	copy(out, s.candidates)
	return siting{candidates: out}
}

// Solve runs the heuristic solver: filter locations, then search over
// sitings and capacity splits with parallel simulated annealing, evaluating
// every candidate siting with the fast evaluator, and return the best
// feasible solution found.
func Solve(cat *location.Catalog, spec Spec, opts SolveOptions) (*Solution, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(spec)

	filtered := opts.Candidates
	if len(filtered) == 0 {
		var err error
		filtered, err = FilterSites(cat, spec, opts.FilterKeep)
		if err != nil {
			return nil, err
		}
	}
	minDCs, err := spec.MinDatacenters()
	if err != nil {
		return nil, err
	}
	if len(filtered) < minDCs {
		return nil, fmt.Errorf("%w: only %d candidate sites for %d required datacenters",
			ErrInfeasible, len(filtered), minDCs)
	}

	// The annealing chains run concurrently, and an Evaluator is single-
	// threaded, so the energy function draws one from a pool.  Evaluators
	// are pure functions of the candidate set, so which chain gets which
	// evaluator never affects the result.
	first, err := NewEvaluator(cat, spec)
	if err != nil {
		return nil, err
	}
	pool := sync.Pool{New: func() any {
		ev, err := NewEvaluator(cat, spec)
		if err != nil {
			// NewEvaluator only fails on inputs already validated above.
			panic(err)
		}
		return ev
	}}
	pool.Put(first)

	energyOf := func(s siting) float64 {
		ev := pool.Get().(*Evaluator)
		res, err := ev.EvaluateCost(s.candidates)
		pool.Put(ev)
		if err != nil || !res.Feasible {
			return math.Inf(1)
		}
		return res.MonthlyUSD
	}

	initial := buildInitialSiting(cat, filtered, minDCs, spec, energyOf)

	maxDCs := spec.MaxDatacenters
	if maxDCs == 0 {
		maxDCs = minDCs + 12
	}
	quantum := opts.CapacityQuantumKW

	neighbor := func(s siting, rng *rand.Rand) siting {
		out := s.clone()
		cands := out.candidates
		switch move := rng.Intn(5); move {
		case 0: // swap a site for an unselected filtered site
			if len(cands) > 0 {
				i := rng.Intn(len(cands))
				replacement := filtered[rng.Intn(len(filtered))]
				if !sitingContains(cands, replacement) {
					cands[i].SiteID = replacement
				}
			}
		case 1: // add a site
			if len(cands) < maxDCs {
				id := filtered[rng.Intn(len(filtered))]
				if !sitingContains(cands, id) {
					share := spec.TotalCapacityKW / float64(len(cands)+1)
					cands = append(cands, Candidate{SiteID: id, CapacityKW: share})
					// Rebalance to keep every site at the survivable share.
					rebalance(cands, spec)
				}
			}
		case 2: // remove a site
			if len(cands) > minDCs {
				i := rng.Intn(len(cands))
				cands = append(cands[:i], cands[i+1:]...)
				rebalance(cands, spec)
			}
		case 3: // grow one site's capacity
			if len(cands) > 0 {
				cands[rng.Intn(len(cands))].CapacityKW += quantum
			}
		case 4: // shrink one site's capacity (not below the survivable share)
			if len(cands) > 0 {
				i := rng.Intn(len(cands))
				minShare := spec.TotalCapacityKW / float64(len(cands))
				if cands[i].CapacityKW-quantum >= minShare-1e-9 {
					cands[i].CapacityKW -= quantum
				}
			}
		}
		out.candidates = cands
		return out
	}

	result, err := anneal.Run(anneal.Config[siting]{
		Initial:       initial,
		Energy:        energyOf,
		Neighbor:      neighbor,
		MaxIterations: opts.MaxIterations,
		MaxStale:      opts.MaxIterations / 2,
		Chains:        opts.Chains,
		Seed:          opts.Seed,
		Sequential:    opts.Sequential,
	})
	if err != nil {
		return nil, fmt.Errorf("core: anneal: %w", err)
	}
	if math.IsInf(result.BestEnergy, 1) {
		return nil, ErrInfeasible
	}
	ev := pool.Get().(*Evaluator)
	best, err := ev.Evaluate(result.Best.candidates)
	pool.Put(ev)
	if err != nil {
		return nil, err
	}
	return best, nil
}

// buildInitialSiting tries a few natural starting points and returns the one
// with the lowest energy, preferring feasible states so the annealing chains
// start from somewhere useful.
func buildInitialSiting(cat *location.Catalog, filtered []int, minDCs int, spec Spec,
	energyOf func(siting) float64) siting {

	share := spec.TotalCapacityKW / float64(minDCs)
	cheapest := make([]Candidate, 0, minDCs)
	for i := 0; i < minDCs && i < len(filtered); i++ {
		cheapest = append(cheapest, Candidate{SiteID: filtered[i], CapacityKW: share})
	}
	options := []siting{{candidates: cheapest}}

	// Full replication at each of the cheapest sites: the natural start for
	// high green fractions without storage.
	full := make([]Candidate, 0, minDCs)
	for i := 0; i < minDCs && i < len(filtered); i++ {
		full = append(full, Candidate{SiteID: filtered[i], CapacityKW: spec.TotalCapacityKW})
	}
	options = append(options, siting{candidates: full})

	// Three sites spread across time zones with full capacity each: the
	// shape of the paper's no-storage solutions.
	if len(filtered) >= 3 {
		spread := pickSpreadSites(cat, filtered, 3)
		cands := make([]Candidate, 0, len(spread))
		for _, id := range spread {
			cands = append(cands, Candidate{SiteID: id, CapacityKW: spec.TotalCapacityKW})
		}
		if len(cands) >= minDCs {
			options = append(options, siting{candidates: cands})
		}
	}

	best := options[0]
	bestEnergy := math.Inf(1)
	for _, opt := range options {
		if e := energyOf(opt); e < bestEnergy {
			bestEnergy = e
			best = opt
		}
	}
	return best
}

// pickSpreadSites selects n filtered sites whose UTC offsets are as far
// apart as possible (so one of them always has daylight).
func pickSpreadSites(cat *location.Catalog, filtered []int, n int) []int {
	if len(filtered) <= n {
		out := make([]int, len(filtered))
		copy(out, filtered)
		return out
	}
	selected := []int{filtered[0]}
	for len(selected) < n {
		bestID := -1
		bestDist := -1.0
		for _, id := range filtered {
			if containsInt(selected, id) {
				continue
			}
			site, err := cat.Site(id)
			if err != nil {
				continue
			}
			dist := math.Inf(1)
			for _, sel := range selected {
				other, err := cat.Site(sel)
				if err != nil {
					continue
				}
				d := circularHourDistance(site.UTCOffsetHours, other.UTCOffsetHours)
				if d < dist {
					dist = d
				}
			}
			if dist > bestDist {
				bestDist = dist
				bestID = id
			}
		}
		if bestID < 0 {
			break
		}
		selected = append(selected, bestID)
	}
	return selected
}

func circularHourDistance(a, b int) float64 {
	d := math.Abs(float64(a - b))
	if d > 12 {
		d = 24 - d
	}
	return d
}

func containsInt(list []int, v int) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

func sitingContains(cands []Candidate, id int) bool {
	for _, c := range cands {
		if c.SiteID == id {
			return true
		}
	}
	return false
}

// rebalance resets all capacities to the equal survivable share after a
// site-count change.
func rebalance(cands []Candidate, spec Spec) {
	if len(cands) == 0 {
		return
	}
	share := spec.TotalCapacityKW / float64(len(cands))
	for i := range cands {
		if cands[i].CapacityKW < share {
			cands[i].CapacityKW = share
		}
	}
}
