package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"greencloud/internal/anneal"
	"greencloud/internal/location"
)

// SolveOptions tunes the heuristic solver.
type SolveOptions struct {
	// Candidates, when non-empty, is a pre-filtered list of site IDs to
	// search over; the filtering stage is skipped.  Sweeps that call Solve
	// many times on the same catalog filter once and reuse the list.
	Candidates []int
	// InitialCandidates, when non-empty, is a warm-start siting: it is
	// offered as an additional starting point to the annealing chains, which
	// adopt it when it prices better than the built-in initial sitings.
	// Sweeps use it to seed each green-fraction point with the previous
	// point's solution.  The search stays deterministic for a fixed seed.
	InitialCandidates []Candidate
	// FilterKeep is how many candidate locations survive the filtering
	// stage (the paper keeps 50–100 of its 1373); default 60.
	FilterKeep int
	// Chains is the number of parallel annealing instances; default 4.
	Chains int
	// MaxIterations caps the iterations per chain; default 250.
	MaxIterations int
	// Seed makes the search reproducible.
	Seed int64
	// CapacityQuantumKW is the step used by capacity-changing moves;
	// default TotalCapacityKW/8.
	CapacityQuantumKW float64
	// Sequential runs the annealing chains one after another instead of
	// in parallel.  The solution is identical either way (chains are
	// independent and merged deterministically); the switch exists so the
	// determinism regression tests can verify exactly that.
	Sequential bool
	// Ctx, when non-nil, cancels the annealing search cooperatively.  A run
	// cancelled mid-search returns the best solution found so far together
	// with the context's error (or the error alone when nothing feasible
	// was reached); an uncancelled run is bit-identical to one without Ctx.
	Ctx context.Context
}

func (o SolveOptions) withDefaults(spec Spec) SolveOptions {
	if o.FilterKeep <= 0 {
		o.FilterKeep = 60
	}
	if o.Chains <= 0 {
		o.Chains = 4
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 250
	}
	if o.CapacityQuantumKW <= 0 {
		o.CapacityQuantumKW = spec.TotalCapacityKW / 8
	}
	return o
}

// FilterSites implements the first stage of the heuristic solver: it prices a
// representative single datacenter at every location (for the spec's source
// and storage settings, and for a plain brown datacenter) and keeps the
// `keep` cheapest locations, always including the very best wind and solar
// sites so the annealing stage can exploit them.
//
// The catalog is sharded across a GOMAXPROCS-sized worker pool; each worker
// owns its pair of cached evaluators and every site writes its score into
// its own slot, so the result is identical to pricing the catalog
// sequentially.
func FilterSites(cat *location.Catalog, spec Spec, keep int) ([]int, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if cat.Len() == 0 {
		return nil, ErrNoSites
	}
	if keep <= 0 {
		keep = 60
	}
	if keep > cat.Len() {
		keep = cat.Len()
	}
	minDCs, err := spec.MinDatacenters()
	if err != nil {
		return nil, err
	}
	refCapacity := spec.TotalCapacityKW / float64(minDCs)

	brownSpec := spec
	brownSpec.MinGreenFraction = 0
	sites := cat.Sites()
	scores := make([]float64, len(sites))

	// scoreRange prices its share of the catalog with its own reusable
	// evaluators: pricing every location is the filter's hot loop, and a
	// warm single-site evaluator makes each probe allocation-free.  The
	// per-site memo cache is disabled — every site is priced exactly once,
	// so entries could never be hit.
	scoreRange := func(nextIdx *atomic.Int64) error {
		brownEval, err := NewEvaluator(cat, singleSiteSpec(brownSpec, refCapacity))
		if err != nil {
			return fmt.Errorf("core: filter: %w", err)
		}
		brownEval.DisableCache()
		var greenEval *Evaluator
		if spec.MinGreenFraction > 0 {
			greenEval, err = NewEvaluator(cat, singleSiteSpec(spec, refCapacity))
			if err != nil {
				return fmt.Errorf("core: filter: %w", err)
			}
			greenEval.DisableCache()
		}
		probe := make([]Candidate, 1)
		for {
			i := int(nextIdx.Add(1))
			if i >= len(sites) {
				return nil
			}
			probe[0] = Candidate{SiteID: sites[i].ID, CapacityKW: refCapacity}
			brown, err := brownEval.EvaluateCost(probe)
			if err != nil {
				return fmt.Errorf("core: filter: %w", err)
			}
			score := brown.MonthlyUSD
			if greenEval != nil {
				green, err := greenEval.EvaluateCost(probe)
				if err != nil {
					return fmt.Errorf("core: filter: %w", err)
				}
				// A site that cannot reach the green target alone is still
				// useful in a network, so only use its cost as the score.
				score = math.Min(score, green.MonthlyUSD)
				if green.Feasible {
					score = green.MonthlyUSD
				}
			}
			scores[i] = score
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(sites) {
		workers = len(sites)
	}
	var next atomic.Int64
	next.Store(-1)
	if workers <= 1 {
		if err := scoreRange(&next); err != nil {
			return nil, err
		}
	} else {
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				errs[w] = scoreRange(&next)
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	order := make([]int, len(sites))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })

	selected := make([]int, 0, keep+20)
	seen := make(map[int]bool, keep+20)
	for _, i := range order {
		if len(selected) >= keep {
			break
		}
		selected = append(selected, sites[i].ID)
		seen[sites[i].ID] = true
	}
	// Always keep the very best renewable sites: they anchor the green
	// solutions even if their brown cost is mediocre.
	for _, s := range cat.TopByWindCF(10) {
		if !seen[s.ID] {
			selected = append(selected, s.ID)
			seen[s.ID] = true
		}
	}
	for _, s := range cat.TopBySolarCF(10) {
		if !seen[s.ID] {
			selected = append(selected, s.ID)
			seen[s.ID] = true
		}
	}
	return selected, nil
}

// siting is the annealing state: a set of candidate sites with capacities.
type siting struct {
	candidates []Candidate
}

func (s siting) clone() siting {
	out := make([]Candidate, len(s.candidates))
	copy(out, s.candidates)
	return siting{candidates: out}
}

// proposeMove draws one neighbourhood move: swap a site, add or remove one,
// or resize one site's capacity.  It returns the modified siting together
// with the move metadata the evaluator's delta path consumes.
//
// Moves that would silently do nothing (a swap or add whose sampled site is
// already selected, a shrink below the survivable share, a removal at the
// availability floor) resample or fall through to a capacity-grow move, so
// annealing chains never burn an iteration re-evaluating an unchanged state.
func proposeMove(s siting, rng *rand.Rand, filtered []int, spec Spec,
	minDCs, maxDCs int, quantum float64) (siting, Move) {

	out := s.clone()
	cands := out.candidates
	grow := func() (siting, Move) {
		i := rng.Intn(len(cands))
		mv := Move{Kind: MoveGrow, Site: cands[i].SiteID, OldCap: cands[i].CapacityKW}
		cands[i].CapacityKW += quantum
		mv.NewCap = cands[i].CapacityKW
		out.candidates = cands
		return out, mv
	}
	if len(cands) == 0 {
		return out, Move{}
	}

	switch rng.Intn(5) {
	case 0: // swap a site for an unselected filtered site
		if len(cands) < len(filtered) {
			i := rng.Intn(len(cands))
			for tries := 0; tries < 8; tries++ {
				replacement := filtered[rng.Intn(len(filtered))]
				if sitingContains(cands, replacement) {
					continue
				}
				cap := cands[i].CapacityKW
				cands[i].SiteID = replacement
				out.candidates = cands
				return out, Move{Kind: MoveSwap, Site: replacement, OldCap: cap, NewCap: cap}
			}
		}
	case 1: // add a site
		if len(cands) < maxDCs && len(cands) < len(filtered) {
			for tries := 0; tries < 8; tries++ {
				id := filtered[rng.Intn(len(filtered))]
				if sitingContains(cands, id) {
					continue
				}
				share := spec.TotalCapacityKW / float64(len(cands)+1)
				cands = append(cands, Candidate{SiteID: id, CapacityKW: share})
				// Rebalance to keep every site at the survivable share.
				rebalance(cands, spec)
				out.candidates = cands
				return out, Move{Kind: MoveAdd, Site: id, NewCap: cands[len(cands)-1].CapacityKW}
			}
		}
	case 2: // remove a site
		if len(cands) > minDCs {
			i := rng.Intn(len(cands))
			mv := Move{Kind: MoveRemove, Site: cands[i].SiteID, OldCap: cands[i].CapacityKW}
			cands = append(cands[:i], cands[i+1:]...)
			rebalance(cands, spec)
			out.candidates = cands
			return out, mv
		}
	case 3:
		return grow()
	case 4: // shrink one site's capacity (not below the survivable share)
		i := rng.Intn(len(cands))
		minShare := spec.TotalCapacityKW / float64(len(cands))
		if cands[i].CapacityKW-quantum >= minShare-1e-9 {
			mv := Move{Kind: MoveShrink, Site: cands[i].SiteID, OldCap: cands[i].CapacityKW}
			cands[i].CapacityKW -= quantum
			mv.NewCap = cands[i].CapacityKW
			out.candidates = cands
			return out, mv
		}
	}
	// The sampled move was impossible (sites exhausted, at the availability
	// floor, at the survivable share): fall through to a grow move, which is
	// always applicable.
	return grow()
}

// Solve runs the heuristic solver: filter locations, then search over
// sitings and capacity splits with parallel simulated annealing, and return
// the best feasible solution found.  Each chain owns an incremental
// Evaluator whose delta path re-prices only the sites a move dirtied, and
// move metadata flows from the neighbourhood function through the annealing
// loop into the evaluator.  Delta evaluation is bit-identical to full
// evaluation, so results remain reproducible for a fixed seed regardless of
// parallelism.
func Solve(cat *location.Catalog, spec Spec, opts SolveOptions) (*Solution, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(spec)

	filtered := opts.Candidates
	if len(filtered) == 0 {
		var err error
		filtered, err = FilterSites(cat, spec, opts.FilterKeep)
		if err != nil {
			return nil, err
		}
	}
	minDCs, err := spec.MinDatacenters()
	if err != nil {
		return nil, err
	}
	if len(filtered) < minDCs {
		return nil, fmt.Errorf("%w: only %d candidate sites for %d required datacenters",
			ErrInfeasible, len(filtered), minDCs)
	}

	// The shared evaluator serves the single-threaded phases (initial-siting
	// selection, the top-level initial energy, the final materialization);
	// each annealing chain creates its own.
	shared, err := NewEvaluator(cat, spec)
	if err != nil {
		return nil, err
	}
	energyOf := func(ev *Evaluator, s siting, mv Move) float64 {
		res, err := ev.EvaluateCostMove(s.candidates, mv)
		if err != nil || !res.Feasible {
			return math.Inf(1)
		}
		return res.MonthlyUSD
	}

	initial := buildInitialSiting(cat, filtered, minDCs, spec, opts.InitialCandidates,
		func(s siting) float64 { return energyOf(shared, s, Move{}) })

	maxDCs := spec.MaxDatacenters
	if maxDCs == 0 {
		maxDCs = minDCs + 12
	}
	quantum := opts.CapacityQuantumKW

	// Per-chain evaluators are built up front so a constructor failure is an
	// ordinary error return instead of a panic inside a chain goroutine.
	chainEvals := make([]*Evaluator, opts.Chains)
	for i := range chainEvals {
		ev, err := NewEvaluator(cat, spec)
		if err != nil {
			return nil, err
		}
		chainEvals[i] = ev
	}

	result, runErr := anneal.Run(anneal.Config[siting]{
		Initial: initial,
		NewContext: func(chain int) any {
			if chain < 0 {
				// The top-level initial evaluation runs before any chain
				// starts; it can share the single-threaded evaluator.
				return shared
			}
			return chainEvals[chain]
		},
		NeighborMove: func(s siting, rng *rand.Rand) (siting, any) {
			next, mv := proposeMove(s, rng, filtered, spec, minDCs, maxDCs, quantum)
			return next, mv
		},
		EnergyMove: func(ctx any, s siting, move any) float64 {
			mv, _ := move.(Move)
			return energyOf(ctx.(*Evaluator), s, mv)
		},
		MaxIterations: opts.MaxIterations,
		MaxStale:      opts.MaxIterations / 2,
		Chains:        opts.Chains,
		Seed:          opts.Seed,
		Sequential:    opts.Sequential,
		Ctx:           opts.Ctx,
	})
	if runErr != nil && !errors.Is(runErr, context.Canceled) && !errors.Is(runErr, context.DeadlineExceeded) {
		return nil, fmt.Errorf("core: anneal: %w", runErr)
	}
	if math.IsInf(result.BestEnergy, 1) {
		if runErr != nil {
			// Cancelled before anything feasible was found.
			return nil, fmt.Errorf("core: anneal: %w", runErr)
		}
		return nil, ErrInfeasible
	}
	best, err := shared.Evaluate(result.Best.candidates)
	if err != nil {
		return nil, err
	}
	// On cancellation the best-so-far solution is returned together with the
	// context's error so the caller can decide whether a partial search
	// result is acceptable.
	return best, runErr
}

// buildInitialSiting tries a few natural starting points — plus the caller's
// warm-start siting, when given — and returns the one with the lowest
// energy, preferring feasible states so the annealing chains start from
// somewhere useful.
func buildInitialSiting(cat *location.Catalog, filtered []int, minDCs int, spec Spec,
	warmStart []Candidate, energyOf func(siting) float64) siting {

	share := spec.TotalCapacityKW / float64(minDCs)
	cheapest := make([]Candidate, 0, minDCs)
	for i := 0; i < minDCs && i < len(filtered); i++ {
		cheapest = append(cheapest, Candidate{SiteID: filtered[i], CapacityKW: share})
	}
	options := []siting{{candidates: cheapest}}

	// Full replication at each of the cheapest sites: the natural start for
	// high green fractions without storage.
	full := make([]Candidate, 0, minDCs)
	for i := 0; i < minDCs && i < len(filtered); i++ {
		full = append(full, Candidate{SiteID: filtered[i], CapacityKW: spec.TotalCapacityKW})
	}
	options = append(options, siting{candidates: full})

	// Three sites spread across time zones with full capacity each: the
	// shape of the paper's no-storage solutions.
	if len(filtered) >= 3 {
		spread := pickSpreadSites(cat, filtered, 3)
		cands := make([]Candidate, 0, len(spread))
		for _, id := range spread {
			cands = append(cands, Candidate{SiteID: id, CapacityKW: spec.TotalCapacityKW})
		}
		if len(cands) >= minDCs {
			options = append(options, siting{candidates: cands})
		}
	}

	// The warm start (typically the adjacent sweep point's solution) goes
	// last so it wins ties against the built-in options only when strictly
	// better.
	if len(warmStart) > 0 {
		cands := make([]Candidate, len(warmStart))
		copy(cands, warmStart)
		options = append(options, siting{candidates: cands})
	}

	best := options[0]
	bestEnergy := math.Inf(1)
	for _, opt := range options {
		if e := energyOf(opt); e < bestEnergy {
			bestEnergy = e
			best = opt
		}
	}
	return best
}

// pickSpreadSites selects n filtered sites whose UTC offsets are as far
// apart as possible (so one of them always has daylight).
func pickSpreadSites(cat *location.Catalog, filtered []int, n int) []int {
	if len(filtered) <= n {
		out := make([]int, len(filtered))
		copy(out, filtered)
		return out
	}
	selected := []int{filtered[0]}
	for len(selected) < n {
		bestID := -1
		bestDist := -1.0
		for _, id := range filtered {
			if containsInt(selected, id) {
				continue
			}
			site, err := cat.Site(id)
			if err != nil {
				continue
			}
			dist := math.Inf(1)
			for _, sel := range selected {
				other, err := cat.Site(sel)
				if err != nil {
					continue
				}
				d := circularHourDistance(site.UTCOffsetHours, other.UTCOffsetHours)
				if d < dist {
					dist = d
				}
			}
			if dist > bestDist {
				bestDist = dist
				bestID = id
			}
		}
		if bestID < 0 {
			break
		}
		selected = append(selected, bestID)
	}
	return selected
}

func circularHourDistance(a, b int) float64 {
	d := math.Abs(float64(a - b))
	if d > 12 {
		d = 24 - d
	}
	return d
}

func containsInt(list []int, v int) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

func sitingContains(cands []Candidate, id int) bool {
	for _, c := range cands {
		if c.SiteID == id {
			return true
		}
	}
	return false
}

// rebalance resets all capacities to the equal survivable share after a
// site-count change.
func rebalance(cands []Candidate, spec Spec) {
	if len(cands) == 0 {
		return
	}
	share := spec.TotalCapacityKW / float64(len(cands))
	for i := range cands {
		if cands[i].CapacityKW < share {
			cands[i].CapacityKW = share
		}
	}
}
