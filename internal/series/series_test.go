package series

import (
	"math"
	"math/rand"
	"testing"
)

// refScale and friends are the naive scalar references the kernels are
// pinned against: every kernel must produce bit-identical output, because
// the refactor that introduced this package replaced open-coded loops of
// exactly these shapes and the solver's differential tests require
// bit-identical results.

func refScale(dst []float64, a float64, x []float64) {
	for i := range dst {
		dst[i] = a * x[i]
	}
}

func refAXPY(dst []float64, a float64, x []float64) {
	for i := range dst {
		dst[i] += a * x[i]
	}
}

func refWeightedSum(dst []float64, a float64, x []float64, b float64, y []float64) {
	for i := range dst {
		dst[i] = a*x[i] + b*y[i]
	}
}

func refAddMul(dst, x, y, z []float64) {
	for i := range dst {
		dst[i] = (x[i] + y[i]) * z[i]
	}
}

func refSum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

func refSumPositive(acc float64, x []float64) float64 {
	for _, v := range x {
		if v > 0 {
			acc += v
		}
	}
	return acc
}

func refDotWeighted(x, w []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * w[i]
	}
	return s
}

func refScaledDrop(dst []float64, a float64, x []float64) {
	for t := range dst {
		dst[t] = 0
		if t > 0 {
			if drop := x[t-1] - x[t]; drop > 0 {
				dst[t] = a * drop
			}
		}
	}
}

// randSeries draws a series with the value mix the pipeline actually
// feeds the kernels: positive magnitudes across several decades, exact
// zeros, and occasional negatives.
func randSeries(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		switch rng.Intn(8) {
		case 0:
			s[i] = 0
		case 1:
			s[i] = -rng.Float64() * math.Pow(10, float64(rng.Intn(6)-2))
		default:
			s[i] = rng.Float64() * math.Pow(10, float64(rng.Intn(6)-2))
		}
	}
	return s
}

func bitsEqual(t *testing.T, kernel string, trial int, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s trial %d: element %d: got %v (%#x) want %v (%#x)",
				kernel, trial, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestKernelsMatchScalarReference is the differential suite: every kernel
// against its naive reference, over randomized shapes including the
// zero-length and single-epoch rows the evaluator can legally produce.
func TestKernelsMatchScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []int{0, 1, 2, 3, 7, 8, 15, 64, 97, 365}
	for trial := 0; trial < 300; trial++ {
		n := shapes[trial%len(shapes)]
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		z := randSeries(rng, n)
		base := randSeries(rng, n)
		a := rng.NormFloat64() * 100
		b := rng.NormFloat64() * 100

		got, want := make([]float64, n), make([]float64, n)

		copy(got, base)
		copy(want, base)
		Scale(got, a, x)
		refScale(want, a, x)
		bitsEqual(t, "Scale", trial, got, want)

		copy(got, base)
		copy(want, base)
		AXPY(got, a, x)
		refAXPY(want, a, x)
		bitsEqual(t, "AXPY", trial, got, want)

		copy(got, base)
		copy(want, base)
		WeightedSum(got, a, x, b, y)
		refWeightedSum(want, a, x, b, y)
		bitsEqual(t, "WeightedSum", trial, got, want)

		copy(got, base)
		copy(want, base)
		AddMul(got, x, y, z)
		refAddMul(want, x, y, z)
		bitsEqual(t, "AddMul", trial, got, want)

		copy(got, base)
		copy(want, base)
		ScaledDrop(got, a, x)
		refScaledDrop(want, a, x)
		bitsEqual(t, "ScaledDrop", trial, got, want)

		if g, w := Sum(x), refSum(x); math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("Sum trial %d: got %v want %v", trial, g, w)
		}
		if g, w := SumPositive(a, x), refSumPositive(a, x); math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("SumPositive trial %d: got %v want %v", trial, g, w)
		}
		if g, w := DotWeighted(x, y), refDotWeighted(x, y); math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("DotWeighted trial %d: got %v want %v", trial, g, w)
		}

		copy(got, base)
		Zero(got)
		for i, v := range got {
			if v != 0 {
				t.Fatalf("Zero trial %d: element %d = %v", trial, i, v)
			}
		}

		if !Equal(x, x) {
			t.Fatalf("Equal trial %d: series not equal to itself", trial)
		}
		if n > 0 {
			mut := append([]float64(nil), x...)
			k := rng.Intn(n)
			mut[k] = mut[k] + 1e-9 + math.Abs(mut[k])*1e-12
			if Equal(x, mut) {
				t.Fatalf("Equal trial %d: differing series compare equal", trial)
			}
		}
	}
}

// TestWeightedSumAliasing pins the documented aliasing guarantee: dst may
// be one of the operands (the evaluator scales rows in place).
func TestWeightedSumAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randSeries(rng, 33)
	y := randSeries(rng, 33)
	want := make([]float64, 33)
	refWeightedSum(want, 2.5, x, -1.25, y)

	got := append([]float64(nil), x...)
	WeightedSum(got, 2.5, got, -1.25, y)
	bitsEqual(t, "WeightedSum(dst=x)", 0, got, want)

	got = append([]float64(nil), y...)
	WeightedSum(got, 2.5, x, -1.25, got)
	bitsEqual(t, "WeightedSum(dst=y)", 1, got, want)
}

// TestDigest pins the digest's contract: deterministic, length-aware, and
// sensitive to any single-element change (the property the delta
// evaluator's O(1) clean-site revalidation rests on).
func TestDigest(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	if Digest(nil) != Digest([]float64{}) {
		t.Fatal("nil and empty digests differ")
	}
	if Digest(nil) == Digest([]float64{0}) {
		t.Fatal("digest ignores length")
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		x := randSeries(rng, n)
		d := Digest(x)
		if Digest(x) != d {
			t.Fatalf("trial %d: digest not deterministic", trial)
		}
		cp := append([]float64(nil), x...)
		if Digest(cp) != d {
			t.Fatalf("trial %d: equal series digest differently", trial)
		}
		k := rng.Intn(n)
		old := cp[k]
		cp[k] = old + 1 + math.Abs(old)*1e-9
		if Digest(cp) == d {
			t.Fatalf("trial %d: single-element change at %d kept the digest", trial, k)
		}
		// Swapping two unequal elements must change the digest: the roll
		// is position-dependent, not a plain XOR of element hashes.
		if n >= 2 {
			cp = append(cp[:0], x...)
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j && math.Float64bits(cp[i]) != math.Float64bits(cp[j]) {
				cp[i], cp[j] = cp[j], cp[i]
				if Digest(cp) == d {
					t.Fatalf("trial %d: swapping elements %d,%d kept the digest", trial, i, j)
				}
			}
		}
	}
}

// TestBlock pins the Block contract: epoch-major layout, row boundaries
// enforced by slice capacity, and allocation-free steady-state Reshape.
func TestBlock(t *testing.T) {
	var b Block
	b.Reshape(3, 5)
	if b.Rows() != 3 || b.Epochs() != 5 || len(b.Data()) != 15 {
		t.Fatalf("Reshape(3,5): rows=%d epochs=%d len=%d", b.Rows(), b.Epochs(), len(b.Data()))
	}
	for r := 0; r < 3; r++ {
		row := b.Row(r)
		if len(row) != 5 || cap(row) != 5 {
			t.Fatalf("row %d: len=%d cap=%d, want 5/5 (capacity must clip at the row boundary)", r, len(row), cap(row))
		}
		for i := range row {
			row[i] = float64(r*5 + i)
		}
	}
	for i, v := range b.Data() {
		if v != float64(i) {
			t.Fatalf("epoch-major layout broken: data[%d] = %v", i, v)
		}
	}

	// Shrinking and re-growing within capacity must not allocate and must
	// preserve the backing array identity (the evaluator's reuse contract).
	allocs := testing.AllocsPerRun(10, func() {
		b.Reshape(2, 5)
		b.Reshape(3, 5)
	})
	if allocs != 0 {
		t.Errorf("steady-state Reshape allocates %v times", allocs)
	}

	// Grow shares the Reshape contract: reuse within capacity, no
	// allocation in steady state, unspecified contents.
	s := Grow(nil, 4)
	if len(s) != 4 {
		t.Fatalf("Grow(nil, 4) has len %d", len(s))
	}
	allocs = testing.AllocsPerRun(10, func() {
		s = Grow(s, 2)
		s = Grow(s, 4)
	})
	if allocs != 0 {
		t.Errorf("steady-state Grow allocates %v times", allocs)
	}

	nb := NewBlock(2, 4)
	for _, v := range nb.Data() {
		if v != 0 {
			t.Fatal("NewBlock is not zeroed")
		}
	}
	zero := NewBlock(0, 7)
	if zero.Rows() != 0 || len(zero.Data()) != 0 {
		t.Fatal("zero-row block malformed")
	}
}

// FuzzDigestVsEqual cross-checks the digest against exact comparison on
// fuzz-generated row pairs: equal rows must digest equally, and the fuzzer
// hunting for a digest collision on unequal rows documents the O(1)
// revalidation's failure mode (none has been found).
func FuzzDigestVsEqual(f *testing.F) {
	f.Add(int64(1), 8, true)
	f.Add(int64(2), 1, false)
	f.Add(int64(3), 0, true)
	f.Add(int64(4), 365, false)
	f.Fuzz(func(t *testing.T, seed int64, n int, mutate bool) {
		if n < 0 || n > 4096 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		x := randSeries(rng, n)
		y := append([]float64(nil), x...)
		if mutate && n > 0 {
			y[rng.Intn(n)] += 1 + rng.Float64()
		}
		xEq := Equal(x, y)
		dEq := Digest(x) == Digest(y)
		if xEq && !dEq {
			t.Fatalf("equal rows digest differently (n=%d)", n)
		}
		if !xEq && dEq {
			t.Fatalf("digest collision on unequal rows (n=%d, seed=%d)", n, seed)
		}
	})
}
