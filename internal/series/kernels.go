package series

import "math"

// The kernels below are the shared loop dialect of the provisioning
// pipeline: every element-wise pass over an epoch row in location.Profiles,
// internal/core, internal/energy and internal/sched goes through one of
// them.  They all derive the trip count from dst (or the first operand) and
// pin every other slice with an explicit re-slice so the compiler hoists
// the bounds checks out of the loop; a too-short operand panics at the
// re-slice, which is the contract.  See the package comment for the rules
// to follow when adding one.

// Zero sets every element of dst to zero (compiled to a memclr).
func Zero(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
}

// Grow returns s resized to n, reusing the backing array when it is large
// enough — the scratch-reuse idiom of every hot path (a steady-state Grow
// performs no allocation).  Contents are unspecified, exactly as after
// Block.Reshape: callers must overwrite every element they read.
func Grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Scale writes dst[i] = a·x[i].
func Scale(dst []float64, a float64, x []float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] = a * x[i]
	}
}

// AXPY accumulates dst[i] += a·x[i] (the BLAS axpy).
func AXPY(dst []float64, a float64, x []float64) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] += a * x[i]
	}
}

// WeightedSum writes dst[i] = a·x[i] + b·y[i] — the green-production
// kernel (α·solarKW + β·windKW) of the schedule merge, plant sizing and
// energy accounting.  dst may alias x or y.
func WeightedSum(dst []float64, a float64, x []float64, b float64, y []float64) {
	x = x[:len(dst)]
	y = y[:len(dst)]
	for i := range dst {
		dst[i] = a*x[i] + b*y[i]
	}
}

// AddMul writes dst[i] = (x[i] + y[i])·z[i] — the facility-demand kernel
// ((compute + migration)·PUE).  dst may alias any operand.
func AddMul(dst, x, y, z []float64) {
	x = x[:len(dst)]
	y = y[:len(dst)]
	z = z[:len(dst)]
	for i := range dst {
		dst[i] = (x[i] + y[i]) * z[i]
	}
}

// Sum returns Σ x[i], accumulated in index order (the order every scalar
// loop it replaces used, so totals stay bit-identical).
//
// The loop is unrolled 4-wide with a single accumulator: the additions
// happen in exactly the same order as the plain loop (bit-identity is the
// package contract — multiple accumulators would re-associate the chain),
// so the unroll only amortizes loop control, the first step of the ROADMAP
// SIMD item.  The x4 = x[i : i+4 : i+4] re-slice pins the bounds so the
// body runs check-free.
func Sum(x []float64) float64 {
	s := 0.0
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x4 := x[i : i+4 : i+4]
		s += x4[0]
		s += x4[1]
		s += x4[2]
		s += x4[3]
	}
	for ; i < len(x); i++ {
		s += x[i]
	}
	return s
}

// SumPositive returns acc plus every strictly positive element of x, in
// index order.  Taking the running accumulator as a parameter lets a
// caller fold several rows into one total without changing the addition
// chain's association (acc += Sum(row) groups differently and can differ
// in the last ulp); the > 0 guard also skips NaNs exactly like the scalar
// `if v > 0 { acc += v }` loops it replaces.
func SumPositive(acc float64, x []float64) float64 {
	for _, v := range x {
		if v > 0 {
			acc += v
		}
	}
	return acc
}

// DotWeighted returns Σ x[i]·w[i] in index order — the epoch-weighted
// total (kW · hours-per-epoch) that turns a power series into energy.
//
// Unrolled 4-wide with a single accumulator, like Sum: same sequence of
// multiply-then-add operations as the plain loop, so the result stays
// bit-identical while the loop control amortizes over four elements.
func DotWeighted(x, w []float64) float64 {
	w = w[:len(x)]
	s := 0.0
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x4 := x[i : i+4 : i+4]
		w4 := w[i : i+4 : i+4]
		s += x4[0] * w4[0]
		s += x4[1] * w4[1]
		s += x4[2] * w4[2]
		s += x4[3] * w4[3]
	}
	for ; i < len(x); i++ {
		s += x[i] * w[i]
	}
	return s
}

// ScaledDrop writes the migration-overhead series of a schedule row:
// dst[0] = 0 and, for t ≥ 1, dst[t] = a·max(x[t-1]−x[t], 0) — load that
// leaves a site between consecutive epochs burns a·drop of power at the
// donor during the next epoch.  dst must not alias x.
func ScaledDrop(dst []float64, a float64, x []float64) {
	x = x[:len(dst)]
	if len(dst) == 0 {
		return
	}
	dst[0] = 0
	for t := 1; t < len(x); t++ {
		if drop := x[t-1] - x[t]; drop > 0 {
			dst[t] = a * drop
		} else {
			dst[t] = 0
		}
	}
}

// Equal reports whether two series are element-wise == (exact float
// equality; note -0 == 0 and NaN != NaN).
func Equal(x, y []float64) bool {
	if len(x) != len(y) {
		return false
	}
	y = y[:len(x)]
	for i, v := range x {
		if v != y[i] {
			return false
		}
	}
	return true
}

// digestMul is an odd 64-bit multiplier (from splitmix64's finalizer) that
// spreads each element's bits across the running state.
const (
	digestSeed = 0x9E3779B97F4A7C15
	digestMul  = 0xBF58476D1CE4E5B9
)

// Digest returns a 64-bit rolling digest of the series' raw float64 bits,
// folding in the length, so two rows with equal digests are element-wise
// bitwise identical up to hash collision (≈2⁻⁶⁴ per comparison).  The delta
// evaluator stores one Digest per cached schedule row and revalidates a
// clean site in O(1) instead of re-comparing the full row.  Note the
// digest is computed from raw bits: -0 and 0 digest differently even
// though they compare ==, which can only cost a spurious recomputation,
// never a stale reuse.
func Digest(x []float64) uint64 {
	h := uint64(len(x))*digestMul + digestSeed
	for _, v := range x {
		h ^= math.Float64bits(v)
		h *= digestMul
		h ^= h >> 31
	}
	return h
}
