// Package series is the dense numeric layer under the provisioning
// pipeline: an epoch-major matrix type (Block) and a small set of fused
// element-wise kernels that the Profiles view, the siting evaluator, the
// energy balancer and the scheduler all share, so the same multiply-add
// dialect is written (and optimized) exactly once.
//
// # Layout
//
// A Block stores rows × epochs float64 values in one contiguous backing
// slice, epoch-major: row r occupies data[r*epochs : (r+1)*epochs], and
// consecutive epochs of one row are adjacent in memory.  This is the layout
// every hot loop in the repository iterates in (site-by-site over a year of
// epochs), so row kernels stream linearly through memory and are the natural
// unit for future SIMD work.
//
// # Aliasing and mutability contract
//
// Row returns a sub-slice of the Block's backing array with its capacity
// clipped to the row boundary (a full slice expression), so a kernel writing
// through one row can never spill into the next even via append or
// re-slicing.  Two distinct rows of the same Block never overlap.  Beyond
// that the package distinguishes two uses:
//
//   - Shared read-only Blocks (location.Profiles): built once, then handed
//     out by reference to any number of concurrent readers.  Nobody may
//     write to them after construction; this is a documentation contract,
//     not an enforced one, exactly like an unexported map shared by value.
//   - Scratch Blocks (the evaluator's compute/migration/demand matrices):
//     owned by a single goroutine, resized with Reshape between uses, and
//     freely written through Row.  Reshape reuses the backing array when it
//     is large enough and leaves the contents unspecified — callers must
//     overwrite every element they read (all current users start with Zero
//     or a full-row kernel write).
//
// # Adding a kernel without breaking bounds-check elimination
//
// The kernels are written so the Go compiler proves every index in range
// once, before the loop, instead of per element.  When adding one, follow
// the existing shape:
//
//   - take dst first and derive the trip count from len(dst);
//   - pin every input with s = s[:n] (or s[:n:n]) against that count before
//     the loop — the explicit re-slice is the bounds proof, and it turns a
//     length mismatch into a loud panic at the call site;
//   - index every slice with the same induction variable (for i := range
//     dst), no interface indirection, no function-valued parameters;
//   - add the kernel to the differential suite in series_test.go, which
//     pins it bit-identical to a naive scalar reference over randomized
//     shapes (including zero-length and single-epoch rows).
//
// Check `go build -gcflags=-d=ssa/check_bce ./internal/series/` when
// touching a kernel: it must report no bounds checks inside loops.
package series

// Block is a dense rows × epochs matrix of float64, epoch-major and
// contiguous.  The zero value is an empty Block ready for Reshape.
type Block struct {
	rows   int
	epochs int
	data   []float64
}

// NewBlock returns a zeroed rows × epochs Block.
func NewBlock(rows, epochs int) Block {
	var b Block
	b.Reshape(rows, epochs)
	Zero(b.data)
	return b
}

// Reshape resizes the Block to rows × epochs, reusing the backing array
// when it is large enough (the scratch-reuse contract of the evaluator: a
// steady-state Reshape performs no allocation).  The contents after Reshape
// are unspecified; callers must overwrite every element they read.
func (b *Block) Reshape(rows, epochs int) {
	n := rows * epochs
	if cap(b.data) < n {
		b.data = make([]float64, n)
	}
	b.data = b.data[:n]
	b.rows, b.epochs = rows, epochs
}

// Rows returns the number of rows.
func (b *Block) Rows() int { return b.rows }

// Epochs returns the number of epochs per row.
func (b *Block) Epochs() int { return b.epochs }

// Row returns row r as a slice aliasing the Block's backing array.  The
// slice's capacity is clipped to the row boundary, so writes (and appends)
// through it can never touch a neighbouring row.
func (b *Block) Row(r int) []float64 {
	lo := r * b.epochs
	hi := lo + b.epochs
	return b.data[lo:hi:hi]
}

// Data returns the whole backing slice (rows × epochs values, row r at
// [r*epochs, (r+1)*epochs)).  Useful for whole-matrix operations like Zero;
// the aliasing contract of Row applies to it unchanged.
func (b *Block) Data() []float64 { return b.data }
