// Package vm models the virtual machines that GreenNebula manages: their
// resource footprint, their power draw, and the synthetic HPC workload the
// paper uses for its validation experiments (CPU-bound VMs that also dirty a
// steady stream of disk data).
package vm

import (
	"errors"
	"fmt"
	"sort"
)

// VM describes one virtual machine.
type VM struct {
	// ID uniquely identifies the VM.
	ID string
	// VCPUs is the number of virtual CPUs.
	VCPUs int
	// MemoryMB is the RAM size.
	MemoryMB int
	// DiskMB is the virtual disk size.
	DiskMB int
	// PowerW is the average power the VM adds to its host while running.
	PowerW float64
	// DiskDirtyMBPerHour is how much disk data the workload writes per
	// hour (the paper's synthetic app writes 110 MB/h).
	DiskDirtyMBPerHour float64
	// MemDirtyMBPerSecond is how fast the workload dirties memory pages,
	// which drives the pre-copy rounds of a live migration.
	MemDirtyMBPerSecond float64
}

// Validate reports an unusable VM description.
func (v VM) Validate() error {
	switch {
	case v.ID == "":
		return errors.New("vm: empty ID")
	case v.VCPUs <= 0:
		return fmt.Errorf("vm %s: need at least one vCPU", v.ID)
	case v.MemoryMB <= 0 || v.DiskMB <= 0:
		return fmt.Errorf("vm %s: memory and disk must be positive", v.ID)
	case v.PowerW < 0 || v.DiskDirtyMBPerHour < 0 || v.MemDirtyMBPerSecond < 0:
		return fmt.Errorf("vm %s: negative rates", v.ID)
	}
	return nil
}

// FootprintMB is the amount of state that must move in a migration if
// nothing has been pre-replicated: memory plus disk.
func (v VM) FootprintMB() float64 {
	return float64(v.MemoryMB + v.DiskMB)
}

// NewHPCVM returns a VM configured like the paper's validation workload:
// one vCPU, 512 MB of memory, a 5 GB disk, 30 W of power, a CPU-intensive
// synthetic application writing 110 MB of disk data per hour.
func NewHPCVM(id string) VM {
	return VM{
		ID:                  id,
		VCPUs:               1,
		MemoryMB:            512,
		DiskMB:              5 * 1024,
		PowerW:              30,
		DiskDirtyMBPerHour:  110,
		MemDirtyMBPerSecond: 0.03,
	}
}

// Fleet is a set of VMs.
type Fleet []VM

// NewHPCFleet returns n paper-style VMs named with the given prefix.
func NewHPCFleet(prefix string, n int) Fleet {
	out := make(Fleet, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, NewHPCVM(fmt.Sprintf("%s-%03d", prefix, i)))
	}
	return out
}

// TotalPowerW is the aggregate power of the fleet.
func (f Fleet) TotalPowerW() float64 {
	total := 0.0
	for _, v := range f {
		total += v.PowerW
	}
	return total
}

// SortByFootprint orders the fleet smallest-footprint first, the order in
// which GreenNebula migrates VMs out of a donor datacenter.
func (f Fleet) SortByFootprint() Fleet {
	out := make(Fleet, len(f))
	copy(out, f)
	sort.Slice(out, func(i, j int) bool {
		if out[i].FootprintMB() != out[j].FootprintMB() {
			return out[i].FootprintMB() < out[j].FootprintMB()
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// IsSortedByFootprint reports whether the fleet is already in the
// (footprint, ID) order SortByFootprint produces, letting callers that
// maintain sorted fleets skip the copy-and-sort.
func (f Fleet) IsSortedByFootprint() bool {
	for i := 1; i < len(f); i++ {
		a, b := f[i-1].FootprintMB(), f[i].FootprintMB()
		if a > b || (a == b && f[i-1].ID > f[i].ID) {
			return false
		}
	}
	return true
}

// SelectByPower picks VMs from the fleet (smallest footprint first) until
// their combined power reaches powerW, returning the selection.  It mirrors
// how a donor datacenter chooses which VMs to migrate out to shed a given
// amount of power.
func (f Fleet) SelectByPower(powerW float64) Fleet {
	var out Fleet
	remaining := powerW
	for _, v := range f.SortByFootprint() {
		if remaining <= 0 {
			break
		}
		out = append(out, v)
		remaining -= v.PowerW
	}
	return out
}
