package vm

import (
	"math"
	"testing"
)

func TestNewHPCVMMatchesPaperConfig(t *testing.T) {
	v := NewHPCVM("vm-1")
	if err := v.Validate(); err != nil {
		t.Fatalf("paper VM invalid: %v", err)
	}
	if v.VCPUs != 1 || v.MemoryMB != 512 || v.DiskMB != 5*1024 {
		t.Errorf("unexpected shape: %+v", v)
	}
	if v.PowerW != 30 {
		t.Errorf("power = %v, want 30 W", v.PowerW)
	}
	if v.DiskDirtyMBPerHour != 110 {
		t.Errorf("disk dirty rate = %v, want 110 MB/h", v.DiskDirtyMBPerHour)
	}
	if v.FootprintMB() != 512+5*1024 {
		t.Errorf("footprint = %v", v.FootprintMB())
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*VM)
	}{
		{"empty id", func(v *VM) { v.ID = "" }},
		{"no cpus", func(v *VM) { v.VCPUs = 0 }},
		{"no memory", func(v *VM) { v.MemoryMB = 0 }},
		{"no disk", func(v *VM) { v.DiskMB = 0 }},
		{"negative power", func(v *VM) { v.PowerW = -1 }},
		{"negative dirty rate", func(v *VM) { v.DiskDirtyMBPerHour = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := NewHPCVM("x")
			tc.mutate(&v)
			if err := v.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestFleetHelpers(t *testing.T) {
	fleet := NewHPCFleet("vm", 9)
	if len(fleet) != 9 {
		t.Fatalf("fleet size %d", len(fleet))
	}
	// The paper's 9 × 30 W validation fleet.
	if got := fleet.TotalPowerW(); math.Abs(got-270) > 1e-9 {
		t.Errorf("TotalPowerW = %v, want 270", got)
	}
	names := map[string]bool{}
	for _, v := range fleet {
		if names[v.ID] {
			t.Fatalf("duplicate VM id %s", v.ID)
		}
		names[v.ID] = true
	}
}

func TestSortByFootprintAndSelectByPower(t *testing.T) {
	small := NewHPCVM("small")
	small.DiskMB = 1024
	big := NewHPCVM("big")
	big.DiskMB = 20 * 1024
	mid := NewHPCVM("mid")
	fleet := Fleet{big, small, mid}

	sorted := fleet.SortByFootprint()
	if sorted[0].ID != "small" || sorted[2].ID != "big" {
		t.Errorf("sort order: %v, %v, %v", sorted[0].ID, sorted[1].ID, sorted[2].ID)
	}
	// The original fleet must not be reordered.
	if fleet[0].ID != "big" {
		t.Error("SortByFootprint mutated its receiver")
	}

	// Selecting 45 W picks the two smallest VMs (30 W each → 60 W ≥ 45 W).
	selected := fleet.SelectByPower(45)
	if len(selected) != 2 {
		t.Fatalf("selected %d VMs, want 2", len(selected))
	}
	if selected[0].ID != "small" || selected[1].ID != "mid" {
		t.Errorf("selected %v, %v; want smallest footprints first", selected[0].ID, selected[1].ID)
	}
	if len(fleet.SelectByPower(0)) != 0 {
		t.Error("selecting zero power should pick nothing")
	}
	if len(fleet.SelectByPower(1e9)) != len(fleet) {
		t.Error("selecting more power than the fleet has should pick everything")
	}
}
