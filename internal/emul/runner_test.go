package emul

import (
	"runtime"
	"testing"
)

// stripNanos zeroes the wall-clock fields so results can be compared
// bitwise; everything else in a Result is deterministic.
func stripNanos(res *Result) {
	res.AvgScheduleNanos = 0
	for i := range res.Trace {
		res.Trace[i].SchedulerNanos = 0
	}
}

// sameResult compares two Results field by field (after stripNanos) and
// reports the first difference.
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	stripNanos(a)
	stripNanos(b)
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("%s: trace length %d vs %d", label, len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("%s: trace row %d differs:\n  a=%+v\n  b=%+v", label, i, a.Trace[i], b.Trace[i])
		}
	}
	if a.TotalGreenKWh != b.TotalGreenKWh || a.TotalBrownKWh != b.TotalBrownKWh ||
		a.TotalDemandKWh != b.TotalDemandKWh || a.TotalMigrationKWh != b.TotalMigrationKWh ||
		a.Migrations != b.Migrations || a.GreenFraction != b.GreenFraction {
		t.Fatalf("%s: summary differs:\n  a=%+v\n  b=%+v", label, a, b)
	}
}

// TestDataPlaneEquivalence pins the tentpole contract: the metadata plane
// and the payload plane produce bit-identical emulation results — same
// migrations, same migrated bytes, same energy, same trace.
func TestDataPlaneEquivalence(t *testing.T) {
	cfg := testConfig(t, 24)
	cfg.DataPlane = "payload"
	payload, err := Run(cfg)
	if err != nil {
		t.Fatalf("payload plane: %v", err)
	}
	cfg.DataPlane = "meta"
	meta, err := Run(cfg)
	if err != nil {
		t.Fatalf("meta plane: %v", err)
	}
	if payload.Migrations == 0 {
		t.Fatal("test config produced no migrations; equivalence is vacuous")
	}
	sameResult(t, "payload vs meta", payload, meta)
}

// TestParallelPipelineMatchesSequential pins the migration-execution
// pipeline's determinism: per-destination sharding with an ordered merge
// must make any parallelism level bit-identical to sequential execution.
// Run under -race by make test.
func TestParallelPipelineMatchesSequential(t *testing.T) {
	cfg := testConfig(t, 24)
	cfg.Parallelism = 1
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 2 * runtime.GOMAXPROCS(0)
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Migrations == 0 {
		t.Fatal("test config produced no migrations; determinism check is vacuous")
	}
	sameResult(t, "sequential vs parallel", seq, par)
}

// TestRunnerReuseAcrossRuns pins the Runner's scratch hygiene: a second
// Run on the same Runner (reused traces, scheduler LP structure, scratch
// blocks, fleets) must be bit-identical to the first.
func TestRunnerReuseAcrossRuns(t *testing.T) {
	r, err := NewRunner(testConfig(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	first, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "first vs second run", first, second)
}

func TestUnknownDataPlane(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.DataPlane = "quantum"
	if _, err := Run(cfg); err == nil {
		t.Error("unknown data plane should error")
	}
}
