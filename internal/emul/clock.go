package emul

import "time"

// nowNanos returns a monotonic-ish timestamp for measuring scheduler
// latency.  It is a separate function so tests could stub it if needed.
func nowNanos() int64 { return time.Now().UnixNano() }
