package emul

import (
	"testing"

	"greencloud/internal/lp"
	"greencloud/internal/sched"
)

// copyRecords snapshots a tick's scratch-aliased records with the
// non-deterministic wall-clock field zeroed.
func copyRecords(tick *Tick) []HourRecord {
	out := append([]HourRecord(nil), tick.Records...)
	for i := range out {
		out[i].SchedulerNanos = 0
	}
	return out
}

// TestStepMatchesRun pins the streamed API against the batch path: a manual
// Start + Step loop must produce the exact Result Run produces.
func TestStepMatchesRun(t *testing.T) {
	cfg := testConfig(t, 24)
	batch, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	streamed := &Result{}
	for i := 0; i < cfg.Hours; i++ {
		tick, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		if tick.Index != i {
			t.Fatalf("tick %d reported index %d", i, tick.Index)
		}
		if tick.Plan == nil {
			t.Fatalf("tick %d carries no plan", i)
		}
		streamed.Accumulate(tick)
	}
	if streamed.TotalDemandKWh > 0 {
		streamed.GreenFraction = streamed.TotalGreenKWh / streamed.TotalDemandKWh
	}
	sameResult(t, "batch vs streamed", batch, streamed)
}

// TestReplayMatchesStep pins the snapshot-restore substrate: replaying the
// recorded migration schedules against a fresh Start reproduces the exact
// per-hour records and leaves the runner in a state from which a warm Step
// (using the recording runner's basis) continues bit-identically, with zero
// cold fallbacks.
func TestReplayMatchesStep(t *testing.T) {
	cfg := testConfig(t, 24)
	live, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Start(); err != nil {
		t.Fatal(err)
	}
	const split = 12 // replay this many ticks, then resume stepping
	var schedules [][]sched.Migration
	var liveRecords [][]HourRecord
	var splitBasis *lp.Basis
	totalCold := 0
	for i := 0; i < cfg.Hours; i++ {
		tick, err := live.Step()
		if err != nil {
			t.Fatal(err)
		}
		totalCold += tick.LPStats.ColdFallbacks
		if i < split {
			schedules = append(schedules, append([]sched.Migration(nil), tick.Moves...))
		}
		liveRecords = append(liveRecords, copyRecords(tick))
		if i == split-1 {
			// A Basis is immutable once captured, so the split-point basis
			// can be held across the rest of the live run — exactly what a
			// snapshot persists.
			if splitBasis = live.WarmBasis(); splitBasis == nil {
				t.Fatal("no warm basis to snapshot at the split point")
			}
		}
	}
	if totalCold != 0 {
		t.Fatalf("live run had %d cold fallbacks, want 0", totalCold)
	}

	resumed, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Start(); err != nil {
		t.Fatal(err)
	}
	for i, moves := range schedules {
		tick, err := resumed.Replay(moves)
		if err != nil {
			t.Fatal(err)
		}
		if tick.Plan != nil || tick.SchedulerNanos != 0 {
			t.Fatalf("replay tick %d did planning work", i)
		}
		got := copyRecords(tick)
		for j := range got {
			if got[j] != liveRecords[i][j] {
				t.Fatalf("replay tick %d record %d differs:\n  live=%+v\n  rep =%+v", i, j, liveRecords[i][j], got[j])
			}
		}
	}
	if resumed.Ticks() != split {
		t.Fatalf("resumed at tick %d, want %d", resumed.Ticks(), split)
	}

	// Warm handoff: install the basis the live runner carried at the split
	// and keep stepping; every subsequent tick must match the live run
	// bit-for-bit with zero cold fallbacks.  (Without the handoff the first
	// resumed solve would be cold — still correct, but not warm.)
	resumed.SetWarmBasis(splitBasis)
	for i := split; i < cfg.Hours; i++ {
		tick, err := resumed.Step()
		if err != nil {
			t.Fatal(err)
		}
		if tick.LPStats.ColdFallbacks != 0 {
			t.Fatalf("resumed tick %d fell back cold", i)
		}
		got := copyRecords(tick)
		for j := range got {
			if got[j] != liveRecords[i][j] {
				t.Fatalf("resumed tick %d record %d differs:\n  live=%+v\n  res =%+v", i, j, liveRecords[i][j], got[j])
			}
		}
	}
}

// TestGreenScaleStreaming pins the streamed-weather path: scaling a site's
// green production changes forecasts and realized green coherently, scale 1
// is bit-identical to the untouched trace, and the adjustment is a pure RHS
// rewrite — the warm chain never falls back cold.
func TestGreenScaleStreaming(t *testing.T) {
	cfg := testConfig(t, 12)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	name := cfg.Datacenters[0].Name
	if err := r.SetGreenScale(name, 1); err != nil {
		t.Fatal(err)
	}
	unit, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "scale-1 vs untouched", base, unit)

	if err := r.SetGreenScale(name, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	cold := 0
	diff := false
	for i := 0; i < cfg.Hours; i++ {
		tick, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			cold += tick.LPStats.ColdFallbacks
		}
		if tick.Records[0].GreenKW != base.Trace[i*len(cfg.Datacenters)].GreenKW {
			diff = true
		}
	}
	if !diff {
		t.Fatal("green scale 0.25 never changed the scaled site's realized green")
	}
	if cold != 0 {
		t.Fatalf("scaled warm chain had %d cold fallbacks", cold)
	}

	if err := r.SetGreenScale("no-such-dc", 1); err == nil {
		t.Error("unknown datacenter accepted")
	}
	if err := r.SetGreenScale(name, -1); err == nil {
		t.Error("negative scale accepted")
	}
}
