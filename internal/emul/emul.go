// Package emul is the GreenNebula emulation harness: it wires together the
// within-datacenter managers (internal/nebula), the multi-datacenter
// scheduler (internal/sched), the WAN and live-migration models
// (internal/wan, internal/migrate), GDFS (internal/gdfs) and the green
// energy traces of the selected sites (internal/location) to reproduce the
// follow-the-renewables experiments of Section V of the paper — in
// particular the day-long load-distribution trace of Fig. 15.
//
// # Runner and scratch ownership
//
// A Runner owns every piece of reusable state an emulation needs — the
// green/PUE year traces (series.Block rows), the per-hour scheduler view
// (states, forecast and PUE horizon windows, placements), the migration
// pipeline's shards and the per-datacenter fleets — so the hour loop does
// not allocate.  The rules:
//
//   - Scratch is owned by the Runner and valid only within the Run call
//     that is using it; nothing reachable from a returned Result aliases
//     it (each Run allocates a fresh Result and Trace).
//   - sched.DatacenterState rows handed to the scheduler point into the
//     Runner's forecast/PUE scratch; the scheduler copies what it keeps.
//   - A Runner is single-goroutine: one Run at a time.  Repeated Run calls
//     are independent — the scheduler's warm-start basis is dropped
//     between runs (sched.Reset), so every Run is bit-identical to a
//     fresh one.
package emul

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"greencloud/internal/gdfs"
	"greencloud/internal/location"
	"greencloud/internal/lp"
	"greencloud/internal/migrate"
	"greencloud/internal/nebula"
	"greencloud/internal/predict"
	"greencloud/internal/sched"
	"greencloud/internal/series"
	"greencloud/internal/vm"
	"greencloud/internal/wan"
)

// DatacenterConfig describes one emulated datacenter.
type DatacenterConfig struct {
	// Name identifies the datacenter.
	Name string
	// Site provides the green-energy and PUE traces.
	Site *location.Site
	// CapacityKW is the IT capacity of the datacenter.
	CapacityKW float64
	// SolarKW and WindKW are the on-site plant sizes.
	SolarKW float64
	WindKW  float64
	// Hosts is the number of physical machines to emulate.  Zero sizes the
	// datacenter just large enough for the whole VM fleet.
	Hosts int
}

// Config describes a whole emulation run.
type Config struct {
	// Datacenters are the sites of the network (the paper uses three).
	Datacenters []DatacenterConfig
	// VMs is the workload to host (the paper's validation uses 9 HPC VMs;
	// the Fig. 15 experiment scales the same shape up to the datacenter
	// size).
	VMs vm.Fleet
	// StartHour is the hour of the TMY year at which the emulation starts.
	StartHour int
	// Hours is the length of the emulation.
	Hours int
	// HorizonHours is the scheduler's prediction horizon (default 48).
	HorizonHours int
	// MigrationFraction is the conservative both-ends accounting fraction.
	MigrationFraction float64
	// Link is the WAN link used between every pair of datacenters.
	Link wan.Link
	// Predictor selects the green-energy predictor ("perfect",
	// "persistence" or "diurnal"; default "perfect", as in the paper).
	Predictor string
	// DataPlane selects the GDFS block-store backing the emulated disks:
	// "" or "meta" is the metadata plane (a replica is {version, length,
	// digest} scalars, no payload bytes ever materialize); "payload"
	// stores real buffers, exercising the same store the rpc/TCP path
	// uses.  Both planes produce bit-identical emulation results.
	DataPlane string
	// Parallelism caps the migration-execution pipeline's worker
	// goroutines (0 = GOMAXPROCS, 1 = sequential).  Results are
	// bit-identical at any setting: moves are sharded per destination and
	// merged in a fixed order.
	Parallelism int
	// LPTimeout, when positive, bounds each scheduling round's partition
	// LP solve (sched.Options.LPTimeout): a round that overruns degrades
	// to the static greedy split instead of blocking the hour.  A serving
	// daemon sets this so a tick can never stall its control loop.
	LPTimeout time.Duration
}

// HourRecord is one datacenter-hour of the emulation trace — the data behind
// Fig. 15.
type HourRecord struct {
	Hour           int
	Datacenter     string
	GreenKW        float64
	LoadKW         float64
	PUEOverheadKW  float64
	MigrationKW    float64
	BrownKW        float64
	VMCount        int
	MigrationsIn   int
	MigrationsOut  int
	MigratedBytes  int64
	SchedulerNanos int64
}

// Result is the output of an emulation run.
type Result struct {
	// Trace holds one record per datacenter per hour.
	Trace []HourRecord
	// TotalGreenKWh, TotalBrownKWh and TotalMigrationKWh summarize the run.
	TotalGreenKWh     float64
	TotalBrownKWh     float64
	TotalDemandKWh    float64
	TotalMigrationKWh float64
	// Migrations is the total number of VM migrations performed.
	Migrations int
	// AvgScheduleNanos is the average time the scheduler needed to compute
	// a migration schedule.
	AvgScheduleNanos int64
	// GreenFraction is the fraction of total demand covered by green
	// energy during the run.
	GreenFraction float64
}

// Errors returned by Run.
var (
	ErrNoDatacenters = errors.New("emul: need at least two datacenters")
	ErrNoVMs         = errors.New("emul: need at least one VM")
)

// maxGDFSDiskMB caps how much of each VM's disk is materialized in the
// in-memory GDFS during an emulation.  The migration and re-replication
// behaviour only depends on the recently dirtied blocks (110 MB/h in the
// paper's workload), so representing a 64 MB working-set window of the 5 GB
// disk keeps memory bounded without changing what the experiment measures.
const maxGDFSDiskMB = 64

// Run executes the emulation.  It is the one-shot convenience around
// NewRunner + Runner.Run.
func Run(cfg Config) (*Result, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// moveShard is the migration pipeline's unit of work: all of one hour's
// moves into a single destination datacenter, executed in schedule order.
// Shards run concurrently — a datacenter is never donor and receiver in
// the same round, so no two shards place into or remove from a manager
// whose packing another shard is reading — and their accumulators are
// merged in destination order, making the pipeline's output independent of
// goroutine interleaving.
type moveShard struct {
	moves    []int // indices into the hour's move list, schedule order
	executed []int // moves actually placed (receiver had room)
	failed   []int // moves rolled back sequentially after the join
	energy   []float64
	bytes    []int64
	in, out  []int
	err      error
}

// Runner owns the reusable state of an emulation (see the package comment
// for the scratch-ownership rules).  Create one with NewRunner and call
// Run; repeated Runs reuse the traces, predictors, scheduler LP structure
// and every scratch buffer.
type Runner struct {
	cfg     Config
	names   []string
	dcIndex map[string]int
	network *wan.Network

	// Year traces, one row per datacenter, backed by a single Block when
	// every site shares a trace length (they do for one catalog).
	green [][]float64
	pue   [][]float64

	predictors     []predict.Predictor
	scheduler      *sched.Scheduler
	totalVMPowerKW float64
	vmPaths        []string
	vmIndex        map[string]int

	// Per-run cluster state, rebuilt at the top of each Run.
	managers []*nebula.Datacenter
	master   *gdfs.Master
	cluster  *gdfs.Cluster
	clients  []*gdfs.Client
	files    []*gdfs.FileInfo
	home     []int
	fleets   []vm.Fleet

	// Per-hour scratch.  windows holds the forecast rows (0..n-1) and PUE
	// rows (n..2n-1) of the scheduler's horizon view.
	states     []sched.DatacenterState
	windows    series.Block
	placements map[string]vm.Fleet
	migEnergy  []float64
	migBytes   []int64
	migIn      []int
	migOut     []int
	shards     []moveShard
	movedOut   map[string]struct{}

	// Streaming state: the tick counter advanced by Step/Replay, the
	// per-datacenter green-production scale (streamed weather updates;
	// all-ones by default, which multiplies exactly) and the Tick scratch
	// the step API hands back.
	hour       int
	greenScale []float64
	tick       Tick
}

// Tick is the outcome of one emulated hour produced by Step (or Replay).
// Records and Moves alias Runner-owned scratch and are valid only until the
// next Step/Replay call; callers that retain them must copy.
type Tick struct {
	// Index is the 0-based tick number since Start.
	Index int
	// AbsHour is the absolute hour of the year trace this tick emulated.
	AbsHour int
	// Records holds one HourRecord per datacenter, in configuration order.
	Records []HourRecord
	// Plan is the scheduling round's partition plan (nil on Replay ticks,
	// which execute a recorded schedule without re-planning).
	Plan *sched.Plan
	// Moves is the migration schedule this tick executed — the replay log a
	// snapshot needs to reconstruct fleet and disk state deterministically.
	Moves []sched.Migration
	// Migrations is how many scheduled moves actually executed (a receiver
	// at capacity rolls the move back).
	Migrations int
	// LPStats is the partition LP's work for this round; ColdFallbacks
	// stays 0 across healthy warm ticks.
	LPStats lp.Stats
	// Degraded reports a tick whose plan fell back to the static greedy
	// split (solver failure or LPTimeout).
	Degraded bool
	// SchedulerNanos is the wall-clock planning time of this tick (zero on
	// Replay); it is the one non-deterministic field.
	SchedulerNanos int64
}

// NewRunner validates the configuration and builds the immutable parts of
// an emulation: WAN mesh, green/PUE traces, predictors, scheduler.
func NewRunner(cfg Config) (*Runner, error) {
	if len(cfg.Datacenters) < 2 {
		return nil, ErrNoDatacenters
	}
	if len(cfg.VMs) == 0 {
		return nil, ErrNoVMs
	}
	if cfg.Hours <= 0 {
		cfg.Hours = 24
	}
	if cfg.HorizonHours <= 0 {
		cfg.HorizonHours = 48
	}
	if cfg.MigrationFraction <= 0 {
		cfg.MigrationFraction = 1
	}
	if cfg.Link.BandwidthMbps == 0 {
		cfg.Link = wan.DefaultLink
	}
	switch cfg.DataPlane {
	case "", "meta", "payload":
	default:
		return nil, fmt.Errorf("emul: unknown data plane %q", cfg.DataPlane)
	}

	n := len(cfg.Datacenters)
	r := &Runner{cfg: cfg}
	r.names = make([]string, n)
	for i, dc := range cfg.Datacenters {
		if dc.Site == nil {
			return nil, fmt.Errorf("emul: datacenter %q has no site", dc.Name)
		}
		r.names[i] = dc.Name
	}
	network, err := wan.FullMesh(r.names, cfg.Link)
	if err != nil {
		return nil, err
	}
	r.network = network
	r.dcIndex = make(map[string]int, n)
	for i, name := range r.names {
		r.dcIndex[name] = i
	}

	// Green production and PUE traces per datacenter (hourly, UTC clock).
	// All sites of a catalog share the trace length, letting one Block back
	// every row; mixed lengths fall back to per-row slices.
	r.green = make([][]float64, n)
	r.pue = make([][]float64, n)
	uniform := true
	first := -1
	for _, dc := range cfg.Datacenters {
		alpha, _, _ := dc.Site.HourlyProfilesUTC()
		if first < 0 {
			first = alpha.Len()
		} else if alpha.Len() != first {
			uniform = false
		}
	}
	var yearBlock series.Block
	if uniform {
		yearBlock = series.NewBlock(2*n, first)
	}
	for i, dc := range cfg.Datacenters {
		alpha, beta, pueSeries := dc.Site.HourlyProfilesUTC()
		var g, p []float64
		if uniform {
			g, p = yearBlock.Row(i), yearBlock.Row(n+i)
		} else {
			g = make([]float64, alpha.Len())
			p = make([]float64, alpha.Len())
		}
		series.WeightedSum(g, dc.SolarKW, alpha.Values(), dc.WindKW, beta.Values())
		copy(p, pueSeries.Values())
		r.green[i] = g
		r.pue[i] = p
	}

	r.predictors = make([]predict.Predictor, n)
	for i := range cfg.Datacenters {
		switch cfg.Predictor {
		case "", "perfect":
			r.predictors[i] = &predict.Perfect{Trace: r.green[i]}
		case "persistence":
			r.predictors[i] = &predict.Persistence{Trace: r.green[i]}
		case "diurnal":
			r.predictors[i] = &predict.Diurnal{Trace: r.green[i]}
		default:
			return nil, fmt.Errorf("emul: unknown predictor %q", cfg.Predictor)
		}
	}

	r.scheduler = sched.New(sched.Options{
		HorizonHours:      cfg.HorizonHours,
		MigrationFraction: cfg.MigrationFraction,
		LPTimeout:         cfg.LPTimeout,
	})
	r.totalVMPowerKW = cfg.VMs.TotalPowerW() / 1000

	r.vmPaths = make([]string, len(cfg.VMs))
	r.vmIndex = make(map[string]int, len(cfg.VMs))
	for vi, machine := range cfg.VMs {
		r.vmPaths[vi] = "/vm/" + machine.ID + "/disk"
		r.vmIndex[machine.ID] = vi
	}

	// Per-run and per-hour scratch, allocated once.
	r.managers = make([]*nebula.Datacenter, n)
	r.clients = make([]*gdfs.Client, n)
	r.files = make([]*gdfs.FileInfo, len(cfg.VMs))
	r.home = make([]int, len(cfg.VMs))
	r.fleets = make([]vm.Fleet, n)
	r.states = make([]sched.DatacenterState, n)
	r.windows = series.NewBlock(2*n, cfg.HorizonHours)
	r.placements = make(map[string]vm.Fleet, n)
	r.migEnergy = make([]float64, n)
	r.migBytes = make([]int64, n)
	r.migIn = make([]int, n)
	r.migOut = make([]int, n)
	r.shards = make([]moveShard, n)
	for i := range r.shards {
		r.shards[i].energy = make([]float64, n)
		r.shards[i].bytes = make([]int64, n)
		r.shards[i].in = make([]int, n)
		r.shards[i].out = make([]int, n)
	}
	r.movedOut = make(map[string]struct{}, len(cfg.VMs))
	r.greenScale = make([]float64, n)
	for i := range r.greenScale {
		r.greenScale[i] = 1
	}
	r.tick.Records = make([]HourRecord, n)
	return r, nil
}

// sortFleet orders a fleet in SortByFootprint order in place (footprint
// ascending, ties by ID — a total order, so the result is deterministic).
func sortFleet(f vm.Fleet) {
	sort.Slice(f, func(i, j int) bool {
		fi, fj := f[i].FootprintMB(), f[j].FootprintMB()
		if fi != fj {
			return fi < fj
		}
		return f[i].ID < f[j].ID
	})
}

// loadKWOf sums a datacenter fleet's IT power in fleet order.
func (r *Runner) loadKWOf(i int) float64 {
	total := 0.0
	for _, machine := range r.fleets[i] {
		total += machine.PowerW
	}
	return total / 1000
}

// reset rebuilds the per-run state: fresh managers and GDFS cluster, all
// VMs placed at the first datacenter, one disk file per VM, fleets sorted.
func (r *Runner) reset() error {
	cfg := &r.cfg
	n := len(cfg.Datacenters)
	r.master = gdfs.NewMaster(n)
	r.cluster = gdfs.NewCluster(r.master)
	for i, dc := range cfg.Datacenters {
		hosts := dc.Hosts
		if hosts == 0 {
			hosts = len(cfg.VMs) // enough for full replication of the fleet
		}
		r.managers[i] = nebula.NewUniformDatacenter(dc.Name, hosts)
		var store gdfs.BlockStore
		if cfg.DataPlane == "payload" {
			store = gdfs.NewWorker(gdfs.WorkerID(dc.Name))
		} else {
			store = gdfs.NewMetaWorker(gdfs.WorkerID(dc.Name))
		}
		if err := r.cluster.AddWorker(store, dc.Name); err != nil {
			return err
		}
		client, err := r.cluster.NewClient(gdfs.WorkerID(dc.Name))
		if err != nil {
			return err
		}
		r.clients[i] = client
		r.fleets[i] = r.fleets[i][:0]
	}

	// Initial placement: all VMs start at the first datacenter (the paper's
	// runs start with the load wherever the day begins greenest; starting
	// at a fixed site lets the first scheduling round move it).
	for vi, machine := range cfg.VMs {
		if _, err := r.managers[0].Place(machine); err != nil {
			return fmt.Errorf("emul: initial placement: %w", err)
		}
		r.home[vi] = 0
		diskMB := machine.DiskMB
		if diskMB > maxGDFSDiskMB {
			diskMB = maxGDFSDiskMB
		}
		fi, err := r.clients[0].Create(r.vmPaths[vi], int64(diskMB)<<20)
		if err != nil {
			return err
		}
		r.files[vi] = fi
	}
	r.fleets[0] = append(r.fleets[0], cfg.VMs...)
	sortFleet(r.fleets[0])
	r.scheduler.Reset()
	return nil
}

// Run executes the emulation batch-style: Start, then one Step per
// configured hour, summarized into a Result.  The returned Result is
// freshly allocated and does not alias the Runner's scratch.
func (r *Runner) Run() (*Result, error) {
	if err := r.Start(); err != nil {
		return nil, err
	}
	cfg := &r.cfg
	res := &Result{Trace: make([]HourRecord, 0, cfg.Hours*len(cfg.Datacenters))}
	var schedNanosTotal int64
	for hour := 0; hour < cfg.Hours; hour++ {
		tick, err := r.Step()
		if err != nil {
			return nil, err
		}
		schedNanosTotal += tick.SchedulerNanos
		res.Accumulate(tick)
	}
	if cfg.Hours > 0 {
		res.AvgScheduleNanos = schedNanosTotal / int64(cfg.Hours)
	}
	if res.TotalDemandKWh > 0 {
		res.GreenFraction = res.TotalGreenKWh / res.TotalDemandKWh
	}
	return res, nil
}

// Accumulate folds one tick into the running totals and appends copies of
// its records to the trace, exactly as the batch hour loop always has (same
// addition order, so batch and streamed accounting stay bit-identical).
func (res *Result) Accumulate(tick *Tick) {
	res.Migrations += tick.Migrations
	for i := range tick.Records {
		rec := &tick.Records[i]
		demandKW := rec.LoadKW + rec.PUEOverheadKW + rec.MigrationKW
		res.Trace = append(res.Trace, *rec)
		res.TotalDemandKWh += demandKW
		res.TotalBrownKWh += rec.BrownKW
		res.TotalGreenKWh += demandKW - rec.BrownKW
		res.TotalMigrationKWh += rec.MigrationKW
	}
}

// Start (re)initializes the streamed emulation: per-run cluster state is
// rebuilt, all VMs return to the first datacenter, the tick counter resets
// and the scheduler's warm basis is dropped (the LP structure survives).
// Streamed green-scale adjustments persist across Start — they are input
// state, not run state.
func (r *Runner) Start() error {
	if err := r.reset(); err != nil {
		return err
	}
	r.hour = 0
	return nil
}

// Ticks returns how many ticks have run since Start.
func (r *Runner) Ticks() int { return r.hour }

// Datacenters returns the configured datacenter names in order (a copy).
func (r *Runner) Datacenters() []string {
	return append([]string(nil), r.names...)
}

// WarmBasis exposes the scheduler's carried partition-LP basis for
// snapshotting; SetWarmBasis installs one (typically decoded from a
// snapshot) so the next Step re-plans warm.
func (r *Runner) WarmBasis() *lp.Basis     { return r.scheduler.WarmBasis() }
func (r *Runner) SetWarmBasis(b *lp.Basis) { r.scheduler.SetWarmBasis(b) }

// SetGreenScale ingests a streamed weather update: from the next tick on,
// datacenter name's green production — realized and forecast — is scaled by
// the given factor (1 restores the trace).  A scale change is a pure
// RHS rewrite of the partition LP, so the warm chain stays warm.
func (r *Runner) SetGreenScale(name string, scale float64) error {
	i, ok := r.dcIndex[name]
	if !ok {
		return fmt.Errorf("emul: unknown datacenter %q", name)
	}
	if scale < 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
		return fmt.Errorf("emul: invalid green scale %v", scale)
	}
	r.greenScale[i] = scale
	return nil
}

// Step emulates the next hour: build the scheduler's view, re-plan (a warm
// incremental re-solve of the structure-cached partition LP), execute the
// migration schedule, replicate, dirty disks and record the hour.  The
// returned Tick aliases Runner scratch (see Tick).
func (r *Runner) Step() (*Tick, error) {
	absHour := r.cfg.StartHour + r.hour
	if err := r.buildStates(absHour); err != nil {
		return nil, err
	}
	start := nowNanos()
	plan, err := r.scheduler.Partition(r.states, r.totalVMPowerKW)
	if err != nil {
		return nil, fmt.Errorf("emul: hour %d: %w", r.hour, err)
	}
	moves, err := r.scheduler.MigrationSchedule(r.states, r.placements, plan, r.network.Distance)
	if err != nil {
		return nil, err
	}
	elapsed := nowNanos() - start
	tick, err := r.finishTick(absHour, moves, elapsed)
	if err != nil {
		return nil, err
	}
	tick.Plan = plan
	tick.LPStats = plan.LPStats
	tick.Degraded = plan.Degraded
	return tick, nil
}

// Replay emulates the next hour by executing a previously recorded
// migration schedule without re-planning.  Given the same Start state and
// the same schedules in the same order, the fleet, disk and accounting
// state after each Replay is bit-identical to the Step that recorded it —
// this is how a daemon restores from a snapshot: replay the logged
// schedules (no LP work), then install the snapshotted basis and resume
// warm Steps.
func (r *Runner) Replay(moves []sched.Migration) (*Tick, error) {
	absHour := r.cfg.StartHour + r.hour
	if err := r.buildStates(absHour); err != nil {
		return nil, err
	}
	return r.finishTick(absHour, moves, 0)
}

// buildStates fills the scheduler's view of each datacenter in the Runner's
// scratch: forecast and PUE horizon windows are Block rows (forecasts
// scaled by any streamed weather update), the placements map points at the
// maintained (footprint-sorted) fleets so MigrationSchedule skips its
// copy-and-sort.
func (r *Runner) buildStates(absHour int) error {
	cfg := &r.cfg
	n := len(cfg.Datacenters)
	for i, dc := range cfg.Datacenters {
		forecast := r.windows.Row(i)
		if err := r.predictors[i].PredictInto(forecast, absHour%len(r.green[i])); err != nil {
			return err
		}
		if r.greenScale[i] != 1 {
			series.Scale(forecast, r.greenScale[i], forecast)
		}
		pues := r.windows.Row(n + i)
		fillWrapped(pues, r.pue[i], absHour)
		r.states[i] = sched.DatacenterState{
			Name:               dc.Name,
			CapacityKW:         dc.CapacityKW,
			CurrentLoadKW:      r.loadKWOf(i),
			GreenForecastKW:    forecast,
			PUE:                pues,
			GridPriceUSDPerKWh: dc.Site.GridPriceUSDPerKWh,
		}
		r.placements[dc.Name] = r.fleets[i]
	}
	return nil
}

// finishTick executes a migration schedule and completes the hour:
// re-replication, disk dirtying, per-datacenter records, tick advance.
func (r *Runner) finishTick(absHour int, moves []sched.Migration, elapsed int64) (*Tick, error) {
	cfg := &r.cfg
	hour := r.hour
	migrations, err := r.executeMoves(moves)
	if err != nil {
		return nil, err
	}

	// Background GDFS re-replication catches the destinations up.
	r.cluster.ReplicateOnce()

	// Simulate the hour: VMs dirty disk blocks at their home site.
	for vi := range cfg.VMs {
		machine := &cfg.VMs[vi]
		fi := r.files[vi]
		client := r.clients[r.home[vi]]
		dirtyBlocks := int(machine.DiskDirtyMBPerHour*(1<<20)/float64(fi.BlockSize)) + 1
		for b := 0; b < dirtyBlocks && b < len(fi.Blocks); b++ {
			block := (hour*dirtyBlocks + b) % len(fi.Blocks)
			if err := client.DirtyBlock(fi, block); err != nil {
				return nil, err
			}
		}
	}

	// Record the hour, one record per datacenter.
	tick := &r.tick
	*tick = Tick{Index: hour, AbsHour: absHour, Records: tick.Records[:0],
		Moves: moves, Migrations: migrations, SchedulerNanos: elapsed}
	for i, dc := range cfg.Datacenters {
		loadKW := r.loadKWOf(i)
		pue := r.pue[i][absHour%len(r.pue[i])]
		overheadKW := loadKW * (pue - 1)
		greenKW := r.green[i][absHour%len(r.green[i])]
		if r.greenScale[i] != 1 {
			greenKW *= r.greenScale[i]
		}
		migKW := r.migEnergy[i] // one-hour epochs: kWh == kW
		demandKW := loadKW + overheadKW + migKW
		brownKW := demandKW - greenKW
		if brownKW < 0 {
			brownKW = 0
		}
		tick.Records = append(tick.Records, HourRecord{
			Hour:           hour,
			Datacenter:     dc.Name,
			GreenKW:        greenKW,
			LoadKW:         loadKW,
			PUEOverheadKW:  overheadKW,
			MigrationKW:    migKW,
			BrownKW:        brownKW,
			VMCount:        len(r.fleets[i]),
			MigrationsIn:   r.migIn[i],
			MigrationsOut:  r.migOut[i],
			MigratedBytes:  r.migBytes[i],
			SchedulerNanos: elapsed,
		})
	}
	r.hour++
	return tick, nil
}

// fillWrapped fills dst with src values starting at absolute hour `from`,
// wrapping around the year trace.
func fillWrapped(dst, src []float64, from int) {
	start := from % len(src)
	for filled := 0; filled < len(dst); {
		n := copy(dst[filled:], src[start:])
		filled += n
		start = (start + n) % len(src)
	}
}

// executeMoves runs one hour's migration schedule: move VMs between
// managers, ship the stale GDFS blocks, account the energy.  Moves are
// sharded by destination datacenter and the shards run concurrently (up to
// cfg.Parallelism workers); per-shard accumulators merged in destination
// order make the result bit-identical to sequential execution.  It fills
// r.migEnergy/migBytes/migIn/migOut, updates r.home and the per-datacenter
// fleets, and returns the number of migrations performed.
func (r *Runner) executeMoves(moves []sched.Migration) (int, error) {
	n := len(r.cfg.Datacenters)
	for i := 0; i < n; i++ {
		r.migEnergy[i] = 0
		r.migBytes[i] = 0
		r.migIn[i] = 0
		r.migOut[i] = 0
		sh := &r.shards[i]
		sh.moves = sh.moves[:0]
		sh.executed = sh.executed[:0]
		sh.failed = sh.failed[:0]
		sh.err = nil
	}
	if len(moves) == 0 {
		return 0, nil
	}
	// Shard by destination, preserving schedule order within each shard.
	for mi, mv := range moves {
		toIdx, okT := r.dcIndex[mv.To]
		_, okF := r.dcIndex[mv.From]
		if !okF || !okT {
			return 0, fmt.Errorf("emul: migration between unknown datacenters %s→%s", mv.From, mv.To)
		}
		r.shards[toIdx].moves = append(r.shards[toIdx].moves, mi)
	}

	workers := r.cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	work := make(chan int, n)
	active := 0
	for i := 0; i < n; i++ {
		if len(r.shards[i].moves) > 0 {
			work <- i
			active++
		}
	}
	close(work)
	if workers > active {
		workers = active
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si := range work {
				r.runShard(si, moves)
			}
		}()
	}
	wg.Wait()

	// Deterministic merge in destination order, then sequential rollback
	// of the moves whose receiver was full.
	migrated := 0
	for si := 0; si < n; si++ {
		sh := &r.shards[si]
		if sh.err != nil {
			return 0, sh.err
		}
		if len(sh.moves) == 0 {
			continue
		}
		for d := 0; d < n; d++ {
			r.migEnergy[d] += sh.energy[d]
			r.migBytes[d] += sh.bytes[d]
			r.migIn[d] += sh.in[d]
			r.migOut[d] += sh.out[d]
		}
		migrated += len(sh.executed)
		for _, mi := range sh.failed {
			mv := &moves[mi]
			fromIdx := r.dcIndex[mv.From]
			if _, err := r.managers[fromIdx].Place(mv.VM); err != nil {
				return 0, fmt.Errorf("emul: lost VM %s: %v", mv.VM.ID, err)
			}
		}
	}

	// Apply the executed moves to the maintained fleets: compact the
	// donors first, then append-and-sort the receivers.
	clear(r.movedOut)
	for si := 0; si < n; si++ {
		for _, mi := range r.shards[si].executed {
			mv := &moves[mi]
			r.movedOut[mv.VM.ID] = struct{}{}
			r.home[r.vmIndex[mv.VM.ID]] = si
		}
	}
	for d := 0; d < n; d++ {
		if r.migOut[d] > 0 {
			kept := r.fleets[d][:0]
			for _, machine := range r.fleets[d] {
				if _, gone := r.movedOut[machine.ID]; !gone {
					kept = append(kept, machine)
				}
			}
			r.fleets[d] = kept
		}
	}
	for si := 0; si < n; si++ {
		for _, mi := range r.shards[si].executed {
			r.fleets[si] = append(r.fleets[si], moves[mi].VM)
		}
	}
	for d := 0; d < n; d++ {
		if r.migIn[d] > 0 {
			sortFleet(r.fleets[d])
		}
	}
	return migrated, nil
}

// runShard executes one destination's moves in schedule order.  It touches
// only shard-owned accumulators, the destination's manager (owned by this
// shard for the round), donor managers (Remove only, which is choice-free
// and commutative) and read-only GDFS metadata, so shards are data-race
// free and order-independent.
func (r *Runner) runShard(si int, moves []sched.Migration) {
	sh := &r.shards[si]
	for d := range sh.energy {
		sh.energy[d] = 0
		sh.bytes[d] = 0
		sh.in[d] = 0
		sh.out[d] = 0
	}
	for _, mi := range sh.moves {
		mv := &moves[mi]
		fromIdx := r.dcIndex[mv.From]
		machine, err := r.managers[fromIdx].Remove(mv.VM.ID)
		if err != nil {
			sh.err = err
			return
		}
		if _, err := r.managers[si].Place(machine); err != nil {
			// Receiver full: roll the move back after the join.
			sh.failed = append(sh.failed, mi)
			continue
		}
		pendingBytes, err := r.clients[fromIdx].PendingMigrationBytes(r.vmPaths[r.vmIndex[machine.ID]], gdfs.WorkerID(mv.To))
		if err != nil {
			sh.err = err
			return
		}
		result, err := migrate.Simulate(migrate.Plan{
			VM:          machine,
			From:        mv.From,
			To:          mv.To,
			DirtyDiskMB: float64(pendingBytes) / (1 << 20),
		}, r.network, migrate.Options{EpochHours: r.cfg.MigrationFraction})
		if err != nil {
			sh.err = err
			return
		}
		// The conservative accounting charges the migration at both ends
		// for MigrationFraction of the epoch.
		sh.energy[fromIdx] += result.ConservativeEnergyKWh
		sh.energy[si] += result.ConservativeEnergyKWh
		sh.bytes[fromIdx] += int64(result.TransferredMB * (1 << 20))
		sh.in[si]++
		sh.out[fromIdx]++
		sh.executed = append(sh.executed, mi)
	}
}
