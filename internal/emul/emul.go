// Package emul is the GreenNebula emulation harness: it wires together the
// within-datacenter managers (internal/nebula), the multi-datacenter
// scheduler (internal/sched), the WAN and live-migration models
// (internal/wan, internal/migrate), GDFS (internal/gdfs) and the green
// energy traces of the selected sites (internal/location) to reproduce the
// follow-the-renewables experiments of Section V of the paper — in
// particular the day-long load-distribution trace of Fig. 15.
package emul

import (
	"errors"
	"fmt"

	"greencloud/internal/gdfs"
	"greencloud/internal/location"
	"greencloud/internal/migrate"
	"greencloud/internal/nebula"
	"greencloud/internal/predict"
	"greencloud/internal/sched"
	"greencloud/internal/vm"
	"greencloud/internal/wan"
)

// DatacenterConfig describes one emulated datacenter.
type DatacenterConfig struct {
	// Name identifies the datacenter.
	Name string
	// Site provides the green-energy and PUE traces.
	Site *location.Site
	// CapacityKW is the IT capacity of the datacenter.
	CapacityKW float64
	// SolarKW and WindKW are the on-site plant sizes.
	SolarKW float64
	WindKW  float64
	// Hosts is the number of physical machines to emulate.  Zero sizes the
	// datacenter just large enough for the whole VM fleet.
	Hosts int
}

// Config describes a whole emulation run.
type Config struct {
	// Datacenters are the sites of the network (the paper uses three).
	Datacenters []DatacenterConfig
	// VMs is the workload to host (the paper's validation uses 9 HPC VMs;
	// the Fig. 15 experiment scales the same shape up to the datacenter
	// size).
	VMs vm.Fleet
	// StartHour is the hour of the TMY year at which the emulation starts.
	StartHour int
	// Hours is the length of the emulation.
	Hours int
	// HorizonHours is the scheduler's prediction horizon (default 48).
	HorizonHours int
	// MigrationFraction is the conservative both-ends accounting fraction.
	MigrationFraction float64
	// Link is the WAN link used between every pair of datacenters.
	Link wan.Link
	// Predictor selects the green-energy predictor ("perfect",
	// "persistence" or "diurnal"; default "perfect", as in the paper).
	Predictor string
}

// HourRecord is one datacenter-hour of the emulation trace — the data behind
// Fig. 15.
type HourRecord struct {
	Hour           int
	Datacenter     string
	GreenKW        float64
	LoadKW         float64
	PUEOverheadKW  float64
	MigrationKW    float64
	BrownKW        float64
	VMCount        int
	MigrationsIn   int
	MigrationsOut  int
	MigratedBytes  int64
	SchedulerNanos int64
}

// Result is the output of an emulation run.
type Result struct {
	// Trace holds one record per datacenter per hour.
	Trace []HourRecord
	// TotalGreenKWh, TotalBrownKWh and TotalMigrationKWh summarize the run.
	TotalGreenKWh     float64
	TotalBrownKWh     float64
	TotalDemandKWh    float64
	TotalMigrationKWh float64
	// Migrations is the total number of VM migrations performed.
	Migrations int
	// AvgScheduleNanos is the average time the scheduler needed to compute
	// a migration schedule.
	AvgScheduleNanos int64
	// GreenFraction is the fraction of total demand covered by green
	// energy during the run.
	GreenFraction float64
}

// Errors returned by Run.
var (
	ErrNoDatacenters = errors.New("emul: need at least two datacenters")
	ErrNoVMs         = errors.New("emul: need at least one VM")
)

// maxGDFSDiskMB caps how much of each VM's disk is materialized in the
// in-memory GDFS during an emulation.  The migration and re-replication
// behaviour only depends on the recently dirtied blocks (110 MB/h in the
// paper's workload), so representing a 64 MB working-set window of the 5 GB
// disk keeps memory bounded without changing what the experiment measures.
const maxGDFSDiskMB = 64

// Run executes the emulation.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Datacenters) < 2 {
		return nil, ErrNoDatacenters
	}
	if len(cfg.VMs) == 0 {
		return nil, ErrNoVMs
	}
	if cfg.Hours <= 0 {
		cfg.Hours = 24
	}
	if cfg.HorizonHours <= 0 {
		cfg.HorizonHours = 48
	}
	if cfg.MigrationFraction <= 0 {
		cfg.MigrationFraction = 1
	}
	if cfg.Link.BandwidthMbps == 0 {
		cfg.Link = wan.DefaultLink
	}

	names := make([]string, len(cfg.Datacenters))
	for i, dc := range cfg.Datacenters {
		if dc.Site == nil {
			return nil, fmt.Errorf("emul: datacenter %q has no site", dc.Name)
		}
		names[i] = dc.Name
	}
	network, err := wan.FullMesh(names, cfg.Link)
	if err != nil {
		return nil, err
	}

	// Green production and PUE traces per datacenter (hourly, UTC clock).
	greenTrace := make([][]float64, len(cfg.Datacenters))
	pueTrace := make([][]float64, len(cfg.Datacenters))
	for i, dc := range cfg.Datacenters {
		alpha, beta, pueSeries := dc.Site.HourlyProfilesUTC()
		hours := alpha.Len()
		g := make([]float64, hours)
		p := make([]float64, hours)
		for h := 0; h < hours; h++ {
			g[h] = alpha.At(h)*dc.SolarKW + beta.At(h)*dc.WindKW
			p[h] = pueSeries.At(h)
		}
		greenTrace[i] = g
		pueTrace[i] = p
	}

	predictors := make([]predict.Predictor, len(cfg.Datacenters))
	for i := range cfg.Datacenters {
		switch cfg.Predictor {
		case "", "perfect":
			predictors[i] = &predict.Perfect{Trace: greenTrace[i]}
		case "persistence":
			predictors[i] = &predict.Persistence{Trace: greenTrace[i]}
		case "diurnal":
			predictors[i] = &predict.Diurnal{Trace: greenTrace[i]}
		default:
			return nil, fmt.Errorf("emul: unknown predictor %q", cfg.Predictor)
		}
	}

	// Within-datacenter managers and GDFS.
	managers := make([]*nebula.Datacenter, len(cfg.Datacenters))
	master := gdfs.NewMaster(len(cfg.Datacenters))
	cluster := gdfs.NewCluster(master)
	clients := make([]*gdfs.Client, len(cfg.Datacenters))
	for i, dc := range cfg.Datacenters {
		hosts := dc.Hosts
		if hosts == 0 {
			hosts = len(cfg.VMs) // enough for full replication of the fleet
		}
		managers[i] = nebula.NewUniformDatacenter(dc.Name, hosts)
		worker := gdfs.NewWorker(gdfs.WorkerID(dc.Name))
		if err := cluster.AddWorker(worker, dc.Name); err != nil {
			return nil, err
		}
		client, err := cluster.NewClient(gdfs.WorkerID(dc.Name))
		if err != nil {
			return nil, err
		}
		clients[i] = client
	}
	dcIndex := make(map[string]int, len(names))
	for i, n := range names {
		dcIndex[n] = i
	}

	// Initial placement: all VMs start at the first datacenter (the paper's
	// runs start with the load wherever the day begins greenest; starting
	// at a fixed site lets the first scheduling round move it).
	vmHome := make(map[string]int, len(cfg.VMs))
	for _, machine := range cfg.VMs {
		if _, err := managers[0].Place(machine); err != nil {
			return nil, fmt.Errorf("emul: initial placement: %w", err)
		}
		vmHome[machine.ID] = 0
		diskMB := machine.DiskMB
		if diskMB > maxGDFSDiskMB {
			diskMB = maxGDFSDiskMB
		}
		if _, err := clients[0].Create("/vm/"+machine.ID+"/disk", int64(diskMB)<<20); err != nil {
			return nil, err
		}
	}

	scheduler := sched.New(sched.Options{
		HorizonHours:      cfg.HorizonHours,
		MigrationFraction: cfg.MigrationFraction,
	})

	totalVMPowerKW := cfg.VMs.TotalPowerW() / 1000
	res := &Result{}
	var schedNanosTotal int64
	var schedRounds int64

	for hour := 0; hour < cfg.Hours; hour++ {
		absHour := cfg.StartHour + hour

		// Build the scheduler's view of each datacenter.
		states := make([]sched.DatacenterState, len(cfg.Datacenters))
		placements := make(map[string]vm.Fleet, len(cfg.Datacenters))
		for i, dc := range cfg.Datacenters {
			forecast, err := predictors[i].Predict(absHour%len(greenTrace[i]), cfg.HorizonHours)
			if err != nil {
				return nil, err
			}
			pues := make([]float64, cfg.HorizonHours)
			for h := 0; h < cfg.HorizonHours; h++ {
				pues[h] = pueTrace[i][(absHour+h)%len(pueTrace[i])]
			}
			states[i] = sched.DatacenterState{
				Name:               dc.Name,
				CapacityKW:         dc.CapacityKW,
				CurrentLoadKW:      managers[i].VMs().TotalPowerW() / 1000,
				GreenForecastKW:    forecast,
				PUE:                pues,
				GridPriceUSDPerKWh: dc.Site.GridPriceUSDPerKWh,
			}
			placements[dc.Name] = managers[i].VMs()
		}

		start := nowNanos()
		plan, err := scheduler.Partition(states, totalVMPowerKW)
		if err != nil {
			return nil, fmt.Errorf("emul: hour %d: %w", hour, err)
		}
		moves, err := scheduler.MigrationSchedule(states, placements, plan, network.Distance)
		if err != nil {
			return nil, err
		}
		elapsed := nowNanos() - start
		schedNanosTotal += elapsed
		schedRounds++

		// Execute the migrations: move the VM between managers, ship the
		// stale GDFS blocks, account the energy.
		migEnergyKWh := make([]float64, len(cfg.Datacenters))
		migIn := make([]int, len(cfg.Datacenters))
		migOut := make([]int, len(cfg.Datacenters))
		migBytes := make([]int64, len(cfg.Datacenters))
		for _, mv := range moves {
			fromIdx, okF := dcIndex[mv.From]
			toIdx, okT := dcIndex[mv.To]
			if !okF || !okT {
				return nil, fmt.Errorf("emul: migration between unknown datacenters %s→%s", mv.From, mv.To)
			}
			machine, err := managers[fromIdx].Remove(mv.VM.ID)
			if err != nil {
				return nil, err
			}
			if _, err := managers[toIdx].Place(machine); err != nil {
				// Receiver full: put the VM back and skip the move.
				if _, backErr := managers[fromIdx].Place(machine); backErr != nil {
					return nil, fmt.Errorf("emul: lost VM %s: %v", machine.ID, backErr)
				}
				continue
			}
			diskPath := "/vm/" + machine.ID + "/disk"
			pendingBytes, err := clients[fromIdx].PendingMigrationBytes(diskPath, gdfs.WorkerID(mv.To))
			if err != nil {
				return nil, err
			}
			result, err := migrate.Simulate(migrate.Plan{
				VM:          machine,
				From:        mv.From,
				To:          mv.To,
				DirtyDiskMB: float64(pendingBytes) / (1 << 20),
			}, network, migrate.Options{EpochHours: cfg.MigrationFraction})
			if err != nil {
				return nil, err
			}
			// The conservative accounting charges the migration at both
			// ends for MigrationFraction of the epoch.
			migEnergyKWh[fromIdx] += result.ConservativeEnergyKWh
			migEnergyKWh[toIdx] += result.ConservativeEnergyKWh
			migBytes[fromIdx] += int64(result.TransferredMB * (1 << 20))
			migIn[toIdx]++
			migOut[fromIdx]++
			vmHome[machine.ID] = toIdx
			res.Migrations++
		}
		// Background GDFS re-replication catches the destinations up.
		cluster.ReplicateOnce()

		// Simulate the hour: VMs dirty disk blocks at their home site.
		for _, machine := range cfg.VMs {
			home := vmHome[machine.ID]
			diskPath := "/vm/" + machine.ID + "/disk"
			fi, err := master.Stat(diskPath)
			if err != nil {
				return nil, err
			}
			dirtyBlocks := int(machine.DiskDirtyMBPerHour*(1<<20)/float64(fi.BlockSize)) + 1
			for b := 0; b < dirtyBlocks && b < len(fi.Blocks); b++ {
				block := (hour*dirtyBlocks + b) % len(fi.Blocks)
				if err := clients[home].WriteBlock(diskPath, block, make([]byte, fi.BlockSize)); err != nil {
					return nil, err
				}
			}
		}

		// Record the trace for this hour.
		for i, dc := range cfg.Datacenters {
			loadKW := managers[i].VMs().TotalPowerW() / 1000
			pue := pueTrace[i][absHour%len(pueTrace[i])]
			overheadKW := loadKW * (pue - 1)
			greenKW := greenTrace[i][absHour%len(greenTrace[i])]
			migKW := migEnergyKWh[i] // one-hour epochs: kWh == kW
			demandKW := loadKW + overheadKW + migKW
			brownKW := demandKW - greenKW
			if brownKW < 0 {
				brownKW = 0
			}
			res.Trace = append(res.Trace, HourRecord{
				Hour:           hour,
				Datacenter:     dc.Name,
				GreenKW:        greenKW,
				LoadKW:         loadKW,
				PUEOverheadKW:  overheadKW,
				MigrationKW:    migKW,
				BrownKW:        brownKW,
				VMCount:        managers[i].VMCount(),
				MigrationsIn:   migIn[i],
				MigrationsOut:  migOut[i],
				MigratedBytes:  migBytes[i],
				SchedulerNanos: elapsed,
			})
			res.TotalDemandKWh += demandKW
			res.TotalBrownKWh += brownKW
			res.TotalGreenKWh += demandKW - brownKW
			res.TotalMigrationKWh += migKW
		}
	}
	if schedRounds > 0 {
		res.AvgScheduleNanos = schedNanosTotal / schedRounds
	}
	if res.TotalDemandKWh > 0 {
		res.GreenFraction = res.TotalGreenKWh / res.TotalDemandKWh
	}
	return res, nil
}
