package emul

import (
	"errors"
	"testing"

	"greencloud/internal/location"
	"greencloud/internal/vm"
	"greencloud/internal/wan"
)

// testConfig builds a three-datacenter emulation whose sites are the best
// solar locations of a small catalog, with plants sized to cover the 9-VM
// fleet several times over (as the paper's overbuilt no-storage network
// does).
func testConfig(t *testing.T, hours int) Config {
	t.Helper()
	cat, err := location.Generate(location.Options{Count: 60, Seed: 21, RepresentativeDays: 1})
	if err != nil {
		t.Fatal(err)
	}
	fleet := vm.NewHPCFleet("hpc", 9)
	fleetKW := fleet.TotalPowerW() / 1000

	solar := cat.TopBySolarCF(8)
	// Prefer sites spread across time zones so the sun is always up
	// somewhere.
	picked := []*location.Site{solar[0]}
	for _, cand := range solar[1:] {
		distinct := true
		for _, p := range picked {
			d := cand.UTCOffsetHours - p.UTCOffsetHours
			if d < 0 {
				d = -d
			}
			if d > 12 {
				d = 24 - d
			}
			if d < 5 {
				distinct = false
				break
			}
		}
		if distinct {
			picked = append(picked, cand)
		}
		if len(picked) == 3 {
			break
		}
	}
	for len(picked) < 3 {
		picked = append(picked, solar[len(picked)])
	}

	dcs := make([]DatacenterConfig, 0, 3)
	for _, site := range picked {
		dcs = append(dcs, DatacenterConfig{
			Name:       site.Name,
			Site:       site,
			CapacityKW: fleetKW,
			SolarKW:    fleetKW * 8 / site.SolarCapacityFactor * 0.25, // heavily overbuilt solar
			WindKW:     0.2,
		})
	}
	return Config{
		Datacenters:  dcs,
		VMs:          fleet,
		StartHour:    24 * 172,
		Hours:        hours,
		HorizonHours: 12,
		Link:         wan.Link{BandwidthMbps: 1000, LatencyMs: 90},
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); !errors.Is(err, ErrNoDatacenters) {
		t.Errorf("want ErrNoDatacenters, got %v", err)
	}
	cfg := testConfig(t, 2)
	cfg.VMs = nil
	if _, err := Run(cfg); !errors.Is(err, ErrNoVMs) {
		t.Errorf("want ErrNoVMs, got %v", err)
	}
	cfg = testConfig(t, 2)
	cfg.Predictor = "psychic"
	if _, err := Run(cfg); err == nil {
		t.Error("unknown predictor should error")
	}
	cfg = testConfig(t, 2)
	cfg.Datacenters[0].Site = nil
	if _, err := Run(cfg); err == nil {
		t.Error("missing site should error")
	}
}

func TestRunFollowsRenewablesOverADay(t *testing.T) {
	cfg := testConfig(t, 24)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Trace) != 24*len(cfg.Datacenters) {
		t.Fatalf("trace has %d records, want %d", len(res.Trace), 24*len(cfg.Datacenters))
	}
	// The full fleet is always running somewhere.
	perHourVMs := map[int]int{}
	perDCLoadHours := map[string]int{}
	for _, rec := range res.Trace {
		perHourVMs[rec.Hour] += rec.VMCount
		if rec.LoadKW > 0.01 {
			perDCLoadHours[rec.Datacenter]++
		}
		if rec.LoadKW < 0 || rec.GreenKW < 0 || rec.BrownKW < 0 {
			t.Fatalf("negative power in record %+v", rec)
		}
	}
	for hour, n := range perHourVMs {
		if n != len(cfg.VMs) {
			t.Fatalf("hour %d hosts %d VMs, want %d", hour, n, len(cfg.VMs))
		}
	}
	// Load moves between datacenters during the day (follow the
	// renewables): at least two datacenters host load at some point, and
	// migrations actually happen.
	if len(perDCLoadHours) < 2 {
		t.Errorf("load never moved: per-DC load hours %v", perDCLoadHours)
	}
	if res.Migrations == 0 {
		t.Error("expected at least one migration over a day")
	}
	if res.TotalMigrationKWh <= 0 {
		t.Error("migration energy should be accounted")
	}
	// The migration overhead stays small relative to total demand (the
	// paper's observation).
	if res.TotalMigrationKWh > 0.3*res.TotalDemandKWh {
		t.Errorf("migration energy %.2f kWh is not small vs demand %.2f kWh",
			res.TotalMigrationKWh, res.TotalDemandKWh)
	}
	// With heavily overbuilt solar across spread time zones, most demand is
	// green.
	if res.GreenFraction < 0.5 {
		t.Errorf("green fraction %.2f lower than expected for an overbuilt network", res.GreenFraction)
	}
	if res.AvgScheduleNanos <= 0 {
		t.Error("scheduler timing not recorded")
	}
}

func TestRunPredictorVariants(t *testing.T) {
	for _, p := range []string{"perfect", "persistence", "diurnal"} {
		cfg := testConfig(t, 3)
		cfg.Predictor = p
		if _, err := Run(cfg); err != nil {
			t.Errorf("predictor %s: %v", p, err)
		}
	}
}
