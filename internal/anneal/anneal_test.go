package anneal

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config[int]{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("want ErrBadConfig, got %v", err)
	}
	if _, err := Run(Config[int]{Energy: func(int) float64 { return 0 }}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("missing Neighbor should error, got %v", err)
	}
}

func TestMinimizeQuadratic(t *testing.T) {
	// Minimize (x-3)² over integers: optimum at x=3.
	cfg := Config[float64]{
		Initial: 50,
		Energy:  func(x float64) float64 { return (x - 3) * (x - 3) },
		Neighbor: func(x float64, rng *rand.Rand) float64 {
			return x + rng.NormFloat64()*2
		},
		MaxIterations: 5000,
		MaxStale:      5000,
		Seed:          1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Best-3) > 0.5 {
		t.Errorf("best = %v, want ≈3", res.Best)
	}
	if res.BestEnergy > 0.3 {
		t.Errorf("best energy = %v, want ≈0", res.BestEnergy)
	}
	if res.Iterations == 0 || res.Evaluations == 0 {
		t.Error("iteration/evaluation counters not reported")
	}
}

func TestDiscreteSubsetSelection(t *testing.T) {
	// Pick a subset of 10 items minimizing |sum - 37|; items are 1..10, and
	// 37 is reachable (e.g. 10+9+8+7+3), so the optimum is 0.
	type state []bool
	items := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	energy := func(s state) float64 {
		sum := 0.0
		for i, pick := range s {
			if pick {
				sum += items[i]
			}
		}
		return math.Abs(sum - 37)
	}
	neighbor := func(s state, rng *rand.Rand) state {
		out := make(state, len(s))
		copy(out, s)
		out[rng.Intn(len(out))] = !out[rng.Intn(len(out))]
		i := rng.Intn(len(out))
		out[i] = !out[i]
		return out
	}
	res, err := Run(Config[state]{
		Initial:       make(state, len(items)),
		Energy:        energy,
		Neighbor:      neighbor,
		MaxIterations: 4000,
		MaxStale:      2000,
		Chains:        3,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestEnergy > 1e-9 {
		t.Errorf("best energy = %v, want 0", res.BestEnergy)
	}
}

func TestInfeasibleStatesAreNeverAccepted(t *testing.T) {
	// States above 100 are infeasible (infinite energy).  Starting at 90 and
	// proposing +5 moves, the chain must never adopt an infeasible state as
	// its best.
	res, err := Run(Config[float64]{
		Initial: 90,
		Energy: func(x float64) float64 {
			if x > 100 {
				return math.Inf(1)
			}
			return -x // prefer larger x, capped at 100
		},
		Neighbor: func(x float64, rng *rand.Rand) float64 {
			return x + 5
		},
		MaxIterations: 200,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best > 100 {
		t.Errorf("best state %v is infeasible", res.Best)
	}
	if math.Abs(res.Best-100) > 1e-9 {
		t.Errorf("best = %v, want 100", res.Best)
	}
}

func TestParallelChainsImproveOverSingle(t *testing.T) {
	// A rugged 1-D landscape with many local minima; the global optimum is
	// at x = 0.  Multiple chains with different seeds should find a
	// solution at least as good as a single chain.
	energy := func(x float64) float64 {
		return 0.1*x*x + 5*math.Abs(math.Sin(x))
	}
	neighbor := func(x float64, rng *rand.Rand) float64 {
		return x + rng.NormFloat64()*3
	}
	single, err := Run(Config[float64]{
		Initial: 40, Energy: energy, Neighbor: neighbor,
		MaxIterations: 800, Seed: 11, Chains: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(Config[float64]{
		Initial: 40, Energy: energy, Neighbor: neighbor,
		MaxIterations: 800, Seed: 11, Chains: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if multi.BestEnergy > single.BestEnergy+1e-9 {
		t.Errorf("4 chains (%v) should not be worse than 1 chain (%v)",
			multi.BestEnergy, single.BestEnergy)
	}
}

func TestDeterministicForFixedSeedSingleChain(t *testing.T) {
	cfg := Config[float64]{
		Initial: 10,
		Energy:  func(x float64) float64 { return math.Abs(x - 2) },
		Neighbor: func(x float64, rng *rand.Rand) float64 {
			return x + rng.NormFloat64()
		},
		MaxIterations: 500,
		Seed:          5,
		Chains:        1,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestEnergy != b.BestEnergy || a.Iterations != b.Iterations {
		t.Errorf("single-chain runs with the same seed differ: %v vs %v", a, b)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	// Chains are independent and merged deterministically, so running them
	// on one goroutine or many must give bit-identical results.
	cfg := Config[float64]{
		Initial: 40,
		Energy: func(x float64) float64 {
			return 0.1*x*x + 5*math.Abs(math.Sin(x))
		},
		Neighbor: func(x float64, rng *rand.Rand) float64 {
			return x + rng.NormFloat64()*3
		},
		MaxIterations: 600,
		Seed:          13,
		Chains:        4,
	}
	parallel, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sequential = true
	sequential, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if parallel.Best != sequential.Best || parallel.BestEnergy != sequential.BestEnergy ||
		parallel.Iterations != sequential.Iterations || parallel.Evaluations != sequential.Evaluations {
		t.Errorf("parallel %+v and sequential %+v runs differ", parallel, sequential)
	}
}

func TestMoveAwareHooksRequireAllThree(t *testing.T) {
	energy := func(ctx any, x float64, mv any) float64 { return x * x }
	neighbor := func(x float64, rng *rand.Rand) (float64, any) { return x - 1, "left" }
	newCtx := func(chain int) any { return nil }
	cases := []Config[float64]{
		{EnergyMove: energy},
		{EnergyMove: energy, NeighborMove: neighbor},
		{NeighborMove: neighbor, NewContext: newCtx},
		{NewContext: newCtx},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: want ErrBadConfig for partial move hooks, got %v", i, err)
		}
	}
}

func TestMoveAwareParallelMatchesSequential(t *testing.T) {
	// The move-aware path (per-chain contexts, move metadata) must keep the
	// determinism contract: parallel and sequential runs are bit-identical,
	// the context is delivered to every EnergyMove call, and the move
	// metadata matches what NeighborMove produced.
	type ctxState struct {
		chain int
		calls int
	}
	run := func(sequential bool) Result[float64] {
		cfg := Config[float64]{
			Initial: 40,
			NewContext: func(chain int) any {
				return &ctxState{chain: chain}
			},
			NeighborMove: func(x float64, rng *rand.Rand) (float64, any) {
				step := rng.NormFloat64() * 3
				return x + step, step
			},
			EnergyMove: func(ctx any, x float64, mv any) float64 {
				st, ok := ctx.(*ctxState)
				if !ok {
					t.Fatal("EnergyMove did not receive its chain context")
				}
				st.calls++
				if mv != nil {
					if _, ok := mv.(float64); !ok {
						t.Fatalf("EnergyMove received unexpected move metadata %T", mv)
					}
				}
				return 0.1*x*x + 5*math.Abs(math.Sin(x))
			},
			MaxIterations: 600,
			Seed:          13,
			Chains:        4,
			Sequential:    sequential,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	parallel := run(false)
	sequential := run(true)
	if parallel.Best != sequential.Best || parallel.BestEnergy != sequential.BestEnergy ||
		parallel.Iterations != sequential.Iterations || parallel.Evaluations != sequential.Evaluations {
		t.Errorf("move-aware parallel %+v and sequential %+v runs differ", parallel, sequential)
	}
	if parallel.BestEnergy > 5 {
		t.Errorf("move-aware search did not optimize: best energy %v", parallel.BestEnergy)
	}
}

func TestStaleStopBoundsEvaluations(t *testing.T) {
	// An energy function that never improves: the chain must stop after
	// MaxStale iterations, not run to MaxIterations.
	var calls int64
	res, err := Run(Config[int]{
		Initial: 0,
		Energy: func(int) float64 {
			atomic.AddInt64(&calls, 1)
			return 1
		},
		Neighbor:      func(s int, rng *rand.Rand) int { return s },
		MaxIterations: 100000,
		MaxStale:      50,
		Chains:        1,
		Seed:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 60 {
		t.Errorf("chain ran %d iterations, want ≈50 (stale stop)", res.Iterations)
	}
	if atomic.LoadInt64(&calls) > 70 {
		t.Errorf("energy called %d times, want ≈51", calls)
	}
}
