// Package anneal provides a generic simulated-annealing search with parallel
// search instances, following the heuristic solver described in Section II-C
// of the paper: several annealing chains explore siting/provisioning
// neighbourhoods on multiple cores.
//
// Chains are fully independent: each runs on its own goroutine with a
// deterministic per-chain RNG seed, and the results are merged with a
// deterministic best-of rule (lowest energy wins, ties go to the lowest
// chain index).  Because no state is exchanged mid-run, the outcome of Run
// is bit-identical for a fixed Seed regardless of how the goroutines are
// scheduled — and identical to running the chains sequentially (Sequential).
package anneal

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
)

// Config describes one annealing run over states of type S.  Energy is the
// value being minimized.  Neighbor must return a new state and must not
// mutate its argument.
//
// When Chains > 1, Energy and Neighbor are called concurrently from
// multiple goroutines and must be safe for concurrent use (e.g. by keeping
// per-call state in a sync.Pool).
type Config[S any] struct {
	// Initial is the starting state for every chain.
	Initial S
	// Energy evaluates a state; lower is better.  Infinite energy marks an
	// infeasible state.
	Energy func(S) float64
	// Neighbor proposes a modified copy of the state using the chain's RNG.
	Neighbor func(S, *rand.Rand) S

	// The move-aware hooks below are an alternative to Energy/Neighbor for
	// delta-evaluating searches: NeighborMove additionally returns metadata
	// describing the move it applied, and EnergyMove receives that metadata
	// together with a chain-local context (typically a reusable incremental
	// evaluator) created once per chain by NewContext.  All three must be set
	// together; when they are, Energy and Neighbor are ignored.  EnergyMove
	// must be a pure function of the state — the context and metadata may
	// only accelerate it, never change its value — so results remain
	// bit-identical regardless of parallelism or cache state.
	NewContext   func(chain int) any
	NeighborMove func(S, *rand.Rand) (S, any)
	// EnergyMove evaluates a state using the chain's context; move is the
	// metadata from NeighborMove, or nil when evaluating the initial state.
	EnergyMove func(ctx any, s S, move any) float64

	// InitialTemp is the starting temperature.  Zero selects a default
	// derived from the initial energy.
	InitialTemp float64
	// CoolingRate is the geometric cooling factor per iteration (0,1);
	// zero selects 0.995.
	CoolingRate float64
	// MinTemp stops a chain once the temperature drops below it
	// (default 1e-6 × InitialTemp).
	MinTemp float64
	// MaxIterations caps the iterations per chain (default 2000).
	MaxIterations int
	// MaxStale stops a chain after this many consecutive iterations
	// without improving its own best (default 300).
	MaxStale int

	// Chains is the number of parallel search instances (default 1).
	Chains int
	// SyncEvery is retained for configuration compatibility.
	//
	// Deprecated: mid-run best-solution exchange was removed to make runs
	// deterministic under parallel execution; the field is ignored.
	SyncEvery int
	// Seed makes the run reproducible.
	Seed int64
	// Sequential runs the chains one after another on the calling
	// goroutine instead of in parallel.  The result is identical either
	// way; the switch exists so tests can verify exactly that.
	Sequential bool
	// Ctx, when non-nil, cancels the run cooperatively: every chain checks
	// it once per iteration (before consuming any randomness, so an
	// uncancelled run with a Ctx is bit-identical to one without) and stops
	// early when it is done.  Run then merges whatever the chains found so
	// far and returns it together with the context's error.
	Ctx context.Context
}

// Result is the outcome of an annealing run.
type Result[S any] struct {
	// Best is the best state found across all chains.
	Best S
	// BestEnergy is its energy.
	BestEnergy float64
	// Iterations is the total number of iterations across chains.
	Iterations int
	// Evaluations is the total number of Energy calls.
	Evaluations int
}

// ErrBadConfig reports a configuration that cannot be run.
var ErrBadConfig = errors.New("anneal: Energy and Neighbor functions are required")

func (c Config[S]) withDefaults() Config[S] {
	if c.CoolingRate <= 0 || c.CoolingRate >= 1 {
		c.CoolingRate = 0.995
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 2000
	}
	if c.MaxStale <= 0 {
		c.MaxStale = 300
	}
	if c.Chains <= 0 {
		c.Chains = 1
	}
	return c
}

// chainResult is the outcome of one independent chain.
type chainResult[S any] struct {
	best        S
	bestEnergy  float64
	iterations  int
	evaluations int
}

// Run executes the annealing search and returns the best state found.
func Run[S any](cfg Config[S]) (Result[S], error) {
	var zero Result[S]
	moveAware := cfg.EnergyMove != nil || cfg.NeighborMove != nil || cfg.NewContext != nil
	if moveAware {
		if cfg.EnergyMove == nil || cfg.NeighborMove == nil || cfg.NewContext == nil {
			return zero, ErrBadConfig
		}
	} else if cfg.Energy == nil || cfg.Neighbor == nil {
		return zero, ErrBadConfig
	}
	cfg = cfg.withDefaults()

	var initialEnergy float64
	if moveAware {
		initialEnergy = cfg.EnergyMove(cfg.NewContext(-1), cfg.Initial, nil)
	} else {
		initialEnergy = cfg.Energy(cfg.Initial)
	}

	initialTemp := cfg.InitialTemp
	if initialTemp <= 0 {
		initialTemp = math.Max(1, math.Abs(initialEnergy)*0.05)
	}
	minTemp := cfg.MinTemp
	if minTemp <= 0 {
		minTemp = initialTemp * 1e-6
	}

	runChain := func(chainID int) chainResult[S] {
		rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(chainID)*15485863 + 1))
		// Each chain owns its context: consecutive evaluations on one chain
		// share one incremental evaluator, which is what makes delta
		// evaluation effective (the chain's trajectory keeps the per-site
		// cache warm).  EnergyMove is a pure function of the state, so chains
		// stay independent and the merged result deterministic.
		var ctx any
		if moveAware {
			ctx = cfg.NewContext(chainID)
		}
		current := cfg.Initial
		currentEnergy := initialEnergy
		best := cfg.Initial
		bestEnergy := currentEnergy
		temp := initialTemp
		stale := 0
		iters := 0
		evals := 0
		if moveAware {
			// Seed the chain's context with the initial state so the first
			// neighbour evaluation is already a delta.
			if got := cfg.EnergyMove(ctx, current, nil); got != currentEnergy {
				// EnergyMove violated purity; trust the fresh value so the
				// chain is at least self-consistent.
				currentEnergy, bestEnergy = got, got
			}
			evals++
		}

		for iters < cfg.MaxIterations && stale < cfg.MaxStale && temp > minTemp {
			if cfg.Ctx != nil {
				// Checked before any RNG draw so cancellation can never
				// perturb the trajectory of a run that finishes normally.
				select {
				case <-cfg.Ctx.Done():
					return chainResult[S]{best: best, bestEnergy: bestEnergy, iterations: iters, evaluations: evals}
				default:
				}
			}
			iters++
			var candidate S
			var candEnergy float64
			if moveAware {
				var move any
				candidate, move = cfg.NeighborMove(current, rng)
				candEnergy = cfg.EnergyMove(ctx, candidate, move)
			} else {
				candidate = cfg.Neighbor(current, rng)
				candEnergy = cfg.Energy(candidate)
			}
			evals++

			accept := false
			switch {
			case math.IsInf(candEnergy, 1):
				accept = false
			case candEnergy <= currentEnergy:
				accept = true
			default:
				delta := candEnergy - currentEnergy
				accept = rng.Float64() < math.Exp(-delta/temp)
			}
			if accept {
				current = candidate
				currentEnergy = candEnergy
				if candEnergy < bestEnergy {
					best = candidate
					bestEnergy = candEnergy
					stale = 0
				} else {
					stale++
				}
			} else {
				stale++
			}
			temp *= cfg.CoolingRate
		}
		return chainResult[S]{best: best, bestEnergy: bestEnergy, iterations: iters, evaluations: evals}
	}

	results := make([]chainResult[S], cfg.Chains)
	if cfg.Sequential || cfg.Chains == 1 {
		for chain := 0; chain < cfg.Chains; chain++ {
			results[chain] = runChain(chain)
		}
	} else {
		var wg sync.WaitGroup
		for chain := 0; chain < cfg.Chains; chain++ {
			wg.Add(1)
			go func(chainID int) {
				defer wg.Done()
				results[chainID] = runChain(chainID)
			}(chain)
		}
		wg.Wait()
	}

	// Deterministic best-of merge: strictly lower energy wins, so ties keep
	// the lowest chain index and the outcome never depends on scheduling.
	res := Result[S]{Best: cfg.Initial, BestEnergy: initialEnergy, Evaluations: 1}
	for _, r := range results {
		if r.bestEnergy < res.BestEnergy {
			res.Best = r.best
			res.BestEnergy = r.bestEnergy
		}
		res.Iterations += r.iterations
		res.Evaluations += r.evaluations
	}
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			// Cancelled mid-run: hand back the partial best alongside the
			// context error so the caller can decide whether it is usable.
			return res, err
		}
	}
	return res, nil
}
