// Package anneal provides a generic simulated-annealing search with parallel
// search instances that periodically exchange their best solutions, following
// the heuristic solver described in Section II-C of the paper: several
// annealing chains explore siting/provisioning neighbourhoods with different
// move mixes on multiple cores and synchronize on the current best solution.
package anneal

import (
	"errors"
	"math"
	"math/rand"
	"sync"
)

// Config describes one annealing run over states of type S.  Energy is the
// value being minimized.  Neighbor must return a new state and must not
// mutate its argument.
type Config[S any] struct {
	// Initial is the starting state for every chain.
	Initial S
	// Energy evaluates a state; lower is better.  Infinite energy marks an
	// infeasible state.
	Energy func(S) float64
	// Neighbor proposes a modified copy of the state using the chain's RNG.
	Neighbor func(S, *rand.Rand) S

	// InitialTemp is the starting temperature.  Zero selects a default
	// derived from the initial energy.
	InitialTemp float64
	// CoolingRate is the geometric cooling factor per iteration (0,1);
	// zero selects 0.995.
	CoolingRate float64
	// MinTemp stops a chain once the temperature drops below it
	// (default 1e-6 × InitialTemp).
	MinTemp float64
	// MaxIterations caps the iterations per chain (default 2000).
	MaxIterations int
	// MaxStale stops a chain after this many consecutive iterations
	// without improving its own best (default 300).
	MaxStale int

	// Chains is the number of parallel search instances (default 1).
	Chains int
	// SyncEvery is the number of iterations between best-solution
	// exchanges among chains (default 50).
	SyncEvery int
	// Seed makes the run reproducible for a fixed number of chains.
	Seed int64
}

// Result is the outcome of an annealing run.
type Result[S any] struct {
	// Best is the best state found across all chains.
	Best S
	// BestEnergy is its energy.
	BestEnergy float64
	// Iterations is the total number of iterations across chains.
	Iterations int
	// Evaluations is the total number of Energy calls.
	Evaluations int
}

// ErrBadConfig reports a configuration that cannot be run.
var ErrBadConfig = errors.New("anneal: Energy and Neighbor functions are required")

func (c Config[S]) withDefaults() Config[S] {
	if c.CoolingRate <= 0 || c.CoolingRate >= 1 {
		c.CoolingRate = 0.995
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 2000
	}
	if c.MaxStale <= 0 {
		c.MaxStale = 300
	}
	if c.Chains <= 0 {
		c.Chains = 1
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = 50
	}
	return c
}

// sharedBest is the synchronization point between chains.
type sharedBest[S any] struct {
	mu     sync.Mutex
	state  S
	energy float64
	valid  bool
}

func (sb *sharedBest[S]) offer(state S, energy float64) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if !sb.valid || energy < sb.energy {
		sb.state = state
		sb.energy = energy
		sb.valid = true
	}
}

func (sb *sharedBest[S]) get() (S, float64, bool) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.state, sb.energy, sb.valid
}

// Run executes the annealing search and returns the best state found.
func Run[S any](cfg Config[S]) (Result[S], error) {
	var zero Result[S]
	if cfg.Energy == nil || cfg.Neighbor == nil {
		return zero, ErrBadConfig
	}
	cfg = cfg.withDefaults()

	initialEnergy := cfg.Energy(cfg.Initial)
	shared := &sharedBest[S]{}
	shared.offer(cfg.Initial, initialEnergy)

	initialTemp := cfg.InitialTemp
	if initialTemp <= 0 {
		initialTemp = math.Max(1, math.Abs(initialEnergy)*0.05)
	}
	minTemp := cfg.MinTemp
	if minTemp <= 0 {
		minTemp = initialTemp * 1e-6
	}

	type chainResult struct {
		iterations  int
		evaluations int
	}
	results := make([]chainResult, cfg.Chains)

	var wg sync.WaitGroup
	for chain := 0; chain < cfg.Chains; chain++ {
		wg.Add(1)
		go func(chainID int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(chainID)*15485863 + 1))
			current := cfg.Initial
			currentEnergy := initialEnergy
			bestEnergy := currentEnergy
			temp := initialTemp
			stale := 0
			iters := 0
			evals := 0

			for iters < cfg.MaxIterations && stale < cfg.MaxStale && temp > minTemp {
				iters++
				candidate := cfg.Neighbor(current, rng)
				candEnergy := cfg.Energy(candidate)
				evals++

				accept := false
				switch {
				case math.IsInf(candEnergy, 1):
					accept = false
				case candEnergy <= currentEnergy:
					accept = true
				default:
					delta := candEnergy - currentEnergy
					accept = rng.Float64() < math.Exp(-delta/temp)
				}
				if accept {
					current = candidate
					currentEnergy = candEnergy
					if candEnergy < bestEnergy {
						bestEnergy = candEnergy
						shared.offer(candidate, candEnergy)
						stale = 0
					} else {
						stale++
					}
				} else {
					stale++
				}

				// Periodically adopt the globally best solution so chains
				// explore around the current frontier.
				if iters%cfg.SyncEvery == 0 {
					if state, energy, ok := shared.get(); ok && energy < currentEnergy {
						current = state
						currentEnergy = energy
						if energy < bestEnergy {
							bestEnergy = energy
						}
					}
				}
				temp *= cfg.CoolingRate
			}
			results[chainID] = chainResult{iterations: iters, evaluations: evals}
		}(chain)
	}
	wg.Wait()

	state, energy, _ := shared.get()
	res := Result[S]{Best: state, BestEnergy: energy, Evaluations: 1}
	for _, r := range results {
		res.Iterations += r.iterations
		res.Evaluations += r.evaluations
	}
	return res, nil
}
