package anneal

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
)

// cancel_test pins the cooperative-cancellation contract: an uncancelled
// Ctx never perturbs the search (bit-identical results), and a Ctx cancelled
// mid-flight stops every chain promptly and hands back the partial best with
// the context's error.

func quadCfg(ctx context.Context, chains int, sequential bool) Config[float64] {
	return Config[float64]{
		Initial: 50,
		Energy:  func(x float64) float64 { return (x - 3) * (x - 3) },
		Neighbor: func(x float64, rng *rand.Rand) float64 {
			return x + rng.NormFloat64()*2
		},
		MaxIterations: 5000,
		MaxStale:      5000,
		Seed:          1,
		Chains:        chains,
		Sequential:    sequential,
		Ctx:           ctx,
	}
}

func TestUncancelledCtxIsBitIdentical(t *testing.T) {
	for _, chains := range []int{1, 4} {
		bare, err := Run(quadCfg(nil, chains, false))
		if err != nil {
			t.Fatalf("chains=%d without ctx: %v", chains, err)
		}
		withCtx, err := Run(quadCfg(context.Background(), chains, false))
		if err != nil {
			t.Fatalf("chains=%d with ctx: %v", chains, err)
		}
		if bare.Best != withCtx.Best || bare.BestEnergy != withCtx.BestEnergy ||
			bare.Iterations != withCtx.Iterations || bare.Evaluations != withCtx.Evaluations {
			t.Errorf("chains=%d: uncancelled ctx changed the run: %+v vs %+v", chains, bare, withCtx)
		}
	}
}

func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(quadCfg(ctx, 2, false))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Nothing ran, so the partial best is the initial state.
	if res.Best != 50 {
		t.Errorf("partial best = %v, want the initial state 50", res.Best)
	}
	if res.Iterations != 0 {
		t.Errorf("Iterations = %d, want 0", res.Iterations)
	}
}

// TestCancelMidFlight cancels from inside the energy function once every
// chain has made progress; the run must stop early, merge the partial bests,
// and return the context error.  Running under -race (make ci does) also
// pins that cancellation introduces no data race between the chains.
func TestCancelMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var evals atomic.Int64
	cfg := quadCfg(ctx, 4, false)
	inner := cfg.Energy
	cfg.Energy = func(x float64) float64 {
		if evals.Add(1) == 64 {
			cancel()
		}
		return inner(x)
	}
	res, err := Run(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	full, err2 := Run(quadCfg(nil, 4, false))
	if err2 != nil {
		t.Fatal(err2)
	}
	if res.Iterations >= full.Iterations {
		t.Errorf("cancelled run did %d iterations, full run %d — cancellation did not stop early", res.Iterations, full.Iterations)
	}
	// The partial best is still a real state with its true energy.
	if got := (res.Best - 3) * (res.Best - 3); got != res.BestEnergy {
		t.Errorf("partial BestEnergy %v does not match its state (energy %v)", res.BestEnergy, got)
	}
}
