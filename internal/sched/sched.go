// Package sched implements GreenNebula's multi-datacenter scheduler
// (Section V-A of the paper).  Every hour the scheduler:
//
//  1. predicts each datacenter's green energy production 48 hours ahead,
//  2. collects the current workload (average power) at every datacenter,
//  3. solves a small linear program that re-partitions the workload across
//     the datacenters over the prediction horizon so as to minimize brown
//     energy use, accounting for the energy overhead of migrations, and
//  4. turns the first hour of that plan into a concrete migration schedule:
//     donors are ordered by decreasing amount of power to migrate out, each
//     donor sends VMs to the closest receiver first (first fit), choosing
//     VMs with the smallest memory/disk footprint first.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"greencloud/internal/lp"
	"greencloud/internal/series"
	"greencloud/internal/vm"
)

// DatacenterState is the scheduler's view of one datacenter for one
// scheduling round.
type DatacenterState struct {
	// Name identifies the datacenter.
	Name string
	// CapacityKW is the IT power capacity.
	CapacityKW float64
	// CurrentLoadKW is the IT power of the VMs currently hosted there.
	CurrentLoadKW float64
	// GreenForecastKW is the predicted green production for the next
	// horizon hours (facility-side power).
	GreenForecastKW []float64
	// PUE converts IT power into facility power (per forecast hour; a
	// single value is broadcast).
	PUE []float64
	// GridPriceUSDPerKWh prices any brown energy the site must draw.
	GridPriceUSDPerKWh float64
}

// pueAt returns the PUE for hour h, broadcasting a single value.
func (d DatacenterState) pueAt(h int) float64 {
	if len(d.PUE) == 0 {
		return 1.1
	}
	if h < len(d.PUE) {
		return d.PUE[h]
	}
	return d.PUE[len(d.PUE)-1]
}

// pueSeries fills dst with the PUE of each slot, applying the same
// broadcast rule as pueAt, so kernel passes over a horizon can consume the
// PUE as a dense row.
func (d DatacenterState) pueSeries(dst []float64) {
	for h := range dst {
		dst[h] = d.pueAt(h)
	}
}

// Options configures the scheduler.
type Options struct {
	// HorizonHours is the planning horizon (the paper uses 48).
	HorizonHours int
	// MigrationFraction is the fraction of an hour during which migrated
	// load consumes power at both ends (the paper's conservative value is
	// 1.0).
	MigrationFraction float64
	// BrownWeight scales how much the objective penalizes brown energy
	// versus migration churn; the default prices brown energy at each
	// site's grid price and migrations at the donor's grid price.
	BrownWeight float64
	// LPTimeout, when positive, bounds the wall-clock time of the partition
	// LP solve.  A solve that exceeds it degrades to the static greedy split
	// (Plan.Degraded) instead of blocking the scheduling round — an hourly
	// re-planner must deliver a valid plan on time, not a perfect plan late.
	LPTimeout time.Duration
	// Pricing selects the simplex pricing rule for the partition LP (the
	// zero value is lp.PricingDevex).
	Pricing lp.PricingRule
	// Presolve toggles LP presolve on the partition LP (the zero value runs
	// it).  The first round's cold solve gets the full reduction; warm
	// rounds re-tighten after the per-round RHS/cost rewrites without
	// disturbing the carried basis (lp.SolveOptions.Presolve).
	Presolve lp.PresolveMode
}

func (o Options) withDefaults() Options {
	if o.HorizonHours <= 0 {
		o.HorizonHours = 48
	}
	if o.MigrationFraction < 0 {
		o.MigrationFraction = 0
	}
	if o.MigrationFraction == 0 {
		o.MigrationFraction = 1
	}
	if o.BrownWeight <= 0 {
		o.BrownWeight = 1
	}
	return o
}

// Scheduler plans follow-the-renewables workload placement.  It owns the
// scratch rows its estimators reuse across calls, so a Scheduler must not
// be used concurrently.
type Scheduler struct {
	opts Options

	// Scratch for BrownEnergyIfStatic, grown to the horizon once and
	// reused (the repo-wide zero-steady-state-allocation idiom).
	deficit []float64
	pue     []float64
	loads   []float64

	// Cached partition LP.  The problem structure depends only on
	// (datacenter count, horizon), so consecutive Partition calls with the
	// same shape reuse one lp.Problem — only the right-hand sides (load,
	// forecasts), the capacity bounds, the PUE coefficients and the
	// price-derived costs are rewritten — and warm-start from the previous
	// round's optimal basis.  Hour-over-hour the forecasts barely move, so
	// the re-solve is a short dual-simplex restart instead of a two-phase
	// solve from scratch.
	//
	// Site capacity enters as the implicit variable bound
	// loadV[d][h] ∈ [0, CapacityKW] (valid because load ≤ load + overhead
	// ≤ capacity), so a capacity change between rounds is a pure SetBounds
	// data edit and a full-capacity hour parks the load column
	// nonbasic-at-upper — a bound flip instead of a basis pivot on the
	// capacity row.  Only the overhead-inclusive limit load + mig ≤ cap
	// stays a row, because it genuinely couples two variables.
	lpProb    *lp.Problem
	lpN       int
	lpHorizon int
	loadV     [][]lp.Var
	migV      [][]lp.Var
	brownV    [][]lp.Var
	conPlace  []int
	conMig    [][]int
	conBrown  [][]int
	conCap    [][]int
	basis     *lp.Basis
}

// New returns a scheduler.
func New(opts Options) *Scheduler {
	return &Scheduler{opts: opts.withDefaults()}
}

// Reset drops the warm-start basis so the next Partition call solves cold,
// while keeping the cached LP structure (it is shape-keyed and survives).
// An emul.Runner reuses one Scheduler across emulation runs: the structure
// may carry over, the basis must not leak between independent runs.
func (s *Scheduler) Reset() { s.basis = nil }

// WarmBasis returns the partition LP basis carried from the last healthy
// round, or nil when the scheduler would solve cold.  A continuous planner
// persists it (lp.Basis.MarshalBinary) so a restarted process can resume
// warm instead of cold.
func (s *Scheduler) WarmBasis() *lp.Basis { return s.basis }

// SetWarmBasis installs a basis — typically decoded from a snapshot with
// lp.DecodeBasis — to warm-start the next Partition round.  A basis that no
// longer matches the partition LP costs one silent cold fallback
// (lp.SolveFrom's contract), never correctness.
func (s *Scheduler) SetWarmBasis(b *lp.Basis) { s.basis = b }

// Errors returned by the scheduler.
var (
	ErrNoDatacenters    = errors.New("sched: no datacenters")
	ErrOverCapacity     = errors.New("sched: total load exceeds total capacity")
	ErrForecastTooShort = errors.New("sched: green forecast shorter than the horizon")
)

// Plan is the scheduler's output for one round.
type Plan struct {
	// LoadKW[d][h] is the IT power datacenter d should run during hour h
	// of the horizon.
	LoadKW [][]float64
	// BrownKWh is the predicted brown energy use over the horizon under
	// this plan.
	BrownKWh float64
	// MigratedKW is the total power that changes datacenter between the
	// current placement and the plan's first hour.
	MigratedKW float64
	// Degraded is true when the partition LP failed (or ran past
	// Options.LPTimeout) and the plan is the static greedy split instead of
	// the LP optimum: every datacenter keeps its current load (clipped to
	// capacity), with any unplaced remainder routed to the greenest
	// headroom.  A degraded plan is always feasible — loads within capacity,
	// every hour's total equal to the requested load.
	Degraded bool
	// DegradedReason describes the solver failure behind a degraded plan.
	DegradedReason string
	// LPStats is the partition LP's solve statistics for this round (zero
	// when the plan is degraded: a fallback plan did no simplex work worth
	// reporting).  ColdFallbacks stays 0 on warm rounds; RowsRemoved and
	// ColsRemoved show what presolve stripped.
	LPStats lp.Stats
}

// Partition solves the workload-partitioning LP: how much IT power each
// datacenter should run during every hour of the horizon to minimize brown
// energy, given the green-energy forecasts, PUEs, capacities and the energy
// overhead of migrations.
func (s *Scheduler) Partition(dcs []DatacenterState, totalLoadKW float64) (*Plan, error) {
	if len(dcs) == 0 {
		return nil, ErrNoDatacenters
	}
	horizon := s.opts.HorizonHours
	totalCapacity := 0.0
	for _, d := range dcs {
		if len(d.GreenForecastKW) < horizon {
			return nil, fmt.Errorf("%w: %s has %d hours, need %d",
				ErrForecastTooShort, d.Name, len(d.GreenForecastKW), horizon)
		}
		totalCapacity += d.CapacityKW
	}
	if totalLoadKW > totalCapacity+1e-9 {
		return nil, fmt.Errorf("%w: %.1f kW over %.1f kW", ErrOverCapacity, totalLoadKW, totalCapacity)
	}

	n := len(dcs)
	if s.lpProb == nil || s.lpN != n || s.lpHorizon != horizon {
		if err := s.buildPartitionLP(n, horizon); err != nil {
			return nil, err
		}
	}
	if err := s.updatePartitionLP(dcs, totalLoadKW); err != nil {
		return nil, err
	}

	lpOpts := lp.SolveOptions{Pricing: s.opts.Pricing, Presolve: s.opts.Presolve}
	if s.opts.LPTimeout > 0 {
		lpOpts.Deadline = time.Now().Add(s.opts.LPTimeout)
	}
	sol, err := s.lpProb.SolveFromWithOptions(s.basis, lpOpts)
	if err != nil {
		// Degrade, don't fail: the inputs were validated above, so the only
		// way here is a solver failure (numerical, deadline), and the hourly
		// controller still needs a plan.  Fall back to the static greedy
		// split and say so in the plan.
		s.basis = nil
		return s.staticFallback(dcs, totalLoadKW, fmt.Sprintf("partition LP: %v", err)), nil
	}
	s.basis = sol.Basis()

	plan := &Plan{LoadKW: make([][]float64, n), LPStats: sol.Stats}
	for d := range dcs {
		plan.LoadKW[d] = make([]float64, horizon)
		for h := 0; h < horizon; h++ {
			plan.LoadKW[d][h] = sol.Value(s.loadV[d][h])
			plan.BrownKWh += sol.Value(s.brownV[d][h])
		}
		moved := dcs[d].CurrentLoadKW - plan.LoadKW[d][0]
		if moved > 0 {
			plan.MigratedKW += moved
		}
	}
	return plan, nil
}

// buildPartitionLP constructs the partition LP's structure for the given
// shape, recording every variable handle and constraint index so
// updatePartitionLP can rewrite the round-specific numbers in place.  All
// coefficients, costs, bounds and right-hand sides are placeholders here;
// a cached problem is never solved without updatePartitionLP running first.
//
// Capacity appears twice, deliberately asymmetrically.  The binding limit
// load + mig ≤ cap must stay a row (it couples two variables), but the
// load variable additionally carries the implicit bound [0, cap] — implied
// by that row, so the feasible set is unchanged — because the bounded
// simplex then parks a site that runs at full capacity nonbasic-at-upper:
// the green-rich hours that used to pivot on the capacity row become bound
// flips with no basis change at all.  (An earlier draft replaced the cap
// row with a total-power variable bounded by capacity; that made the new
// variable basic in almost every datacenter-hour — it equals the load at
// the optimum — and cost ~n·horizon extra cold-solve pivots, a measured
// ~30% SchedulerComputeTime regression, so the row stayed.)
func (s *Scheduler) buildPartitionLP(n, horizon int) error {
	prob := lp.NewProblem(lp.Minimize)
	s.lpProb, s.lpN, s.lpHorizon = nil, 0, 0
	s.basis = nil
	s.loadV = makeVarGrid(n, horizon)
	s.migV = makeVarGrid(n, horizon)
	s.brownV = makeVarGrid(n, horizon)
	s.conPlace = make([]int, horizon)
	s.conMig = makeIntGrid(n, horizon)
	s.conBrown = makeIntGrid(n, horizon)
	s.conCap = makeIntGrid(n, horizon)

	var err error
	for d := 0; d < n; d++ {
		for h := 0; h < horizon; h++ {
			if s.loadV[d][h], err = prob.AddVariable("load", 0, lp.Infinity, 0); err != nil {
				return err
			}
			if s.migV[d][h], err = prob.AddVariable("mig", 0, lp.Infinity, 0); err != nil {
				return err
			}
			if s.brownV[d][h], err = prob.AddVariable("brown", 0, lp.Infinity, 0); err != nil {
				return err
			}
		}
	}

	next := 0
	for h := 0; h < horizon; h++ {
		// All load must be placed somewhere every hour.
		terms := make([]lp.Term, n)
		for d := 0; d < n; d++ {
			terms[d] = lp.Term{Var: s.loadV[d][h], Coeff: 1}
		}
		if err := prob.AddConstraint("place", lp.EQ, 0, terms...); err != nil {
			return err
		}
		s.conPlace[h] = next
		next++
	}
	f := s.opts.MigrationFraction
	for d := 0; d < n; d++ {
		for h := 0; h < horizon; h++ {
			// Migration overhead: load leaving this site between h−1 and h
			// burns power here for a fraction of hour h.
			terms := []lp.Term{
				{Var: s.migV[d][h], Coeff: 1},
				{Var: s.loadV[d][h], Coeff: f},
			}
			if h > 0 {
				terms = append(terms, lp.Term{Var: s.loadV[d][h-1], Coeff: -f})
			}
			if err := prob.AddConstraint("migOut", lp.GE, 0, terms...); err != nil {
				return err
			}
			s.conMig[d][h] = next
			next++
			// Brown power covers whatever facility demand the green
			// forecast cannot: PUE·(load + mig) − brown ≤ green.  Written
			// in ≤ form so a zero-green hour still standardizes to a slack
			// start instead of an artificial.
			if err := prob.AddConstraint("brown", lp.LE, 0,
				lp.Term{Var: s.loadV[d][h], Coeff: 1},
				lp.Term{Var: s.migV[d][h], Coeff: 1},
				lp.Term{Var: s.brownV[d][h], Coeff: -1}); err != nil {
				return err
			}
			s.conBrown[d][h] = next
			next++
			// Capacity must also cover the migration overhead.
			if err := prob.AddConstraint("cap", lp.LE, 0,
				lp.Term{Var: s.loadV[d][h], Coeff: 1},
				lp.Term{Var: s.migV[d][h], Coeff: 1}); err != nil {
				return err
			}
			s.conCap[d][h] = next
			next++
		}
	}
	s.lpProb, s.lpN, s.lpHorizon = prob, n, horizon
	return nil
}

// updatePartitionLP rewrites the round-specific numbers of the cached LP:
// right-hand sides (total load, current loads, green forecasts,
// capacities), the per-site capacity bounds on the load variables, the
// per-hour PUE coefficients of the brown rows, and the price-derived
// variable costs.
func (s *Scheduler) updatePartitionLP(dcs []DatacenterState, totalLoadKW float64) error {
	prob := s.lpProb
	horizon := s.lpHorizon
	f := s.opts.MigrationFraction
	for h := 0; h < horizon; h++ {
		if err := prob.SetRHS(s.conPlace[h], totalLoadKW); err != nil {
			return err
		}
	}
	for d, dc := range dcs {
		// A tiny cost on migration power discourages gratuitous churn
		// beyond its real energy cost.
		migCost := dc.GridPriceUSDPerKWh * 0.1
		brownCost := s.opts.BrownWeight * dc.GridPriceUSDPerKWh
		for h := 0; h < horizon; h++ {
			if err := prob.SetCost(s.migV[d][h], migCost); err != nil {
				return err
			}
			if err := prob.SetCost(s.brownV[d][h], brownCost); err != nil {
				return err
			}
			if err := prob.SetBounds(s.loadV[d][h], 0, dc.CapacityKW); err != nil {
				return err
			}
			rhs := 0.0
			if h == 0 {
				rhs = f * dc.CurrentLoadKW
			}
			if err := prob.SetRHS(s.conMig[d][h], rhs); err != nil {
				return err
			}
			pue := dc.pueAt(h)
			c := s.conBrown[d][h]
			if err := prob.SetRHS(c, dc.GreenForecastKW[h]); err != nil {
				return err
			}
			if err := prob.SetCoeff(c, s.loadV[d][h], pue); err != nil {
				return err
			}
			if err := prob.SetCoeff(c, s.migV[d][h], pue); err != nil {
				return err
			}
			if err := prob.SetRHS(s.conCap[d][h], dc.CapacityKW); err != nil {
				return err
			}
		}
	}
	return nil
}

func makeVarGrid(n, horizon int) [][]lp.Var {
	out := make([][]lp.Var, n)
	for d := range out {
		out[d] = make([]lp.Var, horizon)
	}
	return out
}

func makeIntGrid(n, horizon int) [][]int {
	out := make([][]int, n)
	for d := range out {
		out[d] = make([]int, horizon)
	}
	return out
}

// Migration is one VM move the scheduler orders.
type Migration struct {
	VM   vm.VM
	From string
	To   string
}

// MigrationSchedule turns the difference between the current per-datacenter
// loads and the plan's first-hour loads into per-VM migration orders, using
// the paper's policy: donors in decreasing order of power to shed, first-fit
// to the closest receiver, smallest-footprint VMs first.
func (s *Scheduler) MigrationSchedule(dcs []DatacenterState, placements map[string]vm.Fleet,
	plan *Plan, distance func(a, b string) float64) ([]Migration, error) {

	if plan == nil || len(plan.LoadKW) != len(dcs) {
		return nil, errors.New("sched: plan does not match the datacenter list")
	}
	if distance == nil {
		distance = func(a, b string) float64 { return 0 }
	}

	type delta struct {
		name    string
		surplus float64 // positive: must shed this much power
	}
	deltas := make([]delta, 0, len(dcs))
	headroom := make(map[string]float64, len(dcs))
	for d, dc := range dcs {
		target := plan.LoadKW[d][0]
		diff := dc.CurrentLoadKW - target
		deltas = append(deltas, delta{name: dc.Name, surplus: diff})
		if diff < 0 {
			headroom[dc.Name] = -diff
		}
	}
	// Donors in decreasing amount of power to migrate out.
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].surplus > deltas[j].surplus })

	var out []Migration
	for _, donor := range deltas {
		if donor.surplus <= 1e-9 {
			continue
		}
		fleet := placements[donor.name]
		if !fleet.IsSortedByFootprint() {
			fleet = fleet.SortByFootprint()
		}
		toShedW := donor.surplus * 1000

		// Receivers closest to this donor first.
		receivers := make([]string, 0, len(headroom))
		for name := range headroom {
			receivers = append(receivers, name)
		}
		sort.Slice(receivers, func(i, j int) bool {
			di, dj := distance(donor.name, receivers[i]), distance(donor.name, receivers[j])
			if di != dj {
				return di < dj
			}
			return receivers[i] < receivers[j]
		})

		for _, machine := range fleet {
			if toShedW <= 1e-9 {
				break
			}
			placed := false
			for _, r := range receivers {
				if headroom[r]*1000 >= machine.PowerW {
					out = append(out, Migration{VM: machine, From: donor.name, To: r})
					headroom[r] -= machine.PowerW / 1000
					toShedW -= machine.PowerW
					placed = true
					break
				}
			}
			if !placed {
				// No receiver can take this VM; try the next (smaller ones
				// were already tried, so larger ones will not fit either).
				break
			}
		}
	}
	return out, nil
}

// BrownEnergyIfStatic estimates the brown energy over the horizon if no load
// were ever migrated (everything stays where it is), used as the baseline
// the scheduler's plan is compared against.  The per-slot deficit
// (load·PUE − green, positive part summed) is one Scale/AXPY/SumPositive
// kernel chain per datacenter over the horizon row, bit-identical to the
// scalar loop it replaced: Scale-then-AXPY(−1) rather than one WeightedSum
// keeps the two-rounding shape even where the target fuses multiply-adds
// (the −1 product is exact), and threading the accumulator through
// SumPositive keeps one addition chain across all datacenters.
func (s *Scheduler) BrownEnergyIfStatic(dcs []DatacenterState) float64 {
	s.loads = s.loads[:0]
	for _, dc := range dcs {
		s.loads = append(s.loads, dc.CurrentLoadKW)
	}
	return s.brownEnergyForLoads(dcs, s.loads)
}

// brownEnergyForLoads is the kernel chain behind BrownEnergyIfStatic for an
// arbitrary constant per-datacenter load split, shared with the degraded
// fallback plan so its BrownKWh is computed exactly like the static baseline.
func (s *Scheduler) brownEnergyForLoads(dcs []DatacenterState, loads []float64) float64 {
	total := 0.0
	for d, dc := range dcs {
		h := s.opts.HorizonHours
		if h > len(dc.GreenForecastKW) {
			h = len(dc.GreenForecastKW)
		}
		s.deficit = series.Grow(s.deficit, h)
		s.pue = series.Grow(s.pue, h)
		dc.pueSeries(s.pue)
		series.Scale(s.deficit, loads[d], s.pue)
		series.AXPY(s.deficit, -1, dc.GreenForecastKW[:h])
		total = series.SumPositive(total, s.deficit)
	}
	return total
}

// staticFallback is the degraded plan used when the partition LP cannot
// deliver: every datacenter keeps its current load clipped to capacity, any
// unplaced remainder goes to the greenest available headroom (and any excess
// is shed from the least green sites), and the split is held constant over
// the horizon.  The result always satisfies the plan invariants — per-hour
// totals equal the requested load, no datacenter above capacity — because
// Partition validated totalLoadKW against total capacity before calling.
func (s *Scheduler) staticFallback(dcs []DatacenterState, totalLoadKW float64, reason string) *Plan {
	n := len(dcs)
	horizon := s.opts.HorizonHours
	loads := make([]float64, n)
	assigned := 0.0
	for d, dc := range dcs {
		l := dc.CurrentLoadKW
		if l < 0 {
			l = 0
		}
		if l > dc.CapacityKW {
			l = dc.CapacityKW
		}
		loads[d] = l
		assigned += l
	}
	remaining := totalLoadKW - assigned
	if remaining > 0 {
		for _, d := range s.greenOrder(dcs) {
			room := dcs[d].CapacityKW - loads[d]
			if room <= 0 {
				continue
			}
			add := math.Min(room, remaining)
			loads[d] += add
			remaining -= add
			if remaining <= 0 {
				break
			}
		}
	} else if remaining < 0 {
		order := s.greenOrder(dcs)
		for i := len(order) - 1; i >= 0 && remaining < 0; i-- {
			d := order[i]
			cut := math.Min(loads[d], -remaining)
			loads[d] -= cut
			remaining += cut
		}
	}

	plan := &Plan{
		LoadKW:         make([][]float64, n),
		Degraded:       true,
		DegradedReason: reason,
	}
	for d := range dcs {
		row := make([]float64, horizon)
		for h := range row {
			row[h] = loads[d]
		}
		plan.LoadKW[d] = row
		if moved := dcs[d].CurrentLoadKW - loads[d]; moved > 0 {
			plan.MigratedKW += moved
		}
	}
	plan.BrownKWh = s.brownEnergyForLoads(dcs, loads)
	return plan
}

// greenOrder returns datacenter indices sorted by decreasing mean green
// forecast over the horizon (ties by index), the deterministic order in which
// the degraded fallback hands out spare load.
func (s *Scheduler) greenOrder(dcs []DatacenterState) []int {
	horizon := s.opts.HorizonHours
	mean := make([]float64, len(dcs))
	for d, dc := range dcs {
		h := horizon
		if h > len(dc.GreenForecastKW) {
			h = len(dc.GreenForecastKW)
		}
		sum := 0.0
		for _, g := range dc.GreenForecastKW[:h] {
			sum += g
		}
		if h > 0 {
			mean[d] = sum / float64(h)
		}
	}
	order := make([]int, len(dcs))
	for d := range order {
		order[d] = d
	}
	sort.Slice(order, func(i, j int) bool {
		if mean[order[i]] != mean[order[j]] {
			return mean[order[i]] > mean[order[j]]
		}
		return order[i] < order[j]
	})
	return order
}

// RoundLoads snaps a fractional power split onto whole VMs of the given
// power, preserving the total count (largest remainder method).  The
// emulation uses it to convert the LP's continuous loads into VM counts.
func RoundLoads(loadKW []float64, vmPowerW float64, totalVMs int) []int {
	n := len(loadKW)
	counts := make([]int, n)
	if totalVMs <= 0 || vmPowerW <= 0 {
		return counts
	}
	type frac struct {
		idx  int
		frac float64
	}
	fracs := make([]frac, n)
	assigned := 0
	for i, l := range loadKW {
		exact := l * 1000 / vmPowerW
		counts[i] = int(math.Floor(exact + 1e-9))
		if counts[i] < 0 {
			counts[i] = 0
		}
		assigned += counts[i]
		fracs[i] = frac{idx: i, frac: exact - float64(counts[i])}
	}
	sort.Slice(fracs, func(i, j int) bool { return fracs[i].frac > fracs[j].frac })
	for i := 0; assigned < totalVMs && i < len(fracs); i++ {
		counts[fracs[i].idx]++
		assigned++
	}
	// If rounding overshot (possible when loads exceed the fleet), trim.
	for i := 0; assigned > totalVMs && i < n; i++ {
		over := assigned - totalVMs
		if counts[i] >= over {
			counts[i] -= over
			assigned -= over
		}
	}
	return counts
}
