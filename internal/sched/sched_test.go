package sched

import (
	"errors"
	"math"
	"testing"

	"greencloud/internal/lp"
	"greencloud/internal/vm"
)

// forecast builds an hourly forecast of the given length from a pattern
// repeated per day (len(pattern) must divide 24).
func forecast(hours int, dayPattern []float64) []float64 {
	out := make([]float64, hours)
	for h := 0; h < hours; h++ {
		out[h] = dayPattern[h%len(dayPattern)]
	}
	return out
}

func threeDCs(horizon int) []DatacenterState {
	day := make([]float64, 24)
	night := make([]float64, 24)
	evening := make([]float64, 24)
	for h := 0; h < 24; h++ {
		switch {
		case h >= 6 && h < 14:
			day[h] = 400
		case h >= 14 && h < 22:
			evening[h] = 400
		default:
			night[h] = 400
		}
	}
	return []DatacenterState{
		{Name: "kenya", CapacityKW: 300, CurrentLoadKW: 270, GreenForecastKW: forecast(horizon, day),
			PUE: []float64{1.07}, GridPriceUSDPerKWh: 0.098},
		{Name: "mexico", CapacityKW: 300, CurrentLoadKW: 0, GreenForecastKW: forecast(horizon, evening),
			PUE: []float64{1.08}, GridPriceUSDPerKWh: 0.09},
		{Name: "guam", CapacityKW: 300, CurrentLoadKW: 0, GreenForecastKW: forecast(horizon, night),
			PUE: []float64{1.09}, GridPriceUSDPerKWh: 0.11},
	}
}

func TestPartitionFollowsRenewables(t *testing.T) {
	s := New(Options{HorizonHours: 24, MigrationFraction: 0.1})
	dcs := threeDCs(24)
	plan, err := s.Partition(dcs, 270)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if len(plan.LoadKW) != 3 || len(plan.LoadKW[0]) != 24 {
		t.Fatalf("plan shape %dx%d", len(plan.LoadKW), len(plan.LoadKW[0]))
	}
	// Every hour the whole load is placed.
	for h := 0; h < 24; h++ {
		total := plan.LoadKW[0][h] + plan.LoadKW[1][h] + plan.LoadKW[2][h]
		if math.Abs(total-270) > 1e-3 {
			t.Fatalf("hour %d places %v kW, want 270", h, total)
		}
		for d := range dcs {
			if plan.LoadKW[d][h] > dcs[d].CapacityKW+1e-6 {
				t.Fatalf("hour %d: %s over capacity", h, dcs[d].Name)
			}
		}
	}
	// During hours 6–13 the green energy is in Kenya, so most load should
	// be there; during 14–21 it should be in Mexico.
	if plan.LoadKW[0][8] < 200 {
		t.Errorf("hour 8: kenya load %v, want most of the 270 kW", plan.LoadKW[0][8])
	}
	if plan.LoadKW[1][16] < 200 {
		t.Errorf("hour 16: mexico load %v, want most of the 270 kW", plan.LoadKW[1][16])
	}
	// Following the renewables must use less brown energy than never
	// migrating at all.
	static := s.BrownEnergyIfStatic(dcs)
	if plan.BrownKWh >= static {
		t.Errorf("planned brown %v should beat the static baseline %v", plan.BrownKWh, static)
	}
	if plan.MigratedKW <= 0 {
		t.Error("the first hour should already move some load")
	}
}

// TestPartitionWarmResolveMatchesFresh pins the cached-LP contract: a
// scheduler that has already solved a round (and so re-solves the mutated
// problem warm from its previous basis) must produce the same plan as a
// fresh scheduler solving the same inputs cold.
func TestPartitionWarmResolveMatchesFresh(t *testing.T) {
	warmSched := New(Options{HorizonHours: 24, MigrationFraction: 0.1})
	round1 := threeDCs(24)
	if _, err := warmSched.Partition(round1, 270); err != nil {
		t.Fatalf("round 1: %v", err)
	}
	// Round 2: the load moved and the forecasts shifted.
	round2 := threeDCs(24)
	round2[0].CurrentLoadKW = 80
	round2[1].CurrentLoadKW = 190
	for d := range round2 {
		for h := range round2[d].GreenForecastKW {
			round2[d].GreenForecastKW[h] *= 0.9
		}
	}
	warm, err := warmSched.Partition(round2, 250)
	if err != nil {
		t.Fatalf("warm round 2: %v", err)
	}
	cold, err := New(Options{HorizonHours: 24, MigrationFraction: 0.1}).Partition(round2, 250)
	if err != nil {
		t.Fatalf("cold round 2: %v", err)
	}
	if math.Abs(warm.BrownKWh-cold.BrownKWh) > 1e-6 {
		t.Errorf("warm BrownKWh %v, cold %v", warm.BrownKWh, cold.BrownKWh)
	}
	if math.Abs(warm.MigratedKW-cold.MigratedKW) > 1e-6 {
		t.Errorf("warm MigratedKW %v, cold %v", warm.MigratedKW, cold.MigratedKW)
	}
	for d := range warm.LoadKW {
		for h := range warm.LoadKW[d] {
			if math.Abs(warm.LoadKW[d][h]-cold.LoadKW[d][h]) > 1e-6 {
				t.Fatalf("plan[%d][%d]: warm %v, cold %v", d, h, warm.LoadKW[d][h], cold.LoadKW[d][h])
			}
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	s := New(Options{HorizonHours: 24})
	if _, err := s.Partition(nil, 100); !errors.Is(err, ErrNoDatacenters) {
		t.Errorf("want ErrNoDatacenters, got %v", err)
	}
	dcs := threeDCs(24)
	if _, err := s.Partition(dcs, 10_000); !errors.Is(err, ErrOverCapacity) {
		t.Errorf("want ErrOverCapacity, got %v", err)
	}
	short := threeDCs(10)
	if _, err := s.Partition(short, 100); !errors.Is(err, ErrForecastTooShort) {
		t.Errorf("want ErrForecastTooShort, got %v", err)
	}
}

func TestPartitionMigrationCostDiscouragesChurn(t *testing.T) {
	// Two identical datacenters with identical green: with a high migration
	// cost the load should stay where it is rather than bounce around.
	horizon := 12
	green := forecast(horizon, []float64{100})
	dcs := []DatacenterState{
		{Name: "a", CapacityKW: 200, CurrentLoadKW: 150, GreenForecastKW: green, PUE: []float64{1.1}, GridPriceUSDPerKWh: 0.1},
		{Name: "b", CapacityKW: 200, CurrentLoadKW: 0, GreenForecastKW: green, PUE: []float64{1.1}, GridPriceUSDPerKWh: 0.1},
	}
	s := New(Options{HorizonHours: horizon, MigrationFraction: 1})
	plan, err := s.Partition(dcs, 150)
	if err != nil {
		t.Fatal(err)
	}
	// Site a can use at most 100 kW of green; moving ~50 kW to b would gain
	// green use but cost a migration epoch.  Whatever the trade-off, the
	// plan must not move load back and forth hour after hour.
	flips := 0
	for h := 1; h < horizon; h++ {
		if math.Abs(plan.LoadKW[0][h]-plan.LoadKW[0][h-1]) > 1 {
			flips++
		}
	}
	if flips > 2 {
		t.Errorf("load at site a changed %d times over %d hours; migration cost should damp churn", flips, horizon)
	}
}

func TestMigrationSchedulePolicy(t *testing.T) {
	s := New(Options{HorizonHours: 2, MigrationFraction: 1})
	dcs := []DatacenterState{
		{Name: "donor", CapacityKW: 10, CurrentLoadKW: 0.27}, // 9 VMs × 30 W
		{Name: "near", CapacityKW: 10, CurrentLoadKW: 0},
		{Name: "far", CapacityKW: 10, CurrentLoadKW: 0},
	}
	plan := &Plan{LoadKW: [][]float64{{0.03, 0}, {0.12, 0}, {0.12, 0}}}

	big := vm.NewHPCVM("big")
	big.DiskMB = 50 * 1024
	fleet := append(vm.NewHPCFleet("small", 8), big)
	placements := map[string]vm.Fleet{"donor": fleet}

	distance := func(a, b string) float64 {
		if (a == "donor" && b == "near") || (a == "near" && b == "donor") {
			return 1
		}
		return 100
	}
	moves, err := s.MigrationSchedule(dcs, placements, plan, distance)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("expected migrations")
	}
	// Smallest-footprint VMs move first: the big VM must not be among the
	// first movers.
	if moves[0].VM.ID == "big" {
		t.Error("the largest VM should migrate last")
	}
	// The closest receiver fills up first.
	if moves[0].To != "near" {
		t.Errorf("first migration goes to %s, want the closest receiver", moves[0].To)
	}
	nearPower, farPower := 0.0, 0.0
	for _, m := range moves {
		if m.From != "donor" {
			t.Errorf("unexpected donor %s", m.From)
		}
		switch m.To {
		case "near":
			nearPower += m.VM.PowerW
		case "far":
			farPower += m.VM.PowerW
		}
	}
	// Receivers should not get more power than the plan gives them headroom
	// for (0.12 kW each).
	if nearPower > 120+1e-6 || farPower > 120+1e-6 {
		t.Errorf("receivers overloaded: near %v W, far %v W", nearPower, farPower)
	}
	// A mismatched plan errors.
	if _, err := s.MigrationSchedule(dcs[:2], placements, plan, distance); err == nil {
		t.Error("plan/datacenter mismatch should error")
	}
	// A nil distance function is tolerated.
	if _, err := s.MigrationSchedule(dcs, placements, plan, nil); err != nil {
		t.Errorf("nil distance: %v", err)
	}
}

func TestRoundLoads(t *testing.T) {
	counts := RoundLoads([]float64{0.15, 0.09, 0.03}, 30, 9)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 9 {
		t.Fatalf("rounded counts sum to %d, want 9", total)
	}
	// 0.15 kW / 30 W = 5 VMs, 0.09 → 3, 0.03 → 1.
	if counts[0] != 5 || counts[1] != 3 || counts[2] != 1 {
		t.Errorf("counts = %v, want [5 3 1]", counts)
	}
	if got := RoundLoads([]float64{1, 2}, 0, 5); got[0] != 0 || got[1] != 0 {
		t.Error("zero VM power should produce zero counts")
	}
	if got := RoundLoads(nil, 30, 5); len(got) != 0 {
		t.Error("empty loads should produce empty counts")
	}
}

func TestOptionsDefaults(t *testing.T) {
	s := New(Options{})
	if s.opts.HorizonHours != 48 {
		t.Errorf("default horizon = %d, want 48", s.opts.HorizonHours)
	}
	if s.opts.MigrationFraction != 1 {
		t.Errorf("default migration fraction = %v, want 1", s.opts.MigrationFraction)
	}
}

// TestPartitionCapacityBoundBinds pins the capacity-as-variable-bound
// formulation: when one site holds all the green energy but has too little
// capacity for the whole load, the plan pins its load exactly at the
// capacity bound; shrinking the capacity between rounds is a pure bound
// edit on the cached LP, and the warm re-solve must honor the new bound
// and agree with a cold scheduler.
func TestPartitionCapacityBoundBinds(t *testing.T) {
	horizon := 6
	mkDCs := func(capA float64) []DatacenterState {
		return []DatacenterState{
			{Name: "green", CapacityKW: capA, CurrentLoadKW: 0,
				GreenForecastKW: forecast(horizon, []float64{1000}),
				PUE:             []float64{1.1}, GridPriceUSDPerKWh: 0.1},
			{Name: "brown", CapacityKW: 500, CurrentLoadKW: 200,
				GreenForecastKW: forecast(horizon, []float64{0}),
				PUE:             []float64{1.1}, GridPriceUSDPerKWh: 0.1},
		}
	}
	s := New(Options{HorizonHours: horizon, MigrationFraction: 0.1})
	plan, err := s.Partition(mkDCs(120), 200)
	if err != nil {
		t.Fatalf("round 1: %v", err)
	}
	for h := 1; h < horizon; h++ {
		if math.Abs(plan.LoadKW[0][h]-120) > 1e-6 {
			t.Fatalf("hour %d: green-site load %v, want pinned at its 120 kW capacity", h, plan.LoadKW[0][h])
		}
	}
	// Round 2: the green site lost a rack; its capacity bound tightens.
	warm, err := s.Partition(mkDCs(90), 200)
	if err != nil {
		t.Fatalf("round 2 warm: %v", err)
	}
	cold, err := New(Options{HorizonHours: horizon, MigrationFraction: 0.1}).Partition(mkDCs(90), 200)
	if err != nil {
		t.Fatalf("round 2 cold: %v", err)
	}
	for h := 1; h < horizon; h++ {
		if warm.LoadKW[0][h] > 90+1e-6 {
			t.Fatalf("hour %d: green-site load %v exceeds the tightened 90 kW bound", h, warm.LoadKW[0][h])
		}
	}
	if math.Abs(warm.BrownKWh-cold.BrownKWh) > 1e-6 {
		t.Errorf("warm BrownKWh %v, cold %v", warm.BrownKWh, cold.BrownKWh)
	}
}

// TestPartitionPresolveKeepsRoundsWarm pins the presolve/warm-start
// contract at the scheduler layer: with presolve on (the default), every
// round after the first must re-solve warm — zero cold fallbacks, never a
// degraded plan — and produce the same partition as a presolve-off
// scheduler fed the identical rounds.
func TestPartitionPresolveKeepsRoundsWarm(t *testing.T) {
	const horizon = 24
	on := New(Options{HorizonHours: horizon, MigrationFraction: 0.1})
	off := New(Options{HorizonHours: horizon, MigrationFraction: 0.1, Presolve: lp.PresolveOff})
	for round := 0; round < 6; round++ {
		dcs := threeDCs(horizon)
		scale := 1 - 0.05*float64(round)
		for d := range dcs {
			for h := range dcs[d].GreenForecastKW {
				dcs[d].GreenForecastKW[h] *= scale
			}
		}
		load := 270 - 10*float64(round)
		planOn, err := on.Partition(dcs, load)
		if err != nil {
			t.Fatalf("round %d presolve-on: %v", round, err)
		}
		planOff, err := off.Partition(threeDCsScaled(horizon, scale), load)
		_ = planOff
		if err != nil {
			t.Fatalf("round %d presolve-off: %v", round, err)
		}
		if planOn.Degraded {
			t.Fatalf("round %d degraded under presolve: %s", round, planOn.DegradedReason)
		}
		if math.Abs(planOn.BrownKWh-planOff.BrownKWh) > 1e-6 {
			t.Errorf("round %d: BrownKWh %v presolve-on vs %v presolve-off", round, planOn.BrownKWh, planOff.BrownKWh)
		}
		if round > 0 && planOn.LPStats.ColdFallbacks != 0 {
			t.Errorf("round %d fell back cold under presolve (%+v)", round, planOn.LPStats)
		}
	}
}

// threeDCsScaled is threeDCs with every green forecast scaled, so the
// presolve-off scheduler in the warm-round test sees the same inputs.
func threeDCsScaled(horizon int, scale float64) []DatacenterState {
	dcs := threeDCs(horizon)
	for d := range dcs {
		for h := range dcs[d].GreenForecastKW {
			dcs[d].GreenForecastKW[h] *= scale
		}
	}
	return dcs
}
