package sched

import (
	"math"
	"strings"
	"testing"
	"time"

	"greencloud/internal/lp"
)

// degrade_test drives the scheduler's graceful-degradation path with real
// injected LP faults: when the partition LP fails mid-round the scheduler
// must hand back a feasible static plan tagged Degraded — never an error,
// never an infeasible split — and recover to optimal plans once the solver
// is healthy again.

// assertPlanFeasible checks the plan invariants every Partition result must
// satisfy, degraded or not: per-hour totals equal the requested load and no
// datacenter exceeds its capacity.
func assertPlanFeasible(t *testing.T, plan *Plan, dcs []DatacenterState, totalLoadKW float64) {
	t.Helper()
	if len(plan.LoadKW) != len(dcs) {
		t.Fatalf("plan has %d rows, want %d", len(plan.LoadKW), len(dcs))
	}
	for h := range plan.LoadKW[0] {
		total := 0.0
		for d := range plan.LoadKW {
			v := plan.LoadKW[d][h]
			if v < -1e-9 {
				t.Fatalf("hour %d: %s load %v is negative", h, dcs[d].Name, v)
			}
			if v > dcs[d].CapacityKW+1e-6 {
				t.Fatalf("hour %d: %s load %v exceeds capacity %v", h, dcs[d].Name, v, dcs[d].CapacityKW)
			}
			total += v
		}
		if math.Abs(total-totalLoadKW) > 1e-6 {
			t.Fatalf("hour %d places %v kW, want %v", h, total, totalLoadKW)
		}
	}
}

// TestPartitionDegradesOnLPFault makes every basis factorization of the
// round's LP fail (cold starts cannot repair a singular all-slack basis) and
// asserts the scheduler returns a feasible degraded plan instead of an error.
func TestPartitionDegradesOnLPFault(t *testing.T) {
	t.Cleanup(lp.DisarmFaults)
	s := New(Options{HorizonHours: 24, MigrationFraction: 0.1})
	dcs := threeDCs(24)

	lp.ArmFault(lp.FaultSingularLU, 0, 1<<20)
	plan, err := s.Partition(dcs, 270)
	if err != nil {
		t.Fatalf("Partition with failing LP: %v (must degrade, not error)", err)
	}
	if !plan.Degraded {
		t.Fatal("plan.Degraded = false, want true (the LP could not have succeeded)")
	}
	if plan.DegradedReason == "" {
		t.Error("DegradedReason is empty")
	}
	assertPlanFeasible(t, plan, dcs, 270)
	// The whole 270 kW already sits in kenya within capacity, so the static
	// split keeps it there: nothing migrates, and the brown energy matches
	// the never-migrate baseline exactly.
	if plan.MigratedKW != 0 {
		t.Errorf("MigratedKW = %v, want 0 for the keep-in-place fallback", plan.MigratedKW)
	}
	if static := s.BrownEnergyIfStatic(dcs); math.Abs(plan.BrownKWh-static) > 1e-9 {
		t.Errorf("degraded BrownKWh = %v, want static baseline %v", plan.BrownKWh, static)
	}

	// Solver healthy again: the next round must return to a real LP plan
	// identical to a fresh scheduler's (the corrupt warm basis was dropped).
	lp.DisarmFaults()
	healthy, err := s.Partition(dcs, 270)
	if err != nil {
		t.Fatalf("Partition after recovery: %v", err)
	}
	if healthy.Degraded {
		t.Fatal("plan still degraded after faults cleared")
	}
	fresh, err := New(Options{HorizonHours: 24, MigrationFraction: 0.1}).Partition(threeDCs(24), 270)
	if err != nil {
		t.Fatalf("fresh Partition: %v", err)
	}
	for d := range healthy.LoadKW {
		for h := range healthy.LoadKW[d] {
			if math.Abs(healthy.LoadKW[d][h]-fresh.LoadKW[d][h]) > 1e-6 {
				t.Fatalf("recovered plan[%d][%d] = %v, fresh = %v", d, h, healthy.LoadKW[d][h], fresh.LoadKW[d][h])
			}
		}
	}
}

// TestPartitionWarmCorruptionFallsBackCold corrupts only the warm start of
// round 2 (the repair budget runs out, then the fault arm is exhausted) and
// asserts the solve silently falls back to a clean cold solve: same plan as
// a fresh scheduler, not degraded.
func TestPartitionWarmCorruptionFallsBackCold(t *testing.T) {
	t.Cleanup(lp.DisarmFaults)
	s := New(Options{HorizonHours: 24, MigrationFraction: 0.1})
	round1 := threeDCs(24)
	if _, err := s.Partition(round1, 270); err != nil {
		t.Fatalf("round 1: %v", err)
	}

	round2 := threeDCs(24)
	round2[0].CurrentLoadKW = 80
	round2[1].CurrentLoadKW = 190
	// One more singular factorization than the warm repair budget: the warm
	// attempt is abandoned, and the cold retry factorizes cleanly.
	lp.ArmFault(lp.FaultSingularLU, 0, 5)
	warm, err := s.Partition(round2, 250)
	if err != nil {
		t.Fatalf("round 2 with corrupted warm basis: %v", err)
	}
	if warm.Degraded {
		t.Fatalf("plan degraded (%s); the cold retry should have solved the round", warm.DegradedReason)
	}
	cold, err := New(Options{HorizonHours: 24, MigrationFraction: 0.1}).Partition(round2, 250)
	if err != nil {
		t.Fatalf("cold round 2: %v", err)
	}
	for d := range warm.LoadKW {
		for h := range warm.LoadKW[d] {
			if math.Abs(warm.LoadKW[d][h]-cold.LoadKW[d][h]) > 1e-6 {
				t.Fatalf("plan[%d][%d]: corrupted-warm %v, cold %v", d, h, warm.LoadKW[d][h], cold.LoadKW[d][h])
			}
		}
	}
}

// TestPartitionDegradesOnTimeout bounds the round with an already-hopeless
// LPTimeout and asserts the scheduler degrades instead of blocking.
func TestPartitionDegradesOnTimeout(t *testing.T) {
	s := New(Options{HorizonHours: 24, MigrationFraction: 0.1, LPTimeout: time.Nanosecond})
	dcs := threeDCs(24)
	plan, err := s.Partition(dcs, 270)
	if err != nil {
		t.Fatalf("Partition with expired timeout: %v", err)
	}
	if !plan.Degraded {
		t.Fatal("plan.Degraded = false, want true under a 1ns LP timeout")
	}
	if !strings.Contains(plan.DegradedReason, "deadline") {
		t.Errorf("DegradedReason = %q, want it to mention the deadline", plan.DegradedReason)
	}
	assertPlanFeasible(t, plan, dcs, 270)
}

// TestStaticFallbackRedistribution exercises the greedy split directly: extra
// load lands on the greenest headroom, excess load is shed from the least
// green sites, and the result stays feasible.
func TestStaticFallbackRedistribution(t *testing.T) {
	s := New(Options{HorizonHours: 24, MigrationFraction: 0.1})
	if _, err := s.Partition(threeDCs(24), 270); err != nil {
		t.Fatalf("warm-up Partition: %v", err) // sizes the scheduler's scratch
	}

	// More load than currently placed: the spare 200 kW must go to the
	// greenest headroom first (ties on mean forecast break by index → kenya).
	dcs := threeDCs(24)
	dcs[0].CurrentLoadKW = 50
	grow := s.staticFallback(dcs, 250, "test")
	assertPlanFeasible(t, grow, dcs, 250)
	if grow.LoadKW[0][0] != 250 {
		t.Errorf("greenest site got %v kW, want the full 250", grow.LoadKW[0][0])
	}

	// Less load than currently placed: the 70 kW excess is shed from the
	// least green end of the order (guam has nothing, so mexico sheds).
	dcs = threeDCs(24)
	dcs[0].CurrentLoadKW = 270
	dcs[1].CurrentLoadKW = 100
	shed := s.staticFallback(dcs, 300, "test")
	assertPlanFeasible(t, shed, dcs, 300)
	if math.Abs(shed.LoadKW[1][0]-30) > 1e-9 {
		t.Errorf("mexico load after shed = %v, want 30", shed.LoadKW[1][0])
	}
	if math.Abs(shed.LoadKW[0][0]-270) > 1e-9 {
		t.Errorf("kenya load after shed = %v, want 270 untouched", shed.LoadKW[0][0])
	}
}
