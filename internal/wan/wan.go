// Package wan emulates the wide-area links between datacenters: per-pair
// bandwidth and latency, and the time it takes to transfer a given amount of
// data when several transfers share a link.
//
// The paper's prototype measured roughly 750 MB moved in under an hour over
// a VPN between Barcelona and Piscataway; the emulation uses links of that
// order by default, but every pair can be configured.
package wan

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Link describes the connectivity between one ordered pair of datacenters.
type Link struct {
	// BandwidthMbps is the usable bandwidth in megabits per second.
	BandwidthMbps float64
	// LatencyMs is the one-way latency in milliseconds.
	LatencyMs float64
}

// DefaultLink mirrors the paper's measured inter-continental VPN path:
// ~750 MB/hour is about 1.7 Mbps sustained; round up to 2 Mbps with 90 ms of
// latency.
var DefaultLink = Link{BandwidthMbps: 2, LatencyMs: 90}

// Errors returned by the network.
var (
	ErrUnknownPair = errors.New("wan: no link between the given datacenters")
	ErrBadTransfer = errors.New("wan: transfer size must be non-negative")
)

// Network is a set of named datacenters and the links between them.
type Network struct {
	mu        sync.RWMutex
	links     map[string]Link
	transfers map[string]int // active transfers per pair key, for bandwidth sharing
	defaultLk *Link
}

// NewNetwork returns an empty network.  If defaultLink is non-nil it is used
// for any pair without an explicit link.
func NewNetwork(defaultLink *Link) *Network {
	var def *Link
	if defaultLink != nil {
		cp := *defaultLink
		def = &cp
	}
	return &Network{
		links:     make(map[string]Link),
		transfers: make(map[string]int),
		defaultLk: def,
	}
}

func pairKey(from, to string) string {
	if from < to {
		return from + "|" + to
	}
	return to + "|" + from
}

// SetLink configures the (symmetric) link between two datacenters.
func (n *Network) SetLink(a, b string, link Link) error {
	if link.BandwidthMbps <= 0 {
		return fmt.Errorf("wan: link %s-%s must have positive bandwidth", a, b)
	}
	if a == b {
		return fmt.Errorf("wan: cannot link %s to itself", a)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[pairKey(a, b)] = link
	return nil
}

// LinkBetween returns the link between two datacenters.
func (n *Network) LinkBetween(a, b string) (Link, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if l, ok := n.links[pairKey(a, b)]; ok {
		return l, nil
	}
	if n.defaultLk != nil && a != b {
		return *n.defaultLk, nil
	}
	return Link{}, fmt.Errorf("%w: %s-%s", ErrUnknownPair, a, b)
}

// Distance returns a scheduling distance between two datacenters: the link
// latency (GreenNebula migrates to the "closest" receiver first).  Unknown
// pairs are infinitely far.
func (n *Network) Distance(a, b string) float64 {
	if a == b {
		return 0
	}
	l, err := n.LinkBetween(a, b)
	if err != nil {
		return 1e18
	}
	return l.LatencyMs
}

// TransferDuration returns how long moving `bytes` from one datacenter to
// the other takes on an otherwise idle link.
func (n *Network) TransferDuration(bytes int64, from, to string) (time.Duration, error) {
	if bytes < 0 {
		return 0, ErrBadTransfer
	}
	if from == to || bytes == 0 {
		return 0, nil
	}
	l, err := n.LinkBetween(from, to)
	if err != nil {
		return 0, err
	}
	seconds := float64(bytes*8) / (l.BandwidthMbps * 1e6)
	seconds += l.LatencyMs / 1000
	return time.Duration(seconds * float64(time.Second)), nil
}

// BeginTransfer reserves a share of the link for a transfer and returns the
// effective bandwidth in Mbps (the link is shared equally among active
// transfers) together with a release function.
func (n *Network) BeginTransfer(from, to string) (float64, func(), error) {
	l, err := n.LinkBetween(from, to)
	if err != nil {
		return 0, nil, err
	}
	key := pairKey(from, to)
	n.mu.Lock()
	n.transfers[key]++
	active := n.transfers[key]
	n.mu.Unlock()

	release := func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.transfers[key] > 0 {
			n.transfers[key]--
		}
	}
	return l.BandwidthMbps / float64(active), release, nil
}

// ActiveTransfers reports the number of in-flight transfers between a pair.
func (n *Network) ActiveTransfers(a, b string) int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.transfers[pairKey(a, b)]
}

// FullMesh builds a network connecting every pair of the given datacenters
// with the same link.
func FullMesh(datacenters []string, link Link) (*Network, error) {
	n := NewNetwork(nil)
	for i := range datacenters {
		for j := i + 1; j < len(datacenters); j++ {
			if err := n.SetLink(datacenters[i], datacenters[j], link); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}
