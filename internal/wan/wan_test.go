package wan

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestSetAndGetLink(t *testing.T) {
	n := NewNetwork(nil)
	if err := n.SetLink("a", "b", Link{BandwidthMbps: 100, LatencyMs: 10}); err != nil {
		t.Fatal(err)
	}
	l, err := n.LinkBetween("b", "a") // symmetric
	if err != nil {
		t.Fatal(err)
	}
	if l.BandwidthMbps != 100 {
		t.Errorf("bandwidth = %v", l.BandwidthMbps)
	}
	if _, err := n.LinkBetween("a", "c"); !errors.Is(err, ErrUnknownPair) {
		t.Errorf("want ErrUnknownPair, got %v", err)
	}
	if err := n.SetLink("a", "a", Link{BandwidthMbps: 1}); err == nil {
		t.Error("self link should error")
	}
	if err := n.SetLink("a", "b", Link{}); err == nil {
		t.Error("zero bandwidth should error")
	}
}

func TestDefaultLinkFallback(t *testing.T) {
	n := NewNetwork(&DefaultLink)
	l, err := n.LinkBetween("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if l.BandwidthMbps != DefaultLink.BandwidthMbps {
		t.Errorf("fallback link = %+v", l)
	}
}

func TestTransferDuration(t *testing.T) {
	n := NewNetwork(nil)
	if err := n.SetLink("bcn", "nj", Link{BandwidthMbps: 2, LatencyMs: 90}); err != nil {
		t.Fatal(err)
	}
	// The paper's measurement: ~750 MB in under one hour over ~2 Mbps.
	d, err := n.TransferDuration(750<<20, "bcn", "nj")
	if err != nil {
		t.Fatal(err)
	}
	if d > time.Hour {
		t.Errorf("750 MB over 2 Mbps took %v, want < 1 h", d)
	}
	if d < 30*time.Minute {
		t.Errorf("750 MB over 2 Mbps took %v, implausibly fast", d)
	}
	// Same-site and zero-byte transfers are free.
	if d, _ := n.TransferDuration(1<<30, "bcn", "bcn"); d != 0 {
		t.Errorf("same-site transfer = %v", d)
	}
	if d, _ := n.TransferDuration(0, "bcn", "nj"); d != 0 {
		t.Errorf("zero-byte transfer = %v", d)
	}
	if _, err := n.TransferDuration(-1, "bcn", "nj"); !errors.Is(err, ErrBadTransfer) {
		t.Errorf("want ErrBadTransfer, got %v", err)
	}
	if _, err := n.TransferDuration(1, "bcn", "nowhere"); err == nil {
		t.Error("unknown pair should error")
	}
}

func TestBandwidthSharing(t *testing.T) {
	n := NewNetwork(nil)
	if err := n.SetLink("a", "b", Link{BandwidthMbps: 100, LatencyMs: 1}); err != nil {
		t.Fatal(err)
	}
	bw1, release1, err := n.BeginTransfer("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if bw1 != 100 {
		t.Errorf("first transfer bandwidth = %v, want 100", bw1)
	}
	bw2, release2, err := n.BeginTransfer("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if bw2 != 50 {
		t.Errorf("second concurrent transfer bandwidth = %v, want 50", bw2)
	}
	if n.ActiveTransfers("b", "a") != 2 {
		t.Errorf("active transfers = %d, want 2", n.ActiveTransfers("a", "b"))
	}
	release1()
	release2()
	release2() // double release must not underflow
	if n.ActiveTransfers("a", "b") != 0 {
		t.Errorf("active transfers after release = %d", n.ActiveTransfers("a", "b"))
	}
	if _, _, err := n.BeginTransfer("a", "zzz"); err == nil {
		t.Error("unknown pair should error")
	}
}

func TestDistance(t *testing.T) {
	n := NewNetwork(nil)
	if err := n.SetLink("a", "b", Link{BandwidthMbps: 10, LatencyMs: 42}); err != nil {
		t.Fatal(err)
	}
	if d := n.Distance("a", "a"); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	if d := n.Distance("a", "b"); d != 42 {
		t.Errorf("distance = %v, want the latency", d)
	}
	if d := n.Distance("a", "zzz"); d < 1e17 {
		t.Errorf("unknown pair distance = %v, want huge", d)
	}
}

func TestFullMesh(t *testing.T) {
	n, err := FullMesh([]string{"x", "y", "z"}, Link{BandwidthMbps: 10, LatencyMs: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{"x", "y"}, {"y", "z"}, {"x", "z"}} {
		if _, err := n.LinkBetween(pair[0], pair[1]); err != nil {
			t.Errorf("missing link %v: %v", pair, err)
		}
	}
	if _, err := FullMesh([]string{"a", "a"}, Link{BandwidthMbps: 1}); err == nil {
		t.Error("duplicate names should error (self link)")
	}
	// Transfer time scales linearly with size.
	d1, _ := n.TransferDuration(10<<20, "x", "y")
	d2, _ := n.TransferDuration(20<<20, "x", "y")
	if math.Abs(float64(d2)-2*float64(d1)) > float64(20*time.Millisecond) {
		t.Errorf("transfer time not ~linear: %v vs %v", d1, d2)
	}
}
