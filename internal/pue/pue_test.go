package pue

import (
	"math"
	"testing"
	"testing/quick"

	"greencloud/internal/timeseries"
	"greencloud/internal/weather"
)

func TestFromTemperatureKnots(t *testing.T) {
	cases := []struct {
		tempC float64
		want  float64
	}{
		{-10, 1.05},
		{0, 1.05},
		{15, 1.05},
		{25, 1.10},
		{45, 1.40},
		{60, 1.40},
	}
	for _, tc := range cases {
		if got := FromTemperature(tc.tempC); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("FromTemperature(%v) = %v, want %v", tc.tempC, got, tc.want)
		}
	}
}

func TestFromTemperatureInterpolates(t *testing.T) {
	// Halfway between the 25 °C and 30 °C knots.
	want := (1.10 + 1.155) / 2
	if got := FromTemperature(27.5); math.Abs(got-want) > 1e-9 {
		t.Errorf("FromTemperature(27.5) = %v, want %v", got, want)
	}
}

func TestFromTemperatureMonotoneAndBounded(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 80) - 20
		b = math.Mod(math.Abs(b), 80) - 20
		lo, hi := math.Min(a, b), math.Max(a, b)
		pLo, pHi := FromTemperature(lo), FromTemperature(hi)
		if pLo > pHi+1e-12 {
			return false
		}
		return pLo >= Floor && pHi <= 1.40+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAverageInPaperRange(t *testing.T) {
	// Yearly average PUEs across climate archetypes should land in a range
	// compatible with the paper's 1.06–1.13 for its 1373 locations.  Allow a
	// slightly wider band because our synthetic tropics are hotter than the
	// paper's site mix.
	for _, a := range weather.Archetypes() {
		tr := weather.Generate(a, 5)
		avg := Average(tr.TemperatureC)
		if avg < 1.05 || avg > 1.20 {
			t.Errorf("%v: average PUE %v outside plausible range", a, avg)
		}
		if Max(tr.TemperatureC) < avg-1e-6 {
			t.Errorf("%v: max PUE below average", a)
		}
	}
}

func TestColdSitesHaveLowerPUE(t *testing.T) {
	ridge := weather.Generate(weather.Ridge, 2)
	desert := weather.Generate(weather.Desert, 2)
	if Average(ridge.TemperatureC) >= Average(desert.TemperatureC) {
		t.Errorf("ridge PUE %v should be below desert PUE %v",
			Average(ridge.TemperatureC), Average(desert.TemperatureC))
	}
}

func TestSeriesMatchesPointwise(t *testing.T) {
	temp := timeseries.Generate(func(day, hour int) float64 { return float64(hour) })
	s := Series(temp)
	for _, hr := range []int{0, 12, 23, 5000} {
		if got, want := s.At(hr), FromTemperature(temp.At(hr)); got != want {
			t.Errorf("Series at %d = %v, want %v", hr, got, want)
		}
	}
}

func TestCurveSweep(t *testing.T) {
	temps, pues := Curve(15, 45, 5)
	if len(temps) != 7 || len(pues) != 7 {
		t.Fatalf("Curve returned %d/%d points, want 7", len(temps), len(pues))
	}
	if pues[0] != 1.05 || math.Abs(pues[6]-1.40) > 1e-9 {
		t.Errorf("Curve endpoints = %v, %v", pues[0], pues[6])
	}
	// Degenerate step must not loop forever and must still return points.
	temps, _ = Curve(10, 12, 0)
	if len(temps) != 3 {
		t.Errorf("Curve with zero step returned %d points, want 3", len(temps))
	}
}
