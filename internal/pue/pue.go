// Package pue models datacenter Power Usage Effectiveness as a function of
// external air temperature, following Fig. 4 of the paper.
//
// The curve was measured on a micro-datacenter (Parasol) that combines an
// air-side economizer ("free cooling") with a direct-expansion air
// conditioner: below roughly 15 °C the economizer alone keeps the PUE near
// its floor, and as the outside temperature rises the air conditioner takes
// over and the PUE climbs towards ~1.4 at 45 °C.
package pue

import "greencloud/internal/timeseries"

// Floor is the minimum achievable PUE (all free cooling).
const Floor = 1.05

// curve is the piecewise-linear PUE(temperature) relation of Fig. 4,
// expressed as (temperature °C, PUE) knots.
var curve = []struct {
	tempC float64
	pue   float64
}{
	{15, 1.05},
	{20, 1.065},
	{25, 1.10},
	{30, 1.155},
	{35, 1.23},
	{40, 1.32},
	{45, 1.40},
}

// FromTemperature returns the instantaneous PUE for the given external air
// temperature in °C.  Temperatures below the first knot return the floor;
// temperatures above the last knot are clamped to the final value.
func FromTemperature(tempC float64) float64 {
	if tempC <= curve[0].tempC {
		return curve[0].pue
	}
	last := curve[len(curve)-1]
	if tempC >= last.tempC {
		return last.pue
	}
	for i := 1; i < len(curve); i++ {
		if tempC <= curve[i].tempC {
			lo, hi := curve[i-1], curve[i]
			frac := (tempC - lo.tempC) / (hi.tempC - lo.tempC)
			return lo.pue + frac*(hi.pue-lo.pue)
		}
	}
	return last.pue
}

// Series converts an hourly temperature trace into an hourly PUE trace.
func Series(temperatureC *timeseries.Hourly) *timeseries.Hourly {
	return temperatureC.Map(FromTemperature)
}

// Average returns the yearly average PUE implied by an hourly temperature
// trace (the per-location "PUE(d)" the paper reports in the 1.06–1.13 range).
func Average(temperatureC *timeseries.Hourly) float64 {
	return Series(temperatureC).Mean()
}

// Max returns the worst-case PUE over the year, used to size the datacenter's
// power and cooling infrastructure (the paper's maxPUE(d)).
func Max(temperatureC *timeseries.Hourly) float64 {
	return Series(temperatureC).Max()
}

// Curve returns the (temperature, PUE) pairs for a sweep between lo and hi
// °C with the given step, used to regenerate Fig. 4.
func Curve(lo, hi, step float64) (temps, pues []float64) {
	if step <= 0 {
		step = 1
	}
	for t := lo; t <= hi+1e-9; t += step {
		temps = append(temps, t)
		pues = append(pues, FromTemperature(t))
	}
	return temps, pues
}
