package weather

import (
	"math"
	"testing"

	"greencloud/internal/timeseries"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Desert, 42)
	b := Generate(Desert, 42)
	for _, hr := range []int{0, 1000, 4999, timeseries.HoursPerYear - 1} {
		if a.TemperatureC.At(hr) != b.TemperatureC.At(hr) {
			t.Fatalf("temperature differs at hour %d for identical seeds", hr)
		}
		if a.IrradianceWm2.At(hr) != b.IrradianceWm2.At(hr) {
			t.Fatalf("irradiance differs at hour %d for identical seeds", hr)
		}
		if a.WindSpeedMs.At(hr) != b.WindSpeedMs.At(hr) {
			t.Fatalf("wind differs at hour %d for identical seeds", hr)
		}
	}
	c := Generate(Desert, 43)
	if a.TemperatureC.Mean() == c.TemperatureC.Mean() && a.WindSpeedMs.Mean() == c.WindSpeedMs.Mean() {
		t.Error("different seeds produced identical traces")
	}
}

func TestTraceLengthsAndBounds(t *testing.T) {
	for _, a := range Archetypes() {
		tr := Generate(a, 7)
		if tr.TemperatureC.Len() != timeseries.HoursPerYear {
			t.Fatalf("%v: temperature length %d", a, tr.TemperatureC.Len())
		}
		if got := tr.IrradianceWm2.Min(); got < 0 {
			t.Errorf("%v: negative irradiance %v", a, got)
		}
		if got := tr.IrradianceWm2.Max(); got > 1200 {
			t.Errorf("%v: irradiance %v exceeds physical clear-sky bound", a, got)
		}
		if got := tr.WindSpeedMs.Min(); got < 0 {
			t.Errorf("%v: negative wind speed %v", a, got)
		}
		if got := tr.WindSpeedMs.Max(); got > 60 {
			t.Errorf("%v: implausible wind speed %v", a, got)
		}
		if got := tr.TemperatureC.Mean(); got < -30 || got > 40 {
			t.Errorf("%v: implausible mean temperature %v", a, got)
		}
		if got := tr.PressureKPa.Mean(); got < 75 || got > 105 {
			t.Errorf("%v: implausible mean pressure %v", a, got)
		}
	}
}

func TestIrradianceIsZeroAtNight(t *testing.T) {
	tr := Generate(Temperate, 11)
	// Local solar midnight: hour 0 every day must be dark at mid latitudes.
	for day := 0; day < 365; day += 30 {
		if v := tr.IrradianceWm2.AtDayHour(day, 0); v != 0 {
			t.Errorf("day %d hour 0: irradiance %v, want 0", day, v)
		}
	}
	// And the brightest noon of the year must be genuinely bright.
	best := 0.0
	for day := 0; day < 365; day++ {
		if v := tr.IrradianceWm2.AtDayHour(day, 12); v > best {
			best = v
		}
	}
	if best < 400 {
		t.Errorf("brightest noon irradiance %v looks too low", best)
	}
}

func TestArchetypeOrdering(t *testing.T) {
	// Ridge sites must be windier than desert sites; desert sites must be
	// sunnier and warmer than ridge sites.  These orderings are what the
	// placement results rely on (wind sites beat solar sites on capacity
	// factor, solar sites have higher PUE).
	const seeds = 5
	meanOver := func(a Archetype, f func(*Trace) float64) float64 {
		sum := 0.0
		for s := int64(0); s < seeds; s++ {
			sum += f(Generate(a, s))
		}
		return sum / seeds
	}
	ridgeWind := meanOver(Ridge, func(tr *Trace) float64 { return tr.WindSpeedMs.Mean() })
	desertWind := meanOver(Desert, func(tr *Trace) float64 { return tr.WindSpeedMs.Mean() })
	if ridgeWind <= desertWind+2 {
		t.Errorf("ridge wind %v should clearly exceed desert wind %v", ridgeWind, desertWind)
	}
	desertSun := meanOver(Desert, func(tr *Trace) float64 { return tr.IrradianceWm2.Mean() })
	ridgeSun := meanOver(Ridge, func(tr *Trace) float64 { return tr.IrradianceWm2.Mean() })
	if desertSun <= ridgeSun {
		t.Errorf("desert irradiance %v should exceed ridge irradiance %v", desertSun, ridgeSun)
	}
	desertTemp := meanOver(Desert, func(tr *Trace) float64 { return tr.TemperatureC.Mean() })
	ridgeTemp := meanOver(Ridge, func(tr *Trace) float64 { return tr.TemperatureC.Mean() })
	if desertTemp <= ridgeTemp+10 {
		t.Errorf("desert temperature %v should clearly exceed ridge temperature %v", desertTemp, ridgeTemp)
	}
}

func TestSeasonalTemperatureSwing(t *testing.T) {
	tr := Generate(Continental, 3)
	if tr.LatitudeDeg == 0 {
		t.Fatal("latitude not set")
	}
	// Compare mid-winter and mid-summer monthly means for the hemisphere.
	winterDay, summerDay := 15, 196
	if tr.LatitudeDeg < 0 {
		winterDay, summerDay = 196, 15
	}
	meanAround := func(center int) float64 {
		sum, n := 0.0, 0
		for d := center - 10; d <= center+10; d++ {
			for h := 0; h < 24; h++ {
				sum += tr.TemperatureC.AtDayHour((d+365)%365, h)
				n++
			}
		}
		return sum / float64(n)
	}
	winter := meanAround(winterDay)
	summer := meanAround(summerDay)
	if summer-winter < 10 {
		t.Errorf("continental seasonal swing too small: summer %v winter %v", summer, winter)
	}
}

func TestArchetypeString(t *testing.T) {
	if Desert.String() != "desert" {
		t.Errorf("Desert.String() = %q", Desert.String())
	}
	if Archetype(99).String() == "" {
		t.Error("unknown archetype should still produce a non-empty name")
	}
	if len(Archetypes()) != 7 {
		t.Errorf("Archetypes() returned %d entries, want 7", len(Archetypes()))
	}
}

func TestClearSkyIrradianceGeometry(t *testing.T) {
	// Noon beats morning, equator beats high latitude in winter, and night is dark.
	if clearSkyIrradiance(40, 172, 12) <= clearSkyIrradiance(40, 172, 8) {
		t.Error("noon irradiance should exceed morning irradiance")
	}
	if clearSkyIrradiance(0, 15, 12) <= clearSkyIrradiance(60, 15, 12) {
		t.Error("equatorial winter noon should beat 60° latitude winter noon")
	}
	if clearSkyIrradiance(40, 100, 0) != 0 {
		t.Error("midnight should have zero irradiance")
	}
	if math.IsNaN(clearSkyIrradiance(89, 0, 12)) {
		t.Error("polar irradiance must not be NaN")
	}
}

// TestTraceCacheRingEviction pins the cache's eviction policy: insertion-
// order FIFO, one entry at a time.  Cache hits are observable as pointer
// identity (Generate returns the shared cached *Trace), so the test checks
// that an old entry survives until exactly maxCachedTraces newer distinct
// keys have been inserted, and that the newest entries always survive a
// sweep — the property the old drop-the-whole-map policy lacked.
func TestTraceCacheRingEviction(t *testing.T) {
	const base = int64(9_000_000_000) // seeds no other test uses
	first := Generate(Desert, base)
	if Generate(Desert, base) != first {
		t.Fatal("immediate second Generate did not hit the cache")
	}
	// Fill the window with maxCachedTraces-1 more keys: first must survive
	// (it is at most maxCachedTraces-th oldest among our insertions).
	var last *Trace
	for i := int64(1); i < maxCachedTraces; i++ {
		last = Generate(Desert, base+i)
	}
	if Generate(Desert, base) != first {
		t.Fatal("entry evicted before the window filled past it")
	}
	// A full window of strictly newer keys must push out every older entry…
	for i := int64(maxCachedTraces); i < 2*maxCachedTraces; i++ {
		Generate(Desert, base+i)
	}
	if Generate(Desert, base) == first {
		t.Fatal("oldest entry survived a full window of newer insertions")
	}
	// …but the sweep evicts one-at-a-time: the (maxCachedTraces-1)-th key of
	// the first batch was still within the window during the second batch
	// only until its slot came around again — the newest second-batch keys,
	// though, are all still cached.
	if got := Generate(Desert, base+2*maxCachedTraces-1); got == nil {
		t.Fatal("nil trace")
	} else if Generate(Desert, base+2*maxCachedTraces-1) != got {
		t.Fatal("newest entry did not stay cached")
	}
	if len(traceCache.m) > maxCachedTraces {
		t.Fatalf("cache holds %d entries, cap is %d", len(traceCache.m), maxCachedTraces)
	}
	_ = last
}
