// Package weather generates synthetic Typical Meteorological Year (TMY)
// traces.
//
// The paper instantiates its framework with TMY data for 1373 real locations
// from the US Department of Energy (hourly temperature, solar irradiation,
// air pressure and wind speed).  That dataset is not redistributable, so this
// package produces deterministic synthetic equivalents: each location is
// assigned a climate archetype (desert, temperate, maritime, ridge, tropical,
// continental, polar) and a seed, and the generator derives an hourly year of
// weather from solar geometry, seasonal temperature cycles and a stochastic
// cloud/wind process.  The traces have the properties the placement
// framework depends on: realistic diurnal and seasonal solar shapes, solar
// capacity factors in the 8–25 % range, wind capacity factors from a few
// percent up to >50 % at ridge sites, and temperature series that map to the
// paper's PUE range of roughly 1.06–1.13.
package weather

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"greencloud/internal/timeseries"
)

// Archetype identifies a coarse climate class used to parameterize the
// synthetic weather generator.
type Archetype int

// Climate archetypes.  They intentionally mirror the kinds of sites that
// show up in the paper's siting solutions: hot deserts (Harare, Nairobi,
// Phoenix-like: excellent sun, warm), windy ridges and lakefronts
// (Mount Washington, Burke Lakefront: exceptional wind, cold), temperate and
// continental mid-latitude sites, maritime coasts, tropics, and polar sites
// that pad the tail of the distribution.
const (
	Desert Archetype = iota + 1
	Temperate
	Maritime
	Ridge
	Tropical
	Continental
	Polar
)

var archetypeNames = map[Archetype]string{
	Desert:      "desert",
	Temperate:   "temperate",
	Maritime:    "maritime",
	Ridge:       "ridge",
	Tropical:    "tropical",
	Continental: "continental",
	Polar:       "polar",
}

// String returns the lower-case archetype name.
func (a Archetype) String() string {
	if s, ok := archetypeNames[a]; ok {
		return s
	}
	return fmt.Sprintf("archetype(%d)", int(a))
}

// Archetypes lists all defined archetypes in a stable order.
func Archetypes() []Archetype {
	return []Archetype{Desert, Temperate, Maritime, Ridge, Tropical, Continental, Polar}
}

// params bundles the generator knobs for one archetype.
type params struct {
	// meanTempC is the annual mean air temperature.
	meanTempC float64
	// seasonalAmpC is the summer/winter swing amplitude (half peak-to-peak).
	seasonalAmpC float64
	// diurnalAmpC is the day/night swing amplitude.
	diurnalAmpC float64
	// cloudiness is the mean fraction of solar irradiance removed by
	// clouds (0 = always clear, 1 = always overcast).
	cloudiness float64
	// cloudVariability scales day-to-day cloud noise.
	cloudVariability float64
	// meanWind is the annual mean wind speed at hub height (m/s).
	meanWind float64
	// windVariability scales the gust/lull process.
	windVariability float64
	// windDiurnal is the amplitude of the diurnal wind cycle (m/s).
	windDiurnal float64
	// windWinterBoost is the extra winter mean wind (m/s).
	windWinterBoost float64
	// latitudeAbs is the typical absolute latitude in degrees.
	latitudeAbs float64
	// latitudeSpread is the +/- range around latitudeAbs.
	latitudeSpread float64
	// pressureKPa is the mean station pressure (altitude effect).
	pressureKPa float64
}

func archetypeParams(a Archetype) params {
	switch a {
	case Desert:
		return params{
			meanTempC: 24, seasonalAmpC: 9, diurnalAmpC: 9,
			cloudiness: 0.12, cloudVariability: 0.10,
			meanWind: 4.5, windVariability: 1.8, windDiurnal: 1.0, windWinterBoost: 0.3,
			latitudeAbs: 24, latitudeSpread: 10, pressureKPa: 98,
		}
	case Temperate:
		return params{
			meanTempC: 13, seasonalAmpC: 10, diurnalAmpC: 6,
			cloudiness: 0.38, cloudVariability: 0.22,
			meanWind: 5.5, windVariability: 2.4, windDiurnal: 0.8, windWinterBoost: 1.0,
			latitudeAbs: 42, latitudeSpread: 8, pressureKPa: 100,
		}
	case Maritime:
		return params{
			meanTempC: 11, seasonalAmpC: 6, diurnalAmpC: 4,
			cloudiness: 0.48, cloudVariability: 0.20,
			meanWind: 7.0, windVariability: 2.8, windDiurnal: 0.6, windWinterBoost: 1.6,
			latitudeAbs: 50, latitudeSpread: 8, pressureKPa: 101,
		}
	case Ridge:
		return params{
			meanTempC: 4, seasonalAmpC: 11, diurnalAmpC: 4,
			cloudiness: 0.45, cloudVariability: 0.25,
			meanWind: 11.5, windVariability: 3.6, windDiurnal: 0.5, windWinterBoost: 2.4,
			latitudeAbs: 45, latitudeSpread: 10, pressureKPa: 85,
		}
	case Tropical:
		return params{
			meanTempC: 26, seasonalAmpC: 2.5, diurnalAmpC: 6,
			cloudiness: 0.34, cloudVariability: 0.24,
			meanWind: 5.0, windVariability: 2.0, windDiurnal: 1.2, windWinterBoost: 0.0,
			latitudeAbs: 10, latitudeSpread: 10, pressureKPa: 100,
		}
	case Continental:
		return params{
			meanTempC: 9, seasonalAmpC: 15, diurnalAmpC: 8,
			cloudiness: 0.32, cloudVariability: 0.22,
			meanWind: 5.8, windVariability: 2.4, windDiurnal: 0.9, windWinterBoost: 1.2,
			latitudeAbs: 46, latitudeSpread: 8, pressureKPa: 99,
		}
	case Polar:
		return params{
			meanTempC: -4, seasonalAmpC: 14, diurnalAmpC: 3,
			cloudiness: 0.45, cloudVariability: 0.20,
			meanWind: 6.5, windVariability: 2.6, windDiurnal: 0.4, windWinterBoost: 1.8,
			latitudeAbs: 64, latitudeSpread: 6, pressureKPa: 100,
		}
	default:
		return archetypeParams(Temperate)
	}
}

// Trace holds a full synthetic TMY for one site.
type Trace struct {
	// TemperatureC is the external air temperature in °C.
	TemperatureC *timeseries.Hourly
	// IrradianceWm2 is global horizontal (plane-of-array approximated)
	// solar irradiance in W/m².
	IrradianceWm2 *timeseries.Hourly
	// WindSpeedMs is wind speed at hub height in m/s.
	WindSpeedMs *timeseries.Hourly
	// PressureKPa is station pressure in kPa (used for air density).
	PressureKPa *timeseries.Hourly
	// LatitudeDeg is the site latitude used for solar geometry (signed).
	LatitudeDeg float64
	// Archetype is the climate class the trace was generated from.
	Archetype Archetype
}

// traceCache memoizes Generate.  The generator is pure — the same
// (archetype, seed) pair always yields the identical trace — and one
// full-year trace costs hundreds of thousands of transcendental
// evaluations, so callers that re-derive hourly profiles (catalog builds,
// emulation setup, repeated experiment runs) would otherwise pay that cost
// on every call.  A Trace is immutable outside generation (every Hourly
// accessor returns a copy), which is what makes sharing the cached
// instance safe.  Eviction is a deterministic insertion-order ring: once
// the cache holds maxCachedTraces entries, inserting a new trace evicts
// the oldest-inserted one (ring[next]), so a seed sweep cycles through the
// window one entry at a time instead of dropping the whole map — the
// ~(maxCachedTraces−1) still-hot traces of an interleaved workload survive
// a sweep, and which entry goes is a function of insertion history alone,
// never of map iteration order.
var traceCache struct {
	sync.Mutex
	m    map[traceKey]*Trace
	ring [maxCachedTraces]traceKey // insertion order; valid for len(m) entries
	next int                       // ring slot the next insertion overwrites
}

type traceKey struct {
	a    Archetype
	seed int64
}

const maxCachedTraces = 128

// Generate builds the synthetic TMY for a site of the given archetype.  The
// same (archetype, seed) pair always yields the identical trace, which keeps
// every experiment in the repository reproducible — and lets Generate serve
// repeated calls from a cache (the returned trace may be shared; treat it as
// read-only, which every accessor already enforces by copying).
func Generate(a Archetype, seed int64) *Trace {
	key := traceKey{a, seed}
	traceCache.Lock()
	if tr, ok := traceCache.m[key]; ok {
		traceCache.Unlock()
		return tr
	}
	traceCache.Unlock()
	tr := generate(a, seed)
	traceCache.Lock()
	if traceCache.m == nil {
		traceCache.m = make(map[traceKey]*Trace, maxCachedTraces)
	}
	if _, ok := traceCache.m[key]; !ok {
		if len(traceCache.m) >= maxCachedTraces {
			delete(traceCache.m, traceCache.ring[traceCache.next])
		}
		traceCache.ring[traceCache.next] = key
		traceCache.next = (traceCache.next + 1) % maxCachedTraces
	}
	traceCache.m[key] = tr
	traceCache.Unlock()
	return tr
}

func generate(a Archetype, seed int64) *Trace {
	p := archetypeParams(a)
	rng := rand.New(rand.NewSource(seed*7919 + int64(a)*104729))

	lat := p.latitudeAbs + (rng.Float64()*2-1)*p.latitudeSpread
	if rng.Float64() < 0.25 { // a minority of sites in the southern hemisphere
		lat = -lat
	}

	// Per-site perturbations so two sites of the same archetype differ.
	meanTemp := p.meanTempC + rng.NormFloat64()*2.0
	meanWind := p.meanWind + rng.NormFloat64()*1.0
	if meanWind < 1.5 {
		meanWind = 1.5
	}
	cloudBase := clamp(p.cloudiness+rng.NormFloat64()*0.06, 0.02, 0.85)
	pressure := p.pressureKPa + rng.NormFloat64()*1.5

	// Day-scale processes: cloud cover and synoptic wind vary with a few-day
	// correlation.  Generate per-day values first, then fill hours.
	dayCloud := make([]float64, 365)
	dayWind := make([]float64, 365)
	cloudState := cloudBase
	windState := meanWind
	for d := 0; d < 365; d++ {
		season := seasonFactor(d, lat)
		cloudTarget := cloudBase + 0.08*season // slightly cloudier winters
		cloudState = 0.6*cloudState + 0.4*cloudTarget + rng.NormFloat64()*p.cloudVariability
		dayCloud[d] = clamp(cloudState, 0, 0.95)

		windTarget := meanWind + p.windWinterBoost*season
		windState = 0.55*windState + 0.45*windTarget + rng.NormFloat64()*p.windVariability
		if windState < 0 {
			windState = 0
		}
		dayWind[d] = windState
	}

	temp := timeseries.NewHourly()
	irr := timeseries.NewHourly()
	wind := timeseries.NewHourly()
	press := timeseries.NewHourly()

	for d := 0; d < 365; d++ {
		season := seasonFactor(d, lat)
		for h := 0; h < 24; h++ {
			idx := d*24 + h
			// Temperature: seasonal + diurnal cycle (peak ~15:00) + noise.
			diurnal := math.Cos(2 * math.Pi * float64(h-15) / 24)
			tVal := meanTemp - p.seasonalAmpC*season + p.diurnalAmpC*0.5*diurnal + rng.NormFloat64()*0.8
			temp.Set(idx, tVal)

			// Solar irradiance: clear-sky from geometry × cloud attenuation.
			clear := clearSkyIrradiance(lat, d, h)
			attenuation := 1 - dayCloud[d]*(0.75+0.25*rng.Float64())
			irr.Set(idx, math.Max(0, clear*attenuation))

			// Wind: synoptic day value + diurnal cycle + gust noise.
			wDiurnal := p.windDiurnal * math.Sin(2*math.Pi*float64(h-14)/24)
			wVal := dayWind[d] + wDiurnal + rng.NormFloat64()*0.8
			if wVal < 0 {
				wVal = 0
			}
			wind.Set(idx, wVal)

			press.Set(idx, pressure+rng.NormFloat64()*0.3)
		}
	}

	return &Trace{
		TemperatureC:  temp,
		IrradianceWm2: irr,
		WindSpeedMs:   wind,
		PressureKPa:   press,
		LatitudeDeg:   lat,
		Archetype:     a,
	}
}

// seasonFactor returns +1 in mid-winter and −1 in mid-summer for the site's
// hemisphere (day is 0-based day of year).
func seasonFactor(day int, latitudeDeg float64) float64 {
	// Northern-hemisphere winter is centred on day ~15 (mid January).
	f := math.Cos(2 * math.Pi * float64(day-15) / 365)
	if latitudeDeg < 0 {
		f = -f
	}
	return f
}

// clearSkyIrradiance returns an estimate of clear-sky global irradiance in
// W/m² for the given latitude, day of year and local solar hour, using a
// simple solar-geometry model (declination + hour angle) with an atmospheric
// transmittance factor.
func clearSkyIrradiance(latitudeDeg float64, day, hour int) float64 {
	const solarConstant = 1361.0 // W/m²
	latRad := latitudeDeg * math.Pi / 180
	// Solar declination (Cooper's equation).
	decl := 23.45 * math.Pi / 180 * math.Sin(2*math.Pi*float64(284+day+1)/365)
	// Hour angle: solar noon at hour 12.
	hourAngle := (float64(hour) - 12) * 15 * math.Pi / 180
	cosZenith := math.Sin(latRad)*math.Sin(decl) + math.Cos(latRad)*math.Cos(decl)*math.Cos(hourAngle)
	if cosZenith <= 0 {
		return 0
	}
	// Simple clear-sky transmittance, with a mild air-mass penalty at low sun.
	transmittance := 0.75 * math.Pow(cosZenith, 0.15)
	return solarConstant * cosZenith * transmittance
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
