package cost

import (
	"math"
	"testing"
	"testing/quick"

	"greencloud/internal/location"
)

func testSite(t *testing.T) *location.Site {
	t.Helper()
	cat, err := location.Generate(location.Options{Count: 4, Seed: 1, RepresentativeDays: 1})
	if err != nil {
		t.Fatalf("generate catalog: %v", err)
	}
	s, err := cat.Site(0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaultParamsValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := p
	bad.BatteryEfficiency = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero battery efficiency should be invalid")
	}
	bad = p
	bad.FinancingYears = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero financing years should be invalid")
	}
	bad = p
	bad.CreditNetMeter = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("credit above 1 should be invalid")
	}
	bad = p
	bad.ServerPowerW = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero server power should be invalid")
	}
	bad = p
	bad.AnnualInterestRate = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("negative interest should be invalid")
	}
}

func TestMonthlyFinanced(t *testing.T) {
	// Zero interest: the monthly cost is simply principal / amortization months.
	if got, want := MonthlyFinanced(1200, 0, 1, 1), 100.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("zero-interest MonthlyFinanced = %v, want %v", got, want)
	}
	// With interest the total repaid exceeds the principal.
	withInterest := MonthlyFinanced(1_000_000, 0.0325, 12, 12)
	noInterest := MonthlyFinanced(1_000_000, 0, 12, 12)
	if withInterest <= noInterest {
		t.Errorf("interest should increase the monthly cost: %v <= %v", withInterest, noInterest)
	}
	// Longer amortization reduces the monthly charge.
	if MonthlyFinanced(1e6, 0.0325, 12, 24) >= MonthlyFinanced(1e6, 0.0325, 12, 12) {
		t.Error("longer amortization should reduce the monthly cost")
	}
	if MonthlyFinanced(0, 0.0325, 12, 12) != 0 {
		t.Error("zero principal should cost nothing")
	}
	if MonthlyFinanced(-5, 0.0325, 12, 12) != 0 {
		t.Error("negative principal should cost nothing")
	}
}

func TestMonthlyInterestOnly(t *testing.T) {
	interestOnly := MonthlyInterestOnly(1e6, 0.0325, 12, 12)
	full := MonthlyFinanced(1e6, 0.0325, 12, 12)
	if interestOnly <= 0 {
		t.Error("interest-only cost should be positive with a positive rate")
	}
	if interestOnly >= full {
		t.Errorf("interest-only %v should be far below full financing %v", interestOnly, full)
	}
	if MonthlyInterestOnly(1e6, 0, 12, 12) != 0 {
		t.Error("interest-only cost at zero rate should be zero")
	}
}

func TestMonthlyFinancedMonotoneInPrincipal(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 1e8))
		b = math.Abs(math.Mod(b, 1e8))
		lo, hi := math.Min(a, b), math.Max(a, b)
		return MonthlyFinanced(lo, 0.0325, 12, 12) <= MonthlyFinanced(hi, 0.0325, 12, 12)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNumServers(t *testing.T) {
	p := DefaultParams()
	// 25 MW at 275 W/server + 480/32 W of switch share = 290 W per server.
	got := p.NumServers(25_000)
	want := 25_000_000.0 / 290.0
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("NumServers(25MW) = %v, want %v", got, want)
	}
	// The paper's 50 MW network hosts ~91,000 servers in two 25 MW DCs
	// plus slack; one 25 MW DC should be in the 80k–90k range.
	if got < 80_000 || got > 90_000 {
		t.Errorf("NumServers(25MW) = %v, want ~86k (paper: ~45.5k per 12.5MW)", got)
	}
}

func TestBuildDCPricePerW(t *testing.T) {
	p := DefaultParams()
	if got := p.BuildDCPricePerW(5_000); got != p.PriceBuildDCSmallPerW {
		t.Errorf("small DC price = %v, want %v", got, p.PriceBuildDCSmallPerW)
	}
	if got := p.BuildDCPricePerW(25_000); got != p.PriceBuildDCLargePerW {
		t.Errorf("large DC price = %v, want %v", got, p.PriceBuildDCLargePerW)
	}
}

func TestMonthlySiteBreakdown(t *testing.T) {
	p := DefaultParams()
	site := testSite(t)
	prov := Provision{CapacityKW: 25_000, MaxPUE: 1.1, WindKW: 50_000, SolarKW: 10_000, BatteryKWh: 5_000}
	use := EnergyUse{BrownKWh: 100e6, NetChargedKWh: 20e6, NetDischargedKWh: 15e6}
	b := p.MonthlySite(site, prov, use)

	if b.Total() <= 0 {
		t.Fatal("total monthly cost should be positive")
	}
	// Construction and IT should dominate, as in Fig. 7.
	if b.BuildDC <= 0 || b.ITEquipment <= 0 {
		t.Error("construction and IT equipment costs must be positive")
	}
	if b.BuildWind <= 0 || b.BuildSolar <= 0 || b.Battery <= 0 {
		t.Error("plant and battery costs must be positive when provisioned")
	}
	if b.ConnectionPower <= 0 || b.ConnectionFiber <= 0 {
		t.Error("connection costs must be positive")
	}
	if b.NetworkBandwidth <= 0 {
		t.Error("bandwidth cost must be positive")
	}
	// A 25 MW datacenter should cost on the order of $5M–$25M per month
	// (Fig. 6 reports $8.7M–$23.3M across locations).
	if b.Total() < 3e6 || b.Total() > 40e6 {
		t.Errorf("monthly total %v out of plausible range", b.Total())
	}
	if b.String() == "" {
		t.Error("String() should produce a summary")
	}
}

func TestMonthlySiteUnbuilt(t *testing.T) {
	p := DefaultParams()
	site := testSite(t)
	b := p.MonthlySite(site, Provision{}, EnergyUse{})
	if b.Total() != 0 {
		t.Errorf("an unbuilt site should cost nothing, got %v", b.Total())
	}
}

func TestMonthlySiteUsesMaxPUEFallback(t *testing.T) {
	p := DefaultParams()
	site := testSite(t)
	withExplicit := p.MonthlySite(site, Provision{CapacityKW: 10_000, MaxPUE: site.MaxPUE}, EnergyUse{})
	withFallback := p.MonthlySite(site, Provision{CapacityKW: 10_000}, EnergyUse{})
	if math.Abs(withExplicit.BuildDC-withFallback.BuildDC) > 1e-6 {
		t.Errorf("fallback MaxPUE should match the site's: %v vs %v",
			withExplicit.BuildDC, withFallback.BuildDC)
	}
}

func TestNetMeteringCreditReducesBill(t *testing.T) {
	p := DefaultParams()
	site := testSite(t)
	prov := Provision{CapacityKW: 25_000, WindKW: 60_000}
	withCredit := p.MonthlySite(site, prov, EnergyUse{BrownKWh: 50e6, NetChargedKWh: 30e6})
	p.CreditNetMeter = 0
	withoutCredit := p.MonthlySite(site, prov, EnergyUse{BrownKWh: 50e6, NetChargedKWh: 30e6})
	if withCredit.BrownEnergy >= withoutCredit.BrownEnergy {
		t.Errorf("net-metering credit should reduce the brown bill: %v vs %v",
			withCredit.BrownEnergy, withoutCredit.BrownEnergy)
	}
}

func TestBreakdownAdd(t *testing.T) {
	a := Breakdown{BuildDC: 1, ITEquipment: 2, BrownEnergy: 3}
	b := Breakdown{BuildDC: 10, Battery: 5}
	sum := a.Add(b)
	if sum.BuildDC != 11 || sum.ITEquipment != 2 || sum.Battery != 5 || sum.BrownEnergy != 3 {
		t.Errorf("Add produced %+v", sum)
	}
	if math.Abs(sum.Total()-(a.Total()+b.Total())) > 1e-12 {
		t.Error("Total of sum should equal sum of totals")
	}
}

func TestCapIndependentUSD(t *testing.T) {
	p := DefaultParams()
	site := testSite(t)
	want := site.DistPowerKm*p.CostLinePowPerKm + site.DistNetworkKm*p.CostLineNetPerKm
	if got := p.CapIndependentUSD(site); math.Abs(got-want) > 1e-6 {
		t.Errorf("CapIndependentUSD = %v, want %v", got, want)
	}
}

func TestWindCheaperThanSolarPerKW(t *testing.T) {
	// Building a wind plant must be cheaper per installed kW than solar
	// (the paper's headline reason wind usually wins).
	p := DefaultParams()
	site := testSite(t)
	wind := p.MonthlySite(site, Provision{CapacityKW: 1, WindKW: 1000}, EnergyUse{})
	solar := p.MonthlySite(site, Provision{CapacityKW: 1, SolarKW: 1000}, EnergyUse{})
	if wind.BuildWind >= solar.BuildSolar {
		t.Errorf("wind build cost %v should be below solar %v", wind.BuildWind, solar.BuildSolar)
	}
}
