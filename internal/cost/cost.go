// Package cost implements every cost component of the paper's placement
// framework (Table I): capital costs that are independent of datacenter size
// (power line, fiber), capital costs that scale with size (land, datacenter
// and plant construction, IT equipment, batteries), and operational costs
// (external bandwidth, brown electricity), together with the financing and
// amortization rules the paper applies to each component.
package cost

import (
	"errors"
	"fmt"
	"math"

	"greencloud/internal/location"
)

// MonthsPerYear is used when converting amortization periods to months.
const MonthsPerYear = 12

// Params are the framework's economic parameters with the paper's default
// values.  All prices are in US dollars.
type Params struct {
	// AreaDCM2PerKW is land needed per kW of datacenter capacity.
	AreaDCM2PerKW float64
	// AreaSolarM2PerKW is land needed per kW of solar plant capacity.
	AreaSolarM2PerKW float64
	// AreaWindM2PerKW is land needed per kW of wind plant capacity.
	AreaWindM2PerKW float64

	// PriceBuildDCSmallPerW is the construction price per Watt for
	// datacenters at or below LargeDCThresholdKW.
	PriceBuildDCSmallPerW float64
	// PriceBuildDCLargePerW is the construction price per Watt above the
	// threshold.
	PriceBuildDCLargePerW float64
	// LargeDCThresholdKW separates small from large datacenters (10 MW).
	LargeDCThresholdKW float64

	// PriceBuildSolarPerW is the installed price of solar capacity ($/W).
	PriceBuildSolarPerW float64
	// PriceBuildWindPerW is the installed price of wind capacity ($/W).
	PriceBuildWindPerW float64

	// PriceServerUSD is the purchase price of one server.
	PriceServerUSD float64
	// ServerPowerW is the maximum power draw of one server.
	ServerPowerW float64
	// PriceSwitchUSD is the purchase price of one network switch.
	PriceSwitchUSD float64
	// SwitchPowerW is the power draw of one switch.
	SwitchPowerW float64
	// ServersPerSwitch is the number of servers attached to each switch.
	ServersPerSwitch float64

	// PriceBattPerKWh is the purchase price of battery capacity.
	PriceBattPerKWh float64
	// BatteryEfficiency is the round-trip charging efficiency.
	BatteryEfficiency float64

	// PriceBWPerServerMonth is the monthly external bandwidth cost per
	// hosted server.
	PriceBWPerServerMonth float64

	// CostLinePowPerKm is the cost of laying a power transmission line.
	CostLinePowPerKm float64
	// CostLineNetPerKm is the cost of laying optical fiber.
	CostLineNetPerKm float64

	// CreditNetMeter is the fraction of the retail electricity price paid
	// for net-metered energy (1 = full retail price).
	CreditNetMeter float64

	// AnnualInterestRate is the financing interest rate (e.g. 0.0325).
	AnnualInterestRate float64
	// FinancingYears is the period over which CAPEX is financed.
	FinancingYears int
	// DCAmortYears is the amortization period of the datacenter shell,
	// cooling and power infrastructure (its lifetime).
	DCAmortYears int
	// PlantAmortYears is the amortization period of solar/wind plants.
	PlantAmortYears int
	// ITAmortYears is the replacement period of servers and switches.
	ITAmortYears int
	// BattAmortYears is the replacement period of batteries.
	BattAmortYears int
	// LandAmortYears spreads the land financing cost; land itself is
	// fully recoverable so only interest is charged.
	LandAmortYears int
}

// DefaultParams returns the paper's Table I defaults (2011 prices).
func DefaultParams() Params {
	return Params{
		AreaDCM2PerKW:         0.557,
		AreaSolarM2PerKW:      9.41,
		AreaWindM2PerKW:       18.21,
		PriceBuildDCSmallPerW: 15.0,
		PriceBuildDCLargePerW: 12.0,
		LargeDCThresholdKW:    10_000,
		PriceBuildSolarPerW:   5.25,
		PriceBuildWindPerW:    2.10,
		PriceServerUSD:        2000,
		ServerPowerW:          275,
		PriceSwitchUSD:        20_000,
		SwitchPowerW:          480,
		ServersPerSwitch:      32,
		PriceBattPerKWh:       200,
		BatteryEfficiency:     0.75,
		PriceBWPerServerMonth: 1.0,
		CostLinePowPerKm:      310_000,
		CostLineNetPerKm:      300_000,
		CreditNetMeter:        1.0,
		AnnualInterestRate:    0.0325,
		FinancingYears:        12,
		DCAmortYears:          12,
		PlantAmortYears:       24,
		ITAmortYears:          4,
		BattAmortYears:        4,
		LandAmortYears:        12,
	}
}

// Validate reports obviously broken parameter sets.
func (p Params) Validate() error {
	switch {
	case p.ServerPowerW <= 0 || p.ServersPerSwitch <= 0:
		return errors.New("cost: server power and servers-per-switch must be positive")
	case p.FinancingYears <= 0 || p.DCAmortYears <= 0 || p.PlantAmortYears <= 0 ||
		p.ITAmortYears <= 0 || p.BattAmortYears <= 0 || p.LandAmortYears <= 0:
		return errors.New("cost: financing and amortization periods must be positive")
	case p.AnnualInterestRate < 0:
		return errors.New("cost: interest rate must be non-negative")
	case p.BatteryEfficiency <= 0 || p.BatteryEfficiency > 1:
		return errors.New("cost: battery efficiency must be in (0,1]")
	case p.CreditNetMeter < 0 || p.CreditNetMeter > 1:
		return errors.New("cost: net metering credit must be in [0,1]")
	}
	return nil
}

// MonthlyFinanced returns the monthly cost of a capital expense of the given
// principal: the expense is financed over financingYears at the annual
// interest rate (standard annuity), and the resulting total (principal plus
// interest) is spread over amortYears of useful life.
func MonthlyFinanced(principal, annualRate float64, financingYears, amortYears int) float64 {
	if principal <= 0 {
		return 0
	}
	total := financedTotal(principal, annualRate, financingYears)
	return total / float64(amortYears*MonthsPerYear)
}

// MonthlyInterestOnly returns the monthly cost of an asset that is fully
// recoverable (the paper's treatment of land): only the financing interest
// is a real cost, spread over the amortization period.
func MonthlyInterestOnly(principal, annualRate float64, financingYears, amortYears int) float64 {
	if principal <= 0 {
		return 0
	}
	interest := financedTotal(principal, annualRate, financingYears) - principal
	if interest < 0 {
		interest = 0
	}
	return interest / float64(amortYears*MonthsPerYear)
}

// financedTotal is the total amount repaid on an annuity loan.
func financedTotal(principal, annualRate float64, years int) float64 {
	months := float64(years * MonthsPerYear)
	if annualRate == 0 {
		return principal
	}
	r := annualRate / MonthsPerYear
	payment := principal * r / (1 - math.Pow(1+r, -months))
	return payment * months
}

// Provision describes how a site is built out: the IT capacity of the
// datacenter and the sizes of its on-site plants and battery bank.
type Provision struct {
	// CapacityKW is the compute (IT) power capacity of the datacenter.
	CapacityKW float64
	// MaxPUE is the worst-case PUE used to size power and cooling.
	MaxPUE float64
	// SolarKW is the installed solar plant capacity.
	SolarKW float64
	// WindKW is the installed wind plant capacity.
	WindKW float64
	// BatteryKWh is the installed battery capacity.
	BatteryKWh float64
}

// EnergyUse summarizes one year of operation for the brown-energy bill.
type EnergyUse struct {
	// BrownKWh is grid energy drawn directly (not via net metering).
	BrownKWh float64
	// NetDischargedKWh is energy drawn back from the grid against
	// previously net-metered credit.
	NetDischargedKWh float64
	// NetChargedKWh is green energy pushed into the grid for later use.
	NetChargedKWh float64
}

// NumServers returns the number of servers a datacenter of the given IT
// capacity hosts, accounting for the share of switch power per server
// (Table I's numServers(d)).
func (p Params) NumServers(capacityKW float64) float64 {
	perServerW := p.ServerPowerW + p.SwitchPowerW/p.ServersPerSwitch
	return capacityKW * 1000 / perServerW
}

// BuildDCPricePerW returns the construction price per Watt for a datacenter
// whose total (IT × maxPUE) power is totalKW.
func (p Params) BuildDCPricePerW(totalKW float64) float64 {
	if totalKW > p.LargeDCThresholdKW {
		return p.PriceBuildDCLargePerW
	}
	return p.PriceBuildDCSmallPerW
}

// Breakdown is the monthly cost of one provisioned site, split the same way
// as Fig. 7 of the paper.  All values are USD per month.
type Breakdown struct {
	LandDC           float64 `json:"landDC"`
	LandPlant        float64 `json:"landPlant"`
	BuildDC          float64 `json:"buildDC"`
	BuildSolar       float64 `json:"buildSolar"`
	BuildWind        float64 `json:"buildWind"`
	ITEquipment      float64 `json:"itEquipment"`
	Battery          float64 `json:"battery"`
	ConnectionPower  float64 `json:"connectionPower"`
	ConnectionFiber  float64 `json:"connectionFiber"`
	NetworkBandwidth float64 `json:"networkBandwidth"`
	BrownEnergy      float64 `json:"brownEnergy"`
}

// Total returns the total monthly cost.
func (b Breakdown) Total() float64 {
	return b.LandDC + b.LandPlant + b.BuildDC + b.BuildSolar + b.BuildWind +
		b.ITEquipment + b.Battery + b.ConnectionPower + b.ConnectionFiber +
		b.NetworkBandwidth + b.BrownEnergy
}

// Add returns the component-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		LandDC:           b.LandDC + o.LandDC,
		LandPlant:        b.LandPlant + o.LandPlant,
		BuildDC:          b.BuildDC + o.BuildDC,
		BuildSolar:       b.BuildSolar + o.BuildSolar,
		BuildWind:        b.BuildWind + o.BuildWind,
		ITEquipment:      b.ITEquipment + o.ITEquipment,
		Battery:          b.Battery + o.Battery,
		ConnectionPower:  b.ConnectionPower + o.ConnectionPower,
		ConnectionFiber:  b.ConnectionFiber + o.ConnectionFiber,
		NetworkBandwidth: b.NetworkBandwidth + o.NetworkBandwidth,
		BrownEnergy:      b.BrownEnergy + o.BrownEnergy,
	}
}

// String formats the breakdown in millions of dollars per month.
func (b Breakdown) String() string {
	return fmt.Sprintf(
		"total=%.2fM$ (buildDC=%.2f it=%.2f plants=%.2f land=%.2f conn=%.2f bw=%.2f brown=%.2f batt=%.2f)",
		b.Total()/1e6, b.BuildDC/1e6, b.ITEquipment/1e6,
		(b.BuildSolar+b.BuildWind)/1e6, (b.LandDC+b.LandPlant)/1e6,
		(b.ConnectionPower+b.ConnectionFiber)/1e6, b.NetworkBandwidth/1e6,
		b.BrownEnergy/1e6, b.Battery/1e6)
}

// MonthlySite computes the monthly cost breakdown of one site given its
// provisioning and a year of energy use.
func (p Params) MonthlySite(site *location.Site, prov Provision, use EnergyUse) Breakdown {
	var b Breakdown
	maxPUE := prov.MaxPUE
	if maxPUE <= 0 {
		maxPUE = site.MaxPUE
	}

	// CAPEX independent of size: power line and fiber to the site.
	b.ConnectionPower = MonthlyFinanced(site.DistPowerKm*p.CostLinePowPerKm,
		p.AnnualInterestRate, p.FinancingYears, p.DCAmortYears)
	b.ConnectionFiber = MonthlyFinanced(site.DistNetworkKm*p.CostLineNetPerKm,
		p.AnnualInterestRate, p.FinancingYears, p.DCAmortYears)

	if prov.CapacityKW <= 0 && prov.SolarKW <= 0 && prov.WindKW <= 0 {
		// Nothing is built: a site that is not selected costs nothing.
		return Breakdown{}
	}

	// Land (fully recoverable: financing interest only).
	landDCUSD := site.LandPriceUSDPerM2 * prov.CapacityKW * p.AreaDCM2PerKW
	landPlantUSD := site.LandPriceUSDPerM2 * (prov.SolarKW*p.AreaSolarM2PerKW + prov.WindKW*p.AreaWindM2PerKW)
	b.LandDC = MonthlyInterestOnly(landDCUSD, p.AnnualInterestRate, p.FinancingYears, p.LandAmortYears)
	b.LandPlant = MonthlyInterestOnly(landPlantUSD, p.AnnualInterestRate, p.FinancingYears, p.LandAmortYears)

	// Datacenter construction, sized by total (IT × maxPUE) power.
	totalKW := prov.CapacityKW * maxPUE
	buildDCUSD := totalKW * 1000 * p.BuildDCPricePerW(totalKW)
	b.BuildDC = MonthlyFinanced(buildDCUSD, p.AnnualInterestRate, p.FinancingYears, p.DCAmortYears)

	// Green plants.
	b.BuildSolar = MonthlyFinanced(prov.SolarKW*1000*p.PriceBuildSolarPerW,
		p.AnnualInterestRate, p.FinancingYears, p.PlantAmortYears)
	b.BuildWind = MonthlyFinanced(prov.WindKW*1000*p.PriceBuildWindPerW,
		p.AnnualInterestRate, p.FinancingYears, p.PlantAmortYears)

	// IT equipment: servers plus switches, replaced every ITAmortYears.
	servers := p.NumServers(prov.CapacityKW)
	itUSD := servers*p.PriceServerUSD + (servers/p.ServersPerSwitch)*p.PriceSwitchUSD
	b.ITEquipment = MonthlyFinanced(itUSD, p.AnnualInterestRate, p.ITAmortYears, p.ITAmortYears)

	// Batteries.
	b.Battery = MonthlyFinanced(prov.BatteryKWh*p.PriceBattPerKWh,
		p.AnnualInterestRate, p.BattAmortYears, p.BattAmortYears)

	// OPEX: external bandwidth and the brown electricity bill.
	b.NetworkBandwidth = servers * p.PriceBWPerServerMonth
	yearlyBrownUSD := site.GridPriceUSDPerKWh *
		(use.BrownKWh + use.NetDischargedKWh - p.CreditNetMeter*use.NetChargedKWh)
	b.BrownEnergy = yearlyBrownUSD / MonthsPerYear

	return b
}

// CapIndependentUSD returns the one-time size-independent CAPEX of a site
// (CAP_ind(d) in the paper): laying the power line and the fiber.
func (p Params) CapIndependentUSD(site *location.Site) float64 {
	return site.DistPowerKm*p.CostLinePowPerKm + site.DistNetworkKm*p.CostLineNetPerKm
}
