package predict

import (
	"errors"
	"math"
	"testing"
)

// diurnalTrace builds a repeating day/night trace with a weekly trend.
func diurnalTrace(hours int) []float64 {
	out := make([]float64, hours)
	for h := 0; h < hours; h++ {
		hourOfDay := h % 24
		if hourOfDay >= 6 && hourOfDay < 18 {
			out[h] = 100 * math.Sin(math.Pi*float64(hourOfDay-6)/12)
		}
	}
	return out
}

func TestPerfectPredictor(t *testing.T) {
	trace := diurnalTrace(24 * 14)
	p := &Perfect{Trace: trace}
	if p.Name() != "perfect" {
		t.Errorf("Name = %s", p.Name())
	}
	got, err := p.Predict(100, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 48 {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != trace[100+i] {
			t.Fatalf("perfect prediction differs at %d", i)
		}
	}
	// Wrap-around at the end of the trace.
	got, err = p.Predict(len(trace)-2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got[4] != trace[3] {
		t.Error("wrap-around prediction wrong")
	}
}

func TestArgumentValidation(t *testing.T) {
	trace := diurnalTrace(48)
	for _, p := range []Predictor{&Perfect{Trace: trace}, &Persistence{Trace: trace}, &Diurnal{Trace: trace}} {
		if _, err := p.Predict(0, 0); !errors.Is(err, ErrBadHorizon) {
			t.Errorf("%s: want ErrBadHorizon, got %v", p.Name(), err)
		}
		if _, err := p.Predict(-1, 5); err == nil {
			t.Errorf("%s: negative start should error", p.Name())
		}
		if _, err := p.Predict(len(trace), 5); err == nil {
			t.Errorf("%s: out-of-range start should error", p.Name())
		}
	}
}

func TestPersistencePredictsYesterday(t *testing.T) {
	trace := diurnalTrace(24 * 10)
	// Introduce a one-off anomaly yesterday so persistence visibly copies it.
	trace[24*5+12] = 999
	p := &Persistence{Trace: trace}
	got, err := p.Predict(24*6, 24)
	if err != nil {
		t.Fatal(err)
	}
	if got[12] != 999 {
		t.Errorf("persistence should copy yesterday's value, got %v", got[12])
	}
	if p.Name() != "persistence" {
		t.Errorf("Name = %s", p.Name())
	}
}

func TestDiurnalAveragesPastDays(t *testing.T) {
	trace := diurnalTrace(24 * 10)
	trace[24*5+12] = 999 // a single outlier should be diluted by averaging
	d := &Diurnal{Trace: trace, Days: 5}
	got, err := d.Predict(24*7, 24)
	if err != nil {
		t.Fatal(err)
	}
	normal := diurnalTrace(24)[12]
	if got[12] <= normal || got[12] >= 999 {
		t.Errorf("diurnal average %v should lie between the normal value %v and the outlier", got[12], normal)
	}
	if d.Name() != "diurnal" {
		t.Errorf("Name = %s", d.Name())
	}
	// Default day count kicks in when Days is zero.
	d2 := &Diurnal{Trace: trace}
	if _, err := d2.Predict(24*8, 12); err != nil {
		t.Errorf("default day count failed: %v", err)
	}
}

func TestMeanAbsoluteError(t *testing.T) {
	trace := diurnalTrace(24 * 30)
	perfect := &Perfect{Trace: trace}
	persistence := &Persistence{Trace: trace}

	perfErr, err := MeanAbsoluteError(perfect, trace, 24*7, 24*7, 48)
	if err != nil {
		t.Fatal(err)
	}
	if perfErr != 0 {
		t.Errorf("perfect predictor MAE = %v, want 0", perfErr)
	}
	persErr, err := MeanAbsoluteError(persistence, trace, 24*7, 24*7, 48)
	if err != nil {
		t.Fatal(err)
	}
	// On a perfectly repeating diurnal trace persistence is also perfect.
	if persErr > 1e-9 {
		t.Errorf("persistence MAE on a repeating trace = %v, want ~0", persErr)
	}
	// On a noisy trace persistence must do worse than the oracle.
	noisy := make([]float64, len(trace))
	copy(noisy, trace)
	for i := range noisy {
		if i%7 == 0 {
			noisy[i] += float64(i % 50)
		}
	}
	noisyPers, err := MeanAbsoluteError(&Persistence{Trace: noisy}, noisy, 24*7, 24*7, 48)
	if err != nil {
		t.Fatal(err)
	}
	if noisyPers <= 0 {
		t.Error("persistence on a noisy trace should have positive error")
	}
	if _, err := MeanAbsoluteError(perfect, trace, 0, 0, 24); !errors.Is(err, ErrBadHorizon) {
		t.Errorf("want ErrBadHorizon, got %v", err)
	}
}
