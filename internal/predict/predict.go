// Package predict provides the green-energy predictors GreenNebula's
// scheduler consults when planning the next 48 hours of load placement.
//
// The paper's validation assumes perfectly accurate predictions (and cites
// prior work showing solar/wind production can be predicted well); this
// package provides that perfect oracle plus two simple real predictors
// (persistence and a diurnal average) so the emulation can also quantify how
// much prediction error costs.
package predict

import (
	"errors"
	"fmt"
)

// Predictor forecasts green power production (kW) for the next `horizon`
// hours starting at hour `from` of an hourly year trace.
type Predictor interface {
	// Predict returns `horizon` hourly forecasts starting at `from`.
	Predict(from, horizon int) ([]float64, error)
	// PredictInto fills dst with len(dst) hourly forecasts starting at
	// `from` without allocating — the emulation hot-loop entry point.
	PredictInto(dst []float64, from int) error
	// Name identifies the predictor in reports.
	Name() string
}

// ErrBadHorizon reports an invalid prediction request.
var ErrBadHorizon = errors.New("predict: horizon must be positive")

func checkArgs(traceLen, from, horizon int) error {
	if horizon <= 0 {
		return ErrBadHorizon
	}
	if from < 0 || from >= traceLen {
		return fmt.Errorf("predict: start hour %d outside the trace", from)
	}
	return nil
}

// Perfect returns the actual future values (the paper's assumption).
type Perfect struct {
	Trace []float64
}

// Name implements Predictor.
func (p *Perfect) Name() string { return "perfect" }

// Predict implements Predictor.
func (p *Perfect) Predict(from, horizon int) ([]float64, error) {
	if horizon <= 0 {
		return nil, ErrBadHorizon
	}
	out := make([]float64, horizon)
	if err := p.PredictInto(out, from); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictInto implements Predictor.
func (p *Perfect) PredictInto(dst []float64, from int) error {
	if err := checkArgs(len(p.Trace), from, len(dst)); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = p.Trace[(from+i)%len(p.Trace)]
	}
	return nil
}

// Persistence predicts that the next hours will look exactly like the most
// recent ones (same hour yesterday).
type Persistence struct {
	Trace []float64
}

// Name implements Predictor.
func (p *Persistence) Name() string { return "persistence" }

// Predict implements Predictor.
func (p *Persistence) Predict(from, horizon int) ([]float64, error) {
	if horizon <= 0 {
		return nil, ErrBadHorizon
	}
	out := make([]float64, horizon)
	if err := p.PredictInto(out, from); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictInto implements Predictor.
func (p *Persistence) PredictInto(dst []float64, from int) error {
	if err := checkArgs(len(p.Trace), from, len(dst)); err != nil {
		return err
	}
	for i := range dst {
		idx := from + i - 24
		for idx < 0 {
			idx += len(p.Trace)
		}
		dst[i] = p.Trace[idx%len(p.Trace)]
	}
	return nil
}

// Diurnal predicts each future hour as the average of the same hour of day
// over the past `Days` days.
type Diurnal struct {
	Trace []float64
	Days  int
}

// Name implements Predictor.
func (d *Diurnal) Name() string { return "diurnal" }

// Predict implements Predictor.
func (d *Diurnal) Predict(from, horizon int) ([]float64, error) {
	if horizon <= 0 {
		return nil, ErrBadHorizon
	}
	out := make([]float64, horizon)
	if err := d.PredictInto(out, from); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictInto implements Predictor.
func (d *Diurnal) PredictInto(dst []float64, from int) error {
	if err := checkArgs(len(d.Trace), from, len(dst)); err != nil {
		return err
	}
	days := d.Days
	if days <= 0 {
		days = 7
	}
	for i := range dst {
		target := from + i
		sum, n := 0.0, 0
		for day := 1; day <= days; day++ {
			idx := target - day*24
			for idx < 0 {
				idx += len(d.Trace)
			}
			sum += d.Trace[idx%len(d.Trace)]
			n++
		}
		dst[i] = sum / float64(n)
	}
	return nil
}

// MeanAbsoluteError compares a predictor against the true trace over a window
// of `hours` starting at `from`, predicting `horizon` hours at a time.
func MeanAbsoluteError(p Predictor, truth []float64, from, hours, horizon int) (float64, error) {
	if hours <= 0 {
		return 0, ErrBadHorizon
	}
	totalErr := 0.0
	n := 0
	for h := 0; h < hours; h += horizon {
		pred, err := p.Predict((from+h)%len(truth), horizon)
		if err != nil {
			return 0, err
		}
		for i, v := range pred {
			actual := truth[(from+h+i)%len(truth)]
			diff := v - actual
			if diff < 0 {
				diff = -diff
			}
			totalErr += diff
			n++
		}
	}
	return totalErr / float64(n), nil
}
