// Package nebula is the within-datacenter VM manager GreenNebula builds on —
// the stand-in for OpenNebula in the paper's architecture.  It tracks the
// physical machines of one datacenter, places VMs on them (first fit),
// reports the datacenter's IT power draw, and hands VMs over to the
// cross-datacenter migration machinery.
package nebula

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"greencloud/internal/vm"
)

// Host is one physical machine.
type Host struct {
	// ID identifies the host within its datacenter.
	ID string
	// VCPUs and MemoryMB are the host's capacities.
	VCPUs    int
	MemoryMB int
	// IdlePowerW and BusyPowerW bound the host's power draw; utilization
	// interpolates between them.
	IdlePowerW float64
	BusyPowerW float64
}

// DefaultHost mirrors the paper's servers (Dell R610: 4 cores, 6 GB RAM,
// 275 W peak, ~200 W at typical utilization).
func DefaultHost(id string) Host {
	return Host{ID: id, VCPUs: 4, MemoryMB: 6 * 1024, IdlePowerW: 120, BusyPowerW: 275}
}

// Errors returned by the manager.
var (
	ErrNoCapacity  = errors.New("nebula: no host has capacity for the VM")
	ErrUnknownVM   = errors.New("nebula: unknown VM")
	ErrDuplicateVM = errors.New("nebula: VM already placed")
)

// Datacenter manages the hosts and VM placement of one site.
type Datacenter struct {
	name string

	mu        sync.Mutex
	hosts     []Host
	placement map[string]string // VM ID → host ID
	vms       map[string]vm.VM
	hostUsage map[string]*usage
}

type usage struct {
	vcpus    int
	memoryMB int
}

// NewDatacenter returns a datacenter with the given hosts.
func NewDatacenter(name string, hosts []Host) *Datacenter {
	dc := &Datacenter{
		name:      name,
		hosts:     make([]Host, len(hosts)),
		placement: make(map[string]string),
		vms:       make(map[string]vm.VM),
		hostUsage: make(map[string]*usage, len(hosts)),
	}
	copy(dc.hosts, hosts)
	for _, h := range hosts {
		dc.hostUsage[h.ID] = &usage{}
	}
	return dc
}

// NewUniformDatacenter returns a datacenter with n identical default hosts.
func NewUniformDatacenter(name string, n int) *Datacenter {
	hosts := make([]Host, 0, n)
	for i := 0; i < n; i++ {
		hosts = append(hosts, DefaultHost(fmt.Sprintf("%s-host-%03d", name, i)))
	}
	return NewDatacenter(name, hosts)
}

// Name returns the datacenter's name.
func (dc *Datacenter) Name() string { return dc.name }

// Hosts returns the number of hosts.
func (dc *Datacenter) Hosts() int {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return len(dc.hosts)
}

// Place admits a VM onto the first host with enough spare vCPUs and memory.
func (dc *Datacenter) Place(machine vm.VM) (hostID string, err error) {
	if err := machine.Validate(); err != nil {
		return "", err
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if _, ok := dc.vms[machine.ID]; ok {
		return "", fmt.Errorf("%w: %s", ErrDuplicateVM, machine.ID)
	}
	for _, h := range dc.hosts {
		u := dc.hostUsage[h.ID]
		if u.vcpus+machine.VCPUs <= h.VCPUs && u.memoryMB+machine.MemoryMB <= h.MemoryMB {
			u.vcpus += machine.VCPUs
			u.memoryMB += machine.MemoryMB
			dc.placement[machine.ID] = h.ID
			dc.vms[machine.ID] = machine
			return h.ID, nil
		}
	}
	return "", fmt.Errorf("%w: %s in %s", ErrNoCapacity, machine.ID, dc.name)
}

// Remove evicts a VM (after it migrated away or terminated) and returns it.
func (dc *Datacenter) Remove(vmID string) (vm.VM, error) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	machine, ok := dc.vms[vmID]
	if !ok {
		return vm.VM{}, fmt.Errorf("%w: %s", ErrUnknownVM, vmID)
	}
	hostID := dc.placement[vmID]
	if u, ok := dc.hostUsage[hostID]; ok {
		u.vcpus -= machine.VCPUs
		u.memoryMB -= machine.MemoryMB
	}
	delete(dc.vms, vmID)
	delete(dc.placement, vmID)
	return machine, nil
}

// HostOf returns the host a VM runs on.
func (dc *Datacenter) HostOf(vmID string) (string, error) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	h, ok := dc.placement[vmID]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownVM, vmID)
	}
	return h, nil
}

// VMs returns the VMs currently placed, sorted by ID.
func (dc *Datacenter) VMs() vm.Fleet {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	out := make(vm.Fleet, 0, len(dc.vms))
	for _, m := range dc.vms {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// VMCount returns the number of placed VMs.
func (dc *Datacenter) VMCount() int {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return len(dc.vms)
}

// ITPowerW returns the datacenter's current IT power draw: every host with
// at least one VM contributes idle power plus the power of its VMs, capped
// at the host's busy power.
func (dc *Datacenter) ITPowerW() float64 {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	vmPowerPerHost := make(map[string]float64)
	for vmID, hostID := range dc.placement {
		vmPowerPerHost[hostID] += dc.vms[vmID].PowerW
	}
	total := 0.0
	for _, h := range dc.hosts {
		p, active := vmPowerPerHost[h.ID]
		if !active {
			continue // idle hosts are powered down in an HPC cloud
		}
		power := h.IdlePowerW + p
		if power > h.BusyPowerW {
			power = h.BusyPowerW
		}
		total += power
	}
	return total
}

// SpareCapacity reports how many more paper-style HPC VMs the datacenter
// could admit.
func (dc *Datacenter) SpareCapacity(sample vm.VM) int {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	count := 0
	for _, h := range dc.hosts {
		u := dc.hostUsage[h.ID]
		byCPU := (h.VCPUs - u.vcpus) / sample.VCPUs
		byMem := (h.MemoryMB - u.memoryMB) / sample.MemoryMB
		spare := byCPU
		if byMem < spare {
			spare = byMem
		}
		if spare > 0 {
			count += spare
		}
	}
	return count
}
