package nebula

import (
	"errors"
	"testing"

	"greencloud/internal/vm"
)

func TestPlaceRemoveLifecycle(t *testing.T) {
	dc := NewUniformDatacenter("barcelona", 3)
	if dc.Name() != "barcelona" || dc.Hosts() != 3 {
		t.Fatalf("unexpected datacenter: %s/%d", dc.Name(), dc.Hosts())
	}
	v := vm.NewHPCVM("vm-0")
	host, err := dc.Place(v)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if host == "" {
		t.Fatal("empty host id")
	}
	if _, err := dc.Place(v); !errors.Is(err, ErrDuplicateVM) {
		t.Errorf("want ErrDuplicateVM, got %v", err)
	}
	got, err := dc.HostOf("vm-0")
	if err != nil || got != host {
		t.Errorf("HostOf = %s, %v", got, err)
	}
	if dc.VMCount() != 1 {
		t.Errorf("VMCount = %d", dc.VMCount())
	}
	removed, err := dc.Remove("vm-0")
	if err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if removed.ID != "vm-0" {
		t.Errorf("removed %s", removed.ID)
	}
	if _, err := dc.Remove("vm-0"); !errors.Is(err, ErrUnknownVM) {
		t.Errorf("want ErrUnknownVM, got %v", err)
	}
	if _, err := dc.HostOf("vm-0"); !errors.Is(err, ErrUnknownVM) {
		t.Errorf("want ErrUnknownVM, got %v", err)
	}
	bad := vm.VM{}
	if _, err := dc.Place(bad); err == nil {
		t.Error("invalid VM should not be placeable")
	}
}

func TestPlacementRespectsHostCapacity(t *testing.T) {
	// One default host: 4 vCPUs and 6 GB of memory fit 4 paper VMs
	// (1 vCPU / 512 MB each); the 5th must be rejected.
	dc := NewUniformDatacenter("dc", 1)
	for i := 0; i < 4; i++ {
		if _, err := dc.Place(vm.NewHPCVM(vmName(i))); err != nil {
			t.Fatalf("Place %d: %v", i, err)
		}
	}
	if _, err := dc.Place(vm.NewHPCVM("vm-overflow")); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("want ErrNoCapacity, got %v", err)
	}
	// Removing one frees the slot again.
	if _, err := dc.Remove(vmName(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := dc.Place(vm.NewHPCVM("vm-retry")); err != nil {
		t.Errorf("placement after removal failed: %v", err)
	}
}

func vmName(i int) string { return string(rune('a'+i)) + "-vm" }

func TestSpareCapacityAndSpread(t *testing.T) {
	dc := NewUniformDatacenter("dc", 3)
	sample := vm.NewHPCVM("sample")
	if got := dc.SpareCapacity(sample); got != 12 {
		t.Errorf("SpareCapacity = %d, want 12 (3 hosts × 4 VMs)", got)
	}
	fleet := vm.NewHPCFleet("vm", 9)
	for _, v := range fleet {
		if _, err := dc.Place(v); err != nil {
			t.Fatalf("Place(%s): %v", v.ID, err)
		}
	}
	if got := dc.SpareCapacity(sample); got != 3 {
		t.Errorf("SpareCapacity after 9 placements = %d, want 3", got)
	}
	if dc.VMCount() != 9 {
		t.Errorf("VMCount = %d", dc.VMCount())
	}
	vms := dc.VMs()
	if len(vms) != 9 {
		t.Fatalf("VMs() returned %d", len(vms))
	}
	for i := 1; i < len(vms); i++ {
		if vms[i-1].ID > vms[i].ID {
			t.Fatal("VMs() not sorted")
		}
	}
}

func TestITPower(t *testing.T) {
	dc := NewUniformDatacenter("dc", 2)
	if dc.ITPowerW() != 0 {
		t.Errorf("empty datacenter power = %v, want 0 (hosts powered down)", dc.ITPowerW())
	}
	if _, err := dc.Place(vm.NewHPCVM("vm-0")); err != nil {
		t.Fatal(err)
	}
	p1 := dc.ITPowerW()
	if p1 <= 0 {
		t.Fatal("power should be positive with one VM")
	}
	// Adding a VM on the same host only adds the VM's power, not another
	// idle host.
	if _, err := dc.Place(vm.NewHPCVM("vm-1")); err != nil {
		t.Fatal(err)
	}
	p2 := dc.ITPowerW()
	if p2 <= p1 {
		t.Errorf("power should grow with load: %v -> %v", p1, p2)
	}
	if p2-p1 > 100 {
		t.Errorf("second VM added %v W, want roughly its own 30 W", p2-p1)
	}
	// Power never exceeds the hosts' busy power.
	host := DefaultHost("h")
	if p2 > 2*host.BusyPowerW {
		t.Errorf("power %v exceeds the physical maximum", p2)
	}
}

func TestCustomHosts(t *testing.T) {
	hosts := []Host{
		{ID: "big", VCPUs: 64, MemoryMB: 256 * 1024, IdlePowerW: 200, BusyPowerW: 900},
	}
	dc := NewDatacenter("custom", hosts)
	v := vm.NewHPCVM("vm-0")
	v.VCPUs = 32
	v.MemoryMB = 128 * 1024
	if _, err := dc.Place(v); err != nil {
		t.Fatalf("Place on big host: %v", err)
	}
	if dc.Hosts() != 1 {
		t.Errorf("Hosts = %d", dc.Hosts())
	}
}
