// Package migrate models live VM migration between datacenters over the
// emulated WAN: iterative pre-copy of memory, shipping of the disk blocks
// whose GDFS replica at the destination is stale, the final stop-and-copy
// downtime, and the energy the migration costs at both ends.
//
// The paper's placement framework charges a migrated workload for a full
// epoch of energy at both the donor and the receiver (its migratePow term);
// GreenNebula's measured overhead is much smaller because live migration
// finishes well within the hour.  This package computes both numbers so the
// emulation can report the real overhead while the optimizer stays
// conservative.
package migrate

import (
	"errors"
	"fmt"
	"math"
	"time"

	"greencloud/internal/vm"
	"greencloud/internal/wan"
)

// Plan describes one migration to simulate.
type Plan struct {
	// VM is the machine to move.
	VM vm.VM
	// From and To are datacenter names known to the network.
	From string
	To   string
	// DirtyDiskMB is the amount of disk data whose replica at the
	// destination is stale and must be shipped (from GDFS metadata).  A
	// negative value means "the whole disk".
	DirtyDiskMB float64
}

// Result reports the outcome of a simulated migration.
type Result struct {
	// Rounds is the number of pre-copy rounds (including the first full
	// memory copy).
	Rounds int
	// TransferredMB is the total data moved (memory rounds + disk).
	TransferredMB float64
	// Duration is the total wall-clock time of the migration.
	Duration time.Duration
	// Downtime is the stop-and-copy pause at the end; applications keep
	// running during the rest of the migration.
	Downtime time.Duration
	// EnergyKWh is the extra energy consumed because the VM effectively
	// occupies both datacenters while the migration is in flight.
	EnergyKWh float64
	// ConservativeEnergyKWh is the paper's pessimistic accounting: the
	// VM's power billed at both ends for a full epoch (one hour).
	ConservativeEnergyKWh float64
}

// Options tunes the pre-copy model.
type Options struct {
	// MaxRounds caps the number of pre-copy rounds (default 8).
	MaxRounds int
	// StopAndCopyMB is the dirty-set size below which the final
	// stop-and-copy happens (default 16 MB).
	StopAndCopyMB float64
	// EpochHours is the epoch length used for the conservative energy
	// accounting (default 1 hour).
	EpochHours float64
}

func (o Options) withDefaults() Options {
	if o.MaxRounds <= 0 {
		o.MaxRounds = 8
	}
	if o.StopAndCopyMB <= 0 {
		o.StopAndCopyMB = 16
	}
	if o.EpochHours <= 0 {
		o.EpochHours = 1
	}
	return o
}

// Errors returned by Simulate.
var (
	ErrSameDatacenter = errors.New("migrate: source and destination are the same datacenter")
	ErrNoBandwidth    = errors.New("migrate: link has no usable bandwidth")
)

// Simulate runs the pre-copy live-migration model for one VM over the given
// network and returns its cost.
func Simulate(plan Plan, network *wan.Network, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := plan.VM.Validate(); err != nil {
		return nil, err
	}
	if plan.From == plan.To {
		return nil, ErrSameDatacenter
	}
	link, err := network.LinkBetween(plan.From, plan.To)
	if err != nil {
		return nil, fmt.Errorf("migrate: %w", err)
	}
	if link.BandwidthMbps <= 0 {
		return nil, ErrNoBandwidth
	}
	bandwidthMBps := link.BandwidthMbps / 8 // MB per second

	dirtyDisk := plan.DirtyDiskMB
	if dirtyDisk < 0 {
		dirtyDisk = float64(plan.VM.DiskMB)
	}

	// maxSeconds keeps pathological non-converging migrations from
	// overflowing time.Duration; a migration that long has failed anyway.
	const maxSeconds = 30 * 24 * 3600.0

	res := &Result{}
	// Round 1: ship the whole memory image plus the stale disk blocks.
	toSend := float64(plan.VM.MemoryMB) + dirtyDisk
	var totalSeconds float64
	for round := 1; ; round++ {
		res.Rounds = round
		res.TransferredMB += toSend
		seconds := math.Min(toSend/bandwidthMBps, maxSeconds)
		totalSeconds += seconds

		// While that round was in flight the application kept dirtying
		// memory (and a little disk).
		dirtied := plan.VM.MemDirtyMBPerSecond*seconds + plan.VM.DiskDirtyMBPerHour*seconds/3600
		if dirtied <= opts.StopAndCopyMB || round >= opts.MaxRounds {
			// Stop-and-copy the final dirty set.
			res.TransferredMB += dirtied
			downtimeSeconds := math.Min(dirtied/bandwidthMBps+link.LatencyMs/1000, maxSeconds)
			totalSeconds += downtimeSeconds
			res.Downtime = time.Duration(downtimeSeconds * float64(time.Second))
			break
		}
		// Convergence guard: if the workload dirties faster than the link
		// drains, pre-copy cannot converge and the dirty set stops
		// shrinking; the MaxRounds cap above ends the loop.
		toSend = dirtied
	}
	res.Duration = time.Duration(totalSeconds * float64(time.Second))

	// Real overhead: the VM is charged at both ends while the migration is
	// in flight.
	res.EnergyKWh = plan.VM.PowerW / 1000 * totalSeconds / 3600
	// Paper-style conservative accounting: a full epoch at both ends.
	res.ConservativeEnergyKWh = plan.VM.PowerW / 1000 * opts.EpochHours
	return res, nil
}

// SimulateBatch migrates a set of VMs between the same pair of datacenters,
// sharing the link bandwidth equally (transfers are serialized in the
// emulation, which gives the same total time as fair sharing).  It returns
// the per-VM results and the aggregate energy and duration.
func SimulateBatch(plans []Plan, network *wan.Network, opts Options) ([]*Result, *Result, error) {
	results := make([]*Result, 0, len(plans))
	total := &Result{}
	for _, p := range plans {
		r, err := Simulate(p, network, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("migrate %s: %w", p.VM.ID, err)
		}
		results = append(results, r)
		total.Rounds += r.Rounds
		total.TransferredMB += r.TransferredMB
		total.Duration += r.Duration
		total.EnergyKWh += r.EnergyKWh
		total.ConservativeEnergyKWh += r.ConservativeEnergyKWh
		if r.Downtime > total.Downtime {
			total.Downtime = r.Downtime
		}
	}
	return results, total, nil
}
