package migrate

import (
	"errors"
	"testing"
	"time"

	"greencloud/internal/vm"
	"greencloud/internal/wan"
)

func testNetwork(t *testing.T, mbps float64) *wan.Network {
	t.Helper()
	n, err := wan.FullMesh([]string{"bcn", "nj", "guam"}, wan.Link{BandwidthMbps: mbps, LatencyMs: 90})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSimulatePaperScenario(t *testing.T) {
	// The paper's validation: a VM with 512 MB of memory plus ~110 MB of
	// dirty disk migrates over a ~2 Mbps VPN in under an hour.
	network := testNetwork(t, 2)
	res, err := Simulate(Plan{VM: vm.NewHPCVM("vm-0"), From: "bcn", To: "nj", DirtyDiskMB: 110}, network, Options{})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Duration > time.Hour {
		t.Errorf("migration took %v, want < 1 h as in the paper", res.Duration)
	}
	if res.Duration < 10*time.Minute {
		t.Errorf("migration took %v, implausibly fast for ~622 MB over 2 Mbps", res.Duration)
	}
	if res.TransferredMB < 512+110 {
		t.Errorf("transferred %v MB, want at least memory+dirty disk", res.TransferredMB)
	}
	if res.Rounds < 1 {
		t.Error("expected at least one pre-copy round")
	}
	// Live migration: downtime is a tiny fraction of the total duration.
	if res.Downtime > res.Duration/10 {
		t.Errorf("downtime %v is not small relative to duration %v", res.Downtime, res.Duration)
	}
	// Real both-ends energy is below the paper's conservative full-epoch
	// accounting.
	if res.EnergyKWh > res.ConservativeEnergyKWh {
		t.Errorf("real energy %v exceeds conservative accounting %v", res.EnergyKWh, res.ConservativeEnergyKWh)
	}
	if res.ConservativeEnergyKWh != 0.03 { // 30 W × 1 h
		t.Errorf("conservative energy = %v kWh, want 0.03", res.ConservativeEnergyKWh)
	}
}

func TestSimulateFasterLinkIsFaster(t *testing.T) {
	slow := testNetwork(t, 2)
	fast := testNetwork(t, 1000)
	plan := Plan{VM: vm.NewHPCVM("vm-0"), From: "bcn", To: "nj", DirtyDiskMB: 110}
	slowRes, err := Simulate(plan, slow, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fastRes, err := Simulate(plan, fast, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fastRes.Duration >= slowRes.Duration {
		t.Errorf("faster link should migrate faster: %v vs %v", fastRes.Duration, slowRes.Duration)
	}
	if fastRes.Downtime >= slowRes.Downtime {
		t.Errorf("faster link should have smaller downtime: %v vs %v", fastRes.Downtime, slowRes.Downtime)
	}
}

func TestSimulateWholeDiskWhenUnknown(t *testing.T) {
	network := testNetwork(t, 1000)
	v := vm.NewHPCVM("vm-0")
	res, err := Simulate(Plan{VM: v, From: "bcn", To: "guam", DirtyDiskMB: -1}, network, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TransferredMB < float64(v.DiskMB) {
		t.Errorf("transferred %v MB, want at least the whole %d MB disk", res.TransferredMB, v.DiskMB)
	}
}

func TestSimulateErrors(t *testing.T) {
	network := testNetwork(t, 2)
	v := vm.NewHPCVM("vm-0")
	if _, err := Simulate(Plan{VM: v, From: "bcn", To: "bcn"}, network, Options{}); !errors.Is(err, ErrSameDatacenter) {
		t.Errorf("want ErrSameDatacenter, got %v", err)
	}
	if _, err := Simulate(Plan{VM: v, From: "bcn", To: "mars"}, network, Options{}); err == nil {
		t.Error("unknown destination should error")
	}
	bad := v
	bad.MemoryMB = 0
	if _, err := Simulate(Plan{VM: bad, From: "bcn", To: "nj"}, network, Options{}); err == nil {
		t.Error("invalid VM should error")
	}
}

func TestSimulateNonConvergingWorkloadStops(t *testing.T) {
	// A workload that dirties memory faster than a slow link can drain must
	// still terminate (MaxRounds cap) with a bounded number of rounds.
	network := testNetwork(t, 1)
	v := vm.NewHPCVM("hot")
	v.MemDirtyMBPerSecond = 1
	res, err := Simulate(Plan{VM: v, From: "bcn", To: "nj", DirtyDiskMB: 0}, network, Options{MaxRounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 5 {
		t.Errorf("rounds = %d, want the MaxRounds cap of 5", res.Rounds)
	}
	if res.Downtime <= 0 {
		t.Error("a non-converging pre-copy should end with a real stop-and-copy downtime")
	}
}

func TestSimulateBatch(t *testing.T) {
	network := testNetwork(t, 100)
	fleet := vm.NewHPCFleet("vm", 3)
	plans := make([]Plan, 0, len(fleet))
	for _, v := range fleet {
		plans = append(plans, Plan{VM: v, From: "bcn", To: "nj", DirtyDiskMB: 50})
	}
	results, total, err := SimulateBatch(plans, network, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	var sumEnergy float64
	for _, r := range results {
		sumEnergy += r.EnergyKWh
	}
	if total.EnergyKWh != sumEnergy {
		t.Errorf("total energy %v != sum %v", total.EnergyKWh, sumEnergy)
	}
	if total.TransferredMB <= 0 || total.Duration <= 0 {
		t.Error("batch totals not accumulated")
	}
	// A failing plan aborts the batch.
	plans[1].To = "bcn"
	plans[1].From = "bcn"
	if _, _, err := SimulateBatch(plans, network, Options{}); err == nil {
		t.Error("batch with an invalid plan should error")
	}
}
