package experiments

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"

	"greencloud/internal/core"
	"greencloud/internal/energy"
)

// The full experiment suite is exercised by the benchmarks in the repository
// root; these tests cover the cheap experiments, the caching machinery and
// the error paths so `go test` stays fast.

func testSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite(Config{Budget: Quick, Seed: 1})
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	return s
}

func TestCheapCharacterizationExperiments(t *testing.T) {
	s := testSuite(t)
	for _, id := range []string{"fig3", "fig4", "fig5"} {
		table, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if table.ID != id {
			t.Errorf("%s: table ID = %s", id, table.ID)
		}
		if len(table.Rows) == 0 || len(table.Columns) == 0 {
			t.Errorf("%s: empty table", id)
		}
		if !strings.Contains(table.String(), table.Title) {
			t.Errorf("%s: String() does not include the title", id)
		}
	}
}

func TestFig3ShapeMatchesPaper(t *testing.T) {
	s := testSuite(t)
	table, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	// At the median location solar beats wind; at the very top of the
	// distribution wind beats solar (the small set of exceptional wind
	// sites in Fig. 3).
	var medianSolar, medianWind, topSolar, topWind float64
	for _, row := range table.Rows {
		switch row[0] {
		case "50":
			medianSolar = parse(t, row[1])
			medianWind = parse(t, row[2])
		case "100":
			topSolar = parse(t, row[1])
			topWind = parse(t, row[2])
		}
	}
	if medianSolar <= medianWind {
		t.Errorf("median solar CF %.1f should exceed median wind CF %.1f", medianSolar, medianWind)
	}
	if topWind <= topSolar {
		t.Errorf("top wind CF %.1f should exceed top solar CF %.1f", topWind, topSolar)
	}
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestSchedulerTimingSubSecond(t *testing.T) {
	s := testSuite(t)
	table, err := s.SchedulerTiming()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(table.Rows))
	}
	for _, row := range table.Rows {
		ms := parse(t, row[3])
		// The paper reports 0.16–0.78 s; anything up to a few seconds on
		// the unoptimized dense simplex is acceptable, but minutes are not.
		if ms <= 0 || ms > 10_000 {
			t.Errorf("%s: schedule time %.0f ms out of the acceptable range", row[0], ms)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	s := testSuite(t)
	if _, err := s.Run("fig99"); err == nil {
		t.Error("unknown experiment should error")
	}
	if len(IDs()) < 16 {
		t.Errorf("IDs() lists %d experiments, want the full evaluation", len(IDs()))
	}
	for _, id := range IDs() {
		if id == "" {
			t.Error("empty experiment ID")
		}
	}
}

func TestSweepWarmStartFlag(t *testing.T) {
	// The warm-started sweep and the cold sweep must both produce a full
	// series, and the warm-started sweep must stay deterministic (two suites
	// with the same seed agree point for point).
	if testing.Short() {
		t.Skip("sweeps solve several networks; skipped in -short mode")
	}
	runSweep := func(disable bool) []sweepPoint {
		s, err := NewSuite(Config{Budget: Quick, Seed: 1, DisableWarmStart: disable})
		if err != nil {
			t.Fatal(err)
		}
		pts, err := s.solveSweep(energy.NetMetering, core.SolarAndWind)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	warm := runSweep(false)
	warmAgain := runSweep(false)
	cold := runSweep(true)
	if len(warm) != len(cold) || len(warm) == 0 {
		t.Fatalf("sweep lengths differ: warm %d, cold %d", len(warm), len(cold))
	}
	for i := range warm {
		if warm[i].greenPct != cold[i].greenPct {
			t.Errorf("point %d: green levels diverge (%v vs %v)", i, warm[i].greenPct, cold[i].greenPct)
		}
		if warm[i].monthlyUSD <= 0 {
			t.Errorf("point %d: warm-started sweep produced no solution", i)
		}
		if warm[i].monthlyUSD != warmAgain[i].monthlyUSD {
			t.Errorf("point %d: warm-started sweep is not deterministic (%v vs %v)",
				i, warm[i].monthlyUSD, warmAgain[i].monthlyUSD)
		}
	}
}

func TestCancelledSuiteStopsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := NewSuite(Config{Budget: Quick, Seed: 1, Ctx: ctx})
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	// The sweeps refuse to cache or return partial series under cancellation.
	if _, err := s.solveSweep(energy.NetMetering, core.SolarAndWind); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled sweep: err = %v, want a context.Canceled chain", err)
	}
	// All stops before the first experiment and reports which one it skipped.
	tables, err := s.All()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled All: err = %v, want a context.Canceled chain", err)
	}
	if len(tables) != 0 {
		t.Errorf("cancelled All returned %d tables, want 0", len(tables))
	}
}

func TestSuiteDefaults(t *testing.T) {
	s, err := NewSuite(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Catalog().Len() == 0 {
		t.Error("default suite has an empty catalog")
	}
	if s.cfg.Budget != Quick {
		t.Errorf("default budget = %v, want Quick", s.cfg.Budget)
	}
	full := Config{Budget: Full}
	if full.catalogSize() != 1373 {
		t.Errorf("full catalog size = %d, want 1373", full.catalogSize())
	}
	if len(full.greenLevels()) != 5 {
		t.Errorf("full sweep should use 5 green levels")
	}
}
