// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections III–V): the capacity-factor and PUE characterizations
// (Figs. 3–5), the per-location cost CDF (Fig. 6, Table II), the siting case
// study and its cost breakdown (Fig. 7, Table III), the cost and capacity
// sweeps versus the desired green fraction under the three storage regimes
// (Figs. 8–12), the migration-overhead sensitivity (Fig. 13), the
// follow-the-renewables emulation trace (Fig. 15) and the scheduler timing
// results of Section V-C.
//
// Each experiment returns a Table whose rows mirror the series the paper
// plots, so the harness (cmd/experiments and the benchmarks in bench_test.go)
// can print or compare them directly.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"greencloud/internal/core"
	"greencloud/internal/emul"
	"greencloud/internal/energy"
	"greencloud/internal/location"
	"greencloud/internal/lp"
	"greencloud/internal/pue"
	"greencloud/internal/sched"
	"greencloud/internal/timeseries"
	"greencloud/internal/vm"
	"greencloud/internal/wan"
)

// parallelFor runs fn(i) for every i in [0, n) on a GOMAXPROCS-sized worker
// pool.  Results stay deterministic because each index writes to its own
// slot in whatever indexed structure fn fills; only the execution order is
// concurrent.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// evaluatorPool shares reusable single-site evaluators across the worker
// pool: pricing a location is allocation-free once its worker's evaluator is
// warm, instead of rebuilding the per-catalog evaluator caches per probe.
// The datacenter capacity is fixed at construction, matching the spec the
// evaluators were built with.
type evaluatorPool struct {
	pool       sync.Pool
	cat        *location.Catalog
	spec       core.Spec
	capacityKW float64
}

func newEvaluatorPool(cat *location.Catalog, capacityKW float64, spec core.Spec) (*evaluatorPool, error) {
	// Build the first evaluator eagerly so configuration errors surface
	// here.  The pool deliberately has no New hook — a constructor failure
	// inside sync.Pool could only panic across goroutines — so price()
	// constructs on a miss and returns the error like any other call path.
	// Per-site memoization is off: these probes price each location exactly
	// once, so cache entries could never be hit.
	first, err := core.NewSingleSiteEvaluator(cat, capacityKW, spec)
	if err != nil {
		return nil, err
	}
	first.DisableCache()
	p := &evaluatorPool{cat: cat, spec: spec, capacityKW: capacityKW}
	p.pool.Put(first)
	return p, nil
}

// price returns the monthly cost of one datacenter of the pool's capacity at
// the site.
func (p *evaluatorPool) price(siteID int) (float64, error) {
	ev, _ := p.pool.Get().(*core.Evaluator)
	if ev == nil {
		fresh, err := core.NewSingleSiteEvaluator(p.cat, p.capacityKW, p.spec)
		if err != nil {
			return 0, err
		}
		fresh.DisableCache()
		ev = fresh
	}
	defer p.pool.Put(ev)
	res, err := ev.EvaluateCost([]core.Candidate{{SiteID: siteID, CapacityKW: p.capacityKW}})
	if err != nil {
		return 0, err
	}
	return res.MonthlyUSD, nil
}

// Table is a formatted experiment result.
type Table struct {
	// ID is the paper artifact this table regenerates, e.g. "fig8".
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows are the formatted data rows.
	Rows [][]string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	out := fmt.Sprintf("== %s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			s += fmt.Sprintf("%-*s  ", widths[i], c)
		}
		return s + "\n"
	}
	out += line(t.Columns)
	for _, row := range t.Rows {
		out += line(row)
	}
	return out
}

// Budget scales how much work the experiments do.
type Budget int

// Budgets.
const (
	// Quick keeps every experiment under roughly a minute; used by the
	// benchmarks and tests.
	Quick Budget = iota + 1
	// Full uses the paper-scale catalog and search budgets.
	Full
)

// Config describes the shared experimental setup.
type Config struct {
	// Budget selects Quick or Full scale.
	Budget Budget
	// Seed fixes the synthetic catalog.
	Seed int64
	// DisableWarmStart turns off warm-started sweeps.  By default each
	// green-fraction sweep point seeds its annealing search with the
	// previous point's solution (adjacent points have similar optimal
	// sitings, so the warm start cuts sweep wall-clock); disabling it makes
	// every point solve from the built-in initial sitings only.  Either way
	// the sweep is deterministic for a fixed Seed.
	DisableWarmStart bool
	// Ctx, when non-nil, cancels long experiment runs cooperatively: All
	// stops between experiments, and the sweeps stop between points and
	// inside each point's annealing search.  Results computed before the
	// cancellation are returned; a Ctx that never fires leaves every result
	// bit-identical to a run without one.
	Ctx context.Context
	// Verbose adds solver-internals columns to the LP-backed tables
	// (sched-timing, heuristic-vs-exact): simplex pivots, warm-start cold
	// fallbacks and what presolve removed.
	Verbose bool
}

// Suite owns the catalog and caches intermediate results shared between
// experiments (e.g. the green-fraction sweeps feed both the cost and the
// capacity figures).
type Suite struct {
	cfg     Config
	catalog *location.Catalog
	// mu guards the caches below; the sweep experiments fan their points
	// across a worker pool and may be invoked concurrently themselves.
	mu sync.Mutex
	// filtered is the pre-filtered candidate list shared by the sweeps.
	filtered []int
	sweeps   map[energy.StorageMode]map[core.SourceMix][]sweepPoint
}

type sweepPoint struct {
	greenPct   float64
	monthlyUSD float64
	capacityKW float64
	solution   *core.Solution
}

// catalogSize returns the number of candidate locations per budget.
func (c Config) catalogSize() int {
	if c.Budget == Full {
		return location.DefaultCount
	}
	return 160
}

func (c Config) solveOptions() core.SolveOptions {
	if c.Budget == Full {
		return core.SolveOptions{FilterKeep: 60, Chains: 4, MaxIterations: 200, Seed: c.Seed}
	}
	return core.SolveOptions{FilterKeep: 10, Chains: 2, MaxIterations: 25, Seed: c.Seed}
}

func (c Config) greenLevels() []float64 {
	if c.Budget == Full {
		return []float64{0, 0.25, 0.5, 0.75, 1.0}
	}
	return []float64{0, 0.5, 1.0}
}

// NewSuite builds the shared catalog.
func NewSuite(cfg Config) (*Suite, error) {
	if cfg.Budget == 0 {
		cfg.Budget = Quick
	}
	cat, err := location.Generate(location.Options{
		Count:              cfg.catalogSize(),
		Seed:               cfg.Seed,
		RepresentativeDays: 2,
	})
	if err != nil {
		return nil, err
	}
	return &Suite{
		cfg:     cfg,
		catalog: cat,
		sweeps:  make(map[energy.StorageMode]map[core.SourceMix][]sweepPoint),
	}, nil
}

// Catalog exposes the suite's catalog (used by benchmarks).
func (s *Suite) Catalog() *location.Catalog { return s.catalog }

// baseSpec is the paper's 50 MW base case.
func (s *Suite) baseSpec() core.Spec {
	spec := core.DefaultSpec()
	return spec
}

func f1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }
func f2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// Fig3 returns the CDF of solar and wind capacity factors (percent) over the
// catalog, sampled at every 10th percentile.
func (s *Suite) Fig3() (*Table, error) {
	solar, solarPct := timeseries.CDF(s.catalog.SolarCapacityFactors())
	wind, _ := timeseries.CDF(s.catalog.WindCapacityFactors())
	t := &Table{
		ID:      "fig3",
		Title:   "Capacity factors for the candidate locations (CDF)",
		Columns: []string{"locations(%)", "solarCF(%)", "windCF(%)"},
	}
	for p := 10; p <= 100; p += 10 {
		idx := searchPercentile(solarPct, float64(p))
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(p), f1(100 * solar[idx]), f1(100 * wind[idx]),
		})
	}
	return t, nil
}

func searchPercentile(pct []float64, p float64) int {
	idx := sort.SearchFloat64s(pct, p)
	if idx >= len(pct) {
		idx = len(pct) - 1
	}
	return idx
}

// Fig4 returns the PUE-vs-temperature curve.
func (s *Suite) Fig4() (*Table, error) {
	temps, pues := pue.Curve(15, 45, 5)
	t := &Table{ID: "fig4", Title: "PUE as a function of external temperature", Columns: []string{"tempC", "PUE"}}
	for i := range temps {
		t.Rows = append(t.Rows, []string{f1(temps[i]), f2(pues[i])})
	}
	return t, nil
}

// Fig5 relates capacity factors and PUE: average PUE of the ten best wind
// and the ten best solar locations, plus the catalog average.
func (s *Suite) Fig5() (*Table, error) {
	avg := func(sites []*location.Site) (cf, p float64) {
		for _, site := range sites {
			p += site.AvgPUE
		}
		return 0, p / float64(len(sites))
	}
	topWind := s.catalog.TopByWindCF(10)
	topSolar := s.catalog.TopBySolarCF(10)
	_, windPUE := avg(topWind)
	_, solarPUE := avg(topSolar)
	all := 0.0
	for _, p := range s.catalog.AvgPUEs() {
		all += p
	}
	all /= float64(s.catalog.Len())

	t := &Table{
		ID:      "fig5",
		Title:   "PUE vs. capacity factor (best wind sites are cold, best solar sites are warm)",
		Columns: []string{"group", "avgCF(%)", "avgPUE"},
	}
	windCF, solarCF := 0.0, 0.0
	for _, site := range topWind {
		windCF += site.WindCapacityFactor
	}
	for _, site := range topSolar {
		solarCF += site.SolarCapacityFactor
	}
	t.Rows = append(t.Rows,
		[]string{"top-10 wind sites", f1(100 * windCF / 10), f2(windPUE)},
		[]string{"top-10 solar sites", f1(100 * solarCF / 10), f2(solarPUE)},
		[]string{"all locations", "-", f2(all)},
	)
	return t, nil
}

// Table2 lists good brown, solar and wind sites with their attributes, like
// Table II of the paper.
func (s *Suite) Table2() (*Table, error) {
	spec := s.baseSpec()
	brownSpec := spec
	brownSpec.MinGreenFraction = 0

	// The cheapest brown site: evaluate a 25 MW brown datacenter everywhere
	// (on the Quick budget, sample every 4th site).
	step := 4
	if s.cfg.Budget == Full {
		step = 1
	}
	var ids []int
	for id := 0; id < s.catalog.Len(); id += step {
		ids = append(ids, id)
	}
	pool, err := newEvaluatorPool(s.catalog, 25_000, brownSpec)
	if err != nil {
		return nil, err
	}
	costs := make([]float64, len(ids))
	errs := make([]error, len(ids))
	parallelFor(len(ids), func(i int) {
		costs[i], errs[i] = pool.price(ids[i])
	})
	bestBrown, bestCost := -1, 0.0
	for i, id := range ids {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if bestBrown == -1 || costs[i] < bestCost {
			bestBrown, bestCost = id, costs[i]
		}
	}

	t := &Table{
		ID:      "table2",
		Title:   "Good locations for brown, solar and wind datacenters",
		Columns: []string{"type", "location", "cost($M/mo)", "solarCF(%)", "windCF(%)", "maxPUE", "elec($/MWh)", "land($/m2)", "distPow(km)", "distNet(km)"},
	}
	addRow := func(kind string, site *location.Site, monthly float64) {
		t.Rows = append(t.Rows, []string{
			kind, site.Name, f1(monthly / 1e6),
			f1(100 * site.SolarCapacityFactor), f1(100 * site.WindCapacityFactor),
			f2(site.MaxPUE), f1(site.GridPriceUSDPerKWh * 1000), f1(site.LandPriceUSDPerM2),
			f1(site.DistPowerKm), f1(site.DistNetworkKm),
		})
	}
	brownSite, err := s.catalog.Site(bestBrown)
	if err != nil {
		return nil, err
	}
	addRow("brown", brownSite, bestCost)

	solarSpec := spec
	solarSpec.Sources = core.SolarOnly
	for _, site := range s.catalog.TopBySolarCF(2) {
		sol, err := core.EvaluateSingleSite(s.catalog, site.ID, 25_000, solarSpec)
		if err != nil {
			return nil, err
		}
		addRow("solar", site, sol.TotalMonthlyUSD)
	}
	windSpec := spec
	windSpec.Sources = core.WindOnly
	for _, site := range s.catalog.TopByWindCF(2) {
		sol, err := core.EvaluateSingleSite(s.catalog, site.ID, 25_000, windSpec)
		if err != nil {
			return nil, err
		}
		addRow("wind", site, sol.TotalMonthlyUSD)
	}
	return t, nil
}

// Fig6 is the CDF of the per-month cost of one 25 MW datacenter with 50 %
// green energy (net metering) at every location, for brown, solar-only and
// wind-only builds.
func (s *Suite) Fig6() (*Table, error) {
	step := 4
	if s.cfg.Budget == Full {
		step = 1
	}
	var ids []int
	for id := 0; id < s.catalog.Len(); id += step {
		ids = append(ids, id)
	}
	brownSpec := s.baseSpec()
	brownSpec.MinGreenFraction = 0
	solarSpec := s.baseSpec()
	solarSpec.Sources = core.SolarOnly
	windSpec := s.baseSpec()
	windSpec.Sources = core.WindOnly
	brownPool, err := newEvaluatorPool(s.catalog, 25_000, brownSpec)
	if err != nil {
		return nil, err
	}
	solarPool, err := newEvaluatorPool(s.catalog, 25_000, solarSpec)
	if err != nil {
		return nil, err
	}
	windPool, err := newEvaluatorPool(s.catalog, 25_000, windSpec)
	if err != nil {
		return nil, err
	}
	brown := make([]float64, len(ids))
	solar := make([]float64, len(ids))
	wind := make([]float64, len(ids))
	errs := make([]error, len(ids))
	parallelFor(len(ids), func(i int) {
		id := ids[i]
		if brown[i], errs[i] = brownPool.price(id); errs[i] != nil {
			return
		}
		if solar[i], errs[i] = solarPool.price(id); errs[i] != nil {
			return
		}
		wind[i], errs[i] = windPool.price(id)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	bSorted, pct := timeseries.CDF(brown)
	sSorted, _ := timeseries.CDF(solar)
	wSorted, _ := timeseries.CDF(wind)
	t := &Table{
		ID:      "fig6",
		Title:   "CDF of the monthly cost of a 25 MW datacenter with 50% green energy ($M/month)",
		Columns: []string{"locations(%)", "brown", "solar", "wind"},
	}
	for p := 10; p <= 100; p += 10 {
		idx := searchPercentile(pct, float64(p))
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(p), f1(bSorted[idx] / 1e6), f1(sSorted[idx] / 1e6), f1(wSorted[idx] / 1e6),
		})
	}
	return t, nil
}

// candidateList filters the catalog once (for the paper's 50 % net-metering
// base case) and reuses the surviving locations for every sweep, exactly as
// the paper's heuristic does.
func (s *Suite) candidateList() ([]int, error) {
	s.mu.Lock()
	if s.filtered != nil {
		defer s.mu.Unlock()
		return s.filtered, nil
	}
	s.mu.Unlock()
	keep := s.cfg.solveOptions().FilterKeep
	filtered, err := core.FilterSites(s.catalog, s.baseSpec(), keep)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.filtered == nil {
		s.filtered = filtered
	}
	return s.filtered, nil
}

// solveSweep runs (and caches) the cost-vs-green-fraction sweep for one
// storage mode and source mix.
func (s *Suite) solveSweep(storage energy.StorageMode, sources core.SourceMix) ([]sweepPoint, error) {
	series, err := s.solveSweeps(storage, []core.SourceMix{sources})
	if err != nil {
		return nil, err
	}
	return series[0], nil
}

// solveSweeps computes (and caches) the sweep for several source mixes at
// once.  The mixes fan out across the worker pool; within one mix the
// green-fraction points run in ascending order so each point's annealing can
// warm-start from the previous point's siting (adjacent points have similar
// optimal sitings — disable with Config.DisableWarmStart).  Each point
// writes only its own indexed slot, so the resulting series are
// deterministic regardless of which worker finishes first.
func (s *Suite) solveSweeps(storage energy.StorageMode, mixes []core.SourceMix) ([][]sweepPoint, error) {
	out := make([][]sweepPoint, len(mixes))
	s.mu.Lock()
	missing := 0
	if byMix, ok := s.sweeps[storage]; ok {
		for i, mix := range mixes {
			out[i] = byMix[mix]
		}
	}
	for _, pts := range out {
		if pts == nil {
			missing++
		}
	}
	s.mu.Unlock()
	if missing == 0 {
		return out, nil
	}

	filtered, err := s.candidateList()
	if err != nil {
		return nil, err
	}
	baseOpts := s.cfg.solveOptions()
	baseOpts.Candidates = filtered
	// The worker pool is the parallelism; chains inside each fanned-out
	// Solve would oversubscribe the cap, and sequential chains return a
	// bit-identical solution anyway.
	baseOpts.Sequential = true
	levels := s.cfg.greenLevels()

	var todo []int
	for i := range mixes {
		if out[i] != nil {
			continue
		}
		out[i] = make([]sweepPoint, len(levels))
		todo = append(todo, i)
	}
	ctx := s.cfg.Ctx
	parallelFor(len(todo), func(k int) {
		mixIdx := todo[k]
		var warm []core.Candidate
		for l, green := range levels {
			if ctx != nil && ctx.Err() != nil {
				// Cancelled: mark the remaining points missing; the error is
				// reported once, after the pool drains.
				out[mixIdx][l] = sweepPoint{greenPct: green * 100, monthlyUSD: -1, capacityKW: -1}
				continue
			}
			spec := s.baseSpec()
			spec.MinGreenFraction = green
			spec.Storage = storage
			spec.Sources = mixes[mixIdx]
			opts := baseOpts
			opts.Ctx = ctx
			if !s.cfg.DisableWarmStart {
				opts.InitialCandidates = warm
			}
			sol, err := core.Solve(s.catalog, spec, opts)
			if err != nil {
				// Some extreme points (100 % green, no storage, single
				// source) can be genuinely unreachable on the Quick catalog;
				// record the point as missing rather than aborting the whole
				// figure.
				out[mixIdx][l] = sweepPoint{greenPct: green * 100, monthlyUSD: -1, capacityKW: -1}
				continue
			}
			out[mixIdx][l] = sweepPoint{
				greenPct:   green * 100,
				monthlyUSD: sol.TotalMonthlyUSD,
				capacityKW: sol.ProvisionedCapacityKW,
				solution:   sol,
			}
			warm = warm[:0]
			for _, site := range sol.Sites {
				warm = append(warm, core.Candidate{SiteID: site.Site.ID, CapacityKW: site.Provision.CapacityKW})
			}
		}
	})
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			// Don't cache partial sweeps: a later uncancelled run must be able
			// to recompute the missing points.
			return nil, fmt.Errorf("experiments: sweep cancelled: %w", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sweeps[storage]; !ok {
		s.sweeps[storage] = make(map[core.SourceMix][]sweepPoint)
	}
	for i, mix := range mixes {
		if _, ok := s.sweeps[storage][mix]; !ok {
			s.sweeps[storage][mix] = out[i]
		}
	}
	return out, nil
}

func (s *Suite) sweepTable(id, title, unit string, storage energy.StorageMode,
	value func(sweepPoint) float64) (*Table, error) {

	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"green(%)", "wind " + unit, "solar " + unit, "wind+solar " + unit},
	}
	mixes := []core.SourceMix{core.WindOnly, core.SolarOnly, core.SolarAndWind}
	series, err := s.solveSweeps(storage, mixes)
	if err != nil {
		return nil, err
	}
	for row := range series[0] {
		cells := []string{f1(series[0][row].greenPct)}
		for i := range mixes {
			v := value(series[i][row])
			if v < 0 {
				cells = append(cells, "n/a")
			} else {
				cells = append(cells, f1(v))
			}
		}
		t.Rows = append(t.Rows, cells)
	}
	return t, nil
}

// Fig8 is the monthly cost vs. desired green percentage with net metering.
func (s *Suite) Fig8() (*Table, error) {
	return s.sweepTable("fig8", "Monthly cost vs. green percentage (net metering)", "$M/mo",
		energy.NetMetering, func(p sweepPoint) float64 { return p.monthlyUSD / 1e6 })
}

// Fig9 is the monthly cost vs. desired green percentage with batteries.
func (s *Suite) Fig9() (*Table, error) {
	return s.sweepTable("fig9", "Monthly cost vs. green percentage (batteries)", "$M/mo",
		energy.Batteries, func(p sweepPoint) float64 { return p.monthlyUSD / 1e6 })
}

// Fig10 is the monthly cost vs. desired green percentage without storage.
func (s *Suite) Fig10() (*Table, error) {
	return s.sweepTable("fig10", "Monthly cost vs. green percentage (no storage)", "$M/mo",
		energy.NoStorage, func(p sweepPoint) float64 { return p.monthlyUSD / 1e6 })
}

// Fig11 is the provisioned compute capacity vs. green percentage with net
// metering.
func (s *Suite) Fig11() (*Table, error) {
	return s.sweepTable("fig11", "Provisioned compute capacity vs. green percentage (net metering)", "MW",
		energy.NetMetering, func(p sweepPoint) float64 { return p.capacityKW / 1000 })
}

// Fig12 is the provisioned compute capacity vs. green percentage without
// storage.
func (s *Suite) Fig12() (*Table, error) {
	return s.sweepTable("fig12", "Provisioned compute capacity vs. green percentage (no storage)", "MW",
		energy.NoStorage, func(p sweepPoint) float64 { return p.capacityKW / 1000 })
}

// Fig7 is the cost breakdown of the 50 MW / 50 % green case study.
func (s *Suite) Fig7() (*Table, error) {
	pts, err := s.solveSweep(energy.NetMetering, core.SolarAndWind)
	if err != nil {
		return nil, err
	}
	var sol *core.Solution
	for _, p := range pts {
		if p.greenPct == 50 && p.solution != nil {
			sol = p.solution
		}
	}
	if sol == nil {
		spec := s.baseSpec()
		sol, err = core.Solve(s.catalog, spec, s.cfg.solveOptions())
		if err != nil {
			return nil, err
		}
	}
	t := &Table{
		ID:      "fig7",
		Title:   "Cost breakdown of the 50 MW / 50% green network ($M/month)",
		Columns: []string{"site", "buildDC", "IT", "plants", "land", "connection", "bandwidth", "brown", "battery", "total"},
	}
	for _, site := range sol.Sites {
		b := site.Breakdown
		t.Rows = append(t.Rows, []string{
			site.Site.Name, f2(b.BuildDC / 1e6), f2(b.ITEquipment / 1e6),
			f2((b.BuildSolar + b.BuildWind) / 1e6), f2((b.LandDC + b.LandPlant) / 1e6),
			f2((b.ConnectionPower + b.ConnectionFiber) / 1e6), f2(b.NetworkBandwidth / 1e6),
			f2(b.BrownEnergy / 1e6), f2(b.Battery / 1e6), f2(b.Total() / 1e6),
		})
	}
	b := sol.Breakdown
	t.Rows = append(t.Rows, []string{
		"TOTAL", f2(b.BuildDC / 1e6), f2(b.ITEquipment / 1e6),
		f2((b.BuildSolar + b.BuildWind) / 1e6), f2((b.LandDC + b.LandPlant) / 1e6),
		f2((b.ConnectionPower + b.ConnectionFiber) / 1e6), f2(b.NetworkBandwidth / 1e6),
		f2(b.BrownEnergy / 1e6), f2(b.Battery / 1e6), f2(b.Total() / 1e6),
	})
	return t, nil
}

// Fig13 is the cost of the 100 % green / no-storage network as a function of
// the migration overhead (fraction of an epoch billed at both ends).
func (s *Suite) Fig13() (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "Monthly cost of the 100% green / no-storage network vs. migration overhead",
		Columns: []string{"migration(%)", "wind $M/mo", "solar $M/mo", "wind+solar $M/mo"},
	}
	mixes := []core.SourceMix{core.WindOnly, core.SolarOnly, core.SolarAndWind}
	fractions := []float64{0, 0.5, 1.0}
	if s.cfg.Budget == Full {
		fractions = []float64{0, 0.25, 0.5, 0.75, 1.0}
	}

	filtered, err := s.candidateList()
	if err != nil {
		return nil, err
	}
	opts := s.cfg.solveOptions()
	opts.Candidates = filtered

	// Solve once per mix at the conservative migration setting, then
	// re-evaluate the same siting at cheaper migration settings (the paper
	// varies only the migration energy, not the siting).  The three solves
	// are independent, so they fan out across the worker pool (with
	// sequential chains inside — see solveSweeps).
	opts.Sequential = true
	sitings := make([][]core.Candidate, len(mixes))
	parallelFor(len(mixes), func(i int) {
		spec := s.baseSpec()
		spec.MinGreenFraction = 1
		spec.Storage = energy.NoStorage
		spec.Sources = mixes[i]
		sol, err := core.Solve(s.catalog, spec, opts)
		if err != nil {
			sitings[i] = nil
			return
		}
		var cands []core.Candidate
		for _, site := range sol.Sites {
			cands = append(cands, core.Candidate{SiteID: site.Site.ID, CapacityKW: site.Provision.CapacityKW})
		}
		sitings[i] = cands
	})
	for _, frac := range fractions {
		row := []string{f1(frac * 100)}
		for i, mix := range mixes {
			if sitings[i] == nil {
				row = append(row, "n/a")
				continue
			}
			spec := s.baseSpec()
			spec.MinGreenFraction = 1
			spec.Storage = energy.NoStorage
			spec.Sources = mix
			spec.MigrationFraction = frac
			sol, err := core.Evaluate(s.catalog, sitings[i], spec)
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			row = append(row, f1(sol.TotalMonthlyUSD/1e6))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table3 describes the network chosen for 100 % green energy without
// storage (the input of the Fig. 15 emulation).
func (s *Suite) Table3() (*Table, error) {
	sol, err := s.noStorageNetwork()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "table3",
		Title:   "Network for 100% green energy without storage",
		Columns: []string{"location", "IT capacity (MW)", "solar (MW)", "wind (MW)"},
	}
	for _, site := range sol.Sites {
		t.Rows = append(t.Rows, []string{
			site.Site.Name, f1(site.Provision.CapacityKW / 1000),
			f1(site.Provision.SolarKW / 1000), f1(site.Provision.WindKW / 1000),
		})
	}
	return t, nil
}

// noStorageNetwork solves (and caches, via solveSweep) the 100 % green
// no-storage siting used by Table III and Fig. 15.
func (s *Suite) noStorageNetwork() (*core.Solution, error) {
	pts, err := s.solveSweep(energy.NoStorage, core.SolarAndWind)
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		if p.greenPct == 100 && p.solution != nil {
			return p.solution, nil
		}
	}
	filtered, err := s.candidateList()
	if err != nil {
		return nil, err
	}
	opts := s.cfg.solveOptions()
	opts.Candidates = filtered
	spec := s.baseSpec()
	spec.MinGreenFraction = 1
	spec.Storage = energy.NoStorage
	return core.Solve(s.catalog, spec, opts)
}

// Fig15 runs the GreenNebula emulation over the no-storage network for one
// day and reports the per-hour, per-datacenter load distribution.
func (s *Suite) Fig15() (*Table, error) {
	sol, err := s.noStorageNetwork()
	if err != nil {
		return nil, err
	}
	res, err := s.runEmulation(sol, 24)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig15",
		Title:   "Follow-the-renewables load distribution over one day (kW, 9-VM scale)",
		Columns: []string{"hour", "datacenter", "green", "load", "pueOverhead", "migration", "brown", "vms"},
	}
	for _, rec := range res.Trace {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(rec.Hour), rec.Datacenter, f2(rec.GreenKW), f2(rec.LoadKW),
			f2(rec.PUEOverheadKW), f2(rec.MigrationKW), f2(rec.BrownKW), strconv.Itoa(rec.VMCount),
		})
	}
	t.Rows = append(t.Rows, []string{
		"summary", fmt.Sprintf("%d migrations", res.Migrations),
		f2(res.TotalGreenKWh), f2(res.TotalDemandKWh), "-", f2(res.TotalMigrationKWh),
		f2(res.TotalBrownKWh), fmt.Sprintf("green=%.0f%%", 100*res.GreenFraction),
	})
	return t, nil
}

// runEmulation scales the solved network down to the paper's 9-VM validation
// size and runs the GreenNebula emulation for the given number of hours.
func (s *Suite) runEmulation(sol *core.Solution, hours int) (*emul.Result, error) {
	fleet := vm.NewHPCFleet("hpc", 9)
	fleetKW := fleet.TotalPowerW() / 1000

	dcs := make([]emul.DatacenterConfig, 0, len(sol.Sites))
	for _, site := range sol.Sites {
		// Scale plant sizes so the emulated fleet sees the same
		// green-to-demand ratio as the full-size network.
		scale := fleetKW / site.Provision.CapacityKW
		dcs = append(dcs, emul.DatacenterConfig{
			Name:       site.Site.Name,
			Site:       site.Site,
			CapacityKW: fleetKW,
			SolarKW:    site.Provision.SolarKW * scale,
			WindKW:     site.Provision.WindKW * scale,
		})
	}
	return emul.Run(emul.Config{
		Datacenters:  dcs,
		VMs:          fleet,
		StartHour:    24 * 172, // an arbitrary mid-year day
		Hours:        hours,
		HorizonHours: 24,
		// The metadata plane tracks every replica as {version, length,
		// digest} scalars — byte-for-byte equivalent counters to the
		// payload plane (pinned by internal/gdfs's differential tests)
		// without materializing gigabytes of block data per figure.
		DataPlane:         "meta",
		MigrationFraction: 1,
		Link:              wan.Link{BandwidthMbps: 100, LatencyMs: 90},
	})
}

// SchedulerTiming measures how long GreenNebula's scheduler needs to compute
// a migration schedule for the 50 MW and 200 MW setups of Section V-C.
func (s *Suite) SchedulerTiming() (*Table, error) {
	t := &Table{
		ID:      "sched-timing",
		Title:   "GreenNebula scheduler time per migration schedule",
		Columns: []string{"setup", "horizon(h)", "datacenters", "avg time (ms)"},
	}
	if s.cfg.Verbose {
		t.Columns = append(t.Columns, "lp pivots", "presolve -rows/-cols", "cold fallbacks")
	}
	for _, setup := range []struct {
		name    string
		totalKW float64
		dcs     int
	}{
		{"50MW-3dc", 50_000, 3},
		{"200MW-3dc", 200_000, 3},
	} {
		states := make([]sched.DatacenterState, setup.dcs)
		horizon := 48
		for d := 0; d < setup.dcs; d++ {
			forecastSeries := make([]float64, horizon)
			for h := 0; h < horizon; h++ {
				if (h+8*d)%24 < 8 {
					forecastSeries[h] = setup.totalKW * 1.2
				}
			}
			states[d] = sched.DatacenterState{
				Name:               fmt.Sprintf("dc-%d", d),
				CapacityKW:         setup.totalKW,
				CurrentLoadKW:      setup.totalKW / float64(setup.dcs),
				GreenForecastKW:    forecastSeries,
				PUE:                []float64{1.07},
				GridPriceUSDPerKWh: 0.09,
			}
		}
		scheduler := sched.New(sched.Options{HorizonHours: horizon, MigrationFraction: 1})
		const rounds = 3
		var lpStats lp.Stats
		start := time.Now()
		for i := 0; i < rounds; i++ {
			plan, err := scheduler.Partition(states, setup.totalKW)
			if err != nil {
				return nil, err
			}
			lpStats.Add(plan.LPStats)
		}
		avgMs := float64(time.Since(start).Milliseconds()) / rounds
		row := []string{setup.name, strconv.Itoa(horizon), strconv.Itoa(setup.dcs), f1(avgMs)}
		if s.cfg.Verbose {
			row = append(row,
				strconv.Itoa(lpStats.Pivots),
				fmt.Sprintf("%d/%d", lpStats.RowsRemoved, lpStats.ColsRemoved),
				strconv.Itoa(lpStats.ColdFallbacks))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// HeuristicVsExact compares the heuristic solver against the exact MILP on a
// small instance (the paper validates its heuristic the same way at the 0 %
// and 100 % green extremes).
func (s *Suite) HeuristicVsExact() (*Table, error) {
	cat, err := location.Generate(location.Options{Count: 16, Seed: s.cfg.Seed, RepresentativeDays: 1})
	if err != nil {
		return nil, err
	}
	spec := core.DefaultSpec()
	spec.TotalCapacityKW = 10_000
	spec.MinGreenFraction = 0
	spec.Storage = energy.NoStorage

	ids := []int{0, 1, 2}
	t := &Table{
		ID:      "heuristic-vs-exact",
		Title:   "Heuristic solver vs. exact MILP on a small brown instance",
		Columns: []string{"solver", "monthly cost ($M)", "datacenters", "runtime (ms)"},
	}
	if s.cfg.Verbose {
		t.Columns = append(t.Columns, "nodes", "lp pivots", "presolve -rows/-cols", "cold fallbacks")
	}
	start := time.Now()
	exact, err := core.SolveExact(cat, ids, spec, core.ExactOptions{MaxNodes: 50})
	if err != nil {
		return nil, err
	}
	exactMs := time.Since(start).Milliseconds()

	sub, err := cat.Subset(ids)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	heur, err := core.Solve(sub, spec, core.SolveOptions{FilterKeep: 3, Chains: 2, MaxIterations: 25, Seed: s.cfg.Seed})
	if err != nil {
		return nil, err
	}
	heurMs := time.Since(start).Milliseconds()

	exactRow := []string{"exact MILP", f2(exact.TotalMonthlyUSD / 1e6), strconv.Itoa(len(exact.Sites)), strconv.FormatInt(exactMs, 10)}
	heurRow := []string{"heuristic", f2(heur.TotalMonthlyUSD / 1e6), strconv.Itoa(len(heur.Sites)), strconv.FormatInt(heurMs, 10)}
	if s.cfg.Verbose {
		st := exact.ExactLPStats
		exactRow = append(exactRow,
			strconv.Itoa(exact.ExactNodes),
			strconv.Itoa(st.Pivots),
			fmt.Sprintf("%d/%d", st.RowsRemoved, st.ColsRemoved),
			strconv.Itoa(st.ColdFallbacks))
		heurRow = append(heurRow, "-", "-", "-", "-") // the heuristic path runs no LPs
	}
	t.Rows = append(t.Rows, exactRow, heurRow)
	return t, nil
}

// All runs every experiment and returns the tables in paper order.
func (s *Suite) All() ([]*Table, error) {
	type gen struct {
		name string
		fn   func() (*Table, error)
	}
	gens := []gen{
		{"fig3", s.Fig3}, {"fig4", s.Fig4}, {"fig5", s.Fig5}, {"table2", s.Table2},
		{"fig6", s.Fig6}, {"fig7", s.Fig7}, {"fig8", s.Fig8}, {"fig9", s.Fig9},
		{"fig10", s.Fig10}, {"fig11", s.Fig11}, {"fig12", s.Fig12}, {"fig13", s.Fig13},
		{"table3", s.Table3}, {"fig15", s.Fig15},
		{"sched-timing", s.SchedulerTiming}, {"heuristic-vs-exact", s.HeuristicVsExact},
	}
	out := make([]*Table, 0, len(gens))
	for _, g := range gens {
		if s.cfg.Ctx != nil {
			if err := s.cfg.Ctx.Err(); err != nil {
				// Cancelled between experiments: hand back what finished.
				return out, fmt.Errorf("experiments: cancelled before %s: %w", g.name, err)
			}
		}
		tbl, err := g.fn()
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", g.name, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// Run returns a single experiment by its ID ("fig8", "table3", ...).
func (s *Suite) Run(id string) (*Table, error) {
	switch id {
	case "fig3":
		return s.Fig3()
	case "fig4":
		return s.Fig4()
	case "fig5":
		return s.Fig5()
	case "table2":
		return s.Table2()
	case "fig6":
		return s.Fig6()
	case "fig7":
		return s.Fig7()
	case "fig8":
		return s.Fig8()
	case "fig9":
		return s.Fig9()
	case "fig10":
		return s.Fig10()
	case "fig11":
		return s.Fig11()
	case "fig12":
		return s.Fig12()
	case "fig13":
		return s.Fig13()
	case "table3":
		return s.Table3()
	case "fig15":
		return s.Fig15()
	case "sched-timing":
		return s.SchedulerTiming()
	case "heuristic-vs-exact":
		return s.HeuristicVsExact()
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
}

// IDs lists the available experiment IDs in paper order.
func IDs() []string {
	return []string{
		"fig3", "fig4", "fig5", "table2", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "table3", "fig15",
		"sched-timing", "heuristic-vs-exact",
	}
}
