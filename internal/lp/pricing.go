package lp

// Pricing framework of the revised simplex: which nonbasic column enters on
// a primal iteration, and — under devex — which basic row leaves on a dual
// iteration.  The rules plug into the solver behind the pricer interface;
// every implementation may use stale or approximate information freely,
// because the primal loop re-verifies each nominee's reduced cost exactly
// from its FTRAN column before pivoting and only declares optimality after
// an exact reduced-cost rebuild followed by a full-scan re-pick.  A pricing
// rule can therefore change pivot sequences (and, on degenerate problems,
// which alternative optimum is returned), never statuses or objectives.

// PricingRule selects the simplex pricing strategy, via SolveOptions.Pricing.
type PricingRule int

const (
	// PricingDevex — the default (zero value) — prices entering columns by
	// reduced-cost violation squared over a devex reference weight: an
	// approximation of the steepest-edge column norm, maintained per pivot
	// from quantities the reduced-cost update pass already computes, and
	// reset to fresh unit weights when the weights drift past the classic
	// ratio bound (devexResetRatio) or whenever a refactorization or basis
	// repair discards the eta file the weights were learned through.  The
	// scan runs over a rotating candidate list (partial pricing); the dual
	// simplex weighs its leaving-row choice with dual devex row weights.
	// On long, thin, near-degenerate problems — the scheduler's partition
	// LPs — devex takes markedly fewer pivots than Dantzig's rule.
	PricingDevex PricingRule = iota
	// PricingDantzig prices with Dantzig's classic most-violating
	// reduced-cost rule over a full column scan — the pre-devex default,
	// kept as the A/B baseline (BenchmarkLPPricing) and as a fallback.
	PricingDantzig
	// PricingBland prices with Bland's least-index rule (and the exact
	// smallest-index ratio test) for the whole solve.  Bland guarantees
	// termination but converges slowly; the other rules latch onto it
	// automatically when the degenerate-stall detector fires, so selecting
	// it outright is mostly a debugging aid.
	PricingBland
)

// String returns the rule's short name.
func (r PricingRule) String() string {
	switch r {
	case PricingDantzig:
		return "dantzig"
	case PricingBland:
		return "bland"
	default:
		return "devex"
	}
}

// Devex tuning.
const (
	// devexResetRatio is the classic drift bound on the reference
	// framework: at pivot time the entering column's exact steepest-edge
	// weight (1 + ‖B⁻¹Aq‖², free from the FTRAN column) is compared with
	// its reference weight, and a disagreement beyond this factor in
	// either direction means the framework no longer steers pricing — the
	// weights are reset to 1 and the reference framework restarts at the
	// current nonbasic set.
	devexResetRatio = 1e4
	// candListLen caps the candidate list: partial pricing keeps at most
	// this many attractive columns between refills.
	candListLen = 16
	// candSection is the number of columns one partial-pricing pass scans;
	// refills walk rotating sections of this size and stop at the first
	// section that yields any candidate, so steady-state pricing touches
	// candSection columns instead of all of them.
	candSection = 128
	// partialMinCols gates candidate-list partial pricing by problem
	// width: below this many standard-form columns the devex score scans
	// the full maintained row on every pick.  Measured on the partition
	// family, the full scan is cheap at these widths while the list's
	// between-refill staleness costs 5–35% extra pivots; from a few
	// thousand columns up the list matches the full scan and keeps
	// improving with width (10 DC × 96 h: 2543 pivots/263 ms listed vs
	// 2494/270 ms full-scan vs 3207/360 ms Dantzig).
	partialMinCols = 4096
)

// pricer is the entering-column strategy of the primal simplex.
//
//   - price nominates an entering column from the maintained reduced-cost
//     row (or -1 when it finds none; the caller rebuilds the row exactly
//     and re-prices before trusting that as optimality);
//   - update maintains the reduced-cost row and any rule state across the
//     pivot that entered column q at basis position p with exact reduced
//     cost dq and FTRAN column w (still untouched from the ratio test);
//   - reset re-anchors rule state after events that invalidate it: a
//     refactorization or repair (the weights were learned through the
//     discarded eta file), or the Bland stall latch releasing.
//
// A rejected nominee (maintained row promoted it, the exact FTRAN check
// refused it) needs no hook: the caller writes the exact value back into
// the reduced row and re-prices, which naturally re-scores or drops it.
type pricer interface {
	price(s *solver) int
	update(s *solver, q, p int, dq float64, w []float64)
	reset(s *solver)
}

// dantzigPricer is the classic most-violating rule over a full scan, with
// the plain incremental reduced-cost maintenance.
type dantzigPricer struct{}

func (dantzigPricer) price(s *solver) int { return s.pickEntering(false) }

func (dantzigPricer) update(s *solver, q, p int, dq float64, w []float64) {
	s.updateReducedAfterPivot(q, p, dq)
}

func (dantzigPricer) reset(*solver) {}

// blandPricer is Bland's least-index rule behind the pricer interface.  The
// solver engages Bland through the stall latch (solver.blandForced), which
// additionally switches the ratio test to the exact smallest-index variant
// Bland's termination guarantee needs, so this implementation only backs
// the explicit PricingBland selection.
type blandPricer struct{}

func (blandPricer) price(s *solver) int { return s.pickEntering(true) }

func (blandPricer) update(s *solver, q, p int, dq float64, w []float64) {
	s.updateReducedAfterPivot(q, p, dq)
}

func (blandPricer) reset(*solver) {}

// devexPricer carries the devex state: primal reference weights per
// standard-form column, dual reference weights per basis row, and the
// partial-pricing candidate list with its rotating scan cursor.
//
// The primal weight vector is lazy: nil means every weight is 1 (a fresh
// reference framework), and a warm start's carried weights stay in sparse
// form until something actually reads or updates a weight.  The laziness is
// load-bearing for the MILP's warm re-solve chains, where most node solves
// take zero primal pivots — an eager dense vector would cost an O(n)
// allocate-and-fill per solve for state nobody consults.
type devexPricer struct {
	w    []float64 // primal reference weights, ≥ 1; nil ⇒ all 1 (see above)
	rowW []float64 // dual reference weights (row norms of B⁻¹), ≥ 1

	// Carried warm-start weights in sparse form (standard-form column
	// indices and their >1 weights), installed by solveWarm and folded into
	// w on first materialization.  Capture passes them through untouched
	// when no pivot ever materialized the dense vector.
	carriedIdx []int
	carriedW   []float64

	cand   []int     // candidate list: column indices, scores always re-derived
	score  []float64 // refill-time scores, parallel to cand (selection only)
	cursor int       // next column the rotating section scan will visit

	// partial enables the candidate list (wide problems only, see
	// partialMinCols); when false every pick scans the full maintained
	// row, weighted by the same reference framework.
	partial bool

	// dirty marks that a pivot has updated the weights since the last
	// reset (or that a warm start installed learned ones), i.e. the
	// framework holds something a reset would discard.  A clean reset (the
	// initial factorization of a solve) is not counted in Stats.DevexResets.
	dirty bool

	// cached is the entering pick the full-scan update loop computed as a
	// by-product (-1: the scan proved no violation), or cachedNone.  The
	// update pass touches exactly the arrays price would re-scan, so in
	// full-scan mode the argmax is fused there and the immediately
	// following price consumes it instead of a second pass.  One-shot:
	// price clears it on read, and anything that changes the data under it
	// (an exact rebuild, a framework reset) invalidates it.
	cached int
}

// cachedNone marks an empty pick cache (-1 is a meaningful cached result).
const cachedNone = -2

func newDevexPricer(std *standard, partial bool) *devexPricer {
	dx := &devexPricer{
		cand:    make([]int, 0, candListLen),
		score:   make([]float64, 0, candListLen),
		partial: partial,
		cached:  cachedNone,
	}
	if std.scr != nil {
		dx.rowW = growFloats(std.scr.rowW, std.m)
		std.scr.rowW = dx.rowW
	} else {
		dx.rowW = make([]float64, std.m)
	}
	for i := range dx.rowW {
		dx.rowW[i] = 1
	}
	return dx
}

// weights returns the dense primal weight vector, materializing it from the
// unit state plus any carried sparse weights, or nil when every weight is 1
// and nothing has been carried — callers treat nil as the unit framework.
func (dx *devexPricer) weights(s *solver) []float64 {
	if dx.w == nil && dx.carriedIdx != nil {
		dx.materializeW(s)
	}
	return dx.w
}

// materializeW builds the dense weight vector: all 1s plus the carried
// sparse entries, which are consumed by the fold.
func (dx *devexPricer) materializeW(s *solver) []float64 {
	var w []float64
	if scr := s.std.scr; scr != nil {
		w = growFloats(scr.devexW, s.std.nCols)
		scr.devexW = w
	} else {
		w = make([]float64, s.std.nCols)
	}
	for i := range w {
		w[i] = 1
	}
	for k, j := range dx.carriedIdx {
		if j < len(w) {
			w[j] = dx.carriedW[k]
		}
	}
	dx.carriedIdx, dx.carriedW = nil, nil
	dx.w = w
	return w
}

// reset implements pricer: a refactorization or repair discards the eta
// file the weights were learned through, so the reference framework
// restarts.  Only a framework that actually learned something counts as a
// DevexReset.
func (dx *devexPricer) reset(s *solver) { dx.resetFramework(s, dx.dirty) }

// resetFramework reinitializes every weight to 1 and clears the candidate
// list (the scan cursor survives, so refills keep rotating instead of
// re-scanning the same prefix).  count selects whether the reset is
// reported in Stats.DevexResets.
func (dx *devexPricer) resetFramework(s *solver, count bool) {
	if count {
		s.stats.DevexResets++
	}
	dx.w = nil // nil is the unit framework; rematerialized on next pivot
	dx.carriedIdx, dx.carriedW = nil, nil
	for i := range dx.rowW {
		dx.rowW[i] = 1
	}
	dx.cand = dx.cand[:0]
	dx.score = dx.score[:0]
	dx.dirty = false
	dx.cached = cachedNone
}

// price nominates the candidate with the best devex score, refilling the
// candidate list from rotating section scans when it runs dry.  Returns -1
// only after a refill walked the full column rotation without finding one
// eligible column — which the primal loop then re-verifies on an exactly
// rebuilt row before declaring optimality.
func (dx *devexPricer) price(s *solver) int {
	// The devex score is viol²/w; the argmax is taken divide-free by
	// cross-multiplying against the incumbent (viol² · w_best > viol²_best
	// · w), which matters on the full-scan path where the divide would
	// otherwise dominate the pick.
	wts := dx.weights(s)
	if !dx.partial {
		if wts == nil {
			// Unit framework: viol²/1 ranks exactly like viol, so the plain
			// most-violating scan is the same argmax without weight loads.
			return s.pickEntering(false)
		}
		if c := dx.cached; c != cachedNone {
			dx.cached = cachedNone // one-shot: a rejection re-prices for real
			return c
		}
		best, bestV2, bestW := -1, 0.0, 1.0
		for j := 0; j < s.std.nTotal; j++ {
			if s.basic[j] || s.std.upper[j] == 0 {
				continue
			}
			viol := -s.reduced[j]
			if s.atUpper[j] {
				viol = -viol
			}
			if !(viol > epsilon) {
				continue
			}
			if v2 := viol * viol; v2*bestW > bestV2*wts[j] {
				bestV2, bestW, best = v2, wts[j], j
			}
		}
		return best
	}
	for {
		best, bestV2, bestW := -1, 0.0, 1.0
		kept := dx.cand[:0]
		for _, j := range dx.cand {
			if s.basic[j] || s.std.upper[j] == 0 {
				continue // entered the basis or fixed: drop
			}
			viol := -s.reduced[j]
			if s.atUpper[j] {
				viol = -viol
			}
			if !(viol > epsilon) {
				// No longer attractive (a refill re-finds it), or a NaN
				// reduced cost — NaN fails every comparison, so it must be
				// dropped here or it would pin the list without ever scoring.
				continue
			}
			kept = append(kept, j)
			wj := 1.0
			if wts != nil {
				wj = wts[j]
			}
			if v2 := viol * viol; v2*bestW > bestV2*wj {
				bestV2, bestW, best = v2, wj, j
			}
		}
		dx.cand = kept
		if best >= 0 {
			return best
		}
		if len(kept) > 0 {
			// Candidates survived but none produced a comparable score: a
			// non-finite weight.  Hand -1 to the caller, whose exact rebuild
			// and NaN guard own this failure mode.
			dx.cand = dx.cand[:0]
			return -1
		}
		if !dx.refill(s) {
			return -1
		}
	}
}

// refill rebuilds the candidate list by scanning rotating sections of the
// column range against the maintained reduced-cost row, keeping the best
// candListLen candidates by devex score (a full list replaces its current
// minimum, so the list holds the top scorers of everything scanned, not the
// first arrivals).  The scan stops early once the list is full and at least
// half the rotation has been examined — pivot quality stays near-global
// while the steady-state pricing touch shrinks — and runs the whole
// rotation otherwise.  Returns false when a full rotation found nothing
// eligible.
func (dx *devexPricer) refill(s *solver) bool {
	n := s.std.nTotal
	if n == 0 {
		return false
	}
	s.stats.CandidateRebuilds++
	if dx.cursor >= n {
		dx.cursor = 0 // re-standardization shrank the column range
	}
	dx.cand = dx.cand[:0]
	dx.score = dx.score[:0]
	for scanned := 0; scanned < n; {
		s.stats.PartialPasses++
		section := candSection
		if section > n-scanned {
			section = n - scanned
		}
		for k := 0; k < section; k++ {
			j := dx.cursor
			dx.cursor++
			if dx.cursor == n {
				dx.cursor = 0
			}
			scanned++
			if s.basic[j] || s.std.upper[j] == 0 {
				continue
			}
			viol := -s.reduced[j]
			if s.atUpper[j] {
				viol = -viol
			}
			if !(viol > epsilon) {
				continue
			}
			wj := 1.0
			if dx.w != nil {
				wj = dx.w[j]
			}
			sc := viol * viol / wj
			if !(sc > 0) {
				continue // non-finite weight or violation; the NaN guard owns it
			}
			if len(dx.cand) < candListLen {
				dx.cand = append(dx.cand, j)
				dx.score = append(dx.score, sc)
				continue
			}
			low := 0
			for i := 1; i < len(dx.score); i++ {
				if dx.score[i] < dx.score[low] {
					low = i
				}
			}
			if sc > dx.score[low] {
				dx.cand[low], dx.score[low] = j, sc
			}
		}
		if len(dx.cand) >= candListLen && 2*scanned >= n {
			break
		}
	}
	return len(dx.cand) > 0
}

// update fuses the devex weight maintenance into the reduced-cost update
// pass.  With ρ = row p of the new basis inverse, the α the reduced-cost
// update already computes per column (α = ρ·A_j) is exactly the textbook
// α_j/α_q ratio, so the reference update
//
//	w_j ← max(w_j, (α_j/α_q)²·w_q)
//
// costs one multiply-compare on top of work the plain rule does anyway;
// the leaving column is covered by the same formula (its α is 1/α_q).
// Before the BTRAN overwrites the FTRAN column, its squared norm gives the
// entering column's exact steepest-edge weight for free — the drift check
// that triggers a framework reset past devexResetRatio.
func (dx *devexPricer) update(s *solver, q, p int, dq float64, w []float64) {
	dw := dx.weights(s)
	if dw == nil {
		dw = dx.materializeW(s) // first pivot of a fresh framework
	}
	wq := dw[q]
	gamma := 1.0
	for _, v := range w {
		gamma += v * v
	}
	drifted := wq > devexResetRatio*gamma || gamma > devexResetRatio*wq
	// Propagate the better of the reference and the exact weight: γ_q is
	// the true steepest-edge weight of the entering column, so seeding the
	// updates with it (rather than a reference that may still sit at its
	// unit reset value) tightens every downstream weight for free.
	if gamma > wq {
		wq = gamma
	}

	rho := s.w // the FTRAN contents are dead once the pivot is applied
	s.btranUnit(p, rho)
	alpha := s.alphaRow(rho)
	basic, reduced := s.basic, s.reduced
	atUpper, upper := s.atUpper, s.std.upper
	fuse := !dx.partial
	best, bestV2, bestW := -1, 0.0, 1.0
	for j := 0; j < s.std.nTotal; j++ {
		if basic[j] {
			continue
		}
		rj := reduced[j]
		if a := alpha[j]; a != 0 {
			rj -= dq * a
			reduced[j] = rj
			if nw := a * a * wq; nw > dw[j] {
				dw[j] = nw
			}
		}
		// Fused full-scan pick: this pass already touches every array the
		// immediately following price would re-scan, so compute its argmax
		// here (identical eligibility and comparison) and let price consume
		// the cached result instead of making a second pass.
		if !fuse || upper[j] == 0 {
			continue
		}
		viol := -rj
		if atUpper[j] {
			viol = -viol
		}
		if !(viol > epsilon) {
			continue
		}
		if v2 := viol * viol; v2*bestW > bestV2*dw[j] {
			bestV2, bestW, best = v2, dw[j], j
		}
	}
	reduced[q] = 0
	s.stale++
	dx.dirty = true
	if drifted {
		dx.resetFramework(s, true) // clears the cache too
		return
	}
	if fuse {
		dx.cached = best
	}
}

// dualDrifted is the dual-side drift check: ρ (row p of the basis inverse,
// fresh from the BTRAN the dual iteration needs anyway) gives the exact row
// norm the reference weight approximates.
func (dx *devexPricer) dualDrifted(p int, rho []float64) bool {
	gamma := 0.0
	for _, v := range rho {
		gamma += v * v
	}
	wp := dx.rowW[p]
	return wp > devexResetRatio*gamma || gamma > devexResetRatio*wp
}

// dualUpdate maintains the dual devex row weights across a dual pivot on
// row p with FTRAN column w (the entering column, pivot element w[p]):
// row p of the basis inverse scales by 1/α_p and every other row i gains a
// −(w_i/α_p) multiple of it, so
//
//	rowW_i ← max(rowW_i, (w_i/α_p)²·rowW_p),   rowW_p ← max(rowW_p/α_p², 1).
func (dx *devexPricer) dualUpdate(s *solver, p int, w []float64) {
	ap := w[p]
	if ap == 0 {
		return
	}
	ref := dx.rowW[p] / (ap * ap)
	for i, wi := range w {
		if wi == 0 || i == p {
			continue
		}
		if nw := wi * wi * ref; nw > dx.rowW[i] {
			dx.rowW[i] = nw
		}
	}
	if ref < 1 {
		ref = 1
	}
	dx.rowW[p] = ref
	dx.dirty = true
}
