package lp

import (
	"math"
	"testing"
)

// partitionShapedLP mirrors the scheduler's 48-hour workload-partitioning
// LP (internal/sched): per DC and hour a load, migration and brown-energy
// variable, hourly placement equalities, migration-smoothing GE rows,
// brown-balance GE rows and capacity LE rows.  Long and thin with massive
// ratio-test degeneracy — the shape devex pricing exists for.
func partitionShapedLP(t testing.TB, nDC, horizon int, phase float64) *Problem {
	t.Helper()
	const totalLoad = 900.0
	prob := NewProblem(Minimize)
	load := make([][]Var, nDC)
	mig := make([][]Var, nDC)
	brown := make([][]Var, nDC)
	for d := 0; d < nDC; d++ {
		load[d] = make([]Var, horizon)
		mig[d] = make([]Var, horizon)
		brown[d] = make([]Var, horizon)
		price := 0.08 + 0.01*float64(d)
		for h := 0; h < horizon; h++ {
			load[d][h] = prob.MustVariable("load", 0, Infinity, 0)
			mig[d][h] = prob.MustVariable("mig", 0, Infinity, price*0.1)
			brown[d][h] = prob.MustVariable("brown", 0, Infinity, price)
		}
	}
	for h := 0; h < horizon; h++ {
		terms := make([]Term, nDC)
		for d := 0; d < nDC; d++ {
			terms[d] = Term{Var: load[d][h], Coeff: 1}
		}
		if err := prob.AddConstraint("place", EQ, totalLoad, terms...); err != nil {
			t.Fatal(err)
		}
	}
	for d := 0; d < nDC; d++ {
		for h := 0; h < horizon; h++ {
			green := 600 * math.Max(0, math.Sin(float64(h+8*d)/24*2*math.Pi+phase))
			terms := []Term{{Var: mig[d][h], Coeff: 1}, {Var: load[d][h], Coeff: 1}}
			rhs := 0.0
			if h == 0 {
				rhs = totalLoad / float64(nDC)
			} else {
				terms = append(terms, Term{Var: load[d][h-1], Coeff: -1})
			}
			if err := prob.AddConstraint("migOut", GE, rhs, terms...); err != nil {
				t.Fatal(err)
			}
			if err := prob.AddConstraint("brown", GE, -green,
				Term{Var: brown[d][h], Coeff: 1},
				Term{Var: load[d][h], Coeff: -1.08},
				Term{Var: mig[d][h], Coeff: -1.08}); err != nil {
				t.Fatal(err)
			}
			if err := prob.AddConstraint("cap", LE, totalLoad,
				Term{Var: load[d][h], Coeff: 1},
				Term{Var: mig[d][h], Coeff: 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return prob
}

// solveWithRule solves prob under the given pricing rule and returns the
// solution, failing the test on any non-Optimal outcome.
func solveWithRule(t testing.TB, prob *Problem, rule PricingRule) *Solution {
	t.Helper()
	sol, err := prob.SolveWithOptions(SolveOptions{Pricing: rule})
	if err != nil {
		t.Fatalf("rule %v: %v", rule, err)
	}
	return sol
}

// TestPricingRulesAgreeOnPartitionLP pins that all three rules reach the
// same objective on the partition-shaped LP (the vertices may differ —
// degenerate instances have alternative optima) and reports the work each
// rule did.
func TestPricingRulesAgreeOnPartitionLP(t *testing.T) {
	for _, phase := range []float64{0, 1.3, 2.6} {
		prob := partitionShapedLP(t, 3, 48, phase)
		ref := solveWithRule(t, prob, PricingDantzig)
		for _, rule := range []PricingRule{PricingDevex, PricingBland} {
			sol := solveWithRule(t, prob, rule)
			if diff := math.Abs(sol.Objective - ref.Objective); diff > 1e-6*(1+math.Abs(ref.Objective)) {
				t.Errorf("phase %v rule %v: objective %v, dantzig %v", phase, rule, sol.Objective, ref.Objective)
			}
			t.Logf("phase %v rule %-7v: pivots=%4d flips=%3d refactor=%2d partial=%4d rebuilds=%4d resets=%2d",
				phase, rule, sol.Stats.Pivots, sol.Stats.BoundFlips, sol.Stats.Refactorizations,
				sol.Stats.PartialPasses, sol.Stats.CandidateRebuilds, sol.Stats.DevexResets)
		}
		t.Logf("phase %v rule dantzig: pivots=%4d flips=%3d refactor=%2d",
			phase, ref.Stats.Pivots, ref.Stats.BoundFlips, ref.Stats.Refactorizations)
	}
}

// TestDevexFewerPivotsOnPartitionLP is the headline claim: on the
// degenerate partition family, devex takes fewer simplex pivots than
// Dantzig's rule, summed across phases so a single lucky instance cannot
// carry the comparison.
func TestDevexFewerPivotsOnPartitionLP(t *testing.T) {
	totalDevex, totalDantzig := 0, 0
	for _, phase := range []float64{0, 0.7, 1.3, 2.1, 2.6} {
		prob := partitionShapedLP(t, 3, 48, phase)
		totalDevex += solveWithRule(t, prob, PricingDevex).Stats.Pivots
		totalDantzig += solveWithRule(t, prob, PricingDantzig).Stats.Pivots
	}
	t.Logf("total pivots: devex=%d dantzig=%d", totalDevex, totalDantzig)
	if totalDevex >= totalDantzig {
		t.Errorf("devex took %d pivots, dantzig %d: devex should need fewer on the degenerate family", totalDevex, totalDantzig)
	}
}
