package lp

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// codecProblem builds a bound-heavy LP whose optimal basis carries at-upper
// statuses and (under devex) learned weights, so the codec round-trip
// exercises every section of the encoding.
func codecProblem(t *testing.T, seed int64) *Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := NewProblem(Minimize)
	const nv, nc = 40, 18
	vars := make([]Var, nv)
	var err error
	for j := 0; j < nv; j++ {
		ub := Infinity
		if rng.Intn(3) > 0 {
			ub = 1 + 9*rng.Float64()
		}
		if vars[j], err = p.AddVariable("x", 0, ub, rng.Float64()*4-2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nc; i++ {
		terms := make([]Term, 0, 6)
		for _, j := range rng.Perm(nv)[:6] {
			terms = append(terms, Term{Var: vars[j], Coeff: rng.Float64()*4 - 2})
		}
		op := LE
		if i%3 == 0 {
			op = GE
		}
		if err := p.AddConstraint("c", op, rng.Float64()*8-2, terms...); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// TestBasisCodecRoundTrip pins the snapshot contract: encode → decode →
// SolveFrom on the same (and a mildly mutated) problem is a warm solve with
// zero cold fallbacks and values bit-identical to warm-starting from the
// original in-memory basis.
func TestBasisCodecRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		p := codecProblem(t, seed)
		sol, err := p.Solve()
		if err != nil {
			continue // infeasible/unbounded draws carry no basis to snapshot
		}
		basis := sol.Basis()
		if basis == nil {
			t.Fatalf("seed %d: optimal solve returned no basis", seed)
		}
		enc, err := basis.MarshalBinary()
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		enc2, err := basis.MarshalBinary()
		if err != nil || !bytes.Equal(enc, enc2) {
			t.Fatalf("seed %d: encoding is not deterministic", seed)
		}
		dec, err := DecodeBasis(enc)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}

		// Mutate the problem the way a daemon tick does (pure data edits),
		// then warm-start once from the in-memory basis and once from the
		// decoded snapshot: same values, and the snapshot path must not
		// fall back cold.
		mutate := func(pp *Problem) {
			for i := 0; i < pp.NumConstraints(); i += 2 {
				if err := pp.SetRHS(i, float64(i%5)+0.25); err != nil {
					t.Fatal(err)
				}
			}
		}
		pMem := codecProblem(t, seed)
		mutate(pMem)
		pSnap := codecProblem(t, seed)
		mutate(pSnap)
		fromMem, errMem := pMem.SolveFrom(basis)
		fromSnap, errSnap := pSnap.SolveFrom(dec)
		if (errMem == nil) != (errSnap == nil) {
			t.Fatalf("seed %d: warm outcomes differ: %v vs %v", seed, errMem, errSnap)
		}
		if errMem != nil {
			continue
		}
		if fromSnap.Stats.ColdFallbacks != 0 {
			t.Fatalf("seed %d: decoded basis fell back cold", seed)
		}
		if fromMem.Stats.ColdFallbacks != fromSnap.Stats.ColdFallbacks ||
			fromMem.Stats.Pivots != fromSnap.Stats.Pivots {
			t.Fatalf("seed %d: warm work differs: mem=%+v snap=%+v", seed, fromMem.Stats, fromSnap.Stats)
		}
		vm, vs := fromMem.Values(), fromSnap.Values()
		for j := range vm {
			if vm[j] != vs[j] {
				t.Fatalf("seed %d: value %d differs: %v vs %v", seed, j, vm[j], vs[j])
			}
		}
	}
}

// TestBasisCodecRejectsCorrupt pins the failure mode: every truncation and
// a byte flip at every position must decode to ErrBasisEncoding, never to a
// silently wrong basis.
func TestBasisCodecRejectsCorrupt(t *testing.T) {
	var enc []byte
	for seed := int64(1); seed <= 32; seed++ {
		sol, err := codecProblem(t, seed).Solve()
		if err != nil {
			continue
		}
		if enc, err = sol.Basis().MarshalBinary(); err != nil {
			t.Fatal(err)
		}
		break
	}
	if enc == nil {
		t.Fatal("no optimal instance found to snapshot")
	}
	if _, err := DecodeBasis(nil); !errors.Is(err, ErrBasisEncoding) {
		t.Fatalf("nil input: got %v", err)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeBasis(enc[:cut]); !errors.Is(err, ErrBasisEncoding) {
			t.Fatalf("truncation at %d/%d accepted (err=%v)", cut, len(enc), err)
		}
	}
	for pos := 0; pos < len(enc); pos++ {
		corrupt := append([]byte(nil), enc...)
		corrupt[pos] ^= 0x5a
		if _, err := DecodeBasis(corrupt); !errors.Is(err, ErrBasisEncoding) {
			t.Fatalf("byte flip at %d accepted (err=%v)", pos, err)
		}
	}
	if _, err := DecodeBasis(append(append([]byte(nil), enc...), 0)); !errors.Is(err, ErrBasisEncoding) {
		t.Fatal("trailing byte accepted")
	}
	if _, err := (*Basis)(nil).MarshalBinary(); !errors.Is(err, ErrBasisEncoding) {
		t.Fatal("nil basis marshalled")
	}
}
