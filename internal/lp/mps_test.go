package lp

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestMPSRoundTrip writes differential-suite LPs to MPS, reads them back
// and requires the round-tripped model to reproduce the original solve:
// same status, same objective, same variable values.
func TestMPSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(60221))
	solved, statuses := 0, map[Status]int{}
	for trial := 0; trial < 120; trial++ {
		p := drawDifferentialProblem(rng, trial)
		var buf bytes.Buffer
		if err := p.WriteMPS(&buf); err != nil {
			t.Fatalf("trial %d: WriteMPS: %v", trial, err)
		}
		q, err := ReadMPS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: ReadMPS: %v\n%s", trial, err, buf.String())
		}
		if q.NumVariables() != p.NumVariables() || q.NumConstraints() != p.NumConstraints() {
			t.Fatalf("trial %d: round trip changed shape: %dx%d vs %dx%d", trial,
				q.NumConstraints(), q.NumVariables(), p.NumConstraints(), p.NumVariables())
		}
		a, errA := p.Solve()
		b, errB := q.Solve()
		if (errA == nil) != (errB == nil) || a.Status != b.Status {
			t.Fatalf("trial %d: original %v (%v), round trip %v (%v)",
				trial, a.Status, errA, b.Status, errB)
		}
		statuses[a.Status]++
		if a.Status != Optimal {
			continue
		}
		solved++
		tol := 1e-9 * (1 + math.Abs(a.Objective))
		if !almostEqual(a.Objective, b.Objective, tol) {
			t.Fatalf("trial %d: objective %v vs %v after round trip", trial, a.Objective, b.Objective)
		}
		for j := 0; j < p.NumVariables(); j++ {
			va, vb := a.Value(Var(j)), b.Value(Var(j))
			if !almostEqual(va, vb, 1e-7*(1+math.Abs(va))) {
				t.Fatalf("trial %d: x%d = %v vs %v after round trip", trial, j, va, vb)
			}
		}
	}
	if solved == 0 {
		t.Fatalf("no optimal instances in the round-trip sweep: %v", statuses)
	}
	t.Logf("round-tripped 120 LPs: %v", statuses)
}

// TestMPSWriteMaximize pins that the writer records the sense: a Maximize
// model must come back maximizing, not defaulting to the MPS minimize.
func TestMPSWriteMaximize(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.MustVariable("x", 0, 10, 1)
	if err := p.AddConstraint("c", LE, 4, Term{x, 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteMPS(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "OBJSENSE") {
		t.Fatalf("Maximize model wrote no OBJSENSE:\n%s", buf.String())
	}
	q, err := ReadMPS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := q.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Objective, 4, 1e-9) {
		t.Fatalf("round-tripped objective = %v, want 4 (sense lost?)", sol.Objective)
	}
}

// TestMPSReadFixedFormat feeds a classic fixed-format file — comment lines,
// an RHS set name, a RANGES section and the full BOUNDS menu — and checks
// every dialect rule lands.
func TestMPSReadFixedFormat(t *testing.T) {
	const src = `* fixed-format sample in the classic column layout
NAME          SAMPLE
ROWS
 N  OBJ
 L  LIM1
 G  LIM2
 E  BAL
COLUMNS
    X1        OBJ            1.0   LIM1           1.0
    X1        LIM2           1.0
    X2        OBJ            2.0   LIM1           1.0
    X2        BAL            1.0
    X3        OBJ           -1.0   LIM2           1.0
    X3        BAL            1.0
RHS
    RHS       LIM1           4.0   LIM2           1.0
    RHS       BAL            3.0
RANGES
    RNG       LIM2           2.0
BOUNDS
 UP BND       X1             4.0
 LO BND       X2             0.5
 MI BND       X3
ENDATA
`
	p, err := ReadMPS(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadMPS: %v", err)
	}
	if p.NumVariables() != 3 {
		t.Fatalf("read %d variables, want 3", p.NumVariables())
	}
	// LIM2 is ranged (G 1.0, range 2.0 → 1 ≤ ax ≤ 3), so it expands into
	// two constraints: LIM1, LIM2≥, LIM2≤, BAL.
	if p.NumConstraints() != 4 {
		t.Fatalf("read %d constraints, want 4 (ranged row splits)", p.NumConstraints())
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// minimize x1 + 2 x2 − x3  s.t.  x1+x2 ≤ 4, 1 ≤ x1+x3 ≤ 3, x2+x3 = 3,
	// x1 ≤ 4, x2 ≥ 0.5, x3 free-below.  Optimum pushes x3 as high as the
	// range allows with x1 at 0: x3 = 3, x2 = 0... but x2 ≥ 0.5, so
	// x2 = 0.5, x3 = 2.5, x1 ∈ [max(0, 1−2.5), …] → x1 = 0.
	want := 0 + 2*0.5 - 2.5
	if !almostEqual(sol.Objective, want, 1e-9) {
		t.Fatalf("objective = %v, want %v", sol.Objective, want)
	}
}

// TestMPSBoundQuirks pins the UP-negative rule and the remaining bound
// types (FX, FR, BV, LI/UI as integer-marked LO/UP).
func TestMPSBoundQuirks(t *testing.T) {
	const src = `NAME Q
ROWS
 N obj
 G r
COLUMNS
 neg obj 1 r 1
 fx obj 1 r 1
 fr obj 1 r 1
 bv obj 1 r 1
 ints obj 1 r 1
RHS
 r -100
BOUNDS
 UP neg -2
 FX fx 7
 FR fr
 LI ints -3
 UI ints 6
 BV bv
ENDATA
`
	p, err := ReadMPS(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadMPS: %v", err)
	}
	wantBounds := map[string][2]float64{
		"neg":  {math.Inf(-1), -2}, // UP < 0 without LO drops lb to −∞
		"fx":   {7, 7},
		"fr":   {math.Inf(-1), math.Inf(1)},
		"bv":   {0, 1},
		"ints": {-3, 6},
	}
	for j, v := range p.vars {
		want, ok := wantBounds[v.name]
		if !ok {
			t.Fatalf("unexpected variable %q", v.name)
		}
		if v.lb != want[0] || v.ub != want[1] {
			t.Errorf("var %d %q: bounds [%v, %v], want [%v, %v]", j, v.name, v.lb, v.ub, want[0], want[1])
		}
	}
}

// TestMPSErrors pins a few malformed inputs.
func TestMPSErrors(t *testing.T) {
	cases := map[string]string{
		"no ENDATA":    "NAME X\nROWS\n N obj\n",
		"unknown row":  "NAME X\nROWS\n N obj\nCOLUMNS\n x nosuch 1\nENDATA\n",
		"bad number":   "NAME X\nROWS\n N obj\n L r\nCOLUMNS\n x r abc\nENDATA\n",
		"bad section":  "NAME X\nROWZ\nENDATA\n",
		"bad row type": "NAME X\nROWS\n Q r\nENDATA\n",
	}
	for name, src := range cases {
		if _, err := ReadMPS(strings.NewReader(src)); err == nil {
			t.Errorf("%s: ReadMPS accepted malformed input", name)
		}
	}
}
