package lp

// MPS interchange: WriteMPS serializes a Problem to the MPS linear-program
// format and ReadMPS parses one back.  The reader accepts both fixed- and
// free-format files by splitting every data line on whitespace (which also
// reads well-formed fixed-format files, as long as no name embeds a space)
// and understands the NAME, OBJSENSE, ROWS, COLUMNS, RHS, RANGES, BOUNDS
// and ENDATA sections.  The writer emits aligned free format with
// machine-generated row/column names (model names may repeat or contain
// whitespace, so they cannot serve as MPS identifiers) and shortest
// round-trippable numbers, so Write→Read reproduces the exact same LP.
//
// Dialect notes, chosen to match the common lp_solve/CPLEX conventions:
//   - The first N row is the objective; further N rows are free rows whose
//     coefficients are dropped.
//   - A RANGES entry r on row i with rhs b turns the row into an interval:
//     L rows become b−|r| ≤ ax ≤ b, G rows b ≤ ax ≤ b+|r|, and E rows span
//     b to b+r (r's sign picks the side).  Interval rows are modeled as two
//     constraints.
//   - An UP bound with a negative value on a column with no explicit lower
//     bound drops the default lower bound to −∞ (the classic MPS quirk).
//   - BV becomes plain [0, 1]; LI/UI are read as LO/UP — this package
//     solves LPs, so integrality marks (including COLUMNS 'MARKER' lines,
//     which are skipped) do not survive.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteMPS writes the problem in MPS format.
func (p *Problem) WriteMPS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	num := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	rname := func(i int) string { return fmt.Sprintf("R%d", i) }
	cname := func(j int) string { return fmt.Sprintf("X%d", j) }

	fmt.Fprintf(bw, "NAME          %s\n", "GREENCLOUD")
	if p.sense == Maximize {
		fmt.Fprintf(bw, "OBJSENSE\n    MAX\n")
	}
	fmt.Fprintf(bw, "ROWS\n N  COST\n")
	for i, c := range p.cons {
		var t byte
		switch c.op {
		case LE:
			t = 'L'
		case GE:
			t = 'G'
		default:
			t = 'E'
		}
		fmt.Fprintf(bw, " %c  %s\n", t, rname(i))
	}

	// Column-major entries: walk the rows once to group terms per column.
	// Duplicate terms are pre-summed so the reader's accumulation is moot.
	type entry struct {
		row int
		val float64
	}
	byCol := make([][]entry, len(p.vars))
	for i, c := range p.cons {
		for _, t := range c.terms {
			if t.Coeff != 0 {
				byCol[t.Var] = append(byCol[t.Var], entry{i, t.Coeff})
			}
		}
	}
	fmt.Fprintf(bw, "COLUMNS\n")
	for j, v := range p.vars {
		merged := byCol[j][:0]
		seen := make(map[int]int, len(byCol[j]))
		for _, e := range byCol[j] {
			if k, ok := seen[e.row]; ok {
				merged[k].val += e.val
			} else {
				seen[e.row] = len(merged)
				merged = append(merged, e)
			}
		}
		if v.cost != 0 {
			fmt.Fprintf(bw, "    %-10s %-10s %s\n", cname(j), "COST", num(v.cost))
		}
		wrote := v.cost != 0
		for _, e := range merged {
			if e.val == 0 {
				continue
			}
			fmt.Fprintf(bw, "    %-10s %-10s %s\n", cname(j), rname(e.row), num(e.val))
			wrote = true
		}
		if !wrote {
			// A column with no entries anywhere would vanish on read; pin it
			// with an explicit zero objective coefficient.
			fmt.Fprintf(bw, "    %-10s %-10s 0\n", cname(j), "COST")
		}
	}

	fmt.Fprintf(bw, "RHS\n")
	for i, c := range p.cons {
		if c.rhs != 0 {
			fmt.Fprintf(bw, "    %-10s %-10s %s\n", "RHS", rname(i), num(c.rhs))
		}
	}

	fmt.Fprintf(bw, "BOUNDS\n")
	for j, v := range p.vars {
		n := cname(j)
		switch {
		case v.lb == 0 && math.IsInf(v.ub, 1):
			// the MPS default; nothing to write
		case v.lb == v.ub:
			fmt.Fprintf(bw, " FX %-10s %-10s %s\n", "BND", n, num(v.lb))
		case math.IsInf(v.lb, -1) && math.IsInf(v.ub, 1):
			fmt.Fprintf(bw, " FR %-10s %-10s\n", "BND", n)
		default:
			if math.IsInf(v.lb, -1) {
				fmt.Fprintf(bw, " MI %-10s %-10s\n", "BND", n)
			} else if v.lb != 0 {
				fmt.Fprintf(bw, " LO %-10s %-10s %s\n", "BND", n, num(v.lb))
			}
			if !math.IsInf(v.ub, 1) {
				fmt.Fprintf(bw, " UP %-10s %-10s %s\n", "BND", n, num(v.ub))
			}
		}
	}
	fmt.Fprintf(bw, "ENDATA\n")
	return bw.Flush()
}

// mpsRow is a constraint under construction during parsing.
type mpsRow struct {
	name     string
	op       Op
	rhs      float64
	terms    []Term
	hasRange bool
	rng      float64
}

// mpsCol is a variable under construction during parsing.
type mpsCol struct {
	name       string
	lb, ub     float64
	cost       float64
	explicitLO bool // an explicit lower bound suppresses the UP-negative quirk
}

// ReadMPS parses an MPS-format linear program.  See the package comment on
// this file for the accepted dialect.
func ReadMPS(r io.Reader) (*Problem, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	sense := Minimize
	var rows []mpsRow
	rowIdx := map[string]int{}
	freeRows := map[string]bool{} // extra N rows: coefficients dropped
	objRow := ""
	var cols []mpsCol
	colIdx := map[string]int{}
	col := func(name string) int {
		if j, ok := colIdx[name]; ok {
			return j
		}
		j := len(cols)
		colIdx[name] = j
		cols = append(cols, mpsCol{name: name, lb: 0, ub: math.Inf(1)})
		return j
	}

	section := ""
	sawEndata := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '*'); i == 0 {
			continue // comment line
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if line[0] != ' ' && line[0] != '\t' {
			// Section header at column 1.
			f := strings.Fields(line)
			section = strings.ToUpper(f[0])
			switch section {
			case "NAME", "ROWS", "COLUMNS", "RHS", "RANGES", "BOUNDS", "OBJSENSE":
				if section == "OBJSENSE" && len(f) > 1 {
					if s, err := parseSense(f[1]); err == nil {
						sense = s
						section = ""
					} else {
						return nil, fmt.Errorf("lp: mps line %d: %v", lineNo, err)
					}
				}
			case "ENDATA":
				sawEndata = true
			default:
				return nil, fmt.Errorf("lp: mps line %d: unknown section %q", lineNo, f[0])
			}
			if sawEndata {
				break
			}
			continue
		}
		f := strings.Fields(line)
		switch section {
		case "OBJSENSE":
			s, err := parseSense(f[0])
			if err != nil {
				return nil, fmt.Errorf("lp: mps line %d: %v", lineNo, err)
			}
			sense = s
		case "ROWS":
			if len(f) != 2 {
				return nil, fmt.Errorf("lp: mps line %d: ROWS entry needs a type and a name", lineNo)
			}
			name := f[1]
			switch strings.ToUpper(f[0]) {
			case "N":
				if objRow == "" {
					objRow = name
				} else {
					freeRows[name] = true
				}
			case "L":
				rowIdx[name] = len(rows)
				rows = append(rows, mpsRow{name: name, op: LE})
			case "G":
				rowIdx[name] = len(rows)
				rows = append(rows, mpsRow{name: name, op: GE})
			case "E":
				rowIdx[name] = len(rows)
				rows = append(rows, mpsRow{name: name, op: EQ})
			default:
				return nil, fmt.Errorf("lp: mps line %d: unknown row type %q", lineNo, f[0])
			}
		case "COLUMNS":
			if len(f) >= 3 && strings.Contains(strings.ToUpper(f[1]), "MARKER") {
				continue // integrality markers: LPs ignore them
			}
			if len(f) < 3 || len(f)%2 == 0 {
				return nil, fmt.Errorf("lp: mps line %d: COLUMNS entry needs name plus row/value pairs", lineNo)
			}
			j := col(f[0])
			for k := 1; k+1 < len(f); k += 2 {
				val, err := strconv.ParseFloat(f[k+1], 64)
				if err != nil {
					return nil, fmt.Errorf("lp: mps line %d: bad value %q", lineNo, f[k+1])
				}
				switch rn := f[k]; {
				case rn == objRow:
					cols[j].cost += val
				case freeRows[rn]:
					// free row: dropped
				default:
					ri, ok := rowIdx[rn]
					if !ok {
						return nil, fmt.Errorf("lp: mps line %d: unknown row %q", lineNo, rn)
					}
					rows[ri].terms = append(rows[ri].terms, Term{Var(j), val})
				}
			}
		case "RHS", "RANGES":
			// Odd field count ⇒ a set name leads the row/value pairs.
			start := 0
			if len(f)%2 == 1 {
				start = 1
			}
			if len(f)-start < 2 {
				return nil, fmt.Errorf("lp: mps line %d: %s entry needs row/value pairs", lineNo, section)
			}
			for k := start; k+1 < len(f); k += 2 {
				val, err := strconv.ParseFloat(f[k+1], 64)
				if err != nil {
					return nil, fmt.Errorf("lp: mps line %d: bad value %q", lineNo, f[k+1])
				}
				rn := f[k]
				if rn == objRow || freeRows[rn] {
					continue // objective constants / free-row ranges: dropped
				}
				ri, ok := rowIdx[rn]
				if !ok {
					return nil, fmt.Errorf("lp: mps line %d: unknown row %q", lineNo, rn)
				}
				if section == "RHS" {
					rows[ri].rhs = val
				} else {
					rows[ri].hasRange = true
					rows[ri].rng = val
				}
			}
		case "BOUNDS":
			if len(f) < 2 {
				return nil, fmt.Errorf("lp: mps line %d: short BOUNDS entry", lineNo)
			}
			typ := strings.ToUpper(f[0])
			needsVal := typ == "UP" || typ == "LO" || typ == "FX" || typ == "LI" || typ == "UI"
			want := 2 // colname value; one more field means a set name leads
			if !needsVal {
				want = 1 // colname only
			}
			args := f[1:]
			if len(args) == want+1 {
				args = args[1:] // leading bound-set name
			}
			if len(args) != want {
				return nil, fmt.Errorf("lp: mps line %d: malformed BOUNDS entry", lineNo)
			}
			j := col(args[0])
			var val float64
			if needsVal {
				var err error
				if val, err = strconv.ParseFloat(args[1], 64); err != nil {
					return nil, fmt.Errorf("lp: mps line %d: bad value %q", lineNo, args[1])
				}
			}
			switch typ {
			case "UP", "UI":
				cols[j].ub = val
				if val < 0 && !cols[j].explicitLO {
					cols[j].lb = math.Inf(-1)
				}
			case "LO", "LI":
				cols[j].lb = val
				cols[j].explicitLO = true
			case "FX":
				cols[j].lb, cols[j].ub = val, val
				cols[j].explicitLO = true
			case "FR":
				cols[j].lb, cols[j].ub = math.Inf(-1), math.Inf(1)
				cols[j].explicitLO = true
			case "MI":
				cols[j].lb = math.Inf(-1)
				cols[j].explicitLO = true
			case "PL":
				cols[j].ub = math.Inf(1)
			case "BV":
				cols[j].lb, cols[j].ub = 0, 1
				cols[j].explicitLO = true
			default:
				return nil, fmt.Errorf("lp: mps line %d: unknown bound type %q", lineNo, f[0])
			}
		case "NAME", "":
			// NAME continuation lines carry no data.
		default:
			return nil, fmt.Errorf("lp: mps line %d: data before any section", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lp: reading mps: %w", err)
	}
	if !sawEndata {
		return nil, fmt.Errorf("lp: mps input has no ENDATA")
	}

	p := NewProblem(sense)
	for _, c := range cols {
		if _, err := p.AddVariable(c.name, c.lb, c.ub, c.cost); err != nil {
			return nil, err
		}
	}
	for _, row := range rows {
		if !row.hasRange {
			if err := p.AddConstraint(row.name, row.op, row.rhs, row.terms...); err != nil {
				return nil, err
			}
			continue
		}
		// Ranged row: b ≤ ax ≤ b̄ expressed as a GE/LE pair.
		var lo, hi float64
		switch row.op {
		case LE:
			lo, hi = row.rhs-math.Abs(row.rng), row.rhs
		case GE:
			lo, hi = row.rhs, row.rhs+math.Abs(row.rng)
		default: // EQ
			if row.rng >= 0 {
				lo, hi = row.rhs, row.rhs+row.rng
			} else {
				lo, hi = row.rhs+row.rng, row.rhs
			}
		}
		if err := p.AddConstraint(row.name, GE, lo, row.terms...); err != nil {
			return nil, err
		}
		if err := p.AddConstraint(row.name, LE, hi, row.terms...); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func parseSense(s string) (Sense, error) {
	switch strings.ToUpper(s) {
	case "MIN", "MINIMIZE":
		return Minimize, nil
	case "MAX", "MAXIMIZE":
		return Maximize, nil
	}
	return 0, fmt.Errorf("unknown OBJSENSE %q", s)
}
