package lp

import "math"

// Standard-form column identities.  The revised simplex works on column
// indices of one particular standardization; a Basis must survive
// re-standardization after bound/rhs mutations, so it stores these
// model-level identities instead and installBasis maps them back to column
// indices.

const (
	identStruct = int8(iota) // structural column of variable idx
	identNeg                 // negative part of free variable idx
	identSlack               // slack/surplus column of constraint idx
	identArt                 // artificial column of constraint idx
)

// colIdent names a standard-form column.  For identSlack/identArt, idx is
// the constraint the column belongs to; rows themselves need no identity
// because the standard form has exactly one row per model constraint, in
// insertion order (variable bounds never spawn rows).
type colIdent struct {
	kind int8
	idx  int
}

// standard is the problem in computational bounded standard form —
// minimize c·y subject to A·y = b, 0 ≤ y ≤ u (u may be +Inf per column,
// and 0 for a fixed variable), b ≥ 0 — with A stored column-wise (CSC):
// column j's nonzeros are rowIdx/vals[colPtr[j]:colPtr[j+1]], row indices
// ascending.  Columns are laid out structural [0, nStruct), slack/surplus
// [nStruct, nTotal), artificial [nTotal, nCols).
//
// Variable bounds are implicit data, never rows: a variable with a finite
// lower bound is shifted (y = x − lb, u = ub − lb), a variable with lb = −∞
// but a finite upper bound is mirrored (y = ub − x, u = +∞, coefficients
// and cost negated), and only a doubly-free variable is split x = x⁺ − x⁻.
// The simplex keeps nonbasic columns at either bound (see revised.go), so
// tightening or relaxing a bound is a pure data edit: the row count — and
// with it the basis dimension and the LU — is always exactly the model's
// constraint count.
type standard struct {
	m       int
	nStruct int
	nTotal  int
	nCols   int

	colPtr []int
	rowIdx []int
	vals   []float64

	b []float64
	c []float64 // phase-2 objective (sense-normalized), zero on slack/artificial

	// upper[j] is column j's upper bound: ub−lb for shifted structural
	// columns (0 when the variable is fixed), +Inf for mirrored/split
	// structural columns and for every slack, surplus and artificial.
	upper []float64

	// slackOf[i]/artOf[i] is row i's slack/artificial column, or -1.
	slackOf []int
	artOf   []int

	colIDs []colIdent

	// shift maps original variable index to its lower bound (y = x − lb),
	// or to its upper bound when mirror[j] is set (y = ub − x).
	shift  []float64
	mirror []bool
	// negPart[j] is the column index of the negative part of original
	// variable j when it is doubly free (split x = x⁺ − x⁻), or -1.
	negPart []int

	// Presolve plumbing.  modelCons is the model's constraint count (== m
	// when presolve removed nothing or did not run); rowOrig maps each
	// standard-form row to its model constraint (nil means identity); colOf
	// maps each model variable to its primary structural column (-1 when
	// presolve eliminated it); ps is the reduction record recover replays
	// and captureBasis consults for removed-row fill identities.
	modelCons int
	rowOrig   []int
	colOf     []int
	ps        *presolveState

	// Row-major mirror of the CSC nonzeros over the priced columns
	// (j < nTotal), built lazily by buildRows for the pivot-update scatter.
	rowPtr  []int
	rowCols []int
	rowVals []float64

	// scr is the owning Problem's solve scratch; the mirror above, the
	// solver's alpha row and the devex weight vectors are carved from it so
	// repeated solves (the milp/sched warm chains) reuse the buffers
	// instead of re-allocating them.  Nil-safe: a standalone standard just
	// allocates.
	scr *solveScratch
}

// solveScratch holds solve-lifetime buffers reused across a Problem's
// solves.  A Problem is documented not safe for concurrent use, so its
// solves are sequential and one set of buffers suffices; nothing carved
// from here escapes into a Solution or a Basis (values, basis captures and
// devex weight captures are all freshly copied out).
type solveScratch struct {
	rowPtr  []int
	rowCols []int
	rowVals []float64
	rowNext []int
	alpha   []float64
	devexW  []float64
	rowW    []float64

	// Sparse devex weight staging for the warm-start cycle: carried* backs
	// installBasis's mapped column/weight pairs (consumed by the solver's
	// first weight materialization), captured* backs devexWeights's
	// capture-time extraction (copied into the Basis by captureBasis).
	// Distinct pairs: the carried arrays can still be live — un-consumed —
	// when capture runs on a zero-pivot solve.
	carriedIdx  []int
	carriedW    []float64
	capturedIdx []int
	capturedW   []float64

	// Presolve working set (see Problem.presolve): the presolveState itself
	// (its masks and working bounds live until the next solve — basis
	// captures and postsolved values are copied out, never aliased), the
	// warm-basis protection masks, the flat row/column mirrors of the model
	// and the duplicate-column hash chains.
	// preMatOK/preMatVer validate the cached mirror (preRowOff…preCVal)
	// against the Problem's structVer, so a SetRHS/SetBounds warm re-solve
	// reuses the mirror instead of re-aggregating the terms.
	preMatOK   bool
	preMatVer  uint64
	ps         presolveState
	preProtRow []bool
	preProtCol []bool
	preLock    []bool
	preRowOff  []int
	preRCol    []int
	preRVal    []float64
	preAcc     []float64
	preSeen    []bool
	preTouched []int
	preColOff  []int
	preCRow    []int
	preCVal    []float64
	preNext    []int
	preLiveRow []int
	preLiveCol []int
	preDupHead map[uint64]int
	preDupNext []int
}

// col returns column j's nonzeros.
func (s *standard) col(j int) ([]int, []float64) {
	lo, hi := s.colPtr[j], s.colPtr[j+1]
	return s.rowIdx[lo:hi], s.vals[lo:hi]
}

// buildRows materializes the row-major mirror of the priced columns
// (j < nTotal; artificials never re-enter pricing).  One counting sort over
// the CSC nonzeros, done once per standard form on first use.
func (s *standard) buildRows() {
	if s.rowPtr != nil {
		return
	}
	end := s.colPtr[s.nTotal]
	var ptr, cols, next []int
	var vals []float64
	if s.scr != nil {
		ptr = growInts(s.scr.rowPtr, s.m+1)
		cols = growInts(s.scr.rowCols, end)
		vals = growFloats(s.scr.rowVals, end)
		next = growInts(s.scr.rowNext, s.m)
		s.scr.rowPtr, s.scr.rowCols, s.scr.rowVals, s.scr.rowNext = ptr, cols, vals, next
		for i := range ptr {
			ptr[i] = 0
		}
	} else {
		ptr = make([]int, s.m+1)
		cols = make([]int, end)
		vals = make([]float64, end)
		next = make([]int, s.m)
	}
	for _, r := range s.rowIdx[:end] {
		ptr[r+1]++
	}
	for r := 0; r < s.m; r++ {
		ptr[r+1] += ptr[r]
	}
	copy(next, ptr[:s.m])
	for j := 0; j < s.nTotal; j++ {
		for p := s.colPtr[j]; p < s.colPtr[j+1]; p++ {
			r := s.rowIdx[p]
			k := next[r]
			next[r] = k + 1
			cols[k] = j
			vals[k] = s.vals[p]
		}
	}
	s.rowPtr, s.rowCols, s.rowVals = ptr, cols, vals
}

// scatterRows accumulates alpha[j] += (row r of A)·y[r] over the rows where
// y is nonzero — alpha = Aᵀ·y across every priced column in one sequential
// pass, instead of a per-column gather with its per-column slice overhead.
// The whole-row skip on y[r] == 0 is worth its branch: unlike a per-element
// skip it elides an entire row of multiply-adds.  alpha must arrive zeroed.
func (s *standard) scatterRows(y, alpha []float64) {
	s.buildRows()
	for r := 0; r < s.m; r++ {
		yr := y[r]
		if yr == 0 {
			continue
		}
		for p := s.rowPtr[r]; p < s.rowPtr[r+1]; p++ {
			alpha[s.rowCols[p]] += s.rowVals[p] * yr
		}
	}
}

// colDot returns column j · y, with y indexed by row.  The multiply-add is
// unconditional on purpose: y's zero pattern is data-dependent (a BTRAN row
// of the inverse), so a skip branch mispredicts far more than the multiply
// it saves costs.
func (s *standard) colDot(j int, y []float64) float64 {
	rows, vals := s.col(j)
	d := 0.0
	for k, r := range rows {
		d += vals[k] * y[r]
	}
	return d
}

// standardize converts the model into computational standard form.  When ps
// is non-nil the reduced model is built instead: presolve-removed rows and
// columns are skipped (their substituted contributions already live in
// ps.rhs), surviving columns use the presolve-tightened bounds and
// transferred costs, and every colIdent — including slack/artificial row
// identities — is expressed in model indices, so a Basis captured on the
// reduced form installs on any later standardization and vice versa.
func (p *Problem) standardize(ps *presolveState) (*standard, error) {
	n := len(p.vars)
	std := &standard{
		shift:     make([]float64, n),
		mirror:    make([]bool, n),
		negPart:   make([]int, n),
		scr:       &p.scr,
		modelCons: len(p.cons),
		ps:        ps,
	}

	// Structural columns: one per surviving variable, plus one extra per
	// doubly-free variable (x = x⁺ − x⁻ when lb = −inf and ub = +inf).
	// sgn[j] is the coefficient multiplier of variable j's primary column
	// (−1 when mirrored).
	col := 0
	colOf := make([]int, n)
	sgn := make([]float64, n)
	for j, v := range p.vars {
		std.negPart[j] = -1
		sgn[j] = 1
		lb, ub := v.lb, v.ub
		if ps != nil {
			if ps.colDead[j] {
				colOf[j] = -1
				continue
			}
			lb, ub = ps.lb[j], ps.ub[j]
		}
		colOf[j] = col
		switch {
		case !math.IsInf(lb, -1):
			std.shift[j] = lb
			col++
		case !math.IsInf(ub, 1):
			// lb = −∞, ub finite: mirror y = ub − x.
			std.mirror[j] = true
			std.shift[j] = ub
			sgn[j] = -1
			col++
		default:
			std.shift[j] = 0
			col++
			std.negPart[j] = col
			col++
		}
	}
	std.nStruct = col
	std.colOf = colOf

	sign := 1.0
	if p.sense == Maximize {
		sign = -1.0
	}

	// Rows: exactly the original constraints, in insertion order.
	type row struct {
		coeffs map[int]float64
		op     Op
		rhs    float64
	}
	rows := make([]row, 0, len(p.cons))
	if ps != nil {
		std.rowOrig = make([]int, 0, len(p.cons))
	}
	for ci, c := range p.cons {
		rhs := c.rhs
		if ps != nil {
			if ps.rowDead[ci] {
				continue
			}
			rhs = ps.rhs[ci]
			std.rowOrig = append(std.rowOrig, ci)
		}
		r := row{coeffs: make(map[int]float64, len(c.terms)), op: c.op, rhs: rhs}
		for _, t := range c.terms {
			j := int(t.Var)
			if colOf[j] < 0 {
				continue // eliminated column; its contribution is in ps.rhs
			}
			r.rhs -= t.Coeff * std.shift[j]
			r.coeffs[colOf[j]] += sgn[j] * t.Coeff
			if std.negPart[j] >= 0 {
				r.coeffs[std.negPart[j]] -= t.Coeff
			}
		}
		rows = append(rows, r)
	}

	m := len(rows)
	std.m = m
	std.b = make([]float64, m)
	std.slackOf = make([]int, m)
	std.artOf = make([]int, m)

	// Normalize to b ≥ 0 and count slack/surplus columns.
	nSlack := 0
	for i := range rows {
		if rows[i].rhs < 0 {
			for c := range rows[i].coeffs {
				rows[i].coeffs[c] = -rows[i].coeffs[c]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].op {
			case LE:
				rows[i].op = GE
			case GE:
				rows[i].op = LE
			}
		}
		if rows[i].op != EQ {
			nSlack++
		}
	}
	std.nTotal = std.nStruct + nSlack

	slackCol := std.nStruct
	artCol := std.nTotal
	for i := range rows {
		std.b[i] = rows[i].rhs
		std.slackOf[i], std.artOf[i] = -1, -1
		switch rows[i].op {
		case LE:
			std.slackOf[i] = slackCol
			slackCol++
		case GE:
			std.slackOf[i] = slackCol
			slackCol++
			std.artOf[i] = artCol
			artCol++
		case EQ:
			std.artOf[i] = artCol
			artCol++
		}
	}
	std.nCols = artCol

	// Objective and upper bounds over the standard-form columns.
	std.c = make([]float64, std.nCols)
	std.upper = make([]float64, std.nCols)
	for j := range std.upper {
		std.upper[j] = math.Inf(1)
	}
	for j, v := range p.vars {
		if colOf[j] < 0 {
			continue
		}
		lb, ub, cost := v.lb, v.ub, v.cost
		if ps != nil {
			lb, ub, cost = ps.lb[j], ps.ub[j], ps.cost[j]
		}
		std.c[colOf[j]] = sign * sgn[j] * cost
		if std.negPart[j] >= 0 {
			std.c[std.negPart[j]] = -sign * cost
		}
		if !math.IsInf(lb, -1) && !math.IsInf(ub, 1) {
			std.upper[colOf[j]] = ub - lb
		}
	}

	// Column identities, always in model indices (rowOrig for rows) so a
	// Basis survives any mix of presolved and full standardizations.
	std.colIDs = make([]colIdent, std.nCols)
	for j := range p.vars {
		if colOf[j] < 0 {
			continue
		}
		std.colIDs[colOf[j]] = colIdent{kind: identStruct, idx: j}
		if std.negPart[j] >= 0 {
			std.colIDs[std.negPart[j]] = colIdent{kind: identNeg, idx: j}
		}
	}
	for i := range rows {
		mi := i
		if std.rowOrig != nil {
			mi = std.rowOrig[i]
		}
		if s := std.slackOf[i]; s >= 0 {
			std.colIDs[s] = colIdent{kind: identSlack, idx: mi}
		}
		if a := std.artOf[i]; a >= 0 {
			std.colIDs[a] = colIdent{kind: identArt, idx: mi}
		}
	}

	// CSC assembly.  Counting then filling row-by-row keeps every column's
	// row indices ascending and the layout deterministic (each (row, column)
	// pair appears exactly once, so per-row map iteration order is
	// irrelevant).
	counts := make([]int, std.nCols+1)
	for i := range rows {
		for c, v := range rows[i].coeffs {
			if v != 0 {
				counts[c+1]++
			}
		}
		if std.slackOf[i] >= 0 {
			counts[std.slackOf[i]+1]++
		}
		if std.artOf[i] >= 0 {
			counts[std.artOf[i]+1]++
		}
	}
	for c := 0; c < std.nCols; c++ {
		counts[c+1] += counts[c]
	}
	std.colPtr = counts
	nnz := std.colPtr[std.nCols]
	std.rowIdx = make([]int, nnz)
	std.vals = make([]float64, nnz)
	next := make([]int, std.nCols)
	copy(next, std.colPtr[:std.nCols])
	for i := range rows {
		for c, v := range rows[i].coeffs {
			if v == 0 {
				continue
			}
			pos := next[c]
			next[c]++
			std.rowIdx[pos] = i
			std.vals[pos] = v
		}
		if sc := std.slackOf[i]; sc >= 0 {
			sv := 1.0
			if rows[i].op == GE {
				sv = -1
			}
			pos := next[sc]
			next[sc]++
			std.rowIdx[pos] = i
			std.vals[pos] = sv
		}
		if ac := std.artOf[i]; ac >= 0 {
			pos := next[ac]
			next[ac]++
			std.rowIdx[pos] = i
			std.vals[pos] = 1
		}
	}
	return std, nil
}

// recover maps standard-form column values back to the original variables,
// then replays the postsolve stack to restore presolve-eliminated ones.
func (s *standard) recover(values []float64) []float64 {
	out := make([]float64, len(s.shift))
	for j := range s.shift {
		col := s.colOf[j]
		if col < 0 {
			continue // presolve-eliminated; postsolve fills it below
		}
		v := values[col]
		switch {
		case s.mirror[j]:
			v = s.shift[j] - v
		case s.negPart[j] >= 0:
			v -= values[s.negPart[j]]
			v += s.shift[j]
		default:
			v += s.shift[j]
		}
		out[j] = v
	}
	if s.ps != nil {
		s.ps.postsolve(out)
	}
	return out
}
