package lp

import "math"

// Standard-form column and row identities.  The revised simplex works on
// column indices of one particular standardization; a Basis must survive
// re-standardization after bound/rhs mutations, so it stores these
// model-level identities instead and installBasis maps them back to column
// indices.

const (
	identStruct = int8(iota) // structural (positive-part) column of variable idx
	identNeg                 // negative part of free variable idx
	identSlack               // slack/surplus column of a row
	identArt                 // artificial column of a row
)

// rowIdent names a standard-form row: either original constraint idx or the
// upper-bound row of variable idx.
type rowIdent struct {
	bound bool
	idx   int
}

// colIdent names a standard-form column.  For identSlack/identArt, bound and
// idx identify the row the column belongs to.
type colIdent struct {
	kind  int8
	bound bool
	idx   int
}

// standard is the problem in computational standard form —
// minimize c·y subject to A·y = b, y ≥ 0, b ≥ 0 — with A stored
// column-wise (CSC): column j's nonzeros are rowIdx/vals[colPtr[j]:
// colPtr[j+1]], row indices ascending.  Columns are laid out structural
// [0, nStruct), slack/surplus [nStruct, nTotal), artificial [nTotal, nCols).
type standard struct {
	m       int
	nStruct int
	nTotal  int
	nCols   int

	colPtr []int
	rowIdx []int
	vals   []float64

	b []float64
	c []float64 // phase-2 objective (sense-normalized), zero on slack/artificial

	// slackOf[i]/artOf[i] is row i's slack/artificial column, or -1.
	slackOf []int
	artOf   []int

	rowIDs []rowIdent
	colIDs []colIdent

	// shift maps original variable index to its lower bound (y = x − lb).
	shift []float64
	// negPart[j] is the column index of the negative part of original
	// variable j when it is free (split x = x⁺ − x⁻), or -1.
	negPart []int
}

// col returns column j's nonzeros.
func (s *standard) col(j int) ([]int, []float64) {
	lo, hi := s.colPtr[j], s.colPtr[j+1]
	return s.rowIdx[lo:hi], s.vals[lo:hi]
}

// colDot returns column j · y, with y indexed by row.
func (s *standard) colDot(j int, y []float64) float64 {
	rows, vals := s.col(j)
	d := 0.0
	for k, r := range rows {
		if yv := y[r]; yv != 0 {
			d += vals[k] * yv
		}
	}
	return d
}

// standardize converts the model into computational standard form.
func (p *Problem) standardize() (*standard, error) {
	n := len(p.vars)
	std := &standard{
		shift:   make([]float64, n),
		negPart: make([]int, n),
	}

	// Structural columns: one per variable, plus one extra per free
	// variable (x = x⁺ − x⁻ when lb = −inf).
	col := 0
	colOf := make([]int, n)
	for j, v := range p.vars {
		colOf[j] = col
		std.negPart[j] = -1
		if math.IsInf(v.lb, -1) {
			std.shift[j] = 0
			col++
			std.negPart[j] = col
			col++
		} else {
			std.shift[j] = v.lb
			col++
		}
	}
	std.nStruct = col

	sign := 1.0
	if p.sense == Maximize {
		sign = -1.0
	}

	// Rows: original constraints plus upper-bound rows.
	type row struct {
		coeffs map[int]float64
		op     Op
		rhs    float64
		id     rowIdent
	}
	rows := make([]row, 0, len(p.cons)+n)
	for ci, c := range p.cons {
		r := row{coeffs: make(map[int]float64, len(c.terms)), op: c.op, rhs: c.rhs, id: rowIdent{idx: ci}}
		for _, t := range c.terms {
			j := int(t.Var)
			r.rhs -= t.Coeff * std.shift[j]
			r.coeffs[colOf[j]] += t.Coeff
			if std.negPart[j] >= 0 {
				r.coeffs[std.negPart[j]] -= t.Coeff
			}
		}
		rows = append(rows, r)
	}
	for j, v := range p.vars {
		if math.IsInf(v.ub, 1) {
			continue
		}
		r := row{coeffs: map[int]float64{colOf[j]: 1}, op: LE, rhs: v.ub - std.shift[j],
			id: rowIdent{bound: true, idx: j}}
		if std.negPart[j] >= 0 {
			r.coeffs[std.negPart[j]] = -1
		}
		rows = append(rows, r)
	}

	m := len(rows)
	std.m = m
	std.b = make([]float64, m)
	std.slackOf = make([]int, m)
	std.artOf = make([]int, m)
	std.rowIDs = make([]rowIdent, m)

	// Normalize to b ≥ 0 and count slack/surplus columns.
	nSlack := 0
	for i := range rows {
		if rows[i].rhs < 0 {
			for c := range rows[i].coeffs {
				rows[i].coeffs[c] = -rows[i].coeffs[c]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].op {
			case LE:
				rows[i].op = GE
			case GE:
				rows[i].op = LE
			}
		}
		if rows[i].op != EQ {
			nSlack++
		}
	}
	std.nTotal = std.nStruct + nSlack

	slackCol := std.nStruct
	artCol := std.nTotal
	for i := range rows {
		std.b[i] = rows[i].rhs
		std.rowIDs[i] = rows[i].id
		std.slackOf[i], std.artOf[i] = -1, -1
		switch rows[i].op {
		case LE:
			std.slackOf[i] = slackCol
			slackCol++
		case GE:
			std.slackOf[i] = slackCol
			slackCol++
			std.artOf[i] = artCol
			artCol++
		case EQ:
			std.artOf[i] = artCol
			artCol++
		}
	}
	std.nCols = artCol

	// Objective over structural columns.
	std.c = make([]float64, std.nCols)
	for j, v := range p.vars {
		std.c[colOf[j]] = sign * v.cost
		if std.negPart[j] >= 0 {
			std.c[std.negPart[j]] = -sign * v.cost
		}
	}

	// Column identities.
	std.colIDs = make([]colIdent, std.nCols)
	for j := range p.vars {
		std.colIDs[colOf[j]] = colIdent{kind: identStruct, idx: j}
		if std.negPart[j] >= 0 {
			std.colIDs[std.negPart[j]] = colIdent{kind: identNeg, idx: j}
		}
	}
	for i := range rows {
		if s := std.slackOf[i]; s >= 0 {
			std.colIDs[s] = colIdent{kind: identSlack, bound: rows[i].id.bound, idx: rows[i].id.idx}
		}
		if a := std.artOf[i]; a >= 0 {
			std.colIDs[a] = colIdent{kind: identArt, bound: rows[i].id.bound, idx: rows[i].id.idx}
		}
	}

	// CSC assembly.  Counting then filling row-by-row keeps every column's
	// row indices ascending and the layout deterministic (each (row, column)
	// pair appears exactly once, so per-row map iteration order is
	// irrelevant).
	counts := make([]int, std.nCols+1)
	for i := range rows {
		for c, v := range rows[i].coeffs {
			if v != 0 {
				counts[c+1]++
			}
		}
		if std.slackOf[i] >= 0 {
			counts[std.slackOf[i]+1]++
		}
		if std.artOf[i] >= 0 {
			counts[std.artOf[i]+1]++
		}
	}
	for c := 0; c < std.nCols; c++ {
		counts[c+1] += counts[c]
	}
	std.colPtr = counts
	nnz := std.colPtr[std.nCols]
	std.rowIdx = make([]int, nnz)
	std.vals = make([]float64, nnz)
	next := make([]int, std.nCols)
	copy(next, std.colPtr[:std.nCols])
	for i := range rows {
		for c, v := range rows[i].coeffs {
			if v == 0 {
				continue
			}
			pos := next[c]
			next[c]++
			std.rowIdx[pos] = i
			std.vals[pos] = v
		}
		if sc := std.slackOf[i]; sc >= 0 {
			sv := 1.0
			if rows[i].op == GE {
				sv = -1
			}
			pos := next[sc]
			next[sc]++
			std.rowIdx[pos] = i
			std.vals[pos] = sv
		}
		if ac := std.artOf[i]; ac >= 0 {
			pos := next[ac]
			next[ac]++
			std.rowIdx[pos] = i
			std.vals[pos] = 1
		}
	}
	return std, nil
}

// recover maps standard-form column values back to the original variables.
func (s *standard) recover(values []float64) []float64 {
	out := make([]float64, len(s.shift))
	col := 0
	for j := range s.shift {
		v := values[col]
		col++
		if s.negPart[j] >= 0 {
			v -= values[s.negPart[j]]
			col++
		}
		out[j] = v + s.shift[j]
	}
	return out
}
