package lp

import "math"

// Basis is a warm-start handle: the simplex basis of a solved Problem,
// captured in model-level terms.  For every standard-form row (one per
// constraint, in insertion order) it records which column — a variable, a
// free variable's negative part, a constraint's slack, or a constraint's
// artificial — was basic there, and it records which nonbasic columns sat
// at their upper bound (the bounded standard form keeps every other
// nonbasic column at its lower bound, so only the at-upper set needs
// saving).  Because the entries are keyed by identities rather than column
// indices, a Basis stays meaningful after the Problem's bounds, right-hand
// sides, coefficients or costs are mutated, and even after
// re-standardization changes the column layout (e.g. a variable stops
// being free): a branch bound edited with SetBounds moves the at-upper
// value with it, which is what keeps milp's parent bases dual-feasible by
// construction.
//
// A Basis is immutable once captured and safe to share between solves; it is
// only ever read by SolveFrom.
type Basis struct {
	cols  []colIdent // basic column of row i, one per constraint
	upper []colIdent // nonbasic columns at their upper bound

	// Devex reference weights learned by the capturing solve, keyed like
	// everything else by column identity so they survive re-standardization.
	// Only weights above the unit reset value are stored (1 is what a fresh
	// framework assigns anyway), and a warm start under a non-devex rule
	// simply ignores them.
	devexCols []colIdent
	devexW    []float64
}

// captureBasis records the current basis, nonbasic-at-upper statuses and
// (under devex) learned reference weights of this standard form.  The
// weights arrive in sparse form — standard-form column indices paired with
// their >1 values — so a warm solve that never materialized a dense weight
// vector passes its carried entries through at O(entries), not O(columns).
// The capture is always full-model-sized: when the solve ran on a
// presolve-reduced form, each removed row's slot is seated with its own
// slack/artificial (see presolveState.fillIdent) so the basis installs on
// any later standardization — full or differently reduced — of the model.
func (s *standard) captureBasis(basis []int, atUpper []bool, devexCols []int, devexW []float64) *Basis {
	b := &Basis{cols: make([]colIdent, s.modelCons)}
	if s.ps != nil {
		for i := range b.cols {
			if s.ps.rowDead[i] {
				b.cols[i] = s.ps.fillIdent(i)
			}
		}
	}
	for i, bc := range basis {
		b.cols[s.modelRow(i)] = s.colIDs[bc]
	}
	for j := range atUpper {
		if atUpper[j] {
			b.upper = append(b.upper, s.colIDs[j])
		}
	}
	if s.ps != nil {
		for _, j := range s.ps.deadAtUpper {
			b.upper = append(b.upper, colIdent{kind: identStruct, idx: j})
		}
	}
	if len(devexCols) > 0 {
		b.devexCols = make([]colIdent, 0, len(devexCols))
		b.devexW = make([]float64, 0, len(devexCols))
		for k, c := range devexCols {
			if wv := devexW[k]; wv > 1 && c < s.nCols {
				b.devexCols = append(b.devexCols, s.colIDs[c])
				b.devexW = append(b.devexW, wv)
			}
		}
	}
	return b
}

// installBasis maps a saved basis onto this standard form, returning one
// basic column per row plus the nonbasic-at-upper statuses and any carried
// devex reference weights in sparse form (nil when the basis carries none;
// weights share the one identity map this translation builds anyway), or
// false when the saved basis does not translate: the constraint count
// changed, a referenced column no longer exists (a variable stopped being
// free, the row lost its artificial after an rhs sign change) or two rows
// map to the same column.  At-upper statuses degrade instead of failing: a
// status whose column disappeared, became basic, lost its finite upper
// bound or became fixed simply starts at the lower bound — the warm
// solver's feasibility checks route any resulting mismatch to the dual
// simplex or the cold fallback.  Weights degrade the same way: an identity
// that no longer resolves is dropped.
// A basis is always full-model-sized (one entry per model constraint); on a
// presolve-reduced form only the surviving rows' entries are consulted —
// entries for removed rows describe columns that no longer exist, which is
// exactly why they are ignored rather than translated.
func (s *standard) installBasis(w *Basis) ([]int, []bool, []int, []float64, bool) {
	if w == nil || s.m == 0 || len(w.cols) != s.modelCons {
		return nil, nil, nil, nil, false
	}
	colOf := make(map[colIdent]int, s.nCols)
	for c := 0; c < s.nCols; c++ {
		colOf[s.colIDs[c]] = c
	}
	basis := make([]int, s.m)
	used := make([]bool, s.nCols)
	for i := 0; i < s.m; i++ {
		c, ok := colOf[w.cols[s.modelRow(i)]]
		if !ok || used[c] {
			return nil, nil, nil, nil, false
		}
		used[c] = true
		basis[i] = c
	}
	atUpper := make([]bool, s.nCols)
	for _, cid := range w.upper {
		c, ok := colOf[cid]
		if !ok || used[c] {
			continue
		}
		if u := s.upper[c]; u == 0 || math.IsInf(u, 1) {
			continue
		}
		atUpper[c] = true
	}
	var dvxCols []int
	var dvxW []float64
	if len(w.devexW) > 0 {
		if s.scr != nil {
			s.scr.carriedIdx = growInts(s.scr.carriedIdx, len(w.devexW))
			s.scr.carriedW = growFloats(s.scr.carriedW, len(w.devexW))
			dvxCols = s.scr.carriedIdx[:0]
			dvxW = s.scr.carriedW[:0]
		} else {
			dvxCols = make([]int, 0, len(w.devexW))
			dvxW = make([]float64, 0, len(w.devexW))
		}
		for k, cid := range w.devexCols {
			if c, ok := colOf[cid]; ok {
				if wv := w.devexW[k]; wv > 1 {
					dvxCols = append(dvxCols, c)
					dvxW = append(dvxW, wv)
				}
			}
		}
	}
	return basis, atUpper, dvxCols, dvxW, true
}

// modelRow maps a standard-form row index to its model constraint index
// (identity unless presolve removed rows).
func (s *standard) modelRow(i int) int {
	if s.rowOrig != nil {
		return s.rowOrig[i]
	}
	return i
}

// emptyBasis is the capture for a rowless standard form: every model
// constraint (all presolve-removed when modelCons > 0) is seated with its
// fill slack/artificial, and columns parked at a finite nonzero upper bound
// record their at-upper status, so even a fully-presolved solve hands back
// a basis that warm-starts a later, less-reduced re-solve.
func (s *standard) emptyBasis(vals []float64) *Basis {
	b := &Basis{cols: make([]colIdent, s.modelCons)}
	for i := range b.cols {
		b.cols[i] = s.ps.fillIdent(i)
	}
	for j := 0; j < s.nTotal; j++ {
		if u := s.upper[j]; u > 0 && !math.IsInf(u, 1) && vals[j] == u {
			b.upper = append(b.upper, s.colIDs[j])
		}
	}
	if s.ps != nil {
		for _, j := range s.ps.deadAtUpper {
			b.upper = append(b.upper, colIdent{kind: identStruct, idx: j})
		}
	}
	return b
}
