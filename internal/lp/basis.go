package lp

// Basis is a warm-start handle: the simplex basis of a solved Problem,
// captured in model-level terms.  For every standard-form row (a constraint
// or a variable's upper-bound row) it records which column — a variable, a
// free variable's negative part, a row's slack, or a row's artificial — was
// basic there.  Because the pairs are keyed by identities rather than column
// indices, a Basis stays meaningful after the Problem's bounds, right-hand
// sides, coefficients or costs are mutated, and even after re-standardization
// changes the column layout (e.g. a branch bound adds a new upper-bound row).
//
// A Basis is immutable once captured and safe to share between solves; it is
// only ever read by SolveFrom.
type Basis struct {
	rows []rowIdent
	cols []colIdent
}

// captureBasis records the current basis of this standard form.
func (s *standard) captureBasis(basis []int) *Basis {
	b := &Basis{rows: make([]rowIdent, s.m), cols: make([]colIdent, s.m)}
	copy(b.rows, s.rowIDs)
	for i, bc := range basis {
		b.cols[i] = s.colIDs[bc]
	}
	return b
}

// installBasis maps a saved basis onto this standard form, returning one
// basic column per row, or false when the saved basis does not translate:
// a referenced column no longer exists (a variable stopped being free, the
// row lost its artificial after an rhs sign change) or two rows map to the
// same column.  Rows the saved basis does not know (new upper-bound rows
// from branch bounds) get their own slack — or artificial when there is
// none — which keeps the matrix nonsingular: new-row slacks extend the old
// basis block-triangularly.
func (s *standard) installBasis(w *Basis) ([]int, bool) {
	if w == nil || len(w.rows) == 0 || s.m == 0 {
		return nil, false
	}
	colOf := make(map[colIdent]int, s.nCols)
	for c := 0; c < s.nCols; c++ {
		colOf[s.colIDs[c]] = c
	}
	saved := make(map[rowIdent]colIdent, len(w.rows))
	for i, r := range w.rows {
		saved[r] = w.cols[i]
	}
	basis := make([]int, s.m)
	used := make(map[int]bool, s.m)
	for i := 0; i < s.m; i++ {
		var c int
		if cid, ok := saved[s.rowIDs[i]]; ok {
			cc, ok2 := colOf[cid]
			if !ok2 {
				return nil, false
			}
			c = cc
		} else if s.slackOf[i] >= 0 {
			c = s.slackOf[i]
		} else {
			c = s.artOf[i]
		}
		if used[c] {
			return nil, false
		}
		used[c] = true
		basis[i] = c
	}
	return basis, true
}
