package lp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// Basis snapshot encoding.  A warm-start Basis is keyed by model-level
// column identities (see basis.go), which makes it meaningful across
// process restarts: a daemon that persists the basis of its last healthy
// solve can re-install it on a freshly rebuilt Problem of the same model
// and resume warm instead of cold.  The encoding is a small, versioned,
// checksummed binary format:
//
//	magic "GNB1"
//	uvarint nRows,   then per row:    kind byte, uvarint idx
//	uvarint nUpper,  then per entry:  kind byte, uvarint idx
//	uvarint nDevex,  then per entry:  kind byte, uvarint idx, float64 bits (LE)
//	8-byte FNV-1a 64 checksum of everything above
//
// DecodeBasis validates the magic, the checksum, every identity kind, the
// finiteness of every devex weight and that the buffer is consumed exactly,
// so a truncated or corrupted snapshot is rejected with ErrBasisEncoding
// rather than installed; and because installBasis re-validates identities
// against the live model anyway, even a stale-but-well-formed basis can
// cost at most a cold fallback, never correctness.

// ErrBasisEncoding is returned by DecodeBasis for data that is not a valid
// basis snapshot (wrong magic, truncation, checksum mismatch, out-of-range
// identity kinds or non-finite weights).
var ErrBasisEncoding = errors.New("lp: invalid basis encoding")

// basisMagic versions the snapshot format; bump it on layout changes so an
// old daemon snapshot decodes to a clean error instead of garbage.
var basisMagic = [4]byte{'G', 'N', 'B', '1'}

// MarshalBinary encodes the basis for persistence.  The encoding is
// deterministic: the same Basis always yields the same bytes.
func (b *Basis) MarshalBinary() ([]byte, error) {
	if b == nil {
		return nil, fmt.Errorf("%w: nil basis", ErrBasisEncoding)
	}
	if len(b.devexCols) != len(b.devexW) {
		return nil, fmt.Errorf("%w: devex identity/weight length mismatch", ErrBasisEncoding)
	}
	buf := make([]byte, 0, 4+10*(len(b.cols)+len(b.upper))+18*len(b.devexW)+8)
	buf = append(buf, basisMagic[:]...)
	buf = appendIdents(buf, b.cols)
	buf = appendIdents(buf, b.upper)
	buf = binary.AppendUvarint(buf, uint64(len(b.devexCols)))
	for k, cid := range b.devexCols {
		if math.IsInf(b.devexW[k], 0) || math.IsNaN(b.devexW[k]) {
			return nil, fmt.Errorf("%w: non-finite devex weight", ErrBasisEncoding)
		}
		buf = appendIdent(buf, cid)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(b.devexW[k]))
	}
	h := fnv.New64a()
	h.Write(buf)
	return h.Sum(buf), nil
}

// DecodeBasis decodes a snapshot produced by MarshalBinary.  The returned
// Basis is freshly allocated (it never aliases data) and ready for
// SolveFrom; invalid input returns an error wrapping ErrBasisEncoding.
func DecodeBasis(data []byte) (*Basis, error) {
	if len(data) < len(basisMagic)+8 {
		return nil, fmt.Errorf("%w: truncated (%d bytes)", ErrBasisEncoding, len(data))
	}
	if [4]byte(data[:4]) != basisMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBasisEncoding)
	}
	payload, sum := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(payload)
	if binary.BigEndian.Uint64(sum) != h.Sum64() { // fnv's Sum appends big-endian
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBasisEncoding)
	}
	r := payload[4:]
	b := &Basis{}
	var err error
	if b.cols, r, err = decodeIdents(r); err != nil {
		return nil, err
	}
	if b.upper, r, err = decodeIdents(r); err != nil {
		return nil, err
	}
	nDevex, r, err := decodeCount(r, 9) // kind + idx + 8 weight bytes
	if err != nil {
		return nil, err
	}
	if nDevex > 0 {
		b.devexCols = make([]colIdent, nDevex)
		b.devexW = make([]float64, nDevex)
		for k := 0; k < nDevex; k++ {
			if b.devexCols[k], r, err = decodeIdent(r); err != nil {
				return nil, err
			}
			if len(r) < 8 {
				return nil, fmt.Errorf("%w: truncated devex weight", ErrBasisEncoding)
			}
			w := math.Float64frombits(binary.LittleEndian.Uint64(r))
			r = r[8:]
			if math.IsInf(w, 0) || math.IsNaN(w) {
				return nil, fmt.Errorf("%w: non-finite devex weight", ErrBasisEncoding)
			}
			b.devexW[k] = w
		}
	}
	if len(r) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBasisEncoding, len(r))
	}
	return b, nil
}

func appendIdents(buf []byte, ids []colIdent) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, cid := range ids {
		buf = appendIdent(buf, cid)
	}
	return buf
}

func appendIdent(buf []byte, cid colIdent) []byte {
	buf = append(buf, byte(cid.kind))
	return binary.AppendUvarint(buf, uint64(cid.idx))
}

// decodeCount reads a length prefix and sanity-checks it against the bytes
// remaining (each encoded entry occupies at least minEntryBytes), so a
// corrupted length cannot drive a huge allocation.
func decodeCount(r []byte, minEntryBytes int) (int, []byte, error) {
	v, n := binary.Uvarint(r)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad length prefix", ErrBasisEncoding)
	}
	r = r[n:]
	if v > uint64(len(r)/minEntryBytes)+1 || v > math.MaxInt32 {
		return 0, nil, fmt.Errorf("%w: implausible entry count %d", ErrBasisEncoding, v)
	}
	return int(v), r, nil
}

func decodeIdents(r []byte) ([]colIdent, []byte, error) {
	n, r, err := decodeCount(r, 2) // kind byte + ≥1 idx byte
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, r, nil
	}
	ids := make([]colIdent, n)
	for i := 0; i < n; i++ {
		if ids[i], r, err = decodeIdent(r); err != nil {
			return nil, nil, err
		}
	}
	return ids, r, nil
}

func decodeIdent(r []byte) (colIdent, []byte, error) {
	if len(r) < 2 {
		return colIdent{}, nil, fmt.Errorf("%w: truncated identity", ErrBasisEncoding)
	}
	kind := int8(r[0])
	if kind < identStruct || kind > identArt {
		return colIdent{}, nil, fmt.Errorf("%w: unknown identity kind %d", ErrBasisEncoding, kind)
	}
	idx, n := binary.Uvarint(r[1:])
	if n <= 0 || idx > math.MaxInt32 {
		return colIdent{}, nil, fmt.Errorf("%w: bad identity index", ErrBasisEncoding)
	}
	return colIdent{kind: kind, idx: int(idx)}, r[1+n:], nil
}
