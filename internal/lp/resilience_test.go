package lp

import (
	"context"
	"errors"
	"testing"
	"time"
)

// resilience_test drives every rung of the solver's recovery ladder with a
// deterministic injected fault: singular-basis repair, warm-corruption cold
// retry, eta/FTRAN NaN guards, the degenerate-stall switch to Bland's rule,
// and the deadline/cancellation budget stops.  Each test arms a named fault
// point and asserts both the recovery (Stats counters) and that the final
// answer still matches the known optimum.

// transportLP builds the balanced transportation LP used across these tests:
// five rows, six structurals, optimum 210 (see TestTransportationProblem).
func transportLP(t *testing.T) *Problem {
	t.Helper()
	cost := [2][3]float64{{2, 3, 1}, {5, 4, 8}}
	supply := []float64{30, 40}
	demand := []float64{20, 25, 25}
	p := NewProblem(Minimize)
	var xs [2][3]Var
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			xs[i][j] = p.MustVariable("x", 0, Infinity, cost[i][j])
		}
	}
	for i := 0; i < 2; i++ {
		if err := p.AddConstraint("supply", LE, supply[i],
			Term{xs[i][0], 1}, Term{xs[i][1], 1}, Term{xs[i][2], 1}); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < 3; j++ {
		if err := p.AddConstraint("demand", GE, demand[j],
			Term{xs[0][j], 1}, Term{xs[1][j], 1}); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

const transportOptimum = 210.0

func disarmAfter(t *testing.T) {
	t.Helper()
	t.Cleanup(DisarmFaults)
}

func TestStatsOnPlainSolve(t *testing.T) {
	sol, err := transportLP(t).Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Stats.Pivots == 0 {
		t.Error("Stats.Pivots = 0, want > 0")
	}
	if sol.Stats.Refactorizations == 0 {
		t.Error("Stats.Refactorizations = 0, want > 0")
	}
	if sol.Stats.Repairs != 0 || sol.Stats.NaNGuards != 0 || sol.Stats.ColdFallbacks != 0 {
		t.Errorf("fault-free solve reported recovery work: %+v", sol.Stats)
	}
}

func TestSolveWithOptionsZeroMatchesSolve(t *testing.T) {
	p := transportLP(t)
	plain, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	opted, err := transportLP(t).SolveWithOptions(SolveOptions{})
	if err != nil {
		t.Fatalf("SolveWithOptions: %v", err)
	}
	if plain.Objective != opted.Objective {
		t.Errorf("zero-options solve diverged: %v vs %v", plain.Objective, opted.Objective)
	}
}

// TestWarmSingularRepair injects a singular factorization into a warm start
// and asserts the solver repairs the basis in place (ejecting the offending
// column for a slack) rather than failing or silently falling cold.
func TestWarmSingularRepair(t *testing.T) {
	disarmAfter(t)
	p := transportLP(t)
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	ArmFault(FaultSingularLU, 0, 1)
	warm, err := p.SolveFrom(sol.Basis())
	if err != nil {
		t.Fatalf("warm solve with injected singular LU: %v", err)
	}
	if !almostEqual(warm.Objective, transportOptimum, 1e-6) {
		t.Errorf("objective after repair = %v, want %v", warm.Objective, transportOptimum)
	}
	if warm.Stats.Repairs == 0 {
		t.Errorf("Stats.Repairs = 0, want > 0 (singular fault should have forced a repair); stats %+v", warm.Stats)
	}
}

// TestWarmCorruptionColdRetry exhausts the repair budget (the factorization
// keeps coming back singular) so the warm attempt is abandoned and the solve
// falls back to a cold start — which, with the fault budget consumed, runs
// clean and still reaches the optimum.
func TestWarmCorruptionColdRetry(t *testing.T) {
	disarmAfter(t)
	p := transportLP(t)
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	// maxBasisRepairs failed attempts get repaired; the next failure exceeds
	// the budget and aborts the warm start.  One more fire than the budget
	// consumes the arm exactly, so the cold retry factorizes cleanly.
	ArmFault(FaultSingularLU, 0, maxBasisRepairs+1)
	warm, err := p.SolveFrom(sol.Basis())
	if err != nil {
		t.Fatalf("warm solve with corrupted basis: %v", err)
	}
	if !almostEqual(warm.Objective, transportOptimum, 1e-6) {
		t.Errorf("objective after cold retry = %v, want %v", warm.Objective, transportOptimum)
	}
	if warm.Stats.ColdFallbacks != 1 {
		t.Errorf("Stats.ColdFallbacks = %d, want 1; stats %+v", warm.Stats.ColdFallbacks, warm.Stats)
	}
	if warm.Stats.Repairs != maxBasisRepairs {
		t.Errorf("Stats.Repairs = %d, want %d; stats %+v", warm.Stats.Repairs, maxBasisRepairs, warm.Stats)
	}
}

// TestCorruptEtaNaNGuard corrupts the pivot entry of an eta vector so a later
// FTRAN through it turns non-finite, and asserts the guard answers with a
// refactorization instead of a poisoned pivot.
func TestCorruptEtaNaNGuard(t *testing.T) {
	disarmAfter(t)
	ArmFault(FaultCorruptEta, 0, 1)
	sol, err := transportLP(t).Solve()
	if err != nil {
		t.Fatalf("Solve with corrupted eta: %v", err)
	}
	if !almostEqual(sol.Objective, transportOptimum, 1e-6) {
		t.Errorf("objective = %v, want %v", sol.Objective, transportOptimum)
	}
	if sol.Stats.NaNGuards == 0 {
		t.Errorf("Stats.NaNGuards = 0, want > 0 (corrupted eta should have tripped the guard); stats %+v", sol.Stats)
	}
}

// TestPoisonPivotNaNGuard poisons an FTRAN column mid-solve and asserts the
// solver refactorizes, retries the pivot, and still reaches the optimum.
func TestPoisonPivotNaNGuard(t *testing.T) {
	disarmAfter(t)
	ArmFault(FaultPoisonPivot, 2, 1)
	sol, err := transportLP(t).Solve()
	if err != nil {
		t.Fatalf("Solve with poisoned FTRAN column: %v", err)
	}
	if !almostEqual(sol.Objective, transportOptimum, 1e-6) {
		t.Errorf("objective = %v, want %v", sol.Objective, transportOptimum)
	}
	if sol.Stats.NaNGuards == 0 {
		t.Errorf("Stats.NaNGuards = 0, want > 0; stats %+v", sol.Stats)
	}
}

// TestNaNGuardExhaustion keeps poisoning every FTRAN column; once the retry
// budget is spent the solve must surface ErrNumeric — never a panic, never a
// fake-optimal solution built from NaN arithmetic.
func TestNaNGuardExhaustion(t *testing.T) {
	disarmAfter(t)
	ArmFault(FaultPoisonPivot, 0, 1<<20)
	_, err := transportLP(t).Solve()
	if err == nil {
		t.Fatal("Solve with permanently poisoned FTRAN succeeded, want ErrNumeric")
	}
	if !errors.Is(err, ErrNumeric) {
		t.Errorf("err = %v, want ErrNumeric", err)
	}
}

// TestForceStallSwitchesToBland trips the degenerate-stall detector and
// asserts the pricing switch to Bland's rule is taken and counted while the
// solve still reaches the optimum.
func TestForceStallSwitchesToBland(t *testing.T) {
	disarmAfter(t)
	ArmFault(FaultForceStall, 0, 1)
	sol, err := transportLP(t).Solve()
	if err != nil {
		t.Fatalf("Solve with forced stall: %v", err)
	}
	if !almostEqual(sol.Objective, transportOptimum, 1e-6) {
		t.Errorf("objective = %v, want %v", sol.Objective, transportOptimum)
	}
	if sol.Stats.BlandSwitches == 0 {
		t.Errorf("Stats.BlandSwitches = 0, want > 0; stats %+v", sol.Stats)
	}
}

func TestDeadlineFaultPoint(t *testing.T) {
	disarmAfter(t)
	ArmFault(FaultExpireDeadline, 0, 1)
	sol, err := transportLP(t).Solve()
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("ErrDeadline should wrap context.DeadlineExceeded; got %v", err)
	}
	if sol != nil {
		t.Errorf("solution = %+v, want nil on deadline", sol)
	}
}

func TestRealDeadlineExpired(t *testing.T) {
	opts := SolveOptions{Deadline: time.Now().Add(-time.Second)}
	_, err := transportLP(t).SolveWithOptions(opts)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := transportLP(t).SolveWithOptions(SolveOptions{Ctx: ctx})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("ErrCancelled should wrap context.Canceled; got %v", err)
	}
}

func TestMaxItersBudget(t *testing.T) {
	_, err := transportLP(t).SolveWithOptions(SolveOptions{MaxIters: 1})
	if !errors.Is(err, ErrNumeric) {
		t.Fatalf("err = %v, want ErrNumeric from the iteration cap", err)
	}
}

// TestFaultRecoveryMatchesCleanSolve pins that a solve that had to recover
// (repair + NaN guard + stall switch all injected) reaches the same optimum
// as a clean solve.
func TestFaultRecoveryMatchesCleanSolve(t *testing.T) {
	disarmAfter(t)
	clean, err := transportLP(t).Solve()
	if err != nil {
		t.Fatalf("clean solve: %v", err)
	}
	ArmFault(FaultPoisonPivot, 1, 1)
	ArmFault(FaultForceStall, 0, 1)
	dirty, err := transportLP(t).Solve()
	if err != nil {
		t.Fatalf("faulted solve: %v", err)
	}
	if !almostEqual(clean.Objective, dirty.Objective, 1e-9) {
		t.Errorf("faulted solve objective %v != clean %v", dirty.Objective, clean.Objective)
	}
}

// TestStallLatchReleasesBackToDevex drives the full stall round-trip under
// the default devex rule: the forced stall latches Bland's rule (counted in
// BlandSwitches), and the first strictly-improving pivot afterwards releases
// the latch back to devex, restarting the reference framework — which is
// observable as a DevexReset.  The same fault under Dantzig must latch
// without touching any devex counter: the release path is rule-aware.
func TestStallLatchReleasesBackToDevex(t *testing.T) {
	disarmAfter(t)

	ArmFault(FaultForceStall, 1, 1)
	sol, err := transportLP(t).Solve()
	if err != nil {
		t.Fatalf("devex solve with forced stall: %v", err)
	}
	if !almostEqual(sol.Objective, transportOptimum, 1e-6) {
		t.Errorf("objective = %v, want %v", sol.Objective, transportOptimum)
	}
	if sol.Stats.BlandSwitches != 1 {
		t.Errorf("Stats.BlandSwitches = %d, want 1; stats %+v", sol.Stats.BlandSwitches, sol.Stats)
	}
	if sol.Stats.DevexResets == 0 {
		t.Errorf("Stats.DevexResets = 0, want ≥ 1: releasing the stall latch must restart the devex framework; stats %+v", sol.Stats)
	}

	ArmFault(FaultForceStall, 1, 1)
	dsol, err := transportLP(t).SolveWithOptions(SolveOptions{Pricing: PricingDantzig})
	if err != nil {
		t.Fatalf("dantzig solve with forced stall: %v", err)
	}
	if dsol.Stats.BlandSwitches != 1 {
		t.Errorf("dantzig: Stats.BlandSwitches = %d, want 1; stats %+v", dsol.Stats.BlandSwitches, dsol.Stats)
	}
	if dsol.Stats.DevexResets != 0 {
		t.Errorf("dantzig: Stats.DevexResets = %d, want 0: no devex framework exists to reset", dsol.Stats.DevexResets)
	}
}
