package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimpleMaximization(t *testing.T) {
	// maximize 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  → x=2, y=6, obj=36.
	p := NewProblem(Maximize)
	x := p.MustVariable("x", 0, Infinity, 3)
	y := p.MustVariable("y", 0, Infinity, 5)
	if err := p.AddConstraint("c1", LE, 4, Term{x, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("c2", LE, 12, Term{y, 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("c3", LE, 18, Term{x, 3}, Term{y, 2}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Objective, 36, 1e-6) {
		t.Errorf("objective = %v, want 36", sol.Objective)
	}
	if !almostEqual(sol.Value(x), 2, 1e-6) || !almostEqual(sol.Value(y), 6, 1e-6) {
		t.Errorf("solution = (%v, %v), want (2, 6)", sol.Value(x), sol.Value(y))
	}
}

func TestSimpleMinimizationWithGE(t *testing.T) {
	// minimize 2x + 3y s.t. x + y ≥ 10, x ≥ 2, y ≥ 3  → x=7, y=3, obj=23.
	p := NewProblem(Minimize)
	x := p.MustVariable("x", 2, Infinity, 2)
	y := p.MustVariable("y", 3, Infinity, 3)
	if err := p.AddConstraint("demand", GE, 10, Term{x, 1}, Term{y, 1}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Objective, 23, 1e-6) {
		t.Errorf("objective = %v, want 23", sol.Objective)
	}
	if !almostEqual(sol.Value(x), 7, 1e-6) || !almostEqual(sol.Value(y), 3, 1e-6) {
		t.Errorf("solution = (%v, %v), want (7, 3)", sol.Value(x), sol.Value(y))
	}
}

func TestEqualityConstraint(t *testing.T) {
	// minimize x + 2y s.t. x + y = 5, x ≤ 3 → x=3, y=2, obj=7.
	p := NewProblem(Minimize)
	x := p.MustVariable("x", 0, 3, 1)
	y := p.MustVariable("y", 0, Infinity, 2)
	if err := p.AddConstraint("eq", EQ, 5, Term{x, 1}, Term{y, 1}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Objective, 7, 1e-6) {
		t.Errorf("objective = %v, want 7", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.MustVariable("x", 0, 1, 1)
	if err := p.AddConstraint("impossible", GE, 10, Term{x, 1}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.MustVariable("x", 0, Infinity, 1)
	y := p.MustVariable("y", 0, Infinity, 1)
	if err := p.AddConstraint("c", GE, 1, Term{x, 1}, Term{y, 1}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("want ErrUnbounded, got %v", err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// minimize x s.t. −x ≤ −5  (i.e. x ≥ 5) → x=5.
	p := NewProblem(Minimize)
	x := p.MustVariable("x", 0, Infinity, 1)
	if err := p.AddConstraint("c", LE, -5, Term{x, -1}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Value(x), 5, 1e-6) {
		t.Errorf("x = %v, want 5", sol.Value(x))
	}
}

func TestFreeVariable(t *testing.T) {
	// minimize |ish| objective with a free variable:
	// minimize 2x s.t. x ≥ −7 is unbounded below for cost>0? No: cost 2x with
	// x free and constraint x ≥ −7 → optimum at x=−7, obj=−14.
	p := NewProblem(Minimize)
	x := p.MustVariable("x", math.Inf(-1), Infinity, 2)
	if err := p.AddConstraint("lb", GE, -7, Term{x, 1}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Value(x), -7, 1e-6) {
		t.Errorf("x = %v, want -7", sol.Value(x))
	}
	if !almostEqual(sol.Objective, -14, 1e-6) {
		t.Errorf("objective = %v, want -14", sol.Objective)
	}
}

func TestVariableBoundsOnly(t *testing.T) {
	// No constraints at all: minimize 3x − y with 1 ≤ x ≤ 4, 0 ≤ y ≤ 2.
	p := NewProblem(Minimize)
	x := p.MustVariable("x", 1, 4, 3)
	y := p.MustVariable("y", 0, 2, -1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Value(x), 1, 1e-6) || !almostEqual(sol.Value(y), 2, 1e-6) {
		t.Errorf("solution = (%v, %v), want (1, 2)", sol.Value(x), sol.Value(y))
	}
	if !almostEqual(sol.Objective, 1, 1e-6) {
		t.Errorf("objective = %v, want 1", sol.Objective)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// A classic degenerate LP still solves: maximize 2x+y with redundant
	// constraints meeting at the same vertex.
	p := NewProblem(Maximize)
	x := p.MustVariable("x", 0, Infinity, 2)
	y := p.MustVariable("y", 0, Infinity, 1)
	for _, c := range []struct {
		rhs float64
		tx  float64
		ty  float64
	}{{4, 1, 1}, {4, 1, 1}, {8, 2, 2}, {4, 1, 0}} {
		if err := p.AddConstraint("c", LE, c.rhs, Term{x, c.tx}, Term{y, c.ty}); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Objective, 8, 1e-6) {
		t.Errorf("objective = %v, want 8", sol.Objective)
	}
}

func TestValidationErrors(t *testing.T) {
	p := NewProblem(Minimize)
	if _, err := p.AddVariable("bad", 5, 1, 0); err == nil {
		t.Error("ub < lb should error")
	}
	if _, err := p.AddVariable("nan", math.NaN(), 1, 0); err == nil {
		t.Error("NaN bound should error")
	}
	x := p.MustVariable("x", 0, 1, 1)
	if err := p.AddConstraint("bad-op", Op(0), 1, Term{x, 1}); err == nil {
		t.Error("invalid op should error")
	}
	if err := p.AddConstraint("bad-var", LE, 1, Term{Var(99), 1}); err == nil {
		t.Error("unknown variable should error")
	}
	if err := p.AddConstraint("nan-rhs", LE, math.NaN(), Term{x, 1}); err == nil {
		t.Error("NaN rhs should error")
	}
	if err := p.AddConstraint("nan-coeff", LE, 1, Term{x, math.NaN()}); err == nil {
		t.Error("NaN coefficient should error")
	}
	if err := p.SetCost(Var(5), 1); err == nil {
		t.Error("SetCost on unknown variable should error")
	}
	if err := p.SetCost(x, 3); err != nil {
		t.Errorf("SetCost: %v", err)
	}
	if p.NumVariables() != 1 || p.NumConstraints() != 0 {
		t.Errorf("counts = %d/%d", p.NumVariables(), p.NumConstraints())
	}
}

func TestSolutionValueOutOfRange(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.MustVariable("x", 0, 1, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(sol.Value(Var(99))) {
		t.Error("out-of-range Value should be NaN")
	}
	if len(sol.Values()) != 1 {
		t.Error("Values() length mismatch")
	}
	_ = x
}

func TestTransportationProblem(t *testing.T) {
	// Two plants (capacity 30, 40), three demands (20, 25, 25); cost matrix
	// chosen so the optimum is known.  Classic balanced transportation LP.
	cost := [2][3]float64{{2, 3, 1}, {5, 4, 8}}
	supply := []float64{30, 40}
	demand := []float64{20, 25, 25}
	p := NewProblem(Minimize)
	var xs [2][3]Var
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			xs[i][j] = p.MustVariable("x", 0, Infinity, cost[i][j])
		}
	}
	for i := 0; i < 2; i++ {
		if err := p.AddConstraint("supply", LE, supply[i],
			Term{xs[i][0], 1}, Term{xs[i][1], 1}, Term{xs[i][2], 1}); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < 3; j++ {
		if err := p.AddConstraint("demand", GE, demand[j],
			Term{xs[0][j], 1}, Term{xs[1][j], 1}); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Optimal assignment: plant 1 ships 25 to demand 3 and 5 to demand 1
	// (cost 25+10=35), plant 2 ships 15 to demand 1 and 25 to demand 2
	// (cost 75+100=175); total 210.
	if !almostEqual(sol.Objective, 210, 1e-5) {
		t.Errorf("objective = %v, want 210", sol.Objective)
	}
	// Verify feasibility of the reported solution.
	for j := 0; j < 3; j++ {
		got := sol.Value(xs[0][j]) + sol.Value(xs[1][j])
		if got < demand[j]-1e-6 {
			t.Errorf("demand %d unmet: %v < %v", j, got, demand[j])
		}
	}
}

func TestMaximizeWithEqualityAndBounds(t *testing.T) {
	// maximize x + 4y + 2z s.t. x+y+z = 10, y ≤ 4, z ≤ 3 → y=4, z=3, x=3, obj=25.
	p := NewProblem(Maximize)
	x := p.MustVariable("x", 0, Infinity, 1)
	y := p.MustVariable("y", 0, 4, 4)
	z := p.MustVariable("z", 0, 3, 2)
	if err := p.AddConstraint("total", EQ, 10, Term{x, 1}, Term{y, 1}, Term{z, 1}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Objective, 25, 1e-6) {
		t.Errorf("objective = %v, want 25", sol.Objective)
	}
}

// TestBealeCycling pins termination on the classic cycling LP: Beale's
// example stalls forever under naive Dantzig pricing with its textbook
// tie-breaking, so reaching the known optimum proves the anti-cycling
// safeguards (lexicographic ratio-test ties, the Bland fallback) actually
// engage.  min −3/4·x1 + 150·x2 − 1/50·x3 + 6·x4 has optimum −1/20 at
// x = (1/25, 0, 1, 0).
func TestBealeCycling(t *testing.T) {
	p := NewProblem(Minimize)
	x1 := p.MustVariable("x1", 0, Infinity, -0.75)
	x2 := p.MustVariable("x2", 0, Infinity, 150)
	x3 := p.MustVariable("x3", 0, Infinity, -0.02)
	x4 := p.MustVariable("x4", 0, Infinity, 6)
	if err := p.AddConstraint("r1", LE, 0,
		Term{x1, 0.25}, Term{x2, -60}, Term{x3, -1.0 / 25}, Term{x4, 9}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("r2", LE, 0,
		Term{x1, 0.5}, Term{x2, -90}, Term{x3, -1.0 / 50}, Term{x4, 3}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("r3", LE, 1, Term{x3, 1}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Objective, -0.05, 1e-9) {
		t.Errorf("objective = %v, want -0.05", sol.Objective)
	}
	if !almostEqual(sol.Value(x1), 0.04, 1e-7) || !almostEqual(sol.Value(x3), 1, 1e-7) {
		t.Errorf("solution = (%v, %v, %v, %v), want (0.04, 0, 1, 0)",
			sol.Value(x1), sol.Value(x2), sol.Value(x3), sol.Value(x4))
	}
}

// TestEmptyConstraints pins the zero-term rows the model API permits: a
// satisfiable empty row is inert, an unsatisfiable one makes the problem
// infeasible, and a zero-rhs empty GE row leaves a permanently redundant
// artificial the solver must tolerate.
func TestEmptyConstraints(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.MustVariable("x", 1, 4, 1)
	if err := p.AddConstraint("inert", LE, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("redundant", GE, 0); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve with inert empty rows: %v", err)
	}
	if !almostEqual(sol.Value(x), 1, 1e-9) {
		t.Errorf("x = %v, want 1", sol.Value(x))
	}

	bad := NewProblem(Minimize)
	bad.MustVariable("x", 0, 1, 1)
	if err := bad.AddConstraint("impossible", GE, 3); err != nil {
		t.Fatal(err)
	}
	if sol, err := bad.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("empty GE 3: want ErrInfeasible, got %v (status %v)", err, sol.Status)
	}

	badLE := NewProblem(Minimize)
	badLE.MustVariable("x", 0, 1, 1)
	if err := badLE.AddConstraint("impossible", LE, -2); err != nil {
		t.Fatal(err)
	}
	if _, err := badLE.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("empty LE -2: want ErrInfeasible, got %v", err)
	}
}

// TestFreeVariableEdgeCases exercises the free-variable split (x = x⁺ − x⁻)
// beyond the basic TestFreeVariable: a free variable pinned by an equality,
// an unbounded free direction, and a free variable with a finite negative
// upper bound (handled by the mirror substitution y = ub − x).
func TestFreeVariableEdgeCases(t *testing.T) {
	// Pinned by an equality with a bounded partner: x + y = 2, y ∈ [0, 5],
	// minimize x → y = 5, x = −3.
	p := NewProblem(Minimize)
	x := p.MustVariable("x", math.Inf(-1), Infinity, 1)
	y := p.MustVariable("y", 0, 5, 0)
	if err := p.AddConstraint("eq", EQ, 2, Term{x, 1}, Term{y, 1}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Value(x), -3, 1e-7) || !almostEqual(sol.Objective, -3, 1e-9) {
		t.Errorf("x = %v (obj %v), want -3", sol.Value(x), sol.Objective)
	}

	// Unbounded free direction: no constraints at all.
	ub := NewProblem(Minimize)
	ub.MustVariable("x", math.Inf(-1), Infinity, 1)
	if usol, err := ub.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("free unconstrained: want ErrUnbounded, got %v (status %v)", err, usol.Status)
	}

	// Free variable with a negative upper bound: min −x, x ≤ −3 → x = −3.
	neg := NewProblem(Minimize)
	nx := neg.MustVariable("x", math.Inf(-1), -3, -1)
	if err := neg.AddConstraint("floor", GE, -10, Term{nx, 1}); err != nil {
		t.Fatal(err)
	}
	nsol, err := neg.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(nsol.Value(nx), -3, 1e-7) {
		t.Errorf("x = %v, want -3", nsol.Value(nx))
	}
}

// TestRandomLPsAgainstBruteForce cross-checks the simplex against a fine grid
// search on small random 2-variable problems with bounded boxes.
func TestRandomLPsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		c1 := rng.Float64()*4 - 2
		c2 := rng.Float64()*4 - 2
		a1 := rng.Float64()*2 - 1
		a2 := rng.Float64()*2 - 1
		rhs := rng.Float64()*6 + 1

		p := NewProblem(Minimize)
		x := p.MustVariable("x", 0, 5, c1)
		y := p.MustVariable("y", 0, 5, c2)
		if err := p.AddConstraint("c", LE, rhs, Term{x, a1}, Term{y, a2}); err != nil {
			t.Fatal(err)
		}
		sol, err := p.Solve()
		if errors.Is(err, ErrInfeasible) || errors.Is(err, ErrUnbounded) {
			// Box-bounded with one ≤ constraint and rhs > 0 is always
			// feasible (origin) and bounded; neither should happen.
			t.Fatalf("trial %d: unexpected status %v", trial, sol.Status)
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		best := math.Inf(1)
		const steps = 100
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				xv := 5 * float64(i) / steps
				yv := 5 * float64(j) / steps
				if a1*xv+a2*yv > rhs+1e-9 {
					continue
				}
				v := c1*xv + c2*yv
				if v < best {
					best = v
				}
			}
		}
		if sol.Objective > best+1e-3 {
			t.Errorf("trial %d: simplex %v worse than grid %v", trial, sol.Objective, best)
		}
		if sol.Objective < best-0.2 {
			// Grid resolution is 0.05, so the simplex can be at most a
			// little better than the grid optimum.
			t.Errorf("trial %d: simplex %v implausibly better than grid %v", trial, sol.Objective, best)
		}
	}
}

func TestModeratelySizedLP(t *testing.T) {
	// A time-expanded toy of the provisioning LP: 50 periods, one "battery"
	// level chained across periods; checks the solver handles a few hundred
	// variables/constraints and respects chaining equalities.
	const n = 50
	p := NewProblem(Minimize)
	brown := make([]Var, n)
	level := make([]Var, n)
	charge := make([]Var, n)
	for i := 0; i < n; i++ {
		brown[i] = p.MustVariable("brown", 0, Infinity, 1)     // cost of grid power
		charge[i] = p.MustVariable("charge", 0, Infinity, 0.1) // mild penalty
		level[i] = p.MustVariable("level", 0, 100, 0)
	}
	green := func(i int) float64 {
		if i%2 == 0 {
			return 20
		}
		return 0
	}
	const demand = 10.0
	for i := 0; i < n; i++ {
		// green + brown + discharge − charge = demand, with discharge folded
		// into the level equation: level_i = level_{i-1} + charge_i − d_i and
		// d_i = demand − green − brown + charge.  Keep it simple: enforce
		// level_i = level_{i-1} + (green − demand) + brown_i − spill, with
		// spill ≥ 0 free of cost.  We just require level_i ≥ 0 so brown must
		// cover long droughts.
		terms := []Term{{level[i], 1}, {brown[i], -1}, {charge[i], 1}}
		rhs := green(i) - demand
		if i > 0 {
			terms = append(terms, Term{level[i-1], -1})
		}
		if err := p.AddConstraint("bal", EQ, rhs, terms...); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Objective < -1e-6 {
		t.Errorf("objective %v should be non-negative", sol.Objective)
	}
}

// TestRandomizedSolutionsAreFeasible is the pricing-drift regression: over
// randomized feasible LPs (with the badly scaled, bound-heavy shape of
// the provisioning models), every solution the solver reports as Optimal
// must actually satisfy all constraints and variable bounds, and must be at
// least as good as the known feasible point the instance was built around.
// A drifting reduced-cost row that admits junk pivots fails this quickly.
func TestRandomizedSolutionsAreFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		nVars := 2 + rng.Intn(12)
		nCons := 1 + rng.Intn(16)
		scale := math.Pow(10, float64(rng.Intn(7)-2)) // 1e-2 .. 1e4

		prob := NewProblem(Minimize)
		vars := make([]Var, nVars)
		ubs := make([]float64, nVars)
		costs := make([]float64, nVars)
		x0 := make([]float64, nVars) // known feasible point
		for j := 0; j < nVars; j++ {
			ubs[j] = Infinity
			if rng.Intn(2) == 0 {
				ubs[j] = scale * (0.5 + rng.Float64()*2)
			}
			costs[j] = scale * (rng.Float64()*2 - 0.5)
			var err error
			vars[j], err = prob.AddVariable("x", 0, ubs[j], costs[j])
			if err != nil {
				t.Fatal(err)
			}
			hi := ubs[j]
			if math.IsInf(hi, 1) {
				hi = scale * 2
			}
			x0[j] = rng.Float64() * hi
		}
		rows := make([][]float64, nCons)
		ops := make([]Op, nCons)
		rhss := make([]float64, nCons)
		for i := 0; i < nCons; i++ {
			rows[i] = make([]float64, nVars)
			terms := make([]Term, 0, nVars)
			dot := 0.0
			for j := 0; j < nVars; j++ {
				if rng.Intn(3) == 0 {
					continue
				}
				c := rng.Float64()*4 - 2
				rows[i][j] = c
				dot += c * x0[j]
				terms = append(terms, Term{Var: vars[j], Coeff: c})
			}
			if len(terms) == 0 {
				continue
			}
			// Choose the operator and an rhs that keeps x0 feasible, so the
			// instance is feasible by construction.
			switch ops[i] = Op(1 + rng.Intn(3)); ops[i] {
			case LE:
				rhss[i] = dot + rng.Float64()*scale
			case GE:
				rhss[i] = dot - rng.Float64()*scale
			case EQ:
				rhss[i] = dot
			}
			if err := prob.AddConstraint("c", ops[i], rhss[i], terms...); err != nil {
				t.Fatal(err)
			}
		}

		sol, err := prob.Solve()
		if err != nil {
			// Unbounded is possible (free improving directions); infeasible
			// is not, because x0 satisfies everything by construction.
			if errors.Is(err, ErrUnbounded) {
				continue
			}
			t.Fatalf("trial %d: solve: %v", trial, err)
		}
		tol := 1e-6 * math.Max(1, scale)
		objX0 := 0.0
		for j := 0; j < nVars; j++ {
			v := sol.Value(vars[j])
			objX0 += costs[j] * x0[j]
			if v < -tol || v > ubs[j]+tol {
				t.Fatalf("trial %d: x[%d]=%v violates bounds [0,%v]", trial, j, v, ubs[j])
			}
		}
		for i := 0; i < nCons; i++ {
			dot := 0.0
			any := false
			for j := 0; j < nVars; j++ {
				if rows[i][j] != 0 {
					dot += rows[i][j] * sol.Value(vars[j])
					any = true
				}
			}
			if !any {
				continue
			}
			rowTol := tol * 10
			switch ops[i] {
			case LE:
				if dot > rhss[i]+rowTol {
					t.Fatalf("trial %d: constraint %d violated: %v > %v", trial, i, dot, rhss[i])
				}
			case GE:
				if dot < rhss[i]-rowTol {
					t.Fatalf("trial %d: constraint %d violated: %v < %v", trial, i, dot, rhss[i])
				}
			case EQ:
				if math.Abs(dot-rhss[i]) > rowTol {
					t.Fatalf("trial %d: constraint %d violated: %v != %v", trial, i, dot, rhss[i])
				}
			}
		}
		if sol.Objective > objX0+tol {
			t.Fatalf("trial %d: objective %v worse than known feasible point %v", trial, sol.Objective, objX0)
		}
	}
}
