package lp

import (
	"errors"
	"math"
	"sort"
)

// luFactor is a sparse LU factorization of the basis matrix B, computed by
// the Gilbert–Peierls left-looking algorithm with partial pivoting: each
// basis column is triangular-solved against the L built so far (the nonzero
// pattern found by a depth-first search, so the work is proportional to the
// arithmetic actually performed), then the largest remaining entry is chosen
// as the pivot.  Columns are processed in ascending-nonzero-count order,
// which puts slack singletons first and keeps fill-in low on simplex bases.
//
// Storage: L is unit lower triangular, kept column-wise with both row and
// column indices in pivot order (rows are remapped after the factorization
// finishes); U is kept column-wise with its diagonal split out.  prow/pinv
// are the row permutation, q the column permutation (pivot step → basis
// position).
type luFactor struct {
	m int

	lColPtr []int
	lRows   []int
	lVals   []float64

	uColPtr []int
	uRows   []int
	uVals   []float64
	uDiag   []float64

	prow []int // pivot step -> original row
	pinv []int // original row -> pivot step (-1 while unpivoted)
	q    []int // pivot step -> basis position

	// failPos is the basis position whose column found no eligible pivot when
	// the last factorize returned errSingularBasis (-1 otherwise).  The
	// singular-basis repair ejects that column.
	failPos int

	// scratch, reused across factorizations.
	x        []float64
	pattern  []int
	topo     []int
	stackN   []int
	stackP   []int
	rowMark  []int32
	nodeMark []int32
	stamp    int32
	order    []int
}

var errSingularBasis = errors.New("lp: basis matrix is numerically singular")

// luPivotTiny is the absolute pivot threshold below which the basis is
// declared singular.
const luPivotTiny = 1e-11

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// factorize computes P·B·Q = L·U for the basis given as column indices into
// the standard form.
func (f *luFactor) factorize(st *standard, basis []int) error {
	m := len(basis)
	f.m = m
	f.failPos = -1
	forceSingular := faultsOn.Load() && faultFires(FaultSingularLU)
	f.lColPtr = append(f.lColPtr[:0], 0)
	f.lRows = f.lRows[:0]
	f.lVals = f.lVals[:0]
	f.uColPtr = append(f.uColPtr[:0], 0)
	f.uRows = f.uRows[:0]
	f.uVals = f.uVals[:0]
	f.uDiag = growFloats(f.uDiag, m)
	f.prow = growInts(f.prow, m)
	f.pinv = growInts(f.pinv, m)
	f.q = growInts(f.q, m)
	f.x = growFloats(f.x, m)
	f.rowMark = growInt32s(f.rowMark, m)
	f.nodeMark = growInt32s(f.nodeMark, m)
	if f.stamp == 0 {
		for i := range f.rowMark {
			f.rowMark[i] = 0
		}
		for i := range f.nodeMark {
			f.nodeMark[i] = 0
		}
	}
	for i := 0; i < m; i++ {
		f.pinv[i] = -1
		f.x[i] = 0
	}

	// Column order: fewest nonzeros first (stable on position for
	// determinism).  Slack and artificial singletons pivot immediately,
	// leaving only the structural "bump" for real elimination.
	f.order = growInts(f.order, m)
	for i := range f.order[:m] {
		f.order[i] = i
	}
	ord := f.order[:m]
	sort.SliceStable(ord, func(a, b int) bool {
		na := st.colPtr[basis[ord[a]]+1] - st.colPtr[basis[ord[a]]]
		nb := st.colPtr[basis[ord[b]]+1] - st.colPtr[basis[ord[b]]]
		return na < nb
	})

	for k := 0; k < m; k++ {
		pos := ord[k]
		rows, vals := st.col(basis[pos])

		f.stamp++
		if f.stamp == math.MaxInt32 {
			for i := range f.rowMark[:m] {
				f.rowMark[i] = 0
			}
			for i := range f.nodeMark[:m] {
				f.nodeMark[i] = 0
			}
			f.stamp = 1
		}
		stamp := f.stamp

		// Scatter the column and collect its pattern.
		f.pattern = f.pattern[:0]
		f.topo = f.topo[:0]
		for idx, r := range rows {
			f.x[r] = vals[idx]
			f.rowMark[r] = stamp
			f.pattern = append(f.pattern, r)
		}

		// Symbolic: DFS through L from every already-pivoted row of the
		// column; reverse postorder is a topological order of the
		// triangular-solve dependencies.
		for _, r := range rows {
			t := f.pinv[r]
			if t < 0 || f.nodeMark[t] == stamp {
				continue
			}
			f.nodeMark[t] = stamp
			f.stackN = append(f.stackN[:0], t)
			f.stackP = append(f.stackP[:0], f.lColPtr[t])
			for len(f.stackN) > 0 {
				top := len(f.stackN) - 1
				tt := f.stackN[top]
				p := f.stackP[top]
				if p < f.lColPtr[tt+1] {
					f.stackP[top]++
					rr := f.lRows[p]
					if f.rowMark[rr] != stamp {
						f.rowMark[rr] = stamp
						f.x[rr] = 0
						f.pattern = append(f.pattern, rr)
					}
					if tc := f.pinv[rr]; tc >= 0 && f.nodeMark[tc] != stamp {
						f.nodeMark[tc] = stamp
						f.stackN = append(f.stackN, tc)
						f.stackP = append(f.stackP, f.lColPtr[tc])
					}
				} else {
					f.stackN = f.stackN[:top]
					f.stackP = f.stackP[:top]
					f.topo = append(f.topo, tt)
				}
			}
		}

		// Numeric sparse triangular solve x = L⁻¹·column, in topological
		// order (reverse DFS postorder).
		for i := len(f.topo) - 1; i >= 0; i-- {
			t := f.topo[i]
			xt := f.x[f.prow[t]]
			if xt == 0 {
				continue
			}
			for p := f.lColPtr[t]; p < f.lColPtr[t+1]; p++ {
				f.x[f.lRows[p]] -= xt * f.lVals[p]
			}
		}

		// Partial pivoting over the unpivoted part of x.
		pr := -1
		best := 0.0
		for _, r := range f.pattern {
			if f.pinv[r] >= 0 {
				continue
			}
			if a := math.Abs(f.x[r]); a > best {
				best = a
				pr = r
			}
		}
		if forceSingular && k == 0 {
			pr, best = -1, 0
		}
		if pr < 0 || best <= luPivotTiny {
			// Clear scratch before bailing so the next factorize starts clean.
			for _, r := range f.pattern {
				f.x[r] = 0
			}
			f.failPos = pos
			return errSingularBasis
		}
		pv := f.x[pr]

		// Store U column k (pivoted rows) and L column k (unpivoted rows,
		// scaled by the pivot).
		for _, r := range f.pattern {
			if t := f.pinv[r]; t >= 0 {
				if v := f.x[r]; v != 0 {
					f.uRows = append(f.uRows, t)
					f.uVals = append(f.uVals, v)
				}
			}
		}
		f.uColPtr = append(f.uColPtr, len(f.uRows))
		f.uDiag[k] = pv
		for _, r := range f.pattern {
			if f.pinv[r] < 0 && r != pr {
				if v := f.x[r]; v != 0 {
					f.lRows = append(f.lRows, r)
					f.lVals = append(f.lVals, v/pv)
				}
			}
		}
		f.lColPtr = append(f.lColPtr, len(f.lRows))

		f.prow[k] = pr
		f.pinv[pr] = k
		f.q[k] = pos
		for _, r := range f.pattern {
			f.x[r] = 0
		}
	}

	// Remap L's row indices from original rows to pivot order, so the solve
	// kernels below run entirely in pivot space.
	for p := range f.lRows {
		f.lRows[p] = f.pinv[f.lRows[p]]
	}
	return nil
}

// lsolve solves L·y = y in place (pivot space, unit diagonal).
func (f *luFactor) lsolve(y []float64) {
	for k := 0; k < f.m; k++ {
		v := y[k]
		if v == 0 {
			continue
		}
		for p := f.lColPtr[k]; p < f.lColPtr[k+1]; p++ {
			y[f.lRows[p]] -= v * f.lVals[p]
		}
	}
}

// usolve solves U·y = y in place.
func (f *luFactor) usolve(y []float64) {
	for k := f.m - 1; k >= 0; k-- {
		v := y[k] / f.uDiag[k]
		y[k] = v
		if v == 0 {
			continue
		}
		for p := f.uColPtr[k]; p < f.uColPtr[k+1]; p++ {
			y[f.uRows[p]] -= v * f.uVals[p]
		}
	}
}

// ltsolve solves Lᵀ·y = y in place.
func (f *luFactor) ltsolve(y []float64) {
	for k := f.m - 1; k >= 0; k-- {
		s := y[k]
		for p := f.lColPtr[k]; p < f.lColPtr[k+1]; p++ {
			s -= f.lVals[p] * y[f.lRows[p]]
		}
		y[k] = s
	}
}

// utsolve solves Uᵀ·y = y in place.
func (f *luFactor) utsolve(y []float64) {
	for k := 0; k < f.m; k++ {
		s := y[k]
		for p := f.uColPtr[k]; p < f.uColPtr[k+1]; p++ {
			s -= f.uVals[p] * y[f.uRows[p]]
		}
		y[k] = s / f.uDiag[k]
	}
}
