package lp

import (
	"errors"
	"math"
	"testing"
)

// TestBoundedStandardFormHasNoBoundRows pins the tentpole property of the
// bounded standard form: finite variable bounds are data, never rows, so
// the basis dimension is exactly the model's constraint count no matter
// how bound-heavy the model is.  (Before the bounded-variable refactor
// every finite upper bound spawned an explicit row plus a slack column.)
func TestBoundedStandardFormHasNoBoundRows(t *testing.T) {
	p := NewProblem(Minimize)
	for j := 0; j < 10; j++ {
		p.MustVariable("x", 0, float64(j+1), 1) // all finitely bounded
	}
	p.MustVariable("fixed", 2, 2, 1)
	p.MustVariable("mirrored", math.Inf(-1), 5, 1)
	if err := p.AddConstraint("c1", LE, 30, Term{Var(0), 1}, Term{Var(1), 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("c2", GE, 1, Term{Var(2), 1}, Term{Var(10), 1}); err != nil {
		t.Fatal(err)
	}
	std, err := p.standardize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if std.m != p.NumConstraints() {
		t.Fatalf("standard form has %d rows for %d constraints; bounds must not spawn rows",
			std.m, p.NumConstraints())
	}
	// One structural column per variable (none is doubly free here).
	if std.nStruct != p.NumVariables() {
		t.Fatalf("nStruct = %d, want %d", std.nStruct, p.NumVariables())
	}
	// The fixed variable's column is pinned: upper bound zero after the
	// lower-bound shift.
	if u := std.upper[10]; u != 0 {
		t.Fatalf("fixed variable upper = %v, want 0", u)
	}
	// The mirrored variable (lb = −∞, finite ub) has no upper bound in
	// standard form — the mirror substitution absorbed it.
	if u := std.upper[11]; !math.IsInf(u, 1) {
		t.Fatalf("mirrored variable upper = %v, want +Inf", u)
	}
}

// TestBoundFlipChain drives a solve that is nothing but bound flips: a
// single non-binding constraint and a string of profitable upper bounds.
// The optimum must put every variable at its upper bound while the basis
// still holds the one slack column — proof that no structural column ever
// entered the basis and each move was a flip, not a pivot.
func TestBoundFlipChain(t *testing.T) {
	p := NewProblem(Maximize)
	ubs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	vars := make([]Var, len(ubs))
	terms := make([]Term, len(ubs))
	for j, u := range ubs {
		vars[j] = p.MustVariable("x", 0, u, 1+float64(j)*0.1)
		terms[j] = Term{vars[j], 1}
	}
	// Σ x ≤ 100 is slack even with every variable at its upper bound (36).
	if err := p.AddConstraint("cap", LE, 100, terms...); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := 0.0
	for j, u := range ubs {
		if !almostEqual(sol.Value(vars[j]), u, 1e-9) {
			t.Errorf("x[%d] = %v, want its upper bound %v", j, sol.Value(vars[j]), u)
		}
		want += (1 + float64(j)*0.1) * u
	}
	if !almostEqual(sol.Objective, want, 1e-9) {
		t.Errorf("objective = %v, want %v", sol.Objective, want)
	}
	// White box: the only basic column must still be the constraint's
	// slack; all structural columns are nonbasic at their upper bounds.
	basis := sol.Basis()
	if basis == nil || len(basis.cols) != 1 {
		t.Fatalf("basis = %+v, want exactly one row", basis)
	}
	if basis.cols[0].kind != identSlack {
		t.Errorf("basic column kind = %d, want the slack: every move should have been a bound flip", basis.cols[0].kind)
	}
	if len(basis.upper) != len(ubs) {
		t.Errorf("%d columns recorded at upper, want %d", len(basis.upper), len(ubs))
	}
}

// TestFixedVariables pins lo == hi variables: they are shifted onto their
// fixed value, excluded from pricing, and participate in constraints as
// constants.
func TestFixedVariables(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.MustVariable("x", 3, 3, 10) // fixed, expensive: cost must not matter
	y := p.MustVariable("y", 0, 10, 1)
	if err := p.AddConstraint("c", GE, 5, Term{x, 1}, Term{y, 1}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !almostEqual(sol.Value(x), 3, 1e-9) || !almostEqual(sol.Value(y), 2, 1e-9) {
		t.Errorf("solution = (%v, %v), want (3, 2)", sol.Value(x), sol.Value(y))
	}
	if !almostEqual(sol.Objective, 32, 1e-9) {
		t.Errorf("objective = %v, want 32", sol.Objective)
	}

	// A fixed variable that contradicts a constraint makes the problem
	// infeasible.
	bad := NewProblem(Minimize)
	bx := bad.MustVariable("x", 3, 3, 0)
	if err := bad.AddConstraint("c", GE, 5, Term{bx, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}

	// Fixing a variable via SetBounds after a solve is the branch-and-bound
	// "pin to integer" edit; the warm re-solve must agree with cold.
	p2 := NewProblem(Maximize)
	a := p2.MustVariable("a", 0, 4, 2)
	b := p2.MustVariable("b", 0, 4, 1)
	if err := p2.AddConstraint("c", LE, 6, Term{a, 1}, Term{b, 1}); err != nil {
		t.Fatal(err)
	}
	sol2, err := p2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.SetBounds(a, 1, 1); err != nil {
		t.Fatal(err)
	}
	warm, err := p2.SolveFrom(sol2.Basis())
	if err != nil {
		t.Fatalf("warm after fixing: %v", err)
	}
	if !almostEqual(warm.Value(a), 1, 1e-9) || !almostEqual(warm.Value(b), 4, 1e-9) {
		t.Errorf("warm solution = (%v, %v), want (1, 4)", warm.Value(a), warm.Value(b))
	}
}

// TestFreeUpperBoundMix pins the hi = +Inf cases alongside bounded
// columns: a variable that is only bounded below never flips, and the
// unbounded ray is still detected when it is the profitable direction.
func TestFreeUpperBoundMix(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.MustVariable("x", 0, 2, 3)                   // bounded: flips to upper
	y := p.MustVariable("y", 1, Infinity, 1)            // hi = +Inf
	z := p.MustVariable("z", math.Inf(-1), Infinity, 2) // doubly free, most valuable
	if err := p.AddConstraint("c", LE, 10, Term{x, 1}, Term{y, 1}, Term{z, 1}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// x at its upper bound, y down to its lower bound, the remaining budget
	// on the most valuable direction z: (2, 1, 7), objective 6+1+14.
	if !almostEqual(sol.Value(x), 2, 1e-9) || !almostEqual(sol.Value(y), 1, 1e-9) ||
		!almostEqual(sol.Value(z), 7, 1e-9) {
		t.Errorf("solution = (%v, %v, %v), want (2, 1, 7)", sol.Value(x), sol.Value(y), sol.Value(z))
	}
	if !almostEqual(sol.Objective, 21, 1e-9) {
		t.Errorf("objective = %v, want 21", sol.Objective)
	}

	// With only finite-bound columns profitable the ray is closed, but an
	// unbounded hi = +Inf direction must still be detected.
	unb := NewProblem(Maximize)
	ux := unb.MustVariable("x", 0, Infinity, 1)
	uy := unb.MustVariable("y", 0, 5, 1)
	if err := unb.AddConstraint("c", GE, 1, Term{ux, 1}, Term{uy, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := unb.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Errorf("want ErrUnbounded, got %v", err)
	}
}

// TestDualRestartAfterTighteningAtUpper is the satellite edge case: the
// first solve leaves a variable nonbasic at its upper bound; SetBounds then
// tightens that bound, so the saved status walks the variable down to the
// new bound and the warm re-solve is a dual-simplex restart (never a cold
// phase 1).  Warm and cold must agree exactly.
func TestDualRestartAfterTighteningAtUpper(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.MustVariable("x", 0, 4, 1)
	y := p.MustVariable("y", 0, 4, 0.5)
	if err := p.AddConstraint("budget", LE, 6, Term{x, 1}, Term{y, 1}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Value(x), 4, 1e-9) || !almostEqual(sol.Value(y), 2, 1e-9) {
		t.Fatalf("solution = (%v, %v), want (4, 2)", sol.Value(x), sol.Value(y))
	}
	basis := sol.Basis()
	if basis == nil {
		t.Fatal("no basis captured")
	}
	// White box: x must be recorded nonbasic at its upper bound.
	foundAtUpper := false
	for _, cid := range basis.upper {
		if cid.kind == identStruct && cid.idx == int(x) {
			foundAtUpper = true
		}
	}
	if !foundAtUpper {
		t.Fatalf("basis.upper = %+v: x should be nonbasic at its upper bound", basis.upper)
	}

	// Tighten the bound the variable is sitting on.
	if err := p.SetBounds(x, 0, 3); err != nil {
		t.Fatal(err)
	}
	warm, err := p.SolveFrom(basis)
	if err != nil {
		t.Fatalf("warm re-solve: %v", err)
	}
	cold, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(warm.Objective, cold.Objective, 1e-9) {
		t.Errorf("warm objective %v, cold %v", warm.Objective, cold.Objective)
	}
	if !almostEqual(warm.Value(x), 3, 1e-9) || !almostEqual(warm.Value(y), 3, 1e-9) {
		t.Errorf("warm solution = (%v, %v), want (3, 3)", warm.Value(x), warm.Value(y))
	}

	// Tighten past feasibility: a + b ≥ 8 with a, b ∈ [0, 4] admits only
	// (4, 4), so a ≤ 3 makes the warm dual simplex prove infeasibility.
	p3 := NewProblem(Minimize)
	a := p3.MustVariable("a", 0, 4, 1)
	b := p3.MustVariable("b", 0, 4, 2)
	if err := p3.AddConstraint("need", GE, 8, Term{a, 1}, Term{b, 1}); err != nil {
		t.Fatal(err)
	}
	sol3, err := p3.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := p3.SetBounds(a, 0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := p3.SolveFrom(sol3.Basis()); !errors.Is(err, ErrInfeasible) {
		t.Errorf("tightened past feasibility: want ErrInfeasible, got %v", err)
	}
}
