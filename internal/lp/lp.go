// Package lp implements a bounded-variable sparse revised-simplex solver
// for linear programs.
//
// The paper formulates both the siting/provisioning problem and GreenNebula's
// 48-hour workload-partitioning problem as (mixed-integer) linear programs
// and solves them with an off-the-shelf solver.  This package is the
// from-scratch substitute: it supports minimization and maximization,
// less-than, greater-than and equality constraints, variable lower/upper
// bounds, and reports infeasibility and unboundedness.  internal/milp adds
// branch and bound on top for integer variables.
//
// # Architecture: bounded revised simplex over a sparse basis
//
// The standard form is minimize c·y s.t. A·y = b, 0 ≤ y ≤ u with one row
// per model constraint and nothing else: finite variable bounds are column
// data, never rows.  A variable with a finite lower bound is shifted, one
// that is free below but bounded above is mirrored (y = ub − x), and only
// a doubly-free variable is split x = x⁺ − x⁻.  Every nonbasic column sits
// at one of its bounds (at-lower or at-upper status); pricing is signed by
// that status (a column improves by increasing off its lower bound when
// its reduced cost is negative, by decreasing off its upper bound when it
// is positive), and the ratio test caps the step at the entering column's
// own opposite bound — when that cap binds first the iteration is a pure
// bound flip: the status bit flips and the basic solution shifts, with no
// basis change, no eta and no LU aging at all.  Fixed variables (lo == hi)
// are pinned columns that are never priced.
//
// The solver stores the standard form column-wise (CSC, built once per
// solve in standardize) and never forms a dense tableau.  The basis matrix
// is LU-factorized by a Gilbert–Peierls sparse factorization with partial
// pivoting (lu.go); each simplex pivot appends a product-form eta vector
// instead of re-eliminating rows, and the basis is refactorized from
// scratch every refactorEvery pivots to bound eta-file growth and rounding
// drift (revised.go).  Entering columns are priced over an incrementally
// maintained reduced-cost row (one sparse BTRAN of the leaving unit vector
// plus one pass over the CSC nonzeros per pivot); every nominee's reduced
// cost is re-verified exactly from its FTRAN column — a byproduct of the
// ratio test — so pricing drift can cost a re-pick, never a junk pivot,
// and optimality is only declared after an exact rebuild.  Which column
// that row nominates is the pricing rule (pricing.go): devex reference
// weights over a rotating candidate list by default, with Dantzig's full
// scan and Bland's least-index rule selectable via SolveOptions.Pricing.
//
// # Pricing
//
// The pricing rule decides which nonbasic column enters the basis each
// pivot; it is the lever with the biggest effect on iteration counts.
// Three rules are implemented behind one interface (pricing.go), selected
// by SolveOptions.Pricing:
//
//   - PricingDevex (the default, zero value) scores each candidate by
//     viol²/w_j, where w_j is a devex reference weight approximating
//     ‖B⁻¹·A_j‖² — the steepest-edge criterion without its per-column
//     FTRANs.  Weights start at 1 over a reference framework, are updated
//     in O(nnz) per pivot from the same BTRAN row that maintains the
//     reduced costs, and the framework resets when the weight spread
//     drifts past a ratio bound.  On models past a few thousand columns
//     the full scan gives way to candidate-list partial pricing: a short
//     list of the best scorers from a rotating section of the columns,
//     re-verified exactly and refilled as it goes stale, with a full pass
//     (never the list alone) required to declare optimality.  The same
//     weights price the leaving row in the dual simplex, and both primal
//     and dual weights are captured into Basis so warm restarts
//     (SolveFrom) resume with the framework instead of re-learning it.
//   - PricingDantzig is the classic most-negative-reduced-cost full scan:
//     cheapest per pivot, but blind to column geometry, so it tends to
//     take more pivots on degenerate models.
//   - PricingBland is the least-index anti-cycling rule; it terminates
//     finitely on any model and is what the stall ladder switches to
//     mid-solve (Stats.BlandSwitches) when progress latches.  Once the
//     stall releases, the solver switches back and re-seeds a fresh devex
//     framework (Stats.DevexResets).
//
// All three rules share the exact-FTRAN re-verification above, so they
// differ in pivot counts and wall-clock, never in the optimum; the
// differential suite solves every random model under all three and
// requires identical statuses and objectives.  Stats reports the pricing
// work per solve (PartialPasses, CandidateRebuilds, DevexResets), and
// BenchmarkLPPricing in the repo root A/Bs the rules on the
// scheduler-shaped partition LP with a pivots/op metric.
//
// # Warm starts
//
// A successful solve captures its optimal basis in model-level terms (the
// Basis type: per row, which variable/slack/artificial is basic, plus the
// set of nonbasic columns at their upper bounds, keyed by identities that
// survive re-standardization).  SolveFrom(basis) restarts from it: after
// bound or right-hand-side mutations (SetBounds, SetRHS, SetCoeff,
// SetCost) the old basis is typically primal-infeasible but still
// dual-feasible — a tightened bound just moves the at-bound columns with
// it — so a handful of bounded dual-simplex pivots (a basic value may now
// violate either of its bounds) re-optimize in place of a full two-phase
// solve.  internal/milp edits branch bounds on one shared relaxation, so a
// branch-and-bound node adds zero rows and restarts from its parent's
// basis; internal/sched keeps one basis across scheduling rounds.
//
// # Presolve
//
// A reduction pass (presolve.go) runs ahead of standardization by default
// (SolveOptions.Presolve; PresolveOff is the escape hatch) and strips the
// model structure the simplex would otherwise grind through pivot by
// pivot: empty rows (with infeasibility detection), singleton rows folded
// into column bounds, forcing rows (activity bounds pin every variable),
// redundant rows, fixed columns substituted into the objective and
// right-hand sides, free and implied-free column singletons eliminated
// together with their equality row, columns with no live entries parked at
// their cheap bound, and exact duplicate columns merged.  Every removal
// pushes an inverse action onto a postsolve stack, and recover() replays
// that stack so Solution values are always model-space and model-feasible;
// the objective is recomputed from the original costs, so presolve cost
// transfers can never skew it.  Stats reports the work (RowsRemoved,
// ColsRemoved, PresolveNanos — the latter being the one non-deterministic
// Stats field).
//
// Presolve composes with warm starts rather than fighting them: a Basis is
// always full-model-sized — rows removed by presolve are seated with their
// own slack/artificial identities at capture — so a basis captured on a
// reduced form installs on the full form, the reduced form, or any
// differently-reduced form of the same model.  When a solve starts from a
// warm basis, presolve switches to a protective mode that only tightens
// bounds and removes nonbasic columns, never rows or basic columns, so the
// warm basis matrix survives bit-identical and the milp node chains and
// sched round chains stay on the dual-simplex restart path (pinned by
// tests: zero cold fallbacks).  An untranslatable basis still just falls
// back cold — presolve can cost a warm start, never correctness; the
// differential suite solves every model presolve-on and presolve-off and
// requires identical statuses and objectives.
//
// # MPS interchange
//
// WriteMPS and ReadMPS (mps.go) serialize Problems to the MPS format —
// fixed and free layouts, NAME/OBJSENSE/ROWS/COLUMNS/RHS/RANGES/BOUNDS —
// so instances interchange with external solvers; cmd/lpsolve is the
// standalone entry point.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"
)

// Sense is the optimization direction.
type Sense int

// Optimization senses.
const (
	Minimize Sense = iota + 1
	Maximize
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota + 1 // left-hand side ≤ rhs
	GE               // left-hand side ≥ rhs
	EQ               // left-hand side = rhs
)

// String returns the operator symbol.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return "?"
	}
}

// Status describes the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded

	// internal-only outcomes; never stored in a Solution.
	statusNumeric   // iteration limit / factorization failure
	statusRetry     // warm start unusable: fall back to a cold solve
	statusDeadline  // SolveOptions.Deadline expired mid-solve
	statusCancelled // SolveOptions.Ctx was cancelled mid-solve
)

// String returns a human-readable status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Var is an opaque handle to a decision variable.
type Var int

// Term is one coefficient×variable term of a constraint.
type Term struct {
	Var   Var
	Coeff float64
}

// Infinity marks an unbounded variable upper bound.
var Infinity = math.Inf(1)

// variable holds the model-level description of a decision variable.
type variable struct {
	name string
	lb   float64
	ub   float64
	cost float64
}

// constraint holds one row of the model.
type constraint struct {
	name  string
	terms []Term
	op    Op
	rhs   float64
}

// Problem is a linear program under construction.  It is not safe for
// concurrent use: mutation and solving both touch shared state (the solve
// methods reuse per-Problem scratch buffers across calls).
type Problem struct {
	sense Sense
	vars  []variable
	cons  []constraint
	scr   solveScratch

	// structVer counts mutations of the constraint matrix itself — new
	// variables or constraints, coefficient rewrites — as opposed to the
	// bound/cost/rhs mutations of a warm re-solve chain.  Presolve keys its
	// cached row/column mirror of the matrix on it (see solveScratch), so a
	// SetRHS/SetBounds re-solve skips the O(nnz) rebuild.
	structVer uint64
}

// NewProblem returns an empty problem with the given sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// AddVariable adds a decision variable with bounds [lb, ub] (ub may be
// Infinity) and the given objective coefficient, returning its handle.
func (p *Problem) AddVariable(name string, lb, ub, cost float64) (Var, error) {
	if math.IsNaN(lb) || math.IsNaN(ub) || math.IsNaN(cost) {
		return -1, fmt.Errorf("lp: variable %q has NaN bounds or cost", name)
	}
	if ub < lb {
		return -1, fmt.Errorf("lp: variable %q has upper bound %v below lower bound %v", name, ub, lb)
	}
	p.vars = append(p.vars, variable{name: name, lb: lb, ub: ub, cost: cost})
	p.structVer++
	return Var(len(p.vars) - 1), nil
}

// MustVariable is AddVariable that panics on error; for construction code
// with constant, known-good arguments.
func (p *Problem) MustVariable(name string, lb, ub, cost float64) Var {
	v, err := p.AddVariable(name, lb, ub, cost)
	if err != nil {
		panic(err)
	}
	return v
}

// SetCost overrides the objective coefficient of an existing variable.
func (p *Problem) SetCost(v Var, cost float64) error {
	if int(v) < 0 || int(v) >= len(p.vars) {
		return fmt.Errorf("lp: unknown variable %d", v)
	}
	p.vars[v].cost = cost
	return nil
}

// SetBounds overrides the bounds of an existing variable.  Re-solving after
// a bound change warm-starts cleanly from the previous solve's Basis: bound
// tightening keeps the old basis dual-feasible, so SolveFrom restarts with
// the dual simplex instead of a from-scratch phase 1 (the branch-and-bound
// pattern in internal/milp).
func (p *Problem) SetBounds(v Var, lb, ub float64) error {
	if int(v) < 0 || int(v) >= len(p.vars) {
		return fmt.Errorf("lp: unknown variable %d", v)
	}
	if math.IsNaN(lb) || math.IsNaN(ub) {
		return fmt.Errorf("lp: variable %q has NaN bounds", p.vars[v].name)
	}
	if ub < lb {
		return fmt.Errorf("lp: variable %q has upper bound %v below lower bound %v", p.vars[v].name, ub, lb)
	}
	p.vars[v].lb, p.vars[v].ub = lb, ub
	return nil
}

// AddConstraint adds a linear constraint Σ terms (op) rhs.
func (p *Problem) AddConstraint(name string, op Op, rhs float64, terms ...Term) error {
	if op != LE && op != GE && op != EQ {
		return fmt.Errorf("lp: constraint %q has invalid operator", name)
	}
	if math.IsNaN(rhs) {
		return fmt.Errorf("lp: constraint %q has NaN right-hand side", name)
	}
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(p.vars) {
			return fmt.Errorf("lp: constraint %q references unknown variable %d", name, t.Var)
		}
		if math.IsNaN(t.Coeff) {
			return fmt.Errorf("lp: constraint %q has NaN coefficient", name)
		}
	}
	copied := make([]Term, len(terms))
	copy(copied, terms)
	p.cons = append(p.cons, constraint{name: name, terms: copied, op: op, rhs: rhs})
	p.structVer++
	return nil
}

// SetRHS overrides the right-hand side of constraint i (in insertion order).
// Together with SolveFrom it is the re-solve path of callers that keep one
// Problem alive across rounds (internal/sched's partition LP).
func (p *Problem) SetRHS(i int, rhs float64) error {
	if i < 0 || i >= len(p.cons) {
		return fmt.Errorf("lp: unknown constraint %d", i)
	}
	if math.IsNaN(rhs) {
		return fmt.Errorf("lp: constraint %q has NaN right-hand side", p.cons[i].name)
	}
	p.cons[i].rhs = rhs
	return nil
}

// SetCoeff overrides the coefficient of variable v in constraint i.  The
// term must already exist: the mutation API only re-weights an existing
// sparsity pattern, it never changes it.
func (p *Problem) SetCoeff(i int, v Var, coeff float64) error {
	if i < 0 || i >= len(p.cons) {
		return fmt.Errorf("lp: unknown constraint %d", i)
	}
	if math.IsNaN(coeff) {
		return fmt.Errorf("lp: constraint %q has NaN coefficient", p.cons[i].name)
	}
	for k := range p.cons[i].terms {
		if p.cons[i].terms[k].Var == v {
			p.cons[i].terms[k].Coeff = coeff
			p.structVer++
			return nil
		}
	}
	return fmt.Errorf("lp: constraint %q has no term for variable %d", p.cons[i].name, v)
}

// NumVariables returns the number of decision variables added so far.
func (p *Problem) NumVariables() int { return len(p.vars) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// Stats counts the work and the recovery actions of one solve (the warm
// attempt and any cold fallback combined), so callers can observe not just
// whether a solve succeeded but what the solver had to do to get there.
type Stats struct {
	// Pivots is the number of basis exchanges across all phases.
	Pivots int
	// BoundFlips counts iterations resolved by flipping a nonbasic column
	// between its bounds with no basis change.
	BoundFlips int
	// Refactorizations counts from-scratch LU factorizations of the basis.
	Refactorizations int
	// BlandSwitches counts pricing switches to Bland's rule, whether by the
	// degenerate-stall detector or the iteration-count backstop.
	BlandSwitches int
	// ColdFallbacks counts warm starts abandoned for a cold two-phase solve.
	ColdFallbacks int
	// Repairs counts singular-basis repairs: a basic column ejected for the
	// slack (or artificial) of an unpivotable row, followed by a
	// refactorization retry.
	Repairs int
	// NaNGuards counts FTRAN/BTRAN outputs caught carrying NaN/Inf and
	// answered with a refactorization instead of a poisoned pivot.
	NaNGuards int
	// PartialPasses counts candidate-list section scans by the partial
	// pricing loop (devex only): how many rotating sections were examined
	// to keep the candidate list fed.
	PartialPasses int
	// CandidateRebuilds counts candidate-list refills (devex only): the
	// list ran dry and a rotating scan rebuilt it.
	CandidateRebuilds int
	// DevexResets counts devex reference-framework resets after the
	// framework had learned from at least one pivot: weight drift past the
	// ratio bound, a refactorization or basis repair discarding the eta
	// file the weights were learned through, or the Bland stall latch
	// releasing pricing back to devex.
	DevexResets int
	// RowsRemoved / ColsRemoved count the model constraints and variables
	// the presolve pass eliminated ahead of standardization (both zero when
	// SolveOptions.Presolve is off).
	RowsRemoved int
	ColsRemoved int
	// PresolveNanos is the wall-clock nanoseconds spent in the presolve
	// pass.  It is the one non-deterministic Stats field; comparisons that
	// expect bit-identical reruns should zero it first.
	PresolveNanos int64
}

// Add accumulates o into s field by field; callers that drive many solves
// (milp's branch-and-bound nodes) use it to report aggregate LP work.
func (s *Stats) Add(o Stats) {
	s.Pivots += o.Pivots
	s.BoundFlips += o.BoundFlips
	s.Refactorizations += o.Refactorizations
	s.BlandSwitches += o.BlandSwitches
	s.ColdFallbacks += o.ColdFallbacks
	s.Repairs += o.Repairs
	s.NaNGuards += o.NaNGuards
	s.PartialPasses += o.PartialPasses
	s.CandidateRebuilds += o.CandidateRebuilds
	s.DevexResets += o.DevexResets
	s.RowsRemoved += o.RowsRemoved
	s.ColsRemoved += o.ColsRemoved
	s.PresolveNanos += o.PresolveNanos
}

// SolveOptions bounds a solve.  The zero value imposes no budget and is
// exactly Solve/SolveFrom.
type SolveOptions struct {
	// Deadline, when nonzero, is the wall-clock instant after which the
	// solve stops and returns ErrDeadline.  The check runs between pivots, so
	// a solve overruns by at most one iteration's work.
	Deadline time.Time
	// MaxIters, when positive, replaces the default per-phase iteration cap
	// (30·(rows+cols), floor 2000).  Exceeding it returns ErrNumeric.
	MaxIters int
	// Ctx, when non-nil, is polled between pivots; cancellation stops the
	// solve with ErrCancelled.
	Ctx context.Context
	// Pricing selects the simplex pricing rule.  The zero value is
	// PricingDevex; see the PricingRule constants in pricing.go.
	Pricing PricingRule
	// Presolve toggles the model reduction pass that runs ahead of
	// standardization (presolve.go).  The zero value PresolveAuto runs it;
	// PresolveOff solves the model exactly as built.
	Presolve PresolveMode
}

// solveControl is the internal form of SolveOptions threaded into the
// simplex loops.
type solveControl struct {
	deadline time.Time
	ctx      context.Context
	maxIters int
	pricing  PricingRule
}

// active reports whether any budget is set, so unbudgeted solves skip the
// per-iteration checks entirely and stay bit-identical to the pre-options
// solver.  The pricing rule is deliberately not a budget: it changes which
// pivots are taken, never whether limits are polled.
func (c *solveControl) active() bool {
	return c != nil && (c.ctx != nil || !c.deadline.IsZero() || c.maxIters > 0)
}

// Solution is the result of solving a problem.
type Solution struct {
	Status    Status
	Objective float64
	// Stats records the work and recovery actions of the solve.
	Stats  Stats
	values []float64
	basis  *Basis
}

// Value returns the optimal value of a variable.
func (s *Solution) Value(v Var) float64 {
	if s == nil || int(v) < 0 || int(v) >= len(s.values) {
		return math.NaN()
	}
	return s.values[v]
}

// Values returns a copy of all variable values in declaration order.
func (s *Solution) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Basis returns the optimal simplex basis of this solve, or nil when the
// solve did not end Optimal.  Pass it to SolveFrom to warm-start a re-solve
// of the same problem (or a mutated copy of it) from this vertex.
func (s *Solution) Basis() *Basis {
	if s == nil || s.Status != Optimal {
		return nil
	}
	return s.basis
}

// Errors returned by Solve.  ErrDeadline and ErrCancelled wrap the matching
// context errors, so errors.Is(err, context.DeadlineExceeded) and
// errors.Is(err, context.Canceled) also hold.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
	ErrNumeric    = errors.New("lp: numerical failure (iteration limit reached)")
	ErrDeadline   = fmt.Errorf("lp: solve deadline exceeded: %w", context.DeadlineExceeded)
	ErrCancelled  = fmt.Errorf("lp: solve cancelled: %w", context.Canceled)
)

const (
	epsilon      = 1e-9
	pivotEpsilon = 1e-10
)

// Solve runs the two-phase revised simplex method.  On success the returned
// Solution has Status Optimal; infeasible and unbounded problems return a
// Solution with the corresponding status together with ErrInfeasible or
// ErrUnbounded.
func (p *Problem) Solve() (*Solution, error) { return p.SolveFromWithOptions(nil, SolveOptions{}) }

// SolveWithOptions is Solve under the given budgets.
func (p *Problem) SolveWithOptions(opts SolveOptions) (*Solution, error) {
	return p.SolveFromWithOptions(nil, opts)
}

// SolveFrom is Solve warm-started from a previous solve's Basis.  The basis
// is mapped onto the current standard form by model-level identity; if it no
// longer translates (variables or constraints were added, a free variable
// became bounded, the basis matrix went singular), SolveFrom silently falls
// back to a cold solve, so a stale basis can cost time but never
// correctness.  A nil basis is exactly Solve.
func (p *Problem) SolveFrom(warm *Basis) (*Solution, error) {
	return p.SolveFromWithOptions(warm, SolveOptions{})
}

// SolveFromWithOptions is SolveFrom under the given budgets.  Any failure of
// the warm attempt short of a budget stop falls back to one cold solve (a
// deadline or cancellation is final: there is no budget left to retry on);
// recovery actions along the way are reported in the Solution's Stats.
func (p *Problem) SolveFromWithOptions(warm *Basis, opts SolveOptions) (*Solution, error) {
	var stats Stats
	var ps *presolveState
	if opts.Presolve != PresolveOff {
		start := time.Now()
		ps = p.presolve(warm)
		stats.PresolveNanos = time.Since(start).Nanoseconds()
		stats.RowsRemoved = ps.rowsRemoved
		stats.ColsRemoved = ps.colsRemoved
		if ps.status == Infeasible {
			return &Solution{Status: Infeasible, Stats: stats}, ErrInfeasible
		}
	}
	std, err := p.standardize(ps)
	if err != nil {
		return nil, err
	}
	ctl := &solveControl{deadline: opts.Deadline, ctx: opts.Ctx, maxIters: opts.MaxIters, pricing: opts.Pricing}
	status, values, basis := std.solve(warm, ctl, &stats)
	switch status {
	case Infeasible:
		return &Solution{Status: Infeasible, Stats: stats}, ErrInfeasible
	case Unbounded:
		return &Solution{Status: Unbounded, Stats: stats}, ErrUnbounded
	case statusDeadline:
		return nil, ErrDeadline
	case statusCancelled:
		return nil, ErrCancelled
	case Optimal:
		orig := std.recover(values)
		// Recompute the objective from the original variables so that
		// lower-bound shifts and sense flips cannot skew it.
		obj := 0.0
		for j, v := range p.vars {
			obj += v.cost * orig[j]
		}
		return &Solution{Status: Optimal, Objective: obj, Stats: stats, values: orig, basis: basis}, nil
	default:
		return nil, ErrNumeric
	}
}
