// Package lp implements a dense two-phase primal simplex solver for linear
// programs.
//
// The paper formulates both the siting/provisioning problem and GreenNebula's
// 48-hour workload-partitioning problem as (mixed-integer) linear programs
// and solves them with an off-the-shelf solver.  This package is the
// from-scratch substitute: it supports minimization and maximization,
// less-than, greater-than and equality constraints, variable lower/upper
// bounds, and reports infeasibility and unboundedness.  internal/milp adds
// branch and bound on top for integer variables.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the optimization direction.
type Sense int

// Optimization senses.
const (
	Minimize Sense = iota + 1
	Maximize
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota + 1 // left-hand side ≤ rhs
	GE               // left-hand side ≥ rhs
	EQ               // left-hand side = rhs
)

// String returns the operator symbol.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return "?"
	}
}

// Status describes the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

// String returns a human-readable status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Var is an opaque handle to a decision variable.
type Var int

// Term is one coefficient×variable term of a constraint.
type Term struct {
	Var   Var
	Coeff float64
}

// Infinity marks an unbounded variable upper bound.
var Infinity = math.Inf(1)

// variable holds the model-level description of a decision variable.
type variable struct {
	name string
	lb   float64
	ub   float64
	cost float64
}

// constraint holds one row of the model.
type constraint struct {
	name  string
	terms []Term
	op    Op
	rhs   float64
}

// Problem is a linear program under construction.  It is not safe for
// concurrent mutation.
type Problem struct {
	sense Sense
	vars  []variable
	cons  []constraint
}

// NewProblem returns an empty problem with the given sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// AddVariable adds a decision variable with bounds [lb, ub] (ub may be
// Infinity) and the given objective coefficient, returning its handle.
func (p *Problem) AddVariable(name string, lb, ub, cost float64) (Var, error) {
	if math.IsNaN(lb) || math.IsNaN(ub) || math.IsNaN(cost) {
		return -1, fmt.Errorf("lp: variable %q has NaN bounds or cost", name)
	}
	if ub < lb {
		return -1, fmt.Errorf("lp: variable %q has upper bound %v below lower bound %v", name, ub, lb)
	}
	p.vars = append(p.vars, variable{name: name, lb: lb, ub: ub, cost: cost})
	return Var(len(p.vars) - 1), nil
}

// MustVariable is AddVariable that panics on error; for construction code
// with constant, known-good arguments.
func (p *Problem) MustVariable(name string, lb, ub, cost float64) Var {
	v, err := p.AddVariable(name, lb, ub, cost)
	if err != nil {
		panic(err)
	}
	return v
}

// SetCost overrides the objective coefficient of an existing variable.
func (p *Problem) SetCost(v Var, cost float64) error {
	if int(v) < 0 || int(v) >= len(p.vars) {
		return fmt.Errorf("lp: unknown variable %d", v)
	}
	p.vars[v].cost = cost
	return nil
}

// AddConstraint adds a linear constraint Σ terms (op) rhs.
func (p *Problem) AddConstraint(name string, op Op, rhs float64, terms ...Term) error {
	if op != LE && op != GE && op != EQ {
		return fmt.Errorf("lp: constraint %q has invalid operator", name)
	}
	if math.IsNaN(rhs) {
		return fmt.Errorf("lp: constraint %q has NaN right-hand side", name)
	}
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(p.vars) {
			return fmt.Errorf("lp: constraint %q references unknown variable %d", name, t.Var)
		}
		if math.IsNaN(t.Coeff) {
			return fmt.Errorf("lp: constraint %q has NaN coefficient", name)
		}
	}
	copied := make([]Term, len(terms))
	copy(copied, terms)
	p.cons = append(p.cons, constraint{name: name, terms: copied, op: op, rhs: rhs})
	return nil
}

// NumVariables returns the number of decision variables added so far.
func (p *Problem) NumVariables() int { return len(p.vars) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// Solution is the result of solving a problem.
type Solution struct {
	Status    Status
	Objective float64
	values    []float64
}

// Value returns the optimal value of a variable.
func (s *Solution) Value(v Var) float64 {
	if s == nil || int(v) < 0 || int(v) >= len(s.values) {
		return math.NaN()
	}
	return s.values[v]
}

// Values returns a copy of all variable values in declaration order.
func (s *Solution) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
	ErrNumeric    = errors.New("lp: numerical failure (iteration limit reached)")
)

const (
	epsilon      = 1e-9
	pivotEpsilon = 1e-10
)

// Solve runs the two-phase simplex method.  On success the returned Solution
// has Status Optimal; infeasible and unbounded problems return a Solution
// with the corresponding status together with ErrInfeasible or ErrUnbounded.
func (p *Problem) Solve() (*Solution, error) {
	std, err := p.standardize()
	if err != nil {
		return nil, err
	}
	status, values, obj := std.simplex()
	switch status {
	case Infeasible:
		return &Solution{Status: Infeasible}, ErrInfeasible
	case Unbounded:
		return &Solution{Status: Unbounded}, ErrUnbounded
	case Optimal:
		orig := std.recover(values)
		// Recompute the objective from the original variables so that
		// lower-bound shifts and sense flips cannot skew it.
		obj = 0
		for j, v := range p.vars {
			obj += v.cost * orig[j]
		}
		return &Solution{Status: Optimal, Objective: obj, values: orig}, nil
	default:
		return nil, ErrNumeric
	}
}

// standard is the problem in computational standard form:
// minimize c·y subject to A·y = b, y ≥ 0, b ≥ 0.
type standard struct {
	// a has one row per constraint over nTotal columns (structural +
	// slack/surplus + artificial).
	a [][]float64
	b []float64
	c []float64
	// nStruct is the number of structural (shifted original) columns.
	nStruct int
	// nTotal excludes artificial columns.
	nTotal int
	// artificial[i] is the artificial column for row i, or -1.
	artificial []int
	// shift maps original variable index to its lower bound (y = x − lb).
	shift []float64
	// negPart[j] is the column index of the negative part of original
	// variable j when it is free (split x = x⁺ − x⁻), or -1.
	negPart []int
}

// standardize converts the model into computational standard form.
func (p *Problem) standardize() (*standard, error) {
	n := len(p.vars)
	std := &standard{
		shift:   make([]float64, n),
		negPart: make([]int, n),
	}

	// Structural columns: one per variable, plus one extra per free
	// variable (x = x⁺ − x⁻ when lb = −inf).
	col := 0
	colOf := make([]int, n)
	for j, v := range p.vars {
		colOf[j] = col
		std.negPart[j] = -1
		if math.IsInf(v.lb, -1) {
			std.shift[j] = 0
			col++
			std.negPart[j] = col
			col++
		} else {
			std.shift[j] = v.lb
			col++
		}
	}
	std.nStruct = col

	sign := 1.0
	if p.sense == Maximize {
		sign = -1.0
	}

	// Rows: original constraints plus upper-bound rows.
	type row struct {
		coeffs map[int]float64
		op     Op
		rhs    float64
	}
	rows := make([]row, 0, len(p.cons)+n)
	for _, c := range p.cons {
		r := row{coeffs: make(map[int]float64, len(c.terms)), op: c.op, rhs: c.rhs}
		for _, t := range c.terms {
			j := int(t.Var)
			r.rhs -= t.Coeff * std.shift[j]
			r.coeffs[colOf[j]] += t.Coeff
			if std.negPart[j] >= 0 {
				r.coeffs[std.negPart[j]] -= t.Coeff
			}
		}
		rows = append(rows, r)
	}
	for j, v := range p.vars {
		if math.IsInf(v.ub, 1) {
			continue
		}
		r := row{coeffs: map[int]float64{colOf[j]: 1}, op: LE, rhs: v.ub - std.shift[j]}
		if std.negPart[j] >= 0 {
			r.coeffs[std.negPart[j]] = -1
		}
		rows = append(rows, r)
	}

	m := len(rows)
	// Count slack/surplus columns.
	nSlack := 0
	for _, r := range rows {
		if r.op != EQ {
			nSlack++
		}
	}
	std.nTotal = std.nStruct + nSlack
	totalCols := std.nTotal + m // worst case: one artificial per row

	std.a = make([][]float64, m)
	std.b = make([]float64, m)
	std.c = make([]float64, totalCols)
	std.artificial = make([]int, m)

	// Objective over structural columns.
	for j, v := range p.vars {
		std.c[colOf[j]] = sign * v.cost
		if std.negPart[j] >= 0 {
			std.c[std.negPart[j]] = -sign * v.cost
		}
	}

	slackCol := std.nStruct
	artCol := std.nTotal
	for i, r := range rows {
		std.a[i] = make([]float64, totalCols)
		for cidx, coef := range r.coeffs {
			std.a[i][cidx] = coef
		}
		std.b[i] = r.rhs
		op := r.op
		// Normalize to b ≥ 0.
		if std.b[i] < 0 {
			for j := range std.a[i] {
				std.a[i][j] = -std.a[i][j]
			}
			std.b[i] = -std.b[i]
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		switch op {
		case LE:
			std.a[i][slackCol] = 1
			std.artificial[i] = -1
			// The slack itself can serve as the initial basic variable.
			slackCol++
		case GE:
			std.a[i][slackCol] = -1
			slackCol++
			std.a[i][artCol] = 1
			std.artificial[i] = artCol
			artCol++
		case EQ:
			std.a[i][artCol] = 1
			std.artificial[i] = artCol
			artCol++
		}
	}
	// Trim unused artificial columns.
	used := artCol
	for i := range std.a {
		std.a[i] = std.a[i][:used]
	}
	std.c = std.c[:used]
	return std, nil
}

// simplex runs phase 1 (if artificials exist) and phase 2 on the standard
// form, returning the status, the values of all standard-form columns, and
// the phase-2 objective.
func (s *standard) simplex() (Status, []float64, float64) {
	m := len(s.a)
	totalCols := 0
	if m > 0 {
		totalCols = len(s.a[0])
	} else {
		totalCols = len(s.c)
	}
	basis := make([]int, m)

	// Initial basis: slack where available, artificial otherwise.
	for i := 0; i < m; i++ {
		if s.artificial[i] >= 0 {
			basis[i] = s.artificial[i]
			continue
		}
		// Find the slack column of this row: the column in
		// [nStruct, nTotal) with coefficient +1 and zeros elsewhere in
		// that column is guaranteed by construction; locate it.
		basis[i] = -1
		for j := s.nStruct; j < s.nTotal; j++ {
			if s.a[i][j] == 1 {
				// Ensure this slack belongs to row i alone.
				unique := true
				for k := 0; k < m; k++ {
					if k != i && s.a[k][j] != 0 {
						unique = false
						break
					}
				}
				if unique {
					basis[i] = j
					break
				}
			}
		}
		if basis[i] == -1 {
			// Should not happen by construction; fall back to an artificial.
			basis[i] = s.artificial[i]
		}
	}

	// Tableau: copy of A and b that will be pivoted in place.
	tab := make([][]float64, m)
	for i := range tab {
		tab[i] = make([]float64, totalCols)
		copy(tab[i], s.a[i])
	}
	rhs := make([]float64, m)
	copy(rhs, s.b)

	hasArtificial := false
	for i := range s.artificial {
		if s.artificial[i] >= 0 {
			hasArtificial = true
			break
		}
	}

	if hasArtificial {
		// Phase 1: minimize the sum of artificial variables.  Artificial
		// columns start as basic unit vectors and, once driven out, are never
		// allowed to re-enter, so pricing and pivoting can stop at nTotal in
		// phase 1 too — the artificial block's tableau entries go stale but
		// are never read again (only the basis bookkeeping references the
		// column indices).  Restricting the entering candidates this way is
		// the classic "drop departed artificials" rule: any feasible point
		// has every artificial at zero, so the restricted phase-1 optimum
		// still reaches zero exactly when the problem is feasible.
		phase1Cost := make([]float64, totalCols)
		for i := range s.artificial {
			if s.artificial[i] >= 0 {
				phase1Cost[s.artificial[i]] = 1
			}
		}
		status, obj := runSimplex(tab, rhs, basis, phase1Cost, s.nTotal)
		if status != Optimal {
			return Infeasible, nil, 0
		}
		if obj > 1e-6 {
			return Infeasible, nil, 0
		}
		// Drive any artificial still in the basis out of it (degenerate rows).
		for i := 0; i < m; i++ {
			if !isArtificialCol(s, basis[i]) {
				continue
			}
			pivoted := false
			for j := 0; j < s.nTotal; j++ {
				if math.Abs(tab[i][j]) > pivotEpsilon {
					pivot(tab, rhs, basis, i, j, s.nTotal)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// The row is redundant; leave the artificial basic at zero.
				continue
			}
		}
	}

	// Phase 2: original objective.  Artificial columns can never enter and
	// are never read again, so pricing and pivoting stop at nTotal — their
	// tableau entries go stale, which is ~30% less work per iteration on
	// constraint-heavy problems like the scheduler's partition LP.
	status, obj := runSimplex(tab, rhs, basis, s.c, s.nTotal)
	if status != Optimal {
		return status, nil, 0
	}

	values := make([]float64, totalCols)
	for i, bi := range basis {
		if bi >= 0 && bi < totalCols {
			values[bi] = rhs[i]
		}
	}
	return Optimal, values, obj
}

func isArtificialCol(s *standard, col int) bool { return col >= s.nTotal }

// runSimplex performs primal simplex iterations on the tableau in place with
// the given objective, returning the status and the objective value.  Only
// the first nPrice columns are priced, eligible to enter, and updated by
// pivots; columns beyond nPrice (the artificial block) go stale and must not
// be read by the caller afterwards.
//
// The reduced-cost row is maintained incrementally: a pivot on (r, q)
// updates it in O(nPrice) (red'_j = red_j − red_q · tab'[r][j], the same
// elimination the tableau rows undergo) instead of recomputing the simplex
// multipliers against every row, which halves the per-iteration work on
// constraint-heavy problems like the scheduler's partition LP.  The
// maintained row only nominates the entering column; before pivoting, the
// nominee's reduced cost is recomputed exactly in O(m), and a nominee whose
// exact reduced cost is not negative exposes drift, triggering a full exact
// rebuild and a re-pick.  Every pivot therefore enters a genuinely improving
// column — drift can cost a recomputation, never a junk pivot — and the row
// is also rebuilt every refreshEvery pivots, whenever Bland's anti-cycling
// rule is active, and before declaring optimality.
func runSimplex(tab [][]float64, rhs []float64, basis []int, cost []float64, nPrice int) (Status, float64) {
	m := len(tab)
	if m == 0 {
		// No rows: every standard-form variable is only bounded below by
		// zero, so any negative cost direction is unbounded.
		for j := 0; j < nPrice && j < len(cost); j++ {
			if cost[j] < -epsilon {
				return Unbounded, 0
			}
		}
		return Optimal, 0
	}
	n := len(tab[0])
	maxIter := 30 * (m + n)
	if maxIter < 2000 {
		maxIter = 2000
	}
	// Dantzig's rule stalls on highly degenerate provisioning LPs; switch to
	// Bland's rule (which cannot cycle) once the iteration count suggests
	// stalling.
	blandAfter := 4 * (m + n)
	const refreshEvery = 64

	reduced := make([]float64, nPrice)
	// basic[j] marks columns currently in the basis, maintained across
	// pivots so entering-column selection does not rescan the basis per
	// column (an O(m·n) cost per iteration on large tableaus).  Sized to
	// the full width because bases can still hold artificial columns pinned
	// at zero by degenerate rows.
	basic := make([]bool, n)
	for _, b := range basis {
		basic[b] = true
	}

	// recompute rebuilds the reduced-cost row exactly: because the tableau
	// is kept in canonical form (basis columns are unit vectors), the
	// reduced cost of column j is cost[j] − Σ_i cost[basis[i]]·tab[i][j].
	// Accumulating row-by-row keeps the memory access sequential (the
	// tableau is row-major).
	recompute := func() {
		copy(reduced, cost[:nPrice])
		for i := 0; i < m; i++ {
			yi := cost[basis[i]]
			if yi == 0 {
				continue
			}
			row := tab[i][:nPrice]
			for j, a := range row {
				if a != 0 {
					reduced[j] -= yi * a
				}
			}
		}
	}
	recompute()
	stale := 0

	pickEntering := func(useBland bool) int {
		entering := -1
		best := -epsilon
		for j := 0; j < nPrice; j++ {
			if basic[j] {
				continue
			}
			r := reduced[j]
			if useBland {
				if r < -epsilon {
					return j
				}
			} else if r < best {
				best = r
				entering = j
			}
		}
		return entering
	}

	// exactReduced recomputes one column's reduced cost from scratch.
	exactReduced := func(j int) float64 {
		r := cost[j]
		for i := 0; i < m; i++ {
			yi := cost[basis[i]]
			if yi == 0 {
				continue
			}
			if a := tab[i][j]; a != 0 {
				r -= yi * a
			}
		}
		return r
	}

	for iter := 0; iter < maxIter; iter++ {
		useBland := iter > blandAfter
		if stale >= refreshEvery || (useBland && stale > 0) {
			recompute()
			stale = 0
		}
		entering := pickEntering(useBland)
		if entering >= 0 && stale > 0 {
			// Verify the nominee exactly; drift in the maintained row may
			// have promoted a non-improving column, and pivoting on one can
			// wander off the optimal path or amplify rounding error.
			exact := exactReduced(entering)
			if exact < -epsilon {
				reduced[entering] = exact
			} else {
				recompute()
				stale = 0
				entering = pickEntering(useBland)
			}
		}
		if entering == -1 && stale > 0 {
			// The maintained row says optimal; confirm against an exact
			// recomputation before declaring victory, so drift can delay
			// convergence but never fake it.
			recompute()
			stale = 0
			entering = pickEntering(useBland)
		}
		if entering == -1 {
			// Optimal: compute objective.
			obj := 0.0
			for i := 0; i < m; i++ {
				obj += cost[basis[i]] * rhs[i]
			}
			return Optimal, obj
		}

		// Ratio test.
		leaving := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][entering] > pivotEpsilon {
				ratio := rhs[i] / tab[i][entering]
				if ratio < bestRatio-epsilon ||
					(math.Abs(ratio-bestRatio) <= epsilon && (leaving == -1 || basis[i] < basis[leaving])) {
					bestRatio = ratio
					leaving = i
				}
			}
		}
		if leaving == -1 {
			return Unbounded, 0
		}
		basic[basis[leaving]] = false
		basic[entering] = true
		pivot(tab, rhs, basis, leaving, entering, nPrice)
		// Apply the same elimination to the reduced-cost row, using the
		// already-normalized pivot row.
		rq := reduced[entering]
		if rq != 0 {
			row := tab[leaving][:nPrice]
			for j, v := range row {
				if v != 0 {
					reduced[j] -= rq * v
				}
			}
		}
		reduced[entering] = 0
		stale++
	}
	// Iteration limit: report unbounded-like numeric trouble as infeasible
	// conservatively; callers treat any non-optimal status as failure.
	return Infeasible, 0
}

// pivot performs a Gauss-Jordan pivot on (row, col), updating only the
// first width columns.
func pivot(tab [][]float64, rhs []float64, basis []int, row, col, width int) {
	m := len(tab)
	pv := tab[row][col]
	inv := 1 / pv
	rowR := tab[row][:width]
	for j := range rowR {
		rowR[j] *= inv
	}
	rhs[row] *= inv
	rowR[col] = 1 // avoid drift
	for i := 0; i < m; i++ {
		if i == row {
			continue
		}
		factor := tab[i][col]
		if factor == 0 {
			continue
		}
		rowI := tab[i][:width]
		// Skipping zero pivot-row entries is bit-identical (x −= f·0 is a
		// no-op) and the slack/artificial block keeps the row sparse.
		for j, v := range rowR {
			if v != 0 {
				rowI[j] -= factor * v
			}
		}
		rowI[col] = 0
		rhs[i] -= factor * rhs[row]
		if rhs[i] < 0 && rhs[i] > -1e-11 {
			rhs[i] = 0
		}
	}
	basis[row] = col
}

// recover maps standard-form column values back to the original variables.
func (s *standard) recover(values []float64) []float64 {
	out := make([]float64, len(s.shift))
	col := 0
	for j := range s.shift {
		v := values[col]
		col++
		if s.negPart[j] >= 0 {
			v -= values[s.negPart[j]]
			col++
		}
		out[j] = v + s.shift[j]
	}
	return out
}
