package lp

// This file preserves the pre-refactor dense-tableau two-phase simplex as a
// test-only reference implementation.  The revised-simplex production core
// (standard.go, lu.go, revised.go) is pinned against it by the differential
// test in differential_test.go: same Status on every randomized problem,
// same optimal objective within 1e-9 on the feasible ones.  It is a frozen
// copy of the solver that shipped through PR 3 — do not "improve" it; its
// only job is to disagree loudly when the revised core drifts.

import "math"

// denseStandard is the dense standard form: minimize c·y s.t. A·y = b,
// y ≥ 0, b ≥ 0, with A one dense row per constraint.
type denseStandard struct {
	a          [][]float64
	b          []float64
	c          []float64
	nStruct    int
	nTotal     int
	artificial []int
	shift      []float64
	negPart    []int
}

// denseSolve is the reference Solve: identical model semantics, dense
// tableau internals.
func denseSolve(p *Problem) (*Solution, error) {
	std := p.denseStandardize()
	status, values, _ := std.simplex()
	switch status {
	case Infeasible:
		return &Solution{Status: Infeasible}, ErrInfeasible
	case Unbounded:
		return &Solution{Status: Unbounded}, ErrUnbounded
	case Optimal:
		orig := std.recover(values)
		obj := 0.0
		for j, v := range p.vars {
			obj += v.cost * orig[j]
		}
		return &Solution{Status: Optimal, Objective: obj, values: orig}, nil
	default:
		return nil, ErrNumeric
	}
}

func (p *Problem) denseStandardize() *denseStandard {
	n := len(p.vars)
	std := &denseStandard{
		shift:   make([]float64, n),
		negPart: make([]int, n),
	}

	col := 0
	colOf := make([]int, n)
	for j, v := range p.vars {
		colOf[j] = col
		std.negPart[j] = -1
		if math.IsInf(v.lb, -1) {
			std.shift[j] = 0
			col++
			std.negPart[j] = col
			col++
		} else {
			std.shift[j] = v.lb
			col++
		}
	}
	std.nStruct = col

	sign := 1.0
	if p.sense == Maximize {
		sign = -1.0
	}

	type row struct {
		coeffs map[int]float64
		op     Op
		rhs    float64
	}
	rows := make([]row, 0, len(p.cons)+n)
	for _, c := range p.cons {
		r := row{coeffs: make(map[int]float64, len(c.terms)), op: c.op, rhs: c.rhs}
		for _, t := range c.terms {
			j := int(t.Var)
			r.rhs -= t.Coeff * std.shift[j]
			r.coeffs[colOf[j]] += t.Coeff
			if std.negPart[j] >= 0 {
				r.coeffs[std.negPart[j]] -= t.Coeff
			}
		}
		rows = append(rows, r)
	}
	for j, v := range p.vars {
		if math.IsInf(v.ub, 1) {
			continue
		}
		r := row{coeffs: map[int]float64{colOf[j]: 1}, op: LE, rhs: v.ub - std.shift[j]}
		if std.negPart[j] >= 0 {
			r.coeffs[std.negPart[j]] = -1
		}
		rows = append(rows, r)
	}

	m := len(rows)
	nSlack := 0
	for _, r := range rows {
		if r.op != EQ {
			nSlack++
		}
	}
	std.nTotal = std.nStruct + nSlack
	totalCols := std.nTotal + m

	std.a = make([][]float64, m)
	std.b = make([]float64, m)
	std.c = make([]float64, totalCols)
	std.artificial = make([]int, m)

	for j, v := range p.vars {
		std.c[colOf[j]] = sign * v.cost
		if std.negPart[j] >= 0 {
			std.c[std.negPart[j]] = -sign * v.cost
		}
	}

	slackCol := std.nStruct
	artCol := std.nTotal
	for i, r := range rows {
		std.a[i] = make([]float64, totalCols)
		for cidx, coef := range r.coeffs {
			std.a[i][cidx] = coef
		}
		std.b[i] = r.rhs
		op := r.op
		if std.b[i] < 0 {
			for j := range std.a[i] {
				std.a[i][j] = -std.a[i][j]
			}
			std.b[i] = -std.b[i]
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		switch op {
		case LE:
			std.a[i][slackCol] = 1
			std.artificial[i] = -1
			slackCol++
		case GE:
			std.a[i][slackCol] = -1
			slackCol++
			std.a[i][artCol] = 1
			std.artificial[i] = artCol
			artCol++
		case EQ:
			std.a[i][artCol] = 1
			std.artificial[i] = artCol
			artCol++
		}
	}
	used := artCol
	for i := range std.a {
		std.a[i] = std.a[i][:used]
	}
	std.c = std.c[:used]
	return std
}

func (s *denseStandard) simplex() (Status, []float64, float64) {
	m := len(s.a)
	totalCols := 0
	if m > 0 {
		totalCols = len(s.a[0])
	} else {
		totalCols = len(s.c)
	}
	basis := make([]int, m)

	for i := 0; i < m; i++ {
		if s.artificial[i] >= 0 {
			basis[i] = s.artificial[i]
			continue
		}
		basis[i] = -1
		for j := s.nStruct; j < s.nTotal; j++ {
			if s.a[i][j] == 1 {
				unique := true
				for k := 0; k < m; k++ {
					if k != i && s.a[k][j] != 0 {
						unique = false
						break
					}
				}
				if unique {
					basis[i] = j
					break
				}
			}
		}
		if basis[i] == -1 {
			basis[i] = s.artificial[i]
		}
	}

	tab := make([][]float64, m)
	for i := range tab {
		tab[i] = make([]float64, totalCols)
		copy(tab[i], s.a[i])
	}
	rhs := make([]float64, m)
	copy(rhs, s.b)

	hasArtificial := false
	for i := range s.artificial {
		if s.artificial[i] >= 0 {
			hasArtificial = true
			break
		}
	}

	if hasArtificial {
		phase1Cost := make([]float64, totalCols)
		for i := range s.artificial {
			if s.artificial[i] >= 0 {
				phase1Cost[s.artificial[i]] = 1
			}
		}
		status, obj := denseRunSimplex(tab, rhs, basis, phase1Cost, s.nTotal)
		if status != Optimal {
			return Infeasible, nil, 0
		}
		if obj > 1e-6 {
			return Infeasible, nil, 0
		}
		for i := 0; i < m; i++ {
			if basis[i] < s.nTotal {
				continue
			}
			for j := 0; j < s.nTotal; j++ {
				if math.Abs(tab[i][j]) > pivotEpsilon {
					densePivot(tab, rhs, basis, i, j, s.nTotal)
					break
				}
			}
		}
	}

	status, obj := denseRunSimplex(tab, rhs, basis, s.c, s.nTotal)
	if status != Optimal {
		return status, nil, 0
	}

	values := make([]float64, totalCols)
	for i, bi := range basis {
		if bi >= 0 && bi < totalCols {
			values[bi] = rhs[i]
		}
	}
	return Optimal, values, obj
}

func denseRunSimplex(tab [][]float64, rhs []float64, basis []int, cost []float64, nPrice int) (Status, float64) {
	m := len(tab)
	if m == 0 {
		for j := 0; j < nPrice && j < len(cost); j++ {
			if cost[j] < -epsilon {
				return Unbounded, 0
			}
		}
		return Optimal, 0
	}
	n := len(tab[0])
	maxIter := 30 * (m + n)
	if maxIter < 2000 {
		maxIter = 2000
	}
	blandAfter := 4 * (m + n)
	const refresh = 64

	reduced := make([]float64, nPrice)
	basic := make([]bool, n)
	for _, b := range basis {
		basic[b] = true
	}

	recompute := func() {
		copy(reduced, cost[:nPrice])
		for i := 0; i < m; i++ {
			yi := cost[basis[i]]
			if yi == 0 {
				continue
			}
			row := tab[i][:nPrice]
			for j, a := range row {
				if a != 0 {
					reduced[j] -= yi * a
				}
			}
		}
	}
	recompute()
	stale := 0

	pickEntering := func(useBland bool) int {
		entering := -1
		best := -epsilon
		for j := 0; j < nPrice; j++ {
			if basic[j] {
				continue
			}
			r := reduced[j]
			if useBland {
				if r < -epsilon {
					return j
				}
			} else if r < best {
				best = r
				entering = j
			}
		}
		return entering
	}

	exactReduced := func(j int) float64 {
		r := cost[j]
		for i := 0; i < m; i++ {
			yi := cost[basis[i]]
			if yi == 0 {
				continue
			}
			if a := tab[i][j]; a != 0 {
				r -= yi * a
			}
		}
		return r
	}

	for iter := 0; iter < maxIter; iter++ {
		useBland := iter > blandAfter
		if stale >= refresh || (useBland && stale > 0) {
			recompute()
			stale = 0
		}
		entering := pickEntering(useBland)
		if entering >= 0 && stale > 0 {
			exact := exactReduced(entering)
			if exact < -epsilon {
				reduced[entering] = exact
			} else {
				recompute()
				stale = 0
				entering = pickEntering(useBland)
			}
		}
		if entering == -1 && stale > 0 {
			recompute()
			stale = 0
			entering = pickEntering(useBland)
		}
		if entering == -1 {
			obj := 0.0
			for i := 0; i < m; i++ {
				obj += cost[basis[i]] * rhs[i]
			}
			return Optimal, obj
		}

		leaving := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][entering] > pivotEpsilon {
				ratio := rhs[i] / tab[i][entering]
				if ratio < bestRatio-epsilon ||
					(math.Abs(ratio-bestRatio) <= epsilon && (leaving == -1 || basis[i] < basis[leaving])) {
					bestRatio = ratio
					leaving = i
				}
			}
		}
		if leaving == -1 {
			return Unbounded, 0
		}
		basic[basis[leaving]] = false
		basic[entering] = true
		densePivot(tab, rhs, basis, leaving, entering, nPrice)
		rq := reduced[entering]
		if rq != 0 {
			row := tab[leaving][:nPrice]
			for j, v := range row {
				if v != 0 {
					reduced[j] -= rq * v
				}
			}
		}
		reduced[entering] = 0
		stale++
	}
	return Infeasible, 0
}

func densePivot(tab [][]float64, rhs []float64, basis []int, row, col, width int) {
	m := len(tab)
	pv := tab[row][col]
	inv := 1 / pv
	rowR := tab[row][:width]
	for j := range rowR {
		rowR[j] *= inv
	}
	rhs[row] *= inv
	rowR[col] = 1
	for i := 0; i < m; i++ {
		if i == row {
			continue
		}
		factor := tab[i][col]
		if factor == 0 {
			continue
		}
		rowI := tab[i][:width]
		for j, v := range rowR {
			if v != 0 {
				rowI[j] -= factor * v
			}
		}
		rowI[col] = 0
		rhs[i] -= factor * rhs[row]
		if rhs[i] < 0 && rhs[i] > -1e-11 {
			rhs[i] = 0
		}
	}
	basis[row] = col
}

func (s *denseStandard) recover(values []float64) []float64 {
	out := make([]float64, len(s.shift))
	col := 0
	for j := range s.shift {
		v := values[col]
		col++
		if s.negPart[j] >= 0 {
			v -= values[s.negPart[j]]
			col++
		}
		out[j] = v + s.shift[j]
	}
	return out
}
