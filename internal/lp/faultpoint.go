package lp

import (
	"sync"
	"sync/atomic"
)

// Deterministic fault injection for the recovery-ladder tests.
//
// A FaultPoint names a place inside the solver where a failure can be forced:
// the LU factorization can be declared singular, a freshly pushed eta term
// can be corrupted, an FTRAN column can be poisoned with NaN, the
// deadline/cancellation check can be tripped at an exact pivot count, and the
// degenerate-stall detector can be forced to fire.  Tests arm a point with
// ArmFault (optionally skipping the first hits so the fault lands mid-solve)
// and the solver consumes the armed budget as it passes the point, so every
// rung of the recovery ladder is driven by a real injected fault instead of a
// hand-built pathological LP.
//
// When nothing is armed the solver pays one atomic load per guarded site and
// takes none of the fault branches, so production behavior is untouched.
type FaultPoint string

// Named failure points.
const (
	// FaultSingularLU makes the next basis factorization report a singular
	// matrix (the pivot search finds no eligible pivot at the first step).
	FaultSingularLU FaultPoint = "lu-singular"
	// FaultCorruptEta zeroes the pivot entry of the next eta vector pushed,
	// so a later FTRAN through it produces Inf/NaN.
	FaultCorruptEta FaultPoint = "eta-corrupt"
	// FaultPoisonPivot writes NaN into the next FTRAN column.
	FaultPoisonPivot FaultPoint = "pivot-nan"
	// FaultExpireDeadline trips the deadline check at the pivot it fires on,
	// regardless of the wall clock.
	FaultExpireDeadline FaultPoint = "deadline-at-pivot"
	// FaultForceStall makes the degenerate-stall detector see a full stall at
	// the pivot it fires on, forcing the switch to Bland's rule.
	FaultForceStall FaultPoint = "pricing-stall"
)

type faultArm struct {
	skip      int // hits to pass through before firing
	remaining int // fires left
}

var (
	faultMu   sync.Mutex
	faultArms map[FaultPoint]*faultArm
	// faultsOn is the fast-path gate: hot loops load it once and skip the
	// mutex entirely while no fault is armed.
	faultsOn atomic.Bool
)

// ArmFault schedules the named point to fire count times after letting its
// first skip hits pass through untouched.  Arming replaces any previous arm
// of the same point.  Tests must pair every ArmFault with DisarmFaults.
func ArmFault(p FaultPoint, skip, count int) {
	faultMu.Lock()
	defer faultMu.Unlock()
	if faultArms == nil {
		faultArms = make(map[FaultPoint]*faultArm)
	}
	if count <= 0 {
		delete(faultArms, p)
	} else {
		faultArms[p] = &faultArm{skip: skip, remaining: count}
	}
	faultsOn.Store(len(faultArms) > 0)
}

// DisarmFaults clears every armed fault point.
func DisarmFaults() {
	faultMu.Lock()
	defer faultMu.Unlock()
	faultArms = nil
	faultsOn.Store(false)
}

// faultFires reports whether the named point fires at this hit, consuming
// one unit of the armed skip/count budget.
func faultFires(p FaultPoint) bool {
	if !faultsOn.Load() {
		return false
	}
	faultMu.Lock()
	defer faultMu.Unlock()
	a := faultArms[p]
	if a == nil {
		return false
	}
	if a.skip > 0 {
		a.skip--
		return false
	}
	a.remaining--
	if a.remaining <= 0 {
		delete(faultArms, p)
		faultsOn.Store(len(faultArms) > 0)
	}
	return true
}
