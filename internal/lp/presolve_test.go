package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// solveBoth solves p presolve-on and presolve-off and returns both results.
func solveBoth(t *testing.T, p *Problem) (on, off *Solution, errOn, errOff error) {
	t.Helper()
	on, errOn = p.SolveWithOptions(SolveOptions{})
	off, errOff = p.SolveWithOptions(SolveOptions{Presolve: PresolveOff})
	return
}

// TestPresolveEmptyProblem pins the degenerate extremes: a model with no
// variables and no constraints, and one with variables but no constraints.
func TestPresolveEmptyProblem(t *testing.T) {
	p := NewProblem(Minimize)
	sol, err := p.Solve()
	if err != nil || sol.Status != Optimal || sol.Objective != 0 {
		t.Fatalf("empty problem: sol=%+v err=%v, want Optimal 0", sol, err)
	}

	p = NewProblem(Minimize)
	x := p.MustVariable("x", 1, 5, 2)
	y := p.MustVariable("y", -3, 4, -1)
	sol, err = p.Solve()
	if err != nil {
		t.Fatalf("constraint-free problem: %v", err)
	}
	if sol.Stats.ColsRemoved != 2 {
		t.Errorf("ColsRemoved = %d, want 2 (both zero columns)", sol.Stats.ColsRemoved)
	}
	if got, want := sol.Value(x), 1.0; got != want {
		t.Errorf("x = %v, want %v", got, want)
	}
	if got, want := sol.Value(y), 4.0; got != want {
		t.Errorf("y = %v, want %v", got, want)
	}
	if want := 2*1.0 - 4.0; !almostEqual(sol.Objective, want, 1e-12) {
		t.Errorf("objective = %v, want %v", sol.Objective, want)
	}
}

// TestPresolveContradictorySingletons pins infeasibility detection inside
// presolve: two singleton rows that bound one variable from opposite sides
// with no overlap must return Infeasible without running the simplex, and
// must agree with the presolve-off status.
func TestPresolveContradictorySingletons(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.MustVariable("x", 0, 100, 1)
	if err := p.AddConstraint("ge5", GE, 5, Term{x, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("le3", LE, 3, Term{x, 1}); err != nil {
		t.Fatal(err)
	}
	on, off, errOn, errOff := solveBoth(t, p)
	if !errors.Is(errOn, ErrInfeasible) || on.Status != Infeasible {
		t.Fatalf("presolve-on: status=%v err=%v, want Infeasible", on.Status, errOn)
	}
	if !errors.Is(errOff, ErrInfeasible) || off.Status != Infeasible {
		t.Fatalf("presolve-off: status=%v err=%v, want Infeasible", off.Status, errOff)
	}
	if on.Stats.Pivots != 0 || on.Stats.Refactorizations != 0 {
		t.Errorf("presolve-on ran the simplex (%+v); infeasibility should be detected in presolve", on.Stats)
	}
}

// TestPresolveAllColumnsFixed pins models whose every column is fixed: the
// whole model presolves away (feasible case), or the substituted rows
// contradict their right-hand sides (infeasible case).
func TestPresolveAllColumnsFixed(t *testing.T) {
	build := func(rhs float64) (*Problem, Var, Var) {
		p := NewProblem(Maximize)
		x := p.MustVariable("x", 2, 2, 3)
		y := p.MustVariable("y", -1, -1, 5)
		if err := p.AddConstraint("sum", LE, rhs, Term{x, 1}, Term{y, 1}); err != nil {
			t.Fatal(err)
		}
		return p, x, y
	}

	p, x, y := build(10) // 2 + (−1) = 1 ≤ 10: feasible
	sol, err := p.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("fixed feasible: sol=%+v err=%v", sol, err)
	}
	if sol.Value(x) != 2 || sol.Value(y) != -1 {
		t.Errorf("values (%v, %v), want (2, -1)", sol.Value(x), sol.Value(y))
	}
	if want := 3.0*2 + 5.0*(-1); !almostEqual(sol.Objective, want, 1e-12) {
		t.Errorf("objective = %v, want %v", sol.Objective, want)
	}
	if sol.Stats.RowsRemoved != 1 || sol.Stats.ColsRemoved != 2 {
		t.Errorf("removed %d rows / %d cols, want 1 / 2", sol.Stats.RowsRemoved, sol.Stats.ColsRemoved)
	}
	// The captured basis must still warm-start a presolve-off re-solve.
	if basis := sol.Basis(); basis == nil {
		t.Error("no basis captured from the fully-presolved solve")
	} else {
		warm, errW := p.SolveFromWithOptions(basis, SolveOptions{Presolve: PresolveOff})
		if errW != nil || warm.Status != Optimal {
			t.Fatalf("warm presolve-off re-solve: %+v err=%v", warm, errW)
		}
		if warm.Stats.ColdFallbacks != 0 {
			t.Errorf("warm re-solve fell back cold (%+v)", warm.Stats)
		}
	}

	p, _, _ = build(0) // 1 ≤ 0: infeasible after substitution
	on, off, errOn, errOff := solveBoth(t, p)
	if !errors.Is(errOn, ErrInfeasible) || on.Status != Infeasible {
		t.Fatalf("presolve-on: status=%v err=%v, want Infeasible", on.Status, errOn)
	}
	if !errors.Is(errOff, ErrInfeasible) || off.Status != Infeasible {
		t.Fatalf("presolve-off: status=%v err=%v, want Infeasible", off.Status, errOff)
	}
}

// TestPresolveReductions drives every reduction once on a crafted model and
// checks the reduced counts, the exact optimum and model feasibility of the
// postsolved point.
func TestPresolveReductions(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.MustVariable("x", 0, 10, 1)                     // singleton row tightens ub
	f := p.MustVariable("f", 4, 4, 2)                      // fixed: substituted
	z := p.MustVariable("z", 0, 3, 5)                      // zero column: no rows
	w := p.MustVariable("w", math.Inf(-1), math.Inf(1), 1) // free singleton in EQ row
	d1 := p.MustVariable("d1", 0, 2, 1)                    // duplicate pair
	d2 := p.MustVariable("d2", 0, 3, 1)
	if err := p.AddConstraint("sing", LE, 6, Term{x, 2}); err != nil { // x ≤ 3
		t.Fatal(err)
	}
	if err := p.AddConstraint("redundant", LE, 100, Term{x, 1}, Term{f, 1}, Term{d1, 1}, Term{d2, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("freerow", EQ, 7, Term{w, 1}, Term{x, 1}, Term{f, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("dup", GE, 4, Term{d1, 1}, Term{d2, 1}); err != nil {
		t.Fatal(err)
	}

	on, off, errOn, errOff := solveBoth(t, p)
	if errOn != nil || errOff != nil {
		t.Fatalf("errs: on=%v off=%v", errOn, errOff)
	}
	if on.Status != Optimal || off.Status != Optimal {
		t.Fatalf("status on=%v off=%v", on.Status, off.Status)
	}
	if !almostEqual(on.Objective, off.Objective, 1e-9*(1+math.Abs(off.Objective))) {
		t.Fatalf("objective on=%v off=%v", on.Objective, off.Objective)
	}
	// Everything presolves away: sing folds into x's bound, f substitutes,
	// z parks at its cheap bound, (w, freerow) eliminate, d2 merges into d1,
	// redundant drops, dup forces nothing but stays solvable... by the time
	// the dup row's bound folds the model is rowless.
	if on.Stats.Pivots != 0 {
		t.Errorf("presolve-on still pivoted %d times (%+v)", on.Stats.Pivots, on.Stats)
	}
	if on.Stats.RowsRemoved != p.NumConstraints() {
		t.Errorf("RowsRemoved = %d, want %d", on.Stats.RowsRemoved, p.NumConstraints())
	}
	if on.Stats.ColsRemoved != p.NumVariables() {
		t.Errorf("ColsRemoved = %d, want %d", on.Stats.ColsRemoved, p.NumVariables())
	}
	checkModelFeasible(t, 0, p, on)
	// Spot-check the optimum: x=0 (cost 1 ≥ 0), f=4 fixed, z=0,
	// w = 7 − x − f = 3, d1+d2 = 4 at cost 1 each.
	if on.Value(f) != 4 || on.Value(z) != 0 {
		t.Errorf("f=%v z=%v, want 4, 0", on.Value(f), on.Value(z))
	}
	if got := on.Value(w); !almostEqual(got, 7-on.Value(x)-4, 1e-9) {
		t.Errorf("w = %v does not satisfy its eliminated row", got)
	}
	if got := on.Value(d1) + on.Value(d2); !almostEqual(got, 4, 1e-9) {
		t.Errorf("d1+d2 = %v, want 4", got)
	}
	_ = x
}

// TestPresolveForcingRow pins forcing-row detection: a row whose minimum
// achievable activity equals its right-hand side pins every variable.
func TestPresolveForcingRow(t *testing.T) {
	p := NewProblem(Minimize)
	a := p.MustVariable("a", 1, 5, -1) // cost would prefer a=5…
	b := p.MustVariable("b", 2, 9, -1)
	// a + b ≤ 3 with min activity 1+2 = 3: forcing, a=1 and b=2.
	if err := p.AddConstraint("force", LE, 3, Term{a, 1}, Term{b, 1}); err != nil {
		t.Fatal(err)
	}
	on, off, errOn, errOff := solveBoth(t, p)
	if errOn != nil || errOff != nil {
		t.Fatalf("errs: on=%v off=%v", errOn, errOff)
	}
	if on.Value(a) != 1 || on.Value(b) != 2 {
		t.Errorf("forced values (%v, %v), want (1, 2)", on.Value(a), on.Value(b))
	}
	if !almostEqual(on.Objective, off.Objective, 1e-9) {
		t.Errorf("objective on=%v off=%v", on.Objective, off.Objective)
	}
	if on.Stats.RowsRemoved != 1 || on.Stats.ColsRemoved != 2 {
		t.Errorf("removed %d rows / %d cols, want 1 / 2", on.Stats.RowsRemoved, on.Stats.ColsRemoved)
	}
	// Just-infeasible variant: min activity 3 > rhs 2.9.
	p2 := NewProblem(Minimize)
	a2 := p2.MustVariable("a", 1, 5, -1)
	b2 := p2.MustVariable("b", 2, 9, -1)
	if err := p2.AddConstraint("force", LE, 2.9, Term{a2, 1}, Term{b2, 1}); err != nil {
		t.Fatal(err)
	}
	on2, off2, errOn2, errOff2 := solveBoth(t, p2)
	if !errors.Is(errOn2, ErrInfeasible) || !errors.Is(errOff2, ErrInfeasible) {
		t.Fatalf("want Infeasible/Infeasible, got on=%v(%v) off=%v(%v)",
			on2.Status, errOn2, off2.Status, errOff2)
	}
}

// TestPresolveDifferential is the presolve extension of the differential
// suite: 600 random LPs across the shaped, bound-heavy and degenerate
// families, each solved presolve-on and presolve-off, requiring identical
// statuses, objectives within 1e-9 and a model-feasible postsolved point.
func TestPresolveDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(271828))
	statuses := map[Status]int{}
	removedRows, removedCols := 0, 0
	for trial := 0; trial < 600; trial++ {
		p := drawDifferentialProblem(rng, trial)
		on, errOn := p.SolveWithOptions(SolveOptions{})
		off, errOff := p.SolveWithOptions(SolveOptions{Presolve: PresolveOff})
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("trial %d: presolve-on err %v, presolve-off err %v", trial, errOn, errOff)
		}
		if on == nil || off == nil {
			t.Fatalf("trial %d: nil solution (on=%v off=%v)", trial, errOn, errOff)
		}
		if on.Status != off.Status {
			t.Fatalf("trial %d: presolve-on %v, presolve-off %v", trial, on.Status, off.Status)
		}
		statuses[on.Status]++
		removedRows += on.Stats.RowsRemoved
		removedCols += on.Stats.ColsRemoved
		if on.Status != Optimal {
			continue
		}
		tol := 1e-9 * (1 + math.Abs(off.Objective))
		if !almostEqual(on.Objective, off.Objective, tol) {
			t.Fatalf("trial %d: objective %v presolve-on vs %v presolve-off",
				trial, on.Objective, off.Objective)
		}
		checkModelFeasible(t, trial, p, on)
	}
	if statuses[Optimal] == 0 || statuses[Infeasible] == 0 {
		t.Fatalf("status distribution too thin: %v", statuses)
	}
	if removedRows == 0 || removedCols == 0 {
		t.Fatalf("presolve removed nothing across 600 instances (rows=%d cols=%d)", removedRows, removedCols)
	}
	t.Logf("statuses %v; presolve removed %d rows, %d cols across 600 LPs", statuses, removedRows, removedCols)
}

// TestPresolveWarmChainStaysWarm pins the warm-start survival contract
// under presolve: a milp-style chain of bound pins and a sched-style chain
// of rhs rewrites, each re-solved with SolveFrom under the default
// presolve, must never fall back to a cold solve, and every warm optimum
// must match an independent cold presolve-off solve.
func TestPresolveWarmChainStaysWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(9182))
	nVars, nCons := 18, 10
	p := NewProblem(Minimize)
	vars := make([]Var, nVars)
	for j := range vars {
		vars[j] = p.MustVariable("x", 0, 5+rng.Float64()*5, -2+rng.Float64()*4)
	}
	for i := 0; i < nCons; i++ {
		terms := make([]Term, 0, nVars)
		for j := range vars {
			if rng.Intn(3) > 0 {
				terms = append(terms, Term{vars[j], -1 + rng.Float64()*3})
			}
		}
		if err := p.AddConstraint("c", LE, 20+rng.Float64()*30, terms...); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("root solve: %v", err)
	}
	basis := sol.Basis()

	// milp-style: pin a variable per step (lb == ub), warm-restart.
	for step := 0; step < 8; step++ {
		v := vars[rng.Intn(nVars)]
		pin := math.Floor(sol.Value(v))
		if err := p.SetBounds(v, pin, pin); err != nil {
			t.Fatal(err)
		}
		sol, err = p.SolveFrom(basis)
		if err != nil {
			if errors.Is(err, ErrInfeasible) {
				break
			}
			t.Fatalf("step %d: %v", step, err)
		}
		if sol.Stats.ColdFallbacks != 0 {
			t.Fatalf("step %d: warm chain fell back cold under presolve (%+v)", step, sol.Stats)
		}
		cold, errC := p.SolveWithOptions(SolveOptions{Presolve: PresolveOff})
		if errC != nil {
			t.Fatalf("step %d cold check: %v", step, errC)
		}
		tol := 1e-9 * (1 + math.Abs(cold.Objective))
		if !almostEqual(sol.Objective, cold.Objective, tol) {
			t.Fatalf("step %d: warm presolve-on %v vs cold presolve-off %v",
				step, sol.Objective, cold.Objective)
		}
		basis = sol.Basis()
	}

	// sched-style: rewrite right-hand sides, warm-restart on one basis.
	for step := 0; step < 8; step++ {
		for i := 0; i < nCons; i++ {
			if err := p.SetRHS(i, 20+rng.Float64()*30); err != nil {
				t.Fatal(err)
			}
		}
		sol, err = p.SolveFrom(basis)
		if err != nil {
			t.Fatalf("rhs step %d: %v", step, err)
		}
		if sol.Stats.ColdFallbacks != 0 {
			t.Fatalf("rhs step %d: warm chain fell back cold under presolve (%+v)", step, sol.Stats)
		}
		basis = sol.Basis()
	}
}

// TestPresolveBasisCrossInstall pins that a basis captured under presolve
// installs on a presolve-off standardization and vice versa: the same model
// solved both ways must exchange bases with zero cold fallbacks.
func TestPresolveBasisCrossInstall(t *testing.T) {
	rng := rand.New(rand.NewSource(5151))
	for trial := 0; trial < 40; trial++ {
		p := drawDifferentialProblem(rng, trial)
		on, errOn := p.SolveWithOptions(SolveOptions{})
		if errOn != nil {
			continue
		}
		off, errOff := p.SolveWithOptions(SolveOptions{Presolve: PresolveOff})
		if errOff != nil || off.Status != Optimal {
			t.Fatalf("trial %d: presolve disagreement should have failed TestPresolveDifferential", trial)
		}
		// presolved basis → full form.
		warm, err := p.SolveFromWithOptions(on.Basis(), SolveOptions{Presolve: PresolveOff})
		if err != nil || warm.Stats.ColdFallbacks != 0 {
			t.Errorf("trial %d: presolved basis on full form: err=%v stats=%+v", trial, err, warm.Stats)
		}
		// full basis → presolved form.  Reductions may orphan a basic
		// identity only when that identity was itself removable; the warm
		// protection must keep this translating.
		warm2, err := p.SolveFromWithOptions(off.Basis(), SolveOptions{})
		if err != nil || warm2.Stats.ColdFallbacks != 0 {
			t.Errorf("trial %d: full basis on presolved form: err=%v stats=%+v", trial, err, warm2.Stats)
		}
	}
}
