package lp

import "math"

// PresolveMode selects whether a solve runs the model presolve pass.
type PresolveMode int

const (
	// PresolveAuto (the zero value) runs presolve: the model is reduced
	// ahead of standardization and the solution — values, objective and
	// warm-start basis — is mapped back to model space afterwards.
	PresolveAuto PresolveMode = iota
	// PresolveOff solves the model exactly as built.
	PresolveOff
)

const (
	// presolveInfeasTol is how far a bound crossing or an unsatisfiable row
	// must violate before presolve declares the model infeasible outright.
	// Anything closer is left to the simplex (whose own artificial-value
	// tolerance decides borderline feasibility), so presolve-on and
	// presolve-off agree on every non-degenerate instance.
	presolveInfeasTol = 1e-7
	// presolveForceTol is the activity-bound slack within which a row is
	// treated as forcing: its extreme achievable activity equals the
	// right-hand side, so every participating variable is pinned at the
	// bound that achieves it.
	presolveForceTol = 1e-9
	// presolveMaxPasses bounds the reduction fixpoint loop; each pass is
	// O(nnz) and reductions cascade (a singleton row fixes a column whose
	// substitution empties another row), but rarely past a few rounds.
	presolveMaxPasses = 10
	// presolveMinCoeff is the smallest coefficient presolve divides by when
	// folding a singleton row into a bound or eliminating a column
	// singleton; smaller pivots are left to the simplex's own tolerances.
	presolveMinCoeff = 1e-8
)

// postKind tags one entry of the postsolve stack.
type postKind int8

const (
	// postFixed: variable j was removed at the known value val (fixed
	// column substitution, zero-column placement, forcing-row pin).
	postFixed postKind = iota
	// postFreeSingleton: variable j and its only row were removed; the row
	// equation a·x_j + Σ terms = rhs reconstructs x_j from the surviving
	// variables.
	postFreeSingleton
	// postDuplicate: column j was merged into column keep (identical
	// patterns and costs); the merged value splits back across the two
	// original bound boxes.
	postDuplicate
)

// postAction is one recorded reduction, replayed in reverse by postsolve.
type postAction struct {
	kind  postKind
	j     int
	val   float64 // postFixed
	a     float64 // postFreeSingleton: coefficient of j in the removed row
	rhs   float64 // postFreeSingleton: right-hand side at elimination time
	terms []Term  // postFreeSingleton: the row's other live terms
	keep  int     // postDuplicate: surviving column
	lb1   float64 // postDuplicate: keep's bounds before the merge
	ub1   float64
	lb2   float64 // postDuplicate: j's bounds
	ub2   float64
}

// presolveState is the output of one presolve pass: liveness masks and
// working bounds/costs/right-hand sides consumed by standardize, plus the
// postsolve stack that maps the reduced solution back to model space.
// Removed rows and columns keep their model indices throughout — the
// reduced standard form is built by skipping dead entries, so colIdent
// identities (and with them Basis warm starts) are expressed in model terms
// whether or not presolve ran.
type presolveState struct {
	// status is 0 while the reduced model still needs solving, or
	// Infeasible when a reduction proved the model has no solution.
	status Status

	rowDead []bool
	colDead []bool
	eqRow   []bool // model row op == EQ (fill identity for removed rows)

	lb, ub []float64 // working variable bounds (only ever tightened, except duplicate merges)
	cost   []float64 // working costs (free-singleton elimination transfers cost)
	rhs    []float64 // working right-hand sides (fixed columns substituted)

	post []postAction

	// deadAtUpper lists removed variables whose postsolve value is their
	// (finite, non-fixed) model upper bound; captureBasis records them as
	// nonbasic-at-upper so a warm restart on a less-reduced form starts
	// them at the right bound.
	deadAtUpper []int

	rowsRemoved int
	colsRemoved int
}

// fillIdent is the basic column captureBasis seats on a removed row so the
// full-model basis stays square: the row's own slack (always present on an
// inequality row) or artificial (always present on an equality row).  The
// resulting basis matrix is block triangular — removed-row slacks are unit
// columns with no support in kept rows — so it factorizes, and a removed
// row is satisfied by the postsolved point, so the seated slack is feasible.
func (ps *presolveState) fillIdent(i int) colIdent {
	if ps.eqRow[i] {
		return colIdent{kind: identArt, idx: i}
	}
	return colIdent{kind: identSlack, idx: i}
}

// postsolve fills the removed variables of out (indexed by model variable)
// by replaying the reduction stack in reverse, so every value a later
// reconstruction depends on has already been restored.
func (ps *presolveState) postsolve(out []float64) {
	for k := len(ps.post) - 1; k >= 0; k-- {
		a := &ps.post[k]
		switch a.kind {
		case postFixed:
			out[a.j] = a.val
		case postFreeSingleton:
			rest := 0.0
			for _, t := range a.terms {
				rest += t.Coeff * out[t.Var]
			}
			out[a.j] = (a.rhs - rest) / a.a
		case postDuplicate:
			y := out[a.keep]
			x2 := y - a.ub1
			if x2 < a.lb2 {
				x2 = a.lb2
			} else if x2 > a.ub2 {
				x2 = a.ub2
			}
			out[a.j] = x2
			out[a.keep] = y - x2
		}
	}
}

// presolve reduces the model ahead of standardization: empty rows are
// checked and dropped, singleton rows fold into column bounds, fixed
// columns substitute into the right-hand sides, forcing rows pin their
// variables, free (and implied-free) column singletons are eliminated
// through their equality row, and zero/duplicate columns are cleaned up.
// Every reduction is recorded on the postsolve stack.
//
// warm, when non-nil, is the basis the caller will warm-start from:
// presolve never removes a row or column whose identity is basic there (and
// never tightens a variable whose negative-part column is basic), so the
// basis still translates onto the reduced standard form and warm chains —
// milp's per-node restarts, sched's round-over-round re-solves — stay warm.
// A basis whose constraint count no longer matches cannot translate anyway
// and imposes no such protection.
func (p *Problem) presolve(warm *Basis) *presolveState {
	n := len(p.vars)
	m := len(p.cons)
	// Everything presolve works on comes out of the Problem's solve scratch:
	// a solve in a warm chain (milp nodes, sched rounds) re-presolves every
	// time, and fresh slices here were the dominant allocation of the whole
	// solve on reduction-free models.  The presolveState escapes into the
	// standard form and is read until the solve completes (postsolve,
	// captureBasis), which is still within the same Solve call; nothing
	// captured into a Solution or Basis aliases it.
	scr := &p.scr
	ps := &scr.ps
	ps.status = 0
	ps.rowDead = growBools(ps.rowDead, m)
	ps.colDead = growBools(ps.colDead, n)
	ps.eqRow = growBools(ps.eqRow, m)
	ps.lb = growFloats(ps.lb, n)
	ps.ub = growFloats(ps.ub, n)
	ps.cost = growFloats(ps.cost, n)
	ps.rhs = growFloats(ps.rhs, m)
	ps.post = ps.post[:0]
	ps.deadAtUpper = ps.deadAtUpper[:0]
	ps.rowsRemoved, ps.colsRemoved = 0, 0
	clear(ps.rowDead)
	clear(ps.colDead)
	for j, v := range p.vars {
		ps.lb[j], ps.ub[j], ps.cost[j] = v.lb, v.ub, v.cost
	}
	for i, c := range p.cons {
		ps.rhs[i] = c.rhs
		ps.eqRow[i] = c.op == EQ
	}

	// Warm-basis protection: removals that would orphan a basic identity
	// are skipped, so the basis stays installable on the reduced form.
	// Every row is protected, not just rows whose slack/artificial is
	// basic: removing a row whose slot holds a basic structural column
	// would drop that column from the installed basis — and if the row
	// carried the column's only live entry, what remains is singular and
	// the warm start dies in the factorization.  With rows pinned, a warm
	// presolve only tightens bounds and removes nonbasic columns, which
	// leaves the basis matrix bit-identical; this is the "re-tighten per
	// node" mode — the full reduction happens on cold (root) solves.
	protRow := growBools(scr.preProtRow, m)
	protCol := growBools(scr.preProtCol, n)
	lockBounds := growBools(scr.preLock, n) // identNeg basic: variable must stay doubly free
	scr.preProtRow, scr.preProtCol, scr.preLock = protRow, protCol, lockBounds
	clear(protRow)
	clear(protCol)
	clear(lockBounds)
	if warm != nil && len(warm.cols) == m {
		for i := range protRow {
			protRow[i] = true
		}
		for _, cid := range warm.cols {
			switch cid.kind {
			case identStruct:
				if cid.idx >= 0 && cid.idx < n {
					protCol[cid.idx] = true
				}
			case identNeg:
				if cid.idx >= 0 && cid.idx < n {
					protCol[cid.idx] = true
					lockBounds[cid.idx] = true
				}
			}
		}
		for _, cid := range warm.upper {
			// A recorded at-upper status needs its column (and the finite
			// bound it sits on) to survive, or the status silently degrades
			// to at-lower and the warm point drifts primal-infeasible.
			if cid.kind == identStruct && cid.idx >= 0 && cid.idx < n {
				protCol[cid.idx] = true
				lockBounds[cid.idx] = true
			}
		}
	}

	// Aggregate the rows into a flat sparse matrix (duplicate terms summed,
	// zero coefficients dropped — exactly what standardize's per-row maps
	// do, but in deterministic first-seen order) and mirror it column-wise.
	// Coefficients never change during presolve, only liveness masks,
	// bounds, costs and right-hand sides do, so both views are built once.
	nnz := 0
	for _, c := range p.cons {
		nnz += len(c.terms)
	}
	// The mirror is invariant under the mutations a warm re-solve chain
	// makes (SetRHS, SetBounds, SetCost), so it is cached on the Problem's
	// structVer and rebuilt only after a structural change.
	var rowOff, rCol, colOff, cRow []int
	var rVal, cVal []float64
	if scr.preMatOK && scr.preMatVer == p.structVer {
		rowOff, rCol, rVal = scr.preRowOff, scr.preRCol, scr.preRVal
		colOff, cRow, cVal = scr.preColOff, scr.preCRow, scr.preCVal
	} else {
		rowOff = growInts(scr.preRowOff, m+1)
		rCol = growInts(scr.preRCol, nnz)[:0]
		rVal = growFloats(scr.preRVal, nnz)[:0]
		acc := growFloats(scr.preAcc, n)
		seen := growBools(scr.preSeen, n)
		touched := scr.preTouched[:0]
		clear(acc)
		clear(seen)
		rowOff[0] = 0
		for i, c := range p.cons {
			for _, j := range touched {
				acc[j], seen[j] = 0, false
			}
			touched = touched[:0]
			for _, t := range c.terms {
				j := int(t.Var)
				if !seen[j] {
					seen[j] = true
					touched = append(touched, j)
				}
				acc[j] += t.Coeff
			}
			for _, j := range touched {
				if acc[j] != 0 {
					rCol = append(rCol, j)
					rVal = append(rVal, acc[j])
				}
			}
			rowOff[i+1] = len(rCol)
		}
		scr.preRowOff, scr.preRCol, scr.preRVal = rowOff, rCol, rVal
		scr.preAcc, scr.preSeen, scr.preTouched = acc, seen, touched
		colOff = growInts(scr.preColOff, n+1)
		clear(colOff)
		for _, j := range rCol {
			colOff[j+1]++
		}
		for j := 0; j < n; j++ {
			colOff[j+1] += colOff[j]
		}
		cRow = growInts(scr.preCRow, len(rCol))
		cVal = growFloats(scr.preCVal, len(rCol))
		next := growInts(scr.preNext, n)
		scr.preColOff, scr.preCRow, scr.preCVal, scr.preNext = colOff, cRow, cVal, next
		copy(next, colOff[:n])
		for i := 0; i < m; i++ {
			for k := rowOff[i]; k < rowOff[i+1]; k++ {
				j := rCol[k]
				pos := next[j]
				next[j]++
				cRow[pos] = i
				cVal[pos] = rVal[k]
			}
		}
		scr.preMatOK, scr.preMatVer = true, p.structVer
	}

	liveInRow := growInts(scr.preLiveRow, m)
	liveInCol := growInts(scr.preLiveCol, n)
	scr.preLiveRow, scr.preLiveCol = liveInRow, liveInCol
	for i := 0; i < m; i++ {
		liveInRow[i] = rowOff[i+1] - rowOff[i]
	}
	for j := 0; j < n; j++ {
		liveInCol[j] = colOff[j+1] - colOff[j]
	}

	killRow := func(i int) {
		ps.rowDead[i] = true
		ps.rowsRemoved++
		for k := rowOff[i]; k < rowOff[i+1]; k++ {
			if j := rCol[k]; !ps.colDead[j] {
				liveInCol[j]--
			}
		}
	}
	// killColFixed substitutes variable j at val into every live row and
	// removes the column.
	killColFixed := func(j int, val float64) {
		ps.colDead[j] = true
		ps.colsRemoved++
		for k := colOff[j]; k < colOff[j+1]; k++ {
			if i := cRow[k]; !ps.rowDead[i] {
				ps.rhs[i] -= cVal[k] * val
				liveInRow[i]--
			}
		}
		ps.post = append(ps.post, postAction{kind: postFixed, j: j, val: val})
		if v := &p.vars[j]; val == v.ub && v.ub > v.lb &&
			!math.IsInf(v.ub, 1) && !math.IsInf(v.lb, -1) {
			ps.deadAtUpper = append(ps.deadAtUpper, j)
		}
	}

	sign := 1.0
	if p.sense == Maximize {
		sign = -1
	}

	// Duplicate-column candidates chain through dupNext (newest first) under
	// their pattern hash in dupHead — a cleared map plus an index array reuse
	// their storage across passes and solves where a map of slices would
	// re-allocate every bucket every pass.
	dupHead := scr.preDupHead
	if dupHead == nil {
		dupHead = make(map[uint64]int, 64)
		scr.preDupHead = dupHead
	}
	dupNext := growInts(scr.preDupNext, n)
	scr.preDupNext = dupNext

	for pass := 0; pass < presolveMaxPasses; pass++ {
		changed := false

		// Fixed columns: substitute into the right-hand sides.  A protected
		// (warm-basic) fixed column stays; standardize pins it unpriced.
		for j := 0; j < n; j++ {
			if ps.colDead[j] || protCol[j] {
				continue
			}
			if ps.lb[j] == ps.ub[j] {
				killColFixed(j, ps.lb[j])
				changed = true
			}
		}

		// Rows: empty-row feasibility, singleton folding, forcing and
		// redundancy via activity bounds.
		for i := 0; i < m; i++ {
			if ps.rowDead[i] || protRow[i] {
				continue
			}
			op := p.cons[i].op
			rhs := ps.rhs[i]

			cnt := 0
			sj, sa := -1, 0.0
			minAct, maxAct := 0.0, 0.0
			minInf, maxInf := 0, 0
			anyLock := false
			for k := rowOff[i]; k < rowOff[i+1]; k++ {
				j := rCol[k]
				if ps.colDead[j] {
					continue
				}
				a := rVal[k]
				cnt++
				sj, sa = j, a
				if lockBounds[j] {
					anyLock = true
				}
				if a > 0 {
					if math.IsInf(ps.lb[j], -1) {
						minInf++
					} else {
						minAct += a * ps.lb[j]
					}
					if math.IsInf(ps.ub[j], 1) {
						maxInf++
					} else {
						maxAct += a * ps.ub[j]
					}
				} else {
					if math.IsInf(ps.ub[j], 1) {
						minInf++
					} else {
						minAct += a * ps.ub[j]
					}
					if math.IsInf(ps.lb[j], -1) {
						maxInf++
					} else {
						maxAct += a * ps.lb[j]
					}
				}
			}

			switch {
			case cnt == 0:
				// Empty row: 0 op rhs either holds or the model is infeasible.
				switch op {
				case LE:
					if rhs < -presolveInfeasTol {
						ps.status = Infeasible
						return ps
					}
				case GE:
					if rhs > presolveInfeasTol {
						ps.status = Infeasible
						return ps
					}
				case EQ:
					if math.Abs(rhs) > presolveInfeasTol {
						ps.status = Infeasible
						return ps
					}
				}
				killRow(i)
				changed = true

			case cnt == 1 && !lockBounds[sj] && math.Abs(sa) >= presolveMinCoeff:
				// Singleton row: a·x op rhs is a bound on x.
				v := rhs / sa
				tightLo, tightHi := false, false
				switch {
				case op == EQ:
					tightLo, tightHi = true, true
				case (op == LE) == (sa > 0):
					tightHi = true // a>0, ≤ — or a<0, ≥ — caps x from above
				default:
					tightLo = true
				}
				if tightHi && v < ps.ub[sj] {
					ps.ub[sj] = v
				}
				if tightLo && v > ps.lb[sj] {
					ps.lb[sj] = v
				}
				if ps.lb[sj] > ps.ub[sj] {
					if ps.lb[sj]-ps.ub[sj] > presolveInfeasTol {
						ps.status = Infeasible
						return ps
					}
					mid := 0.5 * (ps.lb[sj] + ps.ub[sj])
					ps.lb[sj], ps.ub[sj] = mid, mid
				}
				killRow(i)
				changed = true

			case cnt >= 2:
				// Activity bounds [minAct, maxAct] over the live terms decide
				// infeasible, forcing and redundant rows.  Forcing pins every
				// term variable at its extreme-side bound; the row dies and
				// the fixed-column pass substitutes the pins next round.
				forceAt := func(side float64) { // side > 0: min-activity bounds, < 0: max
					for k := rowOff[i]; k < rowOff[i+1]; k++ {
						j := rCol[k]
						if ps.colDead[j] {
							continue
						}
						if (rVal[k] > 0) == (side > 0) {
							ps.ub[j] = ps.lb[j]
						} else {
							ps.lb[j] = ps.ub[j]
						}
					}
				}
				switch op {
				case LE:
					if minInf == 0 && minAct > rhs+presolveInfeasTol {
						ps.status = Infeasible
						return ps
					}
					if minInf == 0 && minAct >= rhs-presolveForceTol && !anyLock {
						forceAt(1)
						killRow(i)
						changed = true
					} else if maxInf == 0 && maxAct <= rhs {
						killRow(i) // redundant: the row can never bind
						changed = true
					}
				case GE:
					if maxInf == 0 && maxAct < rhs-presolveInfeasTol {
						ps.status = Infeasible
						return ps
					}
					if maxInf == 0 && maxAct <= rhs+presolveForceTol && !anyLock {
						forceAt(-1)
						killRow(i)
						changed = true
					} else if minInf == 0 && minAct >= rhs {
						killRow(i)
						changed = true
					}
				case EQ:
					if (minInf == 0 && minAct > rhs+presolveInfeasTol) ||
						(maxInf == 0 && maxAct < rhs-presolveInfeasTol) {
						ps.status = Infeasible
						return ps
					}
					if !anyLock {
						if minInf == 0 && minAct >= rhs-presolveForceTol {
							forceAt(1)
							killRow(i)
							changed = true
						} else if maxInf == 0 && maxAct <= rhs+presolveForceTol {
							forceAt(-1)
							killRow(i)
							changed = true
						}
					}
				}
			}
		}

		// Free (and implied-free) column singletons in equality rows: the
		// row always determines x_j = (rhs − rest)/a within its bounds, so
		// both the row and the column leave the model; x_j's cost transfers
		// onto the row's surviving variables (c_j·x_j = c_j/a·(rhs − rest)).
		for j := 0; j < n; j++ {
			if ps.colDead[j] || protCol[j] || liveInCol[j] != 1 {
				continue
			}
			row, a := -1, 0.0
			for k := colOff[j]; k < colOff[j+1]; k++ {
				if i := cRow[k]; !ps.rowDead[i] {
					row, a = i, cVal[k]
					break
				}
			}
			if row < 0 || p.cons[row].op != EQ || protRow[row] || math.Abs(a) < presolveMinCoeff {
				continue
			}
			free := math.IsInf(ps.lb[j], -1) && math.IsInf(ps.ub[j], 1)
			if !free {
				// Implied free: the bounds on x_j implied by the row and the
				// other variables' bounds sit inside its own, so they can
				// never bind.
				restMin, restMax := 0.0, 0.0
				restInf := false
				for k := rowOff[row]; k < rowOff[row+1]; k++ {
					t := rCol[k]
					if t == j || ps.colDead[t] {
						continue
					}
					at := rVal[k]
					var lo, hi float64
					if at > 0 {
						lo, hi = at*ps.lb[t], at*ps.ub[t]
					} else {
						lo, hi = at*ps.ub[t], at*ps.lb[t]
					}
					if math.IsInf(lo, 0) || math.IsInf(hi, 0) {
						restInf = true
						break
					}
					restMin += lo
					restMax += hi
				}
				if restInf {
					continue
				}
				rhs := ps.rhs[row]
				impLo := (rhs - restMax) / a
				impHi := (rhs - restMin) / a
				if a < 0 {
					impLo, impHi = impHi, impLo
				}
				if impLo < ps.lb[j] || impHi > ps.ub[j] {
					continue
				}
			}
			terms := make([]Term, 0, liveInRow[row]-1)
			for k := rowOff[row]; k < rowOff[row+1]; k++ {
				t := rCol[k]
				if t == j || ps.colDead[t] {
					continue
				}
				terms = append(terms, Term{Var: Var(t), Coeff: rVal[k]})
			}
			if cj := ps.cost[j]; cj != 0 {
				for _, t := range terms {
					ps.cost[t.Var] -= cj * t.Coeff / a
				}
			}
			ps.post = append(ps.post, postAction{
				kind: postFreeSingleton, j: j, a: a, rhs: ps.rhs[row], terms: terms,
			})
			killRow(row)
			ps.colDead[j] = true
			ps.colsRemoved++
			changed = true
		}

		// Zero columns: a variable in no live row moves to whichever bound
		// its (sense-normalized) cost prefers.  An unbounded improving
		// direction is left in the model so the simplex reports Unbounded
		// only if the rest of the model is feasible.
		for j := 0; j < n; j++ {
			if ps.colDead[j] || protCol[j] || liveInCol[j] != 0 {
				continue
			}
			sc := sign * ps.cost[j]
			var val float64
			switch {
			case sc < -dualTol:
				if math.IsInf(ps.ub[j], 1) {
					continue
				}
				val = ps.ub[j]
			case sc > dualTol:
				if math.IsInf(ps.lb[j], -1) {
					continue
				}
				val = ps.lb[j]
			default:
				// Within the dual tolerance the simplex would leave the
				// column where it starts: its lower bound, the upper bound
				// when mirrored, zero when doubly free.
				switch {
				case !math.IsInf(ps.lb[j], -1):
					val = ps.lb[j]
				case !math.IsInf(ps.ub[j], 1):
					val = ps.ub[j]
				default:
					val = 0
				}
			}
			killColFixed(j, val)
			changed = true
		}

		// Duplicate columns: identical live patterns, identical costs and
		// finite bounds merge into one column with summed bounds; postsolve
		// splits the merged value back across the two bound boxes.
		clear(dupHead)
		for j := 0; j < n; j++ {
			if ps.colDead[j] || protCol[j] || liveInCol[j] == 0 ||
				math.IsInf(ps.lb[j], -1) || math.IsInf(ps.ub[j], 1) {
				continue
			}
			h := uint64(14695981039346656037)
			mix := func(v uint64) {
				h ^= v
				h *= 1099511628211
			}
			for k := colOff[j]; k < colOff[j+1]; k++ {
				if i := cRow[k]; !ps.rowDead[i] {
					mix(uint64(i))
					mix(math.Float64bits(cVal[k]))
				}
			}
			mix(math.Float64bits(ps.cost[j]))
			merged := false
			if j0, ok := dupHead[h]; ok {
				for {
					if ps.cost[j0] == ps.cost[j] && sameLivePattern(ps, colOff, cRow, cVal, j0, j) {
						ps.post = append(ps.post, postAction{
							kind: postDuplicate, j: j, keep: j0,
							lb1: ps.lb[j0], ub1: ps.ub[j0], lb2: ps.lb[j], ub2: ps.ub[j],
						})
						ps.lb[j0] += ps.lb[j]
						ps.ub[j0] += ps.ub[j]
						ps.colDead[j] = true
						ps.colsRemoved++
						for k := colOff[j]; k < colOff[j+1]; k++ {
							if i := cRow[k]; !ps.rowDead[i] {
								liveInRow[i]--
							}
						}
						changed = true
						merged = true
						break
					}
					if dupNext[j0] < 0 {
						break
					}
					j0 = dupNext[j0]
				}
			}
			if !merged {
				if prev, ok := dupHead[h]; ok {
					dupNext[j] = prev
				} else {
					dupNext[j] = -1
				}
				dupHead[h] = j
			}
		}

		if !changed {
			break
		}
	}
	return ps
}

// sameLivePattern reports whether columns a and b have identical nonzero
// patterns and coefficients over the live rows.
func sameLivePattern(ps *presolveState, colOff, cRow []int, cVal []float64, a, b int) bool {
	ka, kb := colOff[a], colOff[b]
	endA, endB := colOff[a+1], colOff[b+1]
	for {
		for ka < endA && ps.rowDead[cRow[ka]] {
			ka++
		}
		for kb < endB && ps.rowDead[cRow[kb]] {
			kb++
		}
		if ka == endA || kb == endB {
			return ka == endA && kb == endB
		}
		if cRow[ka] != cRow[kb] || cVal[ka] != cVal[kb] {
			return false
		}
		ka++
		kb++
	}
}
