package lp

import (
	"math"
	"time"
)

// Revised-simplex tuning.
const (
	// refactorEvery bounds the eta file: after this many pivots the basis
	// is refactorized from scratch, the basic solution recomputed exactly,
	// and the reduced-cost row rebuilt, so product-form drift is capped.
	refactorEvery = 64
	// refreshEvery bounds how stale the incrementally maintained
	// reduced-cost row may get between exact rebuilds.
	refreshEvery = 64
	// feasTol is the primal feasibility tolerance on basic values (against
	// both bounds).
	feasTol = 1e-9
	// dualTol is the dual feasibility tolerance for accepting a warm basis
	// as a dual-simplex starting point.
	dualTol = 1e-7
	// artValueTol is the largest basic artificial value a finished solve may
	// carry before the result is rejected (phase-1 objective check, and the
	// warm-start safety net).
	artValueTol = 1e-6
	// stallAfter is the run of consecutive zero-step (degenerate) pivots
	// after which pricing switches to Bland's rule for the rest of the solve
	// — the anti-cycling rung of the recovery ladder, fired long before the
	// blind iteration-count switch would kick in.
	stallAfter = 512
	// maxBasisRepairs caps how many singular-basis repairs (ejecting the
	// offending basic column to a slack) one refactorization may attempt.
	maxBasisRepairs = 4
	// maxNaNRetries caps how many non-finite FTRAN/BTRAN results a single
	// solve may recover from by refactorizing before giving up.
	maxNaNRetries = 3
)

// etaFile is the product-form update sequence: after pivot k on basis
// position r with FTRAN column d, the new basis inverse is Fₖ⁻¹·B⁻¹ with
// Fₖ = I + (d − e_r)·e_rᵀ, so FTRAN applies the Fₖ⁻¹ in order and BTRAN
// applies their transposes in reverse.  Vectors are stored sparse (pivot
// value split out), indexed by basis position.
type etaFile struct {
	pos []int
	piv []float64
	ptr []int
	idx []int
	val []float64
}

func (e *etaFile) reset() {
	e.pos = e.pos[:0]
	e.piv = e.piv[:0]
	e.ptr = append(e.ptr[:0], 0)
	e.idx = e.idx[:0]
	e.val = e.val[:0]
}

func (e *etaFile) count() int { return len(e.pos) }

// push records the eta of a pivot on position r with FTRAN column w.
func (e *etaFile) push(r int, w []float64) {
	pv := w[r]
	if faultsOn.Load() && faultFires(FaultCorruptEta) {
		pv = 0 // a later FTRAN/BTRAN through this eta divides by zero
	}
	e.pos = append(e.pos, r)
	e.piv = append(e.piv, pv)
	for i, v := range w {
		if v != 0 && i != r {
			e.idx = append(e.idx, i)
			e.val = append(e.val, v)
		}
	}
	e.ptr = append(e.ptr, len(e.idx))
}

// ftran applies the eta inverses in order: x ← Fₖ⁻¹·x.
func (e *etaFile) ftran(x []float64) {
	for k := 0; k < len(e.pos); k++ {
		r := e.pos[k]
		xr := x[r]
		if xr == 0 {
			continue
		}
		t := xr / e.piv[k]
		x[r] = t
		for p := e.ptr[k]; p < e.ptr[k+1]; p++ {
			x[e.idx[p]] -= t * e.val[p]
		}
	}
}

// btran applies the eta inverse transposes in reverse order: y ← Fₖ⁻ᵀ·y.
func (e *etaFile) btran(y []float64) {
	for k := len(e.pos) - 1; k >= 0; k-- {
		// Unconditional multiply-add: y's zero pattern is data-dependent, so
		// a skip branch mispredicts far more than the multiply it saves.
		s := 0.0
		for p := e.ptr[k]; p < e.ptr[k+1]; p++ {
			s += e.val[p] * y[e.idx[p]]
		}
		r := e.pos[k]
		y[r] = (y[r] - s) / e.piv[k]
	}
}

// solver holds the revised-simplex working state for one standard form.
// Every column is basic, nonbasic at its lower bound (value 0), or
// nonbasic at its upper bound (value upper[j]); atUpper tracks the last
// case and is false for every basic column by invariant.
type solver struct {
	std *standard
	m   int

	basis   []int  // basis[i] = column basic at position i
	basic   []bool // per column
	atUpper []bool // per column; nonbasic-at-upper-bound status
	xB      []float64

	lu  luFactor
	eta etaFile

	cost    []float64 // active objective (phase 1 or phase 2), len nCols
	reduced []float64 // maintained reduced costs, len nTotal
	stale   int       // pivots since the last exact rebuild

	// Pricing (pricing.go).  pr is the selected rule; dvx aliases it when
	// the rule is devex (nil otherwise), for the devex-only hooks: the dual
	// simplex's weighted leaving-row scan and the warm-start weight carry.
	pricing PricingRule
	pr      pricer
	dvx     *devexPricer

	sinceRefactor int

	// Resilience state.
	ctl         *solveControl // budgets (nil-safe via active())
	stats       *Stats        // never nil; counters for the recovery ladder
	stallRun    int           // consecutive zero-step pivots
	nanRetries  int           // non-finite recoveries spent
	blandForced bool          // stall detector latched Bland's rule on

	// scratch, len m.
	w, y, rowScratch []float64

	// alpha is the pivot-update scratch, len nTotal: the scattered row
	// alpha = Aᵀρ that the reduced-cost update, devex weight update and
	// dual ratio test all read (see standard.scatterRows).
	alpha []float64
}

func newSolver(std *standard, ctl *solveControl, stats *Stats) *solver {
	if stats == nil {
		stats = &Stats{}
	}
	m := std.m
	s := &solver{
		std:        std,
		m:          m,
		ctl:        ctl,
		stats:      stats,
		basis:      make([]int, m),
		basic:      make([]bool, std.nCols),
		atUpper:    make([]bool, std.nCols),
		xB:         make([]float64, m),
		reduced:    make([]float64, std.nTotal),
		w:          make([]float64, m),
		y:          make([]float64, m),
		rowScratch: make([]float64, m),
	}
	if std.scr != nil {
		s.alpha = growFloats(std.scr.alpha, std.nTotal)
		std.scr.alpha = s.alpha
	} else {
		s.alpha = make([]float64, std.nTotal)
	}
	if ctl != nil {
		s.pricing = ctl.pricing
	}
	switch s.pricing {
	case PricingDantzig:
		s.pr = dantzigPricer{}
	case PricingBland:
		// An explicit Bland selection rides the stall latch machinery for
		// the whole solve: least-index pricing plus the exact
		// smallest-index ratio test its termination guarantee needs.  The
		// progress release is suppressed for this rule (see primal), and
		// no BlandSwitch is counted — nothing switched.
		s.pr = blandPricer{}
		s.blandForced = true
	default:
		s.pricing = PricingDevex
		s.dvx = newDevexPricer(std, std.nTotal > partialMinCols)
		s.pr = s.dvx
	}
	return s
}

func (s *solver) setBasis(basis []int) {
	copy(s.basis, basis)
	for j := range s.basic {
		s.basic[j] = false
	}
	for _, b := range basis {
		s.basic[b] = true
	}
}

// ftranVec solves B·out = x, with x indexed by row and out by basis
// position.  x is consumed as scratch.
func (s *solver) ftranVec(x, out []float64) {
	f := &s.lu
	for k := 0; k < s.m; k++ {
		s.y[k] = x[f.prow[k]]
	}
	f.lsolve(s.y)
	f.usolve(s.y)
	for k := 0; k < s.m; k++ {
		out[f.q[k]] = s.y[k]
	}
	s.eta.ftran(out)
}

// ftranCol solves B·w = A_j for standard-form column j, into s.w.
func (s *solver) ftranCol(j int) []float64 {
	rows, vals := s.std.col(j)
	x := s.rowScratch
	for i := range x {
		x[i] = 0
	}
	for k, r := range rows {
		x[r] = vals[k]
	}
	s.ftranVec(x, s.w)
	if faultsOn.Load() && faultFires(FaultPoisonPivot) {
		s.w[0] = math.NaN()
	}
	return s.w
}

// btranVec solves Bᵀ·out = c, with c indexed by basis position and out by
// row.  c is not modified.
func (s *solver) btranVec(c, out []float64) {
	f := &s.lu
	w := s.y
	copy(w, c)
	s.eta.btran(w)
	for k := 0; k < s.m; k++ {
		s.rowScratch[k] = w[f.q[k]]
	}
	copy(w, s.rowScratch)
	f.utsolve(w)
	f.ltsolve(w)
	for k := 0; k < s.m; k++ {
		out[f.prow[k]] = w[k]
	}
}

// btranUnit solves Bᵀ·rho = e_p for basis position p: rho is row p of the
// basis inverse, indexed by row — the pricing vector of the incremental
// reduced-cost update and of the dual-simplex row scan.
func (s *solver) btranUnit(p int, out []float64) {
	c := s.rowScratch
	for i := range c {
		c[i] = 0
	}
	c[p] = 1
	s.btranVec(c, out)
}

// refactorize rebuilds the LU factors of the current basis, clears the eta
// file and recomputes the basic solution exactly from the nonbasic
// statuses: B·xB = b − Σ over nonbasic-at-upper columns of uⱼ·Aⱼ.
func (s *solver) refactorize() error {
	if err := s.lu.factorize(s.std, s.basis); err != nil {
		return err
	}
	s.stats.Refactorizations++
	s.eta.reset()
	s.sinceRefactor = 0
	copy(s.rowScratch, s.std.b)
	for j := 0; j < s.std.nTotal; j++ {
		if !s.atUpper[j] {
			continue
		}
		u := s.std.upper[j]
		if u == 0 {
			continue
		}
		rows, vals := s.std.col(j)
		for k, r := range rows {
			s.rowScratch[r] -= u * vals[k]
		}
	}
	s.ftranVec(s.rowScratch, s.xB)
	s.clampXB()
	return nil
}

// clampBound snaps roundoff just outside [0, u] back onto the violated
// bound (the revised-simplex analogue of the dense pivot's rhs clamp).
func clampBound(v, u float64) float64 {
	if v < 0 {
		if v > -feasTol {
			return 0
		}
		return v
	}
	if v > u && v < u+feasTol {
		return u
	}
	return v
}

// clampXB applies clampBound to every basic value.
func (s *solver) clampXB() {
	for i, v := range s.xB {
		s.xB[i] = clampBound(v, s.std.upper[s.basis[i]])
	}
}

// rebuildReduced recomputes the reduced-cost row exactly: one BTRAN of the
// basic costs, then one pass over the CSC nonzeros.
func (s *solver) rebuildReduced() {
	cB := s.rowScratch
	for k := 0; k < s.m; k++ {
		cB[k] = s.cost[s.basis[k]]
	}
	dual := s.w // safe: callers treat w as dead across rebuilds
	s.btranVec(cB, dual)
	for j := 0; j < s.std.nTotal; j++ {
		s.reduced[j] = s.cost[j] - s.std.colDot(j, dual)
	}
	s.stale = 0
	if s.dvx != nil {
		s.dvx.cached = cachedNone // the row changed under the fused pick
	}
}

// pickEntering nominates the entering column from the maintained
// reduced-cost row.  Eligibility is signed by bound status: a column at its
// lower bound improves by increasing (reduced cost < −ε), one at its upper
// bound by decreasing (reduced cost > +ε); fixed columns (u = 0) cannot
// move and are never priced.  Dantzig's most-violating rule by default, or
// Bland's least-index rule once the iteration count suggests degenerate
// stalling.
func (s *solver) pickEntering(useBland bool) int {
	entering := -1
	best := epsilon
	for j := 0; j < s.std.nTotal; j++ {
		if s.basic[j] || s.std.upper[j] == 0 {
			continue
		}
		score := -s.reduced[j]
		if s.atUpper[j] {
			score = -score
		}
		if useBland {
			if score > epsilon {
				return j
			}
		} else if score > best {
			best = score
			entering = j
		}
	}
	return entering
}

// exchange performs the basis change for entering column q leaving at
// position p with FTRAN column w: the entering variable's value moves by
// delta off its current bound, every other basic value follows, the eta is
// appended and the bookkeeping swapped.  leaveAtUpper places the leaving
// variable at its upper instead of its lower bound.
func (s *solver) exchange(q, p int, delta float64, w []float64, leaveAtUpper bool) {
	if delta != 0 {
		for i := range s.xB {
			if i == p || w[i] == 0 {
				continue
			}
			s.xB[i] = clampBound(s.xB[i]-delta*w[i], s.std.upper[s.basis[i]])
		}
	}
	enterVal := delta
	if s.atUpper[q] {
		enterVal += s.std.upper[q]
	}
	s.xB[p] = clampBound(enterVal, s.std.upper[q])
	s.eta.push(p, w)
	leave := s.basis[p]
	s.basic[leave] = false
	s.atUpper[leave] = leaveAtUpper && !math.IsInf(s.std.upper[leave], 1)
	s.basic[q] = true
	s.atUpper[q] = false
	s.basis[p] = q
	s.sinceRefactor++
	s.stats.Pivots++
}

// boundFlip moves nonbasic column q from one of its bounds to the other
// without any basis change: the basic solution shifts by ∓u_q·w, the
// status bit flips, and — because the basis matrix is untouched — there is
// no eta push, no LU aging and no reduced-cost maintenance at all.
func (s *solver) boundFlip(q int, w []float64) {
	delta := s.std.upper[q]
	if s.atUpper[q] {
		delta = -delta
	}
	for i := range s.xB {
		if w[i] == 0 {
			continue
		}
		s.xB[i] = clampBound(s.xB[i]-delta*w[i], s.std.upper[s.basis[i]])
	}
	s.atUpper[q] = !s.atUpper[q]
	s.stats.BoundFlips++
	s.stallRun = 0 // a bound flip strictly improves the objective
}

// updateReducedAfterPivot maintains the reduced-cost row across the pivot
// that entered q at position p with exact reduced cost dq: with ρ = row p of
// the new basis inverse, d'_j = d_j − dq·(ρ·A_j).  One sparse BTRAN plus one
// pass over the CSC nonzeros — the revised-simplex analogue of the dense
// tableau's reduced-row elimination.  Bound statuses never enter: reduced
// costs depend on the basis alone.
func (s *solver) updateReducedAfterPivot(q int, p int, dq float64) {
	rho := s.w // w's FTRAN contents are dead once the pivot is applied
	s.btranUnit(p, rho)
	alpha := s.alphaRow(rho)
	for j := 0; j < s.std.nTotal; j++ {
		if a := alpha[j]; a != 0 && !s.basic[j] {
			s.reduced[j] -= dq * a
		}
	}
	s.reduced[q] = 0
	s.stale++
}

// alphaRow computes alpha = Aᵀρ over the priced columns into the solver's
// scratch via the row-major scatter, clearing it first.  The returned slice
// is only valid until the next call.
func (s *solver) alphaRow(rho []float64) []float64 {
	alpha := s.alpha
	for i := range alpha {
		alpha[i] = 0
	}
	s.std.scatterRows(rho, alpha)
	return alpha
}

// objective returns the active-cost objective over the basic values.  The
// phase-1 checks are its only caller: artificials are never at an upper
// bound and carry the only nonzero phase-1 costs, so the basic sum is the
// whole phase-1 objective.
func (s *solver) objective() float64 {
	obj := 0.0
	for i := 0; i < s.m; i++ {
		obj += s.cost[s.basis[i]] * s.xB[i]
	}
	return obj
}

// finiteVec reports whether every entry of x is finite (no NaN or ±Inf).
func finiteVec(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// interrupted polls the solve budgets: injected deadline faults first, then
// the context, then the wall clock (sampled every 16th iteration — a
// time.Now per pivot would dominate small solves).  Returns 0 to continue.
func (s *solver) interrupted(iter int) Status {
	if faultsOn.Load() && faultFires(FaultExpireDeadline) {
		return statusDeadline
	}
	ctl := s.ctl
	if ctl == nil {
		return 0
	}
	if ctl.ctx != nil {
		select {
		case <-ctl.ctx.Done():
			return statusCancelled
		default:
		}
	}
	if !ctl.deadline.IsZero() && iter&15 == 0 && !time.Now().Before(ctl.deadline) {
		return statusDeadline
	}
	return 0
}

// guardNaN recovers from a non-finite FTRAN/BTRAN result: the usual culprit
// is drift (or corruption) in the product-form eta file, which a fresh
// factorization discards.  A small retry budget keeps a basis that is
// genuinely broken from looping forever.  Returns 0 when the solve may
// continue on the rebuilt factors.
func (s *solver) guardNaN() Status {
	s.stats.NaNGuards++
	s.nanRetries++
	if s.nanRetries > maxNaNRetries {
		return statusNumeric
	}
	if _, err := s.refactorizeRepair(); err != nil {
		return statusNumeric
	}
	s.rebuildReduced()
	// Whatever poisoned the FTRAN/BTRAN results may have poisoned the
	// pricing weights learned through them; restart the framework.
	s.pr.reset(s)
	return 0
}

// refactorizeRepair is refactorize with the singular-basis repair rung: when
// the factorization reports a singular basis, the offending basic column is
// ejected in favor of an unused slack (or artificial) and the factorization
// retried, up to maxBasisRepairs times.  Reports whether any repair was
// applied; err is the last factorization error when all repairs failed.
func (s *solver) refactorizeRepair() (repaired bool, err error) {
	for attempt := 0; ; attempt++ {
		err = s.refactorize()
		if err == nil {
			if repaired {
				// The repair swapped basis columns under the pricing rule:
				// reference weights keyed to the old basis are meaningless,
				// so the framework restarts.  A clean periodic
				// refactorization keeps them — the weights approximate
				// ‖B⁻¹·A_j‖², a property of the basis itself, not of the
				// factorization that represents it.
				s.pr.reset(s)
			}
			return repaired, nil
		}
		if attempt >= maxBasisRepairs || !s.repairSingular() {
			return repaired, err
		}
		repaired = true
		s.stats.Repairs++
	}
}

// repairSingular ejects the basic column the failed factorization choked on
// (luFactor.failPos) and seats the slack — or, for an equality row, the
// artificial — of a row the factorization never pivoted, the unit column
// guaranteed to restore that row's coverage.  Returns false when no such
// replacement exists (then the basis is beyond local repair).
func (s *solver) repairSingular() bool {
	pos := s.lu.failPos
	if pos < 0 {
		return false
	}
	for r := 0; r < s.m; r++ {
		if s.lu.pinv[r] >= 0 {
			continue // row already covered by a pivot
		}
		j := s.std.slackOf[r]
		if j < 0 || s.basic[j] {
			j = s.std.artOf[r]
		}
		if j < 0 || s.basic[j] {
			continue
		}
		old := s.basis[pos]
		s.basic[old] = false
		s.atUpper[old] = false // ejected to its lower bound
		s.basic[j] = true
		s.atUpper[j] = false
		s.basis[pos] = j
		return true
	}
	return false
}

// primalFeasibleNow reports whether every basic value currently respects its
// bounds (within feasTol) — used to verify that a mid-primal basis repair
// did not silently break the feasibility invariant primal pivots rely on.
func (s *solver) primalFeasibleNow() bool {
	for i, v := range s.xB {
		if v < -feasTol || v > s.std.upper[s.basis[i]]+feasTol {
			return false
		}
	}
	return true
}

// primal runs primal simplex iterations from the current (primal-feasible)
// basis until optimality, unboundedness or the iteration limit.  Artificial
// columns are never priced: they can leave the basis but never re-enter.
func (s *solver) primal() Status {
	m, n := s.m, s.std.nCols
	maxIter := 30 * (m + n)
	if maxIter < 2000 {
		maxIter = 2000
	}
	if s.ctl != nil && s.ctl.maxIters > 0 {
		maxIter = s.ctl.maxIters
	}
	blandAfter := 4 * (m + n)
	checkLimits := s.ctl.active() || faultsOn.Load()
	wasBland := s.blandForced

	s.rebuildReduced()
	for iter := 0; iter < maxIter; iter++ {
		if checkLimits {
			if st := s.interrupted(iter); st != 0 {
				return st
			}
			if faultsOn.Load() && faultFires(FaultForceStall) {
				s.stallRun = stallAfter
			}
		}
		if s.stallRun >= stallAfter && !s.blandForced {
			// Anti-cycling rung: a long run of degenerate pivots switches
			// pricing to Bland's rule until the objective moves again.
			// Refactorize first — Bland's exact ratio test can pivot on
			// phantom eta-file entries that the Harris test sidesteps, so it
			// must start from fresh factors.
			s.blandForced = true
			if _, err := s.refactorizeRepair(); err != nil {
				return statusNumeric
			}
			s.rebuildReduced()
		}
		useBland := s.blandForced || iter > blandAfter
		if useBland && !wasBland {
			wasBland = true
			s.stats.BlandSwitches++
		}
		if s.stale >= refreshEvery || (useBland && s.stale > 0) {
			s.rebuildReduced()
		}
		// Pricing: Bland's least-index rule while the stall latch holds (or
		// past the iteration backstop), the configured rule otherwise.
		var q int
		if useBland {
			q = s.pickEntering(true)
		} else {
			q = s.pr.price(s)
		}
		if q < 0 && s.stale > 0 {
			// The maintained row says optimal; confirm exactly so drift can
			// delay convergence but never fake it.
			s.rebuildReduced()
			if useBland {
				q = s.pickEntering(true)
			} else {
				q = s.pr.price(s)
			}
		}
		if q < 0 {
			// NaN reduced costs price every column as ineligible, which would
			// fake optimality here; a non-finite row means the eta file went
			// bad, so rebuild the factors and re-price instead.
			if !finiteVec(s.reduced) {
				if st := s.guardNaN(); st != 0 {
					return st
				}
				continue
			}
			return Optimal
		}

		w := s.ftranCol(q)
		if !finiteVec(w) {
			if st := s.guardNaN(); st != 0 {
				return st
			}
			continue
		}
		// Exact reduced cost of the nominee, free from the FTRAN column:
		// d_q = c_q − c_B·w.  A nominee the maintained row promoted but the
		// exact value rejects is neutralized and re-picked — drift can cost
		// an FTRAN, never a non-improving pivot.
		dq := s.cost[q]
		for i := 0; i < m; i++ {
			dq -= s.cost[s.basis[i]] * w[i]
		}
		sigma := 1.0 // direction of the entering variable's move
		if s.atUpper[q] {
			sigma = -1
		}
		if sigma*dq >= -epsilon {
			s.reduced[q] = dq
			continue
		}

		// Ratio test on the step t ≥ 0 of the entering variable along σ.
		// Basic value i moves by −σ·t·wᵢ, so σ·wᵢ > 0 drives it toward its
		// lower bound and σ·wᵢ < 0 toward its (finite) upper bound; the
		// entering variable's own opposite bound caps t at u_q — and when
		// that cap binds first the iteration is a pure bound flip with no
		// basis change at all.
		//
		// The default is a Harris-style two-pass: bound the step length
		// with the feasibility tolerance, then among the rows that stay
		// within the bound pick the LARGEST pivot element.  On badly scaled
		// problems (the exact MILP's big-M rows) the FTRAN column can carry
		// phantom entries — pure eta-file roundoff just above pivotEpsilon —
		// and pivoting on one makes the basis exactly singular; preferring
		// the largest eligible pivot never selects a phantom when a real
		// entry is available.  Under Bland's rule the classic exact test
		// with smallest-index ties is used instead, as its termination
		// guarantee requires (bound flips strictly improve the objective,
		// so they never participate in a cycle).
		uq := s.std.upper[q]
		leaving := -1
		leaveAtUpper := false
		var step float64
		if useBland {
			bestRatio := math.Inf(1)
			for i := 0; i < m; i++ {
				d := sigma * w[i]
				var ratio float64
				var atUp bool
				if d > pivotEpsilon {
					ratio = s.xB[i] / d
				} else if d < -pivotEpsilon {
					ub := s.std.upper[s.basis[i]]
					if math.IsInf(ub, 1) {
						continue
					}
					ratio = (ub - s.xB[i]) / -d
					atUp = true
				} else {
					continue
				}
				if ratio < bestRatio-epsilon ||
					(math.Abs(ratio-bestRatio) <= epsilon && (leaving == -1 || s.basis[i] < s.basis[leaving])) {
					bestRatio = ratio
					leaving = i
					leaveAtUpper = atUp
				}
			}
			if !math.IsInf(uq, 1) && uq <= bestRatio {
				s.boundFlip(q, w)
				continue
			}
			if leaving == -1 {
				return Unbounded
			}
			step = bestRatio
		} else {
			thetaMax := math.Inf(1)
			for i := 0; i < m; i++ {
				d := sigma * w[i]
				if d > pivotEpsilon {
					if r := (s.xB[i] + feasTol) / d; r < thetaMax {
						thetaMax = r
					}
				} else if d < -pivotEpsilon {
					ub := s.std.upper[s.basis[i]]
					if math.IsInf(ub, 1) {
						continue
					}
					if r := (ub - s.xB[i] + feasTol) / -d; r < thetaMax {
						thetaMax = r
					}
				}
			}
			if !math.IsInf(uq, 1) && uq <= thetaMax {
				s.boundFlip(q, w)
				continue
			}
			if math.IsInf(thetaMax, 1) {
				return Unbounded
			}
			bestW := 0.0
			for i := 0; i < m; i++ {
				d := sigma * w[i]
				var ratio float64
				var atUp bool
				if d > pivotEpsilon {
					ratio = s.xB[i] / d
				} else if d < -pivotEpsilon {
					ub := s.std.upper[s.basis[i]]
					if math.IsInf(ub, 1) {
						continue
					}
					ratio = (ub - s.xB[i]) / -d
					atUp = true
				} else {
					continue
				}
				if ratio > thetaMax {
					continue
				}
				aw := math.Abs(w[i])
				if aw > bestW || (aw == bestW && (leaving == -1 || s.basis[i] < s.basis[leaving])) {
					bestW = aw
					leaving = i
					leaveAtUpper = atUp
				}
			}
			if leaving == -1 {
				// Cannot happen with a finite thetaMax (the row that set it
				// is always eligible); treat defensively as numerical.
				return statusNumeric
			}
			d := sigma * w[leaving]
			if leaveAtUpper {
				step = (s.std.upper[s.basis[leaving]] - s.xB[leaving]) / -d
			} else {
				step = s.xB[leaving] / d
			}
		}

		s.exchange(q, leaving, sigma*step, w, leaveAtUpper)
		if step <= epsilon {
			s.stallRun++ // degenerate pivot: no objective progress
		} else {
			// Progress made: release the stall latch back to the configured
			// rule (never when Bland IS the configured rule).  Bland is an
			// anti-cycling device, not a pricing strategy — staying on it
			// past the stall trades convergence speed for nothing.  Devex
			// restarts with a fresh reference framework, counted as a
			// DevexReset unconditionally: the reset is the release signal.
			s.stallRun = 0
			if s.blandForced && s.pricing != PricingBland {
				s.blandForced = false
				if s.dvx != nil {
					s.dvx.resetFramework(s, true)
				}
			}
		}
		if s.sinceRefactor >= refactorEvery {
			repaired, err := s.refactorizeRepair()
			if err != nil {
				return statusNumeric
			}
			if repaired && !s.primalFeasibleNow() {
				// The repair changed the basis under us and the recomputed
				// solution left the feasible box; primal pivots would be
				// meaningless from here.
				return statusNumeric
			}
			s.rebuildReduced()
		} else {
			s.pr.update(s, q, leaving, dq, w)
		}
	}
	return statusNumeric
}

// dual runs dual simplex iterations from the current (dual-feasible) basis
// until primal feasibility or a proof of infeasibility.  It is the
// warm-start workhorse: after bound/rhs mutations the previous optimal
// basis stays dual-feasible and a few dual pivots restore primal
// feasibility.  A basic value can now violate either bound: one below its
// lower bound leaves at the lower bound, one above its (finite) upper
// bound leaves at the upper bound, and the entering ratio test is signed
// by each candidate's own bound status so the nonbasic reduced costs stay
// dual-feasible (≥ 0 at lower, ≤ 0 at upper).  Dual iterations rebuild the
// reduced-cost row exactly each time — warm restarts take a handful of
// pivots, so exactness beats maintenance here.
func (s *solver) dual() Status {
	m, n := s.m, s.std.nCols
	maxIter := 30 * (m + n)
	if maxIter < 2000 {
		maxIter = 2000
	}
	if s.ctl != nil && s.ctl.maxIters > 0 {
		maxIter = s.ctl.maxIters
	}
	checkLimits := s.ctl.active() || faultsOn.Load()
	rho := make([]float64, m)

	s.rebuildReduced()
	for iter := 0; iter < maxIter; iter++ {
		if checkLimits {
			if st := s.interrupted(iter); st != 0 {
				return st
			}
		}
		// Leaving: largest bound violation among the basic values — under
		// devex weighted by the dual reference weights (violation squared
		// over the approximate row norm of B⁻¹), the dual analogue of the
		// primal devex score: a violation that is large only because its row
		// of the inverse is long yields a short dual step, so normalizing by
		// the row norm picks rows that actually move the dual objective.
		p := -1
		leaveAtUpper := false
		if s.dvx != nil {
			bestV2, bestW := 0.0, 1.0
			for i, v := range s.xB {
				viol := -v
				atUp := false
				if ub := s.std.upper[s.basis[i]]; !math.IsInf(ub, 1) && v-ub > viol {
					viol = v - ub
					atUp = true
				}
				if viol <= feasTol {
					continue
				}
				// Divide-free argmax of viol²/rowW, cross-multiplied
				// against the incumbent.
				if v2 := viol * viol; v2*bestW > bestV2*s.dvx.rowW[i] {
					bestV2, bestW = v2, s.dvx.rowW[i]
					p = i
					leaveAtUpper = atUp
				}
			}
		} else {
			worst := feasTol
			for i, v := range s.xB {
				if -v > worst {
					worst = -v
					p = i
					leaveAtUpper = false
				}
				if ub := s.std.upper[s.basis[i]]; !math.IsInf(ub, 1) && v-ub > worst {
					worst = v - ub
					p = i
					leaveAtUpper = true
				}
			}
		}
		if p < 0 {
			return Optimal
		}
		// r is the dual direction sign: +1 when the leaving value must
		// rise back to its lower bound, −1 when it must fall to its upper.
		r := 1.0
		target := 0.0
		if leaveAtUpper {
			r = -1
			target = s.std.upper[s.basis[p]]
		}

		s.btranUnit(p, rho)
		if !finiteVec(rho) {
			if st := s.guardNaN(); st != 0 {
				return st
			}
			continue
		}
		if s.dvx != nil && s.dvx.dirty && s.dvx.dualDrifted(p, rho) {
			// ρ is the exact row norm the reference weight approximates;
			// past the ratio bound the framework restarts at unit weights.
			s.dvx.resetFramework(s, true)
		}

		// Entering: dual ratio test over the eligible columns of row p.  A
		// column at its lower bound can only increase (needs r·α < 0 to move
		// xB_p toward its target) and must keep d ≥ 0; one at its upper
		// bound can only decrease (needs r·α > 0) and must keep d ≤ 0.
		q := -1
		best := math.Inf(1)
		alpha := s.alphaRow(rho)
		for j := 0; j < s.std.nTotal; j++ {
			if s.basic[j] || s.std.upper[j] == 0 {
				continue
			}
			ra := r * alpha[j]
			var ratio float64
			if s.atUpper[j] {
				if ra <= pivotEpsilon {
					continue
				}
				d := s.reduced[j]
				if d > 0 {
					d = 0
				}
				ratio = -d / ra
			} else {
				if ra >= -pivotEpsilon {
					continue
				}
				d := s.reduced[j]
				if d < 0 {
					d = 0
				}
				ratio = d / -ra
			}
			if ratio < best-epsilon || (math.Abs(ratio-best) <= epsilon && (q == -1 || j < q)) {
				best = ratio
				q = j
			}
		}
		if q < 0 {
			// Row p proves infeasibility — no movable nonbasic column can
			// push its value back inside the bounds.  But only trust fresh
			// factors: with etas stacked up, refactorize and re-verify first.
			if s.eta.count() > 0 {
				if repaired, err := s.refactorizeRepair(); err != nil || repaired {
					// A repair swaps a column mid-flight, which can break the
					// dual feasibility this loop relies on; let the caller
					// fall back to a cold solve.
					return statusNumeric
				}
				s.rebuildReduced()
				continue
			}
			return Infeasible
		}

		w := s.ftranCol(q)
		if !finiteVec(w) {
			if st := s.guardNaN(); st != 0 {
				return st
			}
			continue
		}
		delta := 0.0
		ok := math.Abs(w[p]) > pivotEpsilon
		if ok {
			delta = (s.xB[p] - target) / w[p]
			// The entering variable must move off its own bound in its only
			// feasible direction; the FTRAN column disagreeing with the
			// BTRAN row means numerical drift.
			if s.atUpper[q] {
				ok = delta <= epsilon
			} else {
				ok = delta >= -epsilon
			}
		}
		if !ok {
			if s.sinceRefactor == 0 {
				return statusNumeric
			}
			if repaired, err := s.refactorizeRepair(); err != nil || repaired {
				return statusNumeric
			}
			s.rebuildReduced()
			continue
		}

		s.exchange(q, p, delta, w, leaveAtUpper)
		if s.dvx != nil {
			s.dvx.dualUpdate(s, p, w)
		}
		if s.sinceRefactor >= refactorEvery {
			if repaired, err := s.refactorizeRepair(); err != nil || repaired {
				return statusNumeric
			}
		}
		s.rebuildReduced()
	}
	return statusNumeric
}

// driveOutArtificials pivots basic artificial columns out of the basis after
// phase 1 where possible; rows where no structural or slack column has a
// nonzero entry are redundant and keep their artificial basic at zero.
func (s *solver) driveOutArtificials() error {
	rho := make([]float64, s.m)
	for p := 0; p < s.m; p++ {
		if s.basis[p] < s.std.nTotal {
			continue
		}
		s.btranUnit(p, rho)
		found := -1
		for j := 0; j < s.std.nTotal; j++ {
			if s.basic[j] {
				continue
			}
			if alpha := s.std.colDot(j, rho); math.Abs(alpha) > pivotEpsilon {
				found = j
				break
			}
		}
		if found < 0 {
			continue
		}
		w := s.ftranCol(found)
		wMax := 0.0
		for _, v := range w {
			if a := math.Abs(v); a > wMax {
				wMax = a
			}
		}
		// Both an absolute and a relative guard: a pivot that is tiny
		// relative to the column is likely eta-file roundoff, and pivoting
		// on it can make the basis numerically singular.
		if math.Abs(w[p]) <= pivotEpsilon || math.Abs(w[p]) <= 1e-9*wMax {
			continue
		}
		// The artificial sits at ~0, so the entering column barely moves
		// off its bound: a degenerate exchange with the artificial leaving
		// at its lower bound.
		s.exchange(found, p, s.xB[p]/w[p], w, false)
		if s.sinceRefactor >= refactorEvery {
			if err := s.refactorize(); err != nil {
				return err
			}
		}
	}
	return nil
}

// values scatters the current solution into a standard-form column vector:
// basic values clamped to their bounds plus every nonbasic-at-upper column
// at its upper bound.
func (s *solver) values() []float64 {
	out := make([]float64, s.std.nCols)
	for j := 0; j < s.std.nTotal; j++ {
		if s.atUpper[j] && !s.basic[j] {
			out[j] = s.std.upper[j]
		}
	}
	for i, b := range s.basis {
		v := s.xB[i]
		if v < 0 {
			v = 0
		} else if u := s.std.upper[b]; v > u {
			v = u
		}
		out[b] = v
	}
	return out
}

// artificialsClean reports whether every basic artificial sits at ~zero, the
// condition for the basic solution to be feasible for the original problem.
func (s *solver) artificialsClean() bool {
	for i, b := range s.basis {
		if b >= s.std.nTotal && s.xB[i] > artValueTol {
			return false
		}
	}
	return true
}

// solve runs the revised simplex on this standard form, optionally
// warm-started and under the given budgets, returning the status, the
// standard-form values and (when Optimal) the captured basis.  A failed warm
// attempt falls back to one cold solve unless the failure was a deadline or
// cancellation — a budget stop is final, there is nothing left to retry on.
func (s *standard) solve(warm *Basis, ctl *solveControl, stats *Stats) (Status, []float64, *Basis) {
	if stats == nil {
		stats = &Stats{}
	}
	if s.m == 0 {
		// No rows: every column sits at whichever of its bounds its cost
		// prefers; a negative cost with no finite upper bound is an
		// unbounded ray.  (Presolve can reach here with model constraints
		// still on the books — emptyBasis seats their fill columns.)
		vals := make([]float64, s.nCols)
		for j := 0; j < s.nTotal; j++ {
			if s.c[j] < -epsilon {
				if math.IsInf(s.upper[j], 1) {
					return Unbounded, nil, nil
				}
				vals[j] = s.upper[j]
			}
		}
		return Optimal, vals, s.emptyBasis(vals)
	}

	if warm != nil {
		if basisArr, atUp, dvxCols, dvxW, ok := s.installBasis(warm); ok {
			sv := newSolver(s, ctl, stats)
			if st, vals := sv.solveWarm(basisArr, atUp, dvxCols, dvxW); st != statusRetry {
				if st == Optimal {
					cols, wts := sv.devexWeights()
					return st, vals, s.captureBasis(sv.basis, sv.atUpper, cols, wts)
				}
				return st, vals, nil
			}
		}
		stats.ColdFallbacks++
	}

	sv := newSolver(s, ctl, stats)
	st, vals := sv.solveCold()
	if st == Optimal {
		cols, wts := sv.devexWeights()
		return st, vals, s.captureBasis(sv.basis, sv.atUpper, cols, wts)
	}
	return st, vals, nil
}

// devexWeights exposes the learned reference weights for basis capture in
// sparse form (column indices and their >1 values), or nils under a
// non-devex rule.  A solve that never materialized the dense vector passes
// its carried warm-start entries through without an O(columns) scan.
func (sv *solver) devexWeights() ([]int, []float64) {
	if sv.dvx == nil {
		return nil, nil
	}
	if sv.dvx.w == nil {
		return sv.dvx.carriedIdx, sv.dvx.carriedW
	}
	n := 0
	for _, wv := range sv.dvx.w {
		if wv > 1 {
			n++
		}
	}
	if n == 0 {
		return nil, nil
	}
	var cols []int
	var wts []float64
	if scr := sv.std.scr; scr != nil {
		// Capture staging is scratch-backed: captureBasis copies the pairs
		// into the Basis, so nothing here outlives the capture.
		scr.capturedIdx = growInts(scr.capturedIdx, n)
		scr.capturedW = growFloats(scr.capturedW, n)
		cols = scr.capturedIdx[:0]
		wts = scr.capturedW[:0]
	} else {
		cols = make([]int, 0, n)
		wts = make([]float64, 0, n)
	}
	for j, wv := range sv.dvx.w {
		if wv > 1 {
			cols = append(cols, j)
			wts = append(wts, wv)
		}
	}
	return cols, wts
}

// solveWarm restarts from a mapped basis and its nonbasic-at-bound
// statuses: factorize it, then go straight to primal phase 2 if the basic
// solution is still within bounds, or re-optimize with the dual simplex if
// it is at least dual-feasible.  statusRetry means the warm basis was
// unusable and the caller should solve cold.
func (sv *solver) solveWarm(basisArr []int, atUpper []bool, dvxCols []int, dvxW []float64) (Status, []float64) {
	sv.setBasis(basisArr)
	copy(sv.atUpper, atUpper)
	sv.cost = sv.std.c
	// A singular warm basis is repaired in place (ejecting the column the
	// factorization choked on for an unused slack) rather than thrown away:
	// the repaired basis is usually a few dual pivots from optimal, while a
	// cold solve starts from scratch.
	if _, err := sv.refactorizeRepair(); err != nil {
		return statusRetry, nil
	}
	// Install the carried devex reference weights after the initial
	// factorization (a repair there would have reset the fresh framework
	// anyway).  They stay sparse until a pivot materializes the dense
	// vector, but count as learned state from here.
	if sv.dvx != nil && len(dvxCols) > 0 {
		sv.dvx.carriedIdx, sv.dvx.carriedW = dvxCols, dvxW
		sv.dvx.dirty = true
	}

	primalFeasible := true
	for i, v := range sv.xB {
		if v < 0 || v > sv.std.upper[sv.basis[i]] {
			primalFeasible = false
			break
		}
	}
	if !primalFeasible {
		sv.rebuildReduced()
		for j := 0; j < sv.std.nTotal; j++ {
			if sv.basic[j] || sv.std.upper[j] == 0 {
				continue
			}
			d := sv.reduced[j]
			if (sv.atUpper[j] && d > dualTol) || (!sv.atUpper[j] && d < -dualTol) {
				return statusRetry, nil // neither primal- nor dual-feasible
			}
		}
		switch st := sv.dual(); st {
		case Optimal:
			// primal-feasible now; fall through to the phase-2 cleanup.
			sv.clampXB()
		case Infeasible:
			return Infeasible, nil
		case statusDeadline, statusCancelled:
			return st, nil // budget stops are final, never retried cold
		default:
			return statusRetry, nil
		}
	}

	// Phase-2 cleanup: verifies optimality (usually zero iterations after
	// the dual simplex) and fixes any residual dual infeasibility.
	switch st := sv.primal(); st {
	case Optimal:
		if !sv.artificialsClean() {
			// A basic artificial drifted off zero: the "solution" is not
			// feasible for the original problem.  Let the cold path's
			// phase 1 settle it.
			return statusRetry, nil
		}
		return Optimal, sv.values()
	case Unbounded:
		if !sv.artificialsClean() {
			// The ray was found from a point where a basic artificial sits
			// at a positive value — a recession direction of the
			// artificial-relaxed problem, not necessarily of the original.
			// Only the cold path's phase 1 can tell unbounded from
			// infeasible here.
			return statusRetry, nil
		}
		return Unbounded, nil
	case statusDeadline, statusCancelled:
		return st, nil // budget stops are final, never retried cold
	default:
		return statusRetry, nil
	}
}

// solveCold runs the classic two-phase method from the all-slack/artificial
// starting basis, every structural column nonbasic at its lower bound.
func (sv *solver) solveCold() (Status, []float64) {
	st := sv.std
	basisArr := make([]int, st.m)
	hasArt := false
	for i := 0; i < st.m; i++ {
		// LE rows start on their slack; GE rows' surplus has the wrong sign
		// for b ≥ 0, so GE and EQ rows start on their artificial.
		if st.slackOf[i] >= 0 && st.artOf[i] < 0 {
			basisArr[i] = st.slackOf[i]
		} else {
			basisArr[i] = st.artOf[i]
			hasArt = true
		}
	}
	sv.setBasis(basisArr)
	if err := sv.refactorize(); err != nil {
		return statusNumeric, nil
	}

	if hasArt {
		// Phase 1: minimize the sum of artificial values.  The starting
		// basis is primal-feasible for this objective by construction
		// (xB = b ≥ 0 with every nonbasic structural at lower, so no upper
		// bound is active), and artificials never re-enter once driven out.
		phase1 := make([]float64, st.nCols)
		for j := st.nTotal; j < st.nCols; j++ {
			phase1[j] = 1
		}
		sv.cost = phase1
		switch s := sv.primal(); s {
		case Optimal:
		case statusNumeric:
			// Factorization failure or iteration limit: report honestly as
			// a numerical failure, never as a (possibly wrong) infeasible.
			return statusNumeric, nil
		case statusDeadline, statusCancelled:
			return s, nil
		default:
			// Phase 1 is bounded below by zero; Unbounded here means the
			// pricing went numerically sideways.
			return Infeasible, nil
		}
		if sv.objective() > artValueTol {
			return Infeasible, nil
		}
		if err := sv.driveOutArtificials(); err != nil {
			return statusNumeric, nil
		}
	}

	sv.cost = st.c
	switch s := sv.primal(); s {
	case Optimal:
		return Optimal, sv.values()
	case Unbounded:
		return Unbounded, nil
	case statusDeadline, statusCancelled:
		return s, nil
	default:
		// Factorization failure or iteration limit: report honestly as a
		// numerical failure.  Mapping it to Infeasible would let callers
		// that prune on infeasibility (the branch-and-bound loop) silently
		// discard a feasible subtree.
		return statusNumeric, nil
	}
}
