package lp

import "math"

// Revised-simplex tuning.
const (
	// refactorEvery bounds the eta file: after this many pivots the basis
	// is refactorized from scratch, the basic solution recomputed exactly,
	// and the reduced-cost row rebuilt, so product-form drift is capped.
	refactorEvery = 64
	// refreshEvery bounds how stale the incrementally maintained
	// reduced-cost row may get between exact rebuilds.
	refreshEvery = 64
	// feasTol is the primal feasibility tolerance on basic values.
	feasTol = 1e-9
	// dualTol is the dual feasibility tolerance for accepting a warm basis
	// as a dual-simplex starting point.
	dualTol = 1e-7
	// artValueTol is the largest basic artificial value a finished solve may
	// carry before the result is rejected (phase-1 objective check, and the
	// warm-start safety net).
	artValueTol = 1e-6
)

// etaFile is the product-form update sequence: after pivot k on basis
// position r with FTRAN column d, the new basis inverse is Fₖ⁻¹·B⁻¹ with
// Fₖ = I + (d − e_r)·e_rᵀ, so FTRAN applies the Fₖ⁻¹ in order and BTRAN
// applies their transposes in reverse.  Vectors are stored sparse (pivot
// value split out), indexed by basis position.
type etaFile struct {
	pos []int
	piv []float64
	ptr []int
	idx []int
	val []float64
}

func (e *etaFile) reset() {
	e.pos = e.pos[:0]
	e.piv = e.piv[:0]
	e.ptr = append(e.ptr[:0], 0)
	e.idx = e.idx[:0]
	e.val = e.val[:0]
}

func (e *etaFile) count() int { return len(e.pos) }

// push records the eta of a pivot on position r with FTRAN column w.
func (e *etaFile) push(r int, w []float64) {
	e.pos = append(e.pos, r)
	e.piv = append(e.piv, w[r])
	for i, v := range w {
		if v != 0 && i != r {
			e.idx = append(e.idx, i)
			e.val = append(e.val, v)
		}
	}
	e.ptr = append(e.ptr, len(e.idx))
}

// ftran applies the eta inverses in order: x ← Fₖ⁻¹·x.
func (e *etaFile) ftran(x []float64) {
	for k := 0; k < len(e.pos); k++ {
		r := e.pos[k]
		xr := x[r]
		if xr == 0 {
			continue
		}
		t := xr / e.piv[k]
		x[r] = t
		for p := e.ptr[k]; p < e.ptr[k+1]; p++ {
			x[e.idx[p]] -= t * e.val[p]
		}
	}
}

// btran applies the eta inverse transposes in reverse order: y ← Fₖ⁻ᵀ·y.
func (e *etaFile) btran(y []float64) {
	for k := len(e.pos) - 1; k >= 0; k-- {
		s := 0.0
		for p := e.ptr[k]; p < e.ptr[k+1]; p++ {
			if yv := y[e.idx[p]]; yv != 0 {
				s += e.val[p] * yv
			}
		}
		r := e.pos[k]
		y[r] = (y[r] - s) / e.piv[k]
	}
}

// solver holds the revised-simplex working state for one standard form.
type solver struct {
	std *standard
	m   int

	basis []int  // basis[i] = column basic at position i
	basic []bool // per column
	xB    []float64

	lu  luFactor
	eta etaFile

	cost    []float64 // active objective (phase 1 or phase 2), len nCols
	reduced []float64 // maintained reduced costs, len nTotal
	stale   int       // pivots since the last exact rebuild

	sinceRefactor int

	// scratch, len m.
	w, y, rowScratch []float64
}

func newSolver(std *standard) *solver {
	m := std.m
	return &solver{
		std:        std,
		m:          m,
		basis:      make([]int, m),
		basic:      make([]bool, std.nCols),
		xB:         make([]float64, m),
		reduced:    make([]float64, std.nTotal),
		w:          make([]float64, m),
		y:          make([]float64, m),
		rowScratch: make([]float64, m),
	}
}

func (s *solver) setBasis(basis []int) {
	copy(s.basis, basis)
	for j := range s.basic {
		s.basic[j] = false
	}
	for _, b := range basis {
		s.basic[b] = true
	}
}

// ftranVec solves B·out = x, with x indexed by row and out by basis
// position.  x is consumed as scratch.
func (s *solver) ftranVec(x, out []float64) {
	f := &s.lu
	for k := 0; k < s.m; k++ {
		s.y[k] = x[f.prow[k]]
	}
	f.lsolve(s.y)
	f.usolve(s.y)
	for k := 0; k < s.m; k++ {
		out[f.q[k]] = s.y[k]
	}
	s.eta.ftran(out)
}

// ftranCol solves B·w = A_j for standard-form column j, into s.w.
func (s *solver) ftranCol(j int) []float64 {
	rows, vals := s.std.col(j)
	x := s.rowScratch
	for i := range x {
		x[i] = 0
	}
	for k, r := range rows {
		x[r] = vals[k]
	}
	s.ftranVec(x, s.w)
	return s.w
}

// btranVec solves Bᵀ·out = c, with c indexed by basis position and out by
// row.  c is not modified.
func (s *solver) btranVec(c, out []float64) {
	f := &s.lu
	w := s.y
	copy(w, c)
	s.eta.btran(w)
	for k := 0; k < s.m; k++ {
		s.rowScratch[k] = w[f.q[k]]
	}
	copy(w, s.rowScratch)
	f.utsolve(w)
	f.ltsolve(w)
	for k := 0; k < s.m; k++ {
		out[f.prow[k]] = w[k]
	}
}

// btranUnit solves Bᵀ·rho = e_p for basis position p: rho is row p of the
// basis inverse, indexed by row — the pricing vector of the incremental
// reduced-cost update and of the dual-simplex row scan.
func (s *solver) btranUnit(p int, out []float64) {
	c := s.rowScratch
	for i := range c {
		c[i] = 0
	}
	c[p] = 1
	s.btranVec(c, out)
}

// refactorize rebuilds the LU factors of the current basis, clears the eta
// file and recomputes the basic solution exactly.
func (s *solver) refactorize() error {
	if err := s.lu.factorize(s.std, s.basis); err != nil {
		return err
	}
	s.eta.reset()
	s.sinceRefactor = 0
	copy(s.rowScratch, s.std.b)
	s.ftranVec(s.rowScratch, s.xB)
	s.clampXB()
	return nil
}

// clampXB zeroes roundoff-negative basic values within the feasibility
// tolerance (the revised-simplex analogue of the dense pivot's rhs clamp).
func (s *solver) clampXB() {
	for i, v := range s.xB {
		if v < 0 && v > -feasTol {
			s.xB[i] = 0
		}
	}
}

// rebuildReduced recomputes the reduced-cost row exactly: one BTRAN of the
// basic costs, then one pass over the CSC nonzeros.
func (s *solver) rebuildReduced() {
	cB := s.rowScratch
	for k := 0; k < s.m; k++ {
		cB[k] = s.cost[s.basis[k]]
	}
	dual := s.w // safe: callers treat w as dead across rebuilds
	s.btranVec(cB, dual)
	for j := 0; j < s.std.nTotal; j++ {
		s.reduced[j] = s.cost[j] - s.std.colDot(j, dual)
	}
	s.stale = 0
}

// pickEntering nominates the entering column from the maintained
// reduced-cost row: Dantzig's most-negative rule, or Bland's least-index
// rule once the iteration count suggests degenerate stalling.
func (s *solver) pickEntering(useBland bool) int {
	entering := -1
	best := -epsilon
	for j := 0; j < s.std.nTotal; j++ {
		if s.basic[j] {
			continue
		}
		r := s.reduced[j]
		if useBland {
			if r < -epsilon {
				return j
			}
		} else if r < best {
			best = r
			entering = j
		}
	}
	return entering
}

// applyPivot performs the basis change for entering column q leaving at
// position p with FTRAN column w: update the basic solution, append the
// eta, and swap the basis bookkeeping.
func (s *solver) applyPivot(q, p int, w []float64) {
	theta := s.xB[p] / w[p]
	for i := range s.xB {
		if i == p || w[i] == 0 {
			continue
		}
		s.xB[i] -= theta * w[i]
		if s.xB[i] < 0 && s.xB[i] > -feasTol {
			s.xB[i] = 0
		}
	}
	s.xB[p] = theta
	s.eta.push(p, w)
	s.basic[s.basis[p]] = false
	s.basic[q] = true
	s.basis[p] = q
	s.sinceRefactor++
}

// updateReducedAfterPivot maintains the reduced-cost row across the pivot
// that entered q at position p with exact reduced cost dq: with ρ = row p of
// the new basis inverse, d'_j = d_j − dq·(ρ·A_j).  One sparse BTRAN plus one
// pass over the CSC nonzeros — the revised-simplex analogue of the dense
// tableau's reduced-row elimination.
func (s *solver) updateReducedAfterPivot(q int, p int, dq float64) {
	rho := s.w // w's FTRAN contents are dead once the pivot is applied
	s.btranUnit(p, rho)
	for j := 0; j < s.std.nTotal; j++ {
		if s.basic[j] {
			continue
		}
		if alpha := s.std.colDot(j, rho); alpha != 0 {
			s.reduced[j] -= dq * alpha
		}
	}
	s.reduced[q] = 0
	s.stale++
}

// objective returns the active-cost objective of the current basic solution.
func (s *solver) objective() float64 {
	obj := 0.0
	for i := 0; i < s.m; i++ {
		obj += s.cost[s.basis[i]] * s.xB[i]
	}
	return obj
}

// primal runs primal simplex iterations from the current (primal-feasible)
// basis until optimality, unboundedness or the iteration limit.  Artificial
// columns are never priced: they can leave the basis but never re-enter.
func (s *solver) primal() Status {
	m, n := s.m, s.std.nCols
	maxIter := 30 * (m + n)
	if maxIter < 2000 {
		maxIter = 2000
	}
	blandAfter := 4 * (m + n)

	s.rebuildReduced()
	for iter := 0; iter < maxIter; iter++ {
		useBland := iter > blandAfter
		if s.stale >= refreshEvery || (useBland && s.stale > 0) {
			s.rebuildReduced()
		}
		q := s.pickEntering(useBland)
		if q < 0 && s.stale > 0 {
			// The maintained row says optimal; confirm exactly so drift can
			// delay convergence but never fake it.
			s.rebuildReduced()
			q = s.pickEntering(useBland)
		}
		if q < 0 {
			return Optimal
		}

		w := s.ftranCol(q)
		// Exact reduced cost of the nominee, free from the FTRAN column:
		// d_q = c_q − c_B·w.  A nominee the maintained row promoted but the
		// exact value rejects is neutralized and re-picked — drift can cost
		// an FTRAN, never a non-improving pivot.
		dq := s.cost[q]
		for i := 0; i < m; i++ {
			if ci := s.cost[s.basis[i]]; ci != 0 && w[i] != 0 {
				dq -= ci * w[i]
			}
		}
		if dq >= -epsilon {
			s.reduced[q] = dq
			continue
		}

		// Ratio test.  The default is a Harris-style two-pass: bound the
		// step length with the feasibility tolerance, then among the rows
		// that stay within the bound pick the LARGEST pivot element.  On
		// badly scaled problems (the exact MILP's big-M rows) the FTRAN
		// column can carry phantom entries — pure eta-file roundoff just
		// above pivotEpsilon — and pivoting on one makes the basis exactly
		// singular; preferring the largest eligible pivot never selects a
		// phantom when a real entry is available.  Under Bland's rule the
		// classic exact test with smallest-index ties is used instead, as
		// its termination guarantee requires.
		leaving := -1
		if useBland {
			bestRatio := math.Inf(1)
			for i := 0; i < m; i++ {
				wi := w[i]
				if wi > pivotEpsilon {
					ratio := s.xB[i] / wi
					if ratio < bestRatio-epsilon ||
						(math.Abs(ratio-bestRatio) <= epsilon && (leaving == -1 || s.basis[i] < s.basis[leaving])) {
						bestRatio = ratio
						leaving = i
					}
				}
			}
		} else {
			thetaMax := math.Inf(1)
			for i := 0; i < m; i++ {
				if wi := w[i]; wi > pivotEpsilon {
					if r := (s.xB[i] + feasTol) / wi; r < thetaMax {
						thetaMax = r
					}
				}
			}
			bestW := 0.0
			for i := 0; i < m; i++ {
				wi := w[i]
				if wi <= pivotEpsilon || s.xB[i]/wi > thetaMax {
					continue
				}
				if wi > bestW || (wi == bestW && (leaving == -1 || s.basis[i] < s.basis[leaving])) {
					bestW = wi
					leaving = i
				}
			}
		}
		if leaving == -1 {
			return Unbounded
		}

		s.applyPivot(q, leaving, w)
		if s.sinceRefactor >= refactorEvery {
			if err := s.refactorize(); err != nil {
				return statusNumeric
			}
			s.rebuildReduced()
		} else {
			s.updateReducedAfterPivot(q, leaving, dq)
		}
	}
	return statusNumeric
}

// dual runs dual simplex iterations from the current (dual-feasible) basis
// until primal feasibility or a proof of infeasibility.  It is the
// warm-start workhorse: after bound/rhs mutations the previous optimal
// basis stays dual-feasible and a few dual pivots restore primal
// feasibility.  Dual iterations rebuild the reduced-cost row exactly each
// time — warm restarts take a handful of pivots, so exactness beats
// maintenance here.
func (s *solver) dual() Status {
	m, n := s.m, s.std.nCols
	maxIter := 30 * (m + n)
	if maxIter < 2000 {
		maxIter = 2000
	}
	rho := make([]float64, m)

	s.rebuildReduced()
	for iter := 0; iter < maxIter; iter++ {
		// Leaving: most negative basic value.
		p := -1
		worst := -feasTol
		for i, v := range s.xB {
			if v < worst {
				worst = v
				p = i
			}
		}
		if p < 0 {
			return Optimal
		}

		s.btranUnit(p, rho)

		// Entering: dual ratio test over the eligible columns of row p.
		q := -1
		best := math.Inf(1)
		for j := 0; j < s.std.nTotal; j++ {
			if s.basic[j] {
				continue
			}
			alpha := s.std.colDot(j, rho)
			if alpha >= -pivotEpsilon {
				continue
			}
			d := s.reduced[j]
			if d < 0 {
				d = 0
			}
			ratio := d / -alpha
			if ratio < best-epsilon || (math.Abs(ratio-best) <= epsilon && (q == -1 || j < q)) {
				best = ratio
				q = j
			}
		}
		if q < 0 {
			// Row p proves infeasibility — but only trust fresh factors:
			// with etas stacked up, refactorize and re-verify first.
			if s.eta.count() > 0 {
				if err := s.refactorize(); err != nil {
					return statusNumeric
				}
				s.rebuildReduced()
				continue
			}
			return Infeasible
		}

		w := s.ftranCol(q)
		if w[p] >= -pivotEpsilon {
			// FTRAN disagrees with the BTRAN row — numerical drift.
			// Refactorize and retry the iteration.
			if s.sinceRefactor == 0 {
				return statusNumeric
			}
			if err := s.refactorize(); err != nil {
				return statusNumeric
			}
			s.rebuildReduced()
			continue
		}

		s.applyPivot(q, p, w)
		if s.sinceRefactor >= refactorEvery {
			if err := s.refactorize(); err != nil {
				return statusNumeric
			}
		}
		s.rebuildReduced()
	}
	return statusNumeric
}

// driveOutArtificials pivots basic artificial columns out of the basis after
// phase 1 where possible; rows where no structural or slack column has a
// nonzero entry are redundant and keep their artificial basic at zero.
func (s *solver) driveOutArtificials() error {
	rho := make([]float64, s.m)
	for p := 0; p < s.m; p++ {
		if s.basis[p] < s.std.nTotal {
			continue
		}
		s.btranUnit(p, rho)
		found := -1
		for j := 0; j < s.std.nTotal; j++ {
			if s.basic[j] {
				continue
			}
			if alpha := s.std.colDot(j, rho); math.Abs(alpha) > pivotEpsilon {
				found = j
				break
			}
		}
		if found < 0 {
			continue
		}
		w := s.ftranCol(found)
		wMax := 0.0
		for _, v := range w {
			if a := math.Abs(v); a > wMax {
				wMax = a
			}
		}
		// Both an absolute and a relative guard: a pivot that is tiny
		// relative to the column is likely eta-file roundoff, and pivoting
		// on it can make the basis numerically singular.
		if math.Abs(w[p]) <= pivotEpsilon || math.Abs(w[p]) <= 1e-9*wMax {
			continue
		}
		s.applyPivot(found, p, w)
		if s.sinceRefactor >= refactorEvery {
			if err := s.refactorize(); err != nil {
				return err
			}
		}
	}
	return nil
}

// values scatters the basic solution into a standard-form column vector.
func (s *solver) values() []float64 {
	out := make([]float64, s.std.nCols)
	for i, b := range s.basis {
		v := s.xB[i]
		if v < 0 {
			v = 0
		}
		out[b] = v
	}
	return out
}

// artificialsClean reports whether every basic artificial sits at ~zero, the
// condition for the basic solution to be feasible for the original problem.
func (s *solver) artificialsClean() bool {
	for i, b := range s.basis {
		if b >= s.std.nTotal && s.xB[i] > artValueTol {
			return false
		}
	}
	return true
}

// solve runs the revised simplex on this standard form, optionally
// warm-started, returning the status, the standard-form values and (when
// Optimal) the captured basis.
func (s *standard) solve(warm *Basis) (Status, []float64, *Basis) {
	if s.m == 0 {
		// No rows: every standard-form variable is only bounded below by
		// zero, so any negative cost direction is unbounded.
		for j := 0; j < s.nTotal; j++ {
			if s.c[j] < -epsilon {
				return Unbounded, nil, nil
			}
		}
		return Optimal, make([]float64, s.nCols), &Basis{}
	}

	if warm != nil {
		if basisArr, ok := s.installBasis(warm); ok {
			sv := newSolver(s)
			if st, vals := sv.solveWarm(basisArr); st != statusRetry {
				if st == Optimal {
					return st, vals, s.captureBasis(sv.basis)
				}
				return st, vals, nil
			}
		}
	}

	sv := newSolver(s)
	st, vals := sv.solveCold()
	if st == Optimal {
		return st, vals, s.captureBasis(sv.basis)
	}
	return st, vals, nil
}

// solveWarm restarts from a mapped basis: factorize it, then go straight to
// primal phase 2 if the basic solution is still feasible, or re-optimize
// with the dual simplex if it is at least dual-feasible.  statusRetry means
// the warm basis was unusable and the caller should solve cold.
func (sv *solver) solveWarm(basisArr []int) (Status, []float64) {
	sv.setBasis(basisArr)
	sv.cost = sv.std.c
	if err := sv.refactorize(); err != nil {
		return statusRetry, nil
	}

	primalFeasible := true
	for _, v := range sv.xB {
		if v < 0 {
			primalFeasible = false
			break
		}
	}
	if !primalFeasible {
		sv.rebuildReduced()
		for j := 0; j < sv.std.nTotal; j++ {
			if !sv.basic[j] && sv.reduced[j] < -dualTol {
				return statusRetry, nil // neither primal- nor dual-feasible
			}
		}
		switch st := sv.dual(); st {
		case Optimal:
			// primal-feasible now; fall through to the phase-2 cleanup.
			sv.clampXB()
		case Infeasible:
			return Infeasible, nil
		default:
			return statusRetry, nil
		}
	}

	// Phase-2 cleanup: verifies optimality (usually zero iterations after
	// the dual simplex) and fixes any residual dual infeasibility.
	switch st := sv.primal(); st {
	case Optimal:
		if !sv.artificialsClean() {
			// A basic artificial drifted off zero: the "solution" is not
			// feasible for the original problem.  Let the cold path's
			// phase 1 settle it.
			return statusRetry, nil
		}
		return Optimal, sv.values()
	case Unbounded:
		if !sv.artificialsClean() {
			// The ray was found from a point where a basic artificial sits
			// at a positive value — a recession direction of the
			// artificial-relaxed problem, not necessarily of the original.
			// Only the cold path's phase 1 can tell unbounded from
			// infeasible here.
			return statusRetry, nil
		}
		return Unbounded, nil
	default:
		return statusRetry, nil
	}
}

// solveCold runs the classic two-phase method from the all-slack/artificial
// starting basis.
func (sv *solver) solveCold() (Status, []float64) {
	st := sv.std
	basisArr := make([]int, st.m)
	hasArt := false
	for i := 0; i < st.m; i++ {
		// LE rows start on their slack; GE rows' surplus has the wrong sign
		// for b ≥ 0, so GE and EQ rows start on their artificial.
		if st.slackOf[i] >= 0 && st.artOf[i] < 0 {
			basisArr[i] = st.slackOf[i]
		} else {
			basisArr[i] = st.artOf[i]
			hasArt = true
		}
	}
	sv.setBasis(basisArr)
	if err := sv.refactorize(); err != nil {
		return statusNumeric, nil
	}

	if hasArt {
		// Phase 1: minimize the sum of artificial values.  The starting
		// basis is primal-feasible for this objective by construction
		// (xB = b ≥ 0), and artificials never re-enter once driven out.
		phase1 := make([]float64, st.nCols)
		for j := st.nTotal; j < st.nCols; j++ {
			phase1[j] = 1
		}
		sv.cost = phase1
		switch s := sv.primal(); s {
		case Optimal:
		case statusNumeric:
			// Factorization failure or iteration limit: report honestly as
			// a numerical failure, never as a (possibly wrong) infeasible.
			return statusNumeric, nil
		default:
			// Phase 1 is bounded below by zero; Unbounded here means the
			// pricing went numerically sideways.
			return Infeasible, nil
		}
		if sv.objective() > artValueTol {
			return Infeasible, nil
		}
		if err := sv.driveOutArtificials(); err != nil {
			return statusNumeric, nil
		}
	}

	sv.cost = st.c
	switch s := sv.primal(); s {
	case Optimal:
		return Optimal, sv.values()
	case Unbounded:
		return Unbounded, nil
	default:
		// Factorization failure or iteration limit: report honestly as a
		// numerical failure.  Mapping it to Infeasible would let callers
		// that prune on infeasibility (the branch-and-bound loop) silently
		// discard a feasible subtree.
		return statusNumeric, nil
	}
}
