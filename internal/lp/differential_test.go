package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomProblem draws an LP with the shape mix of the provisioning and
// partitioning models: mixed senses, free and bounded variables, LE/GE/EQ
// rows, empty rows, negative right-hand sides.  Roughly a third of the
// draws come out infeasible or unbounded, which is the point — the
// differential test must pin Status, not just objectives.
func randomProblem(rng *rand.Rand) *Problem { return randomProblemShaped(rng, false) }

// randomProblemShaped additionally draws bound-heavy instances — the shape
// of the milp relaxations, where almost every variable carries a finite
// upper bound (and a few are fixed by lo == hi branch pins) while the
// constraint count stays small.  These exercise the implicit-bound paths
// hardest: nonbasic-at-upper statuses, bound flips, and fixed columns,
// against the dense reference that still expands every finite bound into
// an explicit row.
func randomProblemShaped(rng *rand.Rand, boundHeavy bool) *Problem {
	sense := Minimize
	if rng.Intn(2) == 0 {
		sense = Maximize
	}
	p := NewProblem(sense)
	nVars := 1 + rng.Intn(10)
	nCons := rng.Intn(13)
	if boundHeavy {
		nVars = 3 + rng.Intn(12)
		nCons = rng.Intn(5)
	}
	vars := make([]Var, nVars)
	for j := 0; j < nVars; j++ {
		var lb float64
		switch rng.Intn(5) {
		case 0:
			lb = math.Inf(-1)
		case 1:
			lb = -rng.Float64() * 5
		case 2:
			lb = rng.Float64() * 3
		default:
			lb = 0
		}
		ub := Infinity
		finiteUB := rng.Intn(3) != 0
		if boundHeavy {
			finiteUB = rng.Intn(10) != 0
		}
		if finiteUB {
			base := lb
			if math.IsInf(base, -1) {
				base = -rng.Float64() * 5
			}
			ub = base + rng.Float64()*8
			if !math.IsInf(lb, -1) && rng.Intn(12) == 0 {
				ub = lb // fixed variable (lo == hi)
			}
		}
		vars[j] = p.MustVariable("x", lb, ub, rng.Float64()*4-2)
	}
	for i := 0; i < nCons; i++ {
		terms := make([]Term, 0, nVars)
		for j := 0; j < nVars; j++ {
			if rng.Intn(3) == 0 {
				continue
			}
			terms = append(terms, Term{Var: vars[j], Coeff: rng.Float64()*4 - 2})
		}
		op := Op(1 + rng.Intn(3))
		rhs := rng.Float64()*10 - 3
		if len(terms) == 0 && op == EQ {
			// An empty equality is almost always infeasible; keep a few but
			// mostly give empty rows an inequality so the mix stays useful.
			op = Op(1 + rng.Intn(3))
		}
		if err := p.AddConstraint("c", op, rhs, terms...); err != nil {
			panic(err)
		}
	}
	return p
}

// checkModelFeasible verifies a claimed-optimal solution against the model
// itself: every variable within bounds, every constraint satisfied.
func checkModelFeasible(t *testing.T, trial int, p *Problem, sol *Solution) {
	t.Helper()
	const tol = 1e-6
	for j, v := range p.vars {
		x := sol.Value(Var(j))
		if x < v.lb-tol || x > v.ub+tol {
			t.Fatalf("trial %d: x[%d]=%v violates bounds [%v, %v]", trial, j, x, v.lb, v.ub)
		}
	}
	for i, c := range p.cons {
		dot := 0.0
		for _, tm := range c.terms {
			dot += tm.Coeff * sol.Value(tm.Var)
		}
		switch c.op {
		case LE:
			if dot > c.rhs+tol {
				t.Fatalf("trial %d: constraint %d: %v > %v", trial, i, dot, c.rhs)
			}
		case GE:
			if dot < c.rhs-tol {
				t.Fatalf("trial %d: constraint %d: %v < %v", trial, i, dot, c.rhs)
			}
		case EQ:
			if math.Abs(dot-c.rhs) > tol {
				t.Fatalf("trial %d: constraint %d: %v != %v", trial, i, dot, c.rhs)
			}
		}
	}
}

// TestRevisedMatchesDenseCore is the refactor's pin: the revised simplex
// against the frozen pre-refactor dense-tableau core over 600 randomized
// LPs — half of them bound-heavy, so the implicit-bound machinery is
// differentially tested against the reference's explicit bound rows.
// Statuses must be identical on every problem; optimal objectives must
// agree to 1e-9 (relative), and the revised solution must satisfy the
// model directly.
func TestRevisedMatchesDenseCore(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	statuses := map[Status]int{}
	for trial := 0; trial < 600; trial++ {
		p := randomProblemShaped(rng, trial%2 == 1)

		revised, errR := p.Solve()
		dense, errD := denseSolve(p)

		if (errR == nil) != (errD == nil) {
			t.Fatalf("trial %d: revised err %v, dense err %v", trial, errR, errD)
		}
		var stR, stD Status
		if revised != nil {
			stR = revised.Status
		}
		if dense != nil {
			stD = dense.Status
		}
		if stR != stD {
			t.Fatalf("trial %d: revised status %v, dense status %v", trial, stR, stD)
		}
		statuses[stR]++
		if stR != Optimal {
			continue
		}
		tol := 1e-9 * math.Max(1, math.Abs(dense.Objective))
		if math.Abs(revised.Objective-dense.Objective) > tol {
			t.Fatalf("trial %d: revised objective %v, dense %v (tol %v)",
				trial, revised.Objective, dense.Objective, tol)
		}
		checkModelFeasible(t, trial, p, revised)
		if revised.Basis() == nil {
			t.Fatalf("trial %d: optimal solve returned no basis", trial)
		}
	}
	// The generator must actually exercise all three outcomes.
	for _, st := range []Status{Optimal, Infeasible, Unbounded} {
		if statuses[st] == 0 {
			t.Fatalf("generator produced no %v problems (distribution %v)", st, statuses)
		}
	}
}

// mutateProblem applies the warm-start mutation mix: rhs perturbations
// (scheduler rounds) and bound tightenings (branch and bound).
func mutateProblem(rng *rand.Rand, p *Problem) {
	for i := 0; i < p.NumConstraints(); i++ {
		if rng.Intn(2) == 0 {
			if err := p.SetRHS(i, p.cons[i].rhs+rng.Float64()*2-1); err != nil {
				panic(err)
			}
		}
	}
	for j := 0; j < p.NumVariables(); j++ {
		if rng.Intn(4) != 0 {
			continue
		}
		lb, ub := p.vars[j].lb, p.vars[j].ub
		if rng.Intn(2) == 0 {
			// Tighten the upper bound (a "branch down").
			base := lb
			if math.IsInf(base, -1) {
				base = -2
			}
			nub := base + rng.Float64()*4
			if nub < ub {
				ub = nub
			}
		} else if !math.IsInf(lb, -1) {
			lb += rng.Float64()
			if ub < lb {
				ub = lb
			}
		}
		if !math.IsInf(lb, -1) && !math.IsInf(ub, 1) && rng.Intn(8) == 0 {
			ub = lb // pin to a point (branch-and-bound integer fix)
		}
		if err := p.SetBounds(Var(j), lb, ub); err != nil {
			panic(err)
		}
	}
}

// TestSolveFromMatchesColdSolve pins the warm-start contract over
// randomized re-solve sequences: solving a mutated problem from the
// previous optimal basis must agree with a cold solve — same Status, same
// objective to 1e-9 — every time, across a chain of mutations.
func TestSolveFromMatchesColdSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	warmUsed := 0
	for trial := 0; trial < 200; trial++ {
		p := randomProblemShaped(rng, trial%3 == 0)
		sol, err := p.Solve()
		if err != nil {
			continue // warm starts only matter after a successful solve
		}
		basis := sol.Basis()
		for step := 0; step < 3; step++ {
			mutateProblem(rng, p)
			warm, errW := p.SolveFrom(basis)
			cold, errC := p.Solve()
			if (errW == nil) != (errC == nil) {
				t.Fatalf("trial %d step %d: warm err %v, cold err %v", trial, step, errW, errC)
			}
			var stW, stC Status
			if warm != nil {
				stW = warm.Status
			}
			if cold != nil {
				stC = cold.Status
			}
			if stW != stC {
				t.Fatalf("trial %d step %d: warm status %v, cold status %v", trial, step, stW, stC)
			}
			if stW != Optimal {
				break
			}
			tol := 1e-9 * math.Max(1, math.Abs(cold.Objective))
			if math.Abs(warm.Objective-cold.Objective) > tol {
				t.Fatalf("trial %d step %d: warm objective %v, cold %v (tol %v)",
					trial, step, warm.Objective, cold.Objective, tol)
			}
			checkModelFeasible(t, trial, p, warm)
			basis = warm.Basis()
			warmUsed++
		}
	}
	if warmUsed < 100 {
		t.Fatalf("only %d warm re-solves exercised; generator mix is off", warmUsed)
	}
}

// TestSolveFromAfterRHSChange is the scheduler round in miniature: one
// Problem kept alive, right-hand sides rewritten, re-solved from the
// previous basis.
func TestSolveFromAfterRHSChange(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.MustVariable("x", 0, Infinity, 2)
	y := p.MustVariable("y", 0, Infinity, 3)
	if err := p.AddConstraint("demand", GE, 10, Term{x, 1}, Term{y, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint("mix", LE, 7, Term{x, 1}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	if math.Abs(sol.Objective-23) > 1e-9 {
		t.Fatalf("cold objective = %v, want 23", sol.Objective)
	}
	// New round: demand rises, the x cap falls.
	if err := p.SetRHS(0, 14); err != nil {
		t.Fatal(err)
	}
	if err := p.SetRHS(1, 5); err != nil {
		t.Fatal(err)
	}
	warm, err := p.SolveFrom(sol.Basis())
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	// x=5, y=9 → 2·5 + 3·9 = 37.
	if math.Abs(warm.Objective-37) > 1e-9 {
		t.Errorf("warm objective = %v, want 37", warm.Objective)
	}
	if math.Abs(warm.Value(x)-5) > 1e-7 || math.Abs(warm.Value(y)-9) > 1e-7 {
		t.Errorf("warm solution = (%v, %v), want (5, 9)", warm.Value(x), warm.Value(y))
	}
}

// TestSolveFromAfterBoundTightening is the branch-and-bound child node in
// miniature: tightening a bound keeps the parent basis dual-feasible, and
// the warm solve must land on the child optimum.
func TestSolveFromAfterBoundTightening(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.MustVariable("x", 0, Infinity, 1)
	if err := p.AddConstraint("c", LE, 7, Term{x, 2}); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Value(x)-3.5) > 1e-9 {
		t.Fatalf("relaxation x = %v, want 3.5", sol.Value(x))
	}
	// Branch down: x ≤ 3 (a pure bound edit — the standard form gains no
	// row, the parent basis stays dual-feasible).
	if err := p.SetBounds(x, 0, 3); err != nil {
		t.Fatal(err)
	}
	warm, err := p.SolveFrom(sol.Basis())
	if err != nil {
		t.Fatalf("warm child solve: %v", err)
	}
	if math.Abs(warm.Value(x)-3) > 1e-9 {
		t.Errorf("child x = %v, want 3", warm.Value(x))
	}
	// Branch up from the original: x ≥ 4 is infeasible under 2x ≤ 7.
	if err := p.SetBounds(x, 4, Infinity); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SolveFrom(sol.Basis()); !errors.Is(err, ErrInfeasible) {
		t.Errorf("up branch: want ErrInfeasible, got %v", err)
	}
}

// TestSolveFromStaleBasisFallsBack pins the fallback contract: a basis from
// an unrelated problem must be ignored, not crash or corrupt the solve.
func TestSolveFromStaleBasisFallsBack(t *testing.T) {
	other := NewProblem(Minimize)
	a := other.MustVariable("a", 0, 5, 1)
	b := other.MustVariable("b", 0, 5, 1)
	if err := other.AddConstraint("c", GE, 4, Term{a, 1}, Term{b, 1}); err != nil {
		t.Fatal(err)
	}
	osol, err := other.Solve()
	if err != nil {
		t.Fatal(err)
	}

	p := NewProblem(Maximize)
	x := p.MustVariable("x", 0, Infinity, 3)
	y := p.MustVariable("y", 0, Infinity, 5)
	for _, c := range []struct {
		rhs float64
		tx  float64
		ty  float64
	}{{4, 1, 0}, {12, 0, 2}, {18, 3, 2}} {
		if err := p.AddConstraint("c", LE, c.rhs, Term{x, c.tx}, Term{y, c.ty}); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := p.SolveFrom(osol.Basis())
	if err != nil {
		t.Fatalf("SolveFrom with foreign basis: %v", err)
	}
	if math.Abs(sol.Objective-36) > 1e-9 {
		t.Errorf("objective = %v, want 36", sol.Objective)
	}
}

// randomProblemDegenerate draws a degeneracy-heavy instance: small-integer
// coefficients and costs (many exact ties in pricing), duplicated and
// scaled-duplicate rows (redundant constraints that put several basic
// values at zero), and frequent zero right-hand sides.  This is the family
// where pricing rules genuinely diverge — Dantzig stalls on ties that
// devex's reference weights break, and Bland grinds through them by index —
// so it is the family the cross-rule differential must lean on.
func randomProblemDegenerate(rng *rand.Rand) *Problem {
	sense := Minimize
	if rng.Intn(2) == 0 {
		sense = Maximize
	}
	p := NewProblem(sense)
	nVars := 3 + rng.Intn(10)
	vars := make([]Var, nVars)
	for j := 0; j < nVars; j++ {
		ub := Infinity
		if rng.Intn(3) != 0 {
			ub = float64(1 + rng.Intn(4))
		}
		// Integer costs from a tiny set: exact pricing ties by design.
		vars[j] = p.MustVariable("x", 0, ub, float64(rng.Intn(4)-1))
	}
	nCons := 2 + rng.Intn(8)
	type row struct {
		terms []Term
		op    Op
		rhs   float64
	}
	var rows []row
	for i := 0; i < nCons; i++ {
		if len(rows) > 0 && rng.Intn(3) == 0 {
			// Duplicate (sometimes scaled) an earlier row: redundant
			// constraints leave ties in the ratio test, the classic source
			// of degenerate vertices.
			src := rows[rng.Intn(len(rows))]
			scale := float64(1 + rng.Intn(2))
			terms := make([]Term, len(src.terms))
			for k, tm := range src.terms {
				terms[k] = Term{tm.Var, tm.Coeff * scale}
			}
			rows = append(rows, row{terms, src.op, src.rhs * scale})
			continue
		}
		terms := make([]Term, 0, nVars)
		for j := 0; j < nVars; j++ {
			if rng.Intn(2) == 0 {
				continue
			}
			terms = append(terms, Term{vars[j], float64(rng.Intn(3))})
		}
		rhs := float64(rng.Intn(6))
		if rng.Intn(3) == 0 {
			rhs = 0 // zero rhs: a vertex with basic values pinned at zero
		}
		rows = append(rows, row{terms, Op(1 + rng.Intn(3)), rhs})
	}
	for _, r := range rows {
		if err := p.AddConstraint("c", r.op, r.rhs, r.terms...); err != nil {
			panic(err)
		}
	}
	return p
}

// drawDifferentialProblem rotates through the three generator families so
// the cross-rule suite covers the provisioning/partitioning mix, the
// bound-heavy milp-relaxation shape, and the degenerate family.
func drawDifferentialProblem(rng *rand.Rand, trial int) *Problem {
	switch trial % 3 {
	case 0:
		return randomProblemShaped(rng, false)
	case 1:
		return randomProblemShaped(rng, true)
	default:
		return randomProblemDegenerate(rng)
	}
}

// TestPricingRulesAgreeOnRandomLPs is the pricing tentpole's differential
// pin: 600 randomized LPs — a third of them degenerate-heavy — solved under
// devex, Dantzig and Bland must agree on Status everywhere and on the
// optimal objective to 1e-9 (relative); each rule's claimed-optimal point
// must satisfy the model directly (degenerate instances have alternative
// optima, so values may differ — objectives may not).
func TestPricingRulesAgreeOnRandomLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(271828))
	rules := []struct {
		name string
		rule PricingRule
	}{{"devex", PricingDevex}, {"dantzig", PricingDantzig}, {"bland", PricingBland}}
	statuses := map[Status]int{}
	pivots := make([]int, len(rules))
	degPivots := make([]int, len(rules))
	for trial := 0; trial < 600; trial++ {
		p := drawDifferentialProblem(rng, trial)
		sols := make([]*Solution, len(rules))
		for k, r := range rules {
			sol, err := p.SolveWithOptions(SolveOptions{Pricing: r.rule})
			if err != nil && !errors.Is(err, ErrInfeasible) && !errors.Is(err, ErrUnbounded) {
				t.Fatalf("trial %d: %s: %v", trial, r.name, err)
			}
			if sol == nil {
				t.Fatalf("trial %d: %s: nil solution", trial, r.name)
			}
			sols[k] = sol
			pivots[k] += sol.Stats.Pivots
			if trial%3 == 2 {
				degPivots[k] += sol.Stats.Pivots
			}
		}
		ref := sols[0]
		statuses[ref.Status]++
		for k, r := range rules[1:] {
			if sols[k+1].Status != ref.Status {
				t.Fatalf("trial %d: %s status %v, devex status %v",
					trial, r.name, sols[k+1].Status, ref.Status)
			}
		}
		if ref.Status != Optimal {
			continue
		}
		for k, r := range rules {
			tol := 1e-9 * math.Max(1, math.Abs(ref.Objective))
			if math.Abs(sols[k].Objective-ref.Objective) > tol {
				t.Fatalf("trial %d: %s objective %v, devex %v (tol %v)",
					trial, r.name, sols[k].Objective, ref.Objective, tol)
			}
			checkModelFeasible(t, trial, p, sols[k])
		}
	}
	for _, st := range []Status{Optimal, Infeasible, Unbounded} {
		if statuses[st] == 0 {
			t.Fatalf("generator produced no %v problems (distribution %v)", st, statuses)
		}
	}
	t.Logf("pivots devex=%d dantzig=%d bland=%d (degenerate family: devex=%d dantzig=%d bland=%d)",
		pivots[0], pivots[1], pivots[2], degPivots[0], degPivots[1], degPivots[2])
}

// TestDevexSolveTwiceBitIdentical pins determinism: the devex framework
// (weight updates, candidate rotation, fused pricing) must not introduce
// any run-to-run variation — two cold solves of the same problem must take
// the same pivot path and produce bit-identical objectives and values.
func TestDevexSolveTwiceBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(16180))
	for trial := 0; trial < 120; trial++ {
		p := drawDifferentialProblem(rng, trial)
		a, errA := p.Solve()
		b, errB := p.Solve()
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: first err %v, second err %v", trial, errA, errB)
		}
		if a.Status != b.Status {
			t.Fatalf("trial %d: status %v then %v", trial, a.Status, b.Status)
		}
		// PresolveNanos is wall-clock and documented as the one
		// non-deterministic Stats field; everything else must match.
		a.Stats.PresolveNanos, b.Stats.PresolveNanos = 0, 0
		if a.Stats != b.Stats {
			t.Fatalf("trial %d: stats %+v then %+v", trial, a.Stats, b.Stats)
		}
		if a.Status != Optimal {
			continue
		}
		if a.Objective != b.Objective {
			t.Fatalf("trial %d: objective %v then %v (must be bit-identical)",
				trial, a.Objective, b.Objective)
		}
		va, vb := a.Values(), b.Values()
		for j := range va {
			if va[j] != vb[j] {
				t.Fatalf("trial %d: value[%d] %v then %v", trial, j, va[j], vb[j])
			}
		}
	}
}
