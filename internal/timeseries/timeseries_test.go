package timeseries

import (
	"math"
	"testing"
	"testing/quick"
)

// mustGrid builds a grid with a known-valid day count, failing the test
// instead of panicking (NewGrid is the only constructor; the package no
// longer exports a panicking variant).
func mustGrid(t *testing.T, representativeDays int) *Grid {
	t.Helper()
	g, err := NewGrid(representativeDays)
	if err != nil {
		t.Fatalf("NewGrid(%d): %v", representativeDays, err)
	}
	return g
}

func TestHourlyLenAndIndexing(t *testing.T) {
	h := NewHourly()
	if h.Len() != HoursPerYear {
		t.Fatalf("Len() = %d, want %d", h.Len(), HoursPerYear)
	}
	h.Set(0, 1.5)
	h.Set(HoursPerYear-1, -2.5)
	if got := h.At(0); got != 1.5 {
		t.Errorf("At(0) = %v, want 1.5", got)
	}
	if got := h.At(HoursPerYear - 1); got != -2.5 {
		t.Errorf("At(last) = %v, want -2.5", got)
	}
	if got := h.AtDayHour(364, 23); got != -2.5 {
		t.Errorf("AtDayHour(364,23) = %v, want -2.5", got)
	}
}

func TestFromValuesLengthCheck(t *testing.T) {
	if _, err := FromValues(make([]float64, 10)); err == nil {
		t.Fatal("FromValues with short slice should error")
	}
	vals := make([]float64, HoursPerYear)
	vals[100] = 7
	h, err := FromValues(vals)
	if err != nil {
		t.Fatalf("FromValues: %v", err)
	}
	// Mutating the input must not affect the series (copy at boundary).
	vals[100] = 0
	if h.At(100) != 7 {
		t.Errorf("FromValues did not copy input slice")
	}
}

func TestGenerateAndStats(t *testing.T) {
	h := Generate(func(day, hour int) float64 {
		return float64(hour)
	})
	if got := h.AtDayHour(17, 13); got != 13 {
		t.Errorf("AtDayHour(17,13) = %v, want 13", got)
	}
	wantMean := 11.5 // mean of 0..23
	if got := h.Mean(); math.Abs(got-wantMean) > 1e-9 {
		t.Errorf("Mean() = %v, want %v", got, wantMean)
	}
	if got := h.Min(); got != 0 {
		t.Errorf("Min() = %v, want 0", got)
	}
	if got := h.Max(); got != 23 {
		t.Errorf("Max() = %v, want 23", got)
	}
	if got, want := h.Sum(), wantMean*float64(HoursPerYear); math.Abs(got-want) > 1e-6 {
		t.Errorf("Sum() = %v, want %v", got, want)
	}
}

func TestMapAndValuesCopy(t *testing.T) {
	h := Generate(func(day, hour int) float64 { return 2 })
	doubled := h.Map(func(v float64) float64 { return v * 3 })
	if doubled.At(0) != 6 {
		t.Errorf("Map result = %v, want 6", doubled.At(0))
	}
	if h.At(0) != 2 {
		t.Errorf("Map mutated the receiver")
	}
	vals := h.Values()
	vals[0] = 99
	if h.At(0) != 2 {
		t.Errorf("Values() exposed internal state")
	}
}

func TestNewGridValidation(t *testing.T) {
	cases := []struct {
		days    int
		wantErr bool
	}{
		{days: 0, wantErr: true},
		{days: -3, wantErr: true},
		{days: 366, wantErr: true},
		{days: 1, wantErr: false},
		{days: 4, wantErr: false},
		{days: 365, wantErr: false},
	}
	for _, tc := range cases {
		_, err := NewGrid(tc.days)
		if (err != nil) != tc.wantErr {
			t.Errorf("NewGrid(%d) error = %v, wantErr %v", tc.days, err, tc.wantErr)
		}
	}
}

func TestGridShapeAndWeights(t *testing.T) {
	g := mustGrid(t, 4)
	if g.Days() != 4 {
		t.Errorf("Days() = %d, want 4", g.Days())
	}
	if g.Len() != 4*HoursPerDay {
		t.Errorf("Len() = %d, want %d", g.Len(), 4*HoursPerDay)
	}
	if got, want := g.HoursRepresented(), float64(HoursPerYear); math.Abs(got-want) > 1e-6 {
		t.Errorf("HoursRepresented() = %v, want %v", got, want)
	}
	// Epochs must be chronological: day-major, hour-minor.
	prevDay, prevHour := -1, -1
	for _, e := range g.Epochs() {
		if e.Day < prevDay || (e.Day == prevDay && e.Hour != prevHour+1) {
			t.Fatalf("epochs are not chronological: day=%d hour=%d after day=%d hour=%d",
				e.Day, e.Hour, prevDay, prevHour)
		}
		if e.Day != prevDay {
			if e.Hour != 0 {
				t.Fatalf("representative day %d does not start at hour 0", e.Day)
			}
		}
		prevDay, prevHour = e.Day, e.Hour
	}
}

func TestGridReducePreservesDiurnalShape(t *testing.T) {
	// Signal: value only depends on hour of day, so reduction must
	// reproduce it exactly regardless of the number of representative days.
	h := Generate(func(day, hour int) float64 { return float64(hour * hour) })
	for _, days := range []int{1, 2, 4, 12} {
		g := mustGrid(t, days)
		reduced := g.Reduce(h)
		for i, e := range g.Epochs() {
			want := float64(e.Hour * e.Hour)
			if math.Abs(reduced[i]-want) > 1e-9 {
				t.Fatalf("days=%d epoch %d: Reduce = %v, want %v", days, i, reduced[i], want)
			}
		}
	}
}

func TestGridReduceAveragesSeasons(t *testing.T) {
	// Signal rises linearly with day of year; a single representative day
	// must average to the yearly mean.
	h := Generate(func(day, hour int) float64 { return float64(day) })
	g := mustGrid(t, 1)
	reduced := g.Reduce(h)
	want := 182.0 // mean of 0..364
	for i, v := range reduced {
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("epoch %d: Reduce = %v, want %v", i, v, want)
		}
	}
}

func TestGridReduceSample(t *testing.T) {
	h := Generate(func(day, hour int) float64 { return float64(day*100 + hour) })
	g := mustGrid(t, 2)
	sampled := g.ReduceSample(h)
	// First representative day covers days 0..182, middle day is 91.
	if got, want := sampled[5], float64(91*100+5); got != want {
		t.Errorf("ReduceSample[5] = %v, want %v", got, want)
	}
}

func TestWeightedSum(t *testing.T) {
	g := mustGrid(t, 4)
	values := make([]float64, g.Len())
	for i := range values {
		values[i] = 1
	}
	got, err := g.WeightedSum(values)
	if err != nil {
		t.Fatalf("WeightedSum: %v", err)
	}
	if want := float64(HoursPerYear); math.Abs(got-want) > 1e-6 {
		t.Errorf("WeightedSum of ones = %v, want %v", got, want)
	}
	if _, err := g.WeightedSum(values[:3]); err == nil {
		t.Error("WeightedSum with wrong length should error")
	}
}

func TestCDF(t *testing.T) {
	sorted, pct := CDF([]float64{3, 1, 2, 4})
	wantSorted := []float64{1, 2, 3, 4}
	wantPct := []float64{25, 50, 75, 100}
	for i := range wantSorted {
		if sorted[i] != wantSorted[i] {
			t.Errorf("sorted[%d] = %v, want %v", i, sorted[i], wantSorted[i])
		}
		if math.Abs(pct[i]-wantPct[i]) > 1e-9 {
			t.Errorf("pct[%d] = %v, want %v", i, pct[i], wantPct[i])
		}
	}
}

func TestCDFPropertySortedAndBounded(t *testing.T) {
	f := func(values []float64) bool {
		for i, v := range values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				values[i] = 0
			}
		}
		sorted, pct := CDF(values)
		if len(sorted) != len(values) || len(pct) != len(values) {
			return false
		}
		for i := 1; i < len(sorted); i++ {
			if sorted[i] < sorted[i-1] || pct[i] < pct[i-1] {
				return false
			}
		}
		if len(pct) > 0 && math.Abs(pct[len(pct)-1]-100) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReducePropertyMeanPreserved(t *testing.T) {
	// The weighted mean of the reduced series must equal the mean of the
	// hourly series for any signal (Reduce is an averaging operator).
	f := func(seed int64) bool {
		h := Generate(func(day, hour int) float64 {
			x := float64(day*31+hour*7) + float64(seed%17)
			return math.Sin(x/53.0) * 10
		})
		g := mustGrid(t, 5)
		reduced := g.Reduce(h)
		total, err := g.WeightedSum(reduced)
		if err != nil {
			return false
		}
		return math.Abs(total-h.Sum()) < 1e-6*math.Max(1, math.Abs(h.Sum()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestShiftHours(t *testing.T) {
	h := Generate(func(day, hour int) float64 { return float64(day*24 + hour) })
	shifted := h.ShiftHours(5)
	if got, want := shifted.At(5), h.At(0); got != want {
		t.Errorf("ShiftHours(5): At(5) = %v, want %v", got, want)
	}
	if got, want := shifted.At(0), h.At(HoursPerYear-5); got != want {
		t.Errorf("ShiftHours(5): At(0) = %v, want %v (wraps)", got, want)
	}
	// Negative shift is the inverse of a positive shift.
	back := shifted.ShiftHours(-5)
	for _, hr := range []int{0, 100, HoursPerYear - 1} {
		if back.At(hr) != h.At(hr) {
			t.Fatalf("shift and unshift differ at hour %d", hr)
		}
	}
	// Shifting never changes the mean.
	if math.Abs(shifted.Mean()-h.Mean()) > 1e-9 {
		t.Error("ShiftHours changed the mean")
	}
	// Full-period shift is identity.
	same := h.ShiftHours(HoursPerYear)
	if same.At(42) != h.At(42) {
		t.Error("full-period shift should be identity")
	}
}
