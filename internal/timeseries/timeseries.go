// Package timeseries provides hourly time series over a typical
// meteorological year and utilities to aggregate them into the coarser
// "representative epoch" grids used by the placement optimizer.
//
// The paper's framework divides time into fixed slots t within a longer
// duration T (one year of hourly data).  Solving the provisioning problem
// over all 8760 hours is unnecessary for the qualitative results, so the
// optimizer works on a reduced set of representative days: each epoch of a
// representative day carries a weight equal to the number of real days it
// stands for.  This package owns both representations.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// HoursPerYear is the number of hourly slots in a typical meteorological year.
// TMY datasets use a non-leap 365-day year.
const HoursPerYear = 365 * 24

// HoursPerDay is the number of hourly slots in a day.
const HoursPerDay = 24

// Hourly is a year-long series with one sample per hour (8760 samples).
type Hourly struct {
	values []float64
}

// NewHourly returns an Hourly series initialized to zero.
func NewHourly() *Hourly {
	return &Hourly{values: make([]float64, HoursPerYear)}
}

// FromValues builds an Hourly series from an existing slice.  The slice must
// contain exactly HoursPerYear samples; the data is copied.
func FromValues(values []float64) (*Hourly, error) {
	if len(values) != HoursPerYear {
		return nil, fmt.Errorf("timeseries: expected %d samples, got %d", HoursPerYear, len(values))
	}
	out := make([]float64, HoursPerYear)
	copy(out, values)
	return &Hourly{values: out}, nil
}

// Generate builds an Hourly series by evaluating fn for every hour of the
// year.  fn receives the day of year (0-based, 0..364) and hour of day
// (0..23).
func Generate(fn func(day, hour int) float64) *Hourly {
	h := NewHourly()
	for day := 0; day < 365; day++ {
		for hour := 0; hour < HoursPerDay; hour++ {
			h.values[day*HoursPerDay+hour] = fn(day, hour)
		}
	}
	return h
}

// Len returns the number of samples (always HoursPerYear).
func (h *Hourly) Len() int { return len(h.values) }

// At returns the sample for the given absolute hour index (0..8759).
func (h *Hourly) At(hour int) float64 { return h.values[hour] }

// AtDayHour returns the sample for a given day of year and hour of day.
func (h *Hourly) AtDayHour(day, hour int) float64 {
	return h.values[day*HoursPerDay+hour]
}

// Set stores a sample at the given absolute hour index.
func (h *Hourly) Set(hour int, v float64) { h.values[hour] = v }

// Mean returns the arithmetic mean of the series.
func (h *Hourly) Mean() float64 {
	sum := 0.0
	for _, v := range h.values {
		sum += v
	}
	return sum / float64(len(h.values))
}

// Sum returns the sum of all samples.
func (h *Hourly) Sum() float64 {
	sum := 0.0
	for _, v := range h.values {
		sum += v
	}
	return sum
}

// Min returns the smallest sample.
func (h *Hourly) Min() float64 {
	m := math.Inf(1)
	for _, v := range h.values {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample.
func (h *Hourly) Max() float64 {
	m := math.Inf(-1)
	for _, v := range h.values {
		if v > m {
			m = v
		}
	}
	return m
}

// Map returns a new series with fn applied to every sample.
func (h *Hourly) Map(fn func(float64) float64) *Hourly {
	out := NewHourly()
	for i, v := range h.values {
		out.values[i] = fn(v)
	}
	return out
}

// ShiftHours returns a copy of the series circularly shifted so that the
// value previously at hour i appears at hour i+k.  It converts a series
// expressed in a site's local solar time into UTC: a site k hours east of
// Greenwich experiences local noon k hours before UTC noon, so its local
// series must be shifted by −k to read it on a UTC clock.
func (h *Hourly) ShiftHours(k int) *Hourly {
	n := len(h.values)
	k = ((k % n) + n) % n
	out := NewHourly()
	for i, v := range h.values {
		out.values[(i+k)%n] = v
	}
	return out
}

// Values returns a copy of the underlying samples.
func (h *Hourly) Values() []float64 {
	out := make([]float64, len(h.values))
	copy(out, h.values)
	return out
}

// Epoch is a single representative time slot used by the optimizer.
type Epoch struct {
	// Day is the representative day index within the grid (0-based).
	Day int
	// Hour is the hour of day (0..23).
	Hour int
	// Weight is the number of real days this representative day stands
	// for.  The energy contributed by this epoch is value × Weight × 1h.
	Weight float64
}

// Grid is a reduced representation of the year: a small number of
// representative days, each covering an equal share of the 365-day year,
// sampled hourly.  Epochs are ordered chronologically (day-major,
// hour-minor), which the optimizer relies on when chaining battery levels
// and migration terms across consecutive epochs.
type Grid struct {
	days   int
	epochs []Epoch
}

// ErrInvalidGrid reports an unusable representative-day count.
var ErrInvalidGrid = errors.New("timeseries: representative day count must be between 1 and 365")

// NewGrid builds a grid with the given number of representative days spread
// evenly through the year.
func NewGrid(representativeDays int) (*Grid, error) {
	if representativeDays < 1 || representativeDays > 365 {
		return nil, ErrInvalidGrid
	}
	weight := 365.0 / float64(representativeDays)
	epochs := make([]Epoch, 0, representativeDays*HoursPerDay)
	for d := 0; d < representativeDays; d++ {
		for hr := 0; hr < HoursPerDay; hr++ {
			epochs = append(epochs, Epoch{Day: d, Hour: hr, Weight: weight})
		}
	}
	return &Grid{days: representativeDays, epochs: epochs}, nil
}

// Days returns the number of representative days in the grid.
func (g *Grid) Days() int { return g.days }

// Len returns the number of epochs (days × 24).
func (g *Grid) Len() int { return len(g.epochs) }

// Epochs returns the chronological list of epochs.  The returned slice is a
// copy.
func (g *Grid) Epochs() []Epoch {
	out := make([]Epoch, len(g.epochs))
	copy(out, g.epochs)
	return out
}

// Epoch returns the i-th epoch.
func (g *Grid) Epoch(i int) Epoch { return g.epochs[i] }

// HoursRepresented returns the total number of real hours the grid stands
// for (always 8760 within floating point error).
func (g *Grid) HoursRepresented() float64 {
	total := 0.0
	for _, e := range g.epochs {
		total += e.Weight
	}
	return total
}

// sourceDay maps a representative day index to the day-of-year at the middle
// of the chunk of the year it represents.
func (g *Grid) sourceDay(repDay int) int {
	chunk := 365.0 / float64(g.days)
	day := int(chunk*float64(repDay) + chunk/2)
	if day > 364 {
		day = 364
	}
	return day
}

// Reduce collapses an hourly year series onto the grid.  For each epoch the
// value is the average of the corresponding hour of day over the span of
// real days that the representative day covers.  This keeps diurnal shape
// exact and smooths day-to-day weather noise, which is what the placement
// optimizer needs (the paper aggregates hourly TMY data in the same spirit).
func (g *Grid) Reduce(h *Hourly) []float64 {
	out := make([]float64, g.Len())
	chunk := 365.0 / float64(g.days)
	for i, e := range g.epochs {
		startDay := int(math.Floor(chunk * float64(e.Day)))
		endDay := int(math.Floor(chunk * float64(e.Day+1)))
		if endDay <= startDay {
			endDay = startDay + 1
		}
		if endDay > 365 {
			endDay = 365
		}
		sum := 0.0
		n := 0
		for day := startDay; day < endDay; day++ {
			sum += h.AtDayHour(day, e.Hour)
			n++
		}
		out[i] = sum / float64(n)
	}
	return out
}

// ReduceSample collapses an hourly year series onto the grid by sampling the
// single source day at the middle of each represented span instead of
// averaging.  Sampling preserves within-day variability (e.g. an overcast
// day stays overcast) at the cost of more noise.
func (g *Grid) ReduceSample(h *Hourly) []float64 {
	out := make([]float64, g.Len())
	for i, e := range g.epochs {
		out[i] = h.AtDayHour(g.sourceDay(e.Day), e.Hour)
	}
	return out
}

// WeightedSum returns Σ values[i] × weight[i] over the grid, i.e. the yearly
// total implied by per-epoch values (values must have grid length).
func (g *Grid) WeightedSum(values []float64) (float64, error) {
	if len(values) != g.Len() {
		return 0, fmt.Errorf("timeseries: weighted sum needs %d values, got %d", g.Len(), len(values))
	}
	total := 0.0
	for i, e := range g.epochs {
		total += values[i] * e.Weight
	}
	return total, nil
}

// CDF returns the values sorted ascending together with cumulative
// percentages (0..100], useful for reproducing the capacity-factor and cost
// CDFs of Figs. 3 and 6.
func CDF(values []float64) (sorted []float64, percentiles []float64) {
	sorted = make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	percentiles = make([]float64, len(values))
	n := float64(len(values))
	for i := range sorted {
		percentiles[i] = 100 * float64(i+1) / n
	}
	return sorted, percentiles
}
