package plan

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func postJSON(t *testing.T, srv *httptest.Server, path string, body, dst any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if dst != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestHTTPRoundTrip drives the daemon purely over its HTTP API: ticks
// advance the plan, GET /plan agrees with the tick responses, malformed and
// misaddressed requests get clean 4xx answers.
func TestHTTPRoundTrip(t *testing.T) {
	d, err := New(Config{Trace: testSpec()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	var ticked PlanView
	for i := 0; i < 3; i++ {
		if code := postJSON(t, srv, "/tick", TickRequest{}, &ticked); code != http.StatusOK {
			t.Fatalf("tick %d: status %d", i, code)
		}
	}
	if ticked.Tick != 3 {
		t.Fatalf("after 3 ticks view.Tick = %d", ticked.Tick)
	}

	resp, err := srv.Client().Get(srv.URL + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	var served PlanView
	if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if served.Tick != ticked.Tick || served.Totals != ticked.Totals {
		t.Fatalf("GET /plan %+v disagrees with last tick %+v", served.Totals, ticked.Totals)
	}
	if len(served.TargetLoadKW) != len(served.Datacenters) {
		t.Fatalf("served %d targets for %d datacenters", len(served.TargetLoadKW), len(served.Datacenters))
	}

	var wi WhatIfResponse
	if code := postJSON(t, srv, "/whatif", WhatIfRequest{}, &wi); code != http.StatusOK {
		t.Fatalf("what-if status %d", code)
	}
	if wi.MonthlyUSD <= 0 || len(wi.Sites) == 0 {
		t.Fatalf("implausible what-if answer: %+v", wi)
	}

	// Error discipline.
	if code := postJSON(t, srv, "/tick", map[string]any{"green_scale": map[string]float64{"nope": 2}}, nil); code != http.StatusBadRequest {
		t.Errorf("bad scale: status %d, want 400", code)
	}
	if code := postJSON(t, srv, "/whatif", WhatIfRequest{Close: true, Session: "ghost"}, nil); code != http.StatusNotFound {
		t.Errorf("closing unknown session: status %d, want 404", code)
	}
	resp, err = srv.Client().Get(srv.URL + "/tick")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /tick: status %d, want 405", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}
}

// TestWhatIfSessions pins session semantics: per-session evaluators answer
// deterministically, a session survives across queries, close works, and the
// spec knobs apply at session creation.
func TestWhatIfSessions(t *testing.T) {
	d, err := New(Config{Trace: testSpec()})
	if err != nil {
		t.Fatal(err)
	}
	first, err := d.WhatIf(WhatIfRequest{Session: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	again, err := d.WhatIf(WhatIfRequest{Session: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	if first.MonthlyUSD != again.MonthlyUSD || first.GreenFraction != again.GreenFraction {
		t.Fatalf("session answers drifted: %+v vs %+v", first, again)
	}
	oneShot, err := d.WhatIf(WhatIfRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if oneShot.MonthlyUSD != first.MonthlyUSD {
		t.Fatalf("one-shot %+v disagrees with session %+v", oneShot, first)
	}

	// A brown network (green fraction 0) must be cheaper than the default.
	zero := 0.0
	brown, err := d.WhatIf(WhatIfRequest{Session: "brown", MinGreenFraction: &zero})
	if err != nil {
		t.Fatal(err)
	}
	if !brown.Feasible || brown.MonthlyUSD >= first.MonthlyUSD {
		t.Fatalf("brown network %+v not cheaper than green %+v", brown, first)
	}

	if _, err := d.WhatIf(WhatIfRequest{Session: "s1", Close: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WhatIf(WhatIfRequest{Session: "s1", Close: true}); err == nil {
		t.Fatal("closing a closed session succeeded")
	}
	if _, err := d.WhatIf(WhatIfRequest{Candidates: []WhatIfCandidate{{Site: "atlantis"}}}); err == nil {
		t.Fatal("unknown candidate site accepted")
	}
}

// TestWhatIfConcurrent hammers many sessions in parallel while the daemon
// ticks — the read-mostly serving design must hold up under -race, and every
// session must answer exactly what it answers alone.
func TestWhatIfConcurrent(t *testing.T) {
	d, err := New(Config{Trace: testSpec()})
	if err != nil {
		t.Fatal(err)
	}
	solo, err := d.WhatIf(WhatIfRequest{})
	if err != nil {
		t.Fatal(err)
	}

	const sessions, queries = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, sessions*queries+8)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			name := fmt.Sprintf("sess-%d", s)
			for q := 0; q < queries; q++ {
				got, err := d.WhatIf(WhatIfRequest{Session: name})
				if err != nil {
					errs <- err
					return
				}
				if got.MonthlyUSD != solo.MonthlyUSD {
					errs <- fmt.Errorf("session %s query %d: %v, want %v", name, q, got.MonthlyUSD, solo.MonthlyUSD)
					return
				}
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if _, err := d.Tick(TickRequest{}); err != nil {
				errs <- err
				return
			}
			d.PlanView()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if v := d.PlanView(); v.Tick != 8 || v.CumLPStats.ColdFallbacks != 0 {
		t.Fatalf("after concurrent load: tick %d, cold fallbacks %d", v.Tick, v.CumLPStats.ColdFallbacks)
	}
}

// TestWhatIfSessionEviction fills the table past its cap and checks the
// oldest session is evicted (recreated transparently on next use).
func TestWhatIfSessionEviction(t *testing.T) {
	d, err := New(Config{Trace: testSpec()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= maxWhatIfSessions; i++ {
		if _, err := d.WhatIf(WhatIfRequest{Session: fmt.Sprintf("e-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	d.sessions.mu.Lock()
	n := len(d.sessions.byName)
	_, oldest := d.sessions.byName["e-0"]
	d.sessions.mu.Unlock()
	if n != maxWhatIfSessions {
		t.Fatalf("session table holds %d, cap is %d", n, maxWhatIfSessions)
	}
	if oldest {
		t.Fatal("oldest session survived past the cap")
	}
}
