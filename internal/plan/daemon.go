package plan

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"greencloud/internal/emul"
	"greencloud/internal/location"
	"greencloud/internal/lp"
	"greencloud/internal/sched"
	"greencloud/internal/vm"
)

// Config configures a Daemon.
type Config struct {
	// Trace is the emulated trace the daemon plans against.
	Trace TraceSpec
	// SnapshotPath, when non-empty, is where the daemon persists a
	// versioned snapshot after every tick (written atomically:
	// temp + rename), and where New looks for one to resume from.
	SnapshotPath string
	// Ctx, when non-nil, is the daemon's base context: once cancelled the
	// daemon refuses new ticks and what-if queries, the clean-shutdown
	// contract a serving process needs (the PR 6 plumbing bounds the
	// in-flight solve via the trace's LP timeout).
	Ctx context.Context
	// Logf, when non-nil, receives operational log lines (snapshot
	// rejections, persistence failures).  The default discards them.
	Logf func(format string, args ...any)
}

// Totals is the cumulative accounting across all applied ticks.
type Totals struct {
	GreenKWh     float64 `json:"green_kwh"`
	BrownKWh     float64 `json:"brown_kwh"`
	DemandKWh    float64 `json:"demand_kwh"`
	MigrationKWh float64 `json:"migration_kwh"`
	Migrations   int     `json:"migrations"`
}

// PlanView is the daemon's serving state: what GET /plan returns and what a
// snapshot carries so a restarted daemon serves the same answer.  All
// fields are value copies — a PlanView never aliases runner scratch.
type PlanView struct {
	// Tick is the number of ticks applied since the trace began (survives
	// restarts).  AbsHour is the last applied trace hour.
	Tick    int `json:"tick"`
	AbsHour int `json:"abs_hour"`
	// Datacenters names the sites in configuration order; TargetLoadKW is
	// the current plan's first-hour load split in the same order.
	Datacenters  []string  `json:"datacenters"`
	TargetLoadKW []float64 `json:"target_load_kw"`
	// PlanBrownKWh and MigratedKW summarize the current partition plan;
	// Degraded marks a static-fallback plan (solver failure or timeout).
	PlanBrownKWh float64 `json:"plan_brown_kwh"`
	MigratedKW   float64 `json:"migrated_kw"`
	Degraded     bool    `json:"degraded"`
	// LastRecords is the last tick's per-datacenter trace.
	LastRecords []emul.HourRecord `json:"last_records"`
	// Totals accumulates over all ticks, exactly like a batch
	// emul.Result over the same trace.
	Totals Totals `json:"totals"`
	// LastLPStats is the last tick's partition-LP work; CumLPStats
	// accumulates across ticks.  CumLPStats.ColdFallbacks stays 0 for a
	// healthy warm daemon — including across a snapshot resume.
	LastLPStats lp.Stats `json:"last_lp_stats"`
	CumLPStats  lp.Stats `json:"cum_lp_stats"`
	// GreenScale holds the streamed weather adjustments currently in
	// effect (absent names are at scale 1).
	GreenScale map[string]float64 `json:"green_scale,omitempty"`
	// Resumed is true when this daemon restored its state from a
	// snapshot; WarmResume additionally means the snapshot carried a
	// usable basis, so the first post-restart solve starts warm.
	Resumed    bool `json:"resumed"`
	WarmResume bool `json:"warm_resume"`
	// SnapshotError reports a failed snapshot write (the daemon keeps
	// serving; persistence is degraded until a write succeeds).
	SnapshotError string `json:"snapshot_error,omitempty"`
}

// TickRequest is the body of POST /tick: feed the next trace hour, with
// optional streamed weather updates applied before planning.
type TickRequest struct {
	// GreenScale scales the named datacenters' green production (realized
	// and forecast) from this tick on; 1 restores the trace.
	GreenScale map[string]float64 `json:"green_scale,omitempty"`
}

// moveRec is one VM move in the snapshot's replay log.
type moveRec struct {
	VM   string `json:"vm"`
	From string `json:"from"`
	To   string `json:"to"`
}

// Daemon is the continuous planner.  It owns one emul.Runner (the trace,
// fleet and warm partition LP) and serializes ticks; the serving state is a
// read-mostly PlanView behind an RWMutex, so GET /plan never waits on a
// solve.  Create one with New, wire Handler into an http.Server.
type Daemon struct {
	cfg     Config
	ctx     context.Context
	logf    func(string, ...any)
	trace   emul.Config
	catalog *location.Catalog
	vmByID  map[string]vm.VM

	// tickMu serializes the tick path (runner stepping + snapshot
	// writes); mu guards the serving state swapped in at the end of each
	// tick.  Lock order: tickMu before mu.
	tickMu  sync.Mutex
	runner  *emul.Runner
	moveLog [][]moveRec
	scales  map[string]float64

	mu   sync.RWMutex
	view PlanView

	sessions sessionStore
}

// Errors returned by the daemon.
var (
	// ErrShuttingDown rejects work arriving after the daemon's context
	// was cancelled.
	ErrShuttingDown = errors.New("plan: daemon is shutting down")
)

// New builds a daemon for the configured trace.  If Config.SnapshotPath
// names a readable, valid snapshot of the same trace, the daemon resumes
// from it: the recorded migration schedules are replayed against a fresh
// trace start (no LP work), the persisted basis is installed, and the
// persisted serving state is restored — so the first post-restart solve is
// warm and the tick stream continues bit-identically to a daemon that was
// never stopped.  A missing, corrupt, truncated or mismatched snapshot is
// logged and ignored: the daemon starts clean and cold.
func New(cfg Config) (*Daemon, error) {
	traceCfg, cat, err := cfg.Trace.Build()
	if err != nil {
		return nil, err
	}
	runner, err := emul.NewRunner(traceCfg)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:     cfg,
		ctx:     cfg.Ctx,
		logf:    cfg.Logf,
		trace:   traceCfg,
		catalog: cat,
		runner:  runner,
		scales:  make(map[string]float64),
		vmByID:  make(map[string]vm.VM, len(traceCfg.VMs)),
	}
	if d.ctx == nil {
		d.ctx = context.Background()
	}
	if d.logf == nil {
		d.logf = func(string, ...any) {}
	}
	for _, machine := range traceCfg.VMs {
		d.vmByID[machine.ID] = machine
	}
	d.sessions.init(d)

	if err := runner.Start(); err != nil {
		return nil, err
	}
	d.view = PlanView{Datacenters: runner.Datacenters()}
	if cfg.SnapshotPath != "" {
		if err := d.resumeFromSnapshot(cfg.SnapshotPath); err != nil {
			d.logf("plannerd: snapshot %s rejected, starting cold: %v", cfg.SnapshotPath, err)
			// Reject half-applied state: restart the trace from scratch
			// (green scales survive Start, so reset them explicitly).
			for _, name := range runner.Datacenters() {
				if err := runner.SetGreenScale(name, 1); err != nil {
					return nil, err
				}
			}
			if err := runner.Start(); err != nil {
				return nil, err
			}
			d.runner.SetWarmBasis(nil)
			d.moveLog = nil
			d.scales = make(map[string]float64)
			d.view = PlanView{Datacenters: runner.Datacenters()}
		}
	}
	return d, nil
}

// PlanView returns a copy of the current serving state.
func (d *Daemon) PlanView() PlanView {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return copyView(d.view)
}

// Resumed reports whether the daemon restored from a snapshot, and whether
// the restore installed a warm basis.
func (d *Daemon) Resumed() (resumed, warm bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.view.Resumed, d.view.WarmResume
}

// Tick applies the next trace hour: ingest the request's streamed updates,
// re-plan incrementally (warm SolveFrom on the structure-cached partition
// LP), execute the resulting migration schedule, persist a snapshot and
// publish the new serving state, which is also returned.
func (d *Daemon) Tick(req TickRequest) (PlanView, error) {
	if err := d.ctx.Err(); err != nil {
		return PlanView{}, fmt.Errorf("%w: %v", ErrShuttingDown, err)
	}
	d.tickMu.Lock()
	defer d.tickMu.Unlock()

	for name, scale := range req.GreenScale {
		if err := d.runner.SetGreenScale(name, scale); err != nil {
			return PlanView{}, err
		}
	}

	tick, err := d.runner.Step()
	if err != nil {
		return PlanView{}, err
	}

	// Record the schedule for snapshot replay, then build the new view.
	moves := make([]moveRec, len(tick.Moves))
	for i, mv := range tick.Moves {
		moves[i] = moveRec{VM: mv.VM.ID, From: mv.From, To: mv.To}
	}
	d.moveLog = append(d.moveLog, moves)
	for name, scale := range req.GreenScale {
		if scale == 1 {
			delete(d.scales, name)
		} else {
			d.scales[name] = scale
		}
	}

	d.mu.Lock()
	prev := d.view
	next := d.buildView(prev, tick)
	d.view = next
	d.mu.Unlock()

	if d.cfg.SnapshotPath != "" {
		if err := d.writeSnapshot(d.cfg.SnapshotPath); err != nil {
			d.logf("plannerd: snapshot write failed: %v", err)
			d.mu.Lock()
			d.view.SnapshotError = err.Error()
			next = copyView(d.view)
			d.mu.Unlock()
		}
	}
	return next, nil
}

// buildView folds one tick into the serving state.  Callers hold d.mu.
func (d *Daemon) buildView(prev PlanView, tick *emul.Tick) PlanView {
	next := prev
	next.Tick = prev.Tick + 1
	next.AbsHour = tick.AbsHour
	next.Datacenters = d.runner.Datacenters()
	next.LastRecords = append([]emul.HourRecord(nil), tick.Records...)
	next.LastLPStats = tick.LPStats
	next.CumLPStats = prev.CumLPStats
	next.CumLPStats.Add(tick.LPStats)
	next.Degraded = tick.Degraded
	next.SnapshotError = ""
	if tick.Plan != nil {
		next.TargetLoadKW = make([]float64, len(tick.Plan.LoadKW))
		for i, row := range tick.Plan.LoadKW {
			if len(row) > 0 {
				next.TargetLoadKW[i] = row[0]
			}
		}
		next.PlanBrownKWh = tick.Plan.BrownKWh
		next.MigratedKW = tick.Plan.MigratedKW
	}
	next.Totals = prev.Totals
	next.Totals.Migrations += tick.Migrations
	for i := range tick.Records {
		rec := &tick.Records[i]
		demandKW := rec.LoadKW + rec.PUEOverheadKW + rec.MigrationKW
		next.Totals.DemandKWh += demandKW
		next.Totals.BrownKWh += rec.BrownKW
		next.Totals.GreenKWh += demandKW - rec.BrownKW
		next.Totals.MigrationKWh += rec.MigrationKW
	}
	if len(d.scales) > 0 {
		next.GreenScale = make(map[string]float64, len(d.scales))
		for k, v := range d.scales {
			next.GreenScale[k] = v
		}
	} else {
		next.GreenScale = nil
	}
	return next
}

// replayLog reconstructs runner state from a snapshot's move log: each
// recorded schedule is re-executed without planning.  The runner must be
// freshly Started.
func (d *Daemon) replayLog(log [][]moveRec) error {
	for i, recs := range log {
		moves := make([]sched.Migration, len(recs))
		for j, rec := range recs {
			machine, ok := d.vmByID[rec.VM]
			if !ok {
				return fmt.Errorf("plan: snapshot tick %d references unknown VM %q", i, rec.VM)
			}
			moves[j] = sched.Migration{VM: machine, From: rec.From, To: rec.To}
		}
		if _, err := d.runner.Replay(moves); err != nil {
			return fmt.Errorf("plan: snapshot replay tick %d: %w", i, err)
		}
	}
	return nil
}

func copyView(v PlanView) PlanView {
	out := v
	out.Datacenters = append([]string(nil), v.Datacenters...)
	out.TargetLoadKW = append([]float64(nil), v.TargetLoadKW...)
	out.LastRecords = append([]emul.HourRecord(nil), v.LastRecords...)
	if v.GreenScale != nil {
		out.GreenScale = make(map[string]float64, len(v.GreenScale))
		for k, val := range v.GreenScale {
			out.GreenScale[k] = val
		}
	}
	return out
}
