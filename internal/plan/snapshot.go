package plan

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"greencloud/internal/lp"
)

// ErrSnapshot wraps every snapshot decode/validation failure, so callers can
// distinguish "no usable snapshot" (cold start) from infrastructure errors.
var ErrSnapshot = errors.New("plan: invalid snapshot")

// snapshotMagic versions the on-disk format.  The full layout is one header
// line — magic, FNV-1a 64 checksum of the payload in hex, payload length in
// bytes — followed by the JSON payload.  The checksum turns truncation and
// bit rot into a clean ErrSnapshot instead of a half-restored daemon.
const snapshotMagic = "GNPS1"

// snapshotPayload is everything a restarted daemon needs to continue the
// tick stream bit-identically: the trace identity (refuse foreign state),
// the migration-schedule log (replayed to rebuild fleet/storage state
// without LP work), the streamed weather scales in effect, the warm basis,
// and the serving view.
type snapshotPayload struct {
	TraceDigest string             `json:"trace_digest"`
	Ticks       int                `json:"ticks"`
	Scales      map[string]float64 `json:"scales,omitempty"`
	Moves       [][]moveRec        `json:"moves"`
	Basis       []byte             `json:"basis,omitempty"` // lp.Basis.MarshalBinary, base64 via encoding/json
	View        PlanView           `json:"view"`
}

// writeSnapshot persists the daemon's current state atomically (temp file +
// rename in the destination directory).  Callers hold d.tickMu.
func (d *Daemon) writeSnapshot(path string) error {
	payload := snapshotPayload{
		TraceDigest: d.cfg.Trace.Digest(),
		Ticks:       d.runner.Ticks(),
		Moves:       d.moveLog,
		View:        d.PlanView(),
	}
	if payload.Moves == nil {
		payload.Moves = [][]moveRec{}
	}
	if len(d.scales) > 0 {
		payload.Scales = d.scales
	}
	if basis := d.runner.WarmBasis(); basis != nil {
		enc, err := basis.MarshalBinary()
		if err != nil {
			return fmt.Errorf("plan: encode basis: %w", err)
		}
		payload.Basis = enc
	}
	body, err := json.Marshal(&payload)
	if err != nil {
		return err
	}
	h := fnv.New64a()
	h.Write(body)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %016x %d\n", snapshotMagic, h.Sum64(), len(body))
	buf.Write(body)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// decodeSnapshot parses and verifies raw snapshot bytes.
func decodeSnapshot(raw []byte) (*snapshotPayload, error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: missing header", ErrSnapshot)
	}
	var magic string
	var sum uint64
	var n int
	if _, err := fmt.Sscanf(string(raw[:nl]), "%s %x %d", &magic, &sum, &n); err != nil {
		return nil, fmt.Errorf("%w: malformed header: %v", ErrSnapshot, err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("%w: magic %q, want %q", ErrSnapshot, magic, snapshotMagic)
	}
	body := raw[nl+1:]
	if len(body) != n {
		return nil, fmt.Errorf("%w: payload is %d bytes, header says %d", ErrSnapshot, len(body), n)
	}
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrSnapshot)
	}
	var payload snapshotPayload
	if err := json.Unmarshal(body, &payload); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	if payload.Ticks != len(payload.Moves) {
		return nil, fmt.Errorf("%w: %d ticks but %d recorded schedules",
			ErrSnapshot, payload.Ticks, len(payload.Moves))
	}
	return &payload, nil
}

// resumeFromSnapshot restores the daemon from the snapshot at path: decode
// and verify, replay the recorded migration schedules against the freshly
// Started runner (rebuilding fleet and storage state deterministically with
// zero LP work), install the persisted warm basis and serving view.  Any
// error leaves restoration to the caller's cold-start fallback.
func (d *Daemon) resumeFromSnapshot(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %v", ErrSnapshot, err)
		}
		return err
	}
	payload, err := decodeSnapshot(raw)
	if err != nil {
		return err
	}
	if got, want := payload.TraceDigest, d.cfg.Trace.Digest(); got != want {
		return fmt.Errorf("%w: trace digest %s, daemon runs %s", ErrSnapshot, got, want)
	}
	var basis *lp.Basis
	if len(payload.Basis) > 0 {
		if basis, err = lp.DecodeBasis(payload.Basis); err != nil {
			return fmt.Errorf("%w: %v", ErrSnapshot, err)
		}
	}

	// Scales first: replay must see the same streamed weather the recorded
	// ticks ran under so realized-green records rebuild bit-identically.
	for name, scale := range payload.Scales {
		if err := d.runner.SetGreenScale(name, scale); err != nil {
			return fmt.Errorf("%w: %v", ErrSnapshot, err)
		}
	}
	if err := d.replayLog(payload.Moves); err != nil {
		return fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	d.runner.SetWarmBasis(basis)
	d.moveLog = payload.Moves
	d.scales = make(map[string]float64)
	for name, scale := range payload.Scales {
		d.scales[name] = scale
	}
	view := copyView(payload.View)
	view.Resumed = true
	view.WarmResume = basis != nil
	view.SnapshotError = ""
	d.view = view
	return nil
}
