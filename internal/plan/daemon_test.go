package plan

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"greencloud/internal/emul"
)

// testSpec is a small trace: short horizon keeps each tick's LP cheap so the
// full suite stays inside the daemon test budget.
func testSpec() TraceSpec {
	return TraceSpec{Sites: 60, Seed: 21, Datacenters: 3, VMs: 9, HorizonHours: 12}
}

// stripRecords zeroes the wall-clock field, the only nondeterminism in an
// HourRecord.
func stripRecords(recs []emul.HourRecord) []emul.HourRecord {
	out := append([]emul.HourRecord(nil), recs...)
	for i := range out {
		out[i].SchedulerNanos = 0
	}
	return out
}

// batchRecords runs the same trace through the batch emul.Runner and returns
// the per-tick records (nanos stripped): the reference the daemon must match
// bit-for-bit.
func batchRecords(t *testing.T, spec TraceSpec, hours int) [][]emul.HourRecord {
	t.Helper()
	cfg, _, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := emul.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	out := make([][]emul.HourRecord, 0, hours)
	for i := 0; i < hours; i++ {
		tick, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, stripRecords(tick.Records))
	}
	return out
}

// TestDaemonMatchesBatch is the tentpole's core acceptance: a 24-tick
// streamed run re-plans warm on every tick (ColdFallbacks == 0 across the
// whole lifetime, including the first cold-by-construction solve, which by
// contract does not count) and produces records bit-identical to a batch
// emul.Runner over the same trace.
func TestDaemonMatchesBatch(t *testing.T) {
	const hours = 24
	spec := testSpec()
	want := batchRecords(t, spec, hours)

	d, err := New(Config{Trace: spec})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < hours; i++ {
		view, err := d.Tick(TickRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if view.Tick != i+1 {
			t.Fatalf("tick %d: view.Tick = %d", i, view.Tick)
		}
		got := stripRecords(view.LastRecords)
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("tick %d record %d differs:\n  daemon=%+v\n  batch =%+v", i, j, got[j], want[i][j])
			}
		}
		if view.Degraded {
			t.Fatalf("tick %d degraded", i)
		}
		if len(view.TargetLoadKW) != len(view.Datacenters) {
			t.Fatalf("tick %d: %d targets for %d datacenters", i, len(view.TargetLoadKW), len(view.Datacenters))
		}
	}
	view := d.PlanView()
	if view.CumLPStats.ColdFallbacks != 0 {
		t.Fatalf("streamed run had %d cold fallbacks, want 0", view.CumLPStats.ColdFallbacks)
	}
	if view.CumLPStats.Pivots == 0 {
		t.Fatal("no LP work recorded")
	}
	if view.Totals.DemandKWh <= 0 || view.Totals.GreenKWh <= 0 {
		t.Fatalf("implausible totals: %+v", view.Totals)
	}
	if view.Resumed {
		t.Fatal("fresh daemon claims it resumed")
	}
}

// TestDaemonSnapshotResume is the other half of the acceptance: kill a
// daemon mid-stream, restart it from its snapshot, and the resumed daemon
// (a) reports a warm resume, (b) continues the tick stream bit-identically
// to a daemon that was never stopped, and (c) never falls back cold.
func TestDaemonSnapshotResume(t *testing.T) {
	const hours, split = 24, 12
	spec := testSpec()
	snap := filepath.Join(t.TempDir(), "plan.snap")

	// Reference daemon: runs all 24 ticks uninterrupted.
	ref, err := New(Config{Trace: spec})
	if err != nil {
		t.Fatal(err)
	}
	refViews := make([]PlanView, 0, hours)
	for i := 0; i < hours; i++ {
		v, err := ref.Tick(TickRequest{})
		if err != nil {
			t.Fatal(err)
		}
		refViews = append(refViews, v)
	}

	// First incarnation: 12 ticks, snapshot after each, then "crash" (drop
	// the daemon on the floor; the snapshot is all that survives).
	d1, err := New(Config{Trace: spec, SnapshotPath: snap})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < split; i++ {
		if _, err := d1.Tick(TickRequest{}); err != nil {
			t.Fatal(err)
		}
	}

	// Second incarnation: must resume warm from the snapshot.
	d2, err := New(Config{Trace: spec, SnapshotPath: snap, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	resumed, warm := d2.Resumed()
	if !resumed || !warm {
		t.Fatalf("resumed=%v warm=%v, want true/true", resumed, warm)
	}
	view := d2.PlanView()
	if view.Tick != split {
		t.Fatalf("resumed at tick %d, want %d", view.Tick, split)
	}
	// The restored serving state must answer GET /plan exactly as the
	// pre-crash daemon did.
	wantView := refViews[split-1]
	for j, rec := range stripRecords(view.LastRecords) {
		if rec != stripRecords(wantView.LastRecords)[j] {
			t.Fatalf("restored record %d differs", j)
		}
	}
	if view.Totals != wantView.Totals {
		t.Fatalf("restored totals %+v, want %+v", view.Totals, wantView.Totals)
	}

	// Continue to hour 24: every tick must match the uninterrupted
	// reference bit-for-bit, and the first post-restart solve must be warm
	// (zero cold fallbacks anywhere).
	for i := split; i < hours; i++ {
		v, err := d2.Tick(TickRequest{})
		if err != nil {
			t.Fatal(err)
		}
		if v.LastLPStats.ColdFallbacks != 0 {
			t.Fatalf("post-restart tick %d fell back cold", i)
		}
		got := stripRecords(v.LastRecords)
		want := stripRecords(refViews[i].LastRecords)
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("post-restart tick %d record %d differs:\n  resumed=%+v\n  ref    =%+v", i, j, got[j], want[j])
			}
		}
		if v.Totals != refViews[i].Totals {
			t.Fatalf("post-restart tick %d totals %+v, want %+v", i, v.Totals, refViews[i].Totals)
		}
	}
	final := d2.PlanView()
	if final.CumLPStats.ColdFallbacks != 0 {
		t.Fatalf("resumed daemon had %d cold fallbacks, want 0", final.CumLPStats.ColdFallbacks)
	}
}

// TestDaemonSnapshotCorruption: every damaged form of the snapshot is
// rejected cleanly and the daemon starts cold from the trace beginning —
// never half-restored, never an error out of New.
func TestDaemonSnapshotCorruption(t *testing.T) {
	spec := testSpec()
	snap := filepath.Join(t.TempDir(), "plan.snap")
	d1, err := New(Config{Trace: spec, SnapshotPath: snap})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d1.Tick(TickRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	good, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := map[string][]byte{
		"truncated":    good[:len(good)/2],
		"bit-flipped":  append([]byte{}, good...),
		"empty":        {},
		"garbage":      []byte("not a snapshot at all\n"),
		"wrong magic":  append([]byte("XXXXX"), good[5:]...),
		"short header": []byte("GNPS1\n"),
	}
	corrupt["bit-flipped"][len(good)-8] ^= 0x40

	for name, raw := range corrupt {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bad.snap")
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			logged := 0
			d, err := New(Config{Trace: spec, SnapshotPath: path,
				Logf: func(string, ...any) { logged++ }})
			if err != nil {
				t.Fatalf("New must fall back cold, got error: %v", err)
			}
			if logged == 0 {
				t.Error("rejection was not logged")
			}
			if resumed, _ := d.Resumed(); resumed {
				t.Fatal("daemon claims it resumed from a corrupt snapshot")
			}
			if v := d.PlanView(); v.Tick != 0 {
				t.Fatalf("cold start at tick %d, want 0", v.Tick)
			}
			// The cold daemon must still plan correctly from hour zero.
			v, err := d.Tick(TickRequest{})
			if err != nil {
				t.Fatal(err)
			}
			if v.Tick != 1 || v.Degraded {
				t.Fatalf("first cold tick: %+v", v)
			}
		})
	}

	// A snapshot for a different trace is refused by digest.
	other := spec
	other.VMs = 12
	d, err := New(Config{Trace: other, SnapshotPath: snap})
	if err != nil {
		t.Fatal(err)
	}
	if resumed, _ := d.Resumed(); resumed {
		t.Fatal("daemon resumed a snapshot from a different trace")
	}
}

// TestDaemonSnapshotWithScales: streamed weather survives the crash — the
// resumed daemon re-applies the persisted scales and continues
// bit-identically to an uninterrupted daemon fed the same updates.
func TestDaemonSnapshotWithScales(t *testing.T) {
	const hours, split = 12, 6
	spec := testSpec()
	cfg, _, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	scaled := cfg.Datacenters[0].Name
	req := TickRequest{GreenScale: map[string]float64{scaled: 0.3}}

	ref, err := New(Config{Trace: spec})
	if err != nil {
		t.Fatal(err)
	}
	refViews := make([]PlanView, 0, hours)
	for i := 0; i < hours; i++ {
		r := TickRequest{}
		if i == 2 {
			r = req
		}
		v, err := ref.Tick(r)
		if err != nil {
			t.Fatal(err)
		}
		refViews = append(refViews, v)
	}

	snap := filepath.Join(t.TempDir(), "plan.snap")
	d1, err := New(Config{Trace: spec, SnapshotPath: snap})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < split; i++ {
		r := TickRequest{}
		if i == 2 {
			r = req
		}
		if _, err := d1.Tick(r); err != nil {
			t.Fatal(err)
		}
	}

	d2, err := New(Config{Trace: spec, SnapshotPath: snap})
	if err != nil {
		t.Fatal(err)
	}
	if v := d2.PlanView(); v.GreenScale[scaled] != 0.3 {
		t.Fatalf("restored scales %v, want %s at 0.3", v.GreenScale, scaled)
	}
	for i := split; i < hours; i++ {
		v, err := d2.Tick(TickRequest{})
		if err != nil {
			t.Fatal(err)
		}
		got := stripRecords(v.LastRecords)
		want := stripRecords(refViews[i].LastRecords)
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("scaled resume tick %d record %d differs", i, j)
			}
		}
	}
}

// TestDaemonShutdown: a cancelled context refuses ticks and what-ifs with
// ErrShuttingDown — the clean-shutdown contract.
func TestDaemonShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	d, err := New(Config{Trace: testSpec(), Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Tick(TickRequest{}); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := d.Tick(TickRequest{}); err == nil {
		t.Fatal("tick accepted after shutdown")
	}
	if _, err := d.WhatIf(WhatIfRequest{}); err == nil {
		t.Fatal("what-if accepted after shutdown")
	}
}
