package plan

import (
	"errors"
	"fmt"
	"sync"

	"greencloud/internal/core"
)

// maxWhatIfSessions caps the number of live what-if sessions; creating one
// past the cap evicts the least recently used session.  Each session owns a
// core.Evaluator (preallocated scratch for one spec), so the cap bounds the
// daemon's memory under many concurrent planners.
const maxWhatIfSessions = 64

// ErrNoSession rejects a what-if query against an unknown closed session.
var ErrNoSession = errors.New("plan: no such what-if session")

// WhatIfRequest is the body of POST /whatif: price a hypothetical siting
// against the daemon's location catalog without disturbing the live plan.
//
// Sessions make repeated queries cheap: the first request naming a session
// builds a per-session evaluator from the request's spec knobs, and later
// requests with the same session name reuse its memoized per-site state (the
// spec knobs are then ignored).  Omitting Session prices the query against a
// one-shot evaluator.  Set Close to tear a session down.
type WhatIfRequest struct {
	Session string `json:"session,omitempty"`
	Close   bool   `json:"close,omitempty"`

	// Spec knobs, applied on top of core.DefaultSpec when the session (or
	// one-shot evaluator) is created.  TotalCapacityKW defaults to the
	// daemon fleet's power draw, MinGreenFraction to the paper's 0.5.
	TotalCapacityKW  float64  `json:"total_capacity_kw,omitempty"`
	MinGreenFraction *float64 `json:"min_green_fraction,omitempty"`

	// Candidates is the siting to price: catalog sites by name, each with
	// a compute capacity.  Empty candidates price the daemon's own
	// datacenters, each sized to the full network capacity (the trace's
	// any-site-can-host-the-fleet shape).
	Candidates []WhatIfCandidate `json:"candidates,omitempty"`
}

// WhatIfCandidate names one hypothetical datacenter site.
type WhatIfCandidate struct {
	Site       string  `json:"site"`
	CapacityKW float64 `json:"capacity_kw,omitempty"` // default: the spec's total capacity
}

// WhatIfResponse is the priced outcome of a what-if query.
type WhatIfResponse struct {
	Session       string   `json:"session,omitempty"`
	Sites         []string `json:"sites"`
	MonthlyUSD    float64  `json:"monthly_usd"`
	GreenFraction float64  `json:"green_fraction"`
	Feasible      bool     `json:"feasible"`
}

// whatifSession is one live session: its evaluator plus the mutex that
// serializes it (an Evaluator's scratch is single-threaded; concurrency
// across sessions is free).
type whatifSession struct {
	mu   sync.Mutex
	eval *core.Evaluator
}

// sessionStore is the daemon's session table with LRU eviction.
type sessionStore struct {
	d  *Daemon
	mu sync.Mutex
	// byName holds the live sessions; order is the LRU list, most recent
	// last.
	byName map[string]*whatifSession
	order  []string
}

func (ss *sessionStore) init(d *Daemon) {
	ss.d = d
	ss.byName = make(map[string]*whatifSession)
}

// touch moves name to the most-recently-used end of the order.
func (ss *sessionStore) touch(name string) {
	for i, n := range ss.order {
		if n == name {
			ss.order = append(ss.order[:i], ss.order[i+1:]...)
			break
		}
	}
	ss.order = append(ss.order, name)
}

// get returns the named session, creating it with build on first use.
// Callers must not hold ss.mu.
func (ss *sessionStore) get(name string, build func() (*core.Evaluator, error)) (*whatifSession, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if s, ok := ss.byName[name]; ok {
		ss.touch(name)
		return s, nil
	}
	eval, err := build()
	if err != nil {
		return nil, err
	}
	if len(ss.order) >= maxWhatIfSessions {
		oldest := ss.order[0]
		ss.order = ss.order[1:]
		delete(ss.byName, oldest)
	}
	s := &whatifSession{eval: eval}
	ss.byName[name] = s
	ss.touch(name)
	return s, nil
}

func (ss *sessionStore) close(name string) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if _, ok := ss.byName[name]; !ok {
		return false
	}
	delete(ss.byName, name)
	for i, n := range ss.order {
		if n == name {
			ss.order = append(ss.order[:i], ss.order[i+1:]...)
			break
		}
	}
	return true
}

// whatifSpec derives the evaluator spec for a request.
func (d *Daemon) whatifSpec(req *WhatIfRequest) core.Spec {
	spec := core.DefaultSpec()
	spec.TotalCapacityKW = 0
	for _, dc := range d.trace.Datacenters {
		spec.TotalCapacityKW += dc.CapacityKW
	}
	if req.TotalCapacityKW > 0 {
		spec.TotalCapacityKW = req.TotalCapacityKW
	}
	if req.MinGreenFraction != nil {
		spec.MinGreenFraction = *req.MinGreenFraction
	}
	return spec
}

// whatifCandidates resolves the request's sites against the catalog.
func (d *Daemon) whatifCandidates(req *WhatIfRequest, spec core.Spec) ([]core.Candidate, []string, error) {
	names := make([]string, 0, len(req.Candidates))
	var cands []core.Candidate
	if len(req.Candidates) == 0 {
		for _, dc := range d.trace.Datacenters {
			cands = append(cands, core.Candidate{SiteID: dc.Site.ID, CapacityKW: spec.TotalCapacityKW})
			names = append(names, dc.Name)
		}
		return cands, names, nil
	}
	byName := make(map[string]int, len(d.catalog.Sites()))
	for _, site := range d.catalog.Sites() {
		byName[site.Name] = site.ID
	}
	for _, c := range req.Candidates {
		id, ok := byName[c.Site]
		if !ok {
			return nil, nil, fmt.Errorf("plan: unknown site %q", c.Site)
		}
		capKW := c.CapacityKW
		if capKW <= 0 {
			capKW = spec.TotalCapacityKW
		}
		cands = append(cands, core.Candidate{SiteID: id, CapacityKW: capKW})
		names = append(names, c.Site)
	}
	return cands, names, nil
}

// WhatIf prices a hypothetical siting.  Safe for concurrent use: distinct
// sessions evaluate in parallel; queries within one session serialize on its
// evaluator.
func (d *Daemon) WhatIf(req WhatIfRequest) (WhatIfResponse, error) {
	if err := d.ctx.Err(); err != nil {
		return WhatIfResponse{}, fmt.Errorf("%w: %v", ErrShuttingDown, err)
	}
	if req.Close {
		if req.Session == "" || !d.sessions.close(req.Session) {
			return WhatIfResponse{}, ErrNoSession
		}
		return WhatIfResponse{Session: req.Session}, nil
	}
	spec := d.whatifSpec(&req)
	cands, names, err := d.whatifCandidates(&req, spec)
	if err != nil {
		return WhatIfResponse{}, err
	}

	var summary core.CostSummary
	if req.Session == "" {
		eval, err := core.NewEvaluator(d.catalog, spec)
		if err != nil {
			return WhatIfResponse{}, err
		}
		if summary, err = eval.EvaluateCost(cands); err != nil {
			return WhatIfResponse{}, err
		}
	} else {
		sess, err := d.sessions.get(req.Session, func() (*core.Evaluator, error) {
			return core.NewEvaluator(d.catalog, spec)
		})
		if err != nil {
			return WhatIfResponse{}, err
		}
		sess.mu.Lock()
		summary, err = sess.eval.EvaluateCost(cands)
		sess.mu.Unlock()
		if err != nil {
			return WhatIfResponse{}, err
		}
	}
	return WhatIfResponse{
		Session:       req.Session,
		Sites:         names,
		MonthlyUSD:    summary.MonthlyUSD,
		GreenFraction: summary.GreenFraction,
		Feasible:      summary.Feasible,
	}, nil
}
